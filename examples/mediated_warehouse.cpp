// The paper's introduction scenario: company A acquires company B and must
// answer HR questions over B's employee database before anyone has
// confirmed the schema mapping. The matcher emitted several candidate
// mappings with confidence scores; this example shows the full workflow:
//
//   1. load the matcher output from its text format,
//   2. register source tables with a Mediator,
//   3. answer aggregate SQL against the mediated schema,
//   4. prune to the top-k candidates with an error bound,
//   5. summarise an exponential-support distribution with the CLT.

#include <cmath>
#include <cstdio>

#include "aqua/common/random.h"
#include "aqua/core/clt.h"
#include "aqua/core/mediator.h"
#include "aqua/mapping/serialize.h"
#include "aqua/mapping/top_k.h"
#include "aqua/query/parser.h"
#include "aqua/workload/employees.h"

using namespace aqua;

int main() {
  // 1. Matcher output, as it would live in a reviewed config file.
  const char* matcher_output = R"(
# schema matcher scores for companyB.employees -> hr.employees
pmapping employees_b => employees
candidate 0.55: emp_id -> id, dept -> department, pay_with_bonus -> salary, hired -> startDate
candidate 0.30: emp_id -> id, dept -> department, base_pay -> salary, hired -> startDate
candidate 0.10: emp_id -> id, dept -> department, total_comp -> salary, hired -> startDate
candidate 0.05: emp_id -> id, dept -> department, pay_with_bonus -> salary, role_start -> startDate
)";
  const auto schema_pm = PMappingText::ParseSchema(matcher_output);
  if (!schema_pm.ok()) {
    std::printf("failed to parse matcher output: %s\n",
                schema_pm.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded schema p-mapping:\n%s\n",
              PMappingText::FormatSchema(*schema_pm).c_str());

  // 2. Register the source data (simulated; see workload/employees.h).
  Mediator mediator;
  Rng rng(1914);
  EmployeesOptions gen;
  gen.num_employees = 50000;
  auto table = GenerateEmployeesTable(gen, rng);
  if (!table.ok() ||
      !mediator.RegisterTable("employees_b", std::move(*table)).ok() ||
      !mediator.SetSchemaPMapping(*schema_pm).ok()) {
    std::printf("mediator setup failed\n");
    return 1;
  }

  // 3. HR questions against the mediated schema.
  const char* questions[] = {
      "SELECT COUNT(*) FROM employees WHERE salary > 150000",
      "SELECT AVG(salary) FROM employees WHERE startDate >= '2005-01-01'",
      "SELECT SUM(salary) FROM employees",
  };
  for (const char* sql : questions) {
    std::printf("%s\n", sql);
    const auto range = mediator.AnswerSql(sql, MappingSemantics::kByTuple,
                                          AggregateSemantics::kRange);
    const auto expected = mediator.AnswerSql(
        sql, MappingSemantics::kByTable, AggregateSemantics::kExpectedValue);
    std::printf("  by-tuple range:    %s\n",
                range.ok() ? range->ToString().c_str()
                           : range.status().ToString().c_str());
    std::printf("  by-table expected: %s\n\n",
                expected.ok() ? expected->ToString().c_str()
                              : expected.status().ToString().c_str());
  }

  // 4. The 0.05-probability candidate quadruples by-table work for little
  //    mass; prune to top-3 with a quantified error bound.
  const PMapping& full = *(*schema_pm).ForTargetRelation("employees").value();
  const auto pruned = TopKMappings(full, 3);
  if (pruned.ok()) {
    std::printf("top-3 pruning drops probability mass %.3f\n",
                pruned->dropped_mass);
    const AggregateQuery payroll = *SqlParser::ParseSimple(
        "SELECT SUM(salary) FROM employees");
    const Table& source = **mediator.TableFor("employees_b");
    const Engine engine;
    const auto full_range = engine.Answer(payroll, full, source,
                                          MappingSemantics::kByTable,
                                          AggregateSemantics::kRange);
    const auto full_ev = engine.Answer(payroll, full, source,
                                       MappingSemantics::kByTable,
                                       AggregateSemantics::kExpectedValue);
    const auto pruned_ev = engine.Answer(payroll, pruned->pmapping, source,
                                         MappingSemantics::kByTable,
                                         AggregateSemantics::kExpectedValue);
    if (full_range.ok() && full_ev.ok() && pruned_ev.ok()) {
      std::printf("  payroll expected, all 4 candidates: %.0f\n",
                  full_ev->expected_value);
      std::printf("  payroll expected, top 3:            %.0f\n",
                  pruned_ev->expected_value);
      std::printf("  guaranteed bound on the gap:        %.0f (actual %.0f)\n\n",
                  ExpectedValueErrorBound(*pruned, full_range->range),
                  std::abs(full_ev->expected_value -
                           pruned_ev->expected_value));
    }
  }

  // 5. The by-tuple distribution of SUM(salary) has astronomically many
  //    outcomes; the CLT gives exact moments and a credible interval in
  //    one O(n*m) pass.
  const AggregateQuery payroll = *SqlParser::ParseSimple(
      "SELECT SUM(salary) FROM employees");
  const Table& source = **mediator.TableFor("employees_b");
  const auto clt = ByTupleCLT::ApproxSum(payroll, full, source);
  if (clt.ok()) {
    const auto ci = clt->CredibleInterval(0.95);
    std::printf("by-tuple payroll distribution (CLT): mean %.0f, stddev %.0f\n",
                clt->mean, clt->stddev());
    if (ci.ok()) {
      std::printf("  95%% credible interval: %s\n", ci->ToString().c_str());
    }
  }
  return 0;
}
