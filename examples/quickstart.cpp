// Quickstart: answer an aggregate query when the schema mapping is
// uncertain, in ~40 lines. Uses the paper's running real-estate example:
// the mediated attribute `date` maps to the source's postedDate with
// probability 0.6 or reducedDate with probability 0.4.

#include <cstdio>

#include "aqua/core/engine.h"
#include "aqua/workload/real_estate.h"

int main() {
  using namespace aqua;

  // 1. A source instance (the paper's Table I) and the probabilistic
  //    mapping between the source schema S1 and the mediated schema T1.
  const Table source = *PaperInstanceDS1();
  const PMapping mapping = *MakeRealEstatePMapping();
  std::printf("source instance:\n%s\n", source.ToString().c_str());
  std::printf("%s\n", mapping.ToString().c_str());

  // 2. A query against the *mediated* schema, in SQL.
  const char* sql = "SELECT COUNT(*) FROM T1 WHERE date < '2008-1-20'";
  std::printf("query: %s\n\n", sql);

  // 3. Ask under any of the six semantics.
  const Engine engine;
  for (auto ms : {MappingSemantics::kByTable, MappingSemantics::kByTuple}) {
    for (auto as :
         {AggregateSemantics::kRange, AggregateSemantics::kDistribution,
          AggregateSemantics::kExpectedValue}) {
      const auto answer = engine.AnswerSql(sql, mapping, source, ms, as);
      if (!answer.ok()) {
        std::printf("%s/%s failed: %s\n", MappingSemanticsToString(ms).data(),
                    AggregateSemanticsToString(as).data(),
                    answer.status().ToString().c_str());
        continue;
      }
      std::printf("%-8s / %-14s -> %s\n",
                  std::string(MappingSemanticsToString(ms)).c_str(),
                  std::string(AggregateSemanticsToString(as)).c_str(),
                  answer->ToString().c_str());
    }
  }
  return 0;
}
