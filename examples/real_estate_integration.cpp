// A data-integration scenario: a real-estate aggregator has matched a
// realtor's feed against its mediated schema, but the matcher could not
// decide whether the feed's date column is the posting date or the last
// price-reduction date. The site still wants dashboards: how many stale
// listings, average list price of recent ones, price extremes.
//
// Demonstrates: workload generation, CSV export/import, grouped queries,
// and how the range/expected-value answers differ across semantics.

#include <cstdio>

#include "aqua/core/engine.h"
#include "aqua/storage/csv.h"
#include "aqua/workload/real_estate.h"

int main() {
  using namespace aqua;

  // Simulate the realtor's feed: 20,000 listings posted over the last four
  // months, many with later price reductions.
  Rng rng(20260704);
  RealEstateOptions opts;
  opts.num_properties = 20000;
  const Table feed = *GenerateRealEstateTable(opts, rng);
  const PMapping mapping = *MakeRealEstatePMapping(/*posted_probability=*/0.6);

  // Feeds arrive as CSV in practice; round-trip through the CSV bridge to
  // show the parsing path.
  const std::string csv = Csv::Format(feed);
  const Table source = *Csv::Parse(csv, feed.schema());
  std::printf("ingested %zu listings via CSV (%zu bytes)\n\n",
              source.num_rows(), csv.size());

  const Engine engine;
  struct Dashboard {
    const char* label;
    const char* sql;
  };
  const Dashboard dashboards[] = {
      {"stale listings (posted/reduced before Jan 20)",
       "SELECT COUNT(*) FROM T1 WHERE date < '2008-1-20'"},
      {"average price of recent listings",
       "SELECT AVG(listPrice) FROM T1 WHERE date >= '2008-2-1'"},
      {"cheapest recent listing",
       "SELECT MIN(listPrice) FROM T1 WHERE date >= '2008-2-1'"},
      {"most expensive listing overall", "SELECT MAX(listPrice) FROM T1"},
      {"total inventory value", "SELECT SUM(listPrice) FROM T1"},
  };
  for (const Dashboard& d : dashboards) {
    std::printf("%s\n  %s\n", d.label, d.sql);
    const auto range =
        engine.AnswerSql(d.sql, mapping, source, MappingSemantics::kByTuple,
                         AggregateSemantics::kRange);
    if (range.ok()) {
      std::printf("  by-tuple range:     %s\n", range->ToString().c_str());
    } else {
      std::printf("  by-tuple range:     %s\n",
                  range.status().ToString().c_str());
    }
    const auto table_ev =
        engine.AnswerSql(d.sql, mapping, source, MappingSemantics::kByTable,
                         AggregateSemantics::kExpectedValue);
    if (table_ev.ok()) {
      std::printf("  by-table expected:  %s\n\n",
                  table_ev->ToString().c_str());
    } else {
      std::printf("  by-table expected:  %s\n\n",
                  table_ev.status().ToString().c_str());
    }
  }

  // Grouped dashboard: expected stale-listing count per agent (the agent
  // phone is certain under both mappings, so by-tuple grouping applies).
  const auto per_agent = engine.AnswerGroupedSql(
      "SELECT COUNT(*) FROM T1 WHERE date < '2008-1-20' GROUP BY phone",
      mapping, source, MappingSemantics::kByTuple,
      AggregateSemantics::kExpectedValue);
  if (per_agent.ok()) {
    std::printf("expected stale listings for the first 5 agents:\n");
    for (size_t i = 0; i < per_agent->size() && i < 5; ++i) {
      std::printf("  agent %-6s %s\n",
                  (*per_agent)[i].group.ToString().c_str(),
                  (*per_agent)[i].answer.ToString().c_str());
    }
  }
  return 0;
}
