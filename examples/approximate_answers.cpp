// Tour of the open-cell toolkit: the paper proves PTIME algorithms for
// many (operator, semantics) combinations and leaves the rest open; this
// example shows every strategy this library offers for the open ones, on
// one workload, with accuracy annotations.
//
//   SUM distribution:  quantised DP (exact on integer grids), CLT, sampler
//   AVG distribution:  joint (count, sum) DP, sampler
//   AVG expected:      delta method vs conditional expectation from the DP
//   MAX distribution:  exact CDF factorisation (closes the open cell)

#include <cstdio>

#include "aqua/core/by_tuple_minmax.h"
#include "aqua/core/by_tuple_sum.h"
#include "aqua/core/clt.h"
#include "aqua/core/sampler.h"
#include "aqua/mapping/generator.h"
#include "aqua/query/parser.h"
#include "aqua/workload/synthetic.h"

using namespace aqua;

namespace {

// Integer-valued table so the quantised DPs are exact at resolution 1.
Result<Table> IntegerTable(size_t n, Rng& rng) {
  std::vector<Attribute> attrs = {{"id", ValueType::kInt64},
                                  {"a0", ValueType::kDouble},
                                  {"a1", ValueType::kDouble},
                                  {"a2", ValueType::kDouble}};
  std::vector<Column> cols;
  cols.emplace_back(ValueType::kInt64);
  for (int a = 0; a < 3; ++a) cols.emplace_back(ValueType::kDouble);
  for (size_t r = 0; r < n; ++r) {
    cols[0].AppendInt64(static_cast<int64_t>(r));
    for (int a = 1; a <= 3; ++a) {
      cols[a].AppendDouble(static_cast<double>(rng.UniformInt(0, 50)));
    }
  }
  AQUA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  return Table::Make(std::move(schema), std::move(cols));
}

void PrintHistogram(const Distribution& d, size_t bins) {
  const auto h = d.ToHistogram(bins);
  if (!h.ok()) return;
  for (const auto& b : *h) {
    std::printf("  [%8.1f, %8.1f) %6.3f %s\n", b.low, b.high, b.mass,
                std::string(static_cast<size_t>(b.mass * 50), '#').c_str());
  }
}

}  // namespace

int main() {
  Rng rng(271828);
  const Table table = *IntegerTable(300, rng);
  MappingGeneratorOptions gen;
  gen.num_mappings = 3;
  gen.target_attribute = "value";
  gen.candidate_sources = {"a0", "a1", "a2"};
  gen.certain.push_back({"id", "id"});
  const PMapping pm = *GenerateRandomPMapping(gen, rng);
  std::printf("300 integer tuples, 3 candidate mappings; all by-tuple\n\n");

  // --- SUM distribution: 3^300 sequences, yet exactly computable. -------
  const AggregateQuery sum_q =
      *SqlParser::ParseSimple("SELECT SUM(value) FROM T WHERE value < 45");
  QuantizedDistOptions res1;
  res1.resolution = 1.0;
  const auto sum_dp = ByTupleSum::DistQuantized(sum_q, pm, table, res1);
  const auto sum_clt = ByTupleCLT::ApproxSum(sum_q, pm, table);
  if (sum_dp.ok() && sum_clt.ok()) {
    std::printf("SUM distribution (quantised DP, exact; %zu outcomes):\n",
                sum_dp->size());
    PrintHistogram(*sum_dp, 8);
    const auto ci = sum_clt->CredibleInterval(0.95);
    std::printf("  CLT: mean %.1f, stddev %.1f, 95%% CI %s\n\n",
                sum_clt->mean, sum_clt->stddev(),
                ci.ok() ? ci->ToString().c_str() : "-");
  }

  // --- AVG: joint (count, sum) DP vs delta method vs sampling. ----------
  const AggregateQuery avg_q =
      *SqlParser::ParseSimple("SELECT AVG(value) FROM T WHERE value < 45");
  const auto avg_dp = ByTupleSum::DistAvgQuantized(avg_q, pm, table, res1);
  if (avg_dp.ok()) {
    Distribution defined = avg_dp->distribution;
    defined.Prune(0.0);
    const auto exact_ev = defined.Expectation();
    const auto delta = ByTupleCLT::ApproxAvgExpectation(avg_q, pm, table);
    SamplerOptions mc;
    mc.num_samples = 20000;
    const auto sampled = ByTupleSampler::Sample(avg_q, pm, table, mc);
    std::printf("AVG expected value, three ways:\n");
    if (exact_ev.ok()) {
      std::printf("  joint-DP conditional expectation (exact): %.6f\n",
                  *exact_ev);
    }
    if (delta.ok()) {
      std::printf("  delta method (O(nm)):                     %.6f\n",
                  *delta);
    }
    if (sampled.ok()) {
      std::printf("  Monte-Carlo (20k samples):                %.6f "
                  "(stderr %.6f)\n\n",
                  sampled->expected, sampled->std_error);
    }
  }

  // --- MAX distribution: the closed open cell. ---------------------------
  const AggregateQuery max_q =
      *SqlParser::ParseSimple("SELECT MAX(value) FROM T WHERE value < 45");
  const auto max_dist = ByTupleMinMax::DistMax(max_q, pm, table);
  SamplerOptions mc;
  mc.num_samples = 20000;
  const auto max_sampled = ByTupleSampler::Sample(max_q, pm, table, mc);
  if (max_dist.ok() && max_sampled.ok()) {
    std::printf("MAX distribution (exact CDF factorisation; undefined mass "
                "%.2e):\n",
                max_dist->undefined_mass);
    for (const auto& e : max_dist->distribution.entries()) {
      if (e.prob < 1e-4) continue;
      std::printf("  P(MAX = %g) = %.6f\n", e.outcome, e.prob);
    }
    std::printf("  KS distance to 20k-sample estimate: %.4f\n",
                Distribution::KolmogorovSmirnovDistance(
                    max_dist->distribution, max_sampled->empirical));
  }
  return 0;
}
