// A tiny command-line front end: run any supported SQL aggregate query
// against either bundled dataset under a chosen semantics pair.
//
//   sql_frontend [ebay|realestate] [by-table|by-tuple]
//                [range|distribution|expected] "SELECT ..."
//
// Without arguments it runs a demonstration script of queries against the
// eBay instance from the paper's Table II.

#include <cstdio>
#include <cstring>
#include <string>

#include "aqua/core/engine.h"
#include "aqua/workload/ebay.h"
#include "aqua/workload/real_estate.h"

namespace {

using namespace aqua;

void RunOne(const Engine& engine, const char* sql, const PMapping& pm,
            const Table& table, MappingSemantics ms, AggregateSemantics as) {
  std::printf("> %s\n  [%s/%s] ", sql,
              std::string(MappingSemanticsToString(ms)).c_str(),
              std::string(AggregateSemanticsToString(as)).c_str());
  // Try ungrouped/nested first; fall back to grouped output.
  const auto answer = engine.AnswerSql(sql, pm, table, ms, as);
  if (answer.ok()) {
    std::printf("%s\n\n", answer->ToString().c_str());
    return;
  }
  const auto grouped = engine.AnswerGroupedSql(sql, pm, table, ms, as);
  if (grouped.ok()) {
    std::printf("\n");
    for (const GroupedAnswer& g : *grouped) {
      std::printf("    %-10s %s\n", g.group.ToString().c_str(),
                  g.answer.ToString().c_str());
    }
    std::printf("\n");
    return;
  }
  std::printf("error: %s\n\n", answer.status().ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Engine engine;

  if (argc == 5) {
    const bool ebay = std::strcmp(argv[1], "ebay") == 0;
    const Table table = ebay ? *PaperInstanceDS2() : *PaperInstanceDS1();
    const PMapping pm =
        ebay ? *MakeEbayPMapping() : *MakeRealEstatePMapping();
    MappingSemantics ms = std::strcmp(argv[2], "by-table") == 0
                              ? MappingSemantics::kByTable
                              : MappingSemantics::kByTuple;
    AggregateSemantics as = AggregateSemantics::kRange;
    if (std::strcmp(argv[3], "distribution") == 0) {
      as = AggregateSemantics::kDistribution;
    } else if (std::strcmp(argv[3], "expected") == 0) {
      as = AggregateSemantics::kExpectedValue;
    }
    RunOne(engine, argv[4], pm, table, ms, as);
    return 0;
  }

  std::printf("usage: %s [ebay|realestate] [by-table|by-tuple] "
              "[range|distribution|expected] \"SELECT ...\"\n"
              "running the demonstration script instead\n\n",
              argv[0]);

  const Table ds2 = *PaperInstanceDS2();
  const PMapping pm2 = *MakeEbayPMapping();
  const char* script[] = {
      "SELECT SUM(price) FROM T2 WHERE auctionId = 34",
      "SELECT COUNT(*) FROM T2 WHERE price > 300",
      "SELECT MAX(price) FROM T2 GROUP BY auctionId",
      "SELECT AVG(R1.price) FROM (SELECT MAX(DISTINCT R2.price) FROM T2 AS "
      "R2 GROUP BY R2.auctionID) AS R1",
  };
  for (const char* sql : script) {
    RunOne(engine, sql, pm2, ds2, MappingSemantics::kByTuple,
           AggregateSemantics::kRange);
    RunOne(engine, sql, pm2, ds2, MappingSemantics::kByTable,
           AggregateSemantics::kDistribution);
  }
  return 0;
}
