// The paper's second motivating scenario: a price-comparison service
// tracks eBay-style auctions, but `price` in the mediated schema may mean
// the highest bid (probability 0.3) or the visible second-price
// `currentPrice` (0.7). The service wants the average closing price across
// auctions — a nested aggregate (the paper's query Q2) — plus per-auction
// answers and a sampled by-tuple distribution for the semantics with no
// exact PTIME algorithm.

#include <cstdio>

#include "aqua/core/engine.h"
#include "aqua/core/sampler.h"
#include "aqua/workload/ebay.h"

int main() {
  using namespace aqua;

  Rng rng(34);
  EbayOptions opts;
  opts.num_auctions = 1129;  // the paper's trace size
  opts.min_bids = 6;
  opts.max_bids = 12;
  const Table bids = *GenerateEbayTable(opts, rng);
  const PMapping mapping = *MakeEbayPMapping();
  std::printf("simulated %zu bids across %zu auctions\n\n", bids.num_rows(),
              opts.num_auctions);

  const Engine engine;

  // The paper's Q2, straight from SQL.
  const char* q2 =
      "SELECT AVG(R1.price) FROM (SELECT MAX(DISTINCT R2.price) FROM T2 AS "
      "R2 GROUP BY R2.auctionID) AS R1";
  std::printf("Q2: %s\n", q2);
  for (auto as : {AggregateSemantics::kRange, AggregateSemantics::kDistribution,
                  AggregateSemantics::kExpectedValue}) {
    const auto by_table = engine.AnswerSql(q2, mapping, bids,
                                           MappingSemantics::kByTable, as);
    std::printf("  by-table %-14s -> %s\n",
                std::string(AggregateSemanticsToString(as)).c_str(),
                by_table.ok() ? by_table->ToString().c_str()
                              : by_table.status().ToString().c_str());
  }
  const auto q2_range = engine.AnswerSql(
      q2, mapping, bids, MappingSemantics::kByTuple,
      AggregateSemantics::kRange);
  std::printf("  by-tuple range          -> %s\n\n",
              q2_range.ok() ? q2_range->ToString().c_str()
                            : q2_range.status().ToString().c_str());

  // Per-auction closing-price ranges (first few groups).
  const auto per_auction = engine.AnswerGroupedSql(
      "SELECT MAX(DISTINCT price) FROM T2 GROUP BY auctionId", mapping, bids,
      MappingSemantics::kByTuple, AggregateSemantics::kRange);
  if (per_auction.ok()) {
    std::printf("closing-price ranges for the first 5 auctions:\n");
    for (size_t i = 0; i < per_auction->size() && i < 5; ++i) {
      std::printf("  auction %-6s %s\n",
                  (*per_auction)[i].group.ToString().c_str(),
                  (*per_auction)[i].answer.ToString().c_str());
    }
    std::printf("\n");
  }

  // Total traded volume: SUM has no PTIME by-tuple distribution algorithm
  // (the support can be exponential), so estimate it by Monte-Carlo — the
  // approach the paper's future-work section proposes.
  AggregateQuery sum_q;
  sum_q.func = AggregateFunction::kSum;
  sum_q.attribute = "price";
  sum_q.relation = "T2";
  sum_q.where = Predicate::True();
  SamplerOptions sampler_opts;
  sampler_opts.num_samples = 20000;
  const auto sampled = ByTupleSampler::Sample(sum_q, mapping, bids,
                                              sampler_opts);
  if (sampled.ok()) {
    std::printf("by-tuple SUM(price), %zu Monte-Carlo samples:\n",
                sampled->num_samples);
    std::printf("  mean %.2f  (std. error %.2f)\n", sampled->expected,
                sampled->std_error);
    std::printf("  observed range %s\n", sampled->observed_range.ToString().c_str());
    const auto q10 = sampled->empirical.Quantile(0.1);
    const auto q90 = sampled->empirical.Quantile(0.9);
    if (q10.ok() && q90.ok()) {
      std::printf("  10%%..90%% quantiles [%.2f, %.2f]\n", *q10, *q90);
    }
    // Cross-check against the exact answers that do exist.
    const auto exact_ev = engine.Answer(sum_q, mapping, bids,
                                        MappingSemantics::kByTuple,
                                        AggregateSemantics::kExpectedValue);
    if (exact_ev.ok()) {
      std::printf("  exact expected value (Theorem 4): %.2f\n",
                  exact_ev->expected_value);
    }
  }
  return 0;
}
