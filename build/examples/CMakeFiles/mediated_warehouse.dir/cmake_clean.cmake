file(REMOVE_RECURSE
  "CMakeFiles/mediated_warehouse.dir/mediated_warehouse.cpp.o"
  "CMakeFiles/mediated_warehouse.dir/mediated_warehouse.cpp.o.d"
  "mediated_warehouse"
  "mediated_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediated_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
