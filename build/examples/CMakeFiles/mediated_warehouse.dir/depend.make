# Empty dependencies file for mediated_warehouse.
# This may be replaced when dependencies are built.
