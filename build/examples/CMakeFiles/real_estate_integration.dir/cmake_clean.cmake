file(REMOVE_RECURSE
  "CMakeFiles/real_estate_integration.dir/real_estate_integration.cpp.o"
  "CMakeFiles/real_estate_integration.dir/real_estate_integration.cpp.o.d"
  "real_estate_integration"
  "real_estate_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_estate_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
