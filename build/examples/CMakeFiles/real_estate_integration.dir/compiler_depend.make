# Empty compiler generated dependencies file for real_estate_integration.
# This may be replaced when dependencies are built.
