file(REMOVE_RECURSE
  "CMakeFiles/ebay_auctions.dir/ebay_auctions.cpp.o"
  "CMakeFiles/ebay_auctions.dir/ebay_auctions.cpp.o.d"
  "ebay_auctions"
  "ebay_auctions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebay_auctions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
