# Empty compiler generated dependencies file for ebay_auctions.
# This may be replaced when dependencies are built.
