file(REMOVE_RECURSE
  "CMakeFiles/aqua_storage.dir/aqua/storage/csv.cc.o"
  "CMakeFiles/aqua_storage.dir/aqua/storage/csv.cc.o.d"
  "CMakeFiles/aqua_storage.dir/aqua/storage/schema.cc.o"
  "CMakeFiles/aqua_storage.dir/aqua/storage/schema.cc.o.d"
  "CMakeFiles/aqua_storage.dir/aqua/storage/table.cc.o"
  "CMakeFiles/aqua_storage.dir/aqua/storage/table.cc.o.d"
  "CMakeFiles/aqua_storage.dir/aqua/storage/table_builder.cc.o"
  "CMakeFiles/aqua_storage.dir/aqua/storage/table_builder.cc.o.d"
  "libaqua_storage.a"
  "libaqua_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
