file(REMOVE_RECURSE
  "libaqua_storage.a"
)
