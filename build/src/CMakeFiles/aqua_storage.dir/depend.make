# Empty dependencies file for aqua_storage.
# This may be replaced when dependencies are built.
