file(REMOVE_RECURSE
  "CMakeFiles/aqua_common.dir/aqua/common/date.cc.o"
  "CMakeFiles/aqua_common.dir/aqua/common/date.cc.o.d"
  "CMakeFiles/aqua_common.dir/aqua/common/random.cc.o"
  "CMakeFiles/aqua_common.dir/aqua/common/random.cc.o.d"
  "CMakeFiles/aqua_common.dir/aqua/common/status.cc.o"
  "CMakeFiles/aqua_common.dir/aqua/common/status.cc.o.d"
  "CMakeFiles/aqua_common.dir/aqua/common/string_util.cc.o"
  "CMakeFiles/aqua_common.dir/aqua/common/string_util.cc.o.d"
  "CMakeFiles/aqua_common.dir/aqua/common/value.cc.o"
  "CMakeFiles/aqua_common.dir/aqua/common/value.cc.o.d"
  "libaqua_common.a"
  "libaqua_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
