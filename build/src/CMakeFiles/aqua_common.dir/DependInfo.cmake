
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aqua/common/date.cc" "src/CMakeFiles/aqua_common.dir/aqua/common/date.cc.o" "gcc" "src/CMakeFiles/aqua_common.dir/aqua/common/date.cc.o.d"
  "/root/repo/src/aqua/common/random.cc" "src/CMakeFiles/aqua_common.dir/aqua/common/random.cc.o" "gcc" "src/CMakeFiles/aqua_common.dir/aqua/common/random.cc.o.d"
  "/root/repo/src/aqua/common/status.cc" "src/CMakeFiles/aqua_common.dir/aqua/common/status.cc.o" "gcc" "src/CMakeFiles/aqua_common.dir/aqua/common/status.cc.o.d"
  "/root/repo/src/aqua/common/string_util.cc" "src/CMakeFiles/aqua_common.dir/aqua/common/string_util.cc.o" "gcc" "src/CMakeFiles/aqua_common.dir/aqua/common/string_util.cc.o.d"
  "/root/repo/src/aqua/common/value.cc" "src/CMakeFiles/aqua_common.dir/aqua/common/value.cc.o" "gcc" "src/CMakeFiles/aqua_common.dir/aqua/common/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
