file(REMOVE_RECURSE
  "CMakeFiles/aqua_query.dir/aqua/query/ast.cc.o"
  "CMakeFiles/aqua_query.dir/aqua/query/ast.cc.o.d"
  "CMakeFiles/aqua_query.dir/aqua/query/executor.cc.o"
  "CMakeFiles/aqua_query.dir/aqua/query/executor.cc.o.d"
  "CMakeFiles/aqua_query.dir/aqua/query/parser.cc.o"
  "CMakeFiles/aqua_query.dir/aqua/query/parser.cc.o.d"
  "CMakeFiles/aqua_query.dir/aqua/query/view.cc.o"
  "CMakeFiles/aqua_query.dir/aqua/query/view.cc.o.d"
  "libaqua_query.a"
  "libaqua_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
