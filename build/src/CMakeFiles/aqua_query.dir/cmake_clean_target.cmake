file(REMOVE_RECURSE
  "libaqua_query.a"
)
