
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aqua/query/ast.cc" "src/CMakeFiles/aqua_query.dir/aqua/query/ast.cc.o" "gcc" "src/CMakeFiles/aqua_query.dir/aqua/query/ast.cc.o.d"
  "/root/repo/src/aqua/query/executor.cc" "src/CMakeFiles/aqua_query.dir/aqua/query/executor.cc.o" "gcc" "src/CMakeFiles/aqua_query.dir/aqua/query/executor.cc.o.d"
  "/root/repo/src/aqua/query/parser.cc" "src/CMakeFiles/aqua_query.dir/aqua/query/parser.cc.o" "gcc" "src/CMakeFiles/aqua_query.dir/aqua/query/parser.cc.o.d"
  "/root/repo/src/aqua/query/view.cc" "src/CMakeFiles/aqua_query.dir/aqua/query/view.cc.o" "gcc" "src/CMakeFiles/aqua_query.dir/aqua/query/view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aqua_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
