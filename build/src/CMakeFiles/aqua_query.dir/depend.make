# Empty dependencies file for aqua_query.
# This may be replaced when dependencies are built.
