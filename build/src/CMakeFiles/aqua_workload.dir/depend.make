# Empty dependencies file for aqua_workload.
# This may be replaced when dependencies are built.
