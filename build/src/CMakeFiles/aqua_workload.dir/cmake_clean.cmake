file(REMOVE_RECURSE
  "CMakeFiles/aqua_workload.dir/aqua/workload/ebay.cc.o"
  "CMakeFiles/aqua_workload.dir/aqua/workload/ebay.cc.o.d"
  "CMakeFiles/aqua_workload.dir/aqua/workload/employees.cc.o"
  "CMakeFiles/aqua_workload.dir/aqua/workload/employees.cc.o.d"
  "CMakeFiles/aqua_workload.dir/aqua/workload/real_estate.cc.o"
  "CMakeFiles/aqua_workload.dir/aqua/workload/real_estate.cc.o.d"
  "CMakeFiles/aqua_workload.dir/aqua/workload/synthetic.cc.o"
  "CMakeFiles/aqua_workload.dir/aqua/workload/synthetic.cc.o.d"
  "libaqua_workload.a"
  "libaqua_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
