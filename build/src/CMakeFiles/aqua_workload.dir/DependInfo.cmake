
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aqua/workload/ebay.cc" "src/CMakeFiles/aqua_workload.dir/aqua/workload/ebay.cc.o" "gcc" "src/CMakeFiles/aqua_workload.dir/aqua/workload/ebay.cc.o.d"
  "/root/repo/src/aqua/workload/employees.cc" "src/CMakeFiles/aqua_workload.dir/aqua/workload/employees.cc.o" "gcc" "src/CMakeFiles/aqua_workload.dir/aqua/workload/employees.cc.o.d"
  "/root/repo/src/aqua/workload/real_estate.cc" "src/CMakeFiles/aqua_workload.dir/aqua/workload/real_estate.cc.o" "gcc" "src/CMakeFiles/aqua_workload.dir/aqua/workload/real_estate.cc.o.d"
  "/root/repo/src/aqua/workload/synthetic.cc" "src/CMakeFiles/aqua_workload.dir/aqua/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/aqua_workload.dir/aqua/workload/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aqua_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
