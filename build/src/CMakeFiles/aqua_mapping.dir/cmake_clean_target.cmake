file(REMOVE_RECURSE
  "libaqua_mapping.a"
)
