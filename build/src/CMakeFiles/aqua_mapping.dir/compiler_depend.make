# Empty compiler generated dependencies file for aqua_mapping.
# This may be replaced when dependencies are built.
