file(REMOVE_RECURSE
  "CMakeFiles/aqua_mapping.dir/aqua/mapping/generator.cc.o"
  "CMakeFiles/aqua_mapping.dir/aqua/mapping/generator.cc.o.d"
  "CMakeFiles/aqua_mapping.dir/aqua/mapping/p_mapping.cc.o"
  "CMakeFiles/aqua_mapping.dir/aqua/mapping/p_mapping.cc.o.d"
  "CMakeFiles/aqua_mapping.dir/aqua/mapping/relation_mapping.cc.o"
  "CMakeFiles/aqua_mapping.dir/aqua/mapping/relation_mapping.cc.o.d"
  "CMakeFiles/aqua_mapping.dir/aqua/mapping/serialize.cc.o"
  "CMakeFiles/aqua_mapping.dir/aqua/mapping/serialize.cc.o.d"
  "CMakeFiles/aqua_mapping.dir/aqua/mapping/top_k.cc.o"
  "CMakeFiles/aqua_mapping.dir/aqua/mapping/top_k.cc.o.d"
  "libaqua_mapping.a"
  "libaqua_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
