
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aqua/mapping/generator.cc" "src/CMakeFiles/aqua_mapping.dir/aqua/mapping/generator.cc.o" "gcc" "src/CMakeFiles/aqua_mapping.dir/aqua/mapping/generator.cc.o.d"
  "/root/repo/src/aqua/mapping/p_mapping.cc" "src/CMakeFiles/aqua_mapping.dir/aqua/mapping/p_mapping.cc.o" "gcc" "src/CMakeFiles/aqua_mapping.dir/aqua/mapping/p_mapping.cc.o.d"
  "/root/repo/src/aqua/mapping/relation_mapping.cc" "src/CMakeFiles/aqua_mapping.dir/aqua/mapping/relation_mapping.cc.o" "gcc" "src/CMakeFiles/aqua_mapping.dir/aqua/mapping/relation_mapping.cc.o.d"
  "/root/repo/src/aqua/mapping/serialize.cc" "src/CMakeFiles/aqua_mapping.dir/aqua/mapping/serialize.cc.o" "gcc" "src/CMakeFiles/aqua_mapping.dir/aqua/mapping/serialize.cc.o.d"
  "/root/repo/src/aqua/mapping/top_k.cc" "src/CMakeFiles/aqua_mapping.dir/aqua/mapping/top_k.cc.o" "gcc" "src/CMakeFiles/aqua_mapping.dir/aqua/mapping/top_k.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aqua_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
