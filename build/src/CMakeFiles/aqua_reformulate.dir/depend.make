# Empty dependencies file for aqua_reformulate.
# This may be replaced when dependencies are built.
