file(REMOVE_RECURSE
  "CMakeFiles/aqua_reformulate.dir/aqua/reformulate/reformulator.cc.o"
  "CMakeFiles/aqua_reformulate.dir/aqua/reformulate/reformulator.cc.o.d"
  "libaqua_reformulate.a"
  "libaqua_reformulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_reformulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
