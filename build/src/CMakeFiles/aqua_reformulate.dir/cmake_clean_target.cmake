file(REMOVE_RECURSE
  "libaqua_reformulate.a"
)
