file(REMOVE_RECURSE
  "CMakeFiles/aqua_expr.dir/aqua/expr/predicate.cc.o"
  "CMakeFiles/aqua_expr.dir/aqua/expr/predicate.cc.o.d"
  "libaqua_expr.a"
  "libaqua_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
