# Empty dependencies file for aqua_expr.
# This may be replaced when dependencies are built.
