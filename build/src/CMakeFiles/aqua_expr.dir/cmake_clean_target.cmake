file(REMOVE_RECURSE
  "libaqua_expr.a"
)
