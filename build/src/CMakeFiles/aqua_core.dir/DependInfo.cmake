
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aqua/core/answer.cc" "src/CMakeFiles/aqua_core.dir/aqua/core/answer.cc.o" "gcc" "src/CMakeFiles/aqua_core.dir/aqua/core/answer.cc.o.d"
  "/root/repo/src/aqua/core/by_table.cc" "src/CMakeFiles/aqua_core.dir/aqua/core/by_table.cc.o" "gcc" "src/CMakeFiles/aqua_core.dir/aqua/core/by_table.cc.o.d"
  "/root/repo/src/aqua/core/by_tuple_count.cc" "src/CMakeFiles/aqua_core.dir/aqua/core/by_tuple_count.cc.o" "gcc" "src/CMakeFiles/aqua_core.dir/aqua/core/by_tuple_count.cc.o.d"
  "/root/repo/src/aqua/core/by_tuple_minmax.cc" "src/CMakeFiles/aqua_core.dir/aqua/core/by_tuple_minmax.cc.o" "gcc" "src/CMakeFiles/aqua_core.dir/aqua/core/by_tuple_minmax.cc.o.d"
  "/root/repo/src/aqua/core/by_tuple_sum.cc" "src/CMakeFiles/aqua_core.dir/aqua/core/by_tuple_sum.cc.o" "gcc" "src/CMakeFiles/aqua_core.dir/aqua/core/by_tuple_sum.cc.o.d"
  "/root/repo/src/aqua/core/clt.cc" "src/CMakeFiles/aqua_core.dir/aqua/core/clt.cc.o" "gcc" "src/CMakeFiles/aqua_core.dir/aqua/core/clt.cc.o.d"
  "/root/repo/src/aqua/core/engine.cc" "src/CMakeFiles/aqua_core.dir/aqua/core/engine.cc.o" "gcc" "src/CMakeFiles/aqua_core.dir/aqua/core/engine.cc.o.d"
  "/root/repo/src/aqua/core/mediator.cc" "src/CMakeFiles/aqua_core.dir/aqua/core/mediator.cc.o" "gcc" "src/CMakeFiles/aqua_core.dir/aqua/core/mediator.cc.o.d"
  "/root/repo/src/aqua/core/naive.cc" "src/CMakeFiles/aqua_core.dir/aqua/core/naive.cc.o" "gcc" "src/CMakeFiles/aqua_core.dir/aqua/core/naive.cc.o.d"
  "/root/repo/src/aqua/core/nested.cc" "src/CMakeFiles/aqua_core.dir/aqua/core/nested.cc.o" "gcc" "src/CMakeFiles/aqua_core.dir/aqua/core/nested.cc.o.d"
  "/root/repo/src/aqua/core/sampler.cc" "src/CMakeFiles/aqua_core.dir/aqua/core/sampler.cc.o" "gcc" "src/CMakeFiles/aqua_core.dir/aqua/core/sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aqua_reformulate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
