file(REMOVE_RECURSE
  "CMakeFiles/aqua_core.dir/aqua/core/answer.cc.o"
  "CMakeFiles/aqua_core.dir/aqua/core/answer.cc.o.d"
  "CMakeFiles/aqua_core.dir/aqua/core/by_table.cc.o"
  "CMakeFiles/aqua_core.dir/aqua/core/by_table.cc.o.d"
  "CMakeFiles/aqua_core.dir/aqua/core/by_tuple_count.cc.o"
  "CMakeFiles/aqua_core.dir/aqua/core/by_tuple_count.cc.o.d"
  "CMakeFiles/aqua_core.dir/aqua/core/by_tuple_minmax.cc.o"
  "CMakeFiles/aqua_core.dir/aqua/core/by_tuple_minmax.cc.o.d"
  "CMakeFiles/aqua_core.dir/aqua/core/by_tuple_sum.cc.o"
  "CMakeFiles/aqua_core.dir/aqua/core/by_tuple_sum.cc.o.d"
  "CMakeFiles/aqua_core.dir/aqua/core/clt.cc.o"
  "CMakeFiles/aqua_core.dir/aqua/core/clt.cc.o.d"
  "CMakeFiles/aqua_core.dir/aqua/core/engine.cc.o"
  "CMakeFiles/aqua_core.dir/aqua/core/engine.cc.o.d"
  "CMakeFiles/aqua_core.dir/aqua/core/mediator.cc.o"
  "CMakeFiles/aqua_core.dir/aqua/core/mediator.cc.o.d"
  "CMakeFiles/aqua_core.dir/aqua/core/naive.cc.o"
  "CMakeFiles/aqua_core.dir/aqua/core/naive.cc.o.d"
  "CMakeFiles/aqua_core.dir/aqua/core/nested.cc.o"
  "CMakeFiles/aqua_core.dir/aqua/core/nested.cc.o.d"
  "CMakeFiles/aqua_core.dir/aqua/core/sampler.cc.o"
  "CMakeFiles/aqua_core.dir/aqua/core/sampler.cc.o.d"
  "libaqua_core.a"
  "libaqua_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
