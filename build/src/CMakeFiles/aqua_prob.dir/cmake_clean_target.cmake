file(REMOVE_RECURSE
  "libaqua_prob.a"
)
