
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aqua/prob/discrete_sampler.cc" "src/CMakeFiles/aqua_prob.dir/aqua/prob/discrete_sampler.cc.o" "gcc" "src/CMakeFiles/aqua_prob.dir/aqua/prob/discrete_sampler.cc.o.d"
  "/root/repo/src/aqua/prob/distribution.cc" "src/CMakeFiles/aqua_prob.dir/aqua/prob/distribution.cc.o" "gcc" "src/CMakeFiles/aqua_prob.dir/aqua/prob/distribution.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aqua_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
