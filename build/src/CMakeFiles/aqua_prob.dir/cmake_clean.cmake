file(REMOVE_RECURSE
  "CMakeFiles/aqua_prob.dir/aqua/prob/discrete_sampler.cc.o"
  "CMakeFiles/aqua_prob.dir/aqua/prob/discrete_sampler.cc.o.d"
  "CMakeFiles/aqua_prob.dir/aqua/prob/distribution.cc.o"
  "CMakeFiles/aqua_prob.dir/aqua/prob/distribution.cc.o.d"
  "libaqua_prob.a"
  "libaqua_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
