# Empty compiler generated dependencies file for aqua_prob.
# This may be replaced when dependencies are built.
