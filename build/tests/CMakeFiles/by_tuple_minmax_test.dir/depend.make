# Empty dependencies file for by_tuple_minmax_test.
# This may be replaced when dependencies are built.
