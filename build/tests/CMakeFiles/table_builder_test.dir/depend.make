# Empty dependencies file for table_builder_test.
# This may be replaced when dependencies are built.
