file(REMOVE_RECURSE
  "CMakeFiles/table_builder_test.dir/storage/table_builder_test.cc.o"
  "CMakeFiles/table_builder_test.dir/storage/table_builder_test.cc.o.d"
  "table_builder_test"
  "table_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
