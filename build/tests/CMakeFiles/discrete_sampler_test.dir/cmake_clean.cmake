file(REMOVE_RECURSE
  "CMakeFiles/discrete_sampler_test.dir/prob/discrete_sampler_test.cc.o"
  "CMakeFiles/discrete_sampler_test.dir/prob/discrete_sampler_test.cc.o.d"
  "discrete_sampler_test"
  "discrete_sampler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discrete_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
