# Empty compiler generated dependencies file for discrete_sampler_test.
# This may be replaced when dependencies are built.
