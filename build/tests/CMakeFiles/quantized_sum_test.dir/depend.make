# Empty dependencies file for quantized_sum_test.
# This may be replaced when dependencies are built.
