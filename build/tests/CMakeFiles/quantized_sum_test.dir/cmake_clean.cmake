file(REMOVE_RECURSE
  "CMakeFiles/quantized_sum_test.dir/core/quantized_sum_test.cc.o"
  "CMakeFiles/quantized_sum_test.dir/core/quantized_sum_test.cc.o.d"
  "quantized_sum_test"
  "quantized_sum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantized_sum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
