file(REMOVE_RECURSE
  "CMakeFiles/by_tuple_sum_test.dir/core/by_tuple_sum_test.cc.o"
  "CMakeFiles/by_tuple_sum_test.dir/core/by_tuple_sum_test.cc.o.d"
  "by_tuple_sum_test"
  "by_tuple_sum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/by_tuple_sum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
