# Empty compiler generated dependencies file for p_mapping_test.
# This may be replaced when dependencies are built.
