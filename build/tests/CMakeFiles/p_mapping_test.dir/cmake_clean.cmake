file(REMOVE_RECURSE
  "CMakeFiles/p_mapping_test.dir/mapping/p_mapping_test.cc.o"
  "CMakeFiles/p_mapping_test.dir/mapping/p_mapping_test.cc.o.d"
  "p_mapping_test"
  "p_mapping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
