file(REMOVE_RECURSE
  "CMakeFiles/by_table_test.dir/core/by_table_test.cc.o"
  "CMakeFiles/by_table_test.dir/core/by_table_test.cc.o.d"
  "by_table_test"
  "by_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/by_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
