# Empty compiler generated dependencies file for by_table_test.
# This may be replaced when dependencies are built.
