file(REMOVE_RECURSE
  "CMakeFiles/real_estate_test.dir/workload/real_estate_test.cc.o"
  "CMakeFiles/real_estate_test.dir/workload/real_estate_test.cc.o.d"
  "real_estate_test"
  "real_estate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_estate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
