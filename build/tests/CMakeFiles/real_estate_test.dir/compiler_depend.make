# Empty compiler generated dependencies file for real_estate_test.
# This may be replaced when dependencies are built.
