file(REMOVE_RECURSE
  "CMakeFiles/clt_test.dir/core/clt_test.cc.o"
  "CMakeFiles/clt_test.dir/core/clt_test.cc.o.d"
  "clt_test"
  "clt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
