# Empty compiler generated dependencies file for clt_test.
# This may be replaced when dependencies are built.
