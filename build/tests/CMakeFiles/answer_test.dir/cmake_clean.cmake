file(REMOVE_RECURSE
  "CMakeFiles/answer_test.dir/core/answer_test.cc.o"
  "CMakeFiles/answer_test.dir/core/answer_test.cc.o.d"
  "answer_test"
  "answer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/answer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
