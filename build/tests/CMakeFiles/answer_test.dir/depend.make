# Empty dependencies file for answer_test.
# This may be replaced when dependencies are built.
