# Empty dependencies file for relation_mapping_test.
# This may be replaced when dependencies are built.
