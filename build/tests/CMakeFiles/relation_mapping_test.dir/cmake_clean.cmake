file(REMOVE_RECURSE
  "CMakeFiles/relation_mapping_test.dir/mapping/relation_mapping_test.cc.o"
  "CMakeFiles/relation_mapping_test.dir/mapping/relation_mapping_test.cc.o.d"
  "relation_mapping_test"
  "relation_mapping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
