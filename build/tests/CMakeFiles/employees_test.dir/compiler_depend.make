# Empty compiler generated dependencies file for employees_test.
# This may be replaced when dependencies are built.
