file(REMOVE_RECURSE
  "CMakeFiles/employees_test.dir/workload/employees_test.cc.o"
  "CMakeFiles/employees_test.dir/workload/employees_test.cc.o.d"
  "employees_test"
  "employees_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/employees_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
