file(REMOVE_RECURSE
  "CMakeFiles/mapping_generator_test.dir/mapping/mapping_generator_test.cc.o"
  "CMakeFiles/mapping_generator_test.dir/mapping/mapping_generator_test.cc.o.d"
  "mapping_generator_test"
  "mapping_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
