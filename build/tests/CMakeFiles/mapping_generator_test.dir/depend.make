# Empty dependencies file for mapping_generator_test.
# This may be replaced when dependencies are built.
