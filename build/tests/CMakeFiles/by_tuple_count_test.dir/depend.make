# Empty dependencies file for by_tuple_count_test.
# This may be replaced when dependencies are built.
