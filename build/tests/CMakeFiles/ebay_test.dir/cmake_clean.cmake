file(REMOVE_RECURSE
  "CMakeFiles/ebay_test.dir/workload/ebay_test.cc.o"
  "CMakeFiles/ebay_test.dir/workload/ebay_test.cc.o.d"
  "ebay_test"
  "ebay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
