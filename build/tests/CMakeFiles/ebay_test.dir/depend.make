# Empty dependencies file for ebay_test.
# This may be replaced when dependencies are built.
