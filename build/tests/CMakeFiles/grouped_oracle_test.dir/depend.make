# Empty dependencies file for grouped_oracle_test.
# This may be replaced when dependencies are built.
