file(REMOVE_RECURSE
  "CMakeFiles/grouped_oracle_test.dir/core/grouped_oracle_test.cc.o"
  "CMakeFiles/grouped_oracle_test.dir/core/grouped_oracle_test.cc.o.d"
  "grouped_oracle_test"
  "grouped_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouped_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
