# Empty compiler generated dependencies file for ablation_minmax_distribution.
# This may be replaced when dependencies are built.
