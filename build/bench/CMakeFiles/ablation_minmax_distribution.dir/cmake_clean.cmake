file(REMOVE_RECURSE
  "CMakeFiles/ablation_minmax_distribution.dir/ablation_minmax_distribution.cc.o"
  "CMakeFiles/ablation_minmax_distribution.dir/ablation_minmax_distribution.cc.o.d"
  "ablation_minmax_distribution"
  "ablation_minmax_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_minmax_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
