# Empty compiler generated dependencies file for fig10_mappings.
# This may be replaced when dependencies are built.
