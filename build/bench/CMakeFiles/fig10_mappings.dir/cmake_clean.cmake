file(REMOVE_RECURSE
  "CMakeFiles/fig10_mappings.dir/fig10_mappings.cc.o"
  "CMakeFiles/fig10_mappings.dir/fig10_mappings.cc.o.d"
  "fig10_mappings"
  "fig10_mappings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mappings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
