
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_xlarge_tuples.cc" "bench/CMakeFiles/fig12_xlarge_tuples.dir/fig12_xlarge_tuples.cc.o" "gcc" "bench/CMakeFiles/fig12_xlarge_tuples.dir/fig12_xlarge_tuples.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aqua_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_reformulate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aqua_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
