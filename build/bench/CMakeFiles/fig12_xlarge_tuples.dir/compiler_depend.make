# Empty compiler generated dependencies file for fig12_xlarge_tuples.
# This may be replaced when dependencies are built.
