file(REMOVE_RECURSE
  "CMakeFiles/fig12_xlarge_tuples.dir/fig12_xlarge_tuples.cc.o"
  "CMakeFiles/fig12_xlarge_tuples.dir/fig12_xlarge_tuples.cc.o.d"
  "fig12_xlarge_tuples"
  "fig12_xlarge_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_xlarge_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
