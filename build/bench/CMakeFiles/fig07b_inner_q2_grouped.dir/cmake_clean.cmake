file(REMOVE_RECURSE
  "CMakeFiles/fig07b_inner_q2_grouped.dir/fig07b_inner_q2_grouped.cc.o"
  "CMakeFiles/fig07b_inner_q2_grouped.dir/fig07b_inner_q2_grouped.cc.o.d"
  "fig07b_inner_q2_grouped"
  "fig07b_inner_q2_grouped.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07b_inner_q2_grouped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
