# Empty dependencies file for fig07b_inner_q2_grouped.
# This may be replaced when dependencies are built.
