file(REMOVE_RECURSE
  "CMakeFiles/fig08_small_mappings.dir/fig08_small_mappings.cc.o"
  "CMakeFiles/fig08_small_mappings.dir/fig08_small_mappings.cc.o.d"
  "fig08_small_mappings"
  "fig08_small_mappings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_small_mappings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
