# Empty dependencies file for fig08_small_mappings.
# This may be replaced when dependencies are built.
