file(REMOVE_RECURSE
  "CMakeFiles/table03_semantics.dir/table03_semantics.cc.o"
  "CMakeFiles/table03_semantics.dir/table03_semantics.cc.o.d"
  "table03_semantics"
  "table03_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
