# Empty compiler generated dependencies file for table03_semantics.
# This may be replaced when dependencies are built.
