file(REMOVE_RECURSE
  "CMakeFiles/ablation_sum_distribution.dir/ablation_sum_distribution.cc.o"
  "CMakeFiles/ablation_sum_distribution.dir/ablation_sum_distribution.cc.o.d"
  "ablation_sum_distribution"
  "ablation_sum_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sum_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
