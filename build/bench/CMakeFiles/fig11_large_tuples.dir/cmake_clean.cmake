file(REMOVE_RECURSE
  "CMakeFiles/fig11_large_tuples.dir/fig11_large_tuples.cc.o"
  "CMakeFiles/fig11_large_tuples.dir/fig11_large_tuples.cc.o.d"
  "fig11_large_tuples"
  "fig11_large_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_large_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
