# Empty compiler generated dependencies file for fig11_large_tuples.
# This may be replaced when dependencies are built.
