file(REMOVE_RECURSE
  "CMakeFiles/fig07_small_tuples_ebay.dir/fig07_small_tuples_ebay.cc.o"
  "CMakeFiles/fig07_small_tuples_ebay.dir/fig07_small_tuples_ebay.cc.o.d"
  "fig07_small_tuples_ebay"
  "fig07_small_tuples_ebay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_small_tuples_ebay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
