# Empty compiler generated dependencies file for fig07_small_tuples_ebay.
# This may be replaced when dependencies are built.
