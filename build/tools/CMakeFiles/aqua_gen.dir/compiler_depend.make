# Empty compiler generated dependencies file for aqua_gen.
# This may be replaced when dependencies are built.
