file(REMOVE_RECURSE
  "CMakeFiles/aqua_gen.dir/aqua_gen.cc.o"
  "CMakeFiles/aqua_gen.dir/aqua_gen.cc.o.d"
  "aqua_gen"
  "aqua_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
