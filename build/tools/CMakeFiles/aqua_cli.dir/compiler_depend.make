# Empty compiler generated dependencies file for aqua_cli.
# This may be replaced when dependencies are built.
