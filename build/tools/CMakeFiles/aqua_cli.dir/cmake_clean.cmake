file(REMOVE_RECURSE
  "CMakeFiles/aqua_cli.dir/aqua_cli.cc.o"
  "CMakeFiles/aqua_cli.dir/aqua_cli.cc.o.d"
  "aqua_cli"
  "aqua_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
