// Extension experiment (not in the paper): the by-tuple MAX *distribution*
// — marked "?" in the paper's Figure 6 — computed three ways:
//
//   naive              exact, O(l^n)  (the paper's only option)
//   CDF factorisation  exact, O(n*m log(n*m))  (this repository)
//   Monte-Carlo        consistent estimate, O(samples * n)
//
// The factorised sweep turns an open cell into one that scales to millions
// of tuples.

#include "aqua/core/by_tuple_minmax.h"
#include "aqua/core/naive.h"
#include "aqua/core/sampler.h"
#include "aqua/query/parser.h"
#include "aqua/workload/synthetic.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace aqua;
  const bool quick = bench::Quick(argc, argv);
  bench::Banner("Extension: by-tuple MAX distribution",
                "naive enumeration vs exact CDF factorisation vs "
                "Monte-Carlo; #mappings = 3");

  const std::vector<size_t> sizes =
      quick ? std::vector<size_t>{8, 1'000}
            : std::vector<size_t>{8, 12, 16, 1'000, 100'000, 1'000'000};
  for (size_t n : sizes) {
    Rng rng(1000 + n);
    SyntheticOptions opts;
    opts.num_tuples = n;
    opts.num_attributes = 5;
    opts.num_mappings = 3;
    const SyntheticWorkload w = *GenerateSyntheticWorkload(opts, rng);
    const AggregateQuery q = w.MakeQuery(AggregateFunction::kMax);
    const double x = static_cast<double>(n);

    if (n <= 16) {
      NaiveOptions budget;
      budget.max_sequences = uint64_t{1} << 26;
      bench::Row(x, "naive(exact)", bench::TimeSeconds([&] {
                   (void)NaiveByTuple::Dist(q, w.pmapping, w.table, budget);
                 }));
    } else {
      bench::Skipped(x, "naive(exact)", "3^n sequences over budget");
    }

    bench::Row(x, "cdf-factorisation(exact)", bench::TimeSeconds([&] {
                 (void)ByTupleMinMax::DistMax(q, w.pmapping, w.table);
               }));

    // Per-sample cost is O(n); scale the sample budget down at large n to
    // keep the harness bounded (the error scales as 1/sqrt(samples)).
    SamplerOptions mc;
    mc.num_samples = n <= 1'000 ? 10'000 : 1'000;
    bench::Row(x,
               "monte-carlo(" + std::to_string(mc.num_samples / 1000) + "k)",
               bench::TimeSeconds([&] {
                 (void)ByTupleSampler::Sample(q, w.pmapping, w.table, mc);
               }));
  }
  return bench::Finish(argc, argv);
}
