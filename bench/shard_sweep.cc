// Shard sweep: the cost of fault isolation. Runs the sharded by-tuple
// pass at 1/2/4/8 fault domains over the fig09 medium instances and
// reports the per-shard-count wall time, with the supervisor, child
// ExecContexts, and the merge layer on the path. Fault-free the answers
// must match the serial run — COUNT range bit-identical, COUNT
// distribution within 1e-9 total variation (shard boundaries re-associate
// double sums on non-dyadic synthetic probabilities) — so a mismatch
// aborts the bench rather than reporting a fast-but-wrong point.

#include <cstdio>
#include <cstdlib>

#include "aqua/core/engine.h"
#include "aqua/prob/distribution.h"
#include "aqua/workload/synthetic.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace aqua;
  const bool quick = bench::Quick(argc, argv);

  bench::Banner("Shard sweep",
                "sharded by-tuple pass at 1/2/4/8 fault domains, "
                "#attributes = 50, #mappings = 20, #tuples sweeps");

  const std::vector<size_t> sizes = quick
                                        ? std::vector<size_t>{2'000, 5'000}
                                        : std::vector<size_t>{5'000, 10'000,
                                                              20'000, 50'000};

  for (const size_t n : sizes) {
    Rng rng(500 + n);
    SyntheticOptions opts;
    opts.num_tuples = n;
    opts.num_attributes = 50;
    opts.num_mappings = 20;
    const SyntheticWorkload w = *GenerateSyntheticWorkload(opts, rng);
    const double x = static_cast<double>(n);
    const AggregateQuery count_q = w.MakeQuery(AggregateFunction::kCount);

    auto engine_at = [&](int shards) {
      EngineOptions eopts;
      eopts.shards = shards;
      eopts.threads = 2;
      return Engine(eopts);
    };

    // COUNT range: linear per shard, bit-identical at every shard count
    // (interval sums fold in shard order over exact per-tuple bounds).
    Result<AggregateAnswer> serial_range = Status::Internal("not yet run");
    for (const int shards : {1, 2, 4, 8}) {
      const Engine engine = engine_at(shards);
      Result<AggregateAnswer> answer = Status::Internal("not yet run");
      const double seconds = bench::TimeSeconds([&] {
        answer = engine.Answer(count_q, w.pmapping, w.table,
                               MappingSemantics::kByTuple,
                               AggregateSemantics::kRange);
      });
      if (!answer.ok()) {
        bench::Skipped(x, "ShardedRangeCOUNT", answer.status().message());
        break;
      }
      if (shards == 1) {
        serial_range = std::move(answer);
      } else if (answer->range.low != serial_range->range.low ||
                 answer->range.high != serial_range->range.high) {
        std::fprintf(stderr,
                     "FATAL: ShardedRangeCOUNT answer differs at shards=%d\n",
                     shards);
        std::exit(1);
      }
      bench::Row(x, "ShardedRangeCOUNT[s=" + std::to_string(shards) + "]",
                 seconds, shards == 1 ? &serial_range->stats : &answer->stats);
    }

    // COUNT distribution: the quadratic DP runs per shard (each shard's DP
    // is quadratic in its own size, so sharding also shrinks the work) and
    // the partials convolve back together.
    Result<AggregateAnswer> serial_dist = Status::Internal("not yet run");
    for (const int shards : {1, 2, 4, 8}) {
      const Engine engine = engine_at(shards);
      Result<AggregateAnswer> answer = Status::Internal("not yet run");
      const double seconds = bench::TimeSeconds([&] {
        answer = engine.Answer(count_q, w.pmapping, w.table,
                               MappingSemantics::kByTuple,
                               AggregateSemantics::kDistribution);
      });
      if (!answer.ok()) {
        bench::Skipped(x, "ShardedPDCOUNT", answer.status().message());
        break;
      }
      if (shards == 1) {
        serial_dist = std::move(answer);
      } else if (Distribution::TotalVariationDistance(
                     answer->distribution, serial_dist->distribution) > 1e-9) {
        std::fprintf(stderr,
                     "FATAL: ShardedPDCOUNT answer drifted at shards=%d\n",
                     shards);
        std::exit(1);
      }
      bench::Row(x, "ShardedPDCOUNT[s=" + std::to_string(shards) + "]",
                 seconds, shards == 1 ? &serial_dist->stats : &answer->stats);
    }
  }
  return bench::Finish(argc, argv);
}
