#!/usr/bin/env python3
"""Compare a bench run's JSON against its committed baseline snapshot.

Usage: check_bench_delta.py BASELINE.json CURRENT.json
           [--max-seconds-ratio R] [--min-abs-seconds S]

The contract is asymmetric by design:

* Structure must match exactly: same figure, same (x, algorithm) rows in
  the same order, same skipped flags. A new or vanished sweep point is a
  behavioural change someone must re-baseline deliberately.
* `steps` must match exactly. Steps are the engine's deterministic work
  counter (ExecContext charges), so any drift means the algorithm now
  does different work — the whole point of keeping snapshots.
* `seconds` only gates regressions: current may be up to R times the
  baseline (default 3.0 — CI machines are noisy) before the check fails,
  and rows faster than --min-abs-seconds (default 0.05s) in both runs are
  never compared, because micro-timings are dominated by noise.
  Improvements never fail; re-baseline when they are durable.

Exit codes: 0 = within budget, 1 = delta violation, 2 = usage/IO error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench-delta: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-seconds-ratio", type=float, default=3.0)
    parser.add_argument("--min-abs-seconds", type=float, default=0.05)
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    failures = []

    if base.get("figure") != cur.get("figure"):
        failures.append(
            f"figure changed: {base.get('figure')!r} -> {cur.get('figure')!r}"
        )

    base_rows = base.get("rows", [])
    cur_rows = cur.get("rows", [])
    if len(base_rows) != len(cur_rows):
        failures.append(
            f"row count changed: {len(base_rows)} -> {len(cur_rows)}"
        )

    for i, (b, c) in enumerate(zip(base_rows, cur_rows)):
        key = f"row {i} (x={b.get('x')}, {b.get('algorithm')})"
        if (b.get("x"), b.get("algorithm")) != (c.get("x"), c.get("algorithm")):
            failures.append(
                f"{key}: identity changed to "
                f"(x={c.get('x')}, {c.get('algorithm')})"
            )
            continue
        if b.get("skipped") != c.get("skipped"):
            failures.append(
                f"{key}: skipped changed "
                f"{b.get('skipped')} -> {c.get('skipped')}"
            )
            continue
        if b.get("steps") != c.get("steps"):
            failures.append(
                f"{key}: steps drifted {b.get('steps')} -> {c.get('steps')} "
                "(deterministic work changed)"
            )
        bs, cs = b.get("seconds", 0.0), c.get("seconds", 0.0)
        if b.get("skipped"):
            continue
        if bs < args.min_abs_seconds and cs < args.min_abs_seconds:
            continue  # both in the noise floor
        if bs > 0 and cs > bs * args.max_seconds_ratio:
            failures.append(
                f"{key}: seconds regressed {bs:.6f} -> {cs:.6f} "
                f"(> {args.max_seconds_ratio}x)"
            )

    if failures:
        print(f"bench-delta: {args.current} vs {args.baseline}: "
              f"{len(failures)} violation(s)")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"bench-delta: {args.current} within budget of {args.baseline} "
          f"({len(cur_rows)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
