// Figure 12: the most scalable algorithms at 5-20 million tuples
// (#attributes = 20, #mappings = 5). The paper ran 15-30M tuples; this
// harness tops out at 20M to stay inside the container's RAM, preserving
// the near-linear shape.

#include "aqua/core/by_tuple_count.h"
#include "aqua/core/by_tuple_minmax.h"
#include "aqua/core/by_tuple_sum.h"
#include "aqua/workload/synthetic.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace aqua;
  const bool quick = bench::Quick(argc, argv);

  bench::Banner("Figure 12",
                "very large synthetic instances, #attributes = 20, "
                "#mappings = 5, #tuples 5M-20M");

  const std::vector<size_t> sizes =
      quick ? std::vector<size_t>{500'000}
            : std::vector<size_t>{5'000'000, 10'000'000, 20'000'000};
  for (size_t n : sizes) {
    Rng rng(700);
    SyntheticOptions opts;
    opts.num_tuples = n;
    opts.num_attributes = 20;
    opts.num_mappings = 5;
    const SyntheticWorkload w = *GenerateSyntheticWorkload(opts, rng);
    const double x = static_cast<double>(n);
    const AggregateQuery count_q = w.MakeQuery(AggregateFunction::kCount);
    const AggregateQuery sum_q = w.MakeQuery(AggregateFunction::kSum);
    const AggregateQuery avg_q = w.MakeQuery(AggregateFunction::kAvg);
    const AggregateQuery max_q = w.MakeQuery(AggregateFunction::kMax);

    bench::Row(x, "ByTupleRangeCOUNT", bench::TimeSeconds([&] {
                 (void)ByTupleCount::Range(count_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleRangeSUM", bench::TimeSeconds([&] {
                 (void)ByTupleSum::RangeSum(sum_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleRangeAVG", bench::TimeSeconds([&] {
                 (void)ByTupleSum::RangeAvgExact(avg_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleRangeMAX", bench::TimeSeconds([&] {
                 (void)ByTupleMinMax::RangeMax(max_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleExpValSUM", bench::TimeSeconds([&] {
                 (void)ByTupleSum::ExpectedSum(sum_q, w.pmapping, w.table);
               }));
  }
  return bench::Finish(argc, argv);
}
