// Figure 7: running time vs. #tuples on small eBay instances (2 mappings).
// The algorithms with no PTIME by-tuple variant (PD/expected value of SUM,
// AVG, MAX) enumerate 2^n sequences and blow up; the PTIME ones stay flat.
// The paper reports >10 days at 36 tuples on its 2009 Java prototype; the
// same growth shows here at C++ speed, so the sweep stops at 24 tuples.

#include <vector>

#include "aqua/core/by_tuple_count.h"
#include "aqua/core/by_tuple_minmax.h"
#include "aqua/core/by_tuple_sum.h"
#include "aqua/core/naive.h"
#include "aqua/workload/ebay.h"
#include "bench_util.h"

namespace {

using namespace aqua;

AggregateQuery PriceQuery(AggregateFunction func) {
  AggregateQuery q;
  q.func = func;
  if (func != AggregateFunction::kCount) q.attribute = "price";
  q.relation = "T2";
  // A mildly selective condition so COUNT is non-trivial and optional
  // tuples exist.
  q.where =
      Predicate::Comparison("price", CompareOp::kLt, Value::Double(400.0));
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::Quick(argc, argv);
  Rng rng(2008);
  EbayOptions opts;
  opts.num_auctions = 4;
  opts.min_bids = 6;
  opts.max_bids = 6;
  const Table table = *GenerateEbayTable(opts, rng);
  const PMapping pm = *MakeEbayPMapping();
  NaiveOptions budget;
  budget.max_sequences = uint64_t{1} << 25;

  bench::Banner("Figure 7",
                "small instances, simulated eBay data, #mappings = 2, "
                "#tuples grows one 6-bid auction at a time");

  const size_t max_auctions = quick ? 2 : 4;
  for (size_t k = 1; k <= max_auctions; ++k) {
    std::vector<uint32_t> rows;
    for (uint32_t r = 0; r < 6 * k; ++r) rows.push_back(r);
    const double x = static_cast<double>(rows.size());

    // Exponential algorithms (no known PTIME method; naive enumeration).
    const AggregateQuery sum_q = PriceQuery(AggregateFunction::kSum);
    const AggregateQuery avg_q = PriceQuery(AggregateFunction::kAvg);
    const AggregateQuery max_q = PriceQuery(AggregateFunction::kMax);
    const AggregateQuery count_q = PriceQuery(AggregateFunction::kCount);
    bench::Row(x, "ByTuplePDSUM(naive)", bench::TimeSeconds([&] {
                 (void)NaiveByTuple::Dist(sum_q, pm, table, budget, &rows);
               }));
    bench::Row(x, "ByTuplePDAVG(naive)", bench::TimeSeconds([&] {
                 (void)NaiveByTuple::Dist(avg_q, pm, table, budget, &rows);
               }));
    bench::Row(x, "ByTupleExpValAVG(naive)", bench::TimeSeconds([&] {
                 (void)NaiveByTuple::Dist(avg_q, pm, table, budget, &rows);
               }));
    bench::Row(x, "ByTuplePDMAX(naive)", bench::TimeSeconds([&] {
                 (void)NaiveByTuple::Dist(max_q, pm, table, budget, &rows);
               }));
    bench::Row(x, "ByTupleExpValMAX(naive)", bench::TimeSeconds([&] {
                 (void)NaiveByTuple::Dist(max_q, pm, table, budget, &rows);
               }));

    // PTIME algorithms. Each gets an unbounded ExecContext so the JSON
    // report records steps charged alongside wall time.
    {
      ExecContext ctx;
      bench::Row(x, "ByTupleRangeCOUNT", bench::TimeSeconds([&] {
                   (void)ByTupleCount::Range(count_q, pm, table, &rows, &ctx);
                 }),
                 ctx);
    }
    {
      ExecContext ctx;
      bench::Row(x, "ByTuplePDCOUNT", bench::TimeSeconds([&] {
                   (void)ByTupleCount::Dist(count_q, pm, table, &rows, &ctx);
                 }),
                 ctx);
    }
    {
      ExecContext ctx;
      bench::Row(x, "ByTupleExpValCOUNT", bench::TimeSeconds([&] {
                   (void)ByTupleCount::Expected(count_q, pm, table, &rows,
                                                &ctx);
                 }),
                 ctx);
    }
    {
      ExecContext ctx;
      bench::Row(x, "ByTupleRangeSUM", bench::TimeSeconds([&] {
                   (void)ByTupleSum::RangeSum(sum_q, pm, table, &rows, &ctx);
                 }),
                 ctx);
    }
    {
      ExecContext ctx;
      bench::Row(x, "ByTupleExpValSUM", bench::TimeSeconds([&] {
                   (void)ByTupleSum::ExpectedSumLinear(sum_q, pm, table, &rows,
                                                       &ctx);
                 }),
                 ctx);
    }
    {
      ExecContext ctx;
      bench::Row(x, "ByTupleRangeAVG", bench::TimeSeconds([&] {
                   (void)ByTupleSum::RangeAvgExact(avg_q, pm, table, &rows,
                                                   &ctx);
                 }),
                 ctx);
    }
    {
      ExecContext ctx;
      bench::Row(x, "ByTupleRangeMAX", bench::TimeSeconds([&] {
                   (void)ByTupleMinMax::RangeMax(max_q, pm, table, &rows,
                                                 &ctx);
                 }),
                 ctx);
    }
  }
  return bench::Finish(argc, argv);
}
