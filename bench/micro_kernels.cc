// google-benchmark microbenches for the hot kernels, plus the
// columnar-vs-row-materialising ablation called out in DESIGN.md.

#include <benchmark/benchmark.h>

#include "aqua/core/by_tuple_count.h"
#include "aqua/core/by_tuple_minmax.h"
#include "aqua/core/by_tuple_sum.h"
#include "aqua/core/clt.h"
#include "aqua/prob/discrete_sampler.h"
#include "aqua/prob/distribution.h"
#include "aqua/query/executor.h"
#include "aqua/query/parser.h"
#include "aqua/workload/synthetic.h"

namespace {

using namespace aqua;

const SyntheticWorkload& Workload() {
  static const SyntheticWorkload* w = [] {
    Rng rng(42);
    SyntheticOptions opts;
    opts.num_tuples = 100'000;
    opts.num_attributes = 20;
    opts.num_mappings = 8;
    return new SyntheticWorkload(*GenerateSyntheticWorkload(opts, rng));
  }();
  return *w;
}

void BM_PredicateEvalPerRow(benchmark::State& state) {
  const SyntheticWorkload& w = Workload();
  const auto pred = Predicate::Comparison("a0", CompareOp::kLt,
                                          Value::Double(w.threshold));
  const BoundPredicate bound =
      *BoundPredicate::Bind(pred, w.table.schema());
  size_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bound.Matches(w.table, row));
    row = (row + 1) % w.table.num_rows();
  }
}
BENCHMARK(BM_PredicateEvalPerRow);

const Column& ValueColumn() { return Workload().table.column(1); }

void BM_ColumnarSum(benchmark::State& state) {
  const Column& col = ValueColumn();
  for (auto _ : state) {
    double total = 0;
    for (size_t r = 0; r < col.size(); ++r) total += col.DoubleAt(r);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(col.size()));
}

BENCHMARK(BM_ColumnarSum);

void BM_RowMaterialisingSum(benchmark::State& state) {
  const Column& col = ValueColumn();
  for (auto _ : state) {
    double total = 0;
    for (size_t r = 0; r < col.size(); ++r) {
      total += *col.GetValue(r).ToDouble();  // Value round-trip per cell
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(col.size()));
}

BENCHMARK(BM_RowMaterialisingSum);

void BM_ByTupleRangeCount(benchmark::State& state) {
  const SyntheticWorkload& w = Workload();
  const AggregateQuery q = w.MakeQuery(AggregateFunction::kCount);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ByTupleCount::Range(q, w.pmapping, w.table));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.table.num_rows()));
}

BENCHMARK(BM_ByTupleRangeCount);

void BM_ByTupleRangeSum(benchmark::State& state) {
  const SyntheticWorkload& w = Workload();
  const AggregateQuery q = w.MakeQuery(AggregateFunction::kSum);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ByTupleSum::RangeSum(q, w.pmapping, w.table));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.table.num_rows()));
}

BENCHMARK(BM_ByTupleRangeSum);

void BM_ByTuplePDCountDP(benchmark::State& state) {
  // Quadratic DP on n tuples (subset of the workload).
  const SyntheticWorkload& w = Workload();
  const AggregateQuery q = w.MakeQuery(AggregateFunction::kCount);
  std::vector<uint32_t> rows(static_cast<size_t>(state.range(0)));
  for (size_t r = 0; r < rows.size(); ++r) rows[r] = static_cast<uint32_t>(r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ByTupleCount::Dist(q, w.pmapping, w.table, &rows));
  }
}
BENCHMARK(BM_ByTuplePDCountDP)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_DistMaxSweep(benchmark::State& state) {
  // Exact extremum-distribution extension: O(nm log nm) CDF sweep.
  const SyntheticWorkload& w = Workload();
  const AggregateQuery q = w.MakeQuery(AggregateFunction::kMax);
  std::vector<uint32_t> rows(static_cast<size_t>(state.range(0)));
  for (size_t r = 0; r < rows.size(); ++r) rows[r] = static_cast<uint32_t>(r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ByTupleMinMax::DistMax(q, w.pmapping, w.table, &rows));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DistMaxSweep)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CltSumMoments(benchmark::State& state) {
  const SyntheticWorkload& w = Workload();
  const AggregateQuery q = w.MakeQuery(AggregateFunction::kSum);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ByTupleCLT::ApproxSum(q, w.pmapping, w.table));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.table.num_rows()));
}
BENCHMARK(BM_CltSumMoments);

void BM_DistributionAddMass(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> outcomes(10'000);
  for (auto& o : outcomes) o = static_cast<double>(rng.UniformInt(0, 999));
  for (auto _ : state) {
    Distribution d;
    for (double o : outcomes) d.AddMass(o, 1e-4);
    benchmark::DoNotOptimize(d.size());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_DistributionAddMass);

void BM_AliasSampler(benchmark::State& state) {
  Rng seed_rng(3);
  const std::vector<double> probs = seed_rng.RandomProbabilities(64);
  const DiscreteSampler sampler = *DiscreteSampler::Make(probs);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
}
BENCHMARK(BM_AliasSampler);

void BM_ExecutorScalarScan(benchmark::State& state) {
  const SyntheticWorkload& w = Workload();
  const AggregateQuery q = *SqlParser::ParseSimple(
      "SELECT SUM(a0) FROM S WHERE a1 < 750");
  for (auto _ : state) {
    benchmark::DoNotOptimize(Executor::ExecuteScalar(q, w.table));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.table.num_rows()));
}
BENCHMARK(BM_ExecutorScalarScan);

void BM_SqlParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(SqlParser::Parse(
        "SELECT AVG(R1.price) FROM (SELECT MAX(DISTINCT R2.price) FROM T2 "
        "AS R2 GROUP BY R2.auctionID) AS R1"));
  }
}
BENCHMARK(BM_SqlParse);

}  // namespace

BENCHMARK_MAIN();
