// Figure 10: running time vs. #mappings (#tuples = 50,000). The paper used
// 500 attributes; attribute count only affects data-generation cost, so
// this harness uses 260 candidate columns (enough for 250 mappings) to
// keep the table allocation modest — the algorithmic work is identical.
// ByTupleExpValSUM (a by-table algorithm under the hood, Theorem 4) issues
// one scan per mapping and grows with m faster than the fused by-tuple
// range scans.

#include "aqua/core/by_tuple_count.h"
#include "aqua/core/by_tuple_minmax.h"
#include "aqua/core/by_tuple_sum.h"
#include "aqua/workload/synthetic.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace aqua;
  const bool quick = bench::Quick(argc, argv);

  bench::Banner("Figure 10",
                "synthetic instances, #tuples = 50,000, #mappings sweeps "
                "(260 candidate attributes)");

  const size_t n = quick ? 5'000 : 50'000;
  const std::vector<size_t> mapping_counts =
      quick ? std::vector<size_t>{10, 50}
            : std::vector<size_t>{10, 50, 100, 175, 250};
  for (size_t m : mapping_counts) {
    Rng rng(500 + m);
    SyntheticOptions opts;
    opts.num_tuples = n;
    opts.num_attributes = 260;
    opts.num_mappings = m;
    const SyntheticWorkload w = *GenerateSyntheticWorkload(opts, rng);
    const double x = static_cast<double>(m);
    const AggregateQuery count_q = w.MakeQuery(AggregateFunction::kCount);
    const AggregateQuery sum_q = w.MakeQuery(AggregateFunction::kSum);
    const AggregateQuery avg_q = w.MakeQuery(AggregateFunction::kAvg);
    const AggregateQuery max_q = w.MakeQuery(AggregateFunction::kMax);

    bench::Row(x, "ByTupleExpValSUM", bench::TimeSeconds([&] {
                 (void)ByTupleSum::ExpectedSum(sum_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleRangeCOUNT", bench::TimeSeconds([&] {
                 (void)ByTupleCount::Range(count_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleRangeSUM", bench::TimeSeconds([&] {
                 (void)ByTupleSum::RangeSum(sum_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleRangeAVG", bench::TimeSeconds([&] {
                 (void)ByTupleSum::RangeAvgExact(avg_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleRangeMAX", bench::TimeSeconds([&] {
                 (void)ByTupleMinMax::RangeMax(max_q, w.pmapping, w.table);
               }));
  }
  return bench::Finish(argc, argv);
}
