// Extension experiment (not in the paper): four ways to get at the
// by-tuple SUM *distribution* — the cell the paper's Figure 6 leaves open.
//
//   naive        exact, O(l^n)               (the paper's only option)
//   quantised DP exact on integer grids, O(n * buckets)
//   Monte-Carlo  consistent estimate, O(samples * n)
//   CLT          exact moments, normal shape, O(n * m)
//
// Workload: integer-valued synthetic data (resolution 1 makes the DP
// exact), 3 mappings, growing n. The naive column stops where its budget
// ends — that cliff is the paper's Figure 7/8 wall.

#include <cmath>

#include "aqua/core/by_tuple_sum.h"
#include "aqua/core/clt.h"
#include "aqua/core/naive.h"
#include "aqua/core/sampler.h"
#include "aqua/mapping/generator.h"
#include "aqua/query/parser.h"
#include "aqua/workload/synthetic.h"
#include "bench_util.h"

namespace {

using namespace aqua;

struct Instance {
  Table table;
  PMapping pmapping;
};

Instance MakeIntegerInstance(uint64_t seed, size_t n, size_t m) {
  Rng rng(seed);
  const size_t k = 5;
  std::vector<Attribute> attrs = {{"id", ValueType::kInt64}};
  for (size_t a = 0; a < k; ++a) {
    attrs.push_back({"a" + std::to_string(a), ValueType::kDouble});
  }
  std::vector<Column> cols;
  cols.emplace_back(ValueType::kInt64);
  for (size_t a = 0; a < k; ++a) cols.emplace_back(ValueType::kDouble);
  for (size_t r = 0; r < n; ++r) {
    cols[0].AppendInt64(static_cast<int64_t>(r));
    for (size_t a = 0; a < k; ++a) {
      cols[a + 1].AppendDouble(static_cast<double>(rng.UniformInt(0, 100)));
    }
  }
  Table table = *Table::Make(*Schema::Make(attrs), std::move(cols));
  MappingGeneratorOptions gen;
  gen.num_mappings = m;
  gen.target_attribute = "value";
  for (size_t a = 0; a < k; ++a) {
    gen.candidate_sources.push_back("a" + std::to_string(a));
  }
  gen.certain.push_back({"id", "id"});
  PMapping pm = *GenerateRandomPMapping(gen, rng);
  return Instance{std::move(table), std::move(pm)};
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::Quick(argc, argv);
  bench::Banner("Extension: by-tuple SUM distribution",
                "naive enumeration vs quantised DP vs Monte-Carlo vs CLT; "
                "integer data, #mappings = 3");

  const AggregateQuery q =
      *SqlParser::ParseSimple("SELECT SUM(value) FROM T WHERE value < 90");
  const std::vector<size_t> sizes =
      quick ? std::vector<size_t>{8, 100}
            : std::vector<size_t>{8, 12, 16, 1'000, 10'000, 100'000};
  for (size_t n : sizes) {
    const Instance inst = MakeIntegerInstance(900 + n, n, 3);
    const double x = static_cast<double>(n);

    if (n <= 16) {
      NaiveOptions budget;
      budget.max_sequences = uint64_t{1} << 26;
      bench::Row(x, "naive(exact)", bench::TimeSeconds([&] {
                   (void)NaiveByTuple::Dist(q, inst.pmapping, inst.table,
                                            budget);
                 }));
    } else {
      bench::Skipped(x, "naive(exact)", "3^n sequences over budget");
    }

    if (n <= 10'000) {
      QuantizedDistOptions dp_opts;
      dp_opts.resolution = 1.0;
      dp_opts.max_buckets = size_t{1} << 24;
      bench::Row(x, "quantised-dp(exact@res1)", bench::TimeSeconds([&] {
                   (void)ByTupleSum::DistQuantized(q, inst.pmapping,
                                                   inst.table, dp_opts);
                 }));
    } else {
      // The DP is O(n * buckets) and the bucket range grows with n, so the
      // full distribution costs ~n^2; coarsen the grid instead to keep a
      // fixed bucket budget (error bound n * resolution / 2).
      QuantizedDistOptions dp_opts;
      dp_opts.resolution = static_cast<double>(n) / 100.0;
      dp_opts.max_buckets = size_t{1} << 24;
      bench::Row(x, "quantised-dp(coarse)", bench::TimeSeconds([&] {
                   (void)ByTupleSum::DistQuantized(q, inst.pmapping,
                                                   inst.table, dp_opts);
                 }));
    }

    // Per-sample cost is O(n); scale the sample budget down at large n.
    SamplerOptions mc;
    mc.num_samples = n <= 1'000 ? 10'000 : 1'000;
    bench::Row(x,
               "monte-carlo(" + std::to_string(mc.num_samples / 1000) + "k)",
               bench::TimeSeconds([&] {
                 (void)ByTupleSampler::Sample(q, inst.pmapping, inst.table,
                                              mc);
               }));

    bench::Row(x, "clt(moments)", bench::TimeSeconds([&] {
                 (void)ByTupleCLT::ApproxSum(q, inst.pmapping, inst.table);
               }));
  }
  return bench::Finish(argc, argv);
}
