#ifndef AQUA_BENCH_BENCH_UTIL_H_
#define AQUA_BENCH_BENCH_UTIL_H_

#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "aqua/common/exec_context.h"
#include "aqua/obs/json.h"
#include "aqua/obs/query_stats.h"

namespace aqua::bench {

/// Wall-clock seconds for one invocation of `fn`.
inline double TimeSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// One measured (or skipped) point of a figure sweep.
struct BenchRecord {
  double x = 0;
  std::string algorithm;
  double seconds = 0;
  uint64_t steps = 0;  // ExecContext charge, when the driver captured one
  uint64_t bytes = 0;
  bool skipped = false;
  std::string note;  // skip reason
  int threads = 1;     // worker threads the point ran with
  double speedup = 0;  // serial seconds / this point's seconds; 0 = n/a
};

/// Collects every Row/Skipped call of a driver run and, when the driver
/// was invoked with --json[=path], writes the sweep as a machine-readable
/// BENCH_<figure>.json instead of leaving only the ad-hoc stdout table.
class Reporter {
 public:
  static Reporter& Get() {
    static Reporter reporter;
    return reporter;
  }

  void Begin(std::string figure, std::string description) {
    figure_ = std::move(figure);
    description_ = std::move(description);
  }

  void Add(BenchRecord record) { records_.push_back(std::move(record)); }

  const std::string& figure() const { return figure_; }

  /// `BENCH_<slug>.json`, e.g. "Figure 7" -> BENCH_figure_7.json.
  std::string DefaultPath() const {
    std::string slug;
    for (const char c : figure_) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      } else if (!slug.empty() && slug.back() != '_') {
        slug += '_';
      }
    }
    while (!slug.empty() && slug.back() == '_') slug.pop_back();
    if (slug.empty()) slug = "bench";
    return "BENCH_" + slug + ".json";
  }

  bool WriteJson(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    out << "{" << obs::JsonString("figure", figure_) << ','
        << obs::JsonString("description", description_) << ",\"rows\":[";
    for (size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      if (i > 0) out << ',';
      char x[32];
      std::snprintf(x, sizeof(x), "%g", r.x);
      char seconds[32];
      std::snprintf(seconds, sizeof(seconds), "%.9g", r.seconds);
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.6g", r.speedup);
      out << "{\"x\":" << x << ','
          << obs::JsonString("algorithm", r.algorithm)
          << ",\"seconds\":" << seconds << ",\"steps\":" << r.steps
          << ",\"bytes\":" << r.bytes
          << ",\"skipped\":" << (r.skipped ? "true" : "false") << ','
          << obs::JsonString("note", r.note)
          << ",\"threads\":" << r.threads << ",\"speedup\":" << speedup
          << '}';
    }
    out << "]}\n";
    return static_cast<bool>(out);
  }

 private:
  std::string figure_;
  std::string description_;
  std::vector<BenchRecord> records_;
};

/// Prints the figure banner and opens the JSON report.
inline void Banner(const char* figure, const char* description) {
  Reporter::Get().Begin(figure, description);
  std::printf("=== %s ===\n%s\n", figure, description);
  std::printf("%-14s %-28s %12s\n", "x", "algorithm", "seconds");
}

/// Prints one series row (also machine-parsable: x, algorithm, seconds).
inline void Row(double x, const std::string& algorithm, double seconds) {
  Reporter::Get().Add(BenchRecord{x, algorithm, seconds, 0, 0, false, ""});
  std::printf("%-14g %-28s %12.6f\n", x, algorithm.c_str(), seconds);
  std::fflush(stdout);
}

/// Row variant that also records the work the algorithm charged to `ctx`
/// (pass an unbounded ExecContext into the timed call to count steps
/// without imposing a budget).
inline void Row(double x, const std::string& algorithm, double seconds,
                const ExecContext& ctx) {
  Reporter::Get().Add(
      BenchRecord{x, algorithm, seconds, ctx.steps(), ctx.bytes(), false, ""});
  std::printf("%-14g %-28s %12.6f  (steps=%llu)\n", x, algorithm.c_str(),
              seconds, static_cast<unsigned long long>(ctx.steps()));
  std::fflush(stdout);
}

/// Row variant fed from an engine answer's QueryStats.
inline void Row(double x, const std::string& algorithm, double seconds,
                const QueryStats* stats) {
  if (stats == nullptr) {
    Row(x, algorithm, seconds);
    return;
  }
  Reporter::Get().Add(BenchRecord{x, algorithm, seconds, stats->steps,
                                  stats->bytes, false, ""});
  std::printf("%-14g %-28s %12.6f  (steps=%llu)\n", x, algorithm.c_str(),
              seconds, static_cast<unsigned long long>(stats->steps));
  std::fflush(stdout);
}

/// Row variant for a parallel sweep point: records the thread count and
/// the speedup over the serial (threads=1) point of the same sweep.
inline void RowParallel(double x, const std::string& algorithm,
                        double seconds, int threads, double speedup) {
  BenchRecord r{x, algorithm, seconds, 0, 0, false, ""};
  r.threads = threads;
  r.speedup = speedup;
  Reporter::Get().Add(std::move(r));
  std::printf("%-14g %-28s %12.6f  (threads=%d, speedup=%.2fx)\n", x,
              algorithm.c_str(), seconds, threads, speedup);
  std::fflush(stdout);
}

/// Prints a skipped-point marker (budget guard, scale limit).
inline void Skipped(double x, const std::string& algorithm,
                    const std::string& why) {
  Reporter::Get().Add(BenchRecord{x, algorithm, 0, 0, 0, true, why});
  std::printf("%-14g %-28s %12s  (%s)\n", x, algorithm.c_str(), "-",
              why.c_str());
  std::fflush(stdout);
}

/// True when the harness was invoked with --quick (CI-sized sweep).
inline bool Quick(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") return true;
  }
  return false;
}

/// Call at the end of main: when the driver was invoked with --json or
/// --json=<path>, writes the collected sweep as JSON. Returns the exit
/// code for main.
inline int Finish(int argc, char** argv) {
  std::string path;
  bool requested = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      requested = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      requested = true;
      path = arg.substr(7);
    }
  }
  if (!requested) return 0;
  if (path.empty()) path = Reporter::Get().DefaultPath();
  if (!Reporter::Get().WriteJson(path)) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace aqua::bench

#endif  // AQUA_BENCH_BENCH_UTIL_H_
