#ifndef AQUA_BENCH_BENCH_UTIL_H_
#define AQUA_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace aqua::bench {

/// Wall-clock seconds for one invocation of `fn`.
inline double TimeSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Prints the figure banner.
inline void Banner(const char* figure, const char* description) {
  std::printf("=== %s ===\n%s\n", figure, description);
  std::printf("%-14s %-28s %12s\n", "x", "algorithm", "seconds");
}

/// Prints one series row (also machine-parsable: x, algorithm, seconds).
inline void Row(double x, const std::string& algorithm, double seconds) {
  std::printf("%-14g %-28s %12.6f\n", x, algorithm.c_str(), seconds);
  std::fflush(stdout);
}

/// Prints a skipped-point marker (budget guard, scale limit).
inline void Skipped(double x, const std::string& algorithm,
                    const std::string& why) {
  std::printf("%-14g %-28s %12s  (%s)\n", x, algorithm.c_str(), "-",
              why.c_str());
  std::fflush(stdout);
}

/// True when the harness was invoked with --quick (CI-sized sweep).
inline bool Quick(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") return true;
  }
  return false;
}

}  // namespace aqua::bench

#endif  // AQUA_BENCH_BENCH_UTIL_H_
