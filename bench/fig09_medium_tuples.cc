// Figure 9: PTIME algorithms, medium instances — running time vs. #tuples
// (#attributes = 50, #mappings = 20). ByTuplePDCOUNT and the
// distribution-derived ByTupleExpValCOUNT are O(m*n + n^2) and separate
// from the linear pack, exactly as in the paper (its prototype became
// intractable around 50k tuples; the quadratic shape is what matters).

#include <cstdlib>

#include "aqua/core/by_tuple_count.h"
#include "aqua/core/by_tuple_minmax.h"
#include "aqua/core/by_tuple_sum.h"
#include "aqua/exec/parallel.h"
#include "aqua/workload/synthetic.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace aqua;
  const bool quick = bench::Quick(argc, argv);

  bench::Banner("Figure 9",
                "medium synthetic instances, #attributes = 50, #mappings = "
                "20, #tuples sweeps");

  const std::vector<size_t> linear_sizes =
      quick ? std::vector<size_t>{10'000, 25'000}
            : std::vector<size_t>{10'000, 25'000, 50'000, 100'000, 200'000};
  // The quadratic algorithms get their own (smaller) grid, as in the paper.
  const std::vector<size_t> quadratic_sizes =
      quick ? std::vector<size_t>{2'000, 5'000}
            : std::vector<size_t>{5'000, 10'000, 20'000, 50'000};

  auto run_linear = [&](size_t n) {
    Rng rng(300 + n);
    SyntheticOptions opts;
    opts.num_tuples = n;
    opts.num_attributes = 50;
    opts.num_mappings = 20;
    const SyntheticWorkload w = *GenerateSyntheticWorkload(opts, rng);
    const double x = static_cast<double>(n);
    const AggregateQuery count_q = w.MakeQuery(AggregateFunction::kCount);
    const AggregateQuery sum_q = w.MakeQuery(AggregateFunction::kSum);
    const AggregateQuery avg_q = w.MakeQuery(AggregateFunction::kAvg);
    const AggregateQuery max_q = w.MakeQuery(AggregateFunction::kMax);
    bench::Row(x, "ByTupleRangeCOUNT", bench::TimeSeconds([&] {
                 (void)ByTupleCount::Range(count_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleRangeSUM", bench::TimeSeconds([&] {
                 (void)ByTupleSum::RangeSum(sum_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleRangeAVG", bench::TimeSeconds([&] {
                 (void)ByTupleSum::RangeAvgExact(avg_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleRangeMAX", bench::TimeSeconds([&] {
                 (void)ByTupleMinMax::RangeMax(max_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleExpValSUM", bench::TimeSeconds([&] {
                 (void)ByTupleSum::ExpectedSum(sum_q, w.pmapping, w.table);
               }));
  };

  auto run_quadratic = [&](size_t n) {
    Rng rng(400 + n);
    SyntheticOptions opts;
    opts.num_tuples = n;
    opts.num_attributes = 50;
    opts.num_mappings = 20;
    const SyntheticWorkload w = *GenerateSyntheticWorkload(opts, rng);
    const double x = static_cast<double>(n);
    const AggregateQuery count_q = w.MakeQuery(AggregateFunction::kCount);
    bench::Row(x, "ByTuplePDCOUNT", bench::TimeSeconds([&] {
                 (void)ByTupleCount::Dist(count_q, w.pmapping, w.table);
               }));
    // The paper computes expected COUNT from the distribution, which is
    // why its ByTupleExpValCOUNT curve tracks the quadratic PD cost.
    bench::Row(x, "ByTupleExpValCOUNT(derived)", bench::TimeSeconds([&] {
                 (void)ByTupleCount::ExpectedViaDistribution(
                     count_q, w.pmapping, w.table);
               }));
    // Ablation: the direct linearity-of-expectation form is O(n*m).
    bench::Row(x, "ByTupleExpValCOUNT(direct)", bench::TimeSeconds([&] {
                 (void)ByTupleCount::Expected(count_q, w.pmapping, w.table);
               }));
    // Parallel sweep of the quadratic DP: same query at 1/2/4/8 worker
    // threads. The answers must be byte-identical to the serial run —
    // the wavefront partition never depends on the thread count — so a
    // mismatch aborts the bench.
    double serial_seconds = 0.0;
    Result<Distribution> serial_dist = Status::Internal("not yet run");
    for (const int threads : {1, 2, 4, 8}) {
      const exec::ExecPolicy policy{threads};
      Result<Distribution> dist = Status::Internal("not yet run");
      const double seconds = bench::TimeSeconds([&] {
        dist = ByTupleCount::Dist(count_q, w.pmapping, w.table,
                                  /*rows=*/nullptr, /*ctx=*/nullptr, policy);
      });
      if (!dist.ok()) {
        bench::Skipped(x, "ByTuplePDCOUNT[parallel]", dist.status().message());
        break;
      }
      if (threads == 1) {
        serial_seconds = seconds;
        serial_dist = std::move(dist);
      } else if (!(dist.value() == serial_dist.value())) {
        std::fprintf(stderr,
                     "FATAL: ByTuplePDCOUNT answer differs at threads=%d\n",
                     threads);
        std::exit(1);
      }
      bench::RowParallel(
          x, "ByTuplePDCOUNT[t=" + std::to_string(threads) + "]", seconds,
          threads, seconds > 0 ? serial_seconds / seconds : 0.0);
    }
  };

  for (size_t n : linear_sizes) run_linear(n);
  for (size_t n : quadratic_sizes) run_quadratic(n);
  return bench::Finish(argc, argv);
}
