// Figure 7 companion: the paper states it "applied the inner query of
// query Q2" — the grouped MAX(DISTINCT price) ... GROUP BY auctionId — to
// growing prefixes of the eBay data. This harness reproduces that exact
// shape: grouped by-tuple algorithms (range / exact distribution /
// expected value) per auction, with the naive grouped enumerator blowing
// up on the same instances.

#include <optional>
#include <vector>

#include "aqua/core/engine.h"
#include "aqua/core/nested.h"
#include "aqua/query/parser.h"
#include "aqua/workload/ebay.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace aqua;
  const bool quick = bench::Quick(argc, argv);
  Rng rng(2008);
  EbayOptions opts;
  opts.num_auctions = 4;
  opts.min_bids = 6;
  opts.max_bids = 6;
  const Table full = *GenerateEbayTable(opts, rng);
  const PMapping pm = *MakeEbayPMapping();
  const Engine engine;

  bench::Banner("Figure 7 (inner Q2, grouped)",
                "MAX(DISTINCT price) GROUP BY auctionId over growing "
                "prefixes of simulated eBay data, #mappings = 2");

  const AggregateQuery grouped_q = *SqlParser::ParseSimple(
      "SELECT MAX(DISTINCT price) FROM T2 GROUP BY auctionId");
  const NestedAggregateQuery q2 = PaperQueryQ2();

  const size_t max_auctions = quick ? 2 : 4;
  for (size_t k = 1; k <= max_auctions; ++k) {
    // Materialise the prefix (first k auctions).
    std::vector<Column> cols;
    for (const Attribute& a : full.schema().attributes()) {
      cols.emplace_back(a.type);
    }
    for (size_t r = 0; r < 6 * k; ++r) {
      cols[0].AppendInt64(full.column(0).Int64At(r));
      cols[1].AppendInt64(full.column(1).Int64At(r));
      for (size_t c = 2; c < 5; ++c) {
        cols[c].AppendDouble(full.column(c).DoubleAt(r));
      }
    }
    const Table prefix = *Table::Make(full.schema(), std::move(cols));
    const double x = static_cast<double>(prefix.num_rows());

    // Exponential: the full nested Q2 distribution by sequence
    // enumeration.
    NaiveOptions budget;
    budget.max_sequences = uint64_t{1} << 25;
    bench::Row(x, "NestedQ2-PD(naive)", bench::TimeSeconds([&] {
                 (void)NestedByTuple::NaiveDist(q2, pm, prefix, budget);
               }));

    // PTIME grouped algorithms via the engine. The engine attaches
    // QueryStats to each answer; sum them so the JSON report carries the
    // total steps charged across groups. (Result<T> is not
    // default-constructible, so the answers live in std::optional.)
    const auto grouped_steps =
        [](const Result<std::vector<GroupedAnswer>>& groups) -> QueryStats {
      QueryStats total;
      if (!groups.ok()) return total;
      for (const GroupedAnswer& g : *groups) {
        total.steps += g.answer.stats.steps;
        total.bytes += g.answer.stats.bytes;
      }
      return total;
    };
    {
      std::optional<Result<std::vector<GroupedAnswer>>> groups;
      const double seconds = bench::TimeSeconds([&] {
        groups.emplace(engine.AnswerGrouped(grouped_q, pm, prefix,
                                            MappingSemantics::kByTuple,
                                            AggregateSemantics::kRange));
      });
      const QueryStats total = grouped_steps(*groups);
      bench::Row(x, "GroupedRangeMAX", seconds, &total);
    }
    {
      std::optional<Result<std::vector<GroupedAnswer>>> groups;
      const double seconds = bench::TimeSeconds([&] {
        groups.emplace(
            engine.AnswerGrouped(grouped_q, pm, prefix,
                                 MappingSemantics::kByTuple,
                                 AggregateSemantics::kDistribution));
      });
      const QueryStats total = grouped_steps(*groups);
      bench::Row(x, "GroupedPDMAX(exact)", seconds, &total);
    }
    bench::Row(x, "NestedQ2-Range(exact)", bench::TimeSeconds([&] {
                 (void)NestedByTuple::Range(q2, pm, prefix);
               }));
    {
      std::optional<Result<AggregateAnswer>> nested;
      const double seconds = bench::TimeSeconds([&] {
        nested.emplace(engine.AnswerNested(q2, pm, prefix,
                                           MappingSemantics::kByTable,
                                           AggregateSemantics::kDistribution));
      });
      bench::Row(x, "ByTableNestedQ2", seconds,
                 nested->ok() ? &(*nested)->stats : nullptr);
    }
  }
  return bench::Finish(argc, argv);
}
