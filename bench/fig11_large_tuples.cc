// Figure 11: the scalable by-tuple algorithms on large instances —
// running time vs. #tuples into the millions (#mappings = 20). The range
// algorithms grow linearly; ByTupleExpValSUM is far cheaper because it is
// the by-table computation (Theorem 4). The paper used 50 attributes; the
// algorithms never touch the non-candidate columns, so 20 attributes keep
// the table allocation inside container memory with identical work.

#include "aqua/core/by_tuple_count.h"
#include "aqua/core/by_tuple_minmax.h"
#include "aqua/core/by_tuple_sum.h"
#include "aqua/workload/synthetic.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace aqua;
  const bool quick = bench::Quick(argc, argv);

  bench::Banner("Figure 11",
                "large synthetic instances, #attributes = 20, #mappings = "
                "20, #tuples sweeps into the millions");

  const std::vector<size_t> sizes =
      quick ? std::vector<size_t>{100'000}
            : std::vector<size_t>{500'000, 1'000'000, 2'000'000, 4'000'000};
  for (size_t n : sizes) {
    Rng rng(600);
    SyntheticOptions opts;
    opts.num_tuples = n;
    opts.num_attributes = 20;
    opts.num_mappings = 20;
    const SyntheticWorkload w = *GenerateSyntheticWorkload(opts, rng);
    const double x = static_cast<double>(n);
    const AggregateQuery count_q = w.MakeQuery(AggregateFunction::kCount);
    const AggregateQuery sum_q = w.MakeQuery(AggregateFunction::kSum);
    const AggregateQuery avg_q = w.MakeQuery(AggregateFunction::kAvg);
    const AggregateQuery max_q = w.MakeQuery(AggregateFunction::kMax);

    bench::Row(x, "ByTupleRangeCOUNT", bench::TimeSeconds([&] {
                 (void)ByTupleCount::Range(count_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleRangeSUM", bench::TimeSeconds([&] {
                 (void)ByTupleSum::RangeSum(sum_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleRangeAVG", bench::TimeSeconds([&] {
                 (void)ByTupleSum::RangeAvgExact(avg_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleRangeMAX", bench::TimeSeconds([&] {
                 (void)ByTupleMinMax::RangeMax(max_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleExpValSUM", bench::TimeSeconds([&] {
                 (void)ByTupleSum::ExpectedSum(sum_q, w.pmapping, w.table);
               }));
  }
  return bench::Finish(argc, argv);
}
