// Reproduces Table III of the paper: the answer to query Q1 on the
// 4-tuple real-estate instance (Table I) under all six semantics.
//
// Note: the paper's printed Table III contains 2/0.4 for the by-table
// distribution, which is inconsistent with its own Table I (only tuple 3
// has reducedDate before Jan 20); this binary prints the values implied by
// the data, cross-checked against exhaustive enumeration (see
// EXPERIMENTS.md).

#include <cstdio>

#include "aqua/core/engine.h"
#include "aqua/workload/real_estate.h"

int main() {
  using namespace aqua;
  const Table ds1 = *PaperInstanceDS1();
  const PMapping pm = *MakeRealEstatePMapping();
  const AggregateQuery q1 = PaperQueryQ1();
  const Engine engine;

  std::printf("=== Table III: the six semantics of aggregate queries ===\n");
  std::printf("query: %s\n", q1.ToString().c_str());
  std::printf("instance: Table I (4 tuples); mappings: m11 (date->postedDate,"
              " 0.6), m12 (date->reducedDate, 0.4)\n\n");
  std::printf("%-10s %-12s %s\n", "mapping", "aggregate", "answer");
  for (auto ms : {MappingSemantics::kByTable, MappingSemantics::kByTuple}) {
    for (auto as :
         {AggregateSemantics::kRange, AggregateSemantics::kDistribution,
          AggregateSemantics::kExpectedValue}) {
      const auto a = engine.Answer(q1, pm, ds1, ms, as);
      std::printf("%-10s %-12s %s\n",
                  std::string(MappingSemanticsToString(ms)).c_str(),
                  std::string(AggregateSemanticsToString(as)).c_str(),
                  a.ok() ? a->ToString().c_str()
                         : a.status().ToString().c_str());
    }
  }
  return 0;
}
