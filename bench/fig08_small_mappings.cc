// Figure 8: running time vs. #mappings on a tiny synthetic table
// (#attributes = 20, #tuples = 6). The exponential algorithms pay l^6
// sequences; the PTIME ones stay near zero.

#include "aqua/core/by_tuple_count.h"
#include "aqua/core/by_tuple_minmax.h"
#include "aqua/core/by_tuple_sum.h"
#include "aqua/core/naive.h"
#include "aqua/workload/synthetic.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace aqua;
  const bool quick = bench::Quick(argc, argv);

  bench::Banner("Figure 8",
                "small synthetic instances, #attributes = 20, #tuples = 6, "
                "#mappings sweeps");

  NaiveOptions budget;
  budget.max_sequences = uint64_t{1} << 25;
  const std::vector<size_t> mapping_counts =
      quick ? std::vector<size_t>{2, 4} : std::vector<size_t>{2, 4, 6, 8, 10,
                                                              12};
  for (size_t m : mapping_counts) {
    Rng rng(100 + m);
    SyntheticOptions opts;
    opts.num_tuples = 6;
    opts.num_attributes = 20;
    opts.num_mappings = m;
    const SyntheticWorkload w = *GenerateSyntheticWorkload(opts, rng);
    const double x = static_cast<double>(m);

    const AggregateQuery count_q = w.MakeQuery(AggregateFunction::kCount);
    const AggregateQuery sum_q = w.MakeQuery(AggregateFunction::kSum);
    const AggregateQuery avg_q = w.MakeQuery(AggregateFunction::kAvg);
    const AggregateQuery max_q = w.MakeQuery(AggregateFunction::kMax);

    bench::Row(x, "ByTuplePDSUM(naive)", bench::TimeSeconds([&] {
                 (void)NaiveByTuple::Dist(sum_q, w.pmapping, w.table, budget);
               }));
    bench::Row(x, "ByTuplePDAVG(naive)", bench::TimeSeconds([&] {
                 (void)NaiveByTuple::Dist(avg_q, w.pmapping, w.table, budget);
               }));
    bench::Row(x, "ByTupleExpValAVG(naive)", bench::TimeSeconds([&] {
                 (void)NaiveByTuple::Dist(avg_q, w.pmapping, w.table, budget);
               }));
    bench::Row(x, "ByTuplePDMAX(naive)", bench::TimeSeconds([&] {
                 (void)NaiveByTuple::Dist(max_q, w.pmapping, w.table, budget);
               }));
    bench::Row(x, "ByTupleExpValMAX(naive)", bench::TimeSeconds([&] {
                 (void)NaiveByTuple::Dist(max_q, w.pmapping, w.table, budget);
               }));

    bench::Row(x, "ByTupleRangeCOUNT", bench::TimeSeconds([&] {
                 (void)ByTupleCount::Range(count_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTuplePDCOUNT", bench::TimeSeconds([&] {
                 (void)ByTupleCount::Dist(count_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleExpValCOUNT", bench::TimeSeconds([&] {
                 (void)ByTupleCount::Expected(count_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleRangeSUM", bench::TimeSeconds([&] {
                 (void)ByTupleSum::RangeSum(sum_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleExpValSUM", bench::TimeSeconds([&] {
                 (void)ByTupleSum::ExpectedSumLinear(sum_q, w.pmapping,
                                                     w.table);
               }));
    bench::Row(x, "ByTupleRangeAVG", bench::TimeSeconds([&] {
                 (void)ByTupleSum::RangeAvgExact(avg_q, w.pmapping, w.table);
               }));
    bench::Row(x, "ByTupleRangeMAX", bench::TimeSeconds([&] {
                 (void)ByTupleMinMax::RangeMax(max_q, w.pmapping, w.table);
               }));
  }
  return bench::Finish(argc, argv);
}
