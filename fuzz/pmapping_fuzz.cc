// libFuzzer harness for the p-mapping text format: arbitrary input must
// yield a Status, and any PMapping that parses successfully must satisfy
// Definition 2 — CheckInvariants() aborting on a parsed mapping means the
// parser accepted a probabilistically inconsistent object, which is
// exactly the class of bug the invariant layer exists to catch.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "aqua/mapping/serialize.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const aqua::Result<aqua::PMapping> one = aqua::PMappingText::Parse(text);
  if (one.ok()) {
    one->CheckInvariants();
    (void)one->ToString();
  }
  const aqua::Result<aqua::SchemaPMapping> many =
      aqua::PMappingText::ParseSchema(text);
  if (many.ok()) {
    for (size_t i = 0; i < many->size(); ++i) {
      many->mapping(i).CheckInvariants();
    }
  }
  return 0;
}
