SELECT MAX(DISTINCT currentPrice) FROM T2 WHERE auction = 'ebay'
