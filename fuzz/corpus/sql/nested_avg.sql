SELECT AVG(s) FROM (SELECT SUM(price) AS s FROM Listings GROUP BY city) AS inner_q
