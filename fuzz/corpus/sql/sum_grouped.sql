SELECT SUM(bid) FROM Auctions WHERE time >= 10 AND bid <> 0 GROUP BY auction
