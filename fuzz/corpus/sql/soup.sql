SELECT ) FROM ( WHERE NOT NOT ((( 'txt' <= 1e9 GROUP BY a.b ;
