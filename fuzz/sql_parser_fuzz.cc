// libFuzzer harness for the SQL parser: any byte sequence must produce a
// Status (parse tree or error), never a crash, hang, or unbounded
// recursion. Runs under ASan in CI's fuzz-smoke job; the deterministic
// fuzz-lite tests in tests/robustness/fuzz_test.cc cover the same
// contract without a fuzzing engine.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "aqua/query/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view sql(reinterpret_cast<const char*>(data), size);
  const aqua::Result<aqua::ParsedQuery> parsed = aqua::SqlParser::Parse(sql);
  if (parsed.ok()) {
    // A successful parse must round-trip through the printers without
    // tripping any invariant.
    if (parsed->kind == aqua::ParsedQuery::Kind::kNested) {
      (void)parsed->nested.ToString();
    } else {
      (void)parsed->simple.ToString();
    }
  }
  return 0;
}
