// Replay driver for compilers without libFuzzer (gcc): feeds each file
// named on the command line to LLVMFuzzerTestOneInput once, so the
// harnesses build everywhere and the seed corpus doubles as a regression
// suite. Clang builds (-DAQUA_FUZZ=ON with CXX=clang++) link the real
// fuzzing engine instead of this file.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string input = ss.str();
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                           input.size());
    ++replayed;
  }
  std::printf("replayed %d input(s) without a crash\n", replayed);
  return 0;
}
