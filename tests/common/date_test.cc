#include "aqua/common/date.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(DateTest, EpochIsZero) {
  const Date d = *Date::FromYmd(1970, 1, 1);
  EXPECT_EQ(d.days_since_epoch(), 0);
}

TEST(DateTest, KnownDayCounts) {
  EXPECT_EQ(Date::FromYmd(1970, 1, 2)->days_since_epoch(), 1);
  EXPECT_EQ(Date::FromYmd(1969, 12, 31)->days_since_epoch(), -1);
  EXPECT_EQ(Date::FromYmd(2000, 3, 1)->days_since_epoch(), 11017);
  EXPECT_EQ(Date::FromYmd(2008, 1, 20)->days_since_epoch(), 13898);
}

TEST(DateTest, RoundTripYmd) {
  for (int year : {1900, 1970, 1999, 2000, 2008, 2024, 2100}) {
    for (int month : {1, 2, 6, 12}) {
      for (int day : {1, 15, 28}) {
        const Date d = *Date::FromYmd(year, month, day);
        const Date::Ymd ymd = d.ToYmd();
        EXPECT_EQ(ymd.year, year);
        EXPECT_EQ(ymd.month, month);
        EXPECT_EQ(ymd.day, day);
      }
    }
  }
}

TEST(DateTest, LeapYearRules) {
  EXPECT_TRUE(Date::FromYmd(2008, 2, 29).ok());   // divisible by 4
  EXPECT_FALSE(Date::FromYmd(2007, 2, 29).ok());  // common year
  EXPECT_FALSE(Date::FromYmd(1900, 2, 29).ok());  // century, not /400
  EXPECT_TRUE(Date::FromYmd(2000, 2, 29).ok());   // divisible by 400
}

TEST(DateTest, RejectsInvalidComponents) {
  EXPECT_FALSE(Date::FromYmd(2008, 0, 1).ok());
  EXPECT_FALSE(Date::FromYmd(2008, 13, 1).ok());
  EXPECT_FALSE(Date::FromYmd(2008, 4, 31).ok());
  EXPECT_FALSE(Date::FromYmd(2008, 1, 0).ok());
}

TEST(DateTest, ParseIsoFormat) {
  EXPECT_EQ(*Date::Parse("2008-01-20"), *Date::FromYmd(2008, 1, 20));
  EXPECT_EQ(*Date::Parse("2008-1-20"), *Date::FromYmd(2008, 1, 20));
  EXPECT_EQ(*Date::Parse("2008/1/5"), *Date::FromYmd(2008, 1, 5));
}

TEST(DateTest, ParsePaperUsFormat) {
  // The paper writes dates like "1/30/2008" and "1-20-2008".
  EXPECT_EQ(*Date::Parse("1/30/2008"), *Date::FromYmd(2008, 1, 30));
  EXPECT_EQ(*Date::Parse("1-20-2008"), *Date::FromYmd(2008, 1, 20));
  EXPECT_EQ(*Date::Parse("2/15/2008"), *Date::FromYmd(2008, 2, 15));
}

TEST(DateTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Date::Parse("").ok());
  EXPECT_FALSE(Date::Parse("2008-01").ok());
  EXPECT_FALSE(Date::Parse("2008-01-20-05").ok());
  EXPECT_FALSE(Date::Parse("20-01-08").ok());  // no 4-digit year field
  EXPECT_FALSE(Date::Parse("2008-xx-20").ok());
  EXPECT_FALSE(Date::Parse("2008-13-20").ok());
}

TEST(DateTest, ToStringIsIso) {
  EXPECT_EQ(Date::FromYmd(2008, 1, 5)->ToString(), "2008-01-05");
  EXPECT_EQ(Date::FromYmd(1999, 12, 31)->ToString(), "1999-12-31");
}

TEST(DateTest, Ordering) {
  const Date a = *Date::FromYmd(2008, 1, 5);
  const Date b = *Date::FromYmd(2008, 1, 30);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, *Date::Parse("2008-1-5"));
}

TEST(DateTest, AddDays) {
  const Date a = *Date::FromYmd(2008, 1, 30);
  EXPECT_EQ(a.AddDays(2), *Date::FromYmd(2008, 2, 1));
  EXPECT_EQ(a.AddDays(-30), *Date::FromYmd(2007, 12, 31));
}

}  // namespace
}  // namespace aqua
