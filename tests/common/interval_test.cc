#include "aqua/common/interval.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(IntervalTest, PointInterval) {
  const Interval p = Interval::Point(2.5);
  EXPECT_DOUBLE_EQ(p.low, 2.5);
  EXPECT_DOUBLE_EQ(p.high, 2.5);
  EXPECT_DOUBLE_EQ(p.width(), 0.0);
}

TEST(IntervalTest, Contains) {
  const Interval i{1.0, 3.0};
  EXPECT_TRUE(i.Contains(1.0));
  EXPECT_TRUE(i.Contains(2.0));
  EXPECT_TRUE(i.Contains(3.0));
  EXPECT_FALSE(i.Contains(0.999));
  EXPECT_FALSE(i.Contains(3.001));
}

TEST(IntervalTest, Covers) {
  const Interval outer{1.0, 3.0};
  EXPECT_TRUE(outer.Covers({1.5, 2.5}));
  EXPECT_TRUE(outer.Covers(outer));
  EXPECT_FALSE(outer.Covers({0.5, 2.0}));
  EXPECT_FALSE(outer.Covers({2.0, 3.5}));
}

TEST(IntervalTest, Hull) {
  const Interval h = Interval::Hull({1.0, 2.0}, {1.5, 4.0});
  EXPECT_DOUBLE_EQ(h.low, 1.0);
  EXPECT_DOUBLE_EQ(h.high, 4.0);
}

TEST(IntervalTest, ToString) {
  EXPECT_EQ((Interval{1069.3, 1273.0}).ToString(), "[1069.3, 1273]");
  EXPECT_EQ((Interval{1.0, 3.0}).ToString(), "[1, 3]");
}

TEST(IntervalTest, Equality) {
  EXPECT_EQ((Interval{1, 2}), (Interval{1, 2}));
  EXPECT_FALSE((Interval{1, 2}) == (Interval{1, 3}));
}

}  // namespace
}  // namespace aqua
