#include "aqua/common/status.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactoryEqualsDefault) {
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::OutOfRange("c"), StatusCode::kOutOfRange},
      {Status::Unimplemented("d"), StatusCode::kUnimplemented},
      {Status::ResourceExhausted("e"), StatusCode::kResourceExhausted},
      {Status::Internal("f"), StatusCode::kInternal},
      {Status::DeadlineExceeded("g"), StatusCode::kDeadlineExceeded},
      {Status::Cancelled("h"), StatusCode::kCancelled},
      {Status::Unavailable("i"), StatusCode::kUnavailable},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::InvalidArgument("probabilities must sum to 1");
  EXPECT_EQ(s.ToString(), "invalid-argument: probabilities must sum to 1");
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "not-found");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "resource-exhausted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "deadline-exceeded");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCancelled), "cancelled");
}

TEST(StatusTest, CodeNamesRoundTripForEveryCode) {
  // Every enumerator must map to a distinct canonical name that resolves
  // back to itself. Keep this list in sync with StatusCode; together with
  // the -Wswitch-clean switch in StatusCodeToString it makes forgetting to
  // name a new code a compile-or-test failure.
  const StatusCode all[] = {
      StatusCode::kOk,
      StatusCode::kInvalidArgument,
      StatusCode::kNotFound,
      StatusCode::kOutOfRange,
      StatusCode::kUnimplemented,
      StatusCode::kResourceExhausted,
      StatusCode::kInternal,
      StatusCode::kDeadlineExceeded,
      StatusCode::kCancelled,
      StatusCode::kUnavailable,
  };
  for (StatusCode code : all) {
    const std::string_view name = StatusCodeToString(code);
    EXPECT_NE(name, "unknown") << static_cast<int>(code);
    const auto back = StatusCodeFromString(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, code) << name;
    for (StatusCode other : all) {
      if (other != code) {
        EXPECT_NE(StatusCodeToString(other), name);
      }
    }
  }
}

TEST(StatusTest, CodeFromStringRejectsUnknownNames) {
  EXPECT_FALSE(StatusCodeFromString("").has_value());
  EXPECT_FALSE(StatusCodeFromString("no-such-code").has_value());
  EXPECT_FALSE(StatusCodeFromString("OK").has_value());  // case-sensitive
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status FailsThroughMacro(bool fail) {
  AQUA_RETURN_NOT_OK(fail ? Status::Internal("inner") : Status::OK());
  return Status::NotFound("after");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(FailsThroughMacro(true), Status::Internal("inner"));
  EXPECT_EQ(FailsThroughMacro(false), Status::NotFound("after"));
}

}  // namespace
}  // namespace aqua
