#include "aqua/common/string_util.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(SplitTest, Basic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\nabc\r "), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ToLowerTest, Basic) {
  EXPECT_EQ(ToLower("SELECT Count"), "select count");
  EXPECT_EQ(ToLower("abc123"), "abc123");
}

TEST(EqualsIgnoreCaseTest, Basic) {
  EXPECT_TRUE(EqualsIgnoreCase("auctionID", "AUCTIONid"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(FormatDoubleTest, SixSignificantDigits) {
  EXPECT_EQ(FormatDouble(2.6), "2.6");
  EXPECT_EQ(FormatDouble(975.437), "975.437");
  EXPECT_EQ(FormatDouble(0.0576), "0.0576");
  EXPECT_EQ(FormatDouble(1000000.0), "1e+06");
}

}  // namespace
}  // namespace aqua
