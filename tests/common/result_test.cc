#include "aqua/common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "gone");
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r(Status::OK());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(Result<int>(7).value_or(9), 7);
  EXPECT_EQ(Result<int>(Status::Internal("x")).value_or(9), 9);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowAccess) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  AQUA_ASSIGN_OR_RETURN(int h, Half(x));
  AQUA_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> fail_outer = Quarter(7);
  EXPECT_FALSE(fail_outer.ok());
  EXPECT_EQ(fail_outer.status().code(), StatusCode::kInvalidArgument);

  Result<int> fail_inner = Quarter(6);  // 6/2 = 3, odd
  EXPECT_FALSE(fail_inner.ok());
}

}  // namespace
}  // namespace aqua
