#include "aqua/common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 28);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t x = rng.UniformInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo = saw_lo || x == -3;
    saw_hi = saw_hi || x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, UniformMeanIsCentred) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.1);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, CategoricalFrequencies) {
  Rng rng(17);
  const std::vector<double> probs = {0.5, 0.3, 0.2};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(probs)];
  EXPECT_NEAR(counts[0] / double(n), 0.5, 0.02);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / double(n), 0.2, 0.02);
}

TEST(RngTest, RandomProbabilitiesSumToOneAndPositive) {
  Rng rng(19);
  for (size_t k : {1u, 2u, 5u, 50u}) {
    const std::vector<double> p = rng.RandomProbabilities(k);
    ASSERT_EQ(p.size(), k);
    const double total = std::accumulate(p.begin(), p.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-12);
    for (double x : p) EXPECT_GT(x, 0.0);
  }
}

}  // namespace
}  // namespace aqua
