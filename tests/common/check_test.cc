// Death tests for the invariant-check layer: a failing AQUA_CHECK must
// abort with the location, condition, and streamed message; passing checks
// must not evaluate the message expression; and the debug tier must
// disappear entirely in Release builds unless AQUA_PARANOID is on.

#include "aqua/common/check.h"

#include <gtest/gtest.h>

#include "aqua/common/result.h"
#include "aqua/common/status.h"

namespace aqua {
namespace {

TEST(CheckTest, PassingCheckHasNoEffect) {
  int evaluations = 0;
  AQUA_CHECK(1 + 1 == 2) << "never built: " << ++evaluations;
  EXPECT_EQ(evaluations, 0) << "message stream ran on a passing check";
}

TEST(CheckDeathTest, FailingCheckAbortsWithConditionAndMessage) {
  EXPECT_DEATH(AQUA_CHECK(2 < 1) << "context " << 42,
               "AQUA_CHECK failed at .*check_test.*2 < 1 context 42");
}

TEST(CheckDeathTest, FailureMessageNamesTheFile) {
  EXPECT_DEATH(AQUA_CHECK(false), "check_test\\.cc");
}

TEST(CheckTest, ProbAcceptsTheClosedUnitIntervalWithTolerance) {
  AQUA_CHECK_PROB(0.0);
  AQUA_CHECK_PROB(1.0);
  AQUA_CHECK_PROB(0.5) << "plain";
  // A few ulps outside [0, 1] is numerical noise, not corruption.
  AQUA_CHECK_PROB(1.0 + 1e-12);
  AQUA_CHECK_PROB(-1e-12);
}

TEST(CheckDeathTest, ProbRejectsRealViolations) {
  EXPECT_DEATH(AQUA_CHECK_PROB(1.5), "probability outside \\[0, 1\\]: 1.5");
  EXPECT_DEATH(AQUA_CHECK_PROB(-0.25), "probability outside");
}

TEST(CheckTest, IntervalAcceptsOrderedAndPointIntervals) {
  AQUA_CHECK_INTERVAL(1.0, 2.0);
  AQUA_CHECK_INTERVAL(3.0, 3.0) << "point interval";
}

TEST(CheckDeathTest, IntervalRejectsInversion) {
  EXPECT_DEATH(AQUA_CHECK_INTERVAL(2.0, 1.0) << "from test",
               "inverted interval: low=2 high=1 from test");
}

TEST(CheckTest, DebugTierMatchesBuildConfiguration) {
  int evaluations = 0;
#if !defined(NDEBUG) || defined(AQUA_PARANOID)
  // Debug tier active: a passing DCHECK still evaluates its condition.
  AQUA_DCHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
#else
  // Compiled out: neither the condition nor the message may run.
  AQUA_DCHECK(++evaluations > 0) << "also unevaluated: " << ++evaluations;
  EXPECT_EQ(evaluations, 0);
#endif
}

TEST(CheckTest, ParanoidGateTogglesAndRestores) {
  const bool initial = ParanoidChecksEnabled();
  EXPECT_EQ(SetParanoidChecks(true), initial);
  EXPECT_TRUE(ParanoidChecksEnabled());
  EXPECT_TRUE(SetParanoidChecks(false));
  EXPECT_FALSE(ParanoidChecksEnabled());
  SetParanoidChecks(initial);
}

TEST(CheckDeathTest, ResultValueOnErrorAbortsWithStatus) {
  const Result<int> failed(Status::InvalidArgument("probe message"));
  EXPECT_DEATH((void)failed.value(),
               "value\\(\\) on error result: invalid-argument: probe message");
}

}  // namespace
}  // namespace aqua
