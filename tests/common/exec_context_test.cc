#include "aqua/common/exec_context.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace aqua {
namespace {

TEST(ExecLimitsTest, DefaultIsUnlimited) {
  ExecLimits limits;
  EXPECT_TRUE(limits.Unlimited());
  limits.timeout_ms = 5;
  EXPECT_FALSE(limits.Unlimited());
  limits = ExecLimits{};
  limits.max_steps = 1;
  EXPECT_FALSE(limits.Unlimited());
  limits = ExecLimits{};
  limits.max_bytes = 1;
  EXPECT_FALSE(limits.Unlimited());
}

TEST(ExecContextTest, UngovernedContextNeverFails) {
  ExecContext ctx;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(ctx.Charge().ok());
  }
  EXPECT_TRUE(ctx.ChargeBytes(1ull << 40).ok());
  EXPECT_TRUE(ctx.CheckNow().ok());
  EXPECT_EQ(ctx.steps(), 10000u);
}

TEST(ExecContextTest, NullHelpersAreNoOps) {
  EXPECT_TRUE(ExecCharge(nullptr).ok());
  EXPECT_TRUE(ExecCharge(nullptr, 1000).ok());
  EXPECT_TRUE(ExecChargeBytes(nullptr, 1000).ok());
  EXPECT_TRUE(ExecCheckNow(nullptr).ok());
}

TEST(ExecContextTest, StepBudgetIsExact) {
  ExecLimits limits;
  limits.max_steps = 10;
  ExecContext ctx(limits);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ctx.Charge().ok()) << i;
  }
  const Status over = ctx.Charge();
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  // Once exhausted, every further charge keeps failing.
  EXPECT_EQ(ctx.Charge().code(), StatusCode::kResourceExhausted);
}

TEST(ExecContextTest, BulkChargeCrossingTheBudgetFails) {
  ExecLimits limits;
  limits.max_steps = 100;
  ExecContext ctx(limits);
  EXPECT_TRUE(ctx.Charge(100).ok());
  EXPECT_EQ(ctx.Charge(1).code(), StatusCode::kResourceExhausted);
}

TEST(ExecContextTest, ByteBudgetIsCheckedImmediately) {
  ExecLimits limits;
  limits.max_bytes = 1024;
  ExecContext ctx(limits);
  EXPECT_TRUE(ctx.ChargeBytes(1000).ok());
  EXPECT_TRUE(ctx.ChargeBytes(24).ok());
  EXPECT_EQ(ctx.ChargeBytes(1).code(), StatusCode::kResourceExhausted);
  // The counter includes the charge that blew the budget.
  EXPECT_EQ(ctx.bytes(), 1025u);
}

TEST(ExecContextTest, DeadlineExpires) {
  ExecLimits limits;
  limits.timeout_ms = 1;
  ExecContext ctx(limits);
  EXPECT_TRUE(ctx.has_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(ctx.CheckNow().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ctx.RemainingTime().count(), 0);
}

TEST(ExecContextTest, DeadlineIsPolledByAmortisedCharge) {
  ExecLimits limits;
  limits.timeout_ms = 1;
  ExecContext ctx(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Single-step charges must notice the expired deadline within one
  // amortisation window.
  Status s = Status::OK();
  for (uint64_t i = 0; s.ok() && i <= ExecContext::kCheckInterval; ++i) {
    s = ctx.Charge();
  }
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecContextTest, CancellationIsObserved) {
  CancellationToken token = CancellationToken::Make();
  ExecContext ctx(ExecLimits{}, token);
  EXPECT_TRUE(ctx.CheckNow().ok());
  token.RequestCancel();
  EXPECT_EQ(ctx.CheckNow().code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, DefaultTokenCannotBeCancelled) {
  CancellationToken token;
  token.RequestCancel();  // no-op on a stateless token
  EXPECT_FALSE(token.cancellation_requested());
  ExecContext ctx(ExecLimits{}, token);
  EXPECT_TRUE(ctx.CheckNow().ok());
}

TEST(ExecContextTest, TokenCopiesShareTheFlag) {
  CancellationToken a = CancellationToken::Make();
  CancellationToken b = a;
  b.RequestCancel();
  EXPECT_TRUE(a.cancellation_requested());
}

TEST(ExecContextTest, RemainingTimeIsLargeWithoutDeadline) {
  ExecContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_GT(ctx.RemainingTime().count(), 1000ll * 60 * 60);
}

TEST(ExecContextTest, StepAndByteCountersRoundTrip) {
  // The observability layer reads steps()/bytes() into QueryStats and the
  // metrics registry, so the counters must reflect exactly what was
  // charged — bulk and unit charges alike.
  ExecContext ctx;
  EXPECT_EQ(ctx.steps(), 0u);
  EXPECT_EQ(ctx.bytes(), 0u);
  ASSERT_TRUE(ctx.Charge().ok());
  ASSERT_TRUE(ctx.Charge(41).ok());
  ASSERT_TRUE(ctx.ChargeBytes(128).ok());
  ASSERT_TRUE(ctx.ChargeBytes(72).ok());
  EXPECT_EQ(ctx.steps(), 42u);
  EXPECT_EQ(ctx.bytes(), 200u);
}

TEST(ExecContextTest, NullTolerantHelpersChargeRealContexts) {
  ExecContext ctx;
  ASSERT_TRUE(ExecCharge(&ctx, 10).ok());
  ASSERT_TRUE(ExecChargeBytes(&ctx, 64).ok());
  ASSERT_TRUE(ExecCheckNow(&ctx).ok());
  EXPECT_EQ(ctx.steps(), 10u);
  EXPECT_EQ(ctx.bytes(), 64u);
}

TEST(ExecContextTest, SplitRemainingSumsExactly) {
  ExecLimits limits;
  limits.max_steps = 100;
  limits.max_bytes = 7;
  ExecContext ctx(limits);
  ASSERT_TRUE(ctx.Charge(10).ok());  // 90 steps remain
  const std::vector<BudgetShare> shares = ctx.SplitRemaining({1, 1, 1, 1});
  ASSERT_EQ(shares.size(), 4u);
  uint64_t step_sum = 0, byte_sum = 0;
  for (const BudgetShare& s : shares) {
    EXPECT_TRUE(s.limited_steps);
    EXPECT_TRUE(s.limited_bytes);
    step_sum += s.steps;
    byte_sum += s.bytes;
  }
  EXPECT_EQ(step_sum, 90u);  // remainders distributed, nothing lost
  EXPECT_EQ(byte_sum, 7u);
  // Remainder goes to the lowest-index shares: 90 = 23+23+22+22.
  EXPECT_EQ(shares[0].steps, 23u);
  EXPECT_EQ(shares[1].steps, 23u);
  EXPECT_EQ(shares[2].steps, 22u);
  EXPECT_EQ(shares[3].steps, 22u);
}

TEST(ExecContextTest, SplitRemainingProportionalToWeights) {
  ExecLimits limits;
  limits.max_steps = 100;
  ExecContext ctx(limits);
  const std::vector<BudgetShare> shares = ctx.SplitRemaining({9, 1});
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_EQ(shares[0].steps, 90u);
  EXPECT_EQ(shares[1].steps, 10u);
}

TEST(ExecContextTest, SplitRemainingAllZeroWeightsSplitsEvenly) {
  ExecLimits limits;
  limits.max_steps = 10;
  ExecContext ctx(limits);
  const std::vector<BudgetShare> shares = ctx.SplitRemaining({0, 0, 0});
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_EQ(shares[0].steps + shares[1].steps + shares[2].steps, 10u);
  EXPECT_EQ(shares[0].steps, 4u);  // 10 = 4+3+3
}

TEST(ExecContextTest, SplitRemainingUnlimitedStaysUnlimited) {
  ExecContext ctx;  // no limits at all
  const std::vector<BudgetShare> shares = ctx.SplitRemaining({1, 2});
  ASSERT_EQ(shares.size(), 2u);
  for (const BudgetShare& s : shares) {
    EXPECT_FALSE(s.limited_steps);
    EXPECT_FALSE(s.limited_bytes);
  }
  // An unlimited share produces an unlimited child.
  ExecContext child = ctx.Child(shares[0], CancellationToken());
  EXPECT_TRUE(child.Charge(1'000'000'000).ok());
}

TEST(ExecContextTest, ZeroShareChildFailsFirstCharge) {
  // A share that rounded down to zero is a real bound of zero, not
  // "unlimited" — the flag disambiguates the two.
  ExecLimits limits;
  limits.max_steps = 1;
  ExecContext ctx(limits);
  const std::vector<BudgetShare> shares = ctx.SplitRemaining({1, 1});
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_EQ(shares[1].steps, 0u);
  EXPECT_TRUE(shares[1].limited_steps);
  ExecContext child = ctx.Child(shares[1], CancellationToken());
  EXPECT_EQ(child.Charge(1).code(), StatusCode::kResourceExhausted);
}

TEST(ExecContextTest, ChildChargesWithinShareAndAbsorbBack) {
  ExecLimits limits;
  limits.max_steps = 100;
  limits.max_bytes = 1000;
  ExecContext parent(limits);
  const std::vector<BudgetShare> shares = parent.SplitRemaining({1, 1});
  ExecContext child = parent.Child(shares[0], CancellationToken());
  ASSERT_TRUE(child.Charge(50).ok());
  ASSERT_TRUE(child.ChargeBytes(500).ok());
  EXPECT_EQ(child.Charge(1).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(parent.steps(), 0u);  // children are independent values
  parent.Absorb(child);
  EXPECT_EQ(parent.steps(), 51u);
  EXPECT_EQ(parent.bytes(), 500u);
}

TEST(ExecContextTest, ChildObservesGivenToken) {
  ExecLimits limits;
  limits.max_steps = 100;
  ExecContext parent(limits);
  CancellationToken group = CancellationToken::Make();
  ExecContext child =
      parent.Child(parent.SplitRemaining({1})[0], group);
  EXPECT_TRUE(child.CheckNow().ok());
  group.RequestCancel();
  EXPECT_EQ(child.CheckNow().code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, LinkedTokenFiresWithUpstreamNotViceVersa) {
  CancellationToken upstream = CancellationToken::Make();
  CancellationToken linked = CancellationToken::MakeLinked(upstream);
  EXPECT_FALSE(linked.cancellation_requested());
  upstream.RequestCancel();
  EXPECT_TRUE(linked.cancellation_requested());

  CancellationToken upstream2 = CancellationToken::Make();
  CancellationToken linked2 = CancellationToken::MakeLinked(upstream2);
  linked2.RequestCancel();
  EXPECT_TRUE(linked2.cancellation_requested());
  // Cancelling the group never propagates to the caller's token.
  EXPECT_FALSE(upstream2.cancellation_requested());
}

TEST(ExecContextTest, LinkedToStatelessTokenIsIndependent) {
  CancellationToken linked =
      CancellationToken::MakeLinked(CancellationToken());
  EXPECT_FALSE(linked.cancellation_requested());
  linked.RequestCancel();
  EXPECT_TRUE(linked.cancellation_requested());
}

// --- Boundary conditions ---------------------------------------------------

TEST(ExecContextTest, ZeroTimeoutMeansNoDeadlineNotInstantExpiry) {
  // timeout_ms = 0 is the documented "no deadline" default; it must never
  // be read as a deadline that has already passed.
  ExecLimits limits;
  limits.timeout_ms = 0;
  ExecContext ctx(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(ctx.CheckNow().ok());
  EXPECT_TRUE(ctx.Charge(1'000'000).ok());
}

TEST(ExecContextTest, AlreadyCancelledTokenFailsFirstCheck) {
  CancellationToken token = CancellationToken::Make();
  token.RequestCancel();
  ExecContext ctx(ExecLimits{}, token);  // cancelled before construction
  EXPECT_EQ(ctx.CheckNow().code(), StatusCode::kCancelled);
  // Charge's cancel check is amortised: it fires once kCheckInterval
  // steps accumulate, not necessarily on the first step.
  EXPECT_EQ(ctx.Charge(ExecContext::kCheckInterval).code(),
            StatusCode::kCancelled);
}

TEST(ExecContextTest, SplitRemainingMoreChildrenThanBudgetDoesNotUnderflow) {
  // 2 steps across 5 children: shares are unsigned, so the invariant to
  // protect is sum == remaining with no wraparound giants.
  ExecLimits limits;
  limits.max_steps = 2;
  ExecContext ctx(limits);
  const std::vector<BudgetShare> shares =
      ctx.SplitRemaining({1, 1, 1, 1, 1});
  ASSERT_EQ(shares.size(), 5u);
  uint64_t total = 0;
  for (const BudgetShare& s : shares) {
    EXPECT_TRUE(s.limited_steps);
    EXPECT_LE(s.steps, 2u);  // no single share exceeds the whole budget
    total += s.steps;
  }
  EXPECT_EQ(total, 2u);
}

TEST(ExecContextTest, SplitRemainingAfterExhaustionIsAllZeroShares) {
  ExecLimits limits;
  limits.max_steps = 3;
  ExecContext ctx(limits);
  ASSERT_TRUE(ctx.Charge(3).ok());
  const std::vector<BudgetShare> shares = ctx.SplitRemaining({1, 1});
  ASSERT_EQ(shares.size(), 2u);
  for (const BudgetShare& s : shares) {
    EXPECT_TRUE(s.limited_steps);
    EXPECT_EQ(s.steps, 0u);
  }
  ExecContext child = ctx.Child(shares[0], CancellationToken());
  EXPECT_EQ(child.Charge(1).code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace aqua
