#include "aqua/common/value.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedConstructionAndAccess) {
  EXPECT_EQ(Value::Int64(7).int64(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).dbl(), 2.5);
  EXPECT_EQ(Value::String("hi").str(), "hi");
  const Date d(100);
  EXPECT_EQ(Value::FromDate(d).date(), d);
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Int64(1).type(), ValueType::kInt64);
  EXPECT_EQ(Value::Double(1).type(), ValueType::kDouble);
  EXPECT_EQ(Value::String("").type(), ValueType::kString);
  EXPECT_EQ(Value::FromDate(Date(0)).type(), ValueType::kDate);
}

TEST(ValueTest, IsNumeric) {
  EXPECT_TRUE(IsNumeric(ValueType::kInt64));
  EXPECT_TRUE(IsNumeric(ValueType::kDouble));
  EXPECT_FALSE(IsNumeric(ValueType::kString));
  EXPECT_FALSE(IsNumeric(ValueType::kDate));
  EXPECT_FALSE(IsNumeric(ValueType::kNull));
}

TEST(ValueTest, ToDouble) {
  EXPECT_DOUBLE_EQ(*Value::Int64(3).ToDouble(), 3.0);
  EXPECT_DOUBLE_EQ(*Value::Double(3.25).ToDouble(), 3.25);
  EXPECT_DOUBLE_EQ(*Value::FromDate(Date(10)).ToDouble(), 10.0);
  EXPECT_FALSE(Value::Null().ToDouble().ok());
  EXPECT_FALSE(Value::String("3").ToDouble().ok());
}

TEST(ValueTest, CompareIntInt) {
  EXPECT_EQ(*Value::Compare(Value::Int64(1), Value::Int64(2)), -1);
  EXPECT_EQ(*Value::Compare(Value::Int64(2), Value::Int64(2)), 0);
  EXPECT_EQ(*Value::Compare(Value::Int64(3), Value::Int64(2)), 1);
}

TEST(ValueTest, CompareNumericCoercion) {
  EXPECT_EQ(*Value::Compare(Value::Int64(1), Value::Double(1.5)), -1);
  EXPECT_EQ(*Value::Compare(Value::Double(2.0), Value::Int64(2)), 0);
  EXPECT_EQ(*Value::Compare(Value::Double(2.5), Value::Int64(2)), 1);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_EQ(*Value::Compare(Value::String("abc"), Value::String("abd")), -1);
  EXPECT_EQ(*Value::Compare(Value::String("abc"), Value::String("abc")), 0);
  EXPECT_EQ(*Value::Compare(Value::String("b"), Value::String("a")), 1);
}

TEST(ValueTest, CompareDates) {
  EXPECT_EQ(*Value::Compare(Value::FromDate(Date(5)), Value::FromDate(Date(9))),
            -1);
  EXPECT_EQ(*Value::Compare(Value::FromDate(Date(9)), Value::FromDate(Date(9))),
            0);
}

TEST(ValueTest, CompareWithNullFails) {
  EXPECT_FALSE(Value::Compare(Value::Null(), Value::Int64(1)).ok());
  EXPECT_FALSE(Value::Compare(Value::Int64(1), Value::Null()).ok());
}

TEST(ValueTest, CompareAcrossIncompatibleTypesFails) {
  EXPECT_FALSE(Value::Compare(Value::String("1"), Value::Int64(1)).ok());
  EXPECT_FALSE(
      Value::Compare(Value::FromDate(Date(0)), Value::Double(0.0)).ok());
}

TEST(ValueTest, ExactEqualityDistinguishesIntAndDouble) {
  EXPECT_TRUE(Value::Int64(1) == Value::Int64(1));
  EXPECT_FALSE(Value::Int64(1) == Value::Double(1.0));
  // SQL comparison, however, coerces:
  EXPECT_EQ(*Value::Compare(Value::Int64(1), Value::Double(1.0)), 0);
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::Double(3.5).ToString(), "3.5");
  EXPECT_EQ(Value::String("x").ToString(), "'x'");
  EXPECT_EQ(Value::FromDate(*Date::FromYmd(2008, 1, 30)).ToString(),
            "2008-01-30");
}

TEST(ValueTest, TypeNames) {
  EXPECT_EQ(ValueTypeToString(ValueType::kInt64), "int64");
  EXPECT_EQ(ValueTypeToString(ValueType::kDate), "date");
}

}  // namespace
}  // namespace aqua
