#include "aqua/expr/predicate.h"

#include <gtest/gtest.h>

#include "aqua/storage/table_builder.h"

namespace aqua {
namespace {

Schema TestSchema() {
  return *Schema::Make({{"a", ValueType::kInt64},
                        {"b", ValueType::kDouble},
                        {"s", ValueType::kString},
                        {"d", ValueType::kDate}});
}

Table TestTable() {
  TableBuilder builder(TestSchema());
  auto date = [](int day) {
    return Value::FromDate(*Date::FromYmd(2008, 1, day));
  };
  EXPECT_TRUE(builder
                  .AppendRow({Value::Int64(1), Value::Double(10.0),
                              Value::String("x"), date(5)})
                  .ok());
  EXPECT_TRUE(builder
                  .AppendRow({Value::Int64(2), Value::Double(20.0),
                              Value::String("y"), date(25)})
                  .ok());
  EXPECT_TRUE(builder
                  .AppendRow({Value::Int64(3), Value::Null(),
                              Value::String("x"), date(15)})
                  .ok());
  return *std::move(builder).Finish();
}

TEST(PredicateTest, ToString) {
  auto p = Predicate::And(
      Predicate::Comparison("a", CompareOp::kGe, Value::Int64(1)),
      Predicate::Not(
          Predicate::Comparison("s", CompareOp::kEq, Value::String("x"))));
  EXPECT_EQ(p->ToString(), "(a >= 1 AND (NOT s = 'x'))");
  EXPECT_EQ(Predicate::True()->ToString(), "TRUE");
}

TEST(PredicateTest, CollectAttributes) {
  auto p = Predicate::Or(
      Predicate::Comparison("a", CompareOp::kLt, Value::Int64(5)),
      Predicate::Comparison("b", CompareOp::kGt, Value::Double(1.0)));
  std::vector<std::string> attrs;
  p->CollectAttributes(&attrs);
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0], "a");
  EXPECT_EQ(attrs[1], "b");
}

TEST(PredicateTest, RenameAttributes) {
  auto p = Predicate::And(
      Predicate::Comparison("date", CompareOp::kLt, Value::Int64(5)),
      Predicate::True());
  auto renamed = Predicate::RenameAttributes(
      p, [](const std::string& name) -> Result<std::string> {
        return name + "_src";
      });
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ((*renamed)->ToString(), "(date_src < 5 AND TRUE)");
}

TEST(PredicateTest, RenamePropagatesFailure) {
  auto p = Predicate::Comparison("comments", CompareOp::kEq, Value::Int64(1));
  auto renamed = Predicate::RenameAttributes(
      p, [](const std::string& name) -> Result<std::string> {
        return Status::NotFound("no correspondence for " + name);
      });
  ASSERT_FALSE(renamed.ok());
  EXPECT_EQ(renamed.status().code(), StatusCode::kNotFound);
}

TEST(BoundPredicateTest, ComparisonOps) {
  const Table t = TestTable();
  struct Case {
    CompareOp op;
    int64_t literal;
    bool row0;
    bool row1;
  };
  const Case cases[] = {
      {CompareOp::kEq, 1, true, false}, {CompareOp::kNe, 1, false, true},
      {CompareOp::kLt, 2, true, false}, {CompareOp::kLe, 2, true, true},
      {CompareOp::kGt, 1, false, true}, {CompareOp::kGe, 2, false, true},
  };
  for (const Case& c : cases) {
    auto p = Predicate::Comparison("a", c.op, Value::Int64(c.literal));
    auto bound = BoundPredicate::Bind(p, t.schema());
    ASSERT_TRUE(bound.ok());
    EXPECT_EQ(bound->Matches(t, 0), c.row0)
        << "op " << CompareOpToString(c.op);
    EXPECT_EQ(bound->Matches(t, 1), c.row1)
        << "op " << CompareOpToString(c.op);
  }
}

TEST(BoundPredicateTest, NumericCoercionIntColumnDoubleLiteral) {
  const Table t = TestTable();
  auto p = Predicate::Comparison("a", CompareOp::kLt, Value::Double(1.5));
  auto bound = BoundPredicate::Bind(p, t.schema());
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->Matches(t, 0));
  EXPECT_FALSE(bound->Matches(t, 1));
}

TEST(BoundPredicateTest, DateStringLiteralCoerces) {
  const Table t = TestTable();
  auto p = Predicate::Comparison("d", CompareOp::kLt,
                                 Value::String("2008-1-20"));
  auto bound = BoundPredicate::Bind(p, t.schema());
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_TRUE(bound->Matches(t, 0));   // Jan 5
  EXPECT_FALSE(bound->Matches(t, 1));  // Jan 25
  EXPECT_TRUE(bound->Matches(t, 2));   // Jan 15
}

TEST(BoundPredicateTest, BadDateLiteralFailsAtBind) {
  const Table t = TestTable();
  auto p = Predicate::Comparison("d", CompareOp::kLt,
                                 Value::String("not-a-date"));
  EXPECT_FALSE(BoundPredicate::Bind(p, t.schema()).ok());
}

TEST(BoundPredicateTest, UnknownAttributeFailsAtBind) {
  const Table t = TestTable();
  auto p = Predicate::Comparison("zzz", CompareOp::kEq, Value::Int64(1));
  auto bound = BoundPredicate::Bind(p, t.schema());
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kNotFound);
}

TEST(BoundPredicateTest, IncomparableTypesFailAtBind) {
  const Table t = TestTable();
  EXPECT_FALSE(BoundPredicate::Bind(Predicate::Comparison(
                                        "s", CompareOp::kLt, Value::Int64(1)),
                                    t.schema())
                   .ok());
  EXPECT_FALSE(BoundPredicate::Bind(
                   Predicate::Comparison("a", CompareOp::kEq,
                                         Value::String("1")),
                   t.schema())
                   .ok());
}

TEST(BoundPredicateTest, NullLiteralRejected) {
  const Table t = TestTable();
  EXPECT_FALSE(BoundPredicate::Bind(
                   Predicate::Comparison("a", CompareOp::kEq, Value::Null()),
                   t.schema())
                   .ok());
}

TEST(BoundPredicateTest, NullCellIsUnknown) {
  const Table t = TestTable();  // row 2 has b = NULL
  auto p = Predicate::Comparison("b", CompareOp::kLt, Value::Double(100.0));
  auto bound = BoundPredicate::Bind(p, t.schema());
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->Eval(t, 2), Tri::kUnknown);
  EXPECT_FALSE(bound->Matches(t, 2));
}

TEST(BoundPredicateTest, ThreeValuedLogic) {
  const Table t = TestTable();  // row 2: b NULL, a = 3
  auto null_cmp =
      Predicate::Comparison("b", CompareOp::kLt, Value::Double(1.0));
  auto true_cmp = Predicate::Comparison("a", CompareOp::kEq, Value::Int64(3));
  auto false_cmp = Predicate::Comparison("a", CompareOp::kEq, Value::Int64(9));

  // UNKNOWN AND TRUE = UNKNOWN; UNKNOWN AND FALSE = FALSE.
  EXPECT_EQ(BoundPredicate::Bind(Predicate::And(null_cmp, true_cmp),
                                 t.schema())
                ->Eval(t, 2),
            Tri::kUnknown);
  EXPECT_EQ(BoundPredicate::Bind(Predicate::And(null_cmp, false_cmp),
                                 t.schema())
                ->Eval(t, 2),
            Tri::kFalse);
  // UNKNOWN OR TRUE = TRUE; UNKNOWN OR FALSE = UNKNOWN.
  EXPECT_EQ(BoundPredicate::Bind(Predicate::Or(null_cmp, true_cmp),
                                 t.schema())
                ->Eval(t, 2),
            Tri::kTrue);
  EXPECT_EQ(BoundPredicate::Bind(Predicate::Or(null_cmp, false_cmp),
                                 t.schema())
                ->Eval(t, 2),
            Tri::kUnknown);
  // NOT UNKNOWN = UNKNOWN.
  EXPECT_EQ(BoundPredicate::Bind(Predicate::Not(null_cmp), t.schema())
                ->Eval(t, 2),
            Tri::kUnknown);
}

TEST(BoundPredicateTest, TrueMatchesEverything) {
  const Table t = TestTable();
  auto bound = BoundPredicate::Bind(Predicate::True(), t.schema());
  ASSERT_TRUE(bound.ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_TRUE(bound->Matches(t, r));
  }
}

TEST(BoundPredicateTest, DeepTreeEvaluates) {
  const Table t = TestTable();
  // Chain of 20 ANDs exceeds the inline node buffer.
  PredicatePtr p = Predicate::Comparison("a", CompareOp::kGe, Value::Int64(0));
  for (int i = 0; i < 20; ++i) {
    p = Predicate::And(
        p, Predicate::Comparison("a", CompareOp::kLe, Value::Int64(100)));
  }
  auto bound = BoundPredicate::Bind(p, t.schema());
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->Matches(t, 0));
}

TEST(BoundPredicateTest, NullPredicateRejected) {
  const Table t = TestTable();
  EXPECT_FALSE(BoundPredicate::Bind(nullptr, t.schema()).ok());
}

}  // namespace
}  // namespace aqua
