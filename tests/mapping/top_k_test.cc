#include "aqua/mapping/top_k.h"

#include <gtest/gtest.h>

#include "aqua/core/by_table.h"
#include "aqua/mapping/generator.h"
#include "aqua/workload/synthetic.h"

namespace aqua {
namespace {

PMapping FourWayMapping() {
  auto alt = [](const char* src, double p) {
    return PMapping::Alternative{
        *RelationMapping::Make("S", "T", {{src, "v"}}), p};
  };
  return *PMapping::Make(
      {alt("a", 0.4), alt("b", 0.1), alt("c", 0.3), alt("d", 0.2)});
}

TEST(TopKTest, KeepsMostProbableAndRenormalises) {
  const auto pruned = TopKMappings(FourWayMapping(), 2);
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  EXPECT_EQ(pruned->pmapping.size(), 2u);
  // Survivors: a (0.4) and c (0.3), in original order, renormalised.
  EXPECT_EQ(*pruned->pmapping.mapping(0).SourceFor("v"), "a");
  EXPECT_EQ(*pruned->pmapping.mapping(1).SourceFor("v"), "c");
  EXPECT_NEAR(pruned->pmapping.probability(0), 0.4 / 0.7, 1e-12);
  EXPECT_NEAR(pruned->pmapping.probability(1), 0.3 / 0.7, 1e-12);
  EXPECT_NEAR(pruned->dropped_mass, 0.3, 1e-12);
}

TEST(TopKTest, KAtLeastSizeIsIdentity) {
  const PMapping pm = FourWayMapping();
  const auto pruned = TopKMappings(pm, 10);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->pmapping.size(), 4u);
  EXPECT_DOUBLE_EQ(pruned->dropped_mass, 0.0);
}

TEST(TopKTest, KZeroRejected) {
  EXPECT_FALSE(TopKMappings(FourWayMapping(), 0).ok());
}

TEST(TopKTest, SingleSurvivorHasProbabilityOne) {
  const auto pruned = TopKMappings(FourWayMapping(), 1);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->pmapping.size(), 1u);
  EXPECT_DOUBLE_EQ(pruned->pmapping.probability(0), 1.0);
  EXPECT_NEAR(pruned->dropped_mass, 0.6, 1e-12);
}

TEST(TopKTest, ErrorBoundHoldsOnRealQuery) {
  Rng rng(77);
  SyntheticOptions opts;
  opts.num_tuples = 500;
  opts.num_attributes = 12;
  opts.num_mappings = 8;
  const SyntheticWorkload w = *GenerateSyntheticWorkload(opts, rng);
  const AggregateQuery q = w.MakeQuery(AggregateFunction::kSum);

  const auto full_ev = ByTable::Answer(q, w.pmapping, w.table,
                                       AggregateSemantics::kExpectedValue);
  const auto full_range =
      ByTable::Answer(q, w.pmapping, w.table, AggregateSemantics::kRange);
  ASSERT_TRUE(full_ev.ok());
  ASSERT_TRUE(full_range.ok());

  for (size_t k = 1; k <= 8; ++k) {
    const auto pruned = TopKMappings(w.pmapping, k);
    ASSERT_TRUE(pruned.ok());
    const auto pruned_ev = ByTable::Answer(
        q, pruned->pmapping, w.table, AggregateSemantics::kExpectedValue);
    ASSERT_TRUE(pruned_ev.ok());
    const double bound =
        ExpectedValueErrorBound(*pruned, full_range->range);
    EXPECT_LE(std::abs(pruned_ev->expected_value - full_ev->expected_value),
              bound + 1e-9)
        << "k = " << k;
  }
}

TEST(TopKTest, DroppedMassShrinksWithK) {
  double prev = 1.0;
  for (size_t k = 1; k <= 4; ++k) {
    const auto pruned = TopKMappings(FourWayMapping(), k);
    ASSERT_TRUE(pruned.ok());
    EXPECT_LE(pruned->dropped_mass, prev);
    prev = pruned->dropped_mass;
  }
  EXPECT_DOUBLE_EQ(prev, 0.0);
}

}  // namespace
}  // namespace aqua
