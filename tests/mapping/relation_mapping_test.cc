#include "aqua/mapping/relation_mapping.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

RelationMapping M11() {
  return *RelationMapping::Make("S1", "T1",
                                {{"ID", "propertyID"},
                                 {"price", "listPrice"},
                                 {"agentPhone", "phone"},
                                 {"postedDate", "date"}});
}

TEST(RelationMappingTest, BasicLookup) {
  const RelationMapping m = M11();
  EXPECT_EQ(m.source_relation(), "S1");
  EXPECT_EQ(m.target_relation(), "T1");
  EXPECT_EQ(*m.SourceFor("date"), "postedDate");
  EXPECT_EQ(*m.SourceFor("LISTPRICE"), "price");  // case-insensitive
  EXPECT_EQ(*m.TargetFor("agentPhone"), "phone");
}

TEST(RelationMappingTest, UnmappedTargetIsNotFound) {
  const RelationMapping m = M11();
  const auto r = m.SourceFor("comments");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(m.MapsTarget("comments"));
  EXPECT_TRUE(m.MapsTarget("date"));
}

TEST(RelationMappingTest, RejectsDuplicateSource) {
  EXPECT_FALSE(RelationMapping::Make(
                   "S", "T", {{"a", "x"}, {"A", "y"}})
                   .ok());
}

TEST(RelationMappingTest, RejectsDuplicateTarget) {
  EXPECT_FALSE(RelationMapping::Make(
                   "S", "T", {{"a", "x"}, {"b", "X"}})
                   .ok());
}

TEST(RelationMappingTest, RejectsEmptyNames) {
  EXPECT_FALSE(RelationMapping::Make("", "T", {}).ok());
  EXPECT_FALSE(RelationMapping::Make("S", "", {}).ok());
  EXPECT_FALSE(RelationMapping::Make("S", "T", {{"", "x"}}).ok());
  EXPECT_FALSE(RelationMapping::Make("S", "T", {{"a", ""}}).ok());
}

TEST(RelationMappingTest, EqualityIsOrderInsensitive) {
  const RelationMapping a =
      *RelationMapping::Make("S", "T", {{"a", "x"}, {"b", "y"}});
  const RelationMapping b =
      *RelationMapping::Make("S", "T", {{"b", "y"}, {"a", "x"}});
  EXPECT_TRUE(a == b);
  const RelationMapping c =
      *RelationMapping::Make("S", "T", {{"a", "x"}, {"b", "z"}});
  EXPECT_FALSE(a == c);
}

TEST(RelationMappingTest, ToStringIsCanonical) {
  const RelationMapping a =
      *RelationMapping::Make("S", "T", {{"b", "y"}, {"a", "x"}});
  EXPECT_EQ(a.ToString(), "S=>T{a->x, b->y}");
}

TEST(RelationMappingTest, EmptyCorrespondenceSetIsValid) {
  const auto m = RelationMapping::Make("S", "T", {});
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->MapsTarget("anything"));
}

}  // namespace
}  // namespace aqua
