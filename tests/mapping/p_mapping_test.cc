#include "aqua/mapping/p_mapping.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

RelationMapping Map(const char* src_attr) {
  return *RelationMapping::Make(
      "S1", "T1", {{"ID", "propertyID"}, {src_attr, "date"}});
}

TEST(PMappingTest, BasicConstruction) {
  const auto pm = PMapping::Make(
      {{Map("postedDate"), 0.6}, {Map("reducedDate"), 0.4}});
  ASSERT_TRUE(pm.ok()) << pm.status().ToString();
  EXPECT_EQ(pm->size(), 2u);
  EXPECT_DOUBLE_EQ(pm->probability(0), 0.6);
  EXPECT_DOUBLE_EQ(pm->probability(1), 0.4);
  EXPECT_EQ(pm->source_relation(), "S1");
  EXPECT_EQ(pm->target_relation(), "T1");
  const std::vector<double> probs = pm->probabilities();
  EXPECT_EQ(probs, (std::vector<double>{0.6, 0.4}));
}

TEST(PMappingTest, RejectsEmpty) {
  EXPECT_FALSE(PMapping::Make({}).ok());
}

TEST(PMappingTest, RejectsProbabilitiesNotSummingToOne) {
  EXPECT_FALSE(
      PMapping::Make({{Map("postedDate"), 0.6}, {Map("reducedDate"), 0.5}})
          .ok());
  EXPECT_FALSE(
      PMapping::Make({{Map("postedDate"), 0.3}, {Map("reducedDate"), 0.3}})
          .ok());
}

TEST(PMappingTest, ToleranceOnSum) {
  EXPECT_TRUE(PMapping::Make({{Map("postedDate"), 0.6 + 1e-12},
                              {Map("reducedDate"), 0.4}})
                  .ok());
}

TEST(PMappingTest, RejectsOutOfRangeProbability) {
  EXPECT_FALSE(
      PMapping::Make({{Map("postedDate"), 1.4}, {Map("reducedDate"), -0.4}})
          .ok());
}

TEST(PMappingTest, RejectsDuplicateMappings) {
  EXPECT_FALSE(
      PMapping::Make({{Map("postedDate"), 0.6}, {Map("postedDate"), 0.4}})
          .ok());
}

TEST(PMappingTest, RejectsMixedRelations) {
  const RelationMapping other =
      *RelationMapping::Make("S9", "T1", {{"x", "date"}});
  EXPECT_FALSE(PMapping::Make({{Map("postedDate"), 0.6}, {other, 0.4}}).ok());
}

TEST(PMappingTest, SingleCertainMapping) {
  const auto pm = PMapping::Make({{Map("postedDate"), 1.0}});
  ASSERT_TRUE(pm.ok());
  EXPECT_EQ(pm->size(), 1u);
}

TEST(PMappingTest, IsCertainTarget) {
  const auto pm = *PMapping::Make(
      {{Map("postedDate"), 0.6}, {Map("reducedDate"), 0.4}});
  EXPECT_TRUE(pm.IsCertainTarget("propertyID"));  // same in both
  EXPECT_FALSE(pm.IsCertainTarget("date"));       // differs
  EXPECT_TRUE(pm.IsCertainTarget("comments"));    // unmapped in both
}

TEST(PMappingTest, IsCertainTargetMixedPresence) {
  // Mapped under one candidate, unmapped under the other: not certain.
  const RelationMapping with_phone = *RelationMapping::Make(
      "S1", "T1",
      {{"ID", "propertyID"}, {"postedDate", "date"}, {"agentPhone", "phone"}});
  const auto pm =
      *PMapping::Make({{with_phone, 0.5}, {Map("postedDate"), 0.5}});
  EXPECT_FALSE(pm.IsCertainTarget("phone"));
}

TEST(SchemaPMappingTest, LookupByRelation) {
  const auto pm1 = *PMapping::Make(
      {{Map("postedDate"), 0.6}, {Map("reducedDate"), 0.4}});
  const RelationMapping other =
      *RelationMapping::Make("S2", "T2", {{"bid", "price"}});
  const auto pm2 = *PMapping::Make({{other, 1.0}});
  const auto spm = SchemaPMapping::Make({pm1, pm2});
  ASSERT_TRUE(spm.ok());
  EXPECT_EQ(spm->size(), 2u);
  EXPECT_EQ((*spm->ForTargetRelation("T2"))->source_relation(), "S2");
  EXPECT_EQ((*spm->ForSourceRelation("s1"))->target_relation(), "T1");
  EXPECT_FALSE(spm->ForTargetRelation("T9").ok());
  EXPECT_FALSE(spm->ForSourceRelation("S9").ok());
}

TEST(SchemaPMappingTest, RejectsRepeatedRelations) {
  const auto pm1 = *PMapping::Make(
      {{Map("postedDate"), 0.6}, {Map("reducedDate"), 0.4}});
  EXPECT_FALSE(SchemaPMapping::Make({pm1, pm1}).ok());
}

}  // namespace
}  // namespace aqua
