#include "aqua/mapping/generator.h"

#include <set>

#include <gtest/gtest.h>

namespace aqua {
namespace {

MappingGeneratorOptions BaseOptions(size_t num_mappings) {
  MappingGeneratorOptions o;
  o.num_mappings = num_mappings;
  o.target_attribute = "value";
  for (int i = 0; i < 10; ++i) {
    o.candidate_sources.push_back("a" + std::to_string(i));
  }
  o.certain.push_back({"id", "id"});
  return o;
}

TEST(MappingGeneratorTest, ProducesValidPMapping) {
  Rng rng(1);
  const auto pm = GenerateRandomPMapping(BaseOptions(4), rng);
  ASSERT_TRUE(pm.ok()) << pm.status().ToString();
  EXPECT_EQ(pm->size(), 4u);
  double total = 0;
  for (size_t i = 0; i < pm->size(); ++i) total += pm->probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MappingGeneratorTest, CandidatesMapDistinctSources) {
  Rng rng(2);
  const auto pm = GenerateRandomPMapping(BaseOptions(5), rng);
  ASSERT_TRUE(pm.ok());
  std::set<std::string> sources;
  for (size_t i = 0; i < pm->size(); ++i) {
    sources.insert(*pm->mapping(i).SourceFor("value"));
  }
  EXPECT_EQ(sources.size(), 5u);
}

TEST(MappingGeneratorTest, CertainCorrespondencesShared) {
  Rng rng(3);
  const auto pm = GenerateRandomPMapping(BaseOptions(3), rng);
  ASSERT_TRUE(pm.ok());
  for (size_t i = 0; i < pm->size(); ++i) {
    EXPECT_EQ(*pm->mapping(i).SourceFor("id"), "id");
  }
  EXPECT_TRUE(pm->IsCertainTarget("id"));
  EXPECT_FALSE(pm->IsCertainTarget("value"));
}

TEST(MappingGeneratorTest, UniformProbabilities) {
  Rng rng(4);
  MappingGeneratorOptions o = BaseOptions(4);
  o.uniform_probabilities = true;
  const auto pm = GenerateRandomPMapping(o, rng);
  ASSERT_TRUE(pm.ok());
  for (size_t i = 0; i < pm->size(); ++i) {
    EXPECT_DOUBLE_EQ(pm->probability(i), 0.25);
  }
}

TEST(MappingGeneratorTest, DeterministicFromSeed) {
  Rng a(9), b(9);
  const auto pa = GenerateRandomPMapping(BaseOptions(3), a);
  const auto pb = GenerateRandomPMapping(BaseOptions(3), b);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(pa->mapping(i) == pb->mapping(i));
    EXPECT_DOUBLE_EQ(pa->probability(i), pb->probability(i));
  }
}

TEST(MappingGeneratorTest, RejectsBadOptions) {
  Rng rng(5);
  MappingGeneratorOptions too_few = BaseOptions(20);  // only 10 candidates
  EXPECT_FALSE(GenerateRandomPMapping(too_few, rng).ok());
  MappingGeneratorOptions zero = BaseOptions(0);
  EXPECT_FALSE(GenerateRandomPMapping(zero, rng).ok());
  MappingGeneratorOptions unnamed = BaseOptions(2);
  unnamed.target_attribute.clear();
  EXPECT_FALSE(GenerateRandomPMapping(unnamed, rng).ok());
}

TEST(MappingGeneratorTest, SingleMappingIsCertain) {
  Rng rng(6);
  const auto pm = GenerateRandomPMapping(BaseOptions(1), rng);
  ASSERT_TRUE(pm.ok());
  EXPECT_EQ(pm->size(), 1u);
  EXPECT_DOUBLE_EQ(pm->probability(0), 1.0);
  EXPECT_TRUE(pm->IsCertainTarget("value"));
}

}  // namespace
}  // namespace aqua
