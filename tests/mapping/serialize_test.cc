#include "aqua/mapping/serialize.h"

#include <gtest/gtest.h>

#include "aqua/workload/ebay.h"
#include "aqua/workload/real_estate.h"

namespace aqua {
namespace {

TEST(PMappingTextTest, FormatIsReadable) {
  const std::string text = PMappingText::Format(*MakeRealEstatePMapping());
  EXPECT_NE(text.find("pmapping S1 => T1"), std::string::npos);
  EXPECT_NE(text.find("candidate 0.6:"), std::string::npos);
  EXPECT_NE(text.find("postedDate -> date"), std::string::npos);
}

TEST(PMappingTextTest, RoundTripSingle) {
  const PMapping original = *MakeEbayPMapping();
  const auto parsed = PMappingText::Parse(PMappingText::Format(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_TRUE(parsed->mapping(i) == original.mapping(i));
    EXPECT_NEAR(parsed->probability(i), original.probability(i), 1e-9);
  }
}

TEST(PMappingTextTest, RoundTripSchema) {
  const SchemaPMapping original = *SchemaPMapping::Make(
      {*MakeRealEstatePMapping(), *MakeEbayPMapping()});
  const auto parsed =
      PMappingText::ParseSchema(PMappingText::FormatSchema(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), 2u);
  EXPECT_TRUE(parsed->ForTargetRelation("T1").ok());
  EXPECT_TRUE(parsed->ForTargetRelation("T2").ok());
}

TEST(PMappingTextTest, ParsesHandWrittenInput) {
  const char* text = R"(
# matcher output, reviewed 2008-06-27
pmapping S1 => T1
candidate 0.6: ID -> propertyID, postedDate -> date
candidate 0.4: ID -> propertyID, reducedDate -> date
)";
  const auto pm = PMappingText::Parse(text);
  ASSERT_TRUE(pm.ok()) << pm.status().ToString();
  EXPECT_EQ(pm->size(), 2u);
  EXPECT_EQ(*pm->mapping(1).SourceFor("date"), "reducedDate");
  EXPECT_TRUE(pm->IsCertainTarget("propertyID"));
}

TEST(PMappingTextTest, ParseErrors) {
  // candidate before header
  EXPECT_FALSE(PMappingText::Parse("candidate 1.0: a -> b").ok());
  // missing arrow in header
  EXPECT_FALSE(PMappingText::Parse("pmapping S1 T1\ncandidate 1.0: a -> b")
                   .ok());
  // bad probability
  EXPECT_FALSE(
      PMappingText::Parse("pmapping S => T\ncandidate xx: a -> b").ok());
  // probabilities not summing to one
  EXPECT_FALSE(
      PMappingText::Parse("pmapping S => T\ncandidate 0.5: a -> b").ok());
  // malformed correspondence
  EXPECT_FALSE(
      PMappingText::Parse("pmapping S => T\ncandidate 1.0: a b").ok());
  // duplicate target attribute inside one candidate
  EXPECT_FALSE(PMappingText::Parse(
                   "pmapping S => T\ncandidate 1.0: a -> x, b -> x")
                   .ok());
  // unrecognised statement
  EXPECT_FALSE(PMappingText::Parse("hello world").ok());
  // empty input
  EXPECT_FALSE(PMappingText::Parse("").ok());
  // Parse() requires exactly one block
  EXPECT_FALSE(PMappingText::Parse("pmapping S => T\ncandidate 1.0: a -> b\n"
                                   "pmapping S2 => T2\ncandidate 1.0: c -> d")
                   .ok());
}

TEST(PMappingTextTest, SchemaRejectsRepeatedRelations) {
  const char* text =
      "pmapping S => T\ncandidate 1.0: a -> b\n"
      "pmapping S => T2\ncandidate 1.0: c -> d";
  EXPECT_FALSE(PMappingText::ParseSchema(text).ok());
}

TEST(PMappingTextTest, EmptyCandidateListIsValid) {
  const auto pm =
      PMappingText::Parse("pmapping S => T\ncandidate 1.0:");
  ASSERT_TRUE(pm.ok()) << pm.status().ToString();
  EXPECT_EQ(pm->mapping(0).correspondences().size(), 0u);
}

TEST(PMappingTextTest, FileRoundTrip) {
  const SchemaPMapping original =
      *SchemaPMapping::Make({*MakeEbayPMapping()});
  const std::string path = ::testing::TempDir() + "/aqua_serialize_test.pmap";
  ASSERT_TRUE(PMappingText::WriteSchemaFile(original, path).ok());
  const auto back = PMappingText::ReadSchemaFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ(back->mapping(0).size(), original.mapping(0).size());
  EXPECT_EQ(back->mapping(0).target_relation(),
            original.mapping(0).target_relation());
}

TEST(PMappingTextTest, ReadSchemaFileMissingPathIsNotFound) {
  const auto r = PMappingText::ReadSchemaFile("/nonexistent/m.pmap");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace aqua
