#include "aqua/obs/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <string>

namespace aqua::obs {
namespace {

/// Installs a sink for the test body and guarantees uninstall on exit so a
/// failing test cannot leak the global into its neighbours.
class ScopedSink {
 public:
  explicit ScopedSink(TraceSink* sink) { InstallTraceSink(sink); }
  ~ScopedSink() { UninstallTraceSink(); }
};

TEST(TraceTest, NoSinkMeansNoEvents) {
  ASSERT_EQ(ActiveTraceSink(), nullptr);
  { TraceSpan span("orphan"); }
  TraceSink sink;
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceTest, SpanEmitsOneCompleteEvent) {
  TraceSink sink;
  {
    ScopedSink installed(&sink);
    TraceSpan span("work");
  }
  ASSERT_EQ(sink.size(), 1u);
  const TraceEvent e = sink.events()[0];
  EXPECT_STREQ(e.name, "work");
  EXPECT_GE(e.ts_us, 0);
  EXPECT_GE(e.dur_us, 0);
}

TEST(TraceTest, NestedSpansNestByInterval) {
  TraceSink sink;
  {
    ScopedSink installed(&sink);
    TraceSpan outer("outer");
    { TraceSpan inner("inner"); }
  }
  ASSERT_EQ(sink.size(), 2u);
  // Destruction order: inner closes first.
  const auto events = sink.events();
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_LE(outer.ts_us, inner.ts_us);
  EXPECT_GE(outer.ts_us + outer.dur_us, inner.ts_us + inner.dur_us);
}

TEST(TraceTest, SpansOpenedBeforeInstallStayNoOps) {
  TraceSink sink;
  {
    // The span caches the active sink at construction; installing after
    // has no effect on it.
    TraceSpan span("early");
    ScopedSink installed(&sink);
  }
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceTest, JsonHasChromeTraceShape) {
  TraceSink sink;
  {
    ScopedSink installed(&sink);
    TraceSpan span("phase \"quoted\"");
  }
  const std::string json = sink.ToJson();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"aqua\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Span names are JSON-escaped.
  EXPECT_NE(json.find("phase \\\"quoted\\\""), std::string::npos) << json;
}

TEST(TraceTest, WriteFileRoundTrips) {
  TraceSink sink;
  {
    ScopedSink installed(&sink);
    TraceSpan span("io");
  }
  const std::string path = ::testing::TempDir() + "/aqua_trace_test.json";
  ASSERT_TRUE(sink.WriteFile(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, sink.ToJson());
}

TEST(TraceTest, WriteFileBadPathFails) {
  TraceSink sink;
  EXPECT_FALSE(sink.WriteFile("/nonexistent-dir/trace.json").ok());
}

}  // namespace
}  // namespace aqua::obs
