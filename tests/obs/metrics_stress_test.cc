// Concurrency hardening for the metrics registry: the thread pool observes
// task latencies and increments counters from every worker, so concurrent
// writers (and concurrent writer/reader pairs) are the normal case, not an
// edge case. Run under -DAQUA_SANITIZE=thread this doubles as the race
// detector for the whole registry.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "aqua/obs/metrics.h"

namespace aqua::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 10'000;

TEST(MetricsStressTest, ConcurrentCounterIncrementsAllLand) {
  MetricsRegistry registry;
  Counter counter = registry.GetCounter("stress_counter");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(MetricsStressTest, ConcurrentHistogramObservationsAllLand) {
  MetricsRegistry registry;
  Histogram hist =
      registry.GetHistogram("stress_hist", {}, {0.5, 1.5, 2.5, 3.5});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        hist.Observe(static_cast<double>(i % 4));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const uint64_t total = static_cast<uint64_t>(kThreads) * kOpsPerThread;
  EXPECT_EQ(hist.count(), total);
  // Every value is 0,1,2,3 in equal proportion: sum = total * 1.5, and the
  // CAS-loop sum accumulation must not lose any update.
  EXPECT_DOUBLE_EQ(hist.sum(), static_cast<double>(total) * 1.5);
  const std::vector<uint64_t> buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 5u);
  for (int b = 0; b < 4; ++b) EXPECT_EQ(buckets[b], total / 4);
  EXPECT_EQ(buckets[4], 0u);  // nothing above 3.5
}

TEST(MetricsStressTest, ConcurrentCellCreationAndWrites) {
  // Threads race to create the same cells and distinct cells while a
  // reader renders the registry — registration and exposition must both be
  // safe against in-flight writers.
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)registry.RenderPrometheusText();
      (void)registry.RenderJson();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared_counter").Increment();
        registry
            .GetCounter("labelled", {{"worker", std::to_string(t % 3)}})
            .Increment();
        registry.GetHistogram("shared_hist").Observe(1.0);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(registry.GetCounter("shared_counter").value(),
            static_cast<uint64_t>(kThreads) * 1000);
  EXPECT_EQ(registry.GetHistogram("shared_hist").count(),
            static_cast<uint64_t>(kThreads) * 1000);
}

TEST(MetricsStressTest, ResetDuringWritesKeepsHandlesValid) {
  MetricsRegistry registry;
  Counter counter = registry.GetCounter("reset_counter");
  Histogram hist = registry.GetHistogram("reset_hist");
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        counter.Increment();
        hist.Observe(2.0);
      }
    });
  }
  registry.Reset();  // concurrent with writers: must not crash or UAF
  for (std::thread& t : writers) t.join();
  registry.Reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
}

}  // namespace
}  // namespace aqua::obs
