#include "aqua/obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace aqua::obs {
namespace {

TEST(CounterTest, DefaultHandleIsNoOp) {
  Counter c;
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, IncrementAndRead) {
  MetricsRegistry registry;
  Counter c = registry.GetCounter("requests_total", {});
  c.Increment();
  c.Increment(2);
  EXPECT_EQ(c.value(), 3u);
}

TEST(CounterTest, LabelsSelectDistinctCells) {
  MetricsRegistry registry;
  Counter ok = registry.GetCounter("q_total", {{"outcome", "ok"}});
  Counter err = registry.GetCounter("q_total", {{"outcome", "error"}});
  ok.Increment(5);
  err.Increment();
  EXPECT_EQ(ok.value(), 5u);
  EXPECT_EQ(err.value(), 1u);
  // Same name+labels resolves to the same cell regardless of label order.
  Counter ok2 = registry.GetCounter("q_total", {{"outcome", "ok"}});
  EXPECT_EQ(ok2.value(), 5u);
}

TEST(CounterTest, LabelOrderDoesNotMatter) {
  MetricsRegistry registry;
  Counter a = registry.GetCounter("m", {{"x", "1"}, {"y", "2"}});
  Counter b = registry.GetCounter("m", {{"y", "2"}, {"x", "1"}});
  a.Increment(7);
  EXPECT_EQ(b.value(), 7u);
}

TEST(GaugeTest, DefaultHandleIsNoOp) {
  Gauge g;
  g.Set(7);
  g.Increment();
  EXPECT_EQ(g.value(), 0);
}

TEST(GaugeTest, SetIncrementDecrement) {
  MetricsRegistry registry;
  Gauge g = registry.GetGauge("inflight", {});
  g.Set(5);
  EXPECT_EQ(g.value(), 5);
  g.Increment();
  g.Increment(2);
  EXPECT_EQ(g.value(), 8);
  g.Decrement(10);
  // Gauges, unlike counters, may legitimately go negative.
  EXPECT_EQ(g.value(), -2);
}

TEST(GaugeTest, LabelsSelectDistinctCells) {
  MetricsRegistry registry;
  Gauge a = registry.GetGauge("depth", {{"pool", "shared"}});
  Gauge b = registry.GetGauge("depth", {{"pool", "acceptor"}});
  a.Set(3);
  b.Set(9);
  EXPECT_EQ(a.value(), 3);
  EXPECT_EQ(b.value(), 9);
}

TEST(GaugeTest, RendersInPrometheusAndJson) {
  MetricsRegistry registry;
  registry.GetGauge("aqua_server_inflight", {}).Set(4);
  const std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE aqua_server_inflight gauge"), std::string::npos)
      << text;
  EXPECT_NE(text.find("aqua_server_inflight 4"), std::string::npos) << text;
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"gauges\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"aqua_server_inflight\""), std::string::npos);
}

TEST(GaugeTest, ResetZeroesGauges) {
  MetricsRegistry registry;
  Gauge g = registry.GetGauge("g", {});
  g.Set(11);
  registry.Reset();
  EXPECT_EQ(g.value(), 0);
  g.Increment();
  EXPECT_EQ(g.value(), 1);
}

TEST(HistogramTest, ObservationsLandInBuckets) {
  MetricsRegistry registry;
  Histogram h = registry.GetHistogram("latency", {}, {10, 100, 1000});
  h.Observe(5);     // -> le=10
  h.Observe(50);    // -> le=100
  h.Observe(500);   // -> le=1000
  h.Observe(5000);  // -> +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 5555.0);
  const std::vector<uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 finite bounds + overflow
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(HistogramTest, BoundaryValueGoesToLowerBucket) {
  MetricsRegistry registry;
  Histogram h = registry.GetHistogram("b", {}, {10, 100});
  h.Observe(10);  // le is inclusive, Prometheus-style
  EXPECT_EQ(h.bucket_counts()[0], 1u);
}

TEST(RegistryTest, PrometheusTextRendersCountersAndHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("aqua_queries_total", {{"cell", "by-tuple/SUM/range"}})
      .Increment(3);
  Histogram h = registry.GetHistogram("aqua_latency_us", {}, {100, 1000});
  h.Observe(50);
  h.Observe(5000);
  const std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE aqua_queries_total counter"), std::string::npos);
  EXPECT_NE(
      text.find(
          "aqua_queries_total{cell=\"by-tuple/SUM/range\"} 3"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE aqua_latency_us histogram"), std::string::npos);
  // Buckets are cumulative; +Inf equals the total count.
  EXPECT_NE(text.find("aqua_latency_us_bucket{le=\"100\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("aqua_latency_us_bucket{le=\"1000\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("aqua_latency_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("aqua_latency_us_count 2"), std::string::npos);
}

TEST(RegistryTest, JsonRenderParsesStructurally) {
  MetricsRegistry registry;
  registry.GetCounter("c_total", {{"k", "v"}}).Increment();
  registry.GetHistogram("h_us", {}, {10}).Observe(3);
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"counters\":["), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":["), std::string::npos);
  EXPECT_NE(json.find("\"c_total\""), std::string::npos);
  EXPECT_NE(json.find("\"h_us\""), std::string::npos);
  // Balanced braces/brackets (no JSON parser in the test deps; a structural
  // smoke check plus the CI python -m json.tool step cover validity).
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(RegistryTest, ResetZeroesWithoutInvalidatingHandles) {
  MetricsRegistry registry;
  Counter c = registry.GetCounter("c", {});
  Histogram h = registry.GetHistogram("h", {}, {1});
  c.Increment(9);
  h.Observe(0.5);
  registry.Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  // Old handles keep working after the reset.
  c.Increment();
  EXPECT_EQ(c.value(), 1u);
}

TEST(RegistryTest, ConcurrentIncrementsDoNotLoseCounts) {
  MetricsRegistry registry;
  Counter c = registry.GetCounter("hot", {});
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter local = registry.GetCounter("hot", {});
      for (int i = 0; i < kIters; ++i) local.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kIters);
}

TEST(RegistryTest, DefaultRegistryIsASingleton) {
  MetricsRegistry& a = MetricsRegistry::Default();
  MetricsRegistry& b = MetricsRegistry::Default();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace aqua::obs
