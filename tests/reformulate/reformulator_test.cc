#include "aqua/reformulate/reformulator.h"

#include <gtest/gtest.h>

#include "aqua/query/parser.h"
#include "aqua/workload/ebay.h"
#include "aqua/workload/real_estate.h"

namespace aqua {
namespace {

TEST(ReformulatorTest, Q1ReformulatesPerMapping) {
  // Paper Example 3: Q1 becomes Q11 under m11 and Q12 under m12.
  const PMapping pm = *MakeRealEstatePMapping();
  const AggregateQuery q1 = PaperQueryQ1();

  const auto q11 = Reformulator::Reformulate(q1, pm.mapping(0));
  ASSERT_TRUE(q11.ok()) << q11.status().ToString();
  EXPECT_EQ(q11->relation, "S1");
  EXPECT_EQ(q11->where->ToString(), "postedDate < '2008-1-20'");

  const auto q12 = Reformulator::Reformulate(q1, pm.mapping(1));
  ASSERT_TRUE(q12.ok());
  EXPECT_EQ(q12->where->ToString(), "reducedDate < '2008-1-20'");
}

TEST(ReformulatorTest, AggregateAttributeIsRewritten) {
  const PMapping pm = *MakeEbayPMapping();
  const AggregateQuery q = PaperQueryQ2Prime();
  const auto r0 = Reformulator::Reformulate(q, pm.mapping(0));
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(r0->attribute, "bid");
  EXPECT_EQ(r0->where->ToString(), "auction = 34");
  const auto r1 = Reformulator::Reformulate(q, pm.mapping(1));
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->attribute, "currentPrice");
}

TEST(ReformulatorTest, GroupByIsRewritten) {
  const PMapping pm = *MakeEbayPMapping();
  AggregateQuery q = *SqlParser::ParseSimple(
      "SELECT MAX(price) FROM T2 GROUP BY auctionId");
  const auto r = Reformulator::Reformulate(q, pm.mapping(0));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->group_by, "auction");
}

TEST(ReformulatorTest, HavingAttributeIsRewritten) {
  const PMapping pm = *MakeEbayPMapping();
  AggregateQuery q = *SqlParser::ParseSimple(
      "SELECT MAX(price) FROM T2 GROUP BY auctionId HAVING MIN(price) > "
      "300");
  const auto r0 = Reformulator::Reformulate(q, pm.mapping(0));
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  ASSERT_TRUE(r0->having.has_value());
  EXPECT_EQ(r0->having->attribute, "bid");
  const auto r1 = Reformulator::Reformulate(q, pm.mapping(1));
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->having->attribute, "currentPrice");
}

TEST(ReformulatorTest, HavingCountStarKeepsEmptyAttribute) {
  const PMapping pm = *MakeEbayPMapping();
  AggregateQuery q = *SqlParser::ParseSimple(
      "SELECT MAX(price) FROM T2 GROUP BY auctionId HAVING COUNT(*) > 2");
  const auto r = Reformulator::Reformulate(q, pm.mapping(0));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->having.has_value());
  EXPECT_TRUE(r->having->attribute.empty());
}

TEST(ReformulatorTest, UnmappedAttributeFails) {
  const PMapping pm = *MakeRealEstatePMapping();
  AggregateQuery q = *SqlParser::ParseSimple(
      "SELECT COUNT(*) FROM T1 WHERE comments = 'nice'");
  const auto r = Reformulator::Reformulate(q, pm.mapping(0));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ReformulatorTest, WrongRelationFails) {
  const PMapping pm = *MakeRealEstatePMapping();
  AggregateQuery q = *SqlParser::ParseSimple("SELECT COUNT(*) FROM Other");
  EXPECT_FALSE(Reformulator::Reformulate(q, pm.mapping(0)).ok());
}

TEST(ReformulatorTest, NestedReformulation) {
  const PMapping pm = *MakeEbayPMapping();
  const NestedAggregateQuery q2 = PaperQueryQ2();
  const auto r = Reformulator::ReformulateNested(q2, pm.mapping(1));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->inner.attribute, "currentPrice");
  EXPECT_EQ(r->inner.group_by, "auction");
  EXPECT_EQ(r->outer, AggregateFunction::kAvg);
}

TEST(ReformulatorTest, BindAllProducesOneBindingPerCandidate) {
  const PMapping pm = *MakeEbayPMapping();
  const Table t = *PaperInstanceDS2();
  const auto bindings =
      Reformulator::BindAll(PaperQueryQ2Prime(), pm, t);
  ASSERT_TRUE(bindings.ok()) << bindings.status().ToString();
  ASSERT_EQ(bindings->size(), 2u);
  EXPECT_DOUBLE_EQ((*bindings)[0].probability, 0.3);
  EXPECT_DOUBLE_EQ((*bindings)[1].probability, 0.7);
  // Binding 0 aggregates the bid column, binding 1 the currentPrice column.
  EXPECT_DOUBLE_EQ((*bindings)[0].attribute->DoubleAt(2), 331.94);
  EXPECT_DOUBLE_EQ((*bindings)[1].attribute->DoubleAt(2), 202.50);
  // The WHERE auctionId = 34 predicate holds for the first four rows only.
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ((*bindings)[0].predicate.Matches(t, r), r < 4);
  }
}

TEST(ReformulatorTest, BindAllCountStarHasNoAttribute) {
  const PMapping pm = *MakeRealEstatePMapping();
  const Table t = *PaperInstanceDS1();
  const auto bindings = Reformulator::BindAll(PaperQueryQ1(), pm, t);
  ASSERT_TRUE(bindings.ok()) << bindings.status().ToString();
  EXPECT_EQ((*bindings)[0].attribute, nullptr);
}

TEST(ReformulatorTest, BindAllRejectsSumOverNonNumeric) {
  const PMapping pm = *MakeRealEstatePMapping();
  const Table t = *PaperInstanceDS1();
  AggregateQuery q = *SqlParser::ParseSimple("SELECT SUM(date) FROM T1");
  EXPECT_FALSE(Reformulator::BindAll(q, pm, t).ok());
}

TEST(ReformulatorTest, BindAllRejectsWrongRelation) {
  const PMapping pm = *MakeRealEstatePMapping();
  const Table t = *PaperInstanceDS1();
  AggregateQuery q = *SqlParser::ParseSimple("SELECT COUNT(*) FROM T9");
  EXPECT_FALSE(Reformulator::BindAll(q, pm, t).ok());
}

}  // namespace
}  // namespace aqua
