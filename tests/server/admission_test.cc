#include "aqua/server/admission.h"

#include <gtest/gtest.h>

namespace aqua::server {
namespace {

using Decision = AdmissionController::Decision;

TEST(AdmissionControllerTest, AdmitsUnderSoftWatermark) {
  AdmissionController admission({/*soft_watermark=*/2, /*hard_watermark=*/4});
  EXPECT_EQ(admission.Admit(), Decision::kAdmit);
  EXPECT_EQ(admission.Admit(), Decision::kAdmit);
  EXPECT_EQ(admission.inflight(), 2);
}

TEST(AdmissionControllerTest, ShedsBetweenWatermarks) {
  AdmissionController admission({/*soft_watermark=*/2, /*hard_watermark=*/4});
  EXPECT_EQ(admission.Admit(), Decision::kAdmit);
  EXPECT_EQ(admission.Admit(), Decision::kAdmit);
  // Above soft, below hard: the request still runs, on the cheap path.
  EXPECT_EQ(admission.Admit(), Decision::kShed);
  EXPECT_EQ(admission.Admit(), Decision::kShed);
  EXPECT_EQ(admission.inflight(), 4);
}

TEST(AdmissionControllerTest, RejectsAtHardWatermark) {
  AdmissionController admission({/*soft_watermark=*/1, /*hard_watermark=*/2});
  EXPECT_EQ(admission.Admit(), Decision::kAdmit);
  EXPECT_EQ(admission.Admit(), Decision::kShed);
  // At the hard watermark: rejected, and NOT counted in-flight.
  EXPECT_EQ(admission.Admit(), Decision::kRejectOverload);
  EXPECT_EQ(admission.inflight(), 2);
}

TEST(AdmissionControllerTest, ReleaseReopensAdmission) {
  AdmissionController admission({/*soft_watermark=*/1, /*hard_watermark=*/1});
  EXPECT_EQ(admission.Admit(), Decision::kAdmit);
  EXPECT_EQ(admission.Admit(), Decision::kRejectOverload);
  admission.Release();
  EXPECT_EQ(admission.inflight(), 0);
  // Shed-then-recover in miniature: once load falls back under the
  // watermark, full-fidelity answers resume.
  EXPECT_EQ(admission.Admit(), Decision::kAdmit);
}

TEST(AdmissionControllerTest, DrainingRejectsEverythingNew) {
  AdmissionController admission({/*soft_watermark=*/8, /*hard_watermark=*/8});
  EXPECT_EQ(admission.Admit(), Decision::kAdmit);
  admission.StopAdmission();
  EXPECT_TRUE(admission.draining());
  EXPECT_EQ(admission.Admit(), Decision::kRejectDraining);
  // The in-flight request keeps its slot until it releases.
  EXPECT_EQ(admission.inflight(), 1);
  EXPECT_FALSE(admission.Quiesced());
  admission.Release();
  EXPECT_TRUE(admission.Quiesced());
}

TEST(AdmissionControllerTest, QuiescedRequiresDraining) {
  AdmissionController admission({/*soft_watermark=*/2, /*hard_watermark=*/2});
  // Idle but not draining: not quiesced (the server is still serving).
  EXPECT_FALSE(admission.Quiesced());
  admission.StopAdmission();
  EXPECT_TRUE(admission.Quiesced());
}

TEST(AdmissionControllerTest, DecisionNamesAreStable) {
  EXPECT_EQ(AdmissionDecisionToString(Decision::kAdmit), "admit");
  EXPECT_EQ(AdmissionDecisionToString(Decision::kShed), "shed");
  EXPECT_EQ(AdmissionDecisionToString(Decision::kRejectOverload),
            "reject-overload");
  EXPECT_EQ(AdmissionDecisionToString(Decision::kRejectDraining),
            "reject-draining");
}

}  // namespace
}  // namespace aqua::server
