#include "aqua/server/http.h"

#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include <gtest/gtest.h>

#include "aqua/common/failpoint.h"

namespace aqua::server {
namespace {

TEST(ParseHttpRequestTest, ParsesPostWithBody) {
  const auto request = ParseHttpRequest(
      "POST /query HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 5\r\n"
      "\r\n"
      "hello");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->method, "POST");
  EXPECT_EQ(request->target, "/query");
  EXPECT_EQ(request->body, "hello");
  EXPECT_EQ(request->headers.at("host"), "localhost");
}

TEST(ParseHttpRequestTest, LowercasesAndTrimsHeaders) {
  const auto request = ParseHttpRequest(
      "GET /metrics HTTP/1.1\r\n"
      "X-Custom-Header:   spaced value  \r\n"
      "\r\n");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->headers.at("x-custom-header"), "spaced value");
}

TEST(ParseHttpRequestTest, RejectsMalformedMessages) {
  const char* bad[] = {
      "",                                           // empty
      "GET /\r\n\r\n",                              // no HTTP version
      "GET\r\n\r\n",                                // no target
      "GET noslash HTTP/1.1\r\n\r\n",               // target not a path
      "GET / HTTP/1.1\r\nbadheader\r\n\r\n",        // header without colon
      "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\nshort",   // body short
      "POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",      // bad length
  };
  for (const char* raw : bad) {
    const auto request = ParseHttpRequest(raw);
    EXPECT_FALSE(request.ok()) << "accepted: " << raw;
    if (!request.ok()) {
      EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(SerializeHttpResponseTest, EmitsStatusLineHeadersAndBody) {
  const std::string response =
      SerializeHttpResponse(429, "application/json", "{\"ok\":false}");
  EXPECT_NE(response.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(response.find("Content-Length: 12\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(response.substr(response.size() - 12), "{\"ok\":false}");
}

TEST(HttpStatusForCodeTest, MapsServiceCodes) {
  EXPECT_EQ(HttpStatusForCode(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kNotFound), 404);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kResourceExhausted), 429);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kUnimplemented), 501);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kUnavailable), 503);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kDeadlineExceeded), 504);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kInternal), 500);
}

/// Socket-level round trips over a socketpair: the same code paths aquad
/// uses, no listener required.
class SocketFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) close(fds_[0]);
    if (fds_[1] >= 0) close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(SocketFixture, ReadsFullRequestAcrossWrites) {
  const std::string raw =
      "POST /query HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
  // Deliver in two chunks to exercise the re-assembly loop.
  ASSERT_EQ(send(fds_[0], raw.data(), 10, 0), 10);
  ASSERT_EQ(send(fds_[0], raw.data() + 10, raw.size() - 10, 0),
            static_cast<ssize_t>(raw.size() - 10));
  const auto request = ReadHttpRequest(fds_[1], 1 << 20);
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->body, "body");
}

TEST_F(SocketFixture, PeerCloseMidRequestIsUnavailable) {
  const std::string raw = "POST /query HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
  ASSERT_EQ(send(fds_[0], raw.data(), raw.size(), 0),
            static_cast<ssize_t>(raw.size()));
  close(fds_[0]);
  fds_[0] = -1;
  const auto request = ReadHttpRequest(fds_[1], 1 << 20);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kUnavailable);
}

TEST_F(SocketFixture, OversizedRequestIsResourceExhausted) {
  const std::string raw =
      "POST /query HTTP/1.1\r\nContent-Length: 4096\r\n\r\n";
  ASSERT_EQ(send(fds_[0], raw.data(), raw.size(), 0),
            static_cast<ssize_t>(raw.size()));
  const auto request = ReadHttpRequest(fds_[1], /*max_bytes=*/256);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(SocketFixture, ReadFailpointModelsStalledClient) {
  // The chaos harness drives this site over the full grammar; here we pin
  // the direct contract: an injected error surfaces as that Status.
  fault::ScopedFailpoint fp("server/read-request", "error(unavailable)");
  ASSERT_TRUE(fp.status().ok()) << fp.status().ToString();
  const auto request = ReadHttpRequest(fds_[1], 1 << 20);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kUnavailable);
}

TEST_F(SocketFixture, WriteRoundTripsAndFailpointDropsResponse) {
  const std::string response =
      SerializeHttpResponse(200, "application/json", "{}");
  ASSERT_TRUE(WriteHttpResponse(fds_[0], response).ok());
  std::string received(response.size(), '\0');
  ASSERT_EQ(recv(fds_[1], received.data(), received.size(), 0),
            static_cast<ssize_t>(response.size()));
  EXPECT_EQ(received, response);

  fault::ScopedFailpoint fp("server/write-response", "error(unavailable)");
  ASSERT_TRUE(fp.status().ok()) << fp.status().ToString();
  const Status dropped = WriteHttpResponse(fds_[0], response);
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace aqua::server
