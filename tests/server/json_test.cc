#include "aqua/server/json.h"

#include <gtest/gtest.h>

namespace aqua::server {
namespace {

TEST(FlatJsonTest, ParsesAllValueKinds) {
  const auto json = FlatJson::Parse(
      R"({"s":"hello","n":42.5,"i":-3,"t":true,"f":false,"z":null})");
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_EQ(*json->GetString("s", ""), "hello");
  EXPECT_TRUE(json->Has("n"));
  EXPECT_EQ(*json->GetInt("i", 0), -3);
  EXPECT_TRUE(json->Has("t"));
  EXPECT_TRUE(json->Has("z"));
  EXPECT_EQ(json->entries().size(), 6u);
}

TEST(FlatJsonTest, ParsesEmptyObjectAndWhitespace) {
  EXPECT_TRUE(FlatJson::Parse("{}").ok());
  EXPECT_TRUE(FlatJson::Parse("  {\n  }  ").ok());
  const auto json = FlatJson::Parse("{ \"a\" : 1 , \"b\" : \"x\" }");
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(*json->GetInt("a", 0), 1);
}

TEST(FlatJsonTest, DecodesEscapes) {
  const auto json =
      FlatJson::Parse(R"({"k":"a\"b\\c\nd\teA"})");
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_EQ(*json->GetString("k", ""), "a\"b\\c\nd\teA");
}

TEST(FlatJsonTest, RejectsMalformedInput) {
  // Every rejection is a clean kInvalidArgument — the parser can never
  // crash on a hostile body.
  const char* bad[] = {
      "",
      "not json",
      "[1,2]",
      "{\"a\":1",
      "{\"a\"}",
      "{\"a\":}",
      "{\"a\":1,}",
      "{\"a\":1}trailing",
      "{\"a\":{\"nested\":1}}",
      "{\"a\":[1,2]}",
      "{\"a\":1,\"a\":2}",
      "{\"a\":\"unterminated}",
      "{\"a\":1e999}",
      "{\"a\":tru}",
  };
  for (const char* text : bad) {
    const auto json = FlatJson::Parse(text);
    EXPECT_FALSE(json.ok()) << "accepted: " << text;
    if (!json.ok()) {
      EXPECT_EQ(json.status().code(), StatusCode::kInvalidArgument) << text;
    }
  }
}

TEST(FlatJsonTest, TypedGettersEnforceTypes) {
  const auto json = FlatJson::Parse(R"({"s":"x","n":1.5,"i":7})");
  ASSERT_TRUE(json.ok());
  // Absent key: fallback, not error.
  EXPECT_EQ(*json->GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(*json->GetInt("missing", 99), 99);
  // Present with the wrong type: loud error, not silent default.
  EXPECT_FALSE(json->GetString("n", "").ok());
  EXPECT_FALSE(json->GetInt("s", 0).ok());
  // A fractional number is not an integer.
  EXPECT_FALSE(json->GetInt("n", 0).ok());
  EXPECT_EQ(*json->GetInt("i", 0), 7);
}

TEST(JsonNumberTest, RendersFiniteAndGuardsNonFinite) {
  EXPECT_EQ(JsonNumber(2.5), "2.5");
  EXPECT_EQ(JsonNumber(0), "0");
  EXPECT_EQ(JsonNumber(1.0 / 0.0), "null");
  EXPECT_EQ(JsonNumber(0.0 / 0.0), "null");
}

TEST(RenderAnswerTest, RangeAnswerOmitsStats) {
  AggregateAnswer answer = AggregateAnswer::MakeRange({10, 20});
  answer.stats.wall_time_us = 1234;  // nondeterministic field...
  const std::string rendered = RenderAnswer(answer);
  EXPECT_EQ(rendered,
            "{\"semantics\":\"range\",\"range\":{\"low\":10,\"high\":20},"
            "\"approximate\":false,\"note\":\"\"}");
  // ...must not leak into the deterministic answer object, which clients
  // and the chaos harness byte-compare across runs.
  EXPECT_EQ(rendered.find("1234"), std::string::npos);
}

TEST(RenderAnswerTest, ApproximateAnswerCarriesFlagAndNote) {
  AggregateAnswer answer = AggregateAnswer::MakeExpected(3.5);
  answer.approximate = true;
  answer.note = "degraded to sampling";
  const std::string rendered = RenderAnswer(answer);
  EXPECT_NE(rendered.find("\"approximate\":true"), std::string::npos);
  EXPECT_NE(rendered.find("degraded to sampling"), std::string::npos);
  EXPECT_NE(rendered.find("\"expected\":3.5"), std::string::npos);
}

TEST(RenderAnswerTest, DistributionRendersEntryPairs) {
  Distribution d;
  d.AddMass(1, 0.25);
  d.AddMass(2, 0.75);
  const std::string rendered =
      RenderAnswer(AggregateAnswer::MakeDistribution(std::move(d)));
  EXPECT_NE(rendered.find("\"distribution\":[[1,0.25],[2,0.75]]"),
            std::string::npos);
}

}  // namespace
}  // namespace aqua::server
