// End-to-end tests for the aquad service stack: real sockets against a
// live HttpServer, admission/shed/drain behaviour, and the signal flag.

#include "aqua/server/server.h"

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aqua/common/failpoint.h"
#include "aqua/server/service.h"
#include "aqua/server/signal.h"
#include "aqua/workload/ebay.h"

namespace aqua::server {
namespace {

/// One-shot HTTP client: connect, send, read to EOF. Returns the raw
/// response ("" when the server dropped the connection).
std::string RoundTrip(int port, const std::string& request) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = send(fd, request.data() + sent, request.size() - sent,
                           MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[4096];
  while (true) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string PostQuery(int port, const std::string& body) {
  return RoundTrip(port, "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: " +
                             std::to_string(body.size()) + "\r\n\r\n" + body);
}

std::string Get(int port, const std::string& target) {
  return RoundTrip(port, "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

class ServerFixture : public ::testing::Test {
 protected:
  void Serve(int soft_watermark = 8, int hard_watermark = 16) {
    QueryServiceOptions options;
    options.admission.soft_watermark = soft_watermark;
    options.admission.hard_watermark = hard_watermark;
    options.caps.default_deadline_ms = 5000;
    options.engine.threads = 1;
    service_ = std::make_unique<QueryService>(*PaperInstanceDS2(),
                                              *MakeEbayPMapping(),
                                              options);
    server_ = std::make_unique<HttpServer>(service_.get(),
                                           HttpServerOptions{});
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) (void)server_->Shutdown(2000);
  }

  std::unique_ptr<QueryService> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ServerFixture, HealthzAndRoutingWork) {
  Serve();
  EXPECT_NE(Get(server_->port(), "/healthz").find("{\"ok\":true}"),
            std::string::npos);
  EXPECT_NE(Get(server_->port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  // Wrong method on a known route: 405, not 404 and not a crash.
  EXPECT_NE(Get(server_->port(), "/query").find("HTTP/1.1 405"),
            std::string::npos);
}

TEST_F(ServerFixture, AnswersAQueryExactlyWhenUnderWatermark) {
  Serve();
  const std::string response = PostQuery(
      server_->port(),
      R"({"query":"SELECT COUNT(*) FROM T2","answer":"expected"})");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(response.find("\"decision\":\"admit\""), std::string::npos);
  EXPECT_NE(response.find("\"approximate\":false"), std::string::npos);
  // The effective (clamped) budget is echoed in the stats for audit.
  EXPECT_NE(response.find("\"limit_timeout_ms\":"), std::string::npos);
}

TEST_F(ServerFixture, MalformedJsonBodyGetsWellFormed400NotACrash) {
  Serve();
  const std::string response = PostQuery(server_->port(), "{definitely not");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(response.find("invalid-argument"), std::string::npos);
  // The server survived the hostile body and keeps serving.
  EXPECT_NE(Get(server_->port(), "/healthz").find("{\"ok\":true}"),
            std::string::npos);
}

TEST_F(ServerFixture, ExpiredDeadlineIsRejectedBeforeAdmission) {
  Serve();
  // Direct service call so the pre-admission elapsed time is exact: the
  // request asks for 10ms but 50ms were already spent reading/queueing.
  const ServiceResponse response = service_->HandleQuery(
      R"({"query":"SELECT COUNT(*) FROM T2","deadline_ms":10})",
      /*elapsed_ms=*/50);
  EXPECT_EQ(response.http_status, 504);
  EXPECT_NE(response.body.find("deadline expired before admission"),
            std::string::npos);
  // Never admitted: no in-flight slot was consumed.
  EXPECT_EQ(service_->admission().inflight(), 0);
}

TEST_F(ServerFixture, AdmissionFailpointForcesTheShedPath) {
  Serve();
  fault::ScopedFailpoint fp("server/admission", "error(resource-exhausted)");
  ASSERT_TRUE(fp.status().ok()) << fp.status().ToString();
  const std::string response = PostQuery(
      server_->port(),
      R"({"query":"SELECT SUM(price) FROM T2","answer":"expected"})");
  // Shed requests still get an answer — approximate, flagged, with the
  // shed reason in the stats.
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("\"decision\":\"shed\""), std::string::npos);
  EXPECT_NE(response.find("\"approximate\":true"), std::string::npos);
  EXPECT_NE(response.find("load shed"), std::string::npos);

  // Grouped queries have no cheap approximate path: well-formed 429.
  const std::string grouped = PostQuery(
      server_->port(),
      R"({"query":"SELECT SUM(price) FROM T2 GROUP BY category"})");
  EXPECT_NE(grouped.find("HTTP/1.1 429"), std::string::npos);
  EXPECT_NE(grouped.find("\"retryable\":true"), std::string::npos);
}

TEST_F(ServerFixture, AcceptFailpointDropsOneConnectionServerSurvives) {
  Serve();
  {
    fault::ScopedFailpoint fp("server/accept", "once*error(unavailable)");
    ASSERT_TRUE(fp.status().ok()) << fp.status().ToString();
    // The dropped connection yields an empty response, not a hang.
    EXPECT_EQ(Get(server_->port(), "/healthz"), "");
  }
  EXPECT_NE(Get(server_->port(), "/healthz").find("{\"ok\":true}"),
            std::string::npos);
}

TEST_F(ServerFixture, StatuszAndMetricsAreServed) {
  Serve();
  const std::string statusz = Get(server_->port(), "/statusz");
  EXPECT_NE(statusz.find("\"inflight\":"), std::string::npos);
  EXPECT_NE(statusz.find("\"soft_watermark\":8"), std::string::npos);
  const std::string metrics = Get(server_->port(), "/metrics");
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos);
  EXPECT_NE(metrics.find("aqua_server_requests_total"), std::string::npos);
}

TEST_F(ServerFixture, DrainFinishesInFlightRequestsWithZeroDrops) {
  Serve();
  // Slow every query down so the drain demonstrably overlaps in-flight
  // work (the delay fires inside the engine's exact pass).
  fault::ScopedFailpoint slow("core/engine/exact", "delay(200)");
  ASSERT_TRUE(slow.status().ok()) << slow.status().ToString();
  constexpr int kClients = 4;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([this, &responses, i] {
      responses[i] = PostQuery(
          server_->port(),
          R"({"query":"SELECT COUNT(*) FROM T2","answer":"expected"})");
    });
  }
  // Wait until at least one request is demonstrably in flight, then drain
  // under load. (On a single-core host the shared pool serialises
  // connection handling, so not all clients reach admission before the
  // drain starts — those get a well-formed 503, which is not a drop.)
  while (service_->admission().inflight() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const Status drained = server_->Shutdown(/*drain_deadline_ms=*/5000);
  EXPECT_TRUE(drained.ok()) << drained.ToString();
  for (std::thread& t : clients) t.join();
  // The drain contract: zero dropped requests — every accepted connection
  // gets a complete HTTP response. Requests admitted before the drain
  // finish with their full answer; ones that arrive after admission
  // stopped get a well-formed retryable 503, never a torn connection.
  int answered = 0;
  for (int i = 0; i < kClients; ++i) {
    ASSERT_NE(responses[i].find("HTTP/1.1 "), std::string::npos)
        << "client " << i << " was dropped: '" << responses[i] << "'";
    if (responses[i].find("HTTP/1.1 200") != std::string::npos) {
      EXPECT_NE(responses[i].find("\"ok\":true"), std::string::npos);
      ++answered;
    } else {
      EXPECT_NE(responses[i].find("HTTP/1.1 503"), std::string::npos)
          << responses[i];
      EXPECT_NE(responses[i].find("\"retryable\":true"), std::string::npos);
    }
  }
  // The request that was in flight when the drain began completed.
  EXPECT_GE(answered, 1);
  // And nothing new is served after the drain.
  EXPECT_EQ(Get(server_->port(), "/healthz"), "");
  server_.reset();
}

TEST_F(ServerFixture, DrainDeadlineCancelsStragglersWithAnError) {
  Serve();
  fault::ScopedFailpoint slow("core/engine/exact", "delay(1500)");
  ASSERT_TRUE(slow.status().ok()) << slow.status().ToString();
  std::string response;
  std::thread client([this, &response] {
    response = PostQuery(
        server_->port(),
        R"({"query":"SELECT COUNT(*) FROM T2","answer":"expected"})");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // 100ms drain deadline against a 1500ms request: the drain must report
  // the overrun rather than pretend it was clean.
  const Status drained = server_->Shutdown(/*drain_deadline_ms=*/100);
  EXPECT_FALSE(drained.ok());
  EXPECT_EQ(drained.code(), StatusCode::kDeadlineExceeded);
  client.join();
  // The straggler still got a complete, well-formed HTTP response.
  EXPECT_NE(response.find("HTTP/1.1"), std::string::npos);
  server_.reset();
}

TEST(DrainSignalTest, SigtermSetsTheFlagWithoutKillingTheProcess) {
  InstallDrainHandlers();
  ResetDrainFlag();
  EXPECT_FALSE(DrainRequested());
  ASSERT_EQ(raise(SIGTERM), 0);
  EXPECT_TRUE(DrainRequested());
  ResetDrainFlag();
  // Programmatic drain (what the chaos harness uses) flips the same flag.
  RequestDrain();
  EXPECT_TRUE(DrainRequested());
  ResetDrainFlag();
}

TEST(ServerStartupTest, BadBindAddressFailsCleanly) {
  QueryServiceOptions options;
  QueryService service(*PaperInstanceDS2(), *MakeEbayPMapping(), options);
  HttpServerOptions bad;
  bad.bind_address = "not-an-address";
  HttpServer server(&service, bad);
  const Status started = server.Start();
  ASSERT_FALSE(started.ok());
  EXPECT_EQ(started.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace aqua::server
