#include "cli_support.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace aqua::cli {
namespace {

std::vector<std::string> RequiredArgs() {
  return {"--data",  "d.csv", "--schema", "a:int64",
          "--query", "SELECT COUNT(*) FROM t", "--mapping", "m.txt"};
}

TEST(ParseCliArgsTest, RequiredFlagsParse) {
  const auto o = ParseCliArgs(RequiredArgs());
  ASSERT_TRUE(o.ok()) << o.status().ToString();
  EXPECT_EQ(o->data_path, "d.csv");
  EXPECT_EQ(o->schema_spec, "a:int64");
  EXPECT_EQ(o->mapping_path, "m.txt");
  EXPECT_EQ(o->query, "SELECT COUNT(*) FROM t");
  EXPECT_EQ(o->mapping_semantics, MappingSemantics::kByTuple);
  EXPECT_EQ(o->aggregate_semantics, AggregateSemantics::kRange);
  EXPECT_FALSE(o->stats);
  EXPECT_FALSE(o->stats_json);
  EXPECT_TRUE(o->trace_path.empty());
  EXPECT_EQ(o->metrics, MetricsFormat::kOff);
}

TEST(ParseCliArgsTest, MissingRequiredFlagFails) {
  EXPECT_FALSE(ParseCliArgs({"--data", "d.csv"}).ok());
}

TEST(ParseCliArgsTest, EveryValueFlagAcceptsEqualsForm) {
  const auto o = ParseCliArgs(
      {"--data=d.csv", "--schema=a:int64", "--mapping=m.txt",
       "--query=SELECT COUNT(*) FROM t", "--semantics=by-table",
       "--answer=expected", "--histogram=12", "--trace=t.json",
       "--metrics=json", "--timeout-ms=250", "--max-sequences=1024",
       "--degrade=sample"});
  ASSERT_TRUE(o.ok()) << o.status().ToString();
  EXPECT_EQ(o->data_path, "d.csv");
  EXPECT_EQ(o->mapping_semantics, MappingSemantics::kByTable);
  EXPECT_EQ(o->aggregate_semantics, AggregateSemantics::kExpectedValue);
  EXPECT_EQ(o->histogram_bins, 12u);
  EXPECT_EQ(o->trace_path, "t.json");
  EXPECT_EQ(o->metrics, MetricsFormat::kJson);
  EXPECT_EQ(o->engine.limits.timeout_ms, 250);
  EXPECT_EQ(o->engine.naive.max_sequences, 1024u);
  EXPECT_EQ(o->engine.degrade, DegradePolicy::kSample);
}

TEST(ParseCliArgsTest, SpaceAndEqualsFormsAgree) {
  auto space = RequiredArgs();
  space.insert(space.end(), {"--semantics", "by-table", "--answer",
                             "distribution", "--degrade", "off"});
  auto equals = RequiredArgs();
  equals.insert(equals.end(),
                {"--semantics=by-table", "--answer=distribution",
                 "--degrade=off"});
  const auto a = ParseCliArgs(space);
  const auto b = ParseCliArgs(equals);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->mapping_semantics, b->mapping_semantics);
  EXPECT_EQ(a->aggregate_semantics, b->aggregate_semantics);
  EXPECT_EQ(a->engine.degrade, b->engine.degrade);
}

TEST(ParseCliArgsTest, EqualsValueMayContainEquals) {
  auto args = RequiredArgs();
  // Only the first '=' splits flag from value.
  args.push_back("--query=SELECT COUNT(*) FROM t WHERE a = 1");
  const auto o = ParseCliArgs(args);
  ASSERT_TRUE(o.ok());
  EXPECT_EQ(o->query, "SELECT COUNT(*) FROM t WHERE a = 1");
}

TEST(ParseCliArgsTest, BooleanFlagsRejectValues) {
  for (const char* bad : {"--explain=yes", "--stats=1", "--stats-json=true"}) {
    auto args = RequiredArgs();
    args.push_back(bad);
    EXPECT_FALSE(ParseCliArgs(args).ok()) << bad;
  }
  auto args = RequiredArgs();
  args.insert(args.end(), {"--explain", "--stats", "--stats-json"});
  const auto o = ParseCliArgs(args);
  ASSERT_TRUE(o.ok());
  EXPECT_TRUE(o->explain);
  EXPECT_TRUE(o->stats);
  EXPECT_TRUE(o->stats_json);
}

TEST(ParseCliArgsTest, UnknownFlagAndBadValuesFail) {
  auto unknown = RequiredArgs();
  unknown.push_back("--frobnicate");
  EXPECT_FALSE(ParseCliArgs(unknown).ok());
  for (const char* bad :
       {"--semantics=sideways", "--answer=maybe", "--metrics=xml",
        "--degrade=never", "--histogram=three", "--timeout-ms=-5",
        "--max-sequences=-1"}) {
    auto args = RequiredArgs();
    args.push_back(bad);
    EXPECT_FALSE(ParseCliArgs(args).ok()) << bad;
  }
}

TEST(ParseCliArgsTest, DanglingValueFlagFails) {
  auto args = RequiredArgs();
  args.push_back("--trace");
  EXPECT_FALSE(ParseCliArgs(args).ok());
}

TEST(ParseCliArgsTest, ThreadsFlag) {
  // Default: 0 = hardware concurrency.
  const auto defaulted = ParseCliArgs(RequiredArgs());
  ASSERT_TRUE(defaulted.ok());
  EXPECT_EQ(defaulted->engine.threads, 0);

  auto args = RequiredArgs();
  args.insert(args.end(), {"--threads", "4"});
  const auto o = ParseCliArgs(args);
  ASSERT_TRUE(o.ok()) << o.status().ToString();
  EXPECT_EQ(o->engine.threads, 4);

  auto equals = RequiredArgs();
  equals.push_back("--threads=1");
  const auto e = ParseCliArgs(equals);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->engine.threads, 1);

  for (const char* bad : {"--threads=-1", "--threads=two"}) {
    auto bad_args = RequiredArgs();
    bad_args.push_back(bad);
    EXPECT_FALSE(ParseCliArgs(bad_args).ok()) << bad;
  }
}

TEST(ParseCliArgsTest, ShardsFlag) {
  // Default: 1 = sharding off.
  const auto defaulted = ParseCliArgs(RequiredArgs());
  ASSERT_TRUE(defaulted.ok());
  EXPECT_EQ(defaulted->engine.shards, 1);

  auto args = RequiredArgs();
  args.insert(args.end(), {"--shards", "4"});
  const auto o = ParseCliArgs(args);
  ASSERT_TRUE(o.ok()) << o.status().ToString();
  EXPECT_EQ(o->engine.shards, 4);

  auto equals = RequiredArgs();
  equals.push_back("--shards=8");
  const auto e = ParseCliArgs(equals);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->engine.shards, 8);

  // Unlike --threads, 0 is not a valid shard count: there is no
  // "hardware shards" default to fall back to.
  for (const char* bad : {"--shards=0", "--shards=-2", "--shards=many"}) {
    auto bad_args = RequiredArgs();
    bad_args.push_back(bad);
    EXPECT_FALSE(ParseCliArgs(bad_args).ok()) << bad;
  }
}

TEST(ParseSchemaSpecTest, ParsesTypesAndAliases) {
  const auto schema =
      ParseSchemaSpec("id:int64, price:double, name:string, d:date");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_attributes(), 4u);
  EXPECT_FALSE(ParseSchemaSpec("id-without-type").ok());
  EXPECT_FALSE(ParseSchemaSpec("id:quaternion").ok());
}

TEST(AnswerToJsonTest, RangeAnswerShape) {
  AggregateAnswer answer;
  answer.semantics = AggregateSemantics::kRange;
  answer.range = Interval{1.5, 4.0};
  answer.stats.algorithm = "ByTupleRangeCOUNT";
  const std::string json = AnswerToJson(answer);
  EXPECT_NE(json.find("\"semantics\":\"range\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"range\":{\"low\":1.5,\"high\":4}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"approximate\":false"), std::string::npos);
  EXPECT_NE(json.find("\"stats\":{\"algorithm\":\"ByTupleRangeCOUNT\""),
            std::string::npos)
      << json;
}

TEST(AnswerToJsonTest, ExpectedValueAnswerShape) {
  AggregateAnswer answer;
  answer.semantics = AggregateSemantics::kExpectedValue;
  answer.expected_value = 2.25;
  answer.approximate = true;
  answer.note = "sampled";
  const std::string json = AnswerToJson(answer);
  EXPECT_NE(json.find("\"expected\":2.25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"approximate\":true"), std::string::npos);
  EXPECT_NE(json.find("\"note\":\"sampled\""), std::string::npos);
}

TEST(AnswerToJsonTest, DistributionAnswerShape) {
  AggregateAnswer answer;
  answer.semantics = AggregateSemantics::kDistribution;
  answer.distribution = *Distribution::FromEntries({{1.0, 0.25}, {2.0, 0.75}});
  const std::string json = AnswerToJson(answer);
  EXPECT_NE(json.find("\"distribution\":[[1,0.25],[2,0.75]]"),
            std::string::npos)
      << json;
}

TEST(ParseCliArgsTest, HelpWaivesRequiredFlags) {
  const auto o = ParseCliArgs({"--help"});
  ASSERT_TRUE(o.ok()) << o.status().ToString();
  EXPECT_TRUE(o->help);
  const auto short_form = ParseCliArgs({"-h"});
  ASSERT_TRUE(short_form.ok());
  EXPECT_TRUE(short_form->help);
}

TEST(ParseCliArgsTest, FailpointFlagIsRepeatable) {
  auto args = RequiredArgs();
  args.push_back("--failpoint=storage/csv/read-file:once*error(unavailable)");
  args.push_back("--failpoint");
  args.push_back("core/engine/exact:delay(5)");
  const auto o = ParseCliArgs(args);
  ASSERT_TRUE(o.ok()) << o.status().ToString();
  ASSERT_EQ(o->failpoints.size(), 2u);
  EXPECT_EQ(o->failpoints[0],
            "storage/csv/read-file:once*error(unavailable)");
  EXPECT_EQ(o->failpoints[1], "core/engine/exact:delay(5)");
}

TEST(ParseCliArgsTest, FailpointWithoutColonFails) {
  auto args = RequiredArgs();
  args.push_back("--failpoint=not-a-site-spec");
  EXPECT_FALSE(ParseCliArgs(args).ok());
}

TEST(ParseCliArgsTest, SamplerSeedFlag) {
  auto args = RequiredArgs();
  args.push_back("--sampler-seed=12345");
  const auto o = ParseCliArgs(args);
  ASSERT_TRUE(o.ok()) << o.status().ToString();
  EXPECT_EQ(o->engine.degrade_sampler.seed, 12345u);

  auto bad = RequiredArgs();
  bad.push_back("--sampler-seed=oops");
  EXPECT_FALSE(ParseCliArgs(bad).ok());
}

}  // namespace
}  // namespace aqua::cli
