// Lint self-test fixture: todo-issue. Never compiled.

namespace fixture {

// TODO: make this faster -> finding (no issue tag)
int Untracked() { return 1; }

// TODO(#42): tracked debt is fine
int Tracked() { return 2; }

const char* InString() {
  return "TODO in a string literal is a message, not debt";  // clean
}

}  // namespace fixture
