// Lint self-test fixture: raw-thread. Never compiled.
#include <thread>

namespace fixture {

void SpawnsRaw() {
  std::thread worker([] {});  // finding: bypasses aqua::exec
  worker.join();
}

std::thread::id Current() {        // clean: std::thread:: is not a spawn
  return std::this_thread::get_id();
}

void Waived() {
  std::thread t([] {});  // aqua-lint: allow(raw-thread) — fixture escape.
  t.join();
}

}  // namespace fixture
