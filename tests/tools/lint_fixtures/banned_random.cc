// Lint self-test fixture: banned-random. Never compiled.
#include <cstdlib>
#include <ctime>

namespace fixture {

int NonDeterministic() {
  std::srand(static_cast<unsigned>(time(nullptr)));  // two findings
  return std::rand();                                // one finding
}

int Mentioned() {
  // A comment naming std::rand is fine; only code trips the rule.
  const char* doc = "never call std::rand";
  return doc[0];
}

}  // namespace fixture
