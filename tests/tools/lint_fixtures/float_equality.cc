// Lint self-test fixture: float-equality. Never compiled; linted under a
// synthetic src/aqua/core/ path where the rule applies.

namespace fixture {

bool Exact(double x) {
  return x == 0.0;  // finding: tolerance bug in numeric code
}

bool Tolerant(double x) {
  return x < 1e-9 && x > -1e-9;  // clean
}

bool Ordered(double x) { return x >= 1.0; }  // clean: not an equality

bool Waived(double x) {
  // aqua-lint: allow(float-equality) — exactness intended in the fixture.
  return x != 1.0;
}

}  // namespace fixture
