// Fixture for the naked-failpoint rule and its site extractor. Never
// compiled. Exercises: plain macro sites, the _STATUS form, a site that
// only appears in a comment (not a call), the allow-comment escape, and a
// macro invocation without a string literal.

#include "aqua/common/failpoint.h"

aqua::Status Covered() {
  AQUA_FAILPOINT("fixture/covered-site");
  return aqua::Status::OK();
}

aqua::Status Uncovered() {
  AQUA_FAILPOINT("fixture/uncovered-site");
  return aqua::Status::OK();
}

void StatusForm() {
  (void)AQUA_FAILPOINT_STATUS("fixture/status-site");
}

// Doc text mentioning AQUA_FAILPOINT("fixture/comment-site") is not a call.

aqua::Status Waived() {
  // aqua-lint: allow(naked-failpoint)
  AQUA_FAILPOINT("fixture/waived-site");
  return aqua::Status::OK();
}

aqua::Status NotALiteral(const char* site) {
  AQUA_FAILPOINT(site);  // no string literal: not a site declaration
  return aqua::Status::OK();
}
