// Lint self-test fixture: unchecked-result-value. This file is never
// compiled; it is fed to LintFile under a synthetic src/ path.
#include "aqua/common/result.h"

namespace fixture {

int Bad(aqua::Result<int> r) {
  return r.value();  // no visible guard -> finding
}

int Guarded(aqua::Result<int> r) {
  if (!r.ok()) return -1;
  return r.value();  // guard within the lookback window -> clean
}

int Waived(aqua::Result<int> r) {
  // aqua-lint: allow(unchecked-result-value) — caller pre-validated.
  return r.value();
}

}  // namespace fixture
