// Self-tests for aqua_lint: each rule is exercised against a fixture file
// under tests/tools/lint_fixtures/ (deliberate violations, never compiled)
// fed to LintFile under a synthetic path inside the rule's scope, plus the
// allow-comment escape, path scoping, and the cross-file test-reference
// rule.

#include "lint_support.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace aqua::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(AQUA_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Finding> ForRule(const std::vector<Finding>& findings,
                             std::string_view rule) {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

TEST(AquaLintRulesTest, TableDocumentsAtLeastFiveRules) {
  const std::vector<Rule>& rules = Rules();
  EXPECT_GE(rules.size(), 5u);
  for (const Rule& r : rules) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_FALSE(r.scope.empty());
    EXPECT_FALSE(r.description.empty());
  }
}

TEST(AquaLintTest, UncheckedResultValue) {
  const auto findings = ForRule(
      LintFile("src/aqua/fake/unchecked_value.cc",
               ReadFixture("unchecked_value.cc")),
      "unchecked-result-value");
  // Only Bad() fires: Guarded() has an ok() guard in the window and
  // Waived() carries the allow comment.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 8u);
}

TEST(AquaLintTest, UncheckedResultValueIgnoredInTests) {
  const auto findings =
      LintFile("tests/fake/unchecked_value.cc",
               ReadFixture("unchecked_value.cc"));
  EXPECT_TRUE(ForRule(findings, "unchecked-result-value").empty())
      << "rule must not apply under tests/";
}

TEST(AquaLintTest, BannedRandom) {
  const auto findings = ForRule(
      LintFile("src/aqua/fake/banned_random.cc",
               ReadFixture("banned_random.cc")),
      "banned-random");
  // srand + time(nullptr) on one line, std::rand on the next; the
  // mention inside a string literal is clean.
  EXPECT_GE(findings.size(), 2u);
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.line == 8u || f.line == 9u) << f.ToString();
  }
}

TEST(AquaLintTest, RawThread) {
  const auto findings = ForRule(
      LintFile("src/aqua/fake/raw_thread.cc", ReadFixture("raw_thread.cc")),
      "raw-thread");
  // SpawnsRaw() fires; std::thread::id and the waived spawn do not.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 7u);
}

TEST(AquaLintTest, RawThreadAllowedInExecRuntime) {
  const auto findings =
      LintFile("src/aqua/exec/thread_pool.cc", ReadFixture("raw_thread.cc"));
  EXPECT_TRUE(ForRule(findings, "raw-thread").empty())
      << "the exec runtime is where raw threads live";
}

TEST(AquaLintTest, FloatEquality) {
  const auto findings = ForRule(
      LintFile("src/aqua/core/float_equality.cc",
               ReadFixture("float_equality.cc")),
      "float-equality");
  // Exact() fires; tolerance, ordering, and the waived site are clean.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 7u);
}

TEST(AquaLintTest, FloatEqualityScopedToNumericCode) {
  const auto findings = LintFile("src/aqua/storage/float_equality.cc",
                                 ReadFixture("float_equality.cc"));
  EXPECT_TRUE(ForRule(findings, "float-equality").empty())
      << "rule applies only under src/aqua/core/ and src/aqua/prob/";
}

TEST(AquaLintTest, TodoIssue) {
  const auto findings = ForRule(
      LintFile("src/aqua/fake/todo_issue.cc", ReadFixture("todo_issue.cc")),
      "todo-issue");
  // The untracked marker fires; TODO(#42) and the string literal are
  // clean.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 5u);
}

TEST(AquaLintTest, FixturePathsAreNeverLinted) {
  const auto findings = LintFile("tests/tools/lint_fixtures/todo_issue.cc",
                                 ReadFixture("todo_issue.cc"));
  EXPECT_TRUE(findings.empty());
}

TEST(AquaLintTest, AllowCommentOnlySilencesItsOwnRule) {
  const std::string content =
      "// aqua-lint: allow(float-equality)\n"
      "int x = std::rand();\n";
  const auto findings = LintFile("src/aqua/core/fake.cc", content);
  EXPECT_EQ(ForRule(findings, "banned-random").size(), 1u)
      << "an allow comment for one rule must not waive another";
}

TEST(AquaLintTest, FindingToStringHasFileLineAndRule) {
  const auto findings =
      LintFile("src/aqua/fake/todo_issue.cc", ReadFixture("todo_issue.cc"));
  ASSERT_FALSE(findings.empty());
  const std::string s = findings[0].ToString();
  EXPECT_NE(s.find("todo_issue.cc:5"), std::string::npos) << s;
  EXPECT_NE(s.find("[todo-issue]"), std::string::npos) << s;
}

TEST(AquaLintCoverageTest, FlagsSourceWithNoTestReference) {
  const std::vector<std::string> srcs = {"src/aqua/core/engine.cc",
                                         "src/aqua/query/ast.cc"};
  const std::vector<std::string> tests = {
      "#include \"aqua/core/engine.h\"\n"};
  const auto findings = LintTestCoverage(srcs, tests);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "test-reference");
  EXPECT_EQ(findings[0].file, "src/aqua/query/ast.cc");
  EXPECT_EQ(findings[0].line, 0u) << "whole-file finding";
}

TEST(AquaLintCoverageTest, CleanWhenEveryHeaderIsReferenced) {
  const std::vector<std::string> srcs = {"src/aqua/core/engine.cc"};
  const std::vector<std::string> tests = {
      "#include \"aqua/core/engine.h\"\n"};
  EXPECT_TRUE(LintTestCoverage(srcs, tests).empty());
}

TEST(AquaLintFailpointTest, ExtractsMacroSitesWithLines) {
  const auto sites = ExtractFailpointSites("src/aqua/fake/naked_failpoint.cc",
                                           ReadFixture("naked_failpoint.cc"));
  // covered-site, uncovered-site, and the _STATUS form are call sites; the
  // comment mention, the waived site, and the non-literal call are not.
  ASSERT_EQ(sites.size(), 3u);
  EXPECT_EQ(sites[0].site, "fixture/covered-site");
  EXPECT_EQ(sites[0].line, 9u);
  EXPECT_EQ(sites[1].site, "fixture/uncovered-site");
  EXPECT_EQ(sites[2].site, "fixture/status-site");
}

TEST(AquaLintFailpointTest, ExtractionScopedToSource) {
  const std::string content = ReadFixture("naked_failpoint.cc");
  EXPECT_TRUE(
      ExtractFailpointSites("tests/fake/naked_failpoint.cc", content).empty());
  EXPECT_TRUE(
      ExtractFailpointSites("src/aqua/fake/naked_failpoint_test.cc", content)
          .empty());
}

TEST(AquaLintFailpointTest, FlagsSiteMissingFromTests) {
  const auto sites = ExtractFailpointSites("src/aqua/fake/naked_failpoint.cc",
                                           ReadFixture("naked_failpoint.cc"));
  const std::vector<std::string> tests = {
      "chaos inventory: \"fixture/covered-site\" \"fixture/status-site\"\n"};
  const auto findings = LintFailpointInventory(sites, tests);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "naked-failpoint");
  EXPECT_NE(findings[0].message.find("fixture/uncovered-site"),
            std::string::npos);
  EXPECT_EQ(findings[0].line, 14u) << "points at the call site";
}

TEST(AquaLintFailpointTest, CleanWhenEverySiteAppearsInTests) {
  const auto sites = ExtractFailpointSites("src/aqua/fake/naked_failpoint.cc",
                                           ReadFixture("naked_failpoint.cc"));
  const std::vector<std::string> tests = {
      "\"fixture/covered-site\" \"fixture/uncovered-site\" "
      "\"fixture/status-site\"\n"};
  EXPECT_TRUE(LintFailpointInventory(sites, tests).empty());
}

}  // namespace
}  // namespace aqua::lint
