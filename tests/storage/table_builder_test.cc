#include "aqua/storage/table_builder.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

Schema TestSchema() {
  return *Schema::Make({{"id", ValueType::kInt64},
                        {"price", ValueType::kDouble},
                        {"posted", ValueType::kDate}});
}

TEST(TableBuilderTest, BuildsRows) {
  TableBuilder b(TestSchema());
  ASSERT_TRUE(b.AppendRow({Value::Int64(1), Value::Double(100e3),
                           Value::FromDate(*Date::FromYmd(2008, 1, 5))})
                  .ok());
  ASSERT_TRUE(b.AppendRow({Value::Int64(2), Value::Double(150e3),
                           Value::FromDate(*Date::FromYmd(2008, 1, 30))})
                  .ok());
  EXPECT_EQ(b.num_rows(), 2u);
  const Table t = *std::move(b).Finish();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.GetValue(1, 0), Value::Int64(2));
  EXPECT_EQ(t.GetValue(0, 2).date(), *Date::FromYmd(2008, 1, 5));
}

TEST(TableBuilderTest, AcceptsNulls) {
  TableBuilder b(TestSchema());
  ASSERT_TRUE(
      b.AppendRow({Value::Int64(1), Value::Null(), Value::Null()}).ok());
  const Table t = *std::move(b).Finish();
  EXPECT_TRUE(t.GetValue(0, 1).is_null());
}

TEST(TableBuilderTest, RejectsWrongArity) {
  TableBuilder b(TestSchema());
  EXPECT_FALSE(b.AppendRow({Value::Int64(1)}).ok());
  EXPECT_EQ(b.num_rows(), 0u);
}

TEST(TableBuilderTest, RejectsWrongTypeWithoutPartialAppend) {
  TableBuilder b(TestSchema());
  // Type error in the *last* position must not leave earlier columns
  // longer than the others.
  EXPECT_FALSE(b.AppendRow({Value::Int64(1), Value::Double(1.0),
                            Value::String("not a date")})
                   .ok());
  EXPECT_EQ(b.num_rows(), 0u);
  ASSERT_TRUE(b.AppendRow({Value::Int64(1), Value::Double(1.0),
                           Value::FromDate(Date(0))})
                  .ok());
  const Table t = *std::move(b).Finish();
  EXPECT_EQ(t.num_rows(), 1u);  // would fail on ragged columns otherwise
}

TEST(TableBuilderTest, EmptyBuilderFinishes) {
  TableBuilder b(TestSchema());
  const Table t = *std::move(b).Finish();
  EXPECT_EQ(t.num_rows(), 0u);
}

}  // namespace
}  // namespace aqua
