#include "aqua/storage/schema.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

Schema MakeS2() {
  return *Schema::Make({{"transactionID", ValueType::kInt64},
                        {"auction", ValueType::kInt64},
                        {"time", ValueType::kDouble},
                        {"bid", ValueType::kDouble},
                        {"currentPrice", ValueType::kDouble}});
}

TEST(SchemaTest, BasicAccess) {
  const Schema s = MakeS2();
  EXPECT_EQ(s.num_attributes(), 5u);
  EXPECT_EQ(s.attribute(0).name, "transactionID");
  EXPECT_EQ(s.attribute(2).type, ValueType::kDouble);
}

TEST(SchemaTest, IndexOfIsCaseInsensitive) {
  const Schema s = MakeS2();
  EXPECT_EQ(*s.IndexOf("currentPrice"), 4u);
  EXPECT_EQ(*s.IndexOf("CURRENTPRICE"), 4u);
  EXPECT_EQ(*s.IndexOf("currentprice"), 4u);
}

TEST(SchemaTest, IndexOfMissingIsNotFound) {
  const Schema s = MakeS2();
  const auto r = s.IndexOf("comments");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, Contains) {
  const Schema s = MakeS2();
  EXPECT_TRUE(s.Contains("bid"));
  EXPECT_TRUE(s.Contains("BID"));
  EXPECT_FALSE(s.Contains("price"));
}

TEST(SchemaTest, RejectsDuplicateNames) {
  EXPECT_FALSE(Schema::Make({{"a", ValueType::kInt64},
                             {"A", ValueType::kDouble}})
                   .ok());
}

TEST(SchemaTest, RejectsEmptyName) {
  EXPECT_FALSE(Schema::Make({{"", ValueType::kInt64}}).ok());
}

TEST(SchemaTest, RejectsNullType) {
  EXPECT_FALSE(Schema::Make({{"a", ValueType::kNull}}).ok());
}

TEST(SchemaTest, EmptySchemaIsValid) {
  EXPECT_TRUE(Schema::Make({}).ok());
}

TEST(SchemaTest, ToString) {
  const Schema s =
      *Schema::Make({{"id", ValueType::kInt64}, {"v", ValueType::kDouble}});
  EXPECT_EQ(s.ToString(), "(id int64, v double)");
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(MakeS2(), MakeS2());
  const Schema other =
      *Schema::Make({{"id", ValueType::kInt64}});
  EXPECT_FALSE(MakeS2() == other);
}

}  // namespace
}  // namespace aqua
