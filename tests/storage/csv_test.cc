#include "aqua/storage/csv.h"

#include <gtest/gtest.h>

#include "aqua/storage/table_builder.h"

namespace aqua {
namespace {

Schema TestSchema() {
  return *Schema::Make({{"id", ValueType::kInt64},
                        {"price", ValueType::kDouble},
                        {"phone", ValueType::kString},
                        {"posted", ValueType::kDate}});
}

TEST(CsvTest, ParsesTypedColumns) {
  const std::string text =
      "id,price,phone,posted\n"
      "1,100000.5,215,2008-01-05\n"
      "2,150000,342,1/30/2008\n";
  const auto t = Csv::Parse(text, TestSchema());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 0), Value::Int64(1));
  EXPECT_DOUBLE_EQ(t->GetValue(0, 1).dbl(), 100000.5);
  EXPECT_EQ(t->GetValue(1, 3).date(), *Date::FromYmd(2008, 1, 30));
}

TEST(CsvTest, HeaderMayBeReordered) {
  const std::string text =
      "posted,id,phone,price\n"
      "2008-01-05,1,215,99\n";
  const auto t = Csv::Parse(text, TestSchema());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->GetValue(0, 0), Value::Int64(1));
  EXPECT_DOUBLE_EQ(t->GetValue(0, 1).dbl(), 99.0);
}

TEST(CsvTest, EmptyUnquotedFieldIsNull) {
  const std::string text =
      "id,price,phone,posted\n"
      "1,,215,2008-01-05\n";
  const auto t = Csv::Parse(text, TestSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->GetValue(0, 1).is_null());
}

TEST(CsvTest, QuotedEmptyStringIsNotNull) {
  const std::string text =
      "id,price,phone,posted\n"
      "1,2,\"\",2008-01-05\n";
  const auto t = Csv::Parse(text, TestSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->GetValue(0, 2), Value::String(""));
}

TEST(CsvTest, QuotedFieldWithSeparatorAndEscapedQuote) {
  const std::string text =
      "id,price,phone,posted\n"
      "1,2,\"a,\"\"b\"\"\",2008-01-05\n";
  const auto t = Csv::Parse(text, TestSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->GetValue(0, 2), Value::String("a,\"b\""));
}

TEST(CsvTest, RejectsMissingColumn) {
  EXPECT_FALSE(Csv::Parse("id,price,phone\n1,2,3\n", TestSchema()).ok());
}

TEST(CsvTest, RejectsUnknownColumn) {
  EXPECT_FALSE(
      Csv::Parse("id,price,phone,posted,extra\n1,2,3,2008-01-05,4\n",
                 TestSchema())
          .ok());
}

TEST(CsvTest, RejectsDuplicateColumn) {
  EXPECT_FALSE(
      Csv::Parse("id,id,price,phone,posted\n", TestSchema()).ok());
}

TEST(CsvTest, RejectsBadFieldTypes) {
  EXPECT_FALSE(
      Csv::Parse("id,price,phone,posted\nxx,2,3,2008-01-05\n", TestSchema())
          .ok());
  EXPECT_FALSE(
      Csv::Parse("id,price,phone,posted\n1,zz,3,2008-01-05\n", TestSchema())
          .ok());
  EXPECT_FALSE(
      Csv::Parse("id,price,phone,posted\n1,2,3,not-a-date\n", TestSchema())
          .ok());
}

TEST(CsvTest, RejectsRaggedRecord) {
  EXPECT_FALSE(
      Csv::Parse("id,price,phone,posted\n1,2,3\n", TestSchema()).ok());
}

TEST(CsvTest, RaggedRecordErrorNamesLineAndCounts) {
  const auto t = Csv::Parse(
      "id,price,phone,posted\n1,2,3,2008-01-05\n1,2,3\n", TestSchema());
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find("line 3"), std::string::npos)
      << t.status().message();
  EXPECT_NE(t.status().message().find("has 3 fields, expected 4"),
            std::string::npos)
      << t.status().message();
}

TEST(CsvTest, UnterminatedQuoteErrorNamesLine) {
  const auto t = Csv::Parse(
      "id,price,phone,posted\n1,2,\"unclosed,2008-01-05\n", TestSchema());
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find("line 2"), std::string::npos)
      << t.status().message();
  EXPECT_NE(t.status().message().find("unterminated quoted field"),
            std::string::npos)
      << t.status().message();
}

TEST(CsvTest, UnterminatedQuoteInHeaderIsRejected) {
  const auto t = Csv::Parse("id,price,phone,\"posted\n", TestSchema());
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("header"), std::string::npos)
      << t.status().message();
}

TEST(CsvTest, BadCellErrorNamesLineAndColumn) {
  const auto bad_int = Csv::Parse(
      "id,price,phone,posted\n1,2,3,2008-01-05\nxx,2,3,2008-01-05\n",
      TestSchema());
  ASSERT_FALSE(bad_int.ok());
  EXPECT_EQ(bad_int.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_int.status().message().find("line 3, column 'id'"),
            std::string::npos)
      << bad_int.status().message();
  EXPECT_NE(bad_int.status().message().find("bad int64 field 'xx'"),
            std::string::npos)
      << bad_int.status().message();

  const auto bad_double = Csv::Parse(
      "id,price,phone,posted\n1,1.2.3,3,2008-01-05\n", TestSchema());
  ASSERT_FALSE(bad_double.ok());
  EXPECT_NE(bad_double.status().message().find("line 2, column 'price'"),
            std::string::npos)
      << bad_double.status().message();
}

TEST(CsvTest, ControlBytesAreOrdinaryStringData) {
  // Byte 0x01 was once the parser's internal "this field was quoted"
  // sentinel; data containing it must survive unmangled.
  const Schema schema = *Schema::Make({{"s", ValueType::kString}});
  const auto t = Csv::Parse(std::string("s\n") + '\x01' + "abc\n", schema);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->GetValue(0, 0).str(), std::string("\x01") + "abc");
}

TEST(CsvTest, HandlesCrlfLineEndings) {
  const std::string text =
      "id,price,phone,posted\r\n1,2,3,2008-01-05\r\n2,4,5,2008-02-01\r\n";
  const auto t = Csv::Parse(text, TestSchema());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(1, 0), Value::Int64(2));
}

TEST(CsvTest, SkipsInteriorBlankLines) {
  const std::string text =
      "id,price,phone,posted\n1,2,3,2008-01-05\n\n2,4,5,2008-02-01\n";
  const auto t = Csv::Parse(text, TestSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST(CsvTest, RoundTrip) {
  TableBuilder b(TestSchema());
  ASSERT_TRUE(b.AppendRow({Value::Int64(1), Value::Double(100000.5),
                           Value::String("a,\"b\""),
                           Value::FromDate(*Date::FromYmd(2008, 1, 5))})
                  .ok());
  ASSERT_TRUE(b.AppendRow({Value::Int64(2), Value::Null(), Value::String(""),
                           Value::Null()})
                  .ok());
  const Table original = *std::move(b).Finish();
  const std::string text = Csv::Format(original);
  const auto parsed = Csv::Parse(text, TestSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), original.num_rows());
  for (size_t r = 0; r < original.num_rows(); ++r) {
    for (size_t c = 0; c < original.num_columns(); ++c) {
      EXPECT_EQ(parsed->GetValue(r, c), original.GetValue(r, c))
          << "cell (" << r << ", " << c << ")";
    }
  }
}

TEST(CsvTest, FileRoundTrip) {
  TableBuilder b(TestSchema());
  ASSERT_TRUE(b.AppendRow({Value::Int64(7), Value::Double(1.25),
                           Value::String("x"),
                           Value::FromDate(*Date::FromYmd(2024, 6, 1))})
                  .ok());
  const Table t = *std::move(b).Finish();
  const std::string path = ::testing::TempDir() + "/aqua_csv_test.csv";
  ASSERT_TRUE(Csv::WriteFile(t, path).ok());
  const auto back = Csv::ReadFile(path, TestSchema());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 1u);
  EXPECT_EQ(back->GetValue(0, 0), Value::Int64(7));
}

TEST(CsvTest, MissingFileIsNotFound) {
  const auto r = Csv::ReadFile("/nonexistent/file.csv", TestSchema());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, Utf8BomOnHeaderIsStripped) {
  // Files exported by spreadsheet tools often lead with a UTF-8 BOM;
  // without stripping it the first header column reads as "\xEF\xBB\xBFid"
  // and schema lookup fails.
  const std::string text =
      "\xEF\xBB\xBFid,price,phone,posted\n"
      "1,100.5,215,2008-01-05\n";
  const auto t = Csv::Parse(text, TestSchema());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->GetValue(0, 0), Value::Int64(1));
}

TEST(CsvTest, CrlfLineEndingsAreTolerated) {
  const std::string text =
      "id,price,phone,posted\r\n"
      "1,100.5,215,2008-01-05\r\n"
      "2,99,342,2008-01-06\r\n";
  const auto t = Csv::Parse(text, TestSchema());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(t->GetValue(1, 1).dbl(), 99.0);
}

TEST(CsvTest, BomAndCrlfTogether) {
  // The worst realistic Windows export: BOM plus CRLF on every line,
  // including a trailing CRLF after the last record.
  const std::string text =
      "\xEF\xBB\xBFid,price,phone,posted\r\n"
      "1,100.5,215,2008-01-05\r\n";
  const auto t = Csv::Parse(text, TestSchema());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->GetValue(0, 2), Value::String("215"));
}

TEST(CsvTest, BomlessTextStartingWithPartialBomBytesIsData) {
  // Only the full three-byte BOM is stripped; a header that genuinely
  // starts with 0xEF alone must surface as a (clear) schema error, not be
  // silently shortened.
  const std::string text = "\xEFid,price,phone,posted\n";
  const auto t = Csv::Parse(text, TestSchema());
  EXPECT_FALSE(t.ok());
}

}  // namespace
}  // namespace aqua
