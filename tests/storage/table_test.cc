#include "aqua/storage/table.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(ColumnTest, TypedAppendAndRead) {
  Column c(ValueType::kDouble);
  c.AppendDouble(1.5);
  c.AppendDouble(-2.0);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c.DoubleAt(0), 1.5);
  EXPECT_DOUBLE_EQ(c.DoubleAt(1), -2.0);
  EXPECT_FALSE(c.has_nulls());
}

TEST(ColumnTest, GenericAppendChecksType) {
  Column c(ValueType::kInt64);
  EXPECT_TRUE(c.Append(Value::Int64(3)).ok());
  EXPECT_FALSE(c.Append(Value::Double(3.0)).ok());
  EXPECT_FALSE(c.Append(Value::String("3")).ok());
  EXPECT_EQ(c.size(), 1u);
}

TEST(ColumnTest, NullHandling) {
  Column c(ValueType::kDouble);
  c.AppendDouble(1.0);
  c.AppendNull();
  c.AppendDouble(3.0);
  EXPECT_TRUE(c.has_nulls());
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_FALSE(c.IsNull(2));
  EXPECT_TRUE(c.GetValue(1).is_null());
  EXPECT_DOUBLE_EQ(c.GetValue(2).dbl(), 3.0);
}

TEST(ColumnTest, NullMaskBackfillsLazily) {
  Column c(ValueType::kInt64);
  c.AppendInt64(1);
  c.AppendInt64(2);
  // No nulls yet: mask should report all rows non-null.
  EXPECT_FALSE(c.IsNull(0));
  c.AppendNull();
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_FALSE(c.IsNull(1));
  EXPECT_TRUE(c.IsNull(2));
}

TEST(ColumnTest, NumericAtWidens) {
  Column i(ValueType::kInt64);
  i.AppendInt64(7);
  EXPECT_DOUBLE_EQ(i.NumericAt(0), 7.0);
  Column d(ValueType::kDate);
  d.AppendDate(Date(100));
  EXPECT_DOUBLE_EQ(d.NumericAt(0), 100.0);
}

TEST(ColumnTest, StringColumn) {
  Column c(ValueType::kString);
  c.AppendString("abc");
  EXPECT_EQ(c.StringAt(0), "abc");
  EXPECT_EQ(c.GetValue(0), Value::String("abc"));
}

TEST(TableTest, MakeValidatesArity) {
  const Schema s = *Schema::Make({{"a", ValueType::kInt64}});
  std::vector<Column> cols;
  EXPECT_FALSE(Table::Make(s, std::move(cols)).ok());
}

TEST(TableTest, MakeValidatesTypes) {
  const Schema s = *Schema::Make({{"a", ValueType::kInt64}});
  std::vector<Column> cols;
  cols.emplace_back(ValueType::kDouble);
  EXPECT_FALSE(Table::Make(s, std::move(cols)).ok());
}

TEST(TableTest, MakeValidatesRaggedColumns) {
  const Schema s = *Schema::Make(
      {{"a", ValueType::kInt64}, {"b", ValueType::kInt64}});
  std::vector<Column> cols;
  cols.emplace_back(ValueType::kInt64);
  cols.emplace_back(ValueType::kInt64);
  cols[0].AppendInt64(1);
  EXPECT_FALSE(Table::Make(s, std::move(cols)).ok());
}

TEST(TableTest, EmptyTable) {
  const Schema s = *Schema::Make({{"a", ValueType::kInt64}});
  const Table t = Table::Empty(s);
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_columns(), 1u);
  EXPECT_EQ(t.schema(), s);
}

TEST(TableTest, ColumnByName) {
  const Schema s = *Schema::Make(
      {{"a", ValueType::kInt64}, {"b", ValueType::kDouble}});
  std::vector<Column> cols;
  cols.emplace_back(ValueType::kInt64);
  cols.emplace_back(ValueType::kDouble);
  cols[0].AppendInt64(4);
  cols[1].AppendDouble(2.5);
  const Table t = *Table::Make(s, std::move(cols));
  EXPECT_DOUBLE_EQ((*t.ColumnByName("B"))->DoubleAt(0), 2.5);
  EXPECT_FALSE(t.ColumnByName("c").ok());
}

TEST(TableTest, GetValue) {
  const Schema s = *Schema::Make(
      {{"a", ValueType::kInt64}, {"b", ValueType::kDouble}});
  std::vector<Column> cols;
  cols.emplace_back(ValueType::kInt64);
  cols.emplace_back(ValueType::kDouble);
  cols[0].AppendInt64(4);
  cols[1].AppendDouble(2.5);
  const Table t = *Table::Make(s, std::move(cols));
  EXPECT_EQ(t.GetValue(0, 0), Value::Int64(4));
  EXPECT_EQ(t.GetValue(0, 1), Value::Double(2.5));
}

TEST(TableTest, ToStringTruncates) {
  const Schema s = *Schema::Make({{"a", ValueType::kInt64}});
  std::vector<Column> cols;
  cols.emplace_back(ValueType::kInt64);
  for (int i = 0; i < 30; ++i) cols[0].AppendInt64(i);
  const Table t = *Table::Make(s, std::move(cols));
  const std::string text = t.ToString(5);
  EXPECT_NE(text.find("more rows"), std::string::npos);
}

}  // namespace
}  // namespace aqua
