#include "aqua/workload/employees.h"

#include <gtest/gtest.h>

#include "aqua/core/engine.h"
#include "aqua/query/parser.h"

namespace aqua {
namespace {

TEST(EmployeesTest, TableShapeAndInvariants) {
  Rng rng(1);
  EmployeesOptions opts;
  opts.num_employees = 500;
  const auto t = GenerateEmployeesTable(opts, rng);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 500u);
  EXPECT_EQ(t->num_columns(), 7u);
  const Column& base = *(*t->ColumnByName("base_pay"));
  const Column& with_bonus = *(*t->ColumnByName("pay_with_bonus"));
  const Column& total = *(*t->ColumnByName("total_comp"));
  const Column& hired = *(*t->ColumnByName("hired"));
  const Column& role = *(*t->ColumnByName("role_start"));
  for (size_t r = 0; r < t->num_rows(); ++r) {
    EXPECT_GE(base.DoubleAt(r), opts.base_pay_lo);
    EXPECT_LE(with_bonus.DoubleAt(r),
              base.DoubleAt(r) * (1 + opts.max_bonus_frac) + 1e-6);
    EXPECT_GE(with_bonus.DoubleAt(r), base.DoubleAt(r));
    EXPECT_GE(total.DoubleAt(r), with_bonus.DoubleAt(r));
    EXPECT_GE(role.DateAt(r), hired.DateAt(r));
  }
}

TEST(EmployeesTest, PMappingStructure) {
  const auto pm = MakeEmployeesPMapping();
  ASSERT_TRUE(pm.ok()) << pm.status().ToString();
  EXPECT_EQ(pm->size(), 4u);
  EXPECT_TRUE(pm->IsCertainTarget("id"));
  EXPECT_TRUE(pm->IsCertainTarget("department"));
  EXPECT_FALSE(pm->IsCertainTarget("salary"));
  EXPECT_FALSE(pm->IsCertainTarget("startDate"));
  double total = 0;
  for (size_t i = 0; i < pm->size(); ++i) total += pm->probability(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(EmployeesTest, SalaryRangeOrderedByPayColumn) {
  Rng rng(2);
  EmployeesOptions opts;
  opts.num_employees = 2000;
  const Table t = *GenerateEmployeesTable(opts, rng);
  const PMapping pm = *MakeEmployeesPMapping();
  const Engine engine;
  const auto range = engine.AnswerSql(
      "SELECT SUM(salary) FROM employees", pm, t,
      MappingSemantics::kByTuple, AggregateSemantics::kRange);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  // The range lower bound is the base-pay total, upper is total-comp.
  double base_sum = 0, total_sum = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    base_sum += (*t.ColumnByName("base_pay"))->DoubleAt(r);
    total_sum += (*t.ColumnByName("total_comp"))->DoubleAt(r);
  }
  EXPECT_NEAR(range->range.low, base_sum, 1e-6);
  EXPECT_NEAR(range->range.high, total_sum, 1e-6);
}

TEST(EmployeesTest, GroupedByCertainDepartment) {
  Rng rng(3);
  EmployeesOptions opts;
  opts.num_employees = 1000;
  const Table t = *GenerateEmployeesTable(opts, rng);
  const PMapping pm = *MakeEmployeesPMapping();
  const Engine engine;
  const auto grouped = engine.AnswerGroupedSql(
      "SELECT AVG(salary) FROM employees GROUP BY department", pm, t,
      MappingSemantics::kByTuple, AggregateSemantics::kRange);
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  EXPECT_EQ(grouped->size(), 4u);  // eng, sales, ops, legal
}

TEST(EmployeesTest, RejectsBadOptions) {
  Rng rng(4);
  EmployeesOptions bad_dates;
  bad_dates.hired_from = 100;
  bad_dates.hired_to = 50;
  EXPECT_FALSE(GenerateEmployeesTable(bad_dates, rng).ok());
  EmployeesOptions bad_pay;
  bad_pay.base_pay_lo = -1;
  EXPECT_FALSE(GenerateEmployeesTable(bad_pay, rng).ok());
}

TEST(EmployeesTest, DeterministicFromSeed) {
  EmployeesOptions opts;
  opts.num_employees = 50;
  Rng a(9), b(9);
  const Table ta = *GenerateEmployeesTable(opts, a);
  const Table tb = *GenerateEmployeesTable(opts, b);
  for (size_t r = 0; r < 50; ++r) {
    EXPECT_DOUBLE_EQ(ta.column(2).DoubleAt(r), tb.column(2).DoubleAt(r));
  }
}

}  // namespace
}  // namespace aqua
