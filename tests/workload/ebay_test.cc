#include "aqua/workload/ebay.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(EbayTest, PaperInstanceMatchesTableII) {
  const auto t = PaperInstanceDS2();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 8u);
  EXPECT_EQ(t->GetValue(0, 0), Value::Int64(3401));
  EXPECT_DOUBLE_EQ(t->GetValue(2, 3).dbl(), 331.94);
  EXPECT_DOUBLE_EQ(t->GetValue(7, 4).dbl(), 438.05);
}

TEST(EbayTest, PMappingStructure) {
  const auto pm = MakeEbayPMapping();
  ASSERT_TRUE(pm.ok());
  EXPECT_EQ(pm->size(), 2u);
  EXPECT_DOUBLE_EQ(pm->probability(0), 0.3);
  EXPECT_EQ(*pm->mapping(0).SourceFor("price"), "bid");
  EXPECT_EQ(*pm->mapping(1).SourceFor("price"), "currentPrice");
  EXPECT_TRUE(pm->IsCertainTarget("auctionId"));
  EXPECT_TRUE(pm->IsCertainTarget("transaction"));
  EXPECT_FALSE(pm->IsCertainTarget("price"));
}

TEST(EbayTest, PMappingRejectsDegenerateProbability) {
  EXPECT_FALSE(MakeEbayPMapping(0.0).ok());
  EXPECT_FALSE(MakeEbayPMapping(1.0).ok());
  EXPECT_FALSE(MakeEbayPMapping(-0.3).ok());
}

TEST(EbayTest, GeneratorShape) {
  Rng rng(1);
  EbayOptions opts;
  opts.num_auctions = 20;
  opts.min_bids = 3;
  opts.max_bids = 9;
  const auto t = GenerateEbayTable(opts, rng);
  ASSERT_TRUE(t.ok());
  EXPECT_GE(t->num_rows(), 20u * 3);
  EXPECT_LE(t->num_rows(), 20u * 9);
  EXPECT_EQ(t->schema().attribute(3).name, "bid");
}

TEST(EbayTest, SecondPriceInvariants) {
  Rng rng(2);
  EbayOptions opts;
  opts.num_auctions = 50;
  const auto t = GenerateEbayTable(opts, rng);
  ASSERT_TRUE(t.ok());
  const Column& auction = t->column(1);
  const Column& time = t->column(2);
  const Column& bid = t->column(3);
  const Column& current = t->column(4);
  double high1 = 0;
  int64_t prev_auction = -1;
  double prev_time = 0;
  for (size_t r = 0; r < t->num_rows(); ++r) {
    if (auction.Int64At(r) != prev_auction) {
      prev_auction = auction.Int64At(r);
      high1 = bid.DoubleAt(r);
      prev_time = time.DoubleAt(r);
      // First bid: the visible price equals the bid (paper Table II).
      EXPECT_DOUBLE_EQ(current.DoubleAt(r), bid.DoubleAt(r));
      continue;
    }
    // Times are non-decreasing within an auction.
    EXPECT_GE(time.DoubleAt(r), prev_time);
    prev_time = time.DoubleAt(r);
    high1 = std::max(high1, bid.DoubleAt(r));
    // The visible price never exceeds the highest proxy bid (after
    // cent rounding).
    EXPECT_LE(current.DoubleAt(r), high1 + 0.01);
    // Prices stay positive and within the auction's duration.
    EXPECT_GT(bid.DoubleAt(r), 0.0);
    EXPECT_LE(time.DoubleAt(r), opts.duration_days);
  }
}

TEST(EbayTest, TransactionIdsFollowPaperPattern) {
  Rng rng(3);
  EbayOptions opts;
  opts.num_auctions = 3;
  opts.min_bids = 2;
  opts.max_bids = 4;
  const auto t = GenerateEbayTable(opts, rng);
  ASSERT_TRUE(t.ok());
  // First auction's first transaction is 101 (auction 1, ordinal 1).
  EXPECT_EQ(t->GetValue(0, 0), Value::Int64(101));
}

TEST(EbayTest, DeterministicFromSeed) {
  EbayOptions opts;
  opts.num_auctions = 5;
  Rng a(9), b(9);
  const auto ta = GenerateEbayTable(opts, a);
  const auto tb = GenerateEbayTable(opts, b);
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  for (size_t r = 0; r < ta->num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(ta->column(3).DoubleAt(r), tb->column(3).DoubleAt(r));
  }
}

TEST(EbayTest, RejectsBadOptions) {
  Rng rng(4);
  EbayOptions opts;
  opts.min_bids = 0;
  EXPECT_FALSE(GenerateEbayTable(opts, rng).ok());
  opts.min_bids = 5;
  opts.max_bids = 3;
  EXPECT_FALSE(GenerateEbayTable(opts, rng).ok());
}

TEST(EbayTest, PaperQueriesValidate) {
  EXPECT_TRUE(PaperQueryQ2().Validate().ok());
  EXPECT_TRUE(PaperQueryQ2Prime().Validate().ok());
}

}  // namespace
}  // namespace aqua
