#include "aqua/workload/real_estate.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(RealEstateTest, PaperInstanceMatchesTableI) {
  const auto t = PaperInstanceDS1();
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 4u);
  EXPECT_EQ(t->GetValue(0, 0), Value::Int64(1));
  EXPECT_DOUBLE_EQ(t->GetValue(1, 1).dbl(), 150e3);
  EXPECT_EQ(t->GetValue(0, 3).date(), *Date::FromYmd(2008, 1, 5));
  EXPECT_EQ(t->GetValue(3, 4).date(), *Date::FromYmd(2008, 2, 1));
  EXPECT_EQ(t->GetValue(2, 2), Value::String("215"));
}

TEST(RealEstateTest, PMappingStructure) {
  const auto pm = MakeRealEstatePMapping();
  ASSERT_TRUE(pm.ok());
  EXPECT_EQ(pm->size(), 2u);
  EXPECT_DOUBLE_EQ(pm->probability(0), 0.6);
  EXPECT_EQ(*pm->mapping(0).SourceFor("date"), "postedDate");
  EXPECT_EQ(*pm->mapping(1).SourceFor("date"), "reducedDate");
  EXPECT_FALSE(pm->mapping(0).MapsTarget("comments"));
  EXPECT_TRUE(pm->IsCertainTarget("listPrice"));
}

TEST(RealEstateTest, GeneratorInvariants) {
  Rng rng(1);
  RealEstateOptions opts;
  opts.num_properties = 300;
  const auto t = GenerateRealEstateTable(opts, rng);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 300u);
  const Date today = *Date::FromYmd(2008, 2, 20);
  for (size_t r = 0; r < t->num_rows(); ++r) {
    const Date posted = t->column(3).DateAt(r);
    const Date reduced = t->column(4).DateAt(r);
    EXPECT_LT(posted, today);
    EXPECT_LT(posted, reduced);  // reductions strictly after posting
    const double price = t->column(1).DoubleAt(r);
    EXPECT_GE(price, opts.price_lo);
    EXPECT_LT(price, opts.price_hi);
  }
}

TEST(RealEstateTest, PaperQ1Validates) {
  const AggregateQuery q = PaperQueryQ1();
  EXPECT_TRUE(q.Validate().ok());
  EXPECT_EQ(q.ToString(),
            "SELECT COUNT(*) FROM T1 WHERE date < '2008-1-20'");
}

TEST(RealEstateTest, DeterministicFromSeed) {
  RealEstateOptions opts;
  opts.num_properties = 20;
  Rng a(3), b(3);
  const auto ta = GenerateRealEstateTable(opts, a);
  const auto tb = GenerateRealEstateTable(opts, b);
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  for (size_t r = 0; r < 20; ++r) {
    EXPECT_EQ(ta->column(3).DateAt(r), tb->column(3).DateAt(r));
  }
}

}  // namespace
}  // namespace aqua
