#include "aqua/workload/synthetic.h"

#include <gtest/gtest.h>

#include "aqua/core/engine.h"

namespace aqua {
namespace {

TEST(SyntheticTest, TableShape) {
  Rng rng(1);
  SyntheticOptions opts;
  opts.num_tuples = 100;
  opts.num_attributes = 7;
  const auto t = GenerateSyntheticTable(opts, rng);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 100u);
  EXPECT_EQ(t->num_columns(), 8u);  // id + 7 reals
  EXPECT_EQ(t->schema().attribute(0).name, "id");
  EXPECT_EQ(t->schema().attribute(0).type, ValueType::kInt64);
  for (size_t c = 1; c < t->num_columns(); ++c) {
    EXPECT_EQ(t->schema().attribute(c).type, ValueType::kDouble);
  }
}

TEST(SyntheticTest, ValuesWithinConfiguredRange) {
  Rng rng(2);
  SyntheticOptions opts;
  opts.num_tuples = 500;
  opts.num_attributes = 3;
  opts.value_lo = -10.0;
  opts.value_hi = 10.0;
  const auto t = GenerateSyntheticTable(opts, rng);
  ASSERT_TRUE(t.ok());
  for (size_t c = 1; c < t->num_columns(); ++c) {
    for (size_t r = 0; r < t->num_rows(); ++r) {
      const double v = t->column(c).DoubleAt(r);
      EXPECT_GE(v, -10.0);
      EXPECT_LT(v, 10.0);
    }
  }
}

TEST(SyntheticTest, IdsAreSequential) {
  Rng rng(3);
  SyntheticOptions opts;
  opts.num_tuples = 10;
  const auto t = GenerateSyntheticTable(opts, rng);
  ASSERT_TRUE(t.ok());
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_EQ(t->column(0).Int64At(r), static_cast<int64_t>(r));
  }
}

TEST(SyntheticTest, WorkloadIsAnswerable) {
  Rng rng(4);
  SyntheticOptions opts;
  opts.num_tuples = 200;
  opts.num_attributes = 10;
  opts.num_mappings = 4;
  const auto w = GenerateSyntheticWorkload(opts, rng);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_EQ(w->pmapping.size(), 4u);

  const Engine engine;
  for (auto func :
       {AggregateFunction::kCount, AggregateFunction::kSum,
        AggregateFunction::kAvg, AggregateFunction::kMin,
        AggregateFunction::kMax}) {
    const AggregateQuery q = w->MakeQuery(func);
    const auto a = engine.Answer(q, w->pmapping, w->table,
                                 MappingSemantics::kByTuple,
                                 AggregateSemantics::kRange);
    EXPECT_TRUE(a.ok()) << AggregateFunctionToString(func) << ": "
                        << a.status().ToString();
  }
}

TEST(SyntheticTest, DeterministicFromSeed) {
  SyntheticOptions opts;
  opts.num_tuples = 50;
  Rng a(7), b(7);
  const auto ta = GenerateSyntheticTable(opts, a);
  const auto tb = GenerateSyntheticTable(opts, b);
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  for (size_t r = 0; r < 50; ++r) {
    EXPECT_DOUBLE_EQ(ta->column(1).DoubleAt(r), tb->column(1).DoubleAt(r));
  }
}

TEST(SyntheticTest, RejectsBadOptions) {
  Rng rng(8);
  SyntheticOptions no_attrs;
  no_attrs.num_attributes = 0;
  EXPECT_FALSE(GenerateSyntheticTable(no_attrs, rng).ok());
  SyntheticOptions too_many_mappings;
  too_many_mappings.num_attributes = 3;
  too_many_mappings.num_mappings = 5;
  EXPECT_FALSE(GenerateSyntheticWorkload(too_many_mappings, rng).ok());
}

}  // namespace
}  // namespace aqua
