#include "aqua/exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "aqua/common/failpoint.h"
#include "aqua/obs/metrics.h"

namespace aqua::exec {
namespace {

/// Simple completion latch: tasks count down, the test waits for zero.
class Latch {
 public:
  explicit Latch(int n) : remaining_(n) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
};

TEST(ThreadPoolTest, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::atomic<int> ran{0};
  Latch latch(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      ran.fetch_add(1, std::memory_order_relaxed);
      latch.CountDown();
    });
  }
  latch.Wait();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool joins after draining the queue.
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, SharedPoolIsASingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.num_threads(), ThreadPool::HardwareThreads());
}

TEST(ThreadPoolTest, TasksAreCountedInPoolMetrics) {
  auto& registry = obs::MetricsRegistry::Default();
  const uint64_t before =
      registry.GetCounter("aqua_pool_tasks_total").value();
  ThreadPool pool(2);
  constexpr int kTasks = 17;
  Latch latch(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] { latch.CountDown(); });
  }
  latch.Wait();
  const uint64_t after =
      registry.GetCounter("aqua_pool_tasks_total").value();
  EXPECT_GE(after - before, static_cast<uint64_t>(kTasks));
  // Per-task latency is observed once per executed task.
  EXPECT_GE(registry.GetHistogram("aqua_pool_task_latency_us").count(),
            static_cast<uint64_t>(kTasks));
}

TEST(ThreadPoolTest, WorkersStartLazily) {
  ThreadPool pool(3);
  const uint64_t started_before =
      obs::MetricsRegistry::Default()
          .GetCounter("aqua_pool_threads_started_total")
          .value();
  // No Submit yet: constructing the pool must not have spawned workers
  // beyond what earlier tests already started.
  Latch latch(1);
  pool.Submit([&] { latch.CountDown(); });
  latch.Wait();
  const uint64_t started_after =
      obs::MetricsRegistry::Default()
          .GetCounter("aqua_pool_threads_started_total")
          .value();
  EXPECT_GE(started_after - started_before, 3u);
}

TEST(ThreadPoolTest, SubmitReportsSuccess) {
  ThreadPool pool(1);
  Latch latch(1);
  EXPECT_TRUE(pool.Submit([&] { latch.CountDown(); }));
  latch.Wait();
}

TEST(ThreadPoolTest, SubmitFailsUnderSpawnFailpointAndTaskNeverRuns) {
  fault::ScopedFailpoint fp("exec/pool/spawn", "error(unavailable)");
  ASSERT_TRUE(fp.status().ok());
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  EXPECT_FALSE(pool.Submit([&] { ran.store(true); }));
  // The contract on a false return: the task was not enqueued and will
  // never run, so the caller must do the work inline.
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPoolTest, QueueLimitBoundsPendingTasksAndSubmitReportsIt) {
  ThreadPool pool(1);
  pool.set_queue_limit(2);
  EXPECT_EQ(pool.queue_limit(), 2u);
  // Park the single worker so queued tasks pile up deterministically.
  Latch release(1);
  Latch parked(1);
  ASSERT_TRUE(pool.Submit([&] {
    parked.CountDown();
    release.Wait();
  }));
  parked.Wait();
  // Two fit in the queue; the third is refused and never runs.
  EXPECT_TRUE(pool.Submit([] {}));
  EXPECT_TRUE(pool.Submit([] {}));
  EXPECT_EQ(pool.queue_depth(), 2u);
  std::atomic<bool> ran{false};
  EXPECT_FALSE(pool.Submit([&] { ran.store(true); }));
  release.CountDown();
  // Destructor drains the two queued tasks; the refused one must not run.
  {
    Latch done(1);
    // Queue has space again once the worker drains; wait via a sentinel.
    while (!pool.Submit([&] { done.CountDown(); })) {
    }
    done.Wait();
  }
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPoolTest, QueueDepthGaugeTracksPendingTasks) {
  ThreadPool pool(1);
  Latch release(1);
  Latch parked(1);
  ASSERT_TRUE(pool.Submit([&] {
    parked.CountDown();
    release.Wait();
  }));
  parked.Wait();
  const int64_t before = obs::MetricsRegistry::Default()
                             .GetGauge("aqua_exec_queue_depth")
                             .value();
  ASSERT_TRUE(pool.Submit([] {}));
  const int64_t after = obs::MetricsRegistry::Default()
                            .GetGauge("aqua_exec_queue_depth")
                            .value();
  EXPECT_EQ(after - before, 1);
  release.CountDown();
}

TEST(ThreadPoolTest, ZeroQueueLimitMeansUnbounded) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.queue_limit(), 0u);
  Latch release(1);
  Latch parked(1);
  ASSERT_TRUE(pool.Submit([&] {
    parked.CountDown();
    release.Wait();
  }));
  parked.Wait();
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(pool.Submit([] {}));
  }
  release.CountDown();
}

TEST(ThreadPoolTest, SubmitRecoversOnceFailpointClears) {
  ThreadPool pool(1);
  {
    fault::ScopedFailpoint fp("exec/pool/spawn", "once*error(unavailable)");
    ASSERT_TRUE(fp.status().ok());
    EXPECT_FALSE(pool.Submit([] {}));
    Latch latch(1);
    EXPECT_TRUE(pool.Submit([&] { latch.CountDown(); }));
    latch.Wait();
  }
}

}  // namespace
}  // namespace aqua::exec
