#include "aqua/exec/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "aqua/common/exec_context.h"
#include "aqua/common/failpoint.h"
#include "aqua/obs/metrics.h"

namespace aqua::exec {
namespace {

TEST(MakeChunksTest, PartitionsExactly) {
  const std::vector<Chunk> chunks = MakeChunks(10, 3);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0].begin, 0u);
  EXPECT_EQ(chunks[0].end, 3u);
  EXPECT_EQ(chunks[3].begin, 9u);
  EXPECT_EQ(chunks[3].end, 10u);
  for (size_t i = 0; i < chunks.size(); ++i) EXPECT_EQ(chunks[i].index, i);
}

TEST(MakeChunksTest, ZeroChunkSizeMeansOne) {
  const std::vector<Chunk> chunks = MakeChunks(3, 0);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[1].begin, 1u);
  EXPECT_EQ(chunks[1].end, 2u);
}

TEST(MakeChunksTest, EmptyRange) {
  EXPECT_TRUE(MakeChunks(0, 8).empty());
}

TEST(ParallelForTest, ZeroItemsIsOk) {
  int calls = 0;
  const Status s = ParallelFor(
      ExecPolicy{}, 0, 8, nullptr,
      [&](const Chunk&, ExecContext*) -> Status {
        ++calls;
        return Status::OK();
      });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, SerialCoversEveryElementInOrder) {
  constexpr size_t kN = 1000;
  std::vector<int> seen(kN, 0);
  std::vector<size_t> chunk_order;
  const Status s = ParallelFor(
      ExecPolicy{1}, kN, 7, nullptr,
      [&](const Chunk& chunk, ExecContext*) -> Status {
        chunk_order.push_back(chunk.index);
        for (size_t i = chunk.begin; i < chunk.end; ++i) ++seen[i];
        return Status::OK();
      });
  ASSERT_TRUE(s.ok());
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(seen[i], 1) << "element " << i;
  for (size_t i = 0; i < chunk_order.size(); ++i) {
    EXPECT_EQ(chunk_order[i], i);  // serial path runs chunks in index order
  }
}

TEST(ParallelForTest, ParallelCoversEveryElementExactlyOnce) {
  constexpr size_t kN = 10'000;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(kN);
  const Status s = ParallelFor(
      ExecPolicy{4, &pool}, kN, 64, nullptr,
      [&](const Chunk& chunk, ExecContext*) -> Status {
        for (size_t i = chunk.begin; i < chunk.end; ++i) {
          seen[i].fetch_add(1, std::memory_order_relaxed);
        }
        return Status::OK();
      });
  ASSERT_TRUE(s.ok());
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(seen[i].load(), 1);
}

TEST(ParallelForTest, LowestIndexFailureWins) {
  // Chunks are claimed in index order, so chunk 3 always executes its body
  // before chunk 7 can poison the region: the reported status must be the
  // index-3 failure at every thread count.
  ThreadPool pool(4);
  for (const int threads : {1, 4}) {
    const Status s = ParallelFor(
        ExecPolicy{threads, &pool}, 10, 1, nullptr,
        [&](const Chunk& chunk, ExecContext*) -> Status {
          if (chunk.index == 3) return Status::InvalidArgument("chunk three");
          if (chunk.index == 7) return Status::Internal("chunk seven");
          return Status::OK();
        });
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << "threads=" << threads;
    EXPECT_NE(s.message().find("chunk three"), std::string::npos);
  }
}

TEST(ParallelForTest, BudgetSharesSumExactlyToParent) {
  // 10 equal chunks under max_steps=100: every chunk gets exactly 10, all
  // succeed, and the parent ends up with the exact sum of child charges.
  ThreadPool pool(4);
  for (const int threads : {1, 4}) {
    ExecLimits limits;
    limits.max_steps = 100;
    ExecContext parent(limits);
    const Status s = ParallelFor(
        ExecPolicy{threads, &pool}, 100, 10, &parent,
        [&](const Chunk& chunk, ExecContext* child) -> Status {
          return child->Charge(chunk.size());
        });
    ASSERT_TRUE(s.ok()) << "threads=" << threads << ": " << s.ToString();
    EXPECT_EQ(parent.steps(), 100u);
    // The shares summed to the whole budget, so the parent is now spent.
    EXPECT_EQ(parent.Charge(1).code(), StatusCode::kResourceExhausted);
  }
}

TEST(ParallelForTest, WeightsRouteBudgetProportionally) {
  // Weight 9:1 over two chunks of max_steps=100: chunk 0 may charge 90,
  // chunk 1 only 10.
  ExecLimits limits;
  limits.max_steps = 100;
  ExecContext parent(limits);
  const std::vector<uint64_t> weights = {9, 1};
  std::vector<Status> charge(2);
  const Status s = ParallelFor(
      ExecPolicy{1}, 2, 1, &parent,
      [&](const Chunk& chunk, ExecContext* child) -> Status {
        charge[chunk.index] = child->Charge(50);
        return Status::OK();  // record, don't abort, so both chunks run
      },
      &weights);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(charge[0].ok());  // 50 <= 90
  EXPECT_EQ(charge[1].code(), StatusCode::kResourceExhausted);  // 50 > 10
}

TEST(ParallelForTest, WeightsSizeMismatchIsInternal) {
  const std::vector<uint64_t> weights = {1, 2, 3};  // but 2 chunks
  const Status s = ParallelFor(
      ExecPolicy{1}, 2, 1, nullptr,
      [](const Chunk&, ExecContext*) -> Status { return Status::OK(); },
      &weights);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

// Satellite: a budget blow inside one chunk must surface as exactly one
// kResourceExhausted, abort the siblings via the group token without ever
// touching the caller's own token, and leave no detached task behind — the
// pool must be immediately reusable for the next region.
TEST(ParallelForTest, BudgetBlowCancelsGroupNotCaller) {
  ThreadPool pool(4);
  CancellationToken caller = CancellationToken::Make();
  ExecLimits limits;
  limits.max_steps = 100;
  ExecContext parent(limits, caller);

  std::atomic<int> exhausted{0};
  const Status s = ParallelFor(
      ExecPolicy{4, &pool}, 8, 1, &parent,
      [&](const Chunk& chunk, ExecContext* child) -> Status {
        // Chunk 5 blows its ~12-step share; everyone else stays within it.
        const Status st = child->Charge(chunk.index == 5 ? 1000 : 1);
        if (st.code() == StatusCode::kResourceExhausted) {
          exhausted.fetch_add(1, std::memory_order_relaxed);
        }
        return st;
      });
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(exhausted.load(), 1);
  // Group cancellation never propagates upstream.
  EXPECT_FALSE(caller.cancellation_requested());

  // ParallelFor returned only after every involved worker exited, so the
  // same pool immediately runs a fresh region to completion.
  std::atomic<int> ran{0};
  const Status again = ParallelFor(
      ExecPolicy{4, &pool}, 16, 1, nullptr,
      [&](const Chunk&, ExecContext*) -> Status {
        ran.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      });
  EXPECT_TRUE(again.ok());
  EXPECT_EQ(ran.load(), 16);
}

TEST(ParallelForTest, CallerCancellationSurfacesAsCancelled) {
  CancellationToken caller = CancellationToken::Make();
  caller.RequestCancel();
  ExecContext parent(ExecLimits{}, caller);
  const Status s = ParallelFor(
      ExecPolicy{1}, 4, 1, &parent,
      [](const Chunk&, ExecContext* child) -> Status {
        return child->CheckNow();
      });
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
}

TEST(ParallelReduceTest, FoldsInChunkIndexOrder) {
  // The reduction must be the fixed left-to-right fold over chunk indices
  // no matter how chunks were scheduled: concatenation (non-commutative)
  // makes any reordering visible.
  ThreadPool pool(4);
  const std::string expected = "|0|1|2|3|4|5|6|7|8|9|10|11";
  for (const int threads : {1, 4}) {
    const Result<std::string> folded = ParallelReduce<std::string>(
        ExecPolicy{threads, &pool}, 100, 9, nullptr, std::string(),
        [](const Chunk& chunk, ExecContext*) -> Result<std::string> {
          return "|" + std::to_string(chunk.index);
        },
        [](std::string acc, std::string part) { return acc + part; });
    ASSERT_TRUE(folded.ok());
    EXPECT_EQ(*folded, expected) << "threads=" << threads;
  }
}

TEST(ParallelReduceTest, MapErrorPropagates) {
  const Result<int> r = ParallelReduce<int>(
      ExecPolicy{1}, 10, 2, nullptr, 0,
      [](const Chunk& chunk, ExecContext*) -> Result<int> {
        if (chunk.index == 2) return Status::NotFound("missing piece");
        return static_cast<int>(chunk.index);
      },
      [](int acc, int part) { return acc + part; });
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ParallelForTest, SpawnFailureFallsBackToSerialWithIdenticalResults) {
  constexpr size_t kN = 1000;
  auto run = [&](std::vector<int>* seen) {
    return ParallelFor(ExecPolicy{4}, kN, 16, nullptr,
                       [&](const Chunk& chunk, ExecContext*) -> Status {
                         for (size_t i = chunk.begin; i < chunk.end; ++i) {
                           (*seen)[i] = static_cast<int>(i) + 1;
                         }
                         return Status::OK();
                       });
  };
  std::vector<int> parallel_seen(kN, 0);
  ASSERT_TRUE(run(&parallel_seen).ok());

  const uint64_t fallbacks_before =
      obs::MetricsRegistry::Default()
          .GetCounter("aqua_exec_serial_fallback_total")
          .value();
  fault::ScopedFailpoint fp("exec/pool/spawn", "error(unavailable)");
  ASSERT_TRUE(fp.status().ok());
  std::vector<int> fallback_seen(kN, 0);
  ASSERT_TRUE(run(&fallback_seen).ok());

  // The pool refused every helper, the caller drained all chunks inline,
  // and the result is indistinguishable from the parallel run.
  EXPECT_EQ(fallback_seen, parallel_seen);
  EXPECT_GT(obs::MetricsRegistry::Default()
                .GetCounter("aqua_exec_serial_fallback_total")
                .value(),
            fallbacks_before);
}

TEST(ParallelForTest, InjectedChunkErrorPropagatesCleanly) {
  fault::ScopedFailpoint fp("exec/parallel/chunk",
                            "once*error(unavailable,injected)");
  ASSERT_TRUE(fp.status().ok());
  std::atomic<int> bodies{0};
  const Status s = ParallelFor(ExecPolicy{1}, 100, 10, nullptr,
                               [&](const Chunk&, ExecContext*) -> Status {
                                 bodies.fetch_add(1);
                                 return Status::OK();
                               });
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.message(), "injected");
}

}  // namespace
}  // namespace aqua::exec
