// Shard supervisor behavior: deterministic partition planning, serial and
// pooled execution, straggler hedging (first result wins, loser never
// double-charges), hedge shedding at the pool's queue cap (the hedge is
// dropped, the query is not), shard-local degradation, torn-partial
// detection, and the spawn fallback. Timings use generous sleeps and
// floors so the assertions hold on a loaded single-core runner.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "aqua/common/exec_context.h"
#include "aqua/common/failpoint.h"
#include "aqua/exec/thread_pool.h"
#include "aqua/obs/metrics.h"
#include "aqua/shard/supervisor.h"

namespace aqua {
namespace {

using shard::ShardJob;
using shard::ShardOutcome;
using shard::Supervisor;
using shard::SupervisorOptions;
using shard::SupervisorReport;

/// A well-formed exact job: charges one step per row and reports the row
/// sum as its expectation.
ShardJob SumJob() {
  return [](size_t, const std::vector<uint32_t>& rows,
            ExecContext* ctx) -> Result<merge::ShardPartial> {
    AQUA_RETURN_NOT_OK(ctx->Charge(rows.size()));
    merge::ShardPartial p;
    for (const uint32_t r : rows) p.expected += static_cast<double>(r);
    p.rows_covered = rows.size();
    return p;
  };
}

double TotalExpected(const std::vector<ShardOutcome>& outcomes) {
  double total = 0.0;
  for (const ShardOutcome& o : outcomes) total += o.partial.expected;
  return total;
}

TEST(PlanShardsTest, ContiguousCoveringPartition) {
  const auto plan = Supervisor::PlanShards(10, 3);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].size(), 4u);  // remainder goes to the lowest shards
  EXPECT_EQ(plan[1].size(), 3u);
  EXPECT_EQ(plan[2].size(), 3u);
  uint32_t next = 0;
  for (const auto& rows : plan) {
    for (const uint32_t r : rows) EXPECT_EQ(r, next++);
  }
  EXPECT_EQ(next, 10u);
}

TEST(PlanShardsTest, ClampsToRowCountAndOne) {
  EXPECT_EQ(Supervisor::PlanShards(2, 8).size(), 2u);  // never empty shards
  EXPECT_EQ(Supervisor::PlanShards(0, 4).size(), 1u);
  EXPECT_TRUE(Supervisor::PlanShards(0, 4)[0].empty());
  EXPECT_EQ(Supervisor::PlanShards(5, 0).size(), 1u);  // shards < 1 = serial
  EXPECT_EQ(Supervisor::PlanShards(5, 0)[0].size(), 5u);
}

TEST(SupervisorTest, SerialPathRunsShardsInOrderAndAbsorbsBudget) {
  SupervisorOptions options;
  options.shards = 4;
  options.threads = 1;
  const Supervisor supervisor(options);
  ExecContext parent(ExecLimits{}, {});
  SupervisorReport report;
  const auto plan = Supervisor::PlanShards(8, 4);
  const ShardJob job = SumJob();
  const auto outcomes = supervisor.Run(plan, &parent, job, nullptr, &report);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), 4u);
  EXPECT_EQ(TotalExpected(*outcomes), 0.0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
  // One step per row, absorbed exactly once.
  EXPECT_EQ(parent.steps(), 8u);
  EXPECT_EQ(report.shards, 4u);
  EXPECT_EQ(report.degraded, 0u);
  EXPECT_EQ(report.hedged, 0u);
}

TEST(SupervisorTest, StragglerIsHedgedAndLoserNotAbsorbed) {
  exec::ThreadPool pool(2);
  SupervisorOptions options;
  options.shards = 2;
  options.threads = 2;
  options.pool = &pool;
  options.hedge.min_wait_ms = 10;
  options.stall_ms = 5000;  // keep the stall fallback out of this test
  const Supervisor supervisor(options);

  std::atomic<int> shard0_calls{0};
  const ShardJob job = [&](size_t s, const std::vector<uint32_t>& rows,
                           ExecContext* ctx) -> Result<merge::ShardPartial> {
    if (s == 0 && shard0_calls.fetch_add(1) == 0) {
      // The primary attempt at shard 0 straggles; the hedge (second call)
      // does not.
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
    AQUA_RETURN_NOT_OK(ctx->Charge(rows.size()));
    merge::ShardPartial p;
    for (const uint32_t r : rows) p.expected += static_cast<double>(r);
    p.rows_covered = rows.size();
    return p;
  };

  ExecContext parent(ExecLimits{}, {});
  SupervisorReport report;
  const auto plan = Supervisor::PlanShards(8, 2);
  const auto outcomes = supervisor.Run(plan, &parent, job, nullptr, &report);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  EXPECT_EQ(TotalExpected(*outcomes), 28.0);
  EXPECT_GE(report.hedged, 1u);
  EXPECT_TRUE((*outcomes)[0].hedged);
  EXPECT_GE(shard0_calls.load(), 2);  // the duplicate attempt really ran
  // The absorb-once invariant: the straggler also charged 4 steps, but
  // only the winning attempt per shard lands in the parent.
  EXPECT_EQ(parent.steps(), 8u);
}

TEST(SupervisorTest, HedgeShedAtQueueCapNeverFailsTheQuery) {
  // One worker with a one-deep queue. The shard 0 job occupies the worker
  // and stuffs the queue with a filler task, so any hedge submission is
  // refused at the cap — the supervisor must record the shed and let the
  // primary finish normally.
  exec::ThreadPool pool(1);
  pool.set_queue_limit(1);
  SupervisorOptions options;
  options.shards = 2;
  options.threads = 2;
  options.pool = &pool;
  options.hedge.min_wait_ms = 10;
  options.stall_ms = 5000;
  const Supervisor supervisor(options);

  std::atomic<int> shard0_calls{0};
  const ShardJob job = [&](size_t s, const std::vector<uint32_t>& rows,
                           ExecContext* ctx) -> Result<merge::ShardPartial> {
    if (s == 0 && shard0_calls.fetch_add(1) == 0) {
      (void)pool.Submit([] {});  // fill the queue (refusal here is fine too)
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
    AQUA_RETURN_NOT_OK(ctx->Charge(rows.size()));
    merge::ShardPartial p;
    for (const uint32_t r : rows) p.expected += static_cast<double>(r);
    p.rows_covered = rows.size();
    return p;
  };

  const uint64_t shed_before = obs::MetricsRegistry::Default()
                                   .GetCounter("aqua_shard_hedge_shed_total")
                                   .value();
  ExecContext parent(ExecLimits{}, {});
  SupervisorReport report;
  const auto plan = Supervisor::PlanShards(8, 2);
  const auto outcomes = supervisor.Run(plan, &parent, job, nullptr, &report);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  EXPECT_EQ(TotalExpected(*outcomes), 28.0);
  EXPECT_GE(report.hedges_shed, 1u);
  EXPECT_FALSE((*outcomes)[0].hedged);  // shed = "hedge not issued"
  EXPECT_GE(obs::MetricsRegistry::Default()
                .GetCounter("aqua_shard_hedge_shed_total")
                .value(),
            shed_before + 1);
}

TEST(SupervisorTest, DegradableFailureRunsFallbackAndFlagsShard) {
  SupervisorOptions options;
  options.shards = 2;
  options.threads = 1;
  const Supervisor supervisor(options);

  const ShardJob job = [](size_t s, const std::vector<uint32_t>& rows,
                          ExecContext*) -> Result<merge::ShardPartial> {
    if (s == 1) return Status::Unavailable("shard 1 died");
    merge::ShardPartial p;
    p.rows_covered = rows.size();
    p.expected = 1.0;
    return p;
  };
  const ShardJob fallback = [](size_t, const std::vector<uint32_t>& rows,
                               ExecContext*) -> Result<merge::ShardPartial> {
    merge::ShardPartial p;
    p.rows_covered = rows.size();
    p.expected = 2.0;
    p.approximate = true;
    p.note = "sampled";
    return p;
  };

  SupervisorReport report;
  const auto plan = Supervisor::PlanShards(8, 2);
  const auto outcomes =
      supervisor.Run(plan, nullptr, job, &fallback, &report);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  EXPECT_FALSE((*outcomes)[0].degraded);
  EXPECT_TRUE((*outcomes)[1].degraded);
  EXPECT_TRUE((*outcomes)[1].partial.approximate);
  EXPECT_EQ(report.degraded, 1u);
}

TEST(SupervisorTest, NonDegradableFailureFailsTheRun) {
  SupervisorOptions options;
  options.shards = 2;
  options.threads = 1;
  const Supervisor supervisor(options);
  const ShardJob job = [](size_t, const std::vector<uint32_t>&,
                          ExecContext*) -> Result<merge::ShardPartial> {
    return Status::InvalidArgument("bad query reaches every shard alike");
  };
  const ShardJob fallback = SumJob();
  const auto plan = Supervisor::PlanShards(8, 2);
  const auto outcomes = supervisor.Run(plan, nullptr, job, &fallback, nullptr);
  ASSERT_FALSE(outcomes.ok());
  EXPECT_EQ(outcomes.status().code(), StatusCode::kInvalidArgument);
}

TEST(SupervisorTest, TornPartialIsDetected) {
  // Without a fallback the short partial must surface as an error naming
  // the coverage gap — never merge silently.
  fault::ScopedFailpoint fp("shard/run", "once*partial");
  SupervisorOptions options;
  options.shards = 2;
  options.threads = 1;
  const Supervisor supervisor(options);
  const ShardJob job = SumJob();
  const auto plan = Supervisor::PlanShards(8, 2);
  const auto outcomes = supervisor.Run(plan, nullptr, job, nullptr, nullptr);
  ASSERT_FALSE(outcomes.ok());
  EXPECT_NE(std::string(outcomes.status().message()).find("torn shard partial"),
            std::string::npos)
      << outcomes.status().ToString();
}

TEST(SupervisorTest, TornPartialDegradesWhenFallbackAvailable) {
  fault::ScopedFailpoint fp("shard/run", "once*partial");
  SupervisorOptions options;
  options.shards = 2;
  options.threads = 1;
  const Supervisor supervisor(options);
  const ShardJob job = SumJob();
  const ShardJob fallback = SumJob();
  SupervisorReport report;
  const auto plan = Supervisor::PlanShards(8, 2);
  const auto outcomes = supervisor.Run(plan, nullptr, job, &fallback, &report);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  EXPECT_EQ(report.degraded, 1u);
  // The fallback re-ran over the full shard, so the answer is complete.
  EXPECT_EQ(TotalExpected(*outcomes), 28.0);
}

TEST(SupervisorTest, SpawnFailureFallsBackInline) {
  fault::ScopedFailpoint fp("shard/spawn", "error(unavailable)");
  exec::ThreadPool pool(2);
  SupervisorOptions options;
  options.shards = 2;
  options.threads = 2;
  options.pool = &pool;
  const Supervisor supervisor(options);
  ExecContext parent(ExecLimits{}, {});
  SupervisorReport report;
  const auto plan = Supervisor::PlanShards(8, 2);
  const ShardJob job = SumJob();
  const auto outcomes = supervisor.Run(plan, &parent, job, nullptr, &report);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  EXPECT_EQ(TotalExpected(*outcomes), 28.0);
  EXPECT_EQ(report.spawn_fallbacks, 2u);
  EXPECT_EQ(parent.steps(), 8u);
}

}  // namespace
}  // namespace aqua
