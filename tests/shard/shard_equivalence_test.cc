// The sharded execution contract at the engine level: `--shards` never
// changes an answer. Fault-free, every shardable cell must produce a
// byte-identical answer at 1, 2, 4, and 8 shards — on the serial
// supervisor path (threads=1) and the concurrent one (threads>1) alike —
// because shard planning is a pure function of the row count and every
// merge operator is the exact combination law for its answer shape.

#include <gtest/gtest.h>

#include <string>

#include "aqua/core/engine.h"
#include "aqua/query/parser.h"
#include "aqua/workload/ebay.h"
#include "aqua/workload/synthetic.h"

namespace aqua {
namespace {

class ShardEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds2_ = *PaperInstanceDS2();
    pm2_ = *MakeEbayPMapping();
  }

  Result<AggregateAnswer> AnswerAt(const std::string& sql, int shards,
                                   int threads,
                                   AggregateSemantics semantics) const {
    EngineOptions opts;
    opts.shards = shards;
    opts.threads = threads;
    const Engine engine(opts);
    return engine.AnswerSql(sql, pm2_, ds2_, MappingSemantics::kByTuple,
                            semantics);
  }

  /// Asserts byte-identical answers across the full shard sweep, on both
  /// supervisor paths.
  void ExpectShardInvariant(const std::string& sql,
                            AggregateSemantics semantics) const {
    const auto serial = AnswerAt(sql, 1, 1, semantics);
    ASSERT_TRUE(serial.ok()) << sql << ": " << serial.status().ToString();
    EXPECT_FALSE(serial->approximate);
    for (const int threads : {1, 2}) {
      for (const int shards : {2, 4, 8}) {
        const auto sharded = AnswerAt(sql, shards, threads, semantics);
        ASSERT_TRUE(sharded.ok())
            << sql << " shards=" << shards << " threads=" << threads << ": "
            << sharded.status().ToString();
        EXPECT_FALSE(sharded->approximate);
        EXPECT_EQ(sharded->ToString(), serial->ToString())
            << sql << " shards=" << shards << " threads=" << threads;
      }
    }
  }

  Table ds2_;
  PMapping pm2_;
};

TEST_F(ShardEquivalenceTest, CountAllThreeSemantics) {
  const std::string sql = "SELECT COUNT(*) FROM T2 WHERE price > 300";
  ExpectShardInvariant(sql, AggregateSemantics::kDistribution);
  ExpectShardInvariant(sql, AggregateSemantics::kRange);
  ExpectShardInvariant(sql, AggregateSemantics::kExpectedValue);
}

TEST_F(ShardEquivalenceTest, SumRangeAndExpected) {
  const std::string sql = "SELECT SUM(price) FROM T2";
  ExpectShardInvariant(sql, AggregateSemantics::kRange);
  ExpectShardInvariant(sql, AggregateSemantics::kExpectedValue);
}

TEST_F(ShardEquivalenceTest, MinMaxDistributionAndExpected) {
  for (const char* sql :
       {"SELECT MIN(price) FROM T2", "SELECT MAX(price) FROM T2"}) {
    ExpectShardInvariant(sql, AggregateSemantics::kDistribution);
    ExpectShardInvariant(sql, AggregateSemantics::kExpectedValue);
  }
}

TEST_F(ShardEquivalenceTest, ShardedRunReportsEffectiveShardCount) {
  const auto sharded =
      AnswerAt("SELECT COUNT(*) FROM T2", 4, 2, AggregateSemantics::kRange);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  // DS2 has more than four rows, so all four fault domains engage.
  EXPECT_EQ(sharded->stats.shards, 4u);
  EXPECT_EQ(sharded->stats.degraded_shards, 0u);
  EXPECT_EQ(sharded->stats.hedged_shards, 0u);

  const auto serial =
      AnswerAt("SELECT COUNT(*) FROM T2", 1, 1, AggregateSemantics::kRange);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial->stats.shards, 0u);  // unsharded runs do not claim shards
}

TEST_F(ShardEquivalenceTest, NonShardableCellFallsBackToSerialUnchanged) {
  // AVG does not decompose over tuple subsets, so the shardability matrix
  // keeps it on the unsharded path; asking for shards must be a no-op.
  const auto serial = AnswerAt("SELECT AVG(price) FROM T2", 1, 1,
                               AggregateSemantics::kRange);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  const auto sharded = AnswerAt("SELECT AVG(price) FROM T2", 4, 2,
                                AggregateSemantics::kRange);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->ToString(), serial->ToString());
  EXPECT_EQ(sharded->stats.shards, 0u);
}

TEST_F(ShardEquivalenceTest, ShardsBeyondRowCountClampToRows) {
  // More shards than rows must behave exactly like shards == rows.
  const auto serial = AnswerAt("SELECT COUNT(*) FROM T2", 1, 1,
                               AggregateSemantics::kDistribution);
  ASSERT_TRUE(serial.ok());
  const auto oversharded = AnswerAt("SELECT COUNT(*) FROM T2", 64, 2,
                                    AggregateSemantics::kDistribution);
  ASSERT_TRUE(oversharded.ok()) << oversharded.status().ToString();
  EXPECT_EQ(oversharded->ToString(), serial->ToString());
  EXPECT_LE(oversharded->stats.shards, ds2_.num_rows());
}

TEST(ShardEquivalenceSyntheticTest, CountDistributionOnLargerWorkload) {
  // A bigger instance so shard boundaries land mid-distribution: 512
  // tuples, 3 candidate mappings, arbitrary float probabilities. Unlike
  // the dyadic paper workloads (where every product is exact and the
  // sweep above asserts bit-equality), regrouping the convolution here
  // re-associates double sums, so the contract is agreement to within
  // accumulated rounding — outcome sets identical, masses within 1e-12
  // total variation.
  Rng rng(2009);
  SyntheticOptions wopts;
  wopts.num_tuples = 512;
  wopts.num_attributes = 6;
  wopts.num_mappings = 3;
  const SyntheticWorkload w = *GenerateSyntheticWorkload(wopts, rng);
  const AggregateQuery q = w.MakeQuery(AggregateFunction::kCount);

  auto answer_at = [&](int shards, int threads) {
    EngineOptions opts;
    opts.shards = shards;
    opts.threads = threads;
    const Engine engine(opts);
    return engine.Answer(q, w.pmapping, w.table, MappingSemantics::kByTuple,
                         AggregateSemantics::kDistribution);
  };

  const auto serial = answer_at(1, 1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (const int shards : {2, 8}) {
    const auto sharded = answer_at(shards, 2);
    ASSERT_TRUE(sharded.ok()) << "shards=" << shards << ": "
                              << sharded.status().ToString();
    EXPECT_EQ(sharded->distribution.entries().size(),
              serial->distribution.entries().size())
        << "shards=" << shards;
    EXPECT_LE(Distribution::TotalVariationDistance(sharded->distribution,
                                                   serial->distribution),
              1e-12)
        << "shards=" << shards;
  }
}

}  // namespace
}  // namespace aqua
