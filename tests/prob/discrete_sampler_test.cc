#include "aqua/prob/discrete_sampler.h"

#include <vector>

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(DiscreteSamplerTest, RejectsBadInput) {
  EXPECT_FALSE(DiscreteSampler::Make({}).ok());
  EXPECT_FALSE(DiscreteSampler::Make({0.5, -0.1}).ok());
  EXPECT_FALSE(DiscreteSampler::Make({0.0, 0.0}).ok());
}

TEST(DiscreteSamplerTest, SingleCategory) {
  auto s = DiscreteSampler::Make({1.0});
  ASSERT_TRUE(s.ok());
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s->Sample(rng), 0u);
}

TEST(DiscreteSamplerTest, FrequenciesMatchProbabilities) {
  const std::vector<double> probs = {0.3, 0.7};
  auto s = DiscreteSampler::Make(probs);
  ASSERT_TRUE(s.ok());
  Rng rng(99);
  std::vector<int> counts(2, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[s->Sample(rng)];
  EXPECT_NEAR(counts[0] / double(n), 0.3, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.7, 0.01);
}

TEST(DiscreteSamplerTest, NormalisesUnscaledWeights) {
  auto s = DiscreteSampler::Make({3.0, 1.0});  // 75% / 25%
  ASSERT_TRUE(s.ok());
  Rng rng(7);
  int zero = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (s->Sample(rng) == 0) ++zero;
  }
  EXPECT_NEAR(zero / double(n), 0.75, 0.01);
}

TEST(DiscreteSamplerTest, ManyCategories) {
  std::vector<double> probs(100, 0.01);
  auto s = DiscreteSampler::Make(probs);
  ASSERT_TRUE(s.ok());
  Rng rng(3);
  std::vector<int> counts(100, 0);
  const int n = 500000;
  for (int i = 0; i < n; ++i) ++counts[s->Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c / double(n), 0.01, 0.003);
}

TEST(DiscreteSamplerTest, ZeroProbabilityCategoryNeverDrawn) {
  auto s = DiscreteSampler::Make({0.5, 0.0, 0.5});
  ASSERT_TRUE(s.ok());
  Rng rng(11);
  for (int i = 0; i < 50000; ++i) EXPECT_NE(s->Sample(rng), 1u);
}

}  // namespace
}  // namespace aqua
