#include "aqua/prob/distribution.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(DistributionTest, EmptyByDefault) {
  Distribution d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
  EXPECT_DOUBLE_EQ(d.TotalMass(), 0.0);
  EXPECT_FALSE(d.Expectation().ok());
  EXPECT_FALSE(d.ToRange().ok());
  EXPECT_FALSE(d.Quantile(0.5).ok());
}

TEST(DistributionTest, PointMass) {
  const Distribution d = Distribution::PointMass(7.0);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.Pr(7.0), 1.0);
  EXPECT_DOUBLE_EQ(*d.Expectation(), 7.0);
  EXPECT_EQ(*d.ToRange(), (Interval{7.0, 7.0}));
}

TEST(DistributionTest, AddMassMergesEqualOutcomes) {
  Distribution d;
  d.AddMass(2.0, 0.3);
  d.AddMass(1.0, 0.2);
  d.AddMass(2.0, 0.5);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.Pr(2.0), 0.8);
  EXPECT_DOUBLE_EQ(d.Pr(1.0), 0.2);
  // Entries are sorted by outcome.
  EXPECT_DOUBLE_EQ(d.entries()[0].outcome, 1.0);
  EXPECT_DOUBLE_EQ(d.entries()[1].outcome, 2.0);
}

TEST(DistributionTest, FromEntriesValidates) {
  auto ok = Distribution::FromEntries({{1.0, 0.4}, {2.0, 0.6}});
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->IsNormalized());
  auto bad = Distribution::FromEntries({{1.0, -0.1}, {2.0, 1.1}});
  EXPECT_FALSE(bad.ok());
}

TEST(DistributionTest, NormalizationCheck) {
  Distribution d;
  d.AddMass(1.0, 0.5);
  EXPECT_FALSE(d.IsNormalized());
  d.AddMass(3.0, 0.5);
  EXPECT_TRUE(d.IsNormalized());
}

TEST(DistributionTest, ExpectationAndVariance) {
  // Paper Example 3: COUNT distribution {1: 0.16, 2: 0.48, 3: 0.36}.
  Distribution d;
  d.AddMass(1.0, 0.16);
  d.AddMass(2.0, 0.48);
  d.AddMass(3.0, 0.36);
  EXPECT_NEAR(*d.Expectation(), 2.2, 1e-12);
  // E[X^2] = 0.16 + 4*0.48 + 9*0.36 = 5.32; Var = 5.32 - 4.84 = 0.48.
  EXPECT_NEAR(*d.Variance(), 0.48, 1e-12);
}

TEST(DistributionTest, Quantiles) {
  Distribution d;
  d.AddMass(10.0, 0.25);
  d.AddMass(20.0, 0.5);
  d.AddMass(30.0, 0.25);
  EXPECT_DOUBLE_EQ(*d.Quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(*d.Quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(*d.Quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(*d.Quantile(0.75), 20.0);
  EXPECT_DOUBLE_EQ(*d.Quantile(1.0), 30.0);
  EXPECT_FALSE(d.Quantile(-0.1).ok());
  EXPECT_FALSE(d.Quantile(1.1).ok());
}

TEST(DistributionTest, PruneDropsDustAndRescales) {
  Distribution d;
  d.AddMass(1.0, 0.5);
  d.AddMass(2.0, 0.5);
  d.AddMass(3.0, 1e-15);
  d.Prune(1e-12);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.IsNormalized());
}

TEST(DistributionTest, TotalVariationDistance) {
  Distribution a;
  a.AddMass(1.0, 0.5);
  a.AddMass(2.0, 0.5);
  Distribution b;
  b.AddMass(1.0, 0.5);
  b.AddMass(3.0, 0.5);
  EXPECT_DOUBLE_EQ(Distribution::TotalVariationDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(Distribution::TotalVariationDistance(a, b), 0.5);
}

TEST(DistributionTest, TotalVariationDistanceApproxToleratesJitter) {
  Distribution a;
  a.AddMass(1.0, 0.5);
  a.AddMass(2.0, 0.5);
  Distribution b;
  b.AddMass(1.0 + 1e-10, 0.5);
  b.AddMass(2.0 - 1e-10, 0.5);
  EXPECT_GT(Distribution::TotalVariationDistance(a, b), 0.9);  // exact: far
  EXPECT_NEAR(Distribution::TotalVariationDistanceApprox(a, b, 1e-6), 0.0,
              1e-12);
}

TEST(DistributionTest, ToString) {
  Distribution d;
  d.AddMass(3.0, 0.6);
  d.AddMass(2.0, 0.4);
  EXPECT_EQ(d.ToString(), "{2: 0.4, 3: 0.6}");
}

TEST(DistributionTest, KolmogorovSmirnovDistance) {
  Distribution a;
  a.AddMass(1.0, 0.5);
  a.AddMass(2.0, 0.5);
  EXPECT_DOUBLE_EQ(Distribution::KolmogorovSmirnovDistance(a, a), 0.0);

  Distribution b;
  b.AddMass(1.0, 0.5);
  b.AddMass(3.0, 0.5);
  // CDFs agree except on [2, 3): |1.0 - 0.5| = 0.5.
  EXPECT_DOUBLE_EQ(Distribution::KolmogorovSmirnovDistance(a, b), 0.5);

  // KS is robust to small outcome jitter where TV is not.
  Distribution c;
  c.AddMass(1.0 + 1e-9, 0.5);
  c.AddMass(2.0 + 1e-9, 0.5);
  EXPECT_GT(Distribution::TotalVariationDistance(a, c), 0.9);
  EXPECT_LE(Distribution::KolmogorovSmirnovDistance(a, c), 0.5);

  // Disjoint supports: KS = 1.
  Distribution d;
  d.AddMass(10.0, 1.0);
  EXPECT_DOUBLE_EQ(Distribution::KolmogorovSmirnovDistance(a, d), 1.0);
}

TEST(DistributionTest, HistogramPartitionsMass) {
  Distribution d;
  d.AddMass(0.0, 0.25);
  d.AddMass(5.0, 0.25);
  d.AddMass(9.0, 0.25);
  d.AddMass(10.0, 0.25);
  const auto bins = d.ToHistogram(2);
  ASSERT_TRUE(bins.ok());
  ASSERT_EQ(bins->size(), 2u);
  EXPECT_DOUBLE_EQ((*bins)[0].low, 0.0);
  EXPECT_DOUBLE_EQ((*bins)[0].high, 5.0);
  EXPECT_DOUBLE_EQ((*bins)[1].high, 10.0);
  // 0.0 in bin 0; 5.0, 9.0, 10.0 in bin 1 (5.0 sits on the boundary and
  // belongs to the upper bin; 10.0 is the inclusive top endpoint).
  EXPECT_DOUBLE_EQ((*bins)[0].mass, 0.25);
  EXPECT_DOUBLE_EQ((*bins)[1].mass, 0.75);
  double total = 0;
  for (const auto& b : *bins) total += b.mass;
  EXPECT_NEAR(total, d.TotalMass(), 1e-12);
}

TEST(DistributionTest, HistogramEdgeCases) {
  Distribution d;
  EXPECT_FALSE(d.ToHistogram(4).ok());  // empty
  d.AddMass(3.0, 1.0);
  EXPECT_FALSE(d.ToHistogram(0).ok());  // zero bins
  const auto point = d.ToHistogram(4);  // single-point support
  ASSERT_TRUE(point.ok());
  ASSERT_EQ(point->size(), 1u);
  EXPECT_DOUBLE_EQ((*point)[0].mass, 1.0);
}

TEST(DistributionTest, RangeIsSupportHull) {
  Distribution d;
  d.AddMass(5.0, 0.1);
  d.AddMass(-2.0, 0.2);
  d.AddMass(3.0, 0.7);
  EXPECT_EQ(*d.ToRange(), (Interval{-2.0, 5.0}));
}

}  // namespace
}  // namespace aqua
