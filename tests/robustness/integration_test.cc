// Cross-module integration/stress checks on a realistic-size workload:
// every semantics combination the engine claims to support must answer,
// and the answers must satisfy the structural relations between the three
// aggregate semantics.

#include <cmath>

#include <gtest/gtest.h>

#include "aqua/core/clt.h"
#include "aqua/core/engine.h"
#include "aqua/core/mediator.h"
#include "aqua/mapping/serialize.h"
#include "aqua/query/view.h"
#include "aqua/workload/ebay.h"
#include "aqua/workload/synthetic.h"

namespace aqua {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(20090329);  // ICDE'09 week
    SyntheticOptions opts;
    opts.num_tuples = 20000;
    opts.num_attributes = 12;
    opts.num_mappings = 6;
    workload_ = *GenerateSyntheticWorkload(opts, rng);
  }
  Engine engine_;
  SyntheticWorkload workload_{};
};

TEST_F(IntegrationFixture, StructuralRelationsAcrossSemantics) {
  for (auto func :
       {AggregateFunction::kCount, AggregateFunction::kSum,
        AggregateFunction::kAvg, AggregateFunction::kMin,
        AggregateFunction::kMax}) {
    const AggregateQuery q = workload_.MakeQuery(func);
    for (auto ms : {MappingSemantics::kByTable, MappingSemantics::kByTuple}) {
      const auto range = engine_.Answer(q, workload_.pmapping, workload_.table,
                                        ms, AggregateSemantics::kRange);
      ASSERT_TRUE(range.ok())
          << AggregateFunctionToString(func) << " "
          << MappingSemanticsToString(ms) << ": "
          << range.status().ToString();

      // Expected value (when PTIME) lies inside the range.
      const bool expected_is_ptime =
          ms == MappingSemantics::kByTable ||
          func == AggregateFunction::kCount || func == AggregateFunction::kSum;
      if (expected_is_ptime) {
        const auto ev =
            engine_.Answer(q, workload_.pmapping, workload_.table, ms,
                           AggregateSemantics::kExpectedValue);
        ASSERT_TRUE(ev.ok());
        EXPECT_GE(ev->expected_value, range->range.low - 1e-6);
        EXPECT_LE(ev->expected_value, range->range.high + 1e-6);
      }

      // Distribution (when PTIME) is normalised, its support lies in the
      // range, and its expectation matches the expected-value semantics.
      const bool dist_is_ptime = ms == MappingSemantics::kByTable ||
                                 func == AggregateFunction::kCount;
      if (dist_is_ptime) {
        const auto dist =
            engine_.Answer(q, workload_.pmapping, workload_.table, ms,
                           AggregateSemantics::kDistribution);
        ASSERT_TRUE(dist.ok());
        EXPECT_TRUE(dist->distribution.IsNormalized(1e-6));
        const auto hull = dist->distribution.ToRange();
        ASSERT_TRUE(hull.ok());
        EXPECT_GE(hull->low, range->range.low - 1e-6);
        EXPECT_LE(hull->high, range->range.high + 1e-6);
      }

      // By-table range nests inside by-tuple range.
      if (ms == MappingSemantics::kByTuple) {
        const auto table_range =
            engine_.Answer(q, workload_.pmapping, workload_.table,
                           MappingSemantics::kByTable,
                           AggregateSemantics::kRange);
        ASSERT_TRUE(table_range.ok());
        EXPECT_TRUE(range->range.Covers(table_range->range))
            << AggregateFunctionToString(func);
      }
    }
  }
}

TEST_F(IntegrationFixture, Theorem4AtScale) {
  const AggregateQuery q = workload_.MakeQuery(AggregateFunction::kSum);
  const auto by_tuple =
      engine_.Answer(q, workload_.pmapping, workload_.table,
                     MappingSemantics::kByTuple,
                     AggregateSemantics::kExpectedValue);
  const auto by_table =
      engine_.Answer(q, workload_.pmapping, workload_.table,
                     MappingSemantics::kByTable,
                     AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(by_tuple.ok());
  ASSERT_TRUE(by_table.ok());
  EXPECT_NEAR(by_tuple->expected_value, by_table->expected_value,
              1e-6 * std::abs(by_table->expected_value));
}

TEST_F(IntegrationFixture, CltMeanMatchesExpectedSumAtScale) {
  const AggregateQuery q = workload_.MakeQuery(AggregateFunction::kSum);
  const auto clt =
      ByTupleCLT::ApproxSum(q, workload_.pmapping, workload_.table);
  const auto ev = engine_.Answer(q, workload_.pmapping, workload_.table,
                                 MappingSemantics::kByTuple,
                                 AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(clt.ok());
  ASSERT_TRUE(ev.ok());
  EXPECT_NEAR(clt->mean, ev->expected_value,
              1e-6 * std::abs(ev->expected_value));
}

TEST_F(IntegrationFixture, GroupedAnswersRollUpToUngrouped) {
  // Grouping by the certain id yields one group per tuple; the expected
  // COUNT over the whole table equals the sum of per-group expectations
  // (linearity).
  AggregateQuery q = workload_.MakeQuery(AggregateFunction::kCount);
  const auto whole =
      engine_.Answer(q, workload_.pmapping, workload_.table,
                     MappingSemantics::kByTuple,
                     AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(whole.ok());
  q.group_by = "id";
  const auto grouped = engine_.AnswerGrouped(
      q, workload_.pmapping, workload_.table, MappingSemantics::kByTuple,
      AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  double total = 0.0;
  for (const GroupedAnswer& g : *grouped) total += g.answer.expected_value;
  EXPECT_NEAR(total, whole->expected_value, 1e-6);
}

TEST(IntegrationPipelineTest, ViewMediatorSerializationEndToEnd) {
  // Full pipeline: simulate bids -> SPJ view (certain part) -> serialize
  // and reload the p-mapping -> mediator answers against the view.
  Rng rng(777);
  EbayOptions opts;
  opts.num_auctions = 200;
  const Table bids = *GenerateEbayTable(opts, rng);

  // Certain-side view: drop the first day of each auction.
  const auto view = View::Select(
      bids, Predicate::Comparison("time", CompareOp::kGe, Value::Double(1.0)));
  ASSERT_TRUE(view.ok());
  ASSERT_LT(view->num_rows(), bids.num_rows());

  const std::string mapping_text =
      PMappingText::Format(*MakeEbayPMapping(0.25));
  const auto schema_pm = PMappingText::ParseSchema(mapping_text);
  ASSERT_TRUE(schema_pm.ok());

  Mediator mediator;
  ASSERT_TRUE(mediator.RegisterTable("S2", *std::move(view)).ok());
  ASSERT_TRUE(mediator.SetSchemaPMapping(*schema_pm).ok());

  const auto range = mediator.AnswerSql(
      "SELECT MAX(price) FROM T2", MappingSemantics::kByTuple,
      AggregateSemantics::kRange);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  EXPECT_GT(range->range.high, 0.0);
  const auto per_auction = mediator.AnswerGroupedSql(
      "SELECT MAX(DISTINCT price) FROM T2 GROUP BY auctionId",
      MappingSemantics::kByTuple, AggregateSemantics::kRange);
  ASSERT_TRUE(per_auction.ok());
  EXPECT_GT(per_auction->size(), 100u);
}

}  // namespace
}  // namespace aqua
