// Deterministic tests for resource-governed execution and graceful
// degradation: deadlines interrupt the naive enumerator mid-flight, step
// budgets are exact, degrade=sample transparently re-answers with the
// Monte-Carlo sampler, and cancellation is always honoured.

#include <gtest/gtest.h>

#include <chrono>

#include "aqua/common/failpoint.h"
#include "aqua/core/by_tuple_sum.h"
#include "aqua/core/engine.h"
#include "aqua/workload/ebay.h"

namespace aqua {
namespace {

class DegradeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // 24 tuples x 2 candidate mappings = 2^24 ~ 16.7M sequences: seconds
    // of naive enumeration, so a 50ms deadline always fires mid-flight.
    EbayOptions opts;
    opts.num_auctions = 6;
    opts.min_bids = 4;
    opts.max_bids = 4;
    Rng rng(11);
    table_ = *GenerateEbayTable(opts, rng);
    pm_ = *MakeEbayPMapping();
    sum_all_.func = AggregateFunction::kSum;
    sum_all_.attribute = "price";
    sum_all_.relation = "T2";
    sum_all_.where = Predicate::True();
    avg_all_ = sum_all_;
    avg_all_.func = AggregateFunction::kAvg;
  }

  // Engine options that force the exponential path for SUM distribution:
  // a sequence budget far above 2^24 so only the ExecContext can stop it.
  EngineOptions ForcedNaive() const {
    EngineOptions options;
    options.naive.max_sequences = 1ull << 40;
    return options;
  }

  Table table_;
  PMapping pm_;
  AggregateQuery sum_all_;
  AggregateQuery avg_all_;
};

TEST_F(DegradeFixture, DeadlineInterruptsNaiveEnumerationMidFlight) {
  EngineOptions options = ForcedNaive();
  options.limits.timeout_ms = 50;
  const Engine engine(options);
  const auto start = std::chrono::steady_clock::now();
  const auto answer =
      engine.Answer(sum_all_, pm_, table_, MappingSemantics::kByTuple,
                    AggregateSemantics::kDistribution);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded)
      << answer.status().ToString();
  // The deadline is polled every kCheckInterval sequences, so the overrun
  // is bounded. The bound here is deliberately loose (20x the deadline)
  // to tolerate a loaded CI machine; full enumeration takes far longer.
  EXPECT_LT(elapsed.count(), 1000) << elapsed.count() << "ms";
}

TEST_F(DegradeFixture, StepBudgetFailsDeterministically) {
  EngineOptions options = ForcedNaive();
  options.limits.max_steps = 10000;  // << 2^24 sequences
  const Engine engine(options);
  const auto answer =
      engine.Answer(sum_all_, pm_, table_, MappingSemantics::kByTuple,
                    AggregateSemantics::kDistribution);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted)
      << answer.status().ToString();
}

TEST_F(DegradeFixture, MemoryBudgetStopsOutcomeMapGrowth) {
  // SUM over continuous prices makes nearly every sequence a distinct
  // outcome, so the outcome map grows without bound; a byte budget stops
  // it even though steps and time are unlimited.
  EngineOptions options = ForcedNaive();
  options.limits.max_bytes = 64 * 1024;
  const Engine engine(options);
  const auto answer =
      engine.Answer(sum_all_, pm_, table_, MappingSemantics::kByTuple,
                    AggregateSemantics::kDistribution);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted)
      << answer.status().ToString();
}

TEST_F(DegradeFixture, DegradeSampleAnswersDistributionApproximately) {
  EngineOptions options = ForcedNaive();
  options.limits.timeout_ms = 50;
  options.degrade = DegradePolicy::kSample;
  const Engine engine(options);
  const auto start = std::chrono::steady_clock::now();
  const auto answer =
      engine.Answer(sum_all_, pm_, table_, MappingSemantics::kByTuple,
                    AggregateSemantics::kDistribution);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(answer->approximate);
  EXPECT_NE(answer->note.find("degraded to sampling"), std::string::npos)
      << answer->note;
  EXPECT_EQ(answer->semantics, AggregateSemantics::kDistribution);
  // Exact pass + degraded pass each run under their own 50ms budget; the
  // loose factor absorbs CI noise.
  EXPECT_LT(elapsed.count(), 2000) << elapsed.count() << "ms";

  // The empirical distribution's mean must agree with the exact expected
  // SUM (Theorem 4 gives it in PTIME) well within sampling error.
  const auto exact = ByTupleSum::ExpectedSumLinear(sum_all_, pm_, table_);
  ASSERT_TRUE(exact.ok());
  const auto approx_mean = answer->distribution.Expectation();
  ASSERT_TRUE(approx_mean.ok());
  EXPECT_NEAR(*approx_mean, *exact, 0.05 * *exact);
}

TEST_F(DegradeFixture, DegradeSampleAnswersExpectedValueApproximately) {
  // AVG expected value is an open Figure-6 cell (naive only). With no
  // WHERE clause every tuple contributes under both mappings, so
  // AVG = SUM/n with probability one and E[AVG] = E[SUM]/n is available
  // in closed form to validate the estimate.
  EngineOptions options = ForcedNaive();
  options.limits.max_steps = 100000;  // deterministic budget failure
  options.degrade = DegradePolicy::kSample;
  const Engine engine(options);
  const auto answer =
      engine.Answer(avg_all_, pm_, table_, MappingSemantics::kByTuple,
                    AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(answer->approximate);
  EXPECT_NE(answer->note.find("std error"), std::string::npos)
      << answer->note;
  const auto exact_sum = ByTupleSum::ExpectedSumLinear(sum_all_, pm_, table_);
  ASSERT_TRUE(exact_sum.ok());
  const double exact_avg = *exact_sum / static_cast<double>(table_.num_rows());
  EXPECT_NEAR(answer->expected_value, exact_avg, 0.05 * exact_avg);
}

TEST_F(DegradeFixture, DegradedSamplerIsBudgetTruncatedNotFailed) {
  // A step budget that lets the sampler draw only a few hundred of its
  // 10k requested samples: the degraded pass must return a truncated
  // estimate, not propagate the second budget failure.
  EngineOptions options = ForcedNaive();
  options.limits.max_steps = 10000;  // ~400 samples at 25 steps each
  options.degrade = DegradePolicy::kSample;
  const Engine engine(options);
  const auto answer =
      engine.Answer(sum_all_, pm_, table_, MappingSemantics::kByTuple,
                    AggregateSemantics::kDistribution);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(answer->approximate);
  EXPECT_NE(answer->note.find("budget-truncated"), std::string::npos)
      << answer->note;
}

TEST_F(DegradeFixture, DegradedAnswerStatsCoverBothPasses) {
  // A deterministic step-budget failure on the exact pass, then the
  // sampling pass: the attached QueryStats must record the degradation
  // reason, the sample count, and the work of BOTH passes — the exact
  // pass alone charges ~max_steps before failing, so a steps total above
  // that proves the sampling pass's charges were added on top.
  EngineOptions options = ForcedNaive();
  options.limits.max_steps = 10000;
  options.degrade = DegradePolicy::kSample;
  const Engine engine(options);
  const auto answer =
      engine.Answer(sum_all_, pm_, table_, MappingSemantics::kByTuple,
                    AggregateSemantics::kDistribution);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  const QueryStats& stats = answer->stats;
  EXPECT_TRUE(stats.degraded);
  EXPECT_NE(stats.degrade_reason.find("resource-exhausted"),
            std::string::npos)
      << stats.degrade_reason;
  EXPECT_GT(stats.samples, 0u);
  EXPECT_GT(stats.steps, 10000u) << "stats must include the exact pass's "
                                    "charges, not just the sampling pass";
  EXPECT_GE(stats.wall_time_us, 0);
  EXPECT_EQ(stats.rows, table_.num_rows());
  // The human-readable rendering surfaces the degradation.
  EXPECT_NE(stats.ToString().find("degraded"), std::string::npos);
}

TEST_F(DegradeFixture, DegradedStatsCarrySamplerSeedForReproduction) {
  // The seed that produced an approximate answer must travel with the
  // stats, so a logged degraded answer can be re-derived exactly by
  // re-running with --sampler-seed=<logged value>.
  EngineOptions options = ForcedNaive();
  options.limits.max_steps = 10000;
  options.degrade = DegradePolicy::kSample;
  options.degrade_sampler.seed = 0xDECADE;
  const Engine engine(options);
  const auto answer =
      engine.Answer(sum_all_, pm_, table_, MappingSemantics::kByTuple,
                    AggregateSemantics::kDistribution);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(answer->stats.degraded);
  EXPECT_EQ(answer->stats.sampler_seed, 0xDECADEu);
  EXPECT_NE(answer->stats.ToString().find("sampler_seed="),
            std::string::npos);

  // Same options, same seed: the approximate answer is reproducible.
  const auto again =
      engine.Answer(sum_all_, pm_, table_, MappingSemantics::kByTuple,
                    AggregateSemantics::kDistribution);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToString(), answer->ToString());
}

TEST_F(DegradeFixture, InjectedResourceExhaustionDegradesLikeRealOne) {
  // The failpoint on the exact pass drives the same ladder as a genuine
  // budget exhaustion: flagged-approximate answer, reason recorded.
  fault::ScopedFailpoint fp("core/engine/exact",
                            "error(resource-exhausted,injected)");
  ASSERT_TRUE(fp.status().ok());
  EngineOptions options;
  options.degrade = DegradePolicy::kSample;
  const Engine engine(options);
  const auto answer =
      engine.Answer(sum_all_, pm_, table_, MappingSemantics::kByTuple,
                    AggregateSemantics::kRange);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(answer->approximate);
  EXPECT_TRUE(answer->stats.degraded);
  EXPECT_NE(answer->stats.degrade_reason.find("resource-exhausted"),
            std::string::npos);
}

TEST_F(DegradeFixture, InjectedNonDegradableErrorSurfacesCleanly) {
  // kUnavailable is not on the degradation ladder: the engine must return
  // it as-is, never silently re-answer with the sampler.
  fault::ScopedFailpoint fp("core/engine/exact", "error(unavailable)");
  ASSERT_TRUE(fp.status().ok());
  EngineOptions options;
  options.degrade = DegradePolicy::kSample;
  const Engine engine(options);
  const auto answer =
      engine.Answer(sum_all_, pm_, table_, MappingSemantics::kByTuple,
                    AggregateSemantics::kRange);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kUnavailable);
}

TEST_F(DegradeFixture, NonDegradedAnswerStatsStayClean) {
  const Engine engine;
  const auto answer =
      engine.Answer(sum_all_, pm_, table_, MappingSemantics::kByTuple,
                    AggregateSemantics::kRange);
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->stats.degraded);
  EXPECT_TRUE(answer->stats.degrade_reason.empty());
  EXPECT_EQ(answer->stats.samples, 0u);
}

TEST_F(DegradeFixture, CancellationIsHonouredNotDegraded) {
  EngineOptions options = ForcedNaive();
  options.degrade = DegradePolicy::kSample;
  const Engine engine(options);
  CancellationToken cancel = CancellationToken::Make();
  cancel.RequestCancel();
  const auto answer =
      engine.Answer(sum_all_, pm_, table_, MappingSemantics::kByTuple,
                    AggregateSemantics::kDistribution, cancel);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kCancelled)
      << answer.status().ToString();
}

TEST_F(DegradeFixture, RangeSemanticsUnaffectedByTightDeadline) {
  // The range cells are linear-time; a 50ms deadline is plenty for 24
  // tuples, so governance must not disturb exact answers that fit.
  EngineOptions options;
  options.limits.timeout_ms = 50;
  const Engine ungoverned;
  const Engine governed(options);
  const auto expect = ungoverned.Answer(sum_all_, pm_, table_,
                                        MappingSemantics::kByTuple,
                                        AggregateSemantics::kRange);
  const auto got = governed.Answer(sum_all_, pm_, table_,
                                   MappingSemantics::kByTuple,
                                   AggregateSemantics::kRange);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_FALSE(got->approximate);
  EXPECT_DOUBLE_EQ(got->range.low, expect->range.low);
  EXPECT_DOUBLE_EQ(got->range.high, expect->range.high);
}

TEST_F(DegradeFixture, ExplainReportsDegradationPolicy) {
  EngineOptions options;
  options.degrade = DegradePolicy::kSample;
  const Engine engine(options);
  const auto plan = engine.Explain(sum_all_, MappingSemantics::kByTuple,
                                   AggregateSemantics::kDistribution);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("degrade=sample"), std::string::npos) << *plan;

  const Engine off;  // default policy
  const auto plain = off.Explain(sum_all_, MappingSemantics::kByTuple,
                                 AggregateSemantics::kDistribution);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->find("degrade=sample"), std::string::npos) << *plain;
}

}  // namespace
}  // namespace aqua
