// Tests for the kResourceExhausted guard rails: the naive enumerator's
// sequence budget at its exact boundary, and the engine's refusal of every
// open Figure-6 cell when naive enumeration is disallowed.

#include <gtest/gtest.h>

#include "aqua/core/engine.h"
#include "aqua/core/naive.h"
#include "aqua/workload/ebay.h"

namespace aqua {
namespace {

class ResourceGuardFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ds2_ = *PaperInstanceDS2();  // 8 tuples
    pm2_ = *MakeEbayPMapping();  // 2 candidate mappings -> 2^8 sequences
    q_ = PaperQueryQ2Prime();
  }

  AggregateQuery WithFunc(AggregateFunction f) const {
    AggregateQuery q = q_;
    q.func = f;
    return q;
  }

  Table ds2_;
  PMapping pm2_;
  AggregateQuery q_;
};

TEST_F(ResourceGuardFixture, NaiveRunsAtExactlyMaxSequences) {
  NaiveOptions options;
  options.max_sequences = 256;  // 2^8, exactly the workload size
  const auto naive = NaiveByTuple::Dist(q_, pm2_, ds2_, options);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
}

TEST_F(ResourceGuardFixture, NaiveRefusesOneSequenceOverBudget) {
  NaiveOptions options;
  options.max_sequences = 255;  // one under 2^8
  const auto naive = NaiveByTuple::Dist(q_, pm2_, ds2_, options);
  ASSERT_FALSE(naive.ok());
  EXPECT_EQ(naive.status().code(), StatusCode::kResourceExhausted);
  // The refusal names the blown budget so callers can tune it.
  EXPECT_NE(naive.status().message().find("2^8"), std::string::npos)
      << naive.status().message();
  EXPECT_NE(naive.status().message().find("255"), std::string::npos)
      << naive.status().message();
}

TEST_F(ResourceGuardFixture, GuardIsCheckedBeforeEnumerating) {
  // A budget the check must refuse without doing any work: if the guard
  // were applied per-sequence instead of up front, this would take years.
  EbayOptions big;
  big.num_auctions = 8;
  big.min_bids = 8;
  big.max_bids = 8;
  Rng rng(7);
  const auto table = GenerateEbayTable(big, rng);  // 64 tuples -> 2^64
  ASSERT_TRUE(table.ok());
  NaiveOptions options;
  options.max_sequences = 1 << 20;
  const auto naive = NaiveByTuple::Dist(PaperQueryQ2Prime(), pm2_, *table,
                                        options);
  ASSERT_FALSE(naive.ok());
  EXPECT_EQ(naive.status().code(), StatusCode::kResourceExhausted);
}

// Every open cell of the paper's Figure 6 — by-tuple SUM distribution, AVG
// distribution, AVG expected value, and (with the exact extremum extension
// switched off) MIN/MAX distribution and expected value — must surface as
// kUnimplemented when naive enumeration is disallowed, not crash, loop, or
// silently answer a different semantics.
TEST_F(ResourceGuardFixture, OpenCellsRefuseWhenNaiveDisallowed) {
  EngineOptions options;
  options.allow_naive = false;
  options.minmax_distribution_exact = false;
  const Engine engine(options);

  struct Cell {
    AggregateFunction func;
    AggregateSemantics semantics;
  };
  const Cell open_cells[] = {
      {AggregateFunction::kSum, AggregateSemantics::kDistribution},
      {AggregateFunction::kAvg, AggregateSemantics::kDistribution},
      {AggregateFunction::kAvg, AggregateSemantics::kExpectedValue},
      {AggregateFunction::kMin, AggregateSemantics::kDistribution},
      {AggregateFunction::kMin, AggregateSemantics::kExpectedValue},
      {AggregateFunction::kMax, AggregateSemantics::kDistribution},
      {AggregateFunction::kMax, AggregateSemantics::kExpectedValue},
  };
  for (const Cell& cell : open_cells) {
    const auto answer =
        engine.Answer(WithFunc(cell.func), pm2_, ds2_,
                      MappingSemantics::kByTuple, cell.semantics);
    ASSERT_FALSE(answer.ok())
        << AggregateFunctionToString(cell.func) << "/"
        << AggregateSemanticsToString(cell.semantics);
    EXPECT_EQ(answer.status().code(), StatusCode::kUnimplemented)
        << answer.status().ToString();
  }
}

TEST_F(ResourceGuardFixture, ClosedCellsStillAnswerWhenNaiveDisallowed) {
  EngineOptions options;
  options.allow_naive = false;
  options.minmax_distribution_exact = false;
  const Engine engine(options);
  // COUNT has PTIME algorithms for all three semantics; SUM keeps range
  // and expected value; ranges exist for everything.
  const auto count_dist =
      engine.Answer(WithFunc(AggregateFunction::kCount), pm2_, ds2_,
                    MappingSemantics::kByTuple,
                    AggregateSemantics::kDistribution);
  EXPECT_TRUE(count_dist.ok()) << count_dist.status().ToString();
  const auto sum_expected =
      engine.Answer(WithFunc(AggregateFunction::kSum), pm2_, ds2_,
                    MappingSemantics::kByTuple,
                    AggregateSemantics::kExpectedValue);
  EXPECT_TRUE(sum_expected.ok()) << sum_expected.status().ToString();
  const auto min_range =
      engine.Answer(WithFunc(AggregateFunction::kMin), pm2_, ds2_,
                    MappingSemantics::kByTuple, AggregateSemantics::kRange);
  EXPECT_TRUE(min_range.ok()) << min_range.status().ToString();
}

// allow_naive=false is an explicit "exact algorithms only" request;
// degradation to sampling must not override it (kUnimplemented is not a
// budget failure).
TEST_F(ResourceGuardFixture, DegradePolicyDoesNotOverrideNaiveRefusal) {
  EngineOptions options;
  options.allow_naive = false;
  options.degrade = DegradePolicy::kSample;
  const Engine engine(options);
  const auto answer =
      engine.Answer(WithFunc(AggregateFunction::kSum), pm2_, ds2_,
                    MappingSemantics::kByTuple,
                    AggregateSemantics::kDistribution);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace aqua
