// Deterministic "fuzz-lite" robustness tests: the parsers must return a
// Status (never crash, hang, or throw) on arbitrary byte soup, token soup,
// and mutated valid inputs.

#include <string>

#include <gtest/gtest.h>

#include "aqua/common/random.h"
#include "aqua/mapping/serialize.h"
#include "aqua/query/parser.h"
#include "aqua/storage/csv.h"
#include "aqua/workload/real_estate.h"

namespace aqua {
namespace {

std::string RandomBytes(Rng& rng, size_t max_len) {
  const size_t len = static_cast<size_t>(rng.UniformInt(0, max_len));
  std::string s(len, '\0');
  for (char& c : s) {
    c = static_cast<char>(rng.UniformInt(1, 126));  // printable-ish, no NUL
  }
  return s;
}

std::string RandomTokenSoup(Rng& rng, size_t max_tokens) {
  static const char* kTokens[] = {
      "SELECT", "FROM",  "WHERE", "GROUP",  "BY",    "HAVING", "AND",
      "OR",     "NOT",   "COUNT", "SUM",    "AVG",   "MIN",    "MAX",
      "(",      ")",     "*",     ",",      "<",     ">",      "=",
      "<=",     ">=",    "<>",    "'txt'",  "42",    "3.14",   "tbl",
      "attr",   "a.b",   ";",     "-",      "DISTINCT", "AS",  "1e9",
  };
  std::string s;
  const size_t n = 1 + static_cast<size_t>(rng.UniformInt(0, max_tokens));
  for (size_t i = 0; i < n; ++i) {
    s += kTokens[rng.UniformInt(0, std::size(kTokens) - 1)];
    s += ' ';
  }
  return s;
}

TEST(FuzzTest, SqlParserSurvivesRandomBytes) {
  Rng rng(0xF00D);
  for (int i = 0; i < 2000; ++i) {
    const std::string input = RandomBytes(rng, 120);
    (void)SqlParser::Parse(input);  // must simply return
  }
}

TEST(FuzzTest, SqlParserSurvivesTokenSoup) {
  Rng rng(0xBEEF);
  int parsed_ok = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::string input = RandomTokenSoup(rng, 24);
    if (SqlParser::Parse(input).ok()) ++parsed_ok;
  }
  // Sanity: some soup strings happen to be valid queries.
  EXPECT_GE(parsed_ok, 0);
}

TEST(FuzzTest, SqlParserSurvivesMutatedValidQuery) {
  Rng rng(0xCAFE);
  const std::string base =
      "SELECT SUM(price) FROM T2 WHERE auctionId = 34 GROUP BY auctionId "
      "HAVING COUNT(*) > 1";
  for (int i = 0; i < 3000; ++i) {
    std::string mutated = base;
    const size_t pos =
        static_cast<size_t>(rng.UniformInt(0, mutated.size() - 1));
    switch (rng.UniformInt(0, 2)) {
      case 0:
        mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
        break;
      case 1:
        mutated.erase(pos, 1);
        break;
      default:
        mutated.insert(pos, 1, static_cast<char>(rng.UniformInt(32, 126)));
        break;
    }
    (void)SqlParser::Parse(mutated);
  }
}

TEST(FuzzTest, SqlParserRejectsDeeplyNestedExpressions) {
  // Each parenthesis / NOT level recurses once; without the parser's depth
  // limit these inputs overflow the stack instead of returning a Status.
  const std::string core = "attr = 1";
  // The limit counts all recursive productions (the query, each paren,
  // each NOT), so the paren boundary sits just under 200; stay clear of
  // it on the "accept" side and far over it on the "reject" side.
  for (size_t depth : {10u, 150u, 300u, 5000u, 100000u}) {
    const std::string parens = "SELECT COUNT(*) FROM t WHERE " +
                               std::string(depth, '(') + core +
                               std::string(depth, ')');
    const auto by_parens = SqlParser::Parse(parens);
    if (depth <= 150) {
      EXPECT_TRUE(by_parens.ok()) << depth << ": "
                                  << by_parens.status().ToString();
    } else {
      ASSERT_FALSE(by_parens.ok()) << depth;
      EXPECT_EQ(by_parens.status().code(), StatusCode::kInvalidArgument);
      EXPECT_NE(by_parens.status().message().find("nesting"),
                std::string::npos)
          << by_parens.status().ToString();
    }

    std::string nots = "SELECT COUNT(*) FROM t WHERE ";
    for (size_t i = 0; i < depth; ++i) nots += "NOT ";
    nots += core;
    const auto by_nots = SqlParser::Parse(nots);
    if (depth <= 150) {
      EXPECT_TRUE(by_nots.ok()) << depth << ": "
                                << by_nots.status().ToString();
    } else {
      ASSERT_FALSE(by_nots.ok()) << depth;
      EXPECT_EQ(by_nots.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(FuzzTest, SqlParserRejectsDeeplyNestedSubqueries) {
  // "FROM ( SELECT ... FROM ( ..." recurses through ParseQuery. The
  // grammar only supports one nesting level, but the depth limit must
  // stop the recursion before the inner-kind check can reject it.
  std::string sql;
  for (int i = 0; i < 100000; ++i) sql += "SELECT MIN(a) FROM ( ";
  sql += "SELECT COUNT(*) FROM t";
  const auto parsed = SqlParser::Parse(sql);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(FuzzTest, SqlParserSurvivesTruncatedStatements) {
  // Every prefix of valid statements must fail cleanly (or parse, for the
  // prefixes that happen to be complete queries) — truncation mid-token,
  // mid-literal, and mid-clause included.
  const std::string statements[] = {
      "SELECT SUM(price) FROM T2 WHERE auctionId = 34 GROUP BY auctionId "
      "HAVING COUNT(*) > 1;",
      "SELECT AVG(m) FROM (SELECT MAX(DISTINCT price) AS m FROM T2 "
      "WHERE price > 100 GROUP BY auctionId) AS closing;",
      "SELECT COUNT(*) FROM t WHERE a BETWEEN -1.5e3 AND 'x''y' OR NOT "
      "(b IN (1, 2, 3) AND c <> 4);",
  };
  for (const std::string& full : statements) {
    for (size_t len = 0; len < full.size(); ++len) {
      (void)SqlParser::Parse(full.substr(0, len));
    }
  }
}

TEST(FuzzTest, CsvParserSurvivesRandomBytes) {
  Rng rng(0xD00D);
  const Schema schema = *Schema::Make({{"a", ValueType::kInt64},
                                       {"b", ValueType::kDouble},
                                       {"c", ValueType::kString},
                                       {"d", ValueType::kDate}});
  for (int i = 0; i < 2000; ++i) {
    (void)Csv::Parse(RandomBytes(rng, 200), schema);
  }
}

TEST(FuzzTest, CsvParserSurvivesMutatedValidInput) {
  Rng rng(0xACDC);
  const Schema schema = *Schema::Make(
      {{"a", ValueType::kInt64}, {"d", ValueType::kDate}});
  const std::string base = "a,d\n1,2008-01-05\n2,1/30/2008\n\"3\",2008-02-15\n";
  for (int i = 0; i < 3000; ++i) {
    std::string mutated = base;
    const size_t pos =
        static_cast<size_t>(rng.UniformInt(0, mutated.size() - 1));
    mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
    (void)Csv::Parse(mutated, schema);
  }
}

TEST(FuzzTest, PMappingTextSurvivesRandomAndMutatedInput) {
  Rng rng(0xFACE);
  const std::string base = PMappingText::Format(*MakeRealEstatePMapping());
  for (int i = 0; i < 2000; ++i) {
    (void)PMappingText::ParseSchema(RandomBytes(rng, 150));
    std::string mutated = base;
    const size_t pos =
        static_cast<size_t>(rng.UniformInt(0, mutated.size() - 1));
    mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
    (void)PMappingText::ParseSchema(mutated);
  }
}

TEST(FuzzTest, DateParseSurvivesRandomInput) {
  Rng rng(0x5EED);
  for (int i = 0; i < 5000; ++i) {
    (void)Date::Parse(RandomBytes(rng, 20));
  }
}

}  // namespace
}  // namespace aqua
