#include <gtest/gtest.h>

#include "aqua/core/engine.h"
#include "aqua/query/parser.h"

namespace aqua {
namespace {

AggregateQuery Query(const char* sql) { return *SqlParser::ParseSimple(sql); }

TEST(ExplainTest, ByTableAlwaysGeneric) {
  const Engine engine;
  for (const char* sql :
       {"SELECT COUNT(*) FROM t", "SELECT SUM(v) FROM t",
        "SELECT AVG(v) FROM t", "SELECT MIN(v) FROM t",
        "SELECT MAX(v) FROM t"}) {
    for (auto as :
         {AggregateSemantics::kRange, AggregateSemantics::kDistribution,
          AggregateSemantics::kExpectedValue}) {
      const auto e = engine.Explain(Query(sql), MappingSemantics::kByTable, as);
      ASSERT_TRUE(e.ok());
      EXPECT_NE(e->find("ByTableAggregateQuery"), std::string::npos) << sql;
    }
  }
}

TEST(ExplainTest, ByTuplePtimeCells) {
  const Engine engine;
  struct Case {
    const char* sql;
    AggregateSemantics semantics;
    const char* expected;
  };
  const Case cases[] = {
      {"SELECT COUNT(*) FROM t", AggregateSemantics::kRange,
       "ByTupleRangeCOUNT"},
      {"SELECT COUNT(*) FROM t", AggregateSemantics::kDistribution,
       "ByTuplePDCOUNT"},
      {"SELECT COUNT(*) FROM t", AggregateSemantics::kExpectedValue,
       "linearity of expectation"},
      {"SELECT SUM(v) FROM t", AggregateSemantics::kRange, "ByTupleRangeSUM"},
      {"SELECT SUM(v) FROM t", AggregateSemantics::kExpectedValue,
       "Theorem 4"},
      {"SELECT AVG(v) FROM t", AggregateSemantics::kRange, "tight variant"},
      {"SELECT MIN(v) FROM t", AggregateSemantics::kRange, "ByTupleRangeMIN"},
      {"SELECT MAX(v) FROM t", AggregateSemantics::kRange, "ByTupleRangeMAX"},
  };
  for (const Case& c : cases) {
    const auto e =
        engine.Explain(Query(c.sql), MappingSemantics::kByTuple, c.semantics);
    ASSERT_TRUE(e.ok()) << c.sql;
    EXPECT_NE(e->find(c.expected), std::string::npos)
        << c.sql << " -> " << *e;
  }
}

TEST(ExplainTest, OpenCellsNameTheNaiveFallback) {
  const Engine engine;
  // SUM/distribution remains open even with the extensions enabled.
  const auto sum = engine.Explain(Query("SELECT SUM(v) FROM t"),
                                  MappingSemantics::kByTuple,
                                  AggregateSemantics::kDistribution);
  ASSERT_TRUE(sum.ok());
  EXPECT_NE(sum->find("NaiveByTuple"), std::string::npos);
  EXPECT_NE(sum->find("l^n"), std::string::npos);
  // MAX/distribution defaults to the exact extension...
  const auto max_exact = engine.Explain(Query("SELECT MAX(v) FROM t"),
                                        MappingSemantics::kByTuple,
                                        AggregateSemantics::kDistribution);
  ASSERT_TRUE(max_exact.ok());
  EXPECT_NE(max_exact->find("CDF factorisation"), std::string::npos);
  // ...and to naive when the extension is switched off.
  EngineOptions opts;
  opts.minmax_distribution_exact = false;
  const Engine paper_mode(opts);
  const auto max_naive = paper_mode.Explain(Query("SELECT MAX(v) FROM t"),
                                            MappingSemantics::kByTuple,
                                            AggregateSemantics::kDistribution);
  ASSERT_TRUE(max_naive.ok());
  EXPECT_NE(max_naive->find("NaiveByTuple"), std::string::npos);
}

TEST(ExplainTest, OptionsChangeTheExplanation) {
  EngineOptions opts;
  opts.allow_naive = false;
  opts.avg_range_paper = true;
  opts.count_expected_via_distribution = true;
  const Engine engine(opts);
  EXPECT_NE(engine
                .Explain(Query("SELECT AVG(v) FROM t"),
                         MappingSemantics::kByTuple, AggregateSemantics::kRange)
                ->find("paper formula"),
            std::string::npos);
  EXPECT_NE(engine
                .Explain(Query("SELECT COUNT(*) FROM t"),
                         MappingSemantics::kByTuple,
                         AggregateSemantics::kExpectedValue)
                ->find("via distribution"),
            std::string::npos);
  EXPECT_NE(engine
                .Explain(Query("SELECT SUM(v) FROM t"),
                         MappingSemantics::kByTuple,
                         AggregateSemantics::kDistribution)
                ->find("unimplemented"),
            std::string::npos);
}

TEST(ExplainTest, GoldenSweepOverEveryCell) {
  // The full (operator x mapping semantics x aggregate semantics) matrix,
  // pinned as exact strings with allow_naive both on and off. QueryStats
  // reuses these texts verbatim as its `algorithm` field, so any drift
  // here is an observable schema change for --stats consumers.
  constexpr const char* kByTable =
      "ByTableAggregateQuery (reformulate per candidate, execute, "
      "CombineResults), O(l) scans = O(l*n)";
  constexpr const char* kNaiveOn =
      "NaiveByTuple (enumerate mapping sequences), O(l^n * n)";
  constexpr const char* kNaiveOff =
      "unimplemented (no PTIME algorithm; "
      "EngineOptions::allow_naive disabled)";
  constexpr const char* kCdf =
      "exact extremum distribution via CDF factorisation "
      "(extension beyond the paper), O(n*m log(n*m))";
  struct Cell {
    const char* sql;
    AggregateSemantics semantics;
    const char* expected;  // by-tuple; nullptr = the naive-dependent text
  };
  const Cell cells[] = {
      {"SELECT COUNT(*) FROM t", AggregateSemantics::kRange,
       "ByTupleRangeCOUNT, O(n*m)"},
      {"SELECT COUNT(*) FROM t", AggregateSemantics::kDistribution,
       "ByTuplePDCOUNT, O(m*n + n^2)"},
      {"SELECT COUNT(*) FROM t", AggregateSemantics::kExpectedValue,
       "ByTupleExpValCOUNT direct (linearity of expectation), O(n*m)"},
      {"SELECT SUM(v) FROM t", AggregateSemantics::kRange,
       "ByTupleRangeSUM, O(n*m)"},
      {"SELECT SUM(v) FROM t", AggregateSemantics::kDistribution, nullptr},
      {"SELECT SUM(v) FROM t", AggregateSemantics::kExpectedValue,
       "ByTupleExpValSUM = by-table expected value (Theorem 4), O(n*m)"},
      {"SELECT AVG(v) FROM t", AggregateSemantics::kRange,
       "ByTupleRangeAVG (tight variant), O(n*m + n log n)"},
      {"SELECT AVG(v) FROM t", AggregateSemantics::kDistribution, nullptr},
      {"SELECT AVG(v) FROM t", AggregateSemantics::kExpectedValue, nullptr},
      {"SELECT MIN(v) FROM t", AggregateSemantics::kRange,
       "ByTupleRangeMIN, O(n*m)"},
      {"SELECT MIN(v) FROM t", AggregateSemantics::kDistribution, kCdf},
      {"SELECT MIN(v) FROM t", AggregateSemantics::kExpectedValue, kCdf},
      {"SELECT MAX(v) FROM t", AggregateSemantics::kRange,
       "ByTupleRangeMAX, O(n*m)"},
      {"SELECT MAX(v) FROM t", AggregateSemantics::kDistribution, kCdf},
      {"SELECT MAX(v) FROM t", AggregateSemantics::kExpectedValue, kCdf},
  };
  for (const bool allow_naive : {true, false}) {
    EngineOptions opts;
    opts.allow_naive = allow_naive;
    const Engine engine(opts);
    for (const Cell& cell : cells) {
      const AggregateQuery q = Query(cell.sql);
      // By-table: one generic plan, independent of operator and naive.
      const auto bt =
          engine.Explain(q, MappingSemantics::kByTable, cell.semantics);
      ASSERT_TRUE(bt.ok()) << cell.sql;
      EXPECT_EQ(*bt, kByTable) << cell.sql;
      // By-tuple: the pinned per-cell text.
      const auto e =
          engine.Explain(q, MappingSemantics::kByTuple, cell.semantics);
      ASSERT_TRUE(e.ok()) << cell.sql;
      const char* expected =
          cell.expected ? cell.expected : (allow_naive ? kNaiveOn : kNaiveOff);
      EXPECT_EQ(*e, expected)
          << cell.sql << " allow_naive=" << allow_naive << " semantics="
          << AggregateSemanticsToString(cell.semantics);
    }
  }
}

TEST(ExplainTest, InvalidQueryRejected) {
  const Engine engine;
  AggregateQuery bad;  // no relation, null predicate
  EXPECT_FALSE(engine
                   .Explain(bad, MappingSemantics::kByTuple,
                            AggregateSemantics::kRange)
                   .ok());
}

}  // namespace
}  // namespace aqua
