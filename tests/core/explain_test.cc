#include <gtest/gtest.h>

#include "aqua/core/engine.h"
#include "aqua/query/parser.h"

namespace aqua {
namespace {

AggregateQuery Query(const char* sql) { return *SqlParser::ParseSimple(sql); }

TEST(ExplainTest, ByTableAlwaysGeneric) {
  const Engine engine;
  for (const char* sql :
       {"SELECT COUNT(*) FROM t", "SELECT SUM(v) FROM t",
        "SELECT AVG(v) FROM t", "SELECT MIN(v) FROM t",
        "SELECT MAX(v) FROM t"}) {
    for (auto as :
         {AggregateSemantics::kRange, AggregateSemantics::kDistribution,
          AggregateSemantics::kExpectedValue}) {
      const auto e = engine.Explain(Query(sql), MappingSemantics::kByTable, as);
      ASSERT_TRUE(e.ok());
      EXPECT_NE(e->find("ByTableAggregateQuery"), std::string::npos) << sql;
    }
  }
}

TEST(ExplainTest, ByTuplePtimeCells) {
  const Engine engine;
  struct Case {
    const char* sql;
    AggregateSemantics semantics;
    const char* expected;
  };
  const Case cases[] = {
      {"SELECT COUNT(*) FROM t", AggregateSemantics::kRange,
       "ByTupleRangeCOUNT"},
      {"SELECT COUNT(*) FROM t", AggregateSemantics::kDistribution,
       "ByTuplePDCOUNT"},
      {"SELECT COUNT(*) FROM t", AggregateSemantics::kExpectedValue,
       "linearity of expectation"},
      {"SELECT SUM(v) FROM t", AggregateSemantics::kRange, "ByTupleRangeSUM"},
      {"SELECT SUM(v) FROM t", AggregateSemantics::kExpectedValue,
       "Theorem 4"},
      {"SELECT AVG(v) FROM t", AggregateSemantics::kRange, "tight variant"},
      {"SELECT MIN(v) FROM t", AggregateSemantics::kRange, "ByTupleRangeMIN"},
      {"SELECT MAX(v) FROM t", AggregateSemantics::kRange, "ByTupleRangeMAX"},
  };
  for (const Case& c : cases) {
    const auto e =
        engine.Explain(Query(c.sql), MappingSemantics::kByTuple, c.semantics);
    ASSERT_TRUE(e.ok()) << c.sql;
    EXPECT_NE(e->find(c.expected), std::string::npos)
        << c.sql << " -> " << *e;
  }
}

TEST(ExplainTest, OpenCellsNameTheNaiveFallback) {
  const Engine engine;
  // SUM/distribution remains open even with the extensions enabled.
  const auto sum = engine.Explain(Query("SELECT SUM(v) FROM t"),
                                  MappingSemantics::kByTuple,
                                  AggregateSemantics::kDistribution);
  ASSERT_TRUE(sum.ok());
  EXPECT_NE(sum->find("NaiveByTuple"), std::string::npos);
  EXPECT_NE(sum->find("l^n"), std::string::npos);
  // MAX/distribution defaults to the exact extension...
  const auto max_exact = engine.Explain(Query("SELECT MAX(v) FROM t"),
                                        MappingSemantics::kByTuple,
                                        AggregateSemantics::kDistribution);
  ASSERT_TRUE(max_exact.ok());
  EXPECT_NE(max_exact->find("CDF factorisation"), std::string::npos);
  // ...and to naive when the extension is switched off.
  EngineOptions opts;
  opts.minmax_distribution_exact = false;
  const Engine paper_mode(opts);
  const auto max_naive = paper_mode.Explain(Query("SELECT MAX(v) FROM t"),
                                            MappingSemantics::kByTuple,
                                            AggregateSemantics::kDistribution);
  ASSERT_TRUE(max_naive.ok());
  EXPECT_NE(max_naive->find("NaiveByTuple"), std::string::npos);
}

TEST(ExplainTest, OptionsChangeTheExplanation) {
  EngineOptions opts;
  opts.allow_naive = false;
  opts.avg_range_paper = true;
  opts.count_expected_via_distribution = true;
  const Engine engine(opts);
  EXPECT_NE(engine
                .Explain(Query("SELECT AVG(v) FROM t"),
                         MappingSemantics::kByTuple, AggregateSemantics::kRange)
                ->find("paper formula"),
            std::string::npos);
  EXPECT_NE(engine
                .Explain(Query("SELECT COUNT(*) FROM t"),
                         MappingSemantics::kByTuple,
                         AggregateSemantics::kExpectedValue)
                ->find("via distribution"),
            std::string::npos);
  EXPECT_NE(engine
                .Explain(Query("SELECT SUM(v) FROM t"),
                         MappingSemantics::kByTuple,
                         AggregateSemantics::kDistribution)
                ->find("unimplemented"),
            std::string::npos);
}

TEST(ExplainTest, InvalidQueryRejected) {
  const Engine engine;
  AggregateQuery bad;  // no relation, null predicate
  EXPECT_FALSE(engine
                   .Explain(bad, MappingSemantics::kByTuple,
                            AggregateSemantics::kRange)
                   .ok());
}

}  // namespace
}  // namespace aqua
