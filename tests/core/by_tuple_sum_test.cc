#include "aqua/core/by_tuple_sum.h"

#include <gtest/gtest.h>

#include "aqua/core/naive.h"
#include "aqua/query/parser.h"
#include "aqua/storage/table_builder.h"
#include "aqua/workload/ebay.h"

namespace aqua {
namespace {

class ByTupleSumFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ds2_ = *PaperInstanceDS2();
    pm2_ = *MakeEbayPMapping();
    q2p_ = PaperQueryQ2Prime();
  }
  Table ds2_;
  PMapping pm2_;
  AggregateQuery q2p_;
};

TEST_F(ByTupleSumFixture, RangeSumOverWholeTable) {
  AggregateQuery q = *SqlParser::ParseSimple("SELECT SUM(price) FROM T2");
  const auto r = ByTupleSum::RangeSum(q, pm2_, ds2_);
  ASSERT_TRUE(r.ok());
  // Per-tuple minima / maxima over {bid, currentPrice} summed.
  double low = 0, high = 0;
  for (size_t i = 0; i < ds2_.num_rows(); ++i) {
    const double bid = ds2_.column(3).DoubleAt(i);
    const double cur = ds2_.column(4).DoubleAt(i);
    low += std::min(bid, cur);
    high += std::max(bid, cur);
  }
  EXPECT_NEAR(r->low, low, 1e-9);
  EXPECT_NEAR(r->high, high, 1e-9);
}

TEST_F(ByTupleSumFixture, RangeSumAgreesWithNaiveOnSelectiveCondition) {
  // price > 300 makes some tuples optional (satisfy under one mapping
  // only), exercising the widen-through-zero refinement.
  AggregateQuery q =
      *SqlParser::ParseSimple("SELECT SUM(price) FROM T2 WHERE price > 300");
  const auto fast = ByTupleSum::RangeSum(q, pm2_, ds2_);
  const auto oracle = NaiveByTuple::Range(q, pm2_, ds2_);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(oracle.ok());
  EXPECT_NEAR(fast->low, oracle->low, 1e-9);
  EXPECT_NEAR(fast->high, oracle->high, 1e-9);
}

TEST_F(ByTupleSumFixture, NegativeValuesWidenThroughZero) {
  const Schema schema = *Schema::Make({{"a", ValueType::kDouble},
                                       {"b", ValueType::kDouble}});
  TableBuilder builder(schema);
  // Tuple satisfies "value > -100" under mapping to `a` (-5) and mapping
  // to `b` (10): contribution in [-5, 10]. Second tuple satisfies only
  // under `a` (-7; b = -200 fails): optional, contribution in [-7, 0].
  ASSERT_TRUE(builder.AppendRow({Value::Double(-5), Value::Double(10)}).ok());
  ASSERT_TRUE(
      builder.AppendRow({Value::Double(-7), Value::Double(-200)}).ok());
  const Table t = *std::move(builder).Finish();
  const RelationMapping ma = *RelationMapping::Make("S", "T", {{"a", "v"}});
  const RelationMapping mb = *RelationMapping::Make("S", "T", {{"b", "v"}});
  const PMapping pm = *PMapping::Make({{ma, 0.5}, {mb, 0.5}});
  AggregateQuery q = *SqlParser::ParseSimple(
      "SELECT SUM(v) FROM T WHERE v > -100");
  const auto r = ByTupleSum::RangeSum(q, pm, t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r->low, -12.0, 1e-12);  // -5 + -7
  EXPECT_NEAR(r->high, 10.0, 1e-12);  // 10 + 0 (exclude second tuple)
  const auto oracle = NaiveByTuple::Range(q, pm, t);
  ASSERT_TRUE(oracle.ok());
  EXPECT_NEAR(oracle->low, r->low, 1e-12);
  EXPECT_NEAR(oracle->high, r->high, 1e-12);
}

TEST_F(ByTupleSumFixture, ExpectedSumTheorem4) {
  const auto by_table_path = ByTupleSum::ExpectedSum(q2p_, pm2_, ds2_);
  const auto linear_path = ByTupleSum::ExpectedSumLinear(q2p_, pm2_, ds2_);
  ASSERT_TRUE(by_table_path.ok());
  ASSERT_TRUE(linear_path.ok());
  EXPECT_NEAR(*by_table_path, *linear_path, 1e-9);
}

TEST_F(ByTupleSumFixture, ExpectedSumLinearOnRowSubset) {
  const std::vector<uint32_t> rows = {0, 1};  // bids 195/195, 200/197.5
  AggregateQuery q = *SqlParser::ParseSimple("SELECT SUM(price) FROM T2");
  const auto e = ByTupleSum::ExpectedSumLinear(q, pm2_, ds2_, &rows);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(*e, 0.3 * (195 + 200) + 0.7 * (195 + 197.5), 1e-9);
}

TEST_F(ByTupleSumFixture, RejectsWrongFunctionAndDistinct) {
  AggregateQuery q = *SqlParser::ParseSimple("SELECT MAX(price) FROM T2");
  EXPECT_FALSE(ByTupleSum::RangeSum(q, pm2_, ds2_).ok());
  AggregateQuery qd =
      *SqlParser::ParseSimple("SELECT SUM(DISTINCT price) FROM T2");
  const auto r = ByTupleSum::RangeSum(qd, pm2_, ds2_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST_F(ByTupleSumFixture, AvgRangePaperFormula) {
  AggregateQuery q = *SqlParser::ParseSimple("SELECT AVG(price) FROM T2");
  const auto r = ByTupleSum::RangeAvgPaper(q, pm2_, ds2_);
  ASSERT_TRUE(r.ok());
  double low = 0, high = 0;
  for (size_t i = 0; i < ds2_.num_rows(); ++i) {
    const double bid = ds2_.column(3).DoubleAt(i);
    const double cur = ds2_.column(4).DoubleAt(i);
    low += std::min(bid, cur);
    high += std::max(bid, cur);
  }
  EXPECT_NEAR(r->low, low / 8.0, 1e-9);
  EXPECT_NEAR(r->high, high / 8.0, 1e-9);
}

TEST_F(ByTupleSumFixture, AvgRangeExactEqualsPaperWhenAllMandatory) {
  // With no WHERE clause every tuple satisfies under all mappings, so the
  // paper's formula is tight and both variants agree.
  AggregateQuery q = *SqlParser::ParseSimple("SELECT AVG(price) FROM T2");
  const auto paper = ByTupleSum::RangeAvgPaper(q, pm2_, ds2_);
  const auto exact = ByTupleSum::RangeAvgExact(q, pm2_, ds2_);
  ASSERT_TRUE(paper.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(paper->low, exact->low, 1e-9);
  EXPECT_NEAR(paper->high, exact->high, 1e-9);
}

TEST_F(ByTupleSumFixture, AvgRangeExactMatchesNaiveWithOptionalTuples) {
  AggregateQuery q =
      *SqlParser::ParseSimple("SELECT AVG(price) FROM T2 WHERE price > 300");
  const auto exact = ByTupleSum::RangeAvgExact(q, pm2_, ds2_);
  const auto oracle = NaiveByTuple::Range(q, pm2_, ds2_);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  ASSERT_TRUE(oracle.ok());
  EXPECT_NEAR(exact->low, oracle->low, 1e-9);
  EXPECT_NEAR(exact->high, oracle->high, 1e-9);
}

TEST_F(ByTupleSumFixture, AvgUndefinedWhenNothingSatisfies) {
  AggregateQuery q =
      *SqlParser::ParseSimple("SELECT AVG(price) FROM T2 WHERE price > 1e9");
  EXPECT_FALSE(ByTupleSum::RangeAvgPaper(q, pm2_, ds2_).ok());
  EXPECT_FALSE(ByTupleSum::RangeAvgExact(q, pm2_, ds2_).ok());
}

TEST_F(ByTupleSumFixture, SumRangeEmptySelectionIsZero) {
  AggregateQuery q =
      *SqlParser::ParseSimple("SELECT SUM(price) FROM T2 WHERE price > 1e9");
  const auto r = ByTupleSum::RangeSum(q, pm2_, ds2_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Interval{0.0, 0.0}));
}

}  // namespace
}  // namespace aqua
