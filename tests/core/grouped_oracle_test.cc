// The grouped by-tuple engine runs the per-tuple recurrences once per
// group. These property tests validate every grouped answer against naive
// enumeration restricted to that group's rows.

#include <gtest/gtest.h>

#include "aqua/common/random.h"
#include "aqua/core/engine.h"
#include "aqua/core/naive.h"
#include "aqua/query/parser.h"
#include "aqua/storage/table_builder.h"

namespace aqua {
namespace {

struct Instance {
  Table table;
  PMapping pmapping;
};

// S(g, a0, a1, a2) with g certain (g -> g in every candidate) and `value`
// uncertain over the a-columns. Group sizes and values randomised.
Instance MakeInstance(uint64_t seed) {
  Rng rng(seed);
  const size_t n = 4 + static_cast<size_t>(rng.UniformInt(0, 4));  // 4..8
  std::vector<Attribute> attrs = {{"g", ValueType::kInt64},
                                  {"a0", ValueType::kDouble},
                                  {"a1", ValueType::kDouble},
                                  {"a2", ValueType::kDouble}};
  std::vector<Column> cols;
  cols.emplace_back(ValueType::kInt64);
  for (int a = 0; a < 3; ++a) cols.emplace_back(ValueType::kDouble);
  for (size_t r = 0; r < n; ++r) {
    cols[0].AppendInt64(rng.UniformInt(1, 3));
    for (int a = 1; a <= 3; ++a) {
      cols[a].AppendDouble(static_cast<double>(rng.UniformInt(0, 9)));
    }
  }
  Table table = *Table::Make(*Schema::Make(attrs), std::move(cols));

  const size_t m = 2 + static_cast<size_t>(rng.UniformInt(0, 1));
  std::vector<double> probs = rng.RandomProbabilities(m);
  std::vector<PMapping::Alternative> alts;
  for (size_t j = 0; j < m; ++j) {
    alts.push_back(PMapping::Alternative{
        *RelationMapping::Make(
            "S", "T",
            {{"g", "grp"}, {"a" + std::to_string(j), "value"}}),
        probs[j]});
  }
  return Instance{std::move(table), *PMapping::Make(std::move(alts))};
}

std::vector<uint32_t> GroupRows(const Table& t, int64_t g) {
  std::vector<uint32_t> rows;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.column(0).Int64At(r) == g) rows.push_back(static_cast<uint32_t>(r));
  }
  return rows;
}

class GroupedOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupedOracleTest, GroupedAnswersMatchPerGroupNaive) {
  const Instance inst = MakeInstance(GetParam());
  const Engine engine;
  AggregateQuery q = *SqlParser::ParseSimple(
      "SELECT SUM(value) FROM T WHERE value < 6 GROUP BY grp");

  for (auto func : {AggregateFunction::kCount, AggregateFunction::kSum,
                    AggregateFunction::kMax}) {
    q.func = func;
    q.attribute = func == AggregateFunction::kCount ? "" : "value";
    const auto grouped =
        engine.AnswerGrouped(q, inst.pmapping, inst.table,
                             MappingSemantics::kByTuple,
                             AggregateSemantics::kRange);
    ASSERT_TRUE(grouped.ok())
        << AggregateFunctionToString(func) << ": "
        << grouped.status().ToString();

    AggregateQuery ungrouped = q;
    ungrouped.group_by.clear();
    for (const GroupedAnswer& ga : *grouped) {
      const std::vector<uint32_t> rows =
          GroupRows(inst.table, ga.group.int64());
      const auto naive = NaiveByTuple::Dist(ungrouped, inst.pmapping,
                                            inst.table, {}, &rows);
      ASSERT_TRUE(naive.ok());
      if (naive->distribution.empty()) continue;
      const auto hull = naive->distribution.ToRange();
      ASSERT_TRUE(hull.ok());
      EXPECT_NEAR(ga.answer.range.low, hull->low, 1e-9)
          << AggregateFunctionToString(func) << " group "
          << ga.group.ToString() << " seed " << GetParam();
      EXPECT_NEAR(ga.answer.range.high, hull->high, 1e-9)
          << AggregateFunctionToString(func) << " group "
          << ga.group.ToString() << " seed " << GetParam();
    }
  }
}

TEST_P(GroupedOracleTest, GroupedCountDistributionMatchesPerGroupNaive) {
  const Instance inst = MakeInstance(GetParam());
  const Engine engine;
  const AggregateQuery q = *SqlParser::ParseSimple(
      "SELECT COUNT(*) FROM T WHERE value < 6 GROUP BY grp");
  const auto grouped =
      engine.AnswerGrouped(q, inst.pmapping, inst.table,
                           MappingSemantics::kByTuple,
                           AggregateSemantics::kDistribution);
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  AggregateQuery ungrouped = q;
  ungrouped.group_by.clear();
  for (const GroupedAnswer& ga : *grouped) {
    const std::vector<uint32_t> rows = GroupRows(inst.table, ga.group.int64());
    const auto naive =
        NaiveByTuple::Dist(ungrouped, inst.pmapping, inst.table, {}, &rows);
    ASSERT_TRUE(naive.ok());
    Distribution pruned = ga.answer.distribution;
    pruned.Prune(1e-14);
    EXPECT_LT(Distribution::TotalVariationDistance(pruned,
                                                   naive->distribution),
              1e-9)
        << "group " << ga.group.ToString() << " seed " << GetParam();
  }
}

TEST_P(GroupedOracleTest, GroupedMaxDistributionMatchesPerGroupNaive) {
  const Instance inst = MakeInstance(GetParam());
  const Engine engine;  // exact extremum distribution on by default
  const AggregateQuery q = *SqlParser::ParseSimple(
      "SELECT MAX(value) FROM T GROUP BY grp");
  const auto grouped =
      engine.AnswerGrouped(q, inst.pmapping, inst.table,
                           MappingSemantics::kByTuple,
                           AggregateSemantics::kDistribution);
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  AggregateQuery ungrouped = q;
  ungrouped.group_by.clear();
  for (const GroupedAnswer& ga : *grouped) {
    const std::vector<uint32_t> rows = GroupRows(inst.table, ga.group.int64());
    const auto naive =
        NaiveByTuple::Dist(ungrouped, inst.pmapping, inst.table, {}, &rows);
    ASSERT_TRUE(naive.ok());
    EXPECT_LT(Distribution::TotalVariationDistanceApprox(
                  ga.answer.distribution, naive->distribution, 1e-9),
              1e-9)
        << "group " << ga.group.ToString() << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GroupedOracleTest,
                         ::testing::Range<uint64_t>(300, 320));

}  // namespace
}  // namespace aqua
