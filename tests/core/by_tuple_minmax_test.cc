#include "aqua/core/by_tuple_minmax.h"

#include <gtest/gtest.h>

#include "aqua/core/naive.h"
#include "aqua/query/parser.h"
#include "aqua/storage/table_builder.h"
#include "aqua/workload/ebay.h"

namespace aqua {
namespace {

class MinMaxFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ds2_ = *PaperInstanceDS2();
    pm2_ = *MakeEbayPMapping();
  }
  Table ds2_;
  PMapping pm2_;
};

TEST_F(MinMaxFixture, MaxRangeWholeTable) {
  AggregateQuery q = *SqlParser::ParseSimple("SELECT MAX(price) FROM T2");
  const auto r = ByTupleMinMax::RangeMax(q, pm2_, ds2_);
  ASSERT_TRUE(r.ok());
  // All tuples mandatory: low = max of per-tuple minima = 340.5 (tuple 8),
  // high = max of maxima = 439.95.
  EXPECT_NEAR(r->low, 340.5, 1e-9);
  EXPECT_NEAR(r->high, 439.95, 1e-9);
}

TEST_F(MinMaxFixture, MinRangeWholeTable) {
  AggregateQuery q = *SqlParser::ParseSimple("SELECT MIN(price) FROM T2");
  const auto r = ByTupleMinMax::RangeMin(q, pm2_, ds2_);
  ASSERT_TRUE(r.ok());
  // low = min of minima = 195 (tuple 1); high = min of per-tuple maxima
  // = 195 as well (tuple 1 has bid = currentPrice = 195).
  EXPECT_NEAR(r->low, 195.0, 1e-9);
  EXPECT_NEAR(r->high, 195.0, 1e-9);
}

TEST_F(MinMaxFixture, DistinctIsNoOpForMinMax) {
  AggregateQuery q =
      *SqlParser::ParseSimple("SELECT MAX(DISTINCT price) FROM T2");
  const auto r = ByTupleMinMax::RangeMax(q, pm2_, ds2_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r->high, 439.95, 1e-9);
}

TEST_F(MinMaxFixture, MaxRangeAgreesWithNaiveUnderSelectiveCondition) {
  AggregateQuery q =
      *SqlParser::ParseSimple("SELECT MAX(price) FROM T2 WHERE price < 340");
  const auto fast = ByTupleMinMax::RangeMax(q, pm2_, ds2_);
  const auto oracle = NaiveByTuple::Range(q, pm2_, ds2_);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  ASSERT_TRUE(oracle.ok());
  EXPECT_NEAR(fast->low, oracle->low, 1e-9);
  EXPECT_NEAR(fast->high, oracle->high, 1e-9);
}

TEST_F(MinMaxFixture, MinRangeAgreesWithNaiveUnderSelectiveCondition) {
  AggregateQuery q =
      *SqlParser::ParseSimple("SELECT MIN(price) FROM T2 WHERE price > 330");
  const auto fast = ByTupleMinMax::RangeMin(q, pm2_, ds2_);
  const auto oracle = NaiveByTuple::Range(q, pm2_, ds2_);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(oracle.ok());
  EXPECT_NEAR(fast->low, oracle->low, 1e-9);
  EXPECT_NEAR(fast->high, oracle->high, 1e-9);
}

TEST_F(MinMaxFixture, NoMandatoryTuples) {
  // Both tuples satisfy under exactly one mapping: every tuple can be
  // excluded, so the lower MAX bound keeps a single cheapest tuple.
  const Schema schema =
      *Schema::Make({{"a", ValueType::kDouble}, {"b", ValueType::kDouble}});
  TableBuilder builder(schema);
  ASSERT_TRUE(builder.AppendRow({Value::Double(5), Value::Double(-50)}).ok());
  ASSERT_TRUE(builder.AppendRow({Value::Double(9), Value::Double(-60)}).ok());
  const Table t = *std::move(builder).Finish();
  const RelationMapping ma = *RelationMapping::Make("S", "T", {{"a", "v"}});
  const RelationMapping mb = *RelationMapping::Make("S", "T", {{"b", "v"}});
  const PMapping pm = *PMapping::Make({{ma, 0.5}, {mb, 0.5}});
  AggregateQuery q = *SqlParser::ParseSimple(
      "SELECT MAX(v) FROM T WHERE v > 0");
  const auto fast = ByTupleMinMax::RangeMax(q, pm, t);
  ASSERT_TRUE(fast.ok());
  EXPECT_NEAR(fast->low, 5.0, 1e-12);   // keep only tuple 1 at value 5
  EXPECT_NEAR(fast->high, 9.0, 1e-12);  // keep tuple 2 at value 9
  const auto oracle = NaiveByTuple::Range(q, pm, t);
  ASSERT_TRUE(oracle.ok());
  EXPECT_NEAR(oracle->low, fast->low, 1e-12);
  EXPECT_NEAR(oracle->high, fast->high, 1e-12);
}

TEST_F(MinMaxFixture, UndefinedWhenNothingSatisfies) {
  AggregateQuery q =
      *SqlParser::ParseSimple("SELECT MAX(price) FROM T2 WHERE price > 1e9");
  EXPECT_FALSE(ByTupleMinMax::RangeMax(q, pm2_, ds2_).ok());
  AggregateQuery q2 =
      *SqlParser::ParseSimple("SELECT MIN(price) FROM T2 WHERE price > 1e9");
  EXPECT_FALSE(ByTupleMinMax::RangeMin(q2, pm2_, ds2_).ok());
}

TEST_F(MinMaxFixture, RejectsWrongFunction) {
  AggregateQuery q = *SqlParser::ParseSimple("SELECT SUM(price) FROM T2");
  EXPECT_FALSE(ByTupleMinMax::RangeMax(q, pm2_, ds2_).ok());
  EXPECT_FALSE(ByTupleMinMax::RangeMin(q, pm2_, ds2_).ok());
}

TEST_F(MinMaxFixture, DistMaxMatchesNaive) {
  for (const char* sql :
       {"SELECT MAX(price) FROM T2", "SELECT MAX(price) FROM T2 WHERE price "
                                     "< 340",
        "SELECT MAX(price) FROM T2 WHERE price > 430"}) {
    AggregateQuery q = *SqlParser::ParseSimple(sql);
    const auto exact = ByTupleMinMax::DistMax(q, pm2_, ds2_);
    const auto naive = NaiveByTuple::Dist(q, pm2_, ds2_);
    ASSERT_TRUE(exact.ok()) << sql << ": " << exact.status().ToString();
    ASSERT_TRUE(naive.ok());
    EXPECT_NEAR(exact->undefined_mass, naive->undefined_mass, 1e-12) << sql;
    EXPECT_LT(Distribution::TotalVariationDistanceApprox(
                  exact->distribution, naive->distribution, 1e-9),
              1e-9)
        << sql;
  }
}

TEST_F(MinMaxFixture, DistMinMatchesNaive) {
  for (const char* sql :
       {"SELECT MIN(price) FROM T2",
        "SELECT MIN(price) FROM T2 WHERE price > 330"}) {
    AggregateQuery q = *SqlParser::ParseSimple(sql);
    const auto exact = ByTupleMinMax::DistMin(q, pm2_, ds2_);
    const auto naive = NaiveByTuple::Dist(q, pm2_, ds2_);
    ASSERT_TRUE(exact.ok()) << sql;
    ASSERT_TRUE(naive.ok());
    EXPECT_NEAR(exact->undefined_mass, naive->undefined_mass, 1e-12) << sql;
    EXPECT_LT(Distribution::TotalVariationDistanceApprox(
                  exact->distribution, naive->distribution, 1e-9),
              1e-9)
        << sql;
  }
}

TEST_F(MinMaxFixture, ExpectedMaxMatchesNaive) {
  AggregateQuery q = *SqlParser::ParseSimple("SELECT MAX(price) FROM T2");
  const auto exact = ByTupleMinMax::ExpectedMax(q, pm2_, ds2_);
  const auto naive = NaiveByTuple::Expected(q, pm2_, ds2_);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_NEAR(*exact, *naive, 1e-9);
}

TEST_F(MinMaxFixture, ExpectedRefusesWhenUndefinedMassPositive) {
  AggregateQuery q =
      *SqlParser::ParseSimple("SELECT MIN(price) FROM T2 WHERE price > 430");
  EXPECT_FALSE(ByTupleMinMax::ExpectedMin(q, pm2_, ds2_).ok());
}

TEST_F(MinMaxFixture, DistWhenNothingSatisfies) {
  AggregateQuery q =
      *SqlParser::ParseSimple("SELECT MAX(price) FROM T2 WHERE price > 1e9");
  const auto exact = ByTupleMinMax::DistMax(q, pm2_, ds2_);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(exact->undefined_mass, 1.0, 1e-12);
  EXPECT_TRUE(exact->distribution.empty());
}

TEST_F(MinMaxFixture, DistScalesWellBeyondNaive) {
  // 2000 tuples would be 2^2000 sequences; the factorised CDF sweep is
  // instantaneous and still a proper distribution.
  Rng rng(12);
  EbayOptions opts;
  opts.num_auctions = 250;
  opts.min_bids = 8;
  opts.max_bids = 8;
  const Table big = *GenerateEbayTable(opts, rng);
  AggregateQuery q = *SqlParser::ParseSimple("SELECT MAX(price) FROM T2");
  const auto exact = ByTupleMinMax::DistMax(q, pm2_, big);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_NEAR(exact->distribution.TotalMass() + exact->undefined_mass, 1.0,
              1e-6);
  // The distribution's hull equals the O(nm) range algorithm's answer.
  const auto range = ByTupleMinMax::RangeMax(q, pm2_, big);
  ASSERT_TRUE(range.ok());
  Distribution pruned = exact->distribution;
  pruned.Prune(1e-13);
  const auto hull = pruned.ToRange();
  ASSERT_TRUE(hull.ok());
  EXPECT_NEAR(hull->high, range->high, 1e-9);
}

TEST_F(MinMaxFixture, RowSubsetPerAuction) {
  AggregateQuery q = *SqlParser::ParseSimple("SELECT MAX(price) FROM T2");
  const std::vector<uint32_t> auction38 = {4, 5, 6, 7};
  const auto r = ByTupleMinMax::RangeMax(q, pm2_, ds2_, &auction38);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->low, 340.5, 1e-9);
  EXPECT_NEAR(r->high, 439.95, 1e-9);
}

}  // namespace
}  // namespace aqua
