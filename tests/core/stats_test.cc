// Verifies the observability layer end to end through the engine: every
// Answer* entry point populates QueryStats, the metrics registry counts
// each query, and phase spans land in an installed trace sink.

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "aqua/core/engine.h"
#include "aqua/obs/metrics.h"
#include "aqua/obs/query_stats.h"
#include "aqua/obs/trace.h"
#include "aqua/query/parser.h"
#include "aqua/workload/ebay.h"

namespace aqua {
namespace {

class StatsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ds2_ = *PaperInstanceDS2();
    pm2_ = *MakeEbayPMapping();
    count_q_ =
        *SqlParser::ParseSimple("SELECT COUNT(*) FROM T2 WHERE price > 300");
    grouped_q_ = *SqlParser::ParseSimple(
        "SELECT MAX(DISTINCT price) FROM T2 GROUP BY auctionId");
  }

  void ExpectCommonFields(const QueryStats& stats, MappingSemantics ms,
                          AggregateSemantics as) {
    EXPECT_FALSE(stats.algorithm.empty());
    EXPECT_EQ(stats.mapping_semantics, MappingSemanticsToString(ms));
    EXPECT_EQ(stats.aggregate_semantics, AggregateSemanticsToString(as));
    EXPECT_GE(stats.wall_time_us, 0);
    EXPECT_GT(stats.rows, 0u);
    EXPECT_EQ(stats.mappings, 2u);
  }

  Engine engine_;
  Table ds2_;
  PMapping pm2_;
  AggregateQuery count_q_;
  AggregateQuery grouped_q_;
};

TEST_F(StatsFixture, EveryAnswerCellPopulatesStats) {
  const char* sqls[] = {
      "SELECT COUNT(*) FROM T2 WHERE price > 300",
      "SELECT SUM(price) FROM T2",
      "SELECT AVG(price) FROM T2",
      "SELECT MIN(price) FROM T2",
      "SELECT MAX(price) FROM T2",
  };
  for (const char* sql : sqls) {
    const AggregateQuery q = *SqlParser::ParseSimple(sql);
    for (auto ms : {MappingSemantics::kByTable, MappingSemantics::kByTuple}) {
      for (auto as :
           {AggregateSemantics::kRange, AggregateSemantics::kDistribution,
            AggregateSemantics::kExpectedValue}) {
        const auto a = engine_.Answer(q, pm2_, ds2_, ms, as);
        ASSERT_TRUE(a.ok()) << sql;
        ExpectCommonFields(a->stats, ms, as);
        // The algorithm name matches what Explain reports for the cell.
        const auto plan = engine_.Explain(q, ms, as);
        ASSERT_TRUE(plan.ok());
        EXPECT_EQ(a->stats.algorithm, *plan) << sql;
        EXPECT_FALSE(a->stats.degraded);
      }
    }
  }
}

TEST_F(StatsFixture, ByTupleExactPathRecordsSteps) {
  const auto a = engine_.Answer(count_q_, pm2_, ds2_,
                                MappingSemantics::kByTuple,
                                AggregateSemantics::kDistribution);
  ASSERT_TRUE(a.ok());
  // The COUNT DP charges one step per cell, so a non-trivial instance
  // must show work.
  EXPECT_GT(a->stats.steps, 0u);
  EXPECT_EQ(a->stats.rows, ds2_.num_rows());
}

TEST_F(StatsFixture, GroupedAnswersCarryPerGroupStats) {
  const auto groups =
      engine_.AnswerGrouped(grouped_q_, pm2_, ds2_, MappingSemantics::kByTuple,
                            AggregateSemantics::kRange);
  ASSERT_TRUE(groups.ok());
  ASSERT_GT(groups->size(), 1u);
  uint64_t total_rows = 0;
  for (const GroupedAnswer& g : *groups) {
    EXPECT_FALSE(g.answer.stats.algorithm.empty());
    EXPECT_EQ(g.answer.stats.mapping_semantics, "by-tuple");
    EXPECT_GT(g.answer.stats.rows, 0u);
    EXPECT_EQ(g.answer.stats.mappings, 2u);
    total_rows += g.answer.stats.rows;
  }
  // Per-group row counts partition the (grouped) input.
  EXPECT_EQ(total_rows, ds2_.num_rows());
}

TEST_F(StatsFixture, NestedAnswerPopulatesStats) {
  const NestedAggregateQuery q2 = PaperQueryQ2();
  for (auto ms : {MappingSemantics::kByTable, MappingSemantics::kByTuple}) {
    const auto a = engine_.AnswerNested(q2, pm2_, ds2_, ms,
                                        AggregateSemantics::kRange);
    ASSERT_TRUE(a.ok()) << MappingSemanticsToString(ms);
    EXPECT_FALSE(a->stats.algorithm.empty());
    EXPECT_EQ(a->stats.mapping_semantics, MappingSemanticsToString(ms));
    EXPECT_EQ(a->stats.rows, ds2_.num_rows());
    EXPECT_EQ(a->stats.mappings, 2u);
  }
}

TEST_F(StatsFixture, MetricsRegistryCountsQueries) {
  auto& registry = obs::MetricsRegistry::Default();
  obs::Counter ok = registry.GetCounter(
      "aqua_queries_total",
      {{"cell", "by-tuple/COUNT/distribution"}, {"outcome", "ok"}});
  const uint64_t before = ok.value();
  ASSERT_TRUE(engine_
                  .Answer(count_q_, pm2_, ds2_, MappingSemantics::kByTuple,
                          AggregateSemantics::kDistribution)
                  .ok());
  EXPECT_EQ(ok.value(), before + 1);
  // Steps flow into the registry too.
  EXPECT_GT(registry.GetCounter("aqua_steps_charged_total").value(), 0u);
}

TEST_F(StatsFixture, TraceSinkCapturesEngineSpans) {
  obs::TraceSink sink;
  obs::InstallTraceSink(&sink);
  ASSERT_TRUE(engine_
                  .Answer(count_q_, pm2_, ds2_, MappingSemantics::kByTuple,
                          AggregateSemantics::kDistribution)
                  .ok());
  obs::UninstallTraceSink();
  ASSERT_GE(sink.size(), 2u);
  bool saw_engine = false, saw_algorithm = false;
  for (const obs::TraceEvent& e : sink.events()) {
    if (std::string_view(e.name) == "Engine::Answer") saw_engine = true;
    if (std::string_view(e.name) == "ByTupleCount::Dist") saw_algorithm = true;
  }
  EXPECT_TRUE(saw_engine);
  EXPECT_TRUE(saw_algorithm);
}

TEST(QueryStatsTest, ToJsonIsSchemaStable) {
  QueryStats stats;
  stats.algorithm = "ByTuplePDCOUNT";
  stats.mapping_semantics = "by-tuple";
  stats.aggregate_semantics = "distribution";
  stats.wall_time_us = 42;
  stats.steps = 7;
  stats.bytes = 3;
  stats.rows = 5;
  stats.mappings = 2;
  stats.samples = 0;
  stats.degraded = false;
  EXPECT_EQ(stats.ToJson(),
            "{\"algorithm\":\"ByTuplePDCOUNT\","
            "\"mapping_semantics\":\"by-tuple\","
            "\"aggregate_semantics\":\"distribution\","
            "\"wall_time_us\":42,\"steps\":7,\"bytes\":3,\"rows\":5,"
            "\"mappings\":2,"
            "\"limit_timeout_ms\":0,\"limit_steps\":0,\"limit_bytes\":0,"
            "\"samples\":0,\"sampler_seed\":0,"
            "\"degraded\":false,\"degrade_reason\":\"\","
            "\"shards\":0,\"degraded_shards\":0,\"hedged_shards\":0}");
}

TEST(QueryStatsTest, EffectiveLimitsAppearWhenSet) {
  QueryStats stats;
  stats.algorithm = "ByTupleRangeCOUNT";
  stats.mapping_semantics = "by-tuple";
  stats.aggregate_semantics = "range";
  stats.limit_timeout_ms = 250;
  stats.limit_steps = 1000;
  stats.limit_bytes = 4096;
  const std::string s = stats.ToString();
  EXPECT_NE(s.find("limits=250ms/1000steps/4096bytes"), std::string::npos)
      << s;
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"limit_timeout_ms\":250"), std::string::npos);
  EXPECT_NE(json.find("\"limit_steps\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"limit_bytes\":4096"), std::string::npos);
}

TEST(QueryStatsTest, UnlimitedBudgetOmitsLimitsFromToString) {
  QueryStats stats;
  stats.algorithm = "ByTableAggregateQuery";
  stats.mapping_semantics = "by-table";
  stats.aggregate_semantics = "range";
  // All three dimensions unbounded: the human line stays uncluttered.
  EXPECT_EQ(stats.ToString().find("limits="), std::string::npos);
}

TEST(QueryStatsTest, ToStringMentionsDegradation) {
  QueryStats stats;
  stats.algorithm = "MonteCarlo";
  stats.mapping_semantics = "by-tuple";
  stats.aggregate_semantics = "distribution";
  stats.samples = 100;
  stats.sampler_seed = 0xA9A9A9A9ULL;
  stats.degraded = true;
  stats.degrade_reason = "DEADLINE_EXCEEDED: out of time";
  const std::string s = stats.ToString();
  EXPECT_NE(s.find("samples=100"), std::string::npos) << s;
  EXPECT_NE(s.find("sampler_seed=" + std::to_string(0xA9A9A9A9ULL)),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("degraded (DEADLINE_EXCEEDED"), std::string::npos) << s;
}

TEST(QueryStatsTest, ToStringMentionsShardsOnlyWhenSharded) {
  QueryStats stats;
  stats.algorithm = "ByTuplePDCOUNT";
  stats.mapping_semantics = "by-tuple";
  stats.aggregate_semantics = "distribution";
  // Unsharded: the human line stays uncluttered.
  EXPECT_EQ(stats.ToString().find("shards="), std::string::npos);
  stats.shards = 4;
  stats.degraded_shards = 1;
  stats.hedged_shards = 2;
  const std::string s = stats.ToString();
  EXPECT_NE(s.find("shards=4"), std::string::npos) << s;
  EXPECT_NE(s.find("degraded_shards=1"), std::string::npos) << s;
  EXPECT_NE(s.find("hedged_shards=2"), std::string::npos) << s;
}

}  // namespace
}  // namespace aqua
