#include "aqua/core/clt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "aqua/core/by_tuple_count.h"
#include "aqua/core/naive.h"
#include "aqua/core/sampler.h"
#include "aqua/query/parser.h"
#include "aqua/workload/ebay.h"
#include "aqua/workload/synthetic.h"

namespace aqua {
namespace {

TEST(NormalApproximationTest, CdfBasics) {
  const NormalApproximation n{0.0, 1.0};
  EXPECT_NEAR(n.Cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(n.Cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(n.Cdf(-1.96), 0.025, 1e-3);
  EXPECT_LT(n.Cdf(-8.0), 1e-10);
  EXPECT_GT(n.Cdf(8.0), 1.0 - 1e-10);
}

TEST(NormalApproximationTest, QuantileInvertsCdf) {
  const NormalApproximation n{10.0, 4.0};
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const auto x = n.Quantile(p);
    ASSERT_TRUE(x.ok());
    EXPECT_NEAR(n.Cdf(*x), p, 1e-8) << "p = " << p;
  }
  EXPECT_FALSE(n.Quantile(0.0).ok());
  EXPECT_FALSE(n.Quantile(1.0).ok());
}

TEST(NormalApproximationTest, DegenerateVariance) {
  const NormalApproximation n{3.0, 0.0};
  EXPECT_DOUBLE_EQ(n.Cdf(2.9), 0.0);
  EXPECT_DOUBLE_EQ(n.Cdf(3.0), 1.0);
  EXPECT_DOUBLE_EQ(*n.Quantile(0.5), 3.0);
}

TEST(NormalApproximationTest, CredibleInterval) {
  const NormalApproximation n{0.0, 1.0};
  const auto ci = n.CredibleInterval(0.95);
  ASSERT_TRUE(ci.ok());
  EXPECT_NEAR(ci->low, -1.959964, 1e-4);
  EXPECT_NEAR(ci->high, 1.959964, 1e-4);
  EXPECT_FALSE(n.CredibleInterval(0.0).ok());
  EXPECT_FALSE(n.CredibleInterval(1.0).ok());
}

class CltFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ds2_ = *PaperInstanceDS2();
    pm2_ = *MakeEbayPMapping();
  }
  Table ds2_;
  PMapping pm2_;
};

TEST_F(CltFixture, SumMomentsMatchNaiveExactly) {
  // Independence makes the CLT mean/variance *exact*; only the shape is
  // approximate. Compare against the full enumeration on Table II.
  const AggregateQuery q = *SqlParser::ParseSimple(
      "SELECT SUM(price) FROM T2 WHERE price < 430");
  const auto approx = ByTupleCLT::ApproxSum(q, pm2_, ds2_);
  const auto exact = NaiveByTuple::Dist(q, pm2_, ds2_);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(approx->mean, *exact->distribution.Expectation(), 1e-9);
  EXPECT_NEAR(approx->variance, *exact->distribution.Variance(), 1e-9);
}

TEST_F(CltFixture, CountMomentsMatchExactDistribution) {
  const AggregateQuery q =
      *SqlParser::ParseSimple("SELECT COUNT(*) FROM T2 WHERE price > 300");
  const auto approx = ByTupleCLT::ApproxCount(q, pm2_, ds2_);
  const auto exact = ByTupleCount::Dist(q, pm2_, ds2_);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(approx->mean, *exact->Expectation(), 1e-9);
  EXPECT_NEAR(approx->variance, *exact->Variance(), 1e-9);
}

TEST_F(CltFixture, RejectsWrongShapes) {
  const AggregateQuery max_q =
      *SqlParser::ParseSimple("SELECT MAX(price) FROM T2");
  EXPECT_FALSE(ByTupleCLT::ApproxSum(max_q, pm2_, ds2_).ok());
  EXPECT_FALSE(ByTupleCLT::ApproxCount(max_q, pm2_, ds2_).ok());
  const AggregateQuery distinct_q =
      *SqlParser::ParseSimple("SELECT SUM(DISTINCT price) FROM T2");
  EXPECT_FALSE(ByTupleCLT::ApproxSum(distinct_q, pm2_, ds2_).ok());
}

TEST(CltLargeTest, QuantilesAgreeWithMonteCarloAtScale) {
  Rng rng(5150);
  SyntheticOptions opts;
  opts.num_tuples = 2000;
  opts.num_attributes = 8;
  opts.num_mappings = 4;
  const SyntheticWorkload w = *GenerateSyntheticWorkload(opts, rng);
  const AggregateQuery q = w.MakeQuery(AggregateFunction::kSum);

  const auto approx = ByTupleCLT::ApproxSum(q, w.pmapping, w.table);
  ASSERT_TRUE(approx.ok());

  SamplerOptions sopts;
  sopts.num_samples = 40000;
  const auto sampled = ByTupleSampler::Sample(q, w.pmapping, w.table, sopts);
  ASSERT_TRUE(sampled.ok());

  // Sample mean within a few standard errors of the exact mean.
  EXPECT_NEAR(sampled->expected, approx->mean, 6 * sampled->std_error + 1e-9);
  // CLT quantiles near the empirical ones (tolerance: a few percent of
  // the distribution's stddev).
  for (double p : {0.1, 0.5, 0.9}) {
    const auto clt_q = approx->Quantile(p);
    const auto emp_q = sampled->empirical.Quantile(p);
    ASSERT_TRUE(clt_q.ok());
    ASSERT_TRUE(emp_q.ok());
    EXPECT_NEAR(*clt_q, *emp_q, 0.1 * approx->stddev())
        << "quantile " << p;
  }
}

TEST_F(CltFixture, AvgDeltaMethodRejectsTinyCounts) {
  const AggregateQuery q = *SqlParser::ParseSimple("SELECT AVG(price) FROM T2");
  // Only 8 tuples: expected count 8, passes the default threshold 5; a
  // stricter threshold makes it refuse.
  EXPECT_TRUE(ByTupleCLT::ApproxAvgExpectation(q, pm2_, ds2_).ok());
  EXPECT_FALSE(
      ByTupleCLT::ApproxAvgExpectation(q, pm2_, ds2_, nullptr, 100.0).ok());
  const AggregateQuery sum_q =
      *SqlParser::ParseSimple("SELECT SUM(price) FROM T2");
  EXPECT_FALSE(ByTupleCLT::ApproxAvgExpectation(sum_q, pm2_, ds2_).ok());
}

TEST_F(CltFixture, AvgDeltaMethodNearNaiveOnSmallInstance) {
  const AggregateQuery q = *SqlParser::ParseSimple("SELECT AVG(price) FROM T2");
  const auto exact = NaiveByTuple::Expected(q, pm2_, ds2_);
  const auto approx = ByTupleCLT::ApproxAvgExpectation(q, pm2_, ds2_);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok());
  // All 8 tuples always qualify, so C is deterministic and the delta
  // expansion is exact (Var(C) = Cov(S,C) = 0).
  EXPECT_NEAR(*approx, *exact, 1e-9);
}

TEST(CltLargeTest, AvgDeltaMethodConvergesWithSelectiveCondition) {
  Rng rng(616);
  SyntheticOptions opts;
  opts.num_tuples = 14;  // still enumerable: 3^14 ~ 4.8M sequences
  opts.num_attributes = 6;
  opts.num_mappings = 3;
  const SyntheticWorkload w = *GenerateSyntheticWorkload(opts, rng);
  const AggregateQuery q = w.MakeQuery(AggregateFunction::kAvg);
  NaiveOptions budget;
  budget.max_sequences = uint64_t{1} << 24;
  const auto naive = NaiveByTuple::Dist(q, w.pmapping, w.table, budget);
  ASSERT_TRUE(naive.ok());
  // Condition on definedness like the delta method implicitly does.
  Distribution defined = naive->distribution;
  defined.Prune(0.0);
  const auto exact = defined.Expectation();
  ASSERT_TRUE(exact.ok());
  const auto approx = ByTupleCLT::ApproxAvgExpectation(q, w.pmapping, w.table);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  // Second-order expansion at n = 14: a few percent of the value scale.
  EXPECT_NEAR(*approx, *exact, 0.05 * std::abs(*exact) + 1.0);
}

TEST(CltLargeTest, CountApproxTracksExactDpAtModerateSize) {
  Rng rng(808);
  SyntheticOptions opts;
  opts.num_tuples = 800;
  opts.num_attributes = 6;
  opts.num_mappings = 3;
  const SyntheticWorkload w = *GenerateSyntheticWorkload(opts, rng);
  const AggregateQuery q = w.MakeQuery(AggregateFunction::kCount);
  const auto approx = ByTupleCLT::ApproxCount(q, w.pmapping, w.table);
  const auto exact = ByTupleCount::Dist(q, w.pmapping, w.table);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(exact.ok());
  // Exact CDF vs normal CDF at the quartiles of the exact distribution.
  for (double p : {0.25, 0.5, 0.75}) {
    const auto x = exact->Quantile(p);
    ASSERT_TRUE(x.ok());
    EXPECT_NEAR(approx->Cdf(*x), p, 0.05) << "p = " << p;
  }
}

}  // namespace
}  // namespace aqua
