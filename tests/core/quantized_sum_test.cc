#include <cmath>

#include <gtest/gtest.h>

#include "aqua/core/by_tuple_sum.h"
#include "aqua/core/clt.h"
#include "aqua/core/naive.h"
#include "aqua/mapping/generator.h"
#include "aqua/query/parser.h"
#include "aqua/workload/synthetic.h"

namespace aqua {
namespace {

struct Instance {
  Table table;
  PMapping pmapping;
};

// Integer-valued random instance so resolution 1 is exact.
Instance MakeIntegerInstance(uint64_t seed, size_t n, size_t m) {
  Rng rng(seed);
  const size_t k = 5;
  std::vector<Attribute> attrs = {{"id", ValueType::kInt64}};
  for (size_t a = 0; a < k; ++a) {
    attrs.push_back({"a" + std::to_string(a), ValueType::kDouble});
  }
  std::vector<Column> cols;
  cols.emplace_back(ValueType::kInt64);
  for (size_t a = 0; a < k; ++a) cols.emplace_back(ValueType::kDouble);
  for (size_t r = 0; r < n; ++r) {
    cols[0].AppendInt64(static_cast<int64_t>(r));
    for (size_t a = 0; a < k; ++a) {
      cols[a + 1].AppendDouble(static_cast<double>(rng.UniformInt(-5, 12)));
    }
  }
  Table table = *Table::Make(*Schema::Make(attrs), std::move(cols));
  MappingGeneratorOptions gen;
  gen.num_mappings = m;
  gen.target_attribute = "value";
  for (size_t a = 0; a < k; ++a) {
    gen.candidate_sources.push_back("a" + std::to_string(a));
  }
  gen.certain.push_back({"id", "id"});
  PMapping pm = *GenerateRandomPMapping(gen, rng);
  return Instance{std::move(table), std::move(pm)};
}

AggregateQuery SumQuery() {
  return *SqlParser::ParseSimple("SELECT SUM(value) FROM T WHERE value < 9");
}

class QuantizedSumOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QuantizedSumOracleTest, ExactOnIntegerDataAtResolutionOne) {
  const Instance inst = MakeIntegerInstance(GetParam(), 6, 3);
  const AggregateQuery q = SumQuery();
  const auto naive = NaiveByTuple::Dist(q, inst.pmapping, inst.table);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  QuantizedDistOptions opts;
  opts.resolution = 1.0;
  const auto dp = ByTupleSum::DistQuantized(q, inst.pmapping, inst.table,
                                            opts);
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();
  EXPECT_LT(Distribution::TotalVariationDistanceApprox(
                naive->distribution, *dp, 1e-9),
            1e-9)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, QuantizedSumOracleTest,
                         ::testing::Range<uint64_t>(200, 215));

TEST(QuantizedSumTest, NormalisedAndMomentsExactAtResolutionOne) {
  const Instance inst = MakeIntegerInstance(999, 200, 4);
  const AggregateQuery q = SumQuery();
  QuantizedDistOptions opts;
  opts.resolution = 1.0;
  const auto dp =
      ByTupleSum::DistQuantized(q, inst.pmapping, inst.table, opts);
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();
  EXPECT_TRUE(dp->IsNormalized(1e-6));
  // Moments must match the independent-sum moments (which are exact).
  const auto clt = ByTupleCLT::ApproxSum(q, inst.pmapping, inst.table);
  ASSERT_TRUE(clt.ok());
  EXPECT_NEAR(*dp->Expectation(), clt->mean, 1e-6 * std::abs(clt->mean) + 1e-6);
  EXPECT_NEAR(*dp->Variance(), clt->variance,
              1e-6 * clt->variance + 1e-6);
  // The observable support lies within the exact range. (At n = 200 the
  // extreme sums have probability ~p^200, far below double precision, so
  // their atoms underflow to zero and the hull is strictly inside.)
  const auto range = ByTupleSum::RangeSum(q, inst.pmapping, inst.table);
  ASSERT_TRUE(range.ok());
  const auto hull = dp->ToRange();
  ASSERT_TRUE(hull.ok());
  EXPECT_GE(hull->low, range->low - 1e-6);
  EXPECT_LE(hull->high, range->high + 1e-6);
}

TEST(QuantizedSumTest, SupportHullMatchesRangeOnSmallInstance) {
  const Instance inst = MakeIntegerInstance(998, 8, 3);
  const AggregateQuery q = SumQuery();
  QuantizedDistOptions opts;
  opts.resolution = 1.0;
  const auto dp =
      ByTupleSum::DistQuantized(q, inst.pmapping, inst.table, opts);
  const auto range = ByTupleSum::RangeSum(q, inst.pmapping, inst.table);
  ASSERT_TRUE(dp.ok());
  ASSERT_TRUE(range.ok());
  Distribution pruned = *dp;
  pruned.Prune(1e-15);
  const auto hull = pruned.ToRange();
  ASSERT_TRUE(hull.ok());
  EXPECT_NEAR(hull->low, range->low, 1e-6);
  EXPECT_NEAR(hull->high, range->high, 1e-6);
}

TEST(QuantizedSumTest, CoarseResolutionStaysWithinErrorBound) {
  const Instance inst = MakeIntegerInstance(321, 7, 2);
  const AggregateQuery q = SumQuery();
  const auto naive = NaiveByTuple::Dist(q, inst.pmapping, inst.table);
  ASSERT_TRUE(naive.ok());
  QuantizedDistOptions opts;
  opts.resolution = 4.0;
  const auto dp =
      ByTupleSum::DistQuantized(q, inst.pmapping, inst.table, opts);
  ASSERT_TRUE(dp.ok());
  EXPECT_TRUE(dp->IsNormalized(1e-9));
  // Expectations differ by at most n * resolution / 2.
  const double bound = 7 * opts.resolution / 2.0;
  EXPECT_NEAR(*dp->Expectation(), *naive->distribution.Expectation(), bound);
}

TEST(QuantizedSumTest, BudgetGuard) {
  const Instance inst = MakeIntegerInstance(5, 50, 3);
  const AggregateQuery q = SumQuery();
  QuantizedDistOptions opts;
  opts.resolution = 1e-6;  // grid of ~10^9 buckets
  const auto dp =
      ByTupleSum::DistQuantized(q, inst.pmapping, inst.table, opts);
  ASSERT_FALSE(dp.ok());
  EXPECT_EQ(dp.status().code(), StatusCode::kResourceExhausted);
}

TEST(QuantizedSumTest, RejectsBadInput) {
  const Instance inst = MakeIntegerInstance(6, 5, 2);
  QuantizedDistOptions zero;
  zero.resolution = 0.0;
  EXPECT_FALSE(
      ByTupleSum::DistQuantized(SumQuery(), inst.pmapping, inst.table, zero)
          .ok());
  AggregateQuery max_q = SumQuery();
  max_q.func = AggregateFunction::kMax;
  EXPECT_FALSE(
      ByTupleSum::DistQuantized(max_q, inst.pmapping, inst.table).ok());
}

TEST(QuantizedSumTest, EmptySelectionIsPointMassAtZero) {
  const Instance inst = MakeIntegerInstance(7, 5, 2);
  AggregateQuery q =
      *SqlParser::ParseSimple("SELECT SUM(value) FROM T WHERE value > 1000");
  const auto dp = ByTupleSum::DistQuantized(q, inst.pmapping, inst.table);
  ASSERT_TRUE(dp.ok());
  EXPECT_EQ(dp->size(), 1u);
  EXPECT_NEAR(dp->Pr(0.0), 1.0, 1e-12);
}

AggregateQuery AvgQuery() {
  return *SqlParser::ParseSimple("SELECT AVG(value) FROM T WHERE value < 9");
}

class QuantizedAvgOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QuantizedAvgOracleTest, ExactOnIntegerDataAtResolutionOne) {
  const Instance inst = MakeIntegerInstance(GetParam(), 6, 3);
  const AggregateQuery q = AvgQuery();
  const auto naive = NaiveByTuple::Dist(q, inst.pmapping, inst.table);
  ASSERT_TRUE(naive.ok());
  QuantizedDistOptions opts;
  opts.resolution = 1.0;
  const auto dp =
      ByTupleSum::DistAvgQuantized(q, inst.pmapping, inst.table, opts);
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();
  EXPECT_NEAR(dp->undefined_mass, naive->undefined_mass, 1e-9)
      << "seed " << GetParam();
  EXPECT_LT(Distribution::TotalVariationDistanceApprox(
                naive->distribution, dp->distribution, 1e-9),
            1e-9)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, QuantizedAvgOracleTest,
                         ::testing::Range<uint64_t>(400, 412));

TEST(QuantizedAvgTest, MassPartitionsBetweenDefinedAndUndefined) {
  const Instance inst = MakeIntegerInstance(61, 60, 3);
  const auto dp =
      ByTupleSum::DistAvgQuantized(AvgQuery(), inst.pmapping, inst.table);
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();
  EXPECT_NEAR(dp->distribution.TotalMass() + dp->undefined_mass, 1.0, 1e-6);
}

TEST(QuantizedAvgTest, StateBudgetGuard) {
  const Instance inst = MakeIntegerInstance(62, 200, 3);
  QuantizedDistOptions opts;
  opts.max_states = 100;
  const auto dp = ByTupleSum::DistAvgQuantized(AvgQuery(), inst.pmapping,
                                               inst.table, opts);
  ASSERT_FALSE(dp.ok());
  EXPECT_EQ(dp.status().code(), StatusCode::kResourceExhausted);
}

TEST(QuantizedAvgTest, NothingQualifiesIsAllUndefined) {
  const Instance inst = MakeIntegerInstance(63, 5, 2);
  AggregateQuery q =
      *SqlParser::ParseSimple("SELECT AVG(value) FROM T WHERE value > 1000");
  const auto dp = ByTupleSum::DistAvgQuantized(q, inst.pmapping, inst.table);
  ASSERT_TRUE(dp.ok());
  EXPECT_NEAR(dp->undefined_mass, 1.0, 1e-12);
  EXPECT_TRUE(dp->distribution.empty());
}

TEST(QuantizedAvgTest, ExpectedValueFromDpMatchesDeltaMethodTrend) {
  // On a moderate instance the conditional expectation from the exact DP
  // is the ground truth the delta method approximates.
  const Instance inst = MakeIntegerInstance(64, 40, 3);
  const AggregateQuery q = AvgQuery();
  const auto dp = ByTupleSum::DistAvgQuantized(q, inst.pmapping, inst.table);
  ASSERT_TRUE(dp.ok());
  Distribution defined = dp->distribution;
  defined.Prune(0.0);
  const auto exact = defined.Expectation();
  ASSERT_TRUE(exact.ok());
  const auto delta =
      ByTupleCLT::ApproxAvgExpectation(q, inst.pmapping, inst.table);
  ASSERT_TRUE(delta.ok());
  EXPECT_NEAR(*delta, *exact, 0.05 * std::abs(*exact) + 0.5);
}

TEST(QuantizedSumTest, ScalesToThousandsOfTuples) {
  // The whole point: n = 5000 would be 4^5000 sequences for naive, but the
  // DP finishes instantly on an integer grid.
  const Instance inst = MakeIntegerInstance(11, 5000, 4);
  const auto dp = ByTupleSum::DistQuantized(SumQuery(), inst.pmapping,
                                            inst.table);
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();
  EXPECT_TRUE(dp->IsNormalized(1e-6));
  const auto clt = ByTupleCLT::ApproxSum(SumQuery(), inst.pmapping,
                                         inst.table);
  ASSERT_TRUE(clt.ok());
  EXPECT_NEAR(*dp->Expectation(), clt->mean,
              1e-6 * std::abs(clt->mean) + 1e-6);
}

}  // namespace
}  // namespace aqua
