#include "aqua/core/answer.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(AnswerTest, SemanticsNames) {
  EXPECT_EQ(MappingSemanticsToString(MappingSemantics::kByTable), "by-table");
  EXPECT_EQ(MappingSemanticsToString(MappingSemantics::kByTuple), "by-tuple");
  EXPECT_EQ(AggregateSemanticsToString(AggregateSemantics::kRange), "range");
  EXPECT_EQ(AggregateSemanticsToString(AggregateSemantics::kDistribution),
            "distribution");
  EXPECT_EQ(AggregateSemanticsToString(AggregateSemantics::kExpectedValue),
            "expected-value");
}

TEST(AnswerTest, MakeRange) {
  const AggregateAnswer a = AggregateAnswer::MakeRange({1.0, 3.0});
  EXPECT_EQ(a.semantics, AggregateSemantics::kRange);
  EXPECT_EQ(a.range, (Interval{1.0, 3.0}));
  EXPECT_EQ(a.ToString(), "[1, 3]");
}

TEST(AnswerTest, MakeDistribution) {
  Distribution d;
  d.AddMass(2.0, 0.4);
  d.AddMass(3.0, 0.6);
  const AggregateAnswer a = AggregateAnswer::MakeDistribution(d);
  EXPECT_EQ(a.semantics, AggregateSemantics::kDistribution);
  EXPECT_EQ(a.ToString(), "{2: 0.4, 3: 0.6}");
}

TEST(AnswerTest, MakeExpected) {
  const AggregateAnswer a = AggregateAnswer::MakeExpected(2.2);
  EXPECT_EQ(a.semantics, AggregateSemantics::kExpectedValue);
  EXPECT_DOUBLE_EQ(a.expected_value, 2.2);
  EXPECT_EQ(a.ToString(), "2.2");
}

}  // namespace
}  // namespace aqua
