// Property-based validation: on random small instances, every polynomial
// by-tuple algorithm must agree with exhaustive sequence enumeration (the
// semantics' definition), and the paper's structural claims (by-table
// range nests inside by-tuple range; Theorem 4) must hold.

#include <cmath>

#include <gtest/gtest.h>

#include "aqua/core/by_table.h"
#include "aqua/core/by_tuple_count.h"
#include "aqua/core/by_tuple_minmax.h"
#include "aqua/core/by_tuple_sum.h"
#include "aqua/core/naive.h"
#include "aqua/mapping/generator.h"
#include "aqua/query/parser.h"
#include "aqua/workload/synthetic.h"

namespace aqua {
namespace {

struct Instance {
  Table table;
  PMapping pmapping;
};

// A small random instance with integer-valued cells (ties on purpose) and
// 2-4 candidate mappings over 5 value columns.
Instance MakeInstance(uint64_t seed) {
  Rng rng(seed);
  const size_t n = 3 + static_cast<size_t>(rng.UniformInt(0, 4));  // 3..7
  const size_t m = 2 + static_cast<size_t>(rng.UniformInt(0, 2));  // 2..4
  const size_t k = 5;

  std::vector<Attribute> attrs;
  attrs.push_back({"id", ValueType::kInt64});
  for (size_t a = 0; a < k; ++a) {
    attrs.push_back({"a" + std::to_string(a), ValueType::kDouble});
  }
  std::vector<Column> cols;
  cols.emplace_back(ValueType::kInt64);
  for (size_t a = 0; a < k; ++a) cols.emplace_back(ValueType::kDouble);
  for (size_t r = 0; r < n; ++r) {
    cols[0].AppendInt64(static_cast<int64_t>(r));
    for (size_t a = 0; a < k; ++a) {
      // Integer grid [-4, 9]: negatives and ties exercise the edge cases.
      cols[a + 1].AppendDouble(static_cast<double>(rng.UniformInt(-4, 9)));
    }
  }
  Table table = *Table::Make(*Schema::Make(attrs), std::move(cols));

  MappingGeneratorOptions gen;
  gen.num_mappings = m;
  gen.target_attribute = "value";
  for (size_t a = 0; a < k; ++a) {
    gen.candidate_sources.push_back("a" + std::to_string(a));
  }
  gen.certain.push_back({"id", "id"});
  PMapping pm = *GenerateRandomPMapping(gen, rng);
  return Instance{std::move(table), std::move(pm)};
}

AggregateQuery MakeQuery(AggregateFunction func, double threshold) {
  AggregateQuery q;
  q.func = func;
  if (func != AggregateFunction::kCount) q.attribute = "value";
  q.relation = "T";
  q.where =
      Predicate::Comparison("value", CompareOp::kLt, Value::Double(threshold));
  return q;
}

class OracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleTest, CountRangeDistExpected) {
  const Instance inst = MakeInstance(GetParam());
  const AggregateQuery q = MakeQuery(AggregateFunction::kCount, 5.0);
  const auto naive = NaiveByTuple::Dist(q, inst.pmapping, inst.table);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();

  const auto range = ByTupleCount::Range(q, inst.pmapping, inst.table);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(*range, *naive->distribution.ToRange());

  const auto dist = ByTupleCount::Dist(q, inst.pmapping, inst.table);
  ASSERT_TRUE(dist.ok());
  Distribution pruned = *dist;
  pruned.Prune(1e-14);
  EXPECT_LT(Distribution::TotalVariationDistance(pruned,
                                                 naive->distribution),
            1e-9);

  const auto expected = ByTupleCount::Expected(q, inst.pmapping, inst.table);
  ASSERT_TRUE(expected.ok());
  EXPECT_NEAR(*expected, *naive->distribution.Expectation(), 1e-9);
}

TEST_P(OracleTest, SumRangeAndExpected) {
  const Instance inst = MakeInstance(GetParam());
  const AggregateQuery q = MakeQuery(AggregateFunction::kSum, 5.0);
  const auto naive = NaiveByTuple::Dist(q, inst.pmapping, inst.table);
  ASSERT_TRUE(naive.ok());

  const auto range = ByTupleSum::RangeSum(q, inst.pmapping, inst.table);
  ASSERT_TRUE(range.ok());
  const auto hull = naive->distribution.ToRange();
  ASSERT_TRUE(hull.ok());
  EXPECT_NEAR(range->low, hull->low, 1e-9);
  EXPECT_NEAR(range->high, hull->high, 1e-9);

  const auto expected = ByTupleSum::ExpectedSum(q, inst.pmapping, inst.table);
  ASSERT_TRUE(expected.ok());
  EXPECT_NEAR(*expected, *naive->distribution.Expectation(), 1e-9);

  const auto linear =
      ByTupleSum::ExpectedSumLinear(q, inst.pmapping, inst.table);
  ASSERT_TRUE(linear.ok());
  EXPECT_NEAR(*linear, *expected, 1e-9);
}

TEST_P(OracleTest, AvgExactRange) {
  const Instance inst = MakeInstance(GetParam());
  const AggregateQuery q = MakeQuery(AggregateFunction::kAvg, 5.0);
  const auto naive = NaiveByTuple::Dist(q, inst.pmapping, inst.table);
  ASSERT_TRUE(naive.ok());
  const auto exact = ByTupleSum::RangeAvgExact(q, inst.pmapping, inst.table);
  if (naive->distribution.empty()) {
    EXPECT_FALSE(exact.ok());
    return;
  }
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  const auto hull = naive->distribution.ToRange();
  ASSERT_TRUE(hull.ok());
  EXPECT_NEAR(exact->low, hull->low, 1e-9);
  EXPECT_NEAR(exact->high, hull->high, 1e-9);
}

TEST_P(OracleTest, MinMaxRange) {
  const Instance inst = MakeInstance(GetParam());
  for (auto func : {AggregateFunction::kMin, AggregateFunction::kMax}) {
    const AggregateQuery q = MakeQuery(func, 5.0);
    const auto naive = NaiveByTuple::Dist(q, inst.pmapping, inst.table);
    ASSERT_TRUE(naive.ok());
    const auto fast = func == AggregateFunction::kMin
                          ? ByTupleMinMax::RangeMin(q, inst.pmapping,
                                                    inst.table)
                          : ByTupleMinMax::RangeMax(q, inst.pmapping,
                                                    inst.table);
    if (naive->distribution.empty()) {
      EXPECT_FALSE(fast.ok());
      continue;
    }
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    const auto hull = naive->distribution.ToRange();
    ASSERT_TRUE(hull.ok());
    EXPECT_NEAR(fast->low, hull->low, 1e-9)
        << "func " << AggregateFunctionToString(func) << " seed "
        << GetParam();
    EXPECT_NEAR(fast->high, hull->high, 1e-9)
        << "func " << AggregateFunctionToString(func) << " seed "
        << GetParam();
  }
}

TEST_P(OracleTest, MinMaxDistributionAgainstOracle) {
  const Instance inst = MakeInstance(GetParam());
  for (auto func : {AggregateFunction::kMin, AggregateFunction::kMax}) {
    const AggregateQuery q = MakeQuery(func, 5.0);
    const auto naive = NaiveByTuple::Dist(q, inst.pmapping, inst.table);
    ASSERT_TRUE(naive.ok());
    const auto exact =
        func == AggregateFunction::kMin
            ? ByTupleMinMax::DistMin(q, inst.pmapping, inst.table)
            : ByTupleMinMax::DistMax(q, inst.pmapping, inst.table);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    EXPECT_NEAR(exact->undefined_mass, naive->undefined_mass, 1e-9)
        << "func " << AggregateFunctionToString(func) << " seed "
        << GetParam();
    EXPECT_LT(Distribution::TotalVariationDistanceApprox(
                  exact->distribution, naive->distribution, 1e-9),
              1e-9)
        << "func " << AggregateFunctionToString(func) << " seed "
        << GetParam();
  }
}

TEST_P(OracleTest, ByTableRangeNestsInsideByTupleRange) {
  const Instance inst = MakeInstance(GetParam());
  for (auto func : {AggregateFunction::kCount, AggregateFunction::kSum}) {
    const AggregateQuery q = MakeQuery(func, 5.0);
    const auto by_table =
        ByTable::Answer(q, inst.pmapping, inst.table,
                        AggregateSemantics::kRange);
    ASSERT_TRUE(by_table.ok());
    const auto by_tuple =
        func == AggregateFunction::kCount
            ? ByTupleCount::Range(q, inst.pmapping, inst.table)
            : ByTupleSum::RangeSum(q, inst.pmapping, inst.table);
    ASSERT_TRUE(by_tuple.ok());
    EXPECT_TRUE(by_tuple->Covers(by_table->range))
        << "func " << AggregateFunctionToString(func) << ": by-table "
        << by_table->range.ToString() << " vs by-tuple "
        << by_tuple->ToString();
  }
}

TEST_P(OracleTest, ByTableDistributionMatchesPerMappingExecution) {
  const Instance inst = MakeInstance(GetParam());
  const AggregateQuery q = MakeQuery(AggregateFunction::kSum, 5.0);
  const auto a = ByTable::Answer(q, inst.pmapping, inst.table,
                                 AggregateSemantics::kDistribution);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR(a->distribution.TotalMass(), 1.0, 1e-9);
  EXPECT_LE(a->distribution.size(), inst.pmapping.size());
}

TEST_P(OracleTest, PaperAvgRangeIsExactWhenConditionIsVacuous) {
  const Instance inst = MakeInstance(GetParam());
  AggregateQuery q = MakeQuery(AggregateFunction::kAvg, 5.0);
  q.where = Predicate::True();  // every tuple mandatory
  const auto paper = ByTupleSum::RangeAvgPaper(q, inst.pmapping, inst.table);
  const auto naive = NaiveByTuple::Dist(q, inst.pmapping, inst.table);
  ASSERT_TRUE(paper.ok());
  ASSERT_TRUE(naive.ok());
  const auto hull = naive->distribution.ToRange();
  ASSERT_TRUE(hull.ok());
  EXPECT_NEAR(paper->low, hull->low, 1e-9);
  EXPECT_NEAR(paper->high, hull->high, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, OracleTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace aqua
