// Candidate mappings are whole relation mappings, so several target
// attributes can be uncertain *jointly* — each candidate fixes all of them
// at once. These tests exercise queries whose aggregate attribute and
// WHERE attributes all shift together across candidates, validating the
// PTIME algorithms against exhaustive enumeration.

#include <gtest/gtest.h>

#include "aqua/core/by_table.h"
#include "aqua/core/by_tuple_count.h"
#include "aqua/core/by_tuple_minmax.h"
#include "aqua/core/by_tuple_sum.h"
#include "aqua/core/naive.h"
#include "aqua/query/parser.h"
#include "aqua/workload/synthetic.h"

namespace aqua {
namespace {

struct Instance {
  Table table;
  PMapping pmapping;
};

/// Source S(id, a0..a3); target T(id, value, flag). Candidate j maps value
/// and flag to a rotated pair of source columns, so *both* query
/// attributes are uncertain and correlated through the candidate choice.
Instance MakeInstance(uint64_t seed) {
  Rng rng(seed);
  const size_t n = 3 + static_cast<size_t>(rng.UniformInt(0, 3));  // 3..6
  const size_t k = 4;
  std::vector<Attribute> attrs = {{"id", ValueType::kInt64}};
  for (size_t a = 0; a < k; ++a) {
    attrs.push_back({"a" + std::to_string(a), ValueType::kDouble});
  }
  std::vector<Column> cols;
  cols.emplace_back(ValueType::kInt64);
  for (size_t a = 0; a < k; ++a) cols.emplace_back(ValueType::kDouble);
  for (size_t r = 0; r < n; ++r) {
    cols[0].AppendInt64(static_cast<int64_t>(r));
    for (size_t a = 0; a < k; ++a) {
      cols[a + 1].AppendDouble(static_cast<double>(rng.UniformInt(0, 9)));
    }
  }
  Table table = *Table::Make(*Schema::Make(attrs), std::move(cols));

  const size_t m = 2 + static_cast<size_t>(rng.UniformInt(0, 1));  // 2..3
  std::vector<double> probs = rng.RandomProbabilities(m);
  std::vector<PMapping::Alternative> alts;
  for (size_t j = 0; j < m; ++j) {
    std::vector<Correspondence> corr = {
        {"id", "id"},
        {"a" + std::to_string(j), "value"},
        {"a" + std::to_string((j + 1) % k), "flag"},
    };
    alts.push_back(PMapping::Alternative{
        *RelationMapping::Make("S", "T", std::move(corr)), probs[j]});
  }
  return Instance{std::move(table), *PMapping::Make(std::move(alts))};
}

AggregateQuery MakeQuery(AggregateFunction func) {
  // Both `value` and `flag` are uncertain; the conjunction ties them.
  AggregateQuery q = *SqlParser::ParseSimple(
      "SELECT SUM(value) FROM T WHERE flag < 6 AND value > 1");
  q.func = func;
  if (func == AggregateFunction::kCount) q.attribute.clear();
  return q;
}

class MultiAttributeOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiAttributeOracleTest, CountAgainstOracle) {
  const Instance inst = MakeInstance(GetParam());
  const AggregateQuery q = MakeQuery(AggregateFunction::kCount);
  const auto naive = NaiveByTuple::Dist(q, inst.pmapping, inst.table);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  const auto range = ByTupleCount::Range(q, inst.pmapping, inst.table);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(*range, *naive->distribution.ToRange());
  const auto dist = ByTupleCount::Dist(q, inst.pmapping, inst.table);
  ASSERT_TRUE(dist.ok());
  Distribution pruned = *dist;
  pruned.Prune(1e-14);
  EXPECT_LT(
      Distribution::TotalVariationDistance(pruned, naive->distribution),
      1e-9);
}

TEST_P(MultiAttributeOracleTest, SumAgainstOracle) {
  const Instance inst = MakeInstance(GetParam());
  const AggregateQuery q = MakeQuery(AggregateFunction::kSum);
  const auto naive = NaiveByTuple::Dist(q, inst.pmapping, inst.table);
  ASSERT_TRUE(naive.ok());
  const auto range = ByTupleSum::RangeSum(q, inst.pmapping, inst.table);
  ASSERT_TRUE(range.ok());
  const auto hull = naive->distribution.ToRange();
  ASSERT_TRUE(hull.ok());
  EXPECT_NEAR(range->low, hull->low, 1e-9);
  EXPECT_NEAR(range->high, hull->high, 1e-9);
  const auto expected =
      ByTupleSum::ExpectedSumLinear(q, inst.pmapping, inst.table);
  ASSERT_TRUE(expected.ok());
  EXPECT_NEAR(*expected, *naive->distribution.Expectation(), 1e-9);
}

TEST_P(MultiAttributeOracleTest, MinMaxAgainstOracle) {
  const Instance inst = MakeInstance(GetParam());
  for (auto func : {AggregateFunction::kMin, AggregateFunction::kMax}) {
    const AggregateQuery q = MakeQuery(func);
    const auto naive = NaiveByTuple::Dist(q, inst.pmapping, inst.table);
    ASSERT_TRUE(naive.ok());
    const auto fast =
        func == AggregateFunction::kMin
            ? ByTupleMinMax::RangeMin(q, inst.pmapping, inst.table)
            : ByTupleMinMax::RangeMax(q, inst.pmapping, inst.table);
    if (naive->distribution.empty()) {
      EXPECT_FALSE(fast.ok());
      continue;
    }
    ASSERT_TRUE(fast.ok());
    const auto hull = naive->distribution.ToRange();
    ASSERT_TRUE(hull.ok());
    EXPECT_NEAR(fast->low, hull->low, 1e-9) << "seed " << GetParam();
    EXPECT_NEAR(fast->high, hull->high, 1e-9) << "seed " << GetParam();
  }
}

TEST_P(MultiAttributeOracleTest, ByTableStillNests) {
  const Instance inst = MakeInstance(GetParam());
  const AggregateQuery q = MakeQuery(AggregateFunction::kSum);
  const auto by_table =
      ByTable::Answer(q, inst.pmapping, inst.table, AggregateSemantics::kRange);
  const auto by_tuple = ByTupleSum::RangeSum(q, inst.pmapping, inst.table);
  ASSERT_TRUE(by_table.ok());
  ASSERT_TRUE(by_tuple.ok());
  EXPECT_TRUE(by_tuple->Covers(by_table->range));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MultiAttributeOracleTest,
                         ::testing::Range<uint64_t>(100, 130));

}  // namespace
}  // namespace aqua
