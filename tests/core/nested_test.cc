#include "aqua/core/nested.h"

#include <gtest/gtest.h>

#include "aqua/core/by_table.h"
#include "aqua/query/parser.h"
#include "aqua/workload/ebay.h"

namespace aqua {
namespace {

class NestedFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ds2_ = *PaperInstanceDS2();
    pm2_ = *MakeEbayPMapping();
    q2_ = PaperQueryQ2();
  }
  Table ds2_;
  PMapping pm2_;
  NestedAggregateQuery q2_;
};

TEST_F(NestedFixture, Q2ByTupleRange) {
  // Per-auction MAX ranges: auction 34 -> [336.94, 349.99],
  // auction 38 -> [340.5, 439.95]; outer AVG of bounds.
  const auto r = NestedByTuple::Range(q2_, pm2_, ds2_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r->low, (336.94 + 340.5) / 2, 1e-9);
  EXPECT_NEAR(r->high, (349.99 + 439.95) / 2, 1e-9);
}

TEST_F(NestedFixture, Q2ByTupleRangeMatchesNaiveHull) {
  const auto fast = NestedByTuple::Range(q2_, pm2_, ds2_);
  const auto naive = NestedByTuple::NaiveDist(q2_, pm2_, ds2_);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_NEAR(naive->undefined_mass, 0.0, 1e-12);
  const auto hull = naive->distribution.ToRange();
  ASSERT_TRUE(hull.ok());
  EXPECT_NEAR(fast->low, hull->low, 1e-9);
  EXPECT_NEAR(fast->high, hull->high, 1e-9);
}

TEST_F(NestedFixture, ByTableRangeWithinByTupleRange) {
  const auto by_table = ByTable::AnswerNested(q2_, pm2_, ds2_,
                                              AggregateSemantics::kRange);
  const auto by_tuple = NestedByTuple::Range(q2_, pm2_, ds2_);
  ASSERT_TRUE(by_table.ok());
  ASSERT_TRUE(by_tuple.ok());
  EXPECT_TRUE(by_tuple->Covers(by_table->range));
}

TEST_F(NestedFixture, OuterSumAndMinAndMax) {
  for (auto outer : {AggregateFunction::kSum, AggregateFunction::kMin,
                     AggregateFunction::kMax, AggregateFunction::kCount}) {
    NestedAggregateQuery q = q2_;
    q.outer = outer;
    const auto fast = NestedByTuple::Range(q, pm2_, ds2_);
    const auto naive = NestedByTuple::NaiveDist(q, pm2_, ds2_);
    ASSERT_TRUE(fast.ok()) << static_cast<int>(outer);
    ASSERT_TRUE(naive.ok());
    const auto hull = naive->distribution.ToRange();
    ASSERT_TRUE(hull.ok());
    EXPECT_NEAR(fast->low, hull->low, 1e-9) << static_cast<int>(outer);
    EXPECT_NEAR(fast->high, hull->high, 1e-9) << static_cast<int>(outer);
  }
}

TEST_F(NestedFixture, InnerSumAndAvgAndMinAndCount) {
  for (auto inner : {AggregateFunction::kSum, AggregateFunction::kAvg,
                     AggregateFunction::kMin, AggregateFunction::kCount}) {
    NestedAggregateQuery q = q2_;
    q.inner.func = inner;
    q.inner.distinct = false;
    const auto fast = NestedByTuple::Range(q, pm2_, ds2_);
    const auto naive = NestedByTuple::NaiveDist(q, pm2_, ds2_);
    ASSERT_TRUE(fast.ok()) << static_cast<int>(inner);
    ASSERT_TRUE(naive.ok());
    const auto hull = naive->distribution.ToRange();
    ASSERT_TRUE(hull.ok());
    EXPECT_NEAR(fast->low, hull->low, 1e-9) << static_cast<int>(inner);
    EXPECT_NEAR(fast->high, hull->high, 1e-9) << static_cast<int>(inner);
  }
}

TEST_F(NestedFixture, UncertainGroupByIsUnimplemented) {
  NestedAggregateQuery q = q2_;
  q.inner.group_by = "price";  // the uncertain attribute
  const auto r = NestedByTuple::Range(q, pm2_, ds2_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST_F(NestedFixture, VanishableGroupIsUnimplemented) {
  NestedAggregateQuery q = q2_;
  // price > 430 qualifies rows only under one mapping each, so both groups
  // can vanish.
  q.inner.where = Predicate::Comparison("price", CompareOp::kGt,
                                        Value::Double(430.0));
  const auto r = NestedByTuple::Range(q, pm2_, ds2_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST_F(NestedFixture, NaiveBudgetGuard) {
  NaiveOptions limits;
  limits.max_sequences = 4;  // 2^8 needed
  const auto r = NestedByTuple::NaiveDist(q2_, pm2_, ds2_, limits);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(NestedFixture, InvalidNestedQueryRejected) {
  NestedAggregateQuery q = q2_;
  q.inner.group_by.clear();
  EXPECT_FALSE(NestedByTuple::Range(q, pm2_, ds2_).ok());
}

}  // namespace
}  // namespace aqua
