#include "aqua/core/by_tuple_count.h"

#include <gtest/gtest.h>

#include "aqua/query/parser.h"
#include "aqua/storage/table_builder.h"
#include "aqua/workload/real_estate.h"

namespace aqua {
namespace {

class ByTupleCountFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ds1_ = *PaperInstanceDS1();
    pm1_ = *MakeRealEstatePMapping();
    q1_ = PaperQueryQ1();
  }
  Table ds1_;
  PMapping pm1_;
  AggregateQuery q1_;
};

TEST_F(ByTupleCountFixture, RangeMatchesPaperTrace) {
  const auto r = ByTupleCount::Range(q1_, pm1_, ds1_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Interval{1.0, 3.0}));
}

TEST_F(ByTupleCountFixture, DistIsNormalised) {
  const auto d = ByTupleCount::Dist(q1_, pm1_, ds1_);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->IsNormalized(1e-9));
}

TEST_F(ByTupleCountFixture, DistSupportMatchesRange) {
  const auto d = ByTupleCount::Dist(q1_, pm1_, ds1_);
  const auto r = ByTupleCount::Range(q1_, pm1_, ds1_);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(r.ok());
  // The range derivable from the distribution (§III-B) must equal the
  // directly computed range (zero-probability outcomes aside).
  Distribution pruned = *d;
  pruned.Prune(1e-15);
  EXPECT_EQ(*pruned.ToRange(), *r);
}

TEST_F(ByTupleCountFixture, ExpectedMatchesDerived) {
  const auto direct = ByTupleCount::Expected(q1_, pm1_, ds1_);
  const auto derived = ByTupleCount::ExpectedViaDistribution(q1_, pm1_, ds1_);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(derived.ok());
  EXPECT_NEAR(*direct, *derived, 1e-12);
}

TEST_F(ByTupleCountFixture, RowSubsetRestrictsComputation) {
  const std::vector<uint32_t> rows = {2};  // tuple 3: satisfies under both
  const auto r = ByTupleCount::Range(q1_, pm1_, ds1_, &rows);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Interval{1.0, 1.0}));
  const auto d = ByTupleCount::Dist(q1_, pm1_, ds1_, &rows);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->Pr(1.0), 1.0, 1e-12);
}

TEST_F(ByTupleCountFixture, EmptyRowSubset) {
  const std::vector<uint32_t> rows;
  const auto r = ByTupleCount::Range(q1_, pm1_, ds1_, &rows);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Interval{0.0, 0.0}));
  const auto d = ByTupleCount::Dist(q1_, pm1_, ds1_, &rows);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->Pr(0.0), 1.0, 1e-12);
  const auto e = ByTupleCount::Expected(q1_, pm1_, ds1_, &rows);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 0.0);
}

TEST_F(ByTupleCountFixture, RejectsNonCountQuery) {
  AggregateQuery q = q1_;
  q.func = AggregateFunction::kSum;
  q.attribute = "listPrice";
  EXPECT_FALSE(ByTupleCount::Range(q, pm1_, ds1_).ok());
}

TEST_F(ByTupleCountFixture, RejectsCountDistinct) {
  AggregateQuery q = q1_;
  q.attribute = "date";
  q.distinct = true;
  const auto r = ByTupleCount::Range(q, pm1_, ds1_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST_F(ByTupleCountFixture, CountAttributeSkipsNullsPerMapping) {
  // A table where the attribute is NULL under one mapping's column but not
  // the other's: COUNT(date) must treat NULL-under-a-mapping like a
  // non-satisfying mapping.
  const Schema schema = *Schema::Make({{"ID", ValueType::kInt64},
                                       {"price", ValueType::kDouble},
                                       {"agentPhone", ValueType::kString},
                                       {"postedDate", ValueType::kDate},
                                       {"reducedDate", ValueType::kDate}});
  TableBuilder b(schema);
  ASSERT_TRUE(b.AppendRow({Value::Int64(1), Value::Double(1.0),
                           Value::String("x"),
                           Value::FromDate(*Date::FromYmd(2008, 1, 5)),
                           Value::Null()})
                  .ok());
  const Table t = *std::move(b).Finish();
  AggregateQuery q;
  q.func = AggregateFunction::kCount;
  q.attribute = "date";
  q.relation = "T1";
  q.where = Predicate::True();
  const auto r = ByTupleCount::Range(q, pm1_, t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Under m11 the date is present (counts), under m12 it is NULL (does
  // not), so the count ranges over [0, 1].
  EXPECT_EQ(*r, (Interval{0.0, 1.0}));
  const auto e = ByTupleCount::Expected(q, pm1_, t);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(*e, 0.6, 1e-12);
}

TEST_F(ByTupleCountFixture, DistShiftsWhenAllMappingsSatisfy) {
  // Tuples that satisfy under every mapping shift the distribution right
  // deterministically: with no WHERE, COUNT(*) == n with certainty.
  AggregateQuery q;
  q.func = AggregateFunction::kCount;
  q.relation = "T1";
  q.where = Predicate::True();
  const auto d = ByTupleCount::Dist(q, pm1_, ds1_);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->Pr(4.0), 1.0, 1e-12);
}

TEST_F(ByTupleCountFixture, MonotoneDistributionScaling) {
  // Growing prefix subsets: expected count must be monotone.
  double prev = -1.0;
  for (uint32_t n = 1; n <= 4; ++n) {
    std::vector<uint32_t> rows;
    for (uint32_t r = 0; r < n; ++r) rows.push_back(r);
    const auto e = ByTupleCount::Expected(q1_, pm1_, ds1_, &rows);
    ASSERT_TRUE(e.ok());
    EXPECT_GE(*e, prev);
    prev = *e;
  }
}

}  // namespace
}  // namespace aqua
