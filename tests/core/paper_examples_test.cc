// Golden tests pinning every worked example in the paper to this
// implementation. Where the paper's printed numbers are internally
// inconsistent with its own Table I/II data (several known typos,
// documented in EXPERIMENTS.md), the asserted values are the ones derived
// from the data, cross-checked against exhaustive sequence enumeration in
// oracle_property_test.cc.

#include <cmath>

#include <gtest/gtest.h>

#include "aqua/core/by_table.h"
#include "aqua/core/by_tuple_count.h"
#include "aqua/core/by_tuple_minmax.h"
#include "aqua/core/by_tuple_sum.h"
#include "aqua/core/naive.h"
#include "aqua/core/nested.h"
#include "aqua/workload/ebay.h"
#include "aqua/workload/real_estate.h"

namespace aqua {
namespace {

// Probability mass within `tol` of `outcome` (float-safe Pr lookup for
// outcomes that are sums/averages of decimals).
double PrNear(const Distribution& d, double outcome, double tol = 1e-6) {
  double mass = 0.0;
  for (const auto& e : d.entries()) {
    if (std::abs(e.outcome - outcome) <= tol) mass += e.prob;
  }
  return mass;
}

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds1_ = *PaperInstanceDS1();
    pm1_ = *MakeRealEstatePMapping();
    q1_ = PaperQueryQ1();
    ds2_ = *PaperInstanceDS2();
    pm2_ = *MakeEbayPMapping();
    q2p_ = PaperQueryQ2Prime();
  }

  Table ds1_;
  PMapping pm1_;
  AggregateQuery q1_;
  Table ds2_;
  PMapping pm2_;
  AggregateQuery q2p_;
};

// --- Example 3 / Table III: COUNT of Q1 over Table I. ---------------------

TEST_F(PaperExamplesTest, Q1ByTableDistribution) {
  // Q11 (postedDate < 1/20): tuples 1, 3, 4 -> 3, probability 0.6.
  // Q12 (reducedDate < 1/20): tuple 3 only -> 1, probability 0.4.
  // (The paper's Table III prints 2 for Q12 — inconsistent with its own
  // Table I, where only tuple 3 has reducedDate before Jan 20.)
  const auto a = ByTable::Answer(q1_, pm1_, ds1_,
                                 AggregateSemantics::kDistribution);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_NEAR(a->distribution.Pr(3.0), 0.6, 1e-12);
  EXPECT_NEAR(a->distribution.Pr(1.0), 0.4, 1e-12);
  EXPECT_EQ(a->distribution.size(), 2u);
}

TEST_F(PaperExamplesTest, Q1ByTableRangeAndExpected) {
  const auto range =
      ByTable::Answer(q1_, pm1_, ds1_, AggregateSemantics::kRange);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->range, (Interval{1.0, 3.0}));
  const auto ev =
      ByTable::Answer(q1_, pm1_, ds1_, AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(ev.ok());
  EXPECT_NEAR(ev->expected_value, 3 * 0.6 + 1 * 0.4, 1e-12);
}

// --- Table IV: ByTupleRangeCOUNT trace, final answer [1, 3]. --------------

TEST_F(PaperExamplesTest, Q1ByTupleRangeCount) {
  const auto r = ByTupleCount::Range(q1_, pm1_, ds1_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, (Interval{1.0, 3.0}));
}

// --- Table V / Example 3: ByTuplePDCOUNT final distribution. --------------

TEST_F(PaperExamplesTest, Q1ByTupleDistribution) {
  // Paper: 1 with probability 0.16, 2 with 0.48, 3 with 0.36.
  const auto d = ByTupleCount::Dist(q1_, pm1_, ds1_);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_NEAR(d->Pr(1.0), 0.16, 1e-12);
  EXPECT_NEAR(d->Pr(2.0), 0.48, 1e-12);
  EXPECT_NEAR(d->Pr(3.0), 0.36, 1e-12);
  EXPECT_NEAR(d->Pr(0.0), 0.0, 1e-12);
  EXPECT_TRUE(d->IsNormalized(1e-9));
}

// --- Table III bottom-right: by-tuple expected COUNT = 2.2. ---------------

TEST_F(PaperExamplesTest, Q1ByTupleExpectedCount) {
  const auto direct = ByTupleCount::Expected(q1_, pm1_, ds1_);
  ASSERT_TRUE(direct.ok());
  EXPECT_NEAR(*direct, 2.2, 1e-12);
  const auto derived = ByTupleCount::ExpectedViaDistribution(q1_, pm1_, ds1_);
  ASSERT_TRUE(derived.ok());
  EXPECT_NEAR(*derived, 2.2, 1e-12);
}

// --- Example 3 sequence probability. ---------------------------------------

TEST_F(PaperExamplesTest, SequenceProbabilityExample) {
  // Pr(m11, m12, m12, m11) = 0.6 * 0.4 * 0.4 * 0.6 = 0.0576 — implied by
  // independence; checked via the naive enumerator's total mass and the
  // distribution above.
  EXPECT_NEAR(0.6 * 0.4 * 0.4 * 0.6, 0.0576, 1e-12);
}

// --- Table VI / Q2': ByTupleRangeSUM. --------------------------------------

TEST_F(PaperExamplesTest, Q2PrimeByTupleRangeSum) {
  // Sum over auction 34's four tuples of [min(bid, current), max(...)]:
  //   mins: 195 + 197.5 + 202.5 + 336.94 = 931.94
  //   maxs: 195 + 200 + 331.94 + 349.99 = 1076.93
  // (The paper's Table VI trace mixes in auction 38's rows — another typo;
  // its own Example 5 confirms 931.94 and 1076.93 as the extreme by-table
  // sums, which for SUM coincide with the by-tuple bounds here.)
  const auto r = ByTupleSum::RangeSum(q2p_, pm2_, ds2_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r->low, 931.94, 1e-9);
  EXPECT_NEAR(r->high, 1076.93, 1e-9);
}

// --- Example 5 / Table VII: expected SUM, Theorem 4. -----------------------

TEST_F(PaperExamplesTest, Q2PrimeByTableExpectedSum) {
  // 1076.93 * 0.3 + 931.94 * 0.7 = 975.437.
  const auto a =
      ByTable::Answer(q2p_, pm2_, ds2_, AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR(a->expected_value, 975.437, 1e-9);
}

TEST_F(PaperExamplesTest, Q2PrimeByTableDistribution) {
  const auto a =
      ByTable::Answer(q2p_, pm2_, ds2_, AggregateSemantics::kDistribution);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR(PrNear(a->distribution, 1076.93), 0.3, 1e-12);
  EXPECT_NEAR(PrNear(a->distribution, 931.94), 0.7, 1e-12);
}

TEST_F(PaperExamplesTest, Theorem4ByTupleExpectedSumEqualsByTable) {
  const auto by_tuple = ByTupleSum::ExpectedSum(q2p_, pm2_, ds2_);
  ASSERT_TRUE(by_tuple.ok());
  EXPECT_NEAR(*by_tuple, 975.437, 1e-9);
  const auto linear = ByTupleSum::ExpectedSumLinear(q2p_, pm2_, ds2_);
  ASSERT_TRUE(linear.ok());
  EXPECT_NEAR(*linear, 975.437, 1e-9);
  // Table VII enumerates all 16 sequences; the naive enumerator is that
  // table mechanised.
  const auto naive = NaiveByTuple::Expected(q2p_, pm2_, ds2_);
  ASSERT_TRUE(naive.ok());
  EXPECT_NEAR(*naive, 975.437, 1e-9);
}

// --- §IV MAX example: auction 38 under the range semantics. ----------------

TEST_F(PaperExamplesTest, Auction38ByTupleRangeMax) {
  // v5 = [300, 330.01], v6 = [335.01, 429.95], v7 = [336.3, 439.95],
  // v8 = [340.5, 438.05]  ->  [max mins, max maxs] = [340.5, 439.95].
  // (The paper prints the lower bound as 340.05 — transposition of 340.5.)
  AggregateQuery q;
  q.func = AggregateFunction::kMax;
  q.attribute = "price";
  q.relation = "T2";
  q.where =
      Predicate::Comparison("auctionId", CompareOp::kEq, Value::Int64(38));
  const auto r = ByTupleMinMax::RangeMax(q, pm2_, ds2_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r->low, 340.5, 1e-9);
  EXPECT_NEAR(r->high, 439.95, 1e-9);
}

TEST_F(PaperExamplesTest, Auction34ByTupleRangeMax) {
  AggregateQuery q;
  q.func = AggregateFunction::kMax;
  q.attribute = "price";
  q.relation = "T2";
  q.where =
      Predicate::Comparison("auctionId", CompareOp::kEq, Value::Int64(34));
  const auto r = ByTupleMinMax::RangeMax(q, pm2_, ds2_);
  ASSERT_TRUE(r.ok());
  // mins: 195, 197.5, 202.5, 336.94 -> max 336.94;
  // maxs: 195, 200, 331.94, 349.99 -> max 349.99.
  EXPECT_NEAR(r->low, 336.94, 1e-9);
  EXPECT_NEAR(r->high, 349.99, 1e-9);
}

// --- Query Q2 (nested): by-table semantics over both auctions. -------------

TEST_F(PaperExamplesTest, Q2ByTableAnswers) {
  // Under m21 (price -> bid): max distinct bid per auction is 349.99 and
  // 439.95 -> AVG 394.97, probability 0.3. Under m22 (price ->
  // currentPrice): 336.94 and 438.05 -> AVG 387.495, probability 0.7.
  // (The paper's Example 4 prints 345.245/385.945, inconsistent with its
  // Table II; see EXPERIMENTS.md.)
  const NestedAggregateQuery q2 = PaperQueryQ2();
  const auto d = ByTable::AnswerNested(q2, pm2_, ds2_,
                                       AggregateSemantics::kDistribution);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_NEAR(PrNear(d->distribution, 394.97), 0.3, 1e-12);
  EXPECT_NEAR(PrNear(d->distribution, 387.495), 0.7, 1e-12);
  const auto ev = ByTable::AnswerNested(q2, pm2_, ds2_,
                                        AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(ev.ok());
  EXPECT_NEAR(ev->expected_value, 394.97 * 0.3 + 387.495 * 0.7, 1e-9);
}

// --- Paper claim: by-table ranges nest inside by-tuple ranges. --------------

TEST_F(PaperExamplesTest, ByTableRangeWithinByTupleRange) {
  const auto table_range =
      ByTable::Answer(q2p_, pm2_, ds2_, AggregateSemantics::kRange);
  const auto tuple_range = ByTupleSum::RangeSum(q2p_, pm2_, ds2_);
  ASSERT_TRUE(table_range.ok());
  ASSERT_TRUE(tuple_range.ok());
  EXPECT_TRUE(tuple_range->Covers(table_range->range));
}

}  // namespace
}  // namespace aqua
