#include "aqua/core/naive.h"

#include <gtest/gtest.h>

#include "aqua/core/by_tuple_count.h"
#include "aqua/query/parser.h"
#include "aqua/workload/ebay.h"
#include "aqua/workload/real_estate.h"

namespace aqua {
namespace {

class NaiveFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ds1_ = *PaperInstanceDS1();
    pm1_ = *MakeRealEstatePMapping();
    q1_ = PaperQueryQ1();
    ds2_ = *PaperInstanceDS2();
    pm2_ = *MakeEbayPMapping();
  }
  Table ds1_;
  PMapping pm1_;
  AggregateQuery q1_;
  Table ds2_;
  PMapping pm2_;
};

TEST_F(NaiveFixture, CountDistributionMatchesExample3) {
  const auto naive = NaiveByTuple::Dist(q1_, pm1_, ds1_);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  EXPECT_NEAR(naive->undefined_mass, 0.0, 1e-12);
  EXPECT_NEAR(naive->distribution.Pr(1.0), 0.16, 1e-12);
  EXPECT_NEAR(naive->distribution.Pr(2.0), 0.48, 1e-12);
  EXPECT_NEAR(naive->distribution.Pr(3.0), 0.36, 1e-12);
}

TEST_F(NaiveFixture, AgreesWithPolynomialCountDistribution) {
  const auto naive = NaiveByTuple::Dist(q1_, pm1_, ds1_);
  const auto fast = ByTupleCount::Dist(q1_, pm1_, ds1_);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(fast.ok());
  Distribution pruned = *fast;
  pruned.Prune(1e-15);
  EXPECT_LT(Distribution::TotalVariationDistance(naive->distribution, pruned),
            1e-9);
}

TEST_F(NaiveFixture, SumDistributionMassAndSupport) {
  AggregateQuery q = PaperQueryQ2Prime();
  const auto naive = NaiveByTuple::Dist(q, pm2_, ds2_);
  ASSERT_TRUE(naive.ok());
  EXPECT_NEAR(naive->distribution.TotalMass(), 1.0, 1e-9);
  // 4 relevant tuples, one with equal bid/current: 2^3 = 8 distinct sums.
  EXPECT_EQ(naive->distribution.size(), 8u);
}

TEST_F(NaiveFixture, UndefinedMassForMinOverEmptyableSelection) {
  // price > 430 holds only via bid 439.95 (tuple 7) or current 438.05
  // (tuple 8), each under one mapping; the all-other-mapping sequence
  // leaves the selection empty.
  AggregateQuery q =
      *SqlParser::ParseSimple("SELECT MIN(price) FROM T2 WHERE price > 430");
  const auto naive = NaiveByTuple::Dist(q, pm2_, ds2_);
  ASSERT_TRUE(naive.ok());
  EXPECT_GT(naive->undefined_mass, 0.0);
  EXPECT_NEAR(naive->distribution.TotalMass() + naive->undefined_mass, 1.0,
              1e-9);
  // Expected value must refuse.
  EXPECT_FALSE(NaiveByTuple::Expected(q, pm2_, ds2_).ok());
}

TEST_F(NaiveFixture, BudgetGuardRefusesLargeInstances) {
  Rng rng(1);
  EbayOptions opts;
  opts.num_auctions = 10;
  opts.min_bids = 4;
  opts.max_bids = 4;
  const Table big = *GenerateEbayTable(opts, rng);
  AggregateQuery q = *SqlParser::ParseSimple("SELECT SUM(price) FROM T2");
  NaiveOptions limits;
  limits.max_sequences = 1024;  // 2^40 sequences needed
  const auto r = NaiveByTuple::Dist(q, pm2_, big, limits);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(NaiveFixture, SingleMappingDegeneratesToDeterministic) {
  const RelationMapping only = pm2_.mapping(1);  // currentPrice
  const PMapping pm = *PMapping::Make({{only, 1.0}});
  AggregateQuery q = *SqlParser::ParseSimple("SELECT SUM(price) FROM T2");
  const auto naive = NaiveByTuple::Dist(q, pm, ds2_);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  EXPECT_EQ(naive->distribution.size(), 1u);
  double total = 0;
  for (size_t i = 0; i < ds2_.num_rows(); ++i) {
    total += ds2_.column(4).DoubleAt(i);
  }
  EXPECT_NEAR(*naive->distribution.Expectation(), total, 1e-9);
}

TEST_F(NaiveFixture, EmptyTableBehaviour) {
  const Table empty = Table::Empty(ds2_.schema());
  AggregateQuery sum = *SqlParser::ParseSimple("SELECT SUM(price) FROM T2");
  const auto s = NaiveByTuple::Dist(sum, pm2_, empty);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->distribution.Pr(0.0), 1.0, 1e-12);
  AggregateQuery mx = *SqlParser::ParseSimple("SELECT MAX(price) FROM T2");
  const auto m = NaiveByTuple::Dist(mx, pm2_, empty);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->undefined_mass, 1.0, 1e-12);
}

TEST_F(NaiveFixture, RowSubsetMatchesTableIIAuction34) {
  AggregateQuery q = *SqlParser::ParseSimple("SELECT SUM(price) FROM T2");
  const std::vector<uint32_t> rows = {0, 1, 2, 3};
  const auto naive = NaiveByTuple::Expected(q, pm2_, ds2_, {}, &rows);
  ASSERT_TRUE(naive.ok());
  EXPECT_NEAR(*naive, 975.437, 1e-9);  // Table VII
}

TEST_F(NaiveFixture, DistinctRejectedExceptMinMax) {
  AggregateQuery q =
      *SqlParser::ParseSimple("SELECT SUM(DISTINCT price) FROM T2");
  EXPECT_FALSE(NaiveByTuple::Dist(q, pm2_, ds2_).ok());
  AggregateQuery mx =
      *SqlParser::ParseSimple("SELECT MAX(DISTINCT price) FROM T2");
  EXPECT_TRUE(NaiveByTuple::Dist(mx, pm2_, ds2_).ok());
}

}  // namespace
}  // namespace aqua
