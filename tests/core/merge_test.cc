// Property tests for the shard merge layer (core/merge.h): every merge
// operator is the exact combination law for its answer shape, so merging
// the same per-tuple partials grouped into 1, 2, or 7 shards must be
// BYTE-identical — not merely close. All randomized probabilities are
// dyadic (multiples of 1/16) over at most 8 tuples, so every product and
// sum below is exact in double precision and bit-equality is a fair
// assertion, mirroring the engine's guarantee that `--shards` never
// changes an answer.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "aqua/common/random.h"
#include "aqua/core/clt.h"
#include "aqua/core/merge.h"
#include "aqua/prob/distribution.h"
#include "aqua/query/parser.h"
#include "aqua/workload/ebay.h"

namespace aqua {
namespace {

/// Deterministic dyadic probability in {1/16, ..., 15/16}.
double DyadicProb(uint64_t* state) {
  *state = SplitMix64(*state);
  return static_cast<double>(1 + (*state % 15)) / 16.0;
}

/// The serial COUNT DP over a set of per-tuple satisfaction
/// probabilities: fold one Bernoulli tuple at a time, exactly as
/// ByTuplePDCOUNT accumulates. The merge layer must reproduce this fold
/// no matter how the tuples are grouped into shards.
Distribution CountDp(const std::vector<double>& probs) {
  std::vector<double> acc = {1.0};
  for (const double p : probs) {
    std::vector<double> next(acc.size() + 1, 0.0);
    for (size_t c = 0; c < acc.size(); ++c) {
      next[c] += acc[c] * (1.0 - p);
      next[c + 1] += acc[c] * p;
    }
    acc = std::move(next);
  }
  Distribution d;
  for (size_t c = 0; c < acc.size(); ++c) {
    if (acc[c] > 0.0) d.AddMass(static_cast<double>(c), acc[c]);
  }
  return d;
}

/// Groups `probs` into `shards` contiguous parts and builds one COUNT
/// ShardPartial per part via the serial DP.
std::vector<merge::ShardPartial> CountParts(const std::vector<double>& probs,
                                            size_t shards) {
  std::vector<merge::ShardPartial> parts(shards);
  for (size_t s = 0; s < shards; ++s) {
    const size_t begin = probs.size() * s / shards;
    const size_t end = probs.size() * (s + 1) / shards;
    parts[s].dist = CountDp(
        std::vector<double>(probs.begin() + begin, probs.begin() + end));
    parts[s].rows_covered = end - begin;
  }
  return parts;
}

TEST(MergeCountTest, ConvolutionIsShardCountInvariant) {
  uint64_t state = 2009;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> probs(8);
    for (double& p : probs) p = DyadicProb(&state);

    const auto serial = CountDp(probs);
    for (const size_t shards : {size_t{1}, size_t{2}, size_t{7}}) {
      const auto merged = merge::MergeCountDistributions(
          CountParts(probs, shards));
      ASSERT_TRUE(merged.ok()) << merged.status().ToString();
      // Bit-equality: Entry's defaulted operator== compares doubles
      // exactly, which dyadic inputs make legitimate.
      EXPECT_EQ(merged->entries(), serial.entries())
          << "trial " << trial << " shards " << shards;
    }
  }
}

TEST(MergeCountTest, EmptyShardIsIdentity) {
  // A shard that was assigned no rows contributes a deterministic count
  // of nothing: its empty distribution must be the convolution identity.
  merge::ShardPartial loaded;
  loaded.dist.AddMass(0.0, 0.25);
  loaded.dist.AddMass(1.0, 0.75);
  merge::ShardPartial empty;
  const auto merged =
      merge::MergeCountDistributions({loaded, empty});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->entries(), loaded.dist.entries());
}

TEST(MergeCountTest, RejectsNonIntegralOutcomes) {
  merge::ShardPartial bad;
  bad.dist.AddMass(1.5, 1.0);
  EXPECT_FALSE(merge::MergeCountDistributions({bad}).ok());
  merge::ShardPartial negative;
  negative.dist.AddMass(-1.0, 1.0);
  EXPECT_FALSE(merge::MergeCountDistributions({negative}).ok());
}

TEST(MergeSumsTest, RangeAndExpectationAreAdditive) {
  merge::ShardPartial a;
  a.range = Interval{-2.0, 5.0};
  a.expected = 1.25;
  merge::ShardPartial b;
  b.range = Interval{1.0, 3.5};
  b.expected = -0.5;
  const Interval r = merge::MergeIntervalSum({a, b});
  EXPECT_EQ(r.low, -1.0);
  EXPECT_EQ(r.high, 8.5);
  EXPECT_EQ(merge::MergeExpectedSum({a, b}), 0.75);
}

TEST(MergeMomentsTest, MatchesApproxSumOverTheWholeTable) {
  // CLT moments over disjoint row subsets add exactly: splitting the
  // paper's DS2 instance in two and merging must reproduce ApproxSum over
  // the full table bit-for-bit (the per-tuple moment accumulation visits
  // tuples in the same order).
  const Table ds2 = *PaperInstanceDS2();
  const PMapping pm = *MakeEbayPMapping();
  const AggregateQuery q = *SqlParser::ParseSimple("SELECT SUM(price) FROM T2");

  const auto whole = ByTupleCLT::ApproxSum(q, pm, ds2);
  ASSERT_TRUE(whole.ok());

  std::vector<uint32_t> lo, hi;
  for (uint32_t r = 0; r < ds2.num_rows(); ++r) {
    (r < ds2.num_rows() / 2 ? lo : hi).push_back(r);
  }
  const auto part_lo = ByTupleCLT::ApproxSum(q, pm, ds2, &lo);
  const auto part_hi = ByTupleCLT::ApproxSum(q, pm, ds2, &hi);
  ASSERT_TRUE(part_lo.ok() && part_hi.ok());

  const NormalApproximation merged =
      merge::MergeMoments({*part_lo, *part_hi});
  EXPECT_EQ(merged.mean, whole->mean);
  EXPECT_EQ(merged.variance, whole->variance);
}

/// Builds a random per-tuple extreme partial: a handful of dyadic atoms
/// plus dyadic undefined mass, normalized exactly.
merge::ShardPartial RandomExtremePartial(uint64_t* state) {
  merge::ShardPartial p;
  // Outcomes are small integers so duplicate outcomes across shards (the
  // interesting merge case) actually occur.
  *state = SplitMix64(*state);
  const int atoms = 1 + static_cast<int>(*state % 3);
  int sixteenths_left = 16;
  for (int a = 0; a < atoms; ++a) {
    *state = SplitMix64(*state);
    const int share = 1 + static_cast<int>(*state % 4);
    const int used = a == atoms - 1
                         ? std::max(1, sixteenths_left - 4)
                         : std::min(share, sixteenths_left - (atoms - a));
    *state = SplitMix64(*state);
    p.dist.AddMass(static_cast<double>(*state % 6),
                   static_cast<double>(used) / 16.0);
    sixteenths_left -= used;
  }
  p.undefined_mass = static_cast<double>(sixteenths_left) / 16.0;
  p.rows_covered = 1;
  return p;
}

merge::ShardPartial ToPartial(const NaiveAnswer& answer) {
  merge::ShardPartial p;
  p.dist = answer.distribution;
  p.undefined_mass = answer.undefined_mass;
  return p;
}

TEST(MergeExtremeTest, CdfProductIsGroupingInvariant) {
  uint64_t state = 42;
  for (const bool is_max : {true, false}) {
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<merge::ShardPartial> tuples;
      for (int t = 0; t < 6; ++t) {
        tuples.push_back(RandomExtremePartial(&state));
      }

      const auto flat = merge::MergeExtremeDistributions(tuples, is_max);
      ASSERT_TRUE(flat.ok()) << flat.status().ToString();

      // Re-associate: merge tuples [0,3) and [3,6) separately, then merge
      // the two intermediate extrema. The CDF product is associative, and
      // with dyadic masses exactly so.
      const auto left = merge::MergeExtremeDistributions(
          {tuples[0], tuples[1], tuples[2]}, is_max);
      const auto right = merge::MergeExtremeDistributions(
          {tuples[3], tuples[4], tuples[5]}, is_max);
      ASSERT_TRUE(left.ok() && right.ok());
      const auto grouped = merge::MergeExtremeDistributions(
          {ToPartial(*left), ToPartial(*right)}, is_max);
      ASSERT_TRUE(grouped.ok());

      EXPECT_EQ(grouped->distribution.entries(), flat->distribution.entries())
          << (is_max ? "MAX" : "MIN") << " trial " << trial;
      EXPECT_EQ(grouped->undefined_mass, flat->undefined_mass);
    }
  }
}

TEST(MergeExtremeTest, SingleShardIsIdentity) {
  uint64_t state = 7;
  const merge::ShardPartial p = RandomExtremePartial(&state);
  for (const bool is_max : {true, false}) {
    const auto merged = merge::MergeExtremeDistributions({p}, is_max);
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(merged->distribution.entries(), p.dist.entries());
    EXPECT_EQ(merged->undefined_mass, p.undefined_mass);
  }
}

TEST(MergeExtremeTest, AllShardsUndefinedMultiplies) {
  merge::ShardPartial a;
  a.undefined_mass = 0.5;
  merge::ShardPartial b;
  b.undefined_mass = 0.25;
  for (const bool is_max : {true, false}) {
    const auto merged = merge::MergeExtremeDistributions({a, b}, is_max);
    ASSERT_TRUE(merged.ok());
    EXPECT_TRUE(merged->distribution.empty());
    EXPECT_EQ(merged->undefined_mass, 0.125);
  }
}

}  // namespace
}  // namespace aqua
