#include "aqua/core/engine.h"

#include <gtest/gtest.h>

#include "aqua/core/naive.h"
#include "aqua/query/parser.h"
#include "aqua/workload/ebay.h"
#include "aqua/workload/real_estate.h"

namespace aqua {
namespace {

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ds2_ = *PaperInstanceDS2();
    pm2_ = *MakeEbayPMapping();
  }
  Engine engine_;
  Table ds2_;
  PMapping pm2_;
};

TEST_F(EngineFixture, AllThirtySemanticsCellsAnswer) {
  // 5 operators x 2 mapping semantics x 3 aggregate semantics; naive
  // fallback enabled, instance small enough for enumeration.
  const char* sqls[] = {
      "SELECT COUNT(*) FROM T2 WHERE price > 300",
      "SELECT SUM(price) FROM T2",
      "SELECT AVG(price) FROM T2",
      "SELECT MIN(price) FROM T2",
      "SELECT MAX(price) FROM T2",
  };
  for (const char* sql : sqls) {
    const AggregateQuery q = *SqlParser::ParseSimple(sql);
    for (auto ms : {MappingSemantics::kByTable, MappingSemantics::kByTuple}) {
      for (auto as :
           {AggregateSemantics::kRange, AggregateSemantics::kDistribution,
            AggregateSemantics::kExpectedValue}) {
        const auto a = engine_.Answer(q, pm2_, ds2_, ms, as);
        EXPECT_TRUE(a.ok()) << sql << " " << MappingSemanticsToString(ms)
                            << "/" << AggregateSemanticsToString(as) << ": "
                            << a.status().ToString();
        if (a.ok()) {
          EXPECT_EQ(a->semantics, as);
        }
      }
    }
  }
}

TEST_F(EngineFixture, OpenCellsFailWithoutNaive) {
  EngineOptions opts;
  opts.allow_naive = false;
  opts.minmax_distribution_exact = false;  // reproduce the paper's matrix
  const Engine strict(opts);
  // Per the paper's Figure 6 the open by-tuple cells are: SUM/dist,
  // AVG/dist, AVG/expected, MIN/dist, MIN/expected, MAX/dist, MAX/expected.
  struct Cell {
    const char* sql;
    AggregateSemantics semantics;
  };
  const Cell open_cells[] = {
      {"SELECT SUM(price) FROM T2", AggregateSemantics::kDistribution},
      {"SELECT AVG(price) FROM T2", AggregateSemantics::kDistribution},
      {"SELECT AVG(price) FROM T2", AggregateSemantics::kExpectedValue},
      {"SELECT MIN(price) FROM T2", AggregateSemantics::kDistribution},
      {"SELECT MIN(price) FROM T2", AggregateSemantics::kExpectedValue},
      {"SELECT MAX(price) FROM T2", AggregateSemantics::kDistribution},
      {"SELECT MAX(price) FROM T2", AggregateSemantics::kExpectedValue},
  };
  for (const Cell& cell : open_cells) {
    const AggregateQuery q = *SqlParser::ParseSimple(cell.sql);
    const auto a = strict.Answer(q, pm2_, ds2_, MappingSemantics::kByTuple,
                                 cell.semantics);
    ASSERT_FALSE(a.ok()) << cell.sql;
    EXPECT_EQ(a.status().code(), StatusCode::kUnimplemented) << cell.sql;
  }
  // The PTIME cells still answer.
  const Cell ptime_cells[] = {
      {"SELECT COUNT(*) FROM T2", AggregateSemantics::kDistribution},
      {"SELECT COUNT(*) FROM T2", AggregateSemantics::kExpectedValue},
      {"SELECT SUM(price) FROM T2", AggregateSemantics::kRange},
      {"SELECT SUM(price) FROM T2", AggregateSemantics::kExpectedValue},
      {"SELECT AVG(price) FROM T2", AggregateSemantics::kRange},
      {"SELECT MIN(price) FROM T2", AggregateSemantics::kRange},
      {"SELECT MAX(price) FROM T2", AggregateSemantics::kRange},
  };
  for (const Cell& cell : ptime_cells) {
    const AggregateQuery q = *SqlParser::ParseSimple(cell.sql);
    EXPECT_TRUE(strict
                    .Answer(q, pm2_, ds2_, MappingSemantics::kByTuple,
                            cell.semantics)
                    .ok())
        << cell.sql;
  }
}

TEST_F(EngineFixture, ExactMinMaxDistributionClosesOpenCells) {
  // With the default options the engine answers MIN/MAX distribution and
  // expected value *without* naive enumeration, via the CDF
  // factorisation extension — even when naive is disabled.
  EngineOptions opts;
  opts.allow_naive = false;
  const Engine engine(opts);
  for (const char* sql :
       {"SELECT MIN(price) FROM T2", "SELECT MAX(price) FROM T2"}) {
    const AggregateQuery q = *SqlParser::ParseSimple(sql);
    for (auto as : {AggregateSemantics::kDistribution,
                    AggregateSemantics::kExpectedValue}) {
      const auto a =
          engine.Answer(q, pm2_, ds2_, MappingSemantics::kByTuple, as);
      EXPECT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    }
  }
  // And the answers agree with naive enumeration.
  const Engine naive_engine;
  const AggregateQuery q = *SqlParser::ParseSimple("SELECT MAX(price) FROM T2");
  EngineOptions naive_opts;
  naive_opts.minmax_distribution_exact = false;
  const Engine via_naive(naive_opts);
  const auto exact = engine.Answer(q, pm2_, ds2_, MappingSemantics::kByTuple,
                                   AggregateSemantics::kDistribution);
  const auto brute = via_naive.Answer(q, pm2_, ds2_,
                                      MappingSemantics::kByTuple,
                                      AggregateSemantics::kDistribution);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(brute.ok());
  EXPECT_LT(Distribution::TotalVariationDistanceApprox(
                exact->distribution, brute->distribution, 1e-9),
            1e-9);
}

TEST_F(EngineFixture, CountExpectedViaDistributionOptionAgrees) {
  EngineOptions opts;
  opts.count_expected_via_distribution = true;
  const Engine derived(opts);
  const AggregateQuery q =
      *SqlParser::ParseSimple("SELECT COUNT(*) FROM T2 WHERE price > 300");
  const auto a = engine_.Answer(q, pm2_, ds2_, MappingSemantics::kByTuple,
                                AggregateSemantics::kExpectedValue);
  const auto b = derived.Answer(q, pm2_, ds2_, MappingSemantics::kByTuple,
                                AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->expected_value, b->expected_value, 1e-9);
}

TEST_F(EngineFixture, AvgRangePaperOption) {
  EngineOptions opts;
  opts.avg_range_paper = true;
  const Engine paper_engine(opts);
  const AggregateQuery q = *SqlParser::ParseSimple("SELECT AVG(price) FROM T2");
  const auto exact = engine_.Answer(q, pm2_, ds2_, MappingSemantics::kByTuple,
                                    AggregateSemantics::kRange);
  const auto paper = paper_engine.Answer(
      q, pm2_, ds2_, MappingSemantics::kByTuple, AggregateSemantics::kRange);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(paper.ok());
  // No WHERE clause: the two coincide.
  EXPECT_NEAR(exact->range.low, paper->range.low, 1e-9);
  EXPECT_NEAR(exact->range.high, paper->range.high, 1e-9);
}

TEST_F(EngineFixture, GroupedByTuple) {
  const AggregateQuery q =
      *SqlParser::ParseSimple("SELECT MAX(price) FROM T2 GROUP BY auctionId");
  const auto rows = engine_.AnswerGrouped(q, pm2_, ds2_,
                                          MappingSemantics::kByTuple,
                                          AggregateSemantics::kRange);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].group, Value::Int64(34));
  EXPECT_NEAR((*rows)[0].answer.range.low, 336.94, 1e-9);
  EXPECT_NEAR((*rows)[0].answer.range.high, 349.99, 1e-9);
  EXPECT_EQ((*rows)[1].group, Value::Int64(38));
  EXPECT_NEAR((*rows)[1].answer.range.low, 340.5, 1e-9);
  EXPECT_NEAR((*rows)[1].answer.range.high, 439.95, 1e-9);
}

TEST_F(EngineFixture, GroupedByTupleRequiresCertainGroupAttribute) {
  const AggregateQuery q =
      *SqlParser::ParseSimple("SELECT COUNT(*) FROM T2 GROUP BY price");
  const auto rows = engine_.AnswerGrouped(q, pm2_, ds2_,
                                          MappingSemantics::kByTuple,
                                          AggregateSemantics::kRange);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnimplemented);
}

TEST_F(EngineFixture, GroupedOmitsGroupsThatNeverQualify) {
  const AggregateQuery q = *SqlParser::ParseSimple(
      "SELECT MAX(price) FROM T2 WHERE price > 400 GROUP BY auctionId");
  const auto rows = engine_.AnswerGrouped(q, pm2_, ds2_,
                                          MappingSemantics::kByTuple,
                                          AggregateSemantics::kRange);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // Auction 34 never has price > 400 under any mapping.
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].group, Value::Int64(38));
}

TEST_F(EngineFixture, GroupedSurfacesBindingErrors) {
  // A literal incomparable with the mapped column must fail loudly, not
  // silently return zero groups.
  const AggregateQuery q = *SqlParser::ParseSimple(
      "SELECT COUNT(*) FROM T2 WHERE price = 'oops' GROUP BY auctionId");
  const auto rows = engine_.AnswerGrouped(q, pm2_, ds2_,
                                          MappingSemantics::kByTuple,
                                          AggregateSemantics::kRange);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineFixture, GroupedExpectedSumUsesTheorem4PerGroup) {
  const AggregateQuery q =
      *SqlParser::ParseSimple("SELECT SUM(price) FROM T2 GROUP BY auctionId");
  const auto rows = engine_.AnswerGrouped(q, pm2_, ds2_,
                                          MappingSemantics::kByTuple,
                                          AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_NEAR((*rows)[0].answer.expected_value, 975.437, 1e-9);
}

TEST_F(EngineFixture, NestedDispatch) {
  const NestedAggregateQuery q2 = PaperQueryQ2();
  for (auto ms : {MappingSemantics::kByTable, MappingSemantics::kByTuple}) {
    for (auto as :
         {AggregateSemantics::kRange, AggregateSemantics::kDistribution,
          AggregateSemantics::kExpectedValue}) {
      const auto a = engine_.AnswerNested(q2, pm2_, ds2_, ms, as);
      EXPECT_TRUE(a.ok()) << MappingSemanticsToString(ms) << "/"
                          << AggregateSemanticsToString(as) << ": "
                          << a.status().ToString();
    }
  }
}

TEST_F(EngineFixture, SqlFrontDoor) {
  const auto a = engine_.AnswerSql(
      "SELECT SUM(price) FROM T2 WHERE auctionId = 34", pm2_, ds2_,
      MappingSemantics::kByTuple, AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_NEAR(a->expected_value, 975.437, 1e-9);

  const auto nested = engine_.AnswerSql(
      "SELECT AVG(R1.price) FROM (SELECT MAX(DISTINCT R2.price) FROM T2 AS "
      "R2 GROUP BY R2.auctionID) AS R1",
      pm2_, ds2_, MappingSemantics::kByTuple, AggregateSemantics::kRange);
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();
  EXPECT_NEAR(nested->range.low, (336.94 + 340.5) / 2, 1e-9);

  const auto grouped = engine_.AnswerGroupedSql(
      "SELECT MAX(price) FROM T2 GROUP BY auctionId", pm2_, ds2_,
      MappingSemantics::kByTable, AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->size(), 2u);
}

TEST_F(EngineFixture, SqlFrontDoorShapeErrors) {
  EXPECT_FALSE(engine_
                   .AnswerSql("SELECT MAX(price) FROM T2 GROUP BY auctionId",
                              pm2_, ds2_, MappingSemantics::kByTable,
                              AggregateSemantics::kRange)
                   .ok());
  EXPECT_FALSE(engine_
                   .AnswerSql("not sql at all", pm2_, ds2_,
                              MappingSemantics::kByTable,
                              AggregateSemantics::kRange)
                   .ok());
}

TEST_F(EngineFixture, AnswerRejectsGroupedQuery) {
  const AggregateQuery q =
      *SqlParser::ParseSimple("SELECT MAX(price) FROM T2 GROUP BY auctionId");
  EXPECT_FALSE(engine_
                   .Answer(q, pm2_, ds2_, MappingSemantics::kByTuple,
                           AggregateSemantics::kRange)
                   .ok());
}

TEST_F(EngineFixture, Q1EndToEnd) {
  const Table ds1 = *PaperInstanceDS1();
  const PMapping pm1 = *MakeRealEstatePMapping();
  const auto a = engine_.AnswerSql(
      "SELECT COUNT(*) FROM T1 WHERE date < '2008-1-20'", pm1, ds1,
      MappingSemantics::kByTuple, AggregateSemantics::kDistribution);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_NEAR(a->distribution.Pr(2.0), 0.48, 1e-12);
}

}  // namespace
}  // namespace aqua
