// Verifies the paranoid invariant layer actually fires: a PMapping
// corrupted *after* validation (the situation AQUA_PARANOID exists for —
// memory corruption, a future refactor bypassing Make) must be caught by
// the occurrence-probability / DP-mass checks in the COUNT distribution
// path and by PMapping::CheckInvariants, and must pass silently when the
// paranoid gate is off in a Release build.

#include <vector>

#include <gtest/gtest.h>

#include "aqua/common/check.h"
#include "aqua/core/by_tuple_count.h"
#include "aqua/core/sampler.h"
#include "aqua/mapping/p_mapping.h"
#include "aqua/workload/real_estate.h"

namespace aqua {
namespace {

/// A p-mapping whose candidates are the paper's real-estate alternatives
/// but whose probabilities were doubled post-validation: each tuple's
/// occurrence probability can now exceed 1.
PMapping CorruptRealEstatePMapping() {
  const PMapping valid = *MakeRealEstatePMapping();
  std::vector<PMapping::Alternative> corrupt = valid.alternatives();
  for (PMapping::Alternative& alt : corrupt) alt.probability *= 2.0;
  return PMapping::MakeUnsafeForTest(std::move(corrupt));
}

class InvariantViolationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_paranoid_ = SetParanoidChecks(true);
    table_ = *PaperInstanceDS1();
    query_ = PaperQueryQ1();
  }
  void TearDown() override { SetParanoidChecks(previous_paranoid_); }

  bool previous_paranoid_ = false;
  Table table_;
  AggregateQuery query_;
};

using InvariantViolationDeathTest = InvariantViolationTest;

TEST_F(InvariantViolationTest, ValidMappingPassesParanoidChecks) {
  const PMapping valid = *MakeRealEstatePMapping();
  valid.CheckInvariants();
  const auto d = ByTupleCount::Dist(query_, valid, table_);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->IsNormalized(1e-9));
}

TEST_F(InvariantViolationDeathTest, CheckInvariantsCatchesCorruptMasses) {
  // Halving keeps every candidate inside [0, 1], so this isolates the
  // total-mass check rather than the per-candidate probability check.
  const PMapping valid = *MakeRealEstatePMapping();
  std::vector<PMapping::Alternative> corrupt = valid.alternatives();
  for (PMapping::Alternative& alt : corrupt) alt.probability *= 0.5;
  const PMapping halved = PMapping::MakeUnsafeForTest(std::move(corrupt));
  EXPECT_DEATH(halved.CheckInvariants(), "probabilities sum to 0.5");
}

TEST_F(InvariantViolationDeathTest, CountDistCatchesCorruptMappingInDp) {
  const PMapping corrupt = CorruptRealEstatePMapping();
  // The DP entry check (CheckInvariants) fires before a single occurrence
  // probability is folded.
  EXPECT_DEATH((void)ByTupleCount::Dist(query_, corrupt, table_),
               "probabilit(y outside|ies sum to)");
}

TEST_F(InvariantViolationDeathTest, SamplerCatchesCorruptMapping) {
  const PMapping corrupt = CorruptRealEstatePMapping();
  SamplerOptions options;
  options.num_samples = 16;
  options.seed = 7;
  EXPECT_DEATH(
      (void)ByTupleSampler::Sample(query_, corrupt, table_, options),
      "probabilit(y outside|ies sum to)");
}

TEST_F(InvariantViolationTest, GateOffSkipsTheExpensiveChecks) {
  SetParanoidChecks(false);
  if (ParanoidChecksEnabled()) {
    GTEST_SKIP() << "paranoid build keeps the gate pinned via AQUA_DCHECK";
  }
  // With the gate off the corrupt mapping flows through the DP unchecked
  // (the algebra still conserves mass, so no downstream check trips in a
  // Release build) — demonstrating the checks above are what caught it.
  const PMapping corrupt = CorruptRealEstatePMapping();
  const auto d = ByTupleCount::Dist(query_, corrupt, table_);
  EXPECT_TRUE(d.ok());
}

}  // namespace
}  // namespace aqua
