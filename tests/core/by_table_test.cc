#include "aqua/core/by_table.h"

#include <gtest/gtest.h>

#include "aqua/query/parser.h"
#include "aqua/workload/ebay.h"
#include "aqua/workload/real_estate.h"

namespace aqua {
namespace {

TEST(CombineResultsTest, Range) {
  const auto a = ByTable::CombineResults({3.0, 1.0, 2.0}, {0.2, 0.5, 0.3},
                                         AggregateSemantics::kRange);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->range, (Interval{1.0, 3.0}));
}

TEST(CombineResultsTest, DistributionMergesEqualResults) {
  const auto a = ByTable::CombineResults({5.0, 2.0, 5.0}, {0.2, 0.5, 0.3},
                                         AggregateSemantics::kDistribution);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->distribution.size(), 2u);
  EXPECT_NEAR(a->distribution.Pr(5.0), 0.5, 1e-12);
  EXPECT_NEAR(a->distribution.Pr(2.0), 0.5, 1e-12);
}

TEST(CombineResultsTest, ExpectedValue) {
  const auto a = ByTable::CombineResults({10.0, 20.0}, {0.25, 0.75},
                                         AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR(a->expected_value, 17.5, 1e-12);
}

TEST(CombineResultsTest, ExpectedValueConditionsOnPartialMass) {
  const auto a = ByTable::CombineResults({10.0, 20.0}, {0.25, 0.25},
                                         AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR(a->expected_value, 15.0, 1e-12);
}

TEST(CombineResultsTest, RejectsBadInput) {
  EXPECT_FALSE(ByTable::CombineResults({}, {}, AggregateSemantics::kRange)
                   .ok());
  EXPECT_FALSE(ByTable::CombineResults({1.0}, {0.5, 0.5},
                                       AggregateSemantics::kRange)
                   .ok());
  EXPECT_FALSE(ByTable::CombineResults({1.0}, {0.0},
                                       AggregateSemantics::kExpectedValue)
                   .ok());
}

class ByTableFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ds2_ = *PaperInstanceDS2();
    pm2_ = *MakeEbayPMapping();
  }
  Table ds2_;
  PMapping pm2_;
};

TEST_F(ByTableFixture, AllFiveAggregatesAnswer) {
  for (const char* sql : {
           "SELECT COUNT(*) FROM T2 WHERE price > 300",
           "SELECT SUM(price) FROM T2",
           "SELECT AVG(price) FROM T2",
           "SELECT MIN(price) FROM T2",
           "SELECT MAX(price) FROM T2",
       }) {
    const AggregateQuery q = *SqlParser::ParseSimple(sql);
    for (auto sem :
         {AggregateSemantics::kRange, AggregateSemantics::kDistribution,
          AggregateSemantics::kExpectedValue}) {
      const auto a = ByTable::Answer(q, pm2_, ds2_, sem);
      EXPECT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    }
  }
}

TEST_F(ByTableFixture, MaxOverWholeTable) {
  const AggregateQuery q = *SqlParser::ParseSimple("SELECT MAX(price) FROM T2");
  const auto a = ByTable::Answer(q, pm2_, ds2_, AggregateSemantics::kRange);
  ASSERT_TRUE(a.ok());
  // max bid = 439.95, max currentPrice = 438.05.
  EXPECT_NEAR(a->range.low, 438.05, 1e-9);
  EXPECT_NEAR(a->range.high, 439.95, 1e-9);
}

TEST_F(ByTableFixture, RejectsGroupedQuery) {
  const AggregateQuery q =
      *SqlParser::ParseSimple("SELECT MAX(price) FROM T2 GROUP BY auctionId");
  EXPECT_FALSE(
      ByTable::Answer(q, pm2_, ds2_, AggregateSemantics::kRange).ok());
}

TEST_F(ByTableFixture, GroupedAnswersPerGroup) {
  const AggregateQuery q =
      *SqlParser::ParseSimple("SELECT MAX(price) FROM T2 GROUP BY auctionId");
  const auto rows = ByTable::AnswerGrouped(q, pm2_, ds2_,
                                           AggregateSemantics::kRange);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].group, Value::Int64(34));
  EXPECT_NEAR((*rows)[0].answer.range.low, 336.94, 1e-9);
  EXPECT_NEAR((*rows)[0].answer.range.high, 349.99, 1e-9);
  EXPECT_EQ((*rows)[1].group, Value::Int64(38));
  EXPECT_NEAR((*rows)[1].answer.range.low, 438.05, 1e-9);
  EXPECT_NEAR((*rows)[1].answer.range.high, 439.95, 1e-9);
}

TEST_F(ByTableFixture, GroupedRejectsUngrouped) {
  const AggregateQuery q = *SqlParser::ParseSimple("SELECT MAX(price) FROM T2");
  EXPECT_FALSE(
      ByTable::AnswerGrouped(q, pm2_, ds2_, AggregateSemantics::kRange).ok());
}

TEST_F(ByTableFixture, UndefinedAggregateUnderSomeMappingFails) {
  // MIN over a selection that is empty under every mapping.
  const AggregateQuery q =
      *SqlParser::ParseSimple("SELECT MIN(price) FROM T2 WHERE price > 10000");
  const auto a = ByTable::Answer(q, pm2_, ds2_, AggregateSemantics::kRange);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kInvalidArgument);
}

TEST(ByTableRealEstateTest, CountOverWholeGeneratedTable) {
  Rng rng(5);
  RealEstateOptions opts;
  opts.num_properties = 500;
  const Table t = *GenerateRealEstateTable(opts, rng);
  const PMapping pm = *MakeRealEstatePMapping();
  const AggregateQuery q = *SqlParser::ParseSimple(
      "SELECT COUNT(*) FROM T1 WHERE date < '2008-1-20'");
  const auto a = ByTable::Answer(q, pm, t, AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_GE(a->expected_value, 0.0);
  EXPECT_LE(a->expected_value, 500.0);
}

}  // namespace
}  // namespace aqua
