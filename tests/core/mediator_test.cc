#include "aqua/core/mediator.h"

#include <gtest/gtest.h>

#include "aqua/workload/ebay.h"
#include "aqua/workload/real_estate.h"

namespace aqua {
namespace {

class MediatorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(mediator_.RegisterTable("S1", *PaperInstanceDS1()).ok());
    ASSERT_TRUE(mediator_.RegisterTable("S2", *PaperInstanceDS2()).ok());
    ASSERT_TRUE(
        mediator_
            .SetSchemaPMapping(*SchemaPMapping::Make(
                {*MakeRealEstatePMapping(), *MakeEbayPMapping()}))
            .ok());
  }
  Mediator mediator_;
};

TEST_F(MediatorFixture, RoutesByTargetRelation) {
  const auto q1 = mediator_.AnswerSql(
      "SELECT COUNT(*) FROM T1 WHERE date < '2008-1-20'",
      MappingSemantics::kByTuple, AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  EXPECT_NEAR(q1->expected_value, 2.2, 1e-12);

  const auto q2p = mediator_.AnswerSql(
      "SELECT SUM(price) FROM T2 WHERE auctionId = 34",
      MappingSemantics::kByTuple, AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(q2p.ok());
  EXPECT_NEAR(q2p->expected_value, 975.437, 1e-9);
}

TEST_F(MediatorFixture, NestedAndGroupedRouting) {
  const auto nested = mediator_.AnswerSql(
      "SELECT AVG(R1.price) FROM (SELECT MAX(DISTINCT R2.price) FROM T2 AS "
      "R2 GROUP BY R2.auctionID) AS R1",
      MappingSemantics::kByTable, AggregateSemantics::kExpectedValue);
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();
  EXPECT_NEAR(nested->expected_value, 394.97 * 0.3 + 387.495 * 0.7, 1e-9);

  const auto grouped = mediator_.AnswerGroupedSql(
      "SELECT MAX(price) FROM T2 GROUP BY auctionId",
      MappingSemantics::kByTuple, AggregateSemantics::kRange);
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->size(), 2u);
}

TEST_F(MediatorFixture, UnknownTargetRelationIsNotFound) {
  const auto r = mediator_.AnswerSql("SELECT COUNT(*) FROM T9",
                                     MappingSemantics::kByTable,
                                     AggregateSemantics::kRange);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(MediatorFixture, TableLookup) {
  ASSERT_TRUE(mediator_.TableFor("s1").ok());  // case-insensitive
  EXPECT_EQ((*mediator_.TableFor("S2"))->num_rows(), 8u);
  EXPECT_FALSE(mediator_.TableFor("S9").ok());
  EXPECT_EQ(mediator_.num_tables(), 2u);
}

TEST(MediatorTest, RejectsDuplicateRegistration) {
  Mediator m;
  ASSERT_TRUE(m.RegisterTable("S1", *PaperInstanceDS1()).ok());
  EXPECT_FALSE(m.RegisterTable("s1", *PaperInstanceDS1()).ok());
  EXPECT_FALSE(m.RegisterTable("", *PaperInstanceDS1()).ok());
}

TEST(MediatorTest, RejectsMappingWithoutTable) {
  Mediator m;
  const auto status = m.SetSchemaPMapping(
      *SchemaPMapping::Make({*MakeRealEstatePMapping()}));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(MediatorTest, RejectsMappingWithUnknownSourceAttribute) {
  Mediator m;
  // Register a table lacking the reducedDate column the p-mapping needs.
  const Schema partial = *Schema::Make({{"ID", ValueType::kInt64},
                                        {"price", ValueType::kDouble},
                                        {"agentPhone", ValueType::kString},
                                        {"postedDate", ValueType::kDate}});
  ASSERT_TRUE(m.RegisterTable("S1", Table::Empty(partial)).ok());
  const auto status = m.SetSchemaPMapping(
      *SchemaPMapping::Make({*MakeRealEstatePMapping()}));
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("reducedDate"), std::string::npos);
}

TEST(MediatorTest, QueryBeforeMappingFails) {
  Mediator m;
  ASSERT_TRUE(m.RegisterTable("S1", *PaperInstanceDS1()).ok());
  EXPECT_FALSE(m.AnswerSql("SELECT COUNT(*) FROM T1",
                           MappingSemantics::kByTable,
                           AggregateSemantics::kRange)
                   .ok());
}

}  // namespace
}  // namespace aqua
