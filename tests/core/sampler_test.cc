#include "aqua/core/sampler.h"

#include <cmath>

#include <gtest/gtest.h>

#include "aqua/core/naive.h"
#include "aqua/query/parser.h"
#include "aqua/workload/ebay.h"

namespace aqua {
namespace {

class SamplerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ds2_ = *PaperInstanceDS2();
    pm2_ = *MakeEbayPMapping();
  }
  Table ds2_;
  PMapping pm2_;
};

TEST_F(SamplerFixture, DeterministicFromSeed) {
  AggregateQuery q = *SqlParser::ParseSimple("SELECT SUM(price) FROM T2");
  SamplerOptions opts;
  opts.num_samples = 500;
  opts.seed = 123;
  const auto a = ByTupleSampler::Sample(q, pm2_, ds2_, opts);
  const auto b = ByTupleSampler::Sample(q, pm2_, ds2_, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->expected, b->expected);
  EXPECT_TRUE(a->empirical == b->empirical);
}

TEST_F(SamplerFixture, SumExpectationConvergesToTheorem4Value) {
  AggregateQuery q = PaperQueryQ2Prime();
  SamplerOptions opts;
  opts.num_samples = 200000;
  const auto s = ByTupleSampler::Sample(q, pm2_, ds2_, opts);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  // True value 975.437 (Table VII); 200k samples, sigma ~ 60.
  EXPECT_NEAR(s->expected, 975.437, 1.0);
  EXPECT_LT(s->std_error, 1.0);
  EXPECT_EQ(s->undefined_samples, 0u);
}

TEST_F(SamplerFixture, EmpiricalDistributionApproachesNaive) {
  AggregateQuery q = *SqlParser::ParseSimple("SELECT MAX(price) FROM T2");
  const auto exact = NaiveByTuple::Dist(q, pm2_, ds2_);
  ASSERT_TRUE(exact.ok());
  SamplerOptions opts;
  opts.num_samples = 100000;
  const auto approx = ByTupleSampler::Sample(q, pm2_, ds2_, opts);
  ASSERT_TRUE(approx.ok());
  const double tv = Distribution::TotalVariationDistanceApprox(
      exact->distribution, approx->empirical, 1e-9);
  EXPECT_LT(tv, 0.01);
}

TEST_F(SamplerFixture, MoreSamplesReduceError) {
  AggregateQuery q = *SqlParser::ParseSimple("SELECT AVG(price) FROM T2");
  const auto exact = NaiveByTuple::Expected(q, pm2_, ds2_);
  ASSERT_TRUE(exact.ok());
  double coarse_err = 0, fine_err = 0;
  // Average absolute error over several seeds to avoid a lucky draw.
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    SamplerOptions coarse{/*num_samples=*/100, seed};
    SamplerOptions fine{/*num_samples=*/20000, seed};
    coarse_err +=
        std::abs(ByTupleSampler::Sample(q, pm2_, ds2_, coarse)->expected -
                 *exact);
    fine_err +=
        std::abs(ByTupleSampler::Sample(q, pm2_, ds2_, fine)->expected -
                 *exact);
  }
  EXPECT_LT(fine_err, coarse_err);
}

TEST_F(SamplerFixture, ObservedRangeWithinExactRange) {
  AggregateQuery q = *SqlParser::ParseSimple("SELECT SUM(price) FROM T2");
  const auto exact = NaiveByTuple::Range(q, pm2_, ds2_);
  ASSERT_TRUE(exact.ok());
  SamplerOptions opts;
  opts.num_samples = 5000;
  const auto s = ByTupleSampler::Sample(q, pm2_, ds2_, opts);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(exact->Covers(s->observed_range));
}

TEST_F(SamplerFixture, UndefinedSamplesTracked) {
  AggregateQuery q =
      *SqlParser::ParseSimple("SELECT MIN(price) FROM T2 WHERE price > 430");
  SamplerOptions opts;
  opts.num_samples = 20000;
  const auto s = ByTupleSampler::Sample(q, pm2_, ds2_, opts);
  ASSERT_TRUE(s.ok());
  // Exact undefined probability is 0.21 (see naive_test).
  EXPECT_NEAR(s->undefined_samples / 20000.0, 0.21, 0.02);
}

TEST_F(SamplerFixture, RejectsBadOptions) {
  AggregateQuery q = *SqlParser::ParseSimple("SELECT SUM(price) FROM T2");
  SamplerOptions opts;
  opts.num_samples = 0;
  EXPECT_FALSE(ByTupleSampler::Sample(q, pm2_, ds2_, opts).ok());
}

TEST_F(SamplerFixture, RejectsSumDistinct) {
  AggregateQuery q =
      *SqlParser::ParseSimple("SELECT SUM(DISTINCT price) FROM T2");
  EXPECT_FALSE(ByTupleSampler::Sample(q, pm2_, ds2_).ok());
}

TEST_F(SamplerFixture, AllSamplesUndefinedFails) {
  AggregateQuery q =
      *SqlParser::ParseSimple("SELECT MIN(price) FROM T2 WHERE price > 1e9");
  EXPECT_FALSE(ByTupleSampler::Sample(q, pm2_, ds2_).ok());
}

}  // namespace
}  // namespace aqua
