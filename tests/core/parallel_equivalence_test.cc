// The parallel runtime's central contract: the thread count never changes
// an answer. Work is partitioned as a pure function of the problem size,
// budget shares and RNG streams attach to chunks (not workers), and
// reductions fold in fixed chunk order — so exact answers are bit-identical
// and sampled estimates byte-for-byte reproducible at every --threads.

#include <gtest/gtest.h>

#include "aqua/core/by_tuple_count.h"
#include "aqua/core/engine.h"
#include "aqua/core/sampler.h"
#include "aqua/exec/parallel.h"
#include "aqua/query/parser.h"
#include "aqua/workload/ebay.h"
#include "aqua/workload/synthetic.h"

namespace aqua {
namespace {

TEST(ParallelEquivalenceTest, CountDistributionBitIdenticalAcrossThreads) {
  Rng rng(99);
  SyntheticOptions opts;
  opts.num_tuples = 5000;
  opts.num_attributes = 10;
  opts.num_mappings = 3;
  const SyntheticWorkload w = *GenerateSyntheticWorkload(opts, rng);
  const AggregateQuery q = w.MakeQuery(AggregateFunction::kCount);

  const auto serial = ByTupleCount::Dist(q, w.pmapping, w.table);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  double mass = 0;
  for (const auto& e : serial->entries()) mass += e.prob;
  EXPECT_NEAR(mass, 1.0, 1e-9);

  for (const int threads : {2, 3, 8}) {
    const auto parallel =
        ByTupleCount::Dist(q, w.pmapping, w.table, /*rows=*/nullptr,
                           /*ctx=*/nullptr, exec::ExecPolicy{threads});
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads;
    // Distribution equality is exact (bit-level) on outcomes and masses.
    EXPECT_TRUE(*parallel == *serial) << "threads=" << threads;
  }
}

TEST(ParallelEquivalenceTest, ExpectedViaDistributionMatchesAcrossThreads) {
  Rng rng(101);
  SyntheticOptions opts;
  opts.num_tuples = 2000;
  opts.num_attributes = 8;
  opts.num_mappings = 2;
  const SyntheticWorkload w = *GenerateSyntheticWorkload(opts, rng);
  const AggregateQuery q = w.MakeQuery(AggregateFunction::kCount);

  const auto serial = ByTupleCount::ExpectedViaDistribution(q, w.pmapping,
                                                            w.table);
  ASSERT_TRUE(serial.ok());
  for (const int threads : {2, 8}) {
    const auto parallel = ByTupleCount::ExpectedViaDistribution(
        q, w.pmapping, w.table, /*rows=*/nullptr, /*ctx=*/nullptr,
        exec::ExecPolicy{threads});
    ASSERT_TRUE(parallel.ok());
    EXPECT_DOUBLE_EQ(*parallel, *serial) << "threads=" << threads;
  }
}

TEST(ParallelEquivalenceTest, SamplerEstimateIdenticalAcrossThreads) {
  const Table ds2 = *PaperInstanceDS2();
  const PMapping pm2 = *MakeEbayPMapping();
  const AggregateQuery q = *SqlParser::ParseSimple("SELECT SUM(price) FROM T2");
  SamplerOptions opts;
  opts.num_samples = 5000;
  opts.seed = 42;

  const auto serial = ByTupleSampler::Sample(q, pm2, ds2, opts);
  ASSERT_TRUE(serial.ok());
  for (const int threads : {2, 8}) {
    const auto parallel =
        ByTupleSampler::Sample(q, pm2, ds2, opts, /*rows=*/nullptr,
                               /*ctx=*/nullptr, exec::ExecPolicy{threads});
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads;
    // Chunk i always draws from stream SplitMix64(seed ^ i) and chunks
    // merge in index order, so the estimate is byte-identical.
    EXPECT_DOUBLE_EQ(parallel->expected, serial->expected);
    EXPECT_DOUBLE_EQ(parallel->std_error, serial->std_error);
    EXPECT_TRUE(parallel->empirical == serial->empirical);
    EXPECT_EQ(parallel->num_samples, serial->num_samples);
    EXPECT_EQ(parallel->undefined_samples, serial->undefined_samples);
  }
}

class GroupedEquivalenceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ds2_ = *PaperInstanceDS2();
    pm2_ = *MakeEbayPMapping();
  }

  Result<std::vector<GroupedAnswer>> AnswerAt(int threads,
                                              AggregateSemantics semantics,
                                              ExecLimits limits = {}) {
    EngineOptions opts;
    opts.threads = threads;
    opts.limits = limits;
    const Engine engine(opts);
    return engine.AnswerGroupedSql("SELECT COUNT(*) FROM T2 GROUP BY auctionId",
                                   pm2_, ds2_, MappingSemantics::kByTuple,
                                   semantics);
  }

  Table ds2_;
  PMapping pm2_;
};

TEST_F(GroupedEquivalenceFixture, GroupedAnswersIdenticalAcrossThreads) {
  const auto serial = AnswerAt(1, AggregateSemantics::kDistribution);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_FALSE(serial->empty());
  for (const int threads : {2, 8}) {
    const auto parallel = AnswerAt(threads, AggregateSemantics::kDistribution);
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads;
    ASSERT_EQ(parallel->size(), serial->size());
    for (size_t g = 0; g < serial->size(); ++g) {
      EXPECT_TRUE((*parallel)[g].group == (*serial)[g].group);
      EXPECT_TRUE((*parallel)[g].answer.distribution ==
                  (*serial)[g].answer.distribution);
      // Per-group stats come from the group's own child context, so the
      // charge accounting is identical serial or concurrent.
      EXPECT_EQ((*parallel)[g].answer.stats.steps,
                (*serial)[g].answer.stats.steps);
      EXPECT_EQ((*parallel)[g].answer.stats.bytes,
                (*serial)[g].answer.stats.bytes);
      EXPECT_EQ((*parallel)[g].answer.stats.rows,
                (*serial)[g].answer.stats.rows);
    }
  }
}

TEST_F(GroupedEquivalenceFixture, GroupedChargesAreNonZeroAndConsistent) {
  const auto groups = AnswerAt(4, AggregateSemantics::kRange);
  ASSERT_TRUE(groups.ok()) << groups.status().ToString();
  uint64_t total = 0;
  for (const GroupedAnswer& g : *groups) {
    EXPECT_GT(g.answer.stats.steps, 0u)
        << "group " << g.group.ToString() << " reported no work";
    total += g.answer.stats.steps;
  }
  // The sum of per-group charges equals the serial run's sum exactly —
  // the whole-query budget was partitioned, not duplicated or dropped.
  const auto serial = AnswerAt(1, AggregateSemantics::kRange);
  ASSERT_TRUE(serial.ok());
  uint64_t serial_total = 0;
  for (const GroupedAnswer& g : *serial) serial_total += g.answer.stats.steps;
  EXPECT_EQ(total, serial_total);
}

TEST_F(GroupedEquivalenceFixture, GroupedBudgetBlowSurfacesSameError) {
  ExecLimits limits;
  limits.max_steps = 3;  // far below any group's cost
  for (const int threads : {1, 4}) {
    const auto groups = AnswerAt(threads, AggregateSemantics::kRange, limits);
    ASSERT_FALSE(groups.ok()) << "threads=" << threads;
    EXPECT_EQ(groups.status().code(), StatusCode::kResourceExhausted)
        << "threads=" << threads;
  }
}

TEST(ParallelDegradeTest, BudgetBlowAtEveryThreadCountDegradesIdentically) {
  // An exact COUNT-distribution pass over 2000 tuples blows a 50k-step
  // budget in the parallel DP; with DegradePolicy::kSample the engine
  // re-answers by sampling under a fresh budget of the same size. Both the
  // blow (budget shares) and the sampler's truncation point are pure
  // functions of the problem size, so the degraded answer is identical at
  // every thread count.
  Rng rng(77);
  SyntheticOptions wopts;
  wopts.num_tuples = 2000;
  wopts.num_attributes = 6;
  wopts.num_mappings = 2;
  const SyntheticWorkload w = *GenerateSyntheticWorkload(wopts, rng);
  const AggregateQuery q = w.MakeQuery(AggregateFunction::kCount);

  auto answer_at = [&](int threads) {
    EngineOptions opts;
    opts.threads = threads;
    opts.limits.max_steps = 50'000;
    opts.degrade = DegradePolicy::kSample;
    opts.degrade_sampler.num_samples = 10'000;
    opts.degrade_sampler.min_samples_on_budget = 5;
    const Engine engine(opts);
    return engine.Answer(q, w.pmapping, w.table, MappingSemantics::kByTuple,
                         AggregateSemantics::kDistribution);
  };

  const auto serial = answer_at(1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_TRUE(serial->approximate);
  for (const int threads : {4}) {
    const auto parallel = answer_at(threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_TRUE(parallel->approximate);
    EXPECT_TRUE(parallel->distribution == serial->distribution);
    EXPECT_EQ(parallel->note, serial->note);
  }
}

}  // namespace
}  // namespace aqua
