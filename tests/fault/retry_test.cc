// Retry layer tests: transient classification, attempt accounting against
// both Status- and Result-returning operations, backoff determinism, and
// the obs counters the retries leave behind.

#include "aqua/fault/retry.h"

#include <string>

#include <gtest/gtest.h>

#include "aqua/obs/metrics.h"

namespace aqua::fault {
namespace {

uint64_t Attempts(const char* op) {
  return obs::MetricsRegistry::Default()
      .GetCounter("aqua_retry_attempts_total", {{"op", op}})
      .value();
}
uint64_t Exhausted(const char* op) {
  return obs::MetricsRegistry::Default()
      .GetCounter("aqua_retry_exhausted_total", {{"op", op}})
      .value();
}

/// A policy with no sleep so the suite stays fast; attempts still count.
RetryPolicy FastPolicy(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.initial_backoff_ms = 0;
  policy.max_backoff_ms = 0;
  return policy;
}

TEST(RetryTest, IsTransientIsExactlyUnavailable) {
  EXPECT_TRUE(IsTransient(Status::Unavailable("flaky")));
  EXPECT_FALSE(IsTransient(Status::OK()));
  EXPECT_FALSE(IsTransient(Status::Internal("bug")));
  EXPECT_FALSE(IsTransient(Status::NotFound("gone")));
  EXPECT_FALSE(IsTransient(Status::DeadlineExceeded("late")));
}

TEST(RetryTest, SucceedsFirstTryRunsOnce) {
  int calls = 0;
  const Status s = WithRetry(FastPolicy(3), "retry-test-first", [&]() {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, TransientThenSuccessIsRetried) {
  const uint64_t before = Attempts("retry-test-transient");
  int calls = 0;
  const Status s = WithRetry(FastPolicy(3), "retry-test-transient", [&]() {
    return ++calls < 3 ? Status::Unavailable("flaky") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(Attempts("retry-test-transient") - before, 3u);
}

TEST(RetryTest, NonTransientFailsImmediately) {
  int calls = 0;
  const Status s = WithRetry(FastPolicy(5), "retry-test-hard", [&]() {
    ++calls;
    return Status::Internal("real bug");
  });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 1);  // a non-transient error must never be retried
}

TEST(RetryTest, ExhaustionReturnsLastErrorAndCounts) {
  const uint64_t before = Exhausted("retry-test-exhaust");
  int calls = 0;
  const Status s = WithRetry(FastPolicy(3), "retry-test-exhaust", [&]() {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.message(), "still down");
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(Exhausted("retry-test-exhaust") - before, 1u);
}

TEST(RetryTest, ResultValueComesThroughOnRetry) {
  int calls = 0;
  const Result<std::string> r =
      WithRetry(FastPolicy(2), "retry-test-result", [&]() -> Result<std::string> {
        if (++calls == 1) return Status::Unavailable("flaky");
        return std::string("payload");
      });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "payload");
  EXPECT_EQ(calls, 2);
}

TEST(RetryTest, NonePolicyRunsExactlyOnce) {
  int calls = 0;
  const Status s = WithRetry(RetryPolicy::None(), "retry-test-none", [&]() {
    ++calls;
    return Status::Unavailable("flaky");
  });
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, ZeroMaxAttemptsStillRunsOnce) {
  RetryPolicy degenerate = FastPolicy(0);
  int calls = 0;
  (void)WithRetry(degenerate, "retry-test-zero", [&]() {
    ++calls;
    return Status::OK();
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace aqua::fault
