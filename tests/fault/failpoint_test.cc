// Failpoint registry tests: spec grammar, trigger policies, arming and
// introspection, the config surfaces, and the disarmed fast path. The
// suite arms only real inventory sites and always disarms them, so the
// rest of the process is unaffected.

#include "aqua/common/failpoint.h"

#include <cstdlib>
#include <set>
#include <string>

#include <gtest/gtest.h>

namespace aqua::fault {
namespace {

// Any real site works for registry-behavior tests; pick a stable one.
constexpr const char* kSite = "storage/csv/read-file";

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { DisableAll(); }
};

TEST_F(FailpointTest, ParseActionOnly) {
  const auto spec = ParseSpec("error(unavailable)");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->trigger, FaultTrigger::kAlways);
  EXPECT_EQ(spec->kind, FaultKind::kError);
  EXPECT_EQ(spec->code, StatusCode::kUnavailable);
}

TEST_F(FailpointTest, ParseTriggerAndAction) {
  const auto spec = ParseSpec("every(3)*delay(25)");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->trigger, FaultTrigger::kEveryN);
  EXPECT_EQ(spec->n, 3u);
  EXPECT_EQ(spec->kind, FaultKind::kDelay);
  EXPECT_EQ(spec->delay_ms, 25);
}

TEST_F(FailpointTest, ParseErrorWithMessage) {
  const auto spec = ParseSpec("once*error(internal,disk on fire)");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->trigger, FaultTrigger::kOnce);
  EXPECT_EQ(spec->code, StatusCode::kInternal);
  EXPECT_EQ(spec->message, "disk on fire");
}

TEST_F(FailpointTest, ParseProbWithSeed) {
  const auto spec = ParseSpec("p(0.25,42)*error(unavailable)");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->trigger, FaultTrigger::kProb);
  EXPECT_DOUBLE_EQ(spec->prob, 0.25);
  EXPECT_EQ(spec->seed, 42u);
}

TEST_F(FailpointTest, ParsePartialAndOff) {
  ASSERT_TRUE(ParseSpec("partial").ok());
  EXPECT_EQ(ParseSpec("partial")->kind, FaultKind::kPartial);
  EXPECT_EQ(ParseSpec("off")->kind, FaultKind::kOff);
}

TEST_F(FailpointTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseSpec("").ok());
  EXPECT_FALSE(ParseSpec("explode").ok());
  EXPECT_FALSE(ParseSpec("error(no-such-code)").ok());
  EXPECT_FALSE(ParseSpec("error(ok)").ok());  // injecting OK is meaningless
  EXPECT_FALSE(ParseSpec("every(x)*error(unavailable)").ok());
  EXPECT_FALSE(ParseSpec("p(1.5)*error(unavailable)").ok());
  EXPECT_FALSE(ParseSpec("once*").ok());
  EXPECT_FALSE(ParseSpec("delay(-1)").ok());
}

TEST_F(FailpointTest, SpecToStringRoundTrips) {
  for (const char* text :
       {"error(unavailable)", "once*error(internal,boom)", "every(3)*delay(25)",
        "after(2)*error(resource-exhausted)", "partial", "off"}) {
    const auto spec = ParseSpec(text);
    ASSERT_TRUE(spec.ok()) << text;
    const auto back = ParseSpec(spec->ToString());
    ASSERT_TRUE(back.ok()) << spec->ToString();
    EXPECT_EQ(back->ToString(), spec->ToString());
  }
}

TEST_F(FailpointTest, DisarmedIsNotArmedAndEvaluatesOk) {
  EXPECT_FALSE(Armed());
  EXPECT_TRUE(Evaluate(kSite).ok());
  EXPECT_EQ(StatsFor(kSite).hit_count, 0u);  // disabled sites don't count
}

TEST_F(FailpointTest, EnableUnknownSiteIsNotFound) {
  const Status s = Enable("no/such/site", "error(unavailable)");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_FALSE(Armed());
}

TEST_F(FailpointTest, EnableBadSpecIsInvalidArgument) {
  EXPECT_EQ(Enable(kSite, "explode").code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(Armed());
}

TEST_F(FailpointTest, AlwaysErrorFiresEveryEvaluation) {
  ASSERT_TRUE(Enable(kSite, "error(unavailable,injected)").ok());
  EXPECT_TRUE(Armed());
  for (int i = 0; i < 3; ++i) {
    const Status s = Evaluate(kSite);
    EXPECT_EQ(s.code(), StatusCode::kUnavailable);
    EXPECT_EQ(s.message(), "injected");
  }
  EXPECT_EQ(StatsFor(kSite).hit_count, 3u);
  EXPECT_EQ(StatsFor(kSite).fire_count, 3u);
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  ASSERT_TRUE(Enable(kSite, "once*error(unavailable)").ok());
  EXPECT_FALSE(Evaluate(kSite).ok());
  EXPECT_TRUE(Evaluate(kSite).ok());
  EXPECT_TRUE(Evaluate(kSite).ok());
  EXPECT_EQ(StatsFor(kSite).fire_count, 1u);
}

TEST_F(FailpointTest, EveryNFiresOnMultiples) {
  ASSERT_TRUE(Enable(kSite, "every(2)*error(unavailable)").ok());
  EXPECT_TRUE(Evaluate(kSite).ok());    // 1
  EXPECT_FALSE(Evaluate(kSite).ok());   // 2
  EXPECT_TRUE(Evaluate(kSite).ok());    // 3
  EXPECT_FALSE(Evaluate(kSite).ok());   // 4
}

TEST_F(FailpointTest, AfterNSkipsThenFiresForever) {
  ASSERT_TRUE(Enable(kSite, "after(2)*error(unavailable)").ok());
  EXPECT_TRUE(Evaluate(kSite).ok());    // 1
  EXPECT_TRUE(Evaluate(kSite).ok());    // 2
  EXPECT_FALSE(Evaluate(kSite).ok());   // 3
  EXPECT_FALSE(Evaluate(kSite).ok());   // 4
}

TEST_F(FailpointTest, ProbStreamIsDeterministicPerSeed) {
  auto fires = [&](uint64_t seed) {
    std::string pattern;
    const std::string spec =
        "p(0.5," + std::to_string(seed) + ")*error(unavailable)";
    EXPECT_TRUE(Enable(kSite, spec).ok());
    for (int i = 0; i < 32; ++i) {
      pattern += Evaluate(kSite).ok() ? '.' : 'X';
    }
    Disable(kSite);
    return pattern;
  };
  const std::string a = fires(7);
  const std::string b = fires(7);
  const std::string c = fires(8);
  EXPECT_EQ(a, b);                       // same seed, same evaluations
  EXPECT_NE(a, std::string(32, '.'));    // p=0.5 over 32 draws fires some
  EXPECT_NE(a, c);                       // different seed, different stream
}

TEST_F(FailpointTest, ReEnableResetsCounters) {
  ASSERT_TRUE(Enable(kSite, "once*error(unavailable)").ok());
  EXPECT_FALSE(Evaluate(kSite).ok());
  ASSERT_TRUE(Enable(kSite, "once*error(unavailable)").ok());
  EXPECT_EQ(StatsFor(kSite).hit_count, 0u);
  EXPECT_FALSE(Evaluate(kSite).ok());  // fires again after the reset
}

TEST_F(FailpointTest, PartialReportsThroughInjectPartialNotEvaluate) {
  ASSERT_TRUE(Enable(kSite, "partial").ok());
  EXPECT_TRUE(Evaluate(kSite).ok());   // partial never surfaces as error
  EXPECT_TRUE(InjectPartial(kSite));
  Disable(kSite);
  EXPECT_FALSE(InjectPartial(kSite));
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    ScopedFailpoint fp(kSite, "error(unavailable)");
    ASSERT_TRUE(fp.status().ok());
    EXPECT_TRUE(Armed());
    EXPECT_FALSE(Evaluate(kSite).ok());
  }
  EXPECT_FALSE(Armed());
  EXPECT_TRUE(Evaluate(kSite).ok());
}

TEST_F(FailpointTest, ConfigureFromStringArmsMultipleSites) {
  ASSERT_TRUE(ConfigureFromString(
                  "storage/csv/read-file=once*error(unavailable);"
                  "core/engine/exact=delay(1)")
                  .ok());
  EXPECT_FALSE(Evaluate("storage/csv/read-file").ok());
  EXPECT_TRUE(Evaluate("core/engine/exact").ok());
  EXPECT_EQ(StatsFor("core/engine/exact").fire_count, 1u);
}

TEST_F(FailpointTest, ConfigureFromStringRejectsBadItems) {
  EXPECT_FALSE(ConfigureFromString("no/such/site=error(unavailable)").ok());
  EXPECT_FALSE(ConfigureFromString("storage/csv/read-file").ok());
}

TEST_F(FailpointTest, ConfigureFromEnvReadsVariable) {
  ::setenv("AQUA_FAILPOINTS", "storage/csv/read-file=once*error(unavailable)",
           1);
  const Status applied = ConfigureFromEnv();
  ::unsetenv("AQUA_FAILPOINTS");
  ASSERT_TRUE(applied.ok());
  EXPECT_FALSE(Evaluate("storage/csv/read-file").ok());
}

TEST_F(FailpointTest, ConfigureFromEnvUnsetIsNoOp) {
  ::unsetenv("AQUA_FAILPOINTS");
  EXPECT_TRUE(ConfigureFromEnv().ok());
  EXPECT_FALSE(Armed());
}

TEST_F(FailpointTest, InventoryIsStableAndWellFormed) {
  const auto& sites = AllSites();
  EXPECT_GE(sites.size(), 10u);
  std::set<std::string_view> names;
  for (const SiteInfo& site : sites) {
    EXPECT_FALSE(site.name.empty());
    EXPECT_FALSE(site.description.empty());
    EXPECT_TRUE(names.insert(site.name).second) << site.name << " duplicated";
    EXPECT_TRUE(IsKnownSite(site.name));
  }
  EXPECT_FALSE(IsKnownSite("no/such/site"));
}

}  // namespace
}  // namespace aqua::fault
