// Chaos inventory parity: the failpoint sites compiled into the library
// (fault::AllSites()), the AQUA_FAILPOINT macro invocations actually
// present under src/, and the literal inventory below must all agree.
//
// The literal list is not redundant: the `naked-failpoint` lint rule
// requires every macro site to appear as a quoted literal in a file under
// tests/, and this file is where they appear. Adding a failpoint to the
// source without extending AllSites() and this list fails this test (and
// the linter); registering a site nobody wired in fails it from the other
// direction. Either way the chaos runner's --all sweep stays honest.

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "aqua/common/failpoint.h"
#include "lint_support.h"

namespace aqua {
namespace {

// Every failpoint site, by hand. Keep sorted.
const std::set<std::string> kExpectedSites = {
    "common/exec_context/check",
    "core/engine/degrade",
    "core/engine/exact",
    "core/sampler/run",
    "exec/parallel/chunk",
    "exec/pool/run",
    "exec/pool/spawn",
    "mapping/serialize/parse",
    "mapping/serialize/read-file",
    "mapping/serialize/write-file",
    "server/accept",
    "server/admission",
    "server/read-request",
    "server/write-response",
    "shard/hedge",
    "shard/merge",
    "shard/run",
    "shard/spawn",
    "storage/csv/parse",
    "storage/csv/read-file",
    "storage/csv/write-file",
};

std::set<std::string> RegisteredSites() {
  std::set<std::string> names;
  for (const fault::SiteInfo& site : fault::AllSites()) {
    names.insert(std::string(site.name));
  }
  return names;
}

/// Scans every .cc/.h under <repo>/src for AQUA_FAILPOINT("...") call
/// sites, using the same extractor the linter uses.
std::set<std::string> MacroSitesInSource() {
  namespace fs = std::filesystem;
  std::set<std::string> sites;
  const fs::path root = fs::path(AQUA_SOURCE_DIR) / "src";
  EXPECT_TRUE(fs::is_directory(root)) << root;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".cc" && ext != ".h") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    // The extractor keys its scope check on "src/" in the path, so hand it
    // the repo-relative spelling.
    const std::string rel =
        "src/" + fs::relative(entry.path(), root).generic_string();
    for (const lint::FailpointSiteRef& ref :
         lint::ExtractFailpointSites(rel, buf.str())) {
      sites.insert(ref.site);
    }
  }
  return sites;
}

TEST(ChaosInventoryTest, RegistryMatchesExpectedInventory) {
  EXPECT_EQ(RegisteredSites(), kExpectedSites);
}

TEST(ChaosInventoryTest, SourceMacroSitesMatchRegistry) {
  const std::set<std::string> in_source = MacroSitesInSource();
  const std::set<std::string> registered = RegisteredSites();
  for (const std::string& site : in_source) {
    EXPECT_TRUE(registered.count(site))
        << "AQUA_FAILPOINT(\"" << site
        << "\") in source but missing from fault::AllSites()";
  }
  for (const std::string& site : registered) {
    EXPECT_TRUE(in_source.count(site))
        << "fault::AllSites() lists \"" << site
        << "\" but no AQUA_FAILPOINT in src/ uses it";
  }
}

TEST(ChaosInventoryTest, EverySiteIsArmable) {
  for (const fault::SiteInfo& site : fault::AllSites()) {
    EXPECT_TRUE(fault::Enable(site.name, "off").ok()) << site.name;
  }
  fault::DisableAll();
}

}  // namespace
}  // namespace aqua
