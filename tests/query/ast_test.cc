// Unit tests for the query AST: structural validation rules and the
// round-trippable SQL rendering of simple, grouped, HAVING, and nested
// aggregate queries.

#include "aqua/query/ast.h"

#include <gtest/gtest.h>

#include "aqua/expr/predicate.h"

namespace aqua {
namespace {

AggregateQuery CountStar() {
  AggregateQuery q;
  q.func = AggregateFunction::kCount;
  q.relation = "Listings";
  q.where = Predicate::True();
  return q;
}

TEST(AggregateFunctionTest, NamesMatchSql) {
  EXPECT_EQ(AggregateFunctionToString(AggregateFunction::kCount), "COUNT");
  EXPECT_EQ(AggregateFunctionToString(AggregateFunction::kSum), "SUM");
  EXPECT_EQ(AggregateFunctionToString(AggregateFunction::kAvg), "AVG");
  EXPECT_EQ(AggregateFunctionToString(AggregateFunction::kMin), "MIN");
  EXPECT_EQ(AggregateFunctionToString(AggregateFunction::kMax), "MAX");
}

TEST(AggregateQueryTest, CountStarValidates) {
  EXPECT_TRUE(CountStar().Validate().ok());
}

TEST(AggregateQueryTest, MissingRelationIsInvalid) {
  AggregateQuery q = CountStar();
  q.relation.clear();
  EXPECT_FALSE(q.Validate().ok());
}

TEST(AggregateQueryTest, NullWhereIsInvalid) {
  AggregateQuery q = CountStar();
  q.where = nullptr;
  EXPECT_FALSE(q.Validate().ok());
}

TEST(AggregateQueryTest, OnlyCountMayOmitTheAttribute) {
  AggregateQuery q = CountStar();
  q.func = AggregateFunction::kSum;
  const Status s = q.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("only COUNT"), std::string::npos);
  q.attribute = "price";
  EXPECT_TRUE(q.Validate().ok());
}

TEST(AggregateQueryTest, CountDistinctStarIsInvalid) {
  AggregateQuery q = CountStar();
  q.distinct = true;
  EXPECT_FALSE(q.Validate().ok());
}

TEST(AggregateQueryTest, HavingRequiresGroupBy) {
  AggregateQuery q = CountStar();
  HavingClause having;
  having.literal = Value::Int64(5);
  q.having = having;
  EXPECT_FALSE(q.Validate().ok());
  q.group_by = "city";
  EXPECT_TRUE(q.Validate().ok());
}

TEST(AggregateQueryTest, HavingLiteralMustBeNumeric) {
  AggregateQuery q = CountStar();
  q.group_by = "city";
  HavingClause having;
  having.literal = Value::String("five");
  q.having = having;
  EXPECT_FALSE(q.Validate().ok());
}

TEST(AggregateQueryTest, ToStringRendersEveryClause) {
  AggregateQuery q;
  q.func = AggregateFunction::kMax;
  q.attribute = "price";
  q.distinct = true;
  q.relation = "Listings";
  q.where = Predicate::Comparison("city", CompareOp::kEq,
                                  Value::String("rome"));
  q.group_by = "agent";
  HavingClause having;
  having.func = AggregateFunction::kCount;
  having.op = CompareOp::kGt;
  having.literal = Value::Int64(2);
  q.having = having;
  ASSERT_TRUE(q.Validate().ok());
  const std::string sql = q.ToString();
  EXPECT_NE(sql.find("SELECT MAX(DISTINCT price) FROM Listings"),
            std::string::npos);
  EXPECT_NE(sql.find("WHERE"), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY agent"), std::string::npos);
  EXPECT_NE(sql.find("HAVING COUNT(*) > 2"), std::string::npos);
}

TEST(AggregateQueryTest, TrueWhereIsOmittedFromToString) {
  EXPECT_EQ(CountStar().ToString().find("WHERE"), std::string::npos);
}

TEST(NestedAggregateQueryTest, InnerMustBeGrouped) {
  NestedAggregateQuery nested;
  nested.outer = AggregateFunction::kAvg;
  nested.inner = CountStar();
  EXPECT_FALSE(nested.Validate().ok());
  nested.inner.group_by = "city";
  EXPECT_TRUE(nested.Validate().ok());
}

TEST(NestedAggregateQueryTest, ToStringWrapsTheInnerQuery) {
  NestedAggregateQuery nested;
  nested.outer = AggregateFunction::kAvg;
  nested.inner = CountStar();
  nested.inner.group_by = "city";
  const std::string sql = nested.ToString();
  EXPECT_NE(sql.find("SELECT AVG(r) FROM (SELECT COUNT(*)"),
            std::string::npos);
  EXPECT_NE(sql.find(") AS r"), std::string::npos);
}

}  // namespace
}  // namespace aqua
