#include "aqua/query/view.h"

#include <gtest/gtest.h>

#include "aqua/query/executor.h"
#include "aqua/query/parser.h"
#include "aqua/storage/table_builder.h"
#include "aqua/workload/ebay.h"

namespace aqua {
namespace {

Table People() {
  const Schema schema = *Schema::Make({{"id", ValueType::kInt64},
                                       {"city", ValueType::kString},
                                       {"age", ValueType::kInt64}});
  TableBuilder b(schema);
  auto add = [&](int64_t id, const char* city, Value age) {
    ASSERT_TRUE(
        b.AppendRow({Value::Int64(id), Value::String(city), std::move(age)})
            .ok());
  };
  add(1, "haifa", Value::Int64(30));
  add(2, "college park", Value::Int64(41));
  add(3, "haifa", Value::Int64(25));
  add(4, "rome", Value::Null());
  return *std::move(b).Finish();
}

Table Cities() {
  const Schema schema = *Schema::Make(
      {{"city", ValueType::kString}, {"country", ValueType::kString}});
  TableBuilder b(schema);
  EXPECT_TRUE(b.AppendRow({Value::String("haifa"), Value::String("IL")}).ok());
  EXPECT_TRUE(b.AppendRow({Value::String("college park"),
                           Value::String("US")})
                  .ok());
  return *std::move(b).Finish();
}

TEST(ViewTest, SelectFiltersRows) {
  const auto v = View::Select(
      People(), Predicate::Comparison("age", CompareOp::kGe, Value::Int64(30)));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->num_rows(), 2u);  // NULL age filters out
  EXPECT_EQ(v->GetValue(0, 0), Value::Int64(1));
  EXPECT_EQ(v->GetValue(1, 0), Value::Int64(2));
}

TEST(ViewTest, ProjectReordersColumns) {
  const auto v = View::Project(People(), {"age", "id"});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->num_columns(), 2u);
  EXPECT_EQ(v->schema().attribute(0).name, "age");
  EXPECT_EQ(v->GetValue(0, 1), Value::Int64(1));
  EXPECT_TRUE(v->GetValue(3, 0).is_null());  // nulls preserved
}

TEST(ViewTest, ProjectValidates) {
  EXPECT_FALSE(View::Project(People(), {}).ok());
  EXPECT_FALSE(View::Project(People(), {"id", "nope"}).ok());
  EXPECT_FALSE(View::Project(People(), {"id", "ID"}).ok());
}

TEST(ViewTest, SelectProjectSinglePass) {
  const auto v = View::SelectProject(
      People(),
      Predicate::Comparison("city", CompareOp::kEq, Value::String("haifa")),
      {"id"});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->num_rows(), 2u);
  EXPECT_EQ(v->num_columns(), 1u);
}

TEST(ViewTest, HashJoinBasic) {
  const auto joined = View::HashJoin(People(), Cities(), "city", "city");
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  // rome has no match; 3 rows survive.
  EXPECT_EQ(joined->num_rows(), 3u);
  // Collided attribute renamed.
  EXPECT_TRUE(joined->schema().Contains("right_city"));
  EXPECT_TRUE(joined->schema().Contains("country"));
  // Each surviving row's country matches its city.
  const auto country = *joined->ColumnByName("country");
  const auto city = *joined->ColumnByName("city");
  for (size_t r = 0; r < joined->num_rows(); ++r) {
    if (city->StringAt(r) == "haifa") {
      EXPECT_EQ(country->StringAt(r), "IL");
    } else {
      EXPECT_EQ(country->StringAt(r), "US");
    }
  }
}

TEST(ViewTest, HashJoinNullKeysNeverMatch) {
  const Schema schema = *Schema::Make({{"k", ValueType::kInt64}});
  TableBuilder lb(schema), rb(schema);
  ASSERT_TRUE(lb.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(lb.AppendRow({Value::Int64(1)}).ok());
  ASSERT_TRUE(rb.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(rb.AppendRow({Value::Int64(1)}).ok());
  const auto joined = View::HashJoin(*std::move(lb).Finish(),
                                     *std::move(rb).Finish(), "k", "k");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 1u);  // only the 1 = 1 pair
}

TEST(ViewTest, HashJoinDuplicateKeysMultiply) {
  const Schema schema = *Schema::Make({{"k", ValueType::kInt64}});
  TableBuilder lb(schema), rb(schema);
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(lb.AppendRow({Value::Int64(7)}).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(rb.AppendRow({Value::Int64(7)}).ok());
  const auto joined = View::HashJoin(*std::move(lb).Finish(),
                                     *std::move(rb).Finish(), "k", "k");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 6u);
}

TEST(ViewTest, HashJoinRejectsBadKeys) {
  const Table people = People();
  const Table cities = Cities();
  EXPECT_FALSE(View::HashJoin(people, cities, "nope", "city").ok());
  EXPECT_FALSE(View::HashJoin(people, cities, "id", "city").ok());  // types
  const Schema dbl = *Schema::Make({{"x", ValueType::kDouble}});
  const Table d = Table::Empty(dbl);
  EXPECT_FALSE(View::HashJoin(d, d, "x", "x").ok());  // double keys
}

TEST(ViewTest, AggregateOverSpjView) {
  // The paper's setting: run the probabilistic aggregate over a view that
  // joins/filters the certain part of the schema. Here: deterministic
  // check that the executor composes with View output.
  const auto bids = PaperInstanceDS2();
  ASSERT_TRUE(bids.ok());
  const auto view = View::SelectProject(
      *bids,
      Predicate::Comparison("auction", CompareOp::kEq, Value::Int64(34)),
      {"transactionID", "bid", "currentPrice"});
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->num_rows(), 4u);
  const AggregateQuery q = *SqlParser::ParseSimple("SELECT SUM(bid) FROM v");
  const auto sum = Executor::ExecuteScalar(q, *view);
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(**sum, 1076.93, 1e-9);
}

}  // namespace
}  // namespace aqua
