#include "aqua/query/parser.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(ParserTest, PaperQueryQ1) {
  const auto q = SqlParser::ParseSimple(
      "SELECT COUNT(*) FROM T1 WHERE date < '2008-1-20'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->func, AggregateFunction::kCount);
  EXPECT_TRUE(q->attribute.empty());
  EXPECT_EQ(q->relation, "T1");
  EXPECT_EQ(q->where->ToString(), "date < '2008-1-20'");
  EXPECT_TRUE(q->group_by.empty());
}

TEST(ParserTest, PaperQueryQ2Nested) {
  const auto q = SqlParser::ParseNested(
      "SELECT AVG(R1.price) FROM (SELECT MAX(DISTINCT R2.price) FROM T2 AS "
      "R2 GROUP BY R2.auctionID) AS R1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->outer, AggregateFunction::kAvg);
  EXPECT_EQ(q->inner.func, AggregateFunction::kMax);
  EXPECT_TRUE(q->inner.distinct);
  EXPECT_EQ(q->inner.attribute, "price");
  EXPECT_EQ(q->inner.relation, "T2");
  EXPECT_EQ(q->inner.group_by, "auctionID");
}

TEST(ParserTest, PaperQueryQ2Prime) {
  const auto q = SqlParser::ParseSimple(
      "SELECT SUM(price) FROM T2 WHERE auctionID = 34");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->func, AggregateFunction::kSum);
  EXPECT_EQ(q->attribute, "price");
  EXPECT_EQ(q->where->ToString(), "auctionID = 34");
}

TEST(ParserTest, AllAggregateFunctions) {
  struct Case {
    const char* name;
    AggregateFunction func;
  };
  const Case cases[] = {{"COUNT", AggregateFunction::kCount},
                        {"sum", AggregateFunction::kSum},
                        {"Avg", AggregateFunction::kAvg},
                        {"MIN", AggregateFunction::kMin},
                        {"max", AggregateFunction::kMax}};
  for (const Case& c : cases) {
    const auto q = SqlParser::ParseSimple(std::string("SELECT ") + c.name +
                                          "(x) FROM t");
    ASSERT_TRUE(q.ok()) << c.name;
    EXPECT_EQ(q->func, c.func);
  }
}

TEST(ParserTest, GroupBy) {
  const auto q = SqlParser::ParseSimple(
      "SELECT MAX(price) FROM T2 GROUP BY auctionId");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->group_by, "auctionId");
}

TEST(ParserTest, WhereAndOrNotPrecedence) {
  const auto q = SqlParser::ParseSimple(
      "SELECT COUNT(*) FROM t WHERE a < 1 OR b > 2 AND NOT c = 3");
  ASSERT_TRUE(q.ok());
  // AND binds tighter than OR; NOT tighter than AND.
  EXPECT_EQ(q->where->ToString(), "(a < 1 OR (b > 2 AND (NOT c = 3)))");
}

TEST(ParserTest, ParenthesisedCondition) {
  const auto q = SqlParser::ParseSimple(
      "SELECT COUNT(*) FROM t WHERE (a < 1 OR b > 2) AND c = 3");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where->ToString(), "((a < 1 OR b > 2) AND c = 3)");
}

TEST(ParserTest, ComparisonOperators) {
  const char* ops[] = {"=", "<>", "!=", "<", "<=", ">", ">="};
  for (const char* op : ops) {
    const auto q = SqlParser::ParseSimple(
        std::string("SELECT COUNT(*) FROM t WHERE a ") + op + " 1");
    EXPECT_TRUE(q.ok()) << op;
  }
}

TEST(ParserTest, ReversedComparisonNormalises) {
  const auto q =
      SqlParser::ParseSimple("SELECT COUNT(*) FROM t WHERE 5 > a");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where->ToString(), "a < 5");
}

TEST(ParserTest, LiteralTypes) {
  const auto q = SqlParser::ParseSimple(
      "SELECT COUNT(*) FROM t WHERE a = 42 AND b < 2.5 AND c = 'x''y' AND d "
      "> 1e3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // AND is left-associative.
  EXPECT_EQ(q->where->ToString(),
            "(((a = 42 AND b < 2.5) AND c = 'x'y') AND d > 1000)");
}

TEST(ParserTest, QualifiedNamesDropQualifier) {
  const auto q = SqlParser::ParseSimple(
      "SELECT SUM(R2.price) FROM T2 AS R2 WHERE R2.auction = 1 GROUP BY "
      "R2.auction");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->attribute, "price");
  EXPECT_EQ(q->group_by, "auction");
  EXPECT_EQ(q->where->ToString(), "auction = 1");
}

TEST(ParserTest, BareAliasAccepted) {
  EXPECT_TRUE(SqlParser::ParseSimple("SELECT COUNT(*) FROM t x").ok());
}

TEST(ParserTest, TrailingSemicolon) {
  EXPECT_TRUE(SqlParser::ParseSimple("SELECT COUNT(*) FROM t;").ok());
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(SqlParser::ParseSimple(
                  "select count(*) from t where a < 1 group by b")
                  .ok());
}

TEST(ParserTest, ParseDispatchesOnShape) {
  const auto simple = SqlParser::Parse("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(simple.ok());
  EXPECT_EQ(simple->kind, ParsedQuery::Kind::kSimple);
  const auto nested = SqlParser::Parse(
      "SELECT AVG(v) FROM (SELECT MAX(x) FROM t GROUP BY g)");
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();
  EXPECT_EQ(nested->kind, ParsedQuery::Kind::kNested);
}

TEST(ParserTest, BetweenDesugars) {
  const auto q = SqlParser::ParseSimple(
      "SELECT COUNT(*) FROM t WHERE a BETWEEN 1 AND 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->where->ToString(), "(a >= 1 AND a <= 5)");
}

TEST(ParserTest, NotBetweenDesugars) {
  const auto q = SqlParser::ParseSimple(
      "SELECT COUNT(*) FROM t WHERE a NOT BETWEEN 1 AND 5 AND b = 2");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // BETWEEN consumes its own AND; the second AND is logical.
  EXPECT_EQ(q->where->ToString(),
            "((NOT (a >= 1 AND a <= 5)) AND b = 2)");
}

TEST(ParserTest, InDesugars) {
  const auto q = SqlParser::ParseSimple(
      "SELECT COUNT(*) FROM t WHERE a IN (1, 2, 3)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->where->ToString(), "((a = 1 OR a = 2) OR a = 3)");
}

TEST(ParserTest, NotInDesugars) {
  const auto q = SqlParser::ParseSimple(
      "SELECT COUNT(*) FROM t WHERE s NOT IN ('x', 'y')");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->where->ToString(), "(NOT (s = 'x' OR s = 'y'))");
}

TEST(ParserTest, InWithSingleElement) {
  const auto q =
      SqlParser::ParseSimple("SELECT COUNT(*) FROM t WHERE a IN (7)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where->ToString(), "a = 7");
}

TEST(ParserTest, MalformedBetweenAndIn) {
  EXPECT_FALSE(SqlParser::ParseSimple(
                   "SELECT COUNT(*) FROM t WHERE a BETWEEN 1")
                   .ok());
  EXPECT_FALSE(SqlParser::ParseSimple(
                   "SELECT COUNT(*) FROM t WHERE a BETWEEN 1 OR 5")
                   .ok());
  EXPECT_FALSE(
      SqlParser::ParseSimple("SELECT COUNT(*) FROM t WHERE a IN ()").ok());
  EXPECT_FALSE(
      SqlParser::ParseSimple("SELECT COUNT(*) FROM t WHERE a IN (1,)").ok());
  EXPECT_FALSE(
      SqlParser::ParseSimple("SELECT COUNT(*) FROM t WHERE a NOT 5").ok());
}

TEST(ParserTest, RejectsMalformedQueries) {
  const char* bad[] = {
      "",
      "SELECT",
      "SELECT COUNT(*)",
      "SELECT COUNT(*) FROM",
      "SELECT FOO(x) FROM t",
      "SELECT SUM(*) FROM t",
      "SELECT COUNT(DISTINCT *) FROM t",
      "SELECT COUNT(*) FROM t WHERE",
      "SELECT COUNT(*) FROM t WHERE a",
      "SELECT COUNT(*) FROM t WHERE a <",
      "SELECT COUNT(*) FROM t WHERE a < 'unterminated",
      "SELECT COUNT(*) FROM t WHERE (a < 1",
      "SELECT COUNT(*) FROM t GROUP",
      "SELECT COUNT(*) FROM t GROUP BY",
      "SELECT COUNT(*) FROM t trailing garbage",
      "SELECT AVG(v) FROM (SELECT MAX(x) FROM t)",        // inner not grouped
      "SELECT AVG(*) FROM (SELECT MAX(x) FROM t GROUP BY g)",
      "SELECT COUNT(*) FROM t WHERE a ! 1",
  };
  for (const char* sql : bad) {
    EXPECT_FALSE(SqlParser::Parse(sql).ok()) << sql;
  }
}

TEST(ParserTest, RejectsDoubleNesting) {
  EXPECT_FALSE(SqlParser::Parse(
                   "SELECT AVG(v) FROM (SELECT MAX(x) FROM (SELECT MIN(y) "
                   "FROM t GROUP BY g) GROUP BY h)")
                   .ok());
}

TEST(ParserTest, RequireShapeHelpers) {
  EXPECT_FALSE(SqlParser::ParseNested("SELECT COUNT(*) FROM t").ok());
  EXPECT_FALSE(SqlParser::ParseSimple(
                   "SELECT AVG(v) FROM (SELECT MAX(x) FROM t GROUP BY g)")
                   .ok());
}

}  // namespace
}  // namespace aqua
