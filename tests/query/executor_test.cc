#include "aqua/query/executor.h"

#include <gtest/gtest.h>

#include "aqua/query/parser.h"
#include "aqua/storage/table_builder.h"

namespace aqua {
namespace {

Schema TestSchema() {
  return *Schema::Make({{"g", ValueType::kInt64},
                        {"v", ValueType::kDouble},
                        {"name", ValueType::kString}});
}

// g: 1 1 1 2 2 3; v: 10 20 NULL 5 15 7.
Table TestTable() {
  TableBuilder b(TestSchema());
  auto add = [&](int64_t g, Value v, const char* n) {
    ASSERT_TRUE(b.AppendRow({Value::Int64(g), std::move(v),
                             Value::String(n)})
                    .ok());
  };
  add(1, Value::Double(10), "a");
  add(1, Value::Double(20), "b");
  add(1, Value::Null(), "c");
  add(2, Value::Double(5), "d");
  add(2, Value::Double(15), "e");
  add(3, Value::Double(7), "f");
  return *std::move(b).Finish();
}

std::optional<double> RunScalar(const char* sql, const Table& t) {
  auto q = SqlParser::ParseSimple(sql);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto r = Executor::ExecuteScalar(*q, t);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

TEST(ExecutorTest, CountStarCountsAllRows) {
  EXPECT_DOUBLE_EQ(*RunScalar("SELECT COUNT(*) FROM t", TestTable()), 6.0);
}

TEST(ExecutorTest, CountAttributeSkipsNulls) {
  EXPECT_DOUBLE_EQ(*RunScalar("SELECT COUNT(v) FROM t", TestTable()), 5.0);
}

TEST(ExecutorTest, CountWithWhere) {
  EXPECT_DOUBLE_EQ(*RunScalar("SELECT COUNT(*) FROM t WHERE g = 1", TestTable()),
                   3.0);
  EXPECT_DOUBLE_EQ(*RunScalar("SELECT COUNT(v) FROM t WHERE g = 1", TestTable()),
                   2.0);
}

TEST(ExecutorTest, SumSkipsNulls) {
  EXPECT_DOUBLE_EQ(*RunScalar("SELECT SUM(v) FROM t", TestTable()), 57.0);
}

TEST(ExecutorTest, SumOverEmptySelectionIsZero) {
  // Documented deviation from SQL NULL (see executor.cc).
  EXPECT_DOUBLE_EQ(*RunScalar("SELECT SUM(v) FROM t WHERE g = 99", TestTable()),
                   0.0);
}

TEST(ExecutorTest, AvgMinMax) {
  EXPECT_DOUBLE_EQ(*RunScalar("SELECT AVG(v) FROM t", TestTable()), 57.0 / 5);
  EXPECT_DOUBLE_EQ(*RunScalar("SELECT MIN(v) FROM t", TestTable()), 5.0);
  EXPECT_DOUBLE_EQ(*RunScalar("SELECT MAX(v) FROM t", TestTable()), 20.0);
}

TEST(ExecutorTest, AvgMinMaxOverEmptySelectionAreNull) {
  EXPECT_FALSE(RunScalar("SELECT AVG(v) FROM t WHERE g = 99", TestTable())
                   .has_value());
  EXPECT_FALSE(RunScalar("SELECT MIN(v) FROM t WHERE g = 99", TestTable())
                   .has_value());
  EXPECT_FALSE(RunScalar("SELECT MAX(v) FROM t WHERE g = 99", TestTable())
                   .has_value());
}

TEST(ExecutorTest, Distinct) {
  TableBuilder b(TestSchema());
  for (double v : {1.0, 1.0, 2.0, 2.0, 3.0}) {
    ASSERT_TRUE(
        b.AppendRow({Value::Int64(1), Value::Double(v), Value::String("")})
            .ok());
  }
  const Table t = *std::move(b).Finish();
  EXPECT_DOUBLE_EQ(*RunScalar("SELECT COUNT(DISTINCT v) FROM t", t), 3.0);
  EXPECT_DOUBLE_EQ(*RunScalar("SELECT SUM(DISTINCT v) FROM t", t), 6.0);
  EXPECT_DOUBLE_EQ(*RunScalar("SELECT AVG(DISTINCT v) FROM t", t), 2.0);
}

TEST(ExecutorTest, GroupedQuery) {
  auto q = SqlParser::ParseSimple("SELECT SUM(v) FROM t GROUP BY g");
  ASSERT_TRUE(q.ok());
  auto r = Executor::ExecuteGrouped(*q, TestTable());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0].group, Value::Int64(1));
  EXPECT_DOUBLE_EQ((*r)[0].value, 30.0);
  EXPECT_EQ((*r)[1].group, Value::Int64(2));
  EXPECT_DOUBLE_EQ((*r)[1].value, 20.0);
  EXPECT_EQ((*r)[2].group, Value::Int64(3));
  EXPECT_DOUBLE_EQ((*r)[2].value, 7.0);
}

TEST(ExecutorTest, GroupedByString) {
  auto q = SqlParser::ParseSimple("SELECT COUNT(*) FROM t GROUP BY name");
  ASSERT_TRUE(q.ok());
  auto r = Executor::ExecuteGrouped(*q, TestTable());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 6u);  // all names unique
}

TEST(ExecutorTest, GroupWhoseAggregateIsNullIsOmitted) {
  auto q = SqlParser::ParseSimple("SELECT MAX(v) FROM t GROUP BY g");
  ASSERT_TRUE(q.ok());
  TableBuilder b(TestSchema());
  ASSERT_TRUE(b.AppendRow({Value::Int64(1), Value::Double(1), Value::String("")}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Int64(2), Value::Null(), Value::String("")}).ok());
  const Table t = *std::move(b).Finish();
  auto r = Executor::ExecuteGrouped(*q, t);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].group, Value::Int64(1));
}

TEST(ExecutorTest, ScalarRejectsGroupedQueryAndViceVersa) {
  const Table t = TestTable();
  auto grouped = SqlParser::ParseSimple("SELECT SUM(v) FROM t GROUP BY g");
  EXPECT_FALSE(Executor::ExecuteScalar(*grouped, t).ok());
  auto scalar = SqlParser::ParseSimple("SELECT SUM(v) FROM t");
  EXPECT_FALSE(Executor::ExecuteGrouped(*scalar, t).ok());
}

TEST(ExecutorTest, SumOverStringColumnRejected) {
  const Table t = TestTable();
  auto q = SqlParser::ParseSimple("SELECT SUM(name) FROM t");
  EXPECT_FALSE(Executor::ExecuteScalar(*q, t).ok());
}

TEST(ExecutorTest, MinOverStringColumnUnimplemented) {
  const Table t = TestTable();
  auto q = SqlParser::ParseSimple("SELECT MIN(name) FROM t");
  auto r = Executor::ExecuteScalar(*q, t);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST(ExecutorTest, UnknownAttributeFails) {
  const Table t = TestTable();
  auto q = SqlParser::ParseSimple("SELECT SUM(zzz) FROM t");
  EXPECT_FALSE(Executor::ExecuteScalar(*q, t).ok());
}

TEST(ExecutorTest, NestedQuery) {
  // Average per-group maximum: max(10,20)=20, max(5,15)=15, max(7)=7.
  auto q = SqlParser::ParseNested(
      "SELECT AVG(m) FROM (SELECT MAX(v) FROM t GROUP BY g) AS r");
  ASSERT_TRUE(q.ok());
  auto r = Executor::ExecuteNested(*q, TestTable());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(**r, (20.0 + 15.0 + 7.0) / 3.0);
}

TEST(ExecutorTest, FoldMatchesAggregates) {
  const std::vector<double> values = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(*Executor::Fold(AggregateFunction::kCount, values), 3.0);
  EXPECT_DOUBLE_EQ(*Executor::Fold(AggregateFunction::kSum, values), 6.0);
  EXPECT_DOUBLE_EQ(*Executor::Fold(AggregateFunction::kAvg, values), 2.0);
  EXPECT_DOUBLE_EQ(*Executor::Fold(AggregateFunction::kMin, values), 1.0);
  EXPECT_DOUBLE_EQ(*Executor::Fold(AggregateFunction::kMax, values), 3.0);
  EXPECT_FALSE(Executor::Fold(AggregateFunction::kMax, {}).has_value());
  EXPECT_DOUBLE_EQ(*Executor::Fold(AggregateFunction::kCount, {}), 0.0);
}

TEST(GroupIndexTest, AssignsDenseIdsInFirstSeenOrder) {
  const Table t = TestTable();
  auto idx = GroupIndex::Build(t, 0);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->num_groups(), 3u);
  const std::vector<int32_t> expected = {0, 0, 0, 1, 1, 2};
  EXPECT_EQ(idx->row_groups(), expected);
  EXPECT_EQ(idx->group_values()[0], Value::Int64(1));
  EXPECT_EQ(idx->group_values()[2], Value::Int64(3));
}

TEST(GroupIndexTest, NullsFormTheirOwnGroup) {
  TableBuilder b(TestSchema());
  ASSERT_TRUE(b.AppendRow({Value::Int64(1), Value::Double(1), Value::String("")}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Null(), Value::Double(2), Value::String("")}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Null(), Value::Double(3), Value::String("")}).ok());
  const Table t = *std::move(b).Finish();
  auto idx = GroupIndex::Build(t, 0);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->num_groups(), 2u);
  EXPECT_EQ(idx->row_groups()[1], idx->row_groups()[2]);
  EXPECT_NE(idx->row_groups()[0], idx->row_groups()[1]);
}

TEST(GroupIndexTest, GroupsByDateColumn) {
  const Schema schema = *Schema::Make(
      {{"d", ValueType::kDate}, {"v", ValueType::kDouble}});
  TableBuilder b(schema);
  const Date d1 = *Date::FromYmd(2008, 1, 5);
  const Date d2 = *Date::FromYmd(2008, 1, 30);
  ASSERT_TRUE(b.AppendRow({Value::FromDate(d1), Value::Double(1)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::FromDate(d2), Value::Double(2)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::FromDate(d1), Value::Double(3)}).ok());
  const Table t = *std::move(b).Finish();
  auto idx = GroupIndex::Build(t, 0);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->num_groups(), 2u);
  EXPECT_EQ(idx->row_groups()[0], idx->row_groups()[2]);
  EXPECT_EQ(idx->group_values()[0].date(), d1);
}

TEST(GroupIndexTest, OutOfRangeColumnFails) {
  const Table t = TestTable();
  EXPECT_FALSE(GroupIndex::Build(t, 99).ok());
}

}  // namespace
}  // namespace aqua
