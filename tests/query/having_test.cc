#include <gtest/gtest.h>

#include "aqua/core/by_table.h"
#include "aqua/core/engine.h"
#include "aqua/query/executor.h"
#include "aqua/query/parser.h"
#include "aqua/storage/table_builder.h"
#include "aqua/workload/ebay.h"

namespace aqua {
namespace {

// g: 1 (3 rows, sum 30), 2 (2 rows, sum 20), 3 (1 row, sum 7).
Table GroupsTable() {
  const Schema schema = *Schema::Make(
      {{"g", ValueType::kInt64}, {"v", ValueType::kDouble}});
  TableBuilder b(schema);
  auto add = [&](int64_t g, double v) {
    ASSERT_TRUE(b.AppendRow({Value::Int64(g), Value::Double(v)}).ok());
  };
  add(1, 10);
  add(1, 12);
  add(1, 8);
  add(2, 5);
  add(2, 15);
  add(3, 7);
  return *std::move(b).Finish();
}

TEST(HavingParserTest, ParsesHavingClause) {
  const auto q = SqlParser::ParseSimple(
      "SELECT SUM(v) FROM t GROUP BY g HAVING COUNT(*) > 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->having.has_value());
  EXPECT_EQ(q->having->func, AggregateFunction::kCount);
  EXPECT_TRUE(q->having->attribute.empty());
  EXPECT_EQ(q->having->op, CompareOp::kGt);
  EXPECT_EQ(q->having->literal, Value::Int64(1));
  EXPECT_EQ(q->ToString(),
            "SELECT SUM(v) FROM t GROUP BY g HAVING COUNT(*) > 1");
}

TEST(HavingParserTest, HavingAggregateMayDifferFromSelect) {
  const auto q = SqlParser::ParseSimple(
      "SELECT MAX(v) FROM t GROUP BY g HAVING AVG(v) >= 10");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->having->func, AggregateFunction::kAvg);
  EXPECT_EQ(q->having->attribute, "v");
}

TEST(HavingParserTest, RejectsMalformedHaving) {
  EXPECT_FALSE(SqlParser::ParseSimple(
                   "SELECT SUM(v) FROM t HAVING COUNT(*) > 1")
                   .ok());  // no GROUP BY
  EXPECT_FALSE(SqlParser::ParseSimple(
                   "SELECT SUM(v) FROM t GROUP BY g HAVING COUNT(*)")
                   .ok());  // no comparison
  EXPECT_FALSE(SqlParser::ParseSimple(
                   "SELECT SUM(v) FROM t GROUP BY g HAVING SUM(*) > 1")
                   .ok());  // SUM(*)
  EXPECT_FALSE(SqlParser::ParseSimple(
                   "SELECT SUM(v) FROM t GROUP BY g HAVING COUNT(*) > 'x'")
                   .ok());  // non-numeric literal
}

TEST(HavingExecutorTest, FiltersGroupsByCount) {
  const auto q = SqlParser::ParseSimple(
      "SELECT SUM(v) FROM t GROUP BY g HAVING COUNT(*) > 1");
  ASSERT_TRUE(q.ok());
  const auto r = Executor::ExecuteGrouped(*q, GroupsTable());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 2u);  // group 3 has one row
  EXPECT_EQ((*r)[0].group, Value::Int64(1));
  EXPECT_DOUBLE_EQ((*r)[0].value, 30.0);
  EXPECT_EQ((*r)[1].group, Value::Int64(2));
}

TEST(HavingExecutorTest, FiltersGroupsByDifferentAggregate) {
  const auto q = SqlParser::ParseSimple(
      "SELECT COUNT(*) FROM t GROUP BY g HAVING MAX(v) >= 12");
  ASSERT_TRUE(q.ok());
  const auto r = Executor::ExecuteGrouped(*q, GroupsTable());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);  // max 12 (g=1), 15 (g=2), 7 (g=3 drops)
}

TEST(HavingExecutorTest, AllComparisonOps) {
  struct Case {
    const char* op;
    size_t expected_groups;
  };
  // Group sums: 30, 20, 7; HAVING SUM(v) <op> 20.
  const Case cases[] = {{"=", 1}, {"<>", 2}, {"<", 1},
                        {"<=", 2}, {">", 1}, {">=", 2}};
  for (const Case& c : cases) {
    const auto q = SqlParser::ParseSimple(
        std::string("SELECT COUNT(*) FROM t GROUP BY g HAVING SUM(v) ") +
        c.op + " 20");
    ASSERT_TRUE(q.ok()) << c.op;
    const auto r = Executor::ExecuteGrouped(*q, GroupsTable());
    ASSERT_TRUE(r.ok()) << c.op;
    EXPECT_EQ(r->size(), c.expected_groups) << c.op;
  }
}

TEST(HavingExecutorTest, HavingWithWhere) {
  // WHERE removes v = 15 first; group 2 then sums to 5 and count 1.
  const auto q = SqlParser::ParseSimple(
      "SELECT SUM(v) FROM t WHERE v < 15 GROUP BY g HAVING COUNT(*) >= 2");
  ASSERT_TRUE(q.ok());
  const auto r = Executor::ExecuteGrouped(*q, GroupsTable());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].group, Value::Int64(1));
}

TEST(HavingByTableTest, FiltersPerMapping) {
  // Paper instance: MAX(price) per auction HAVING MIN(price) > 300. Under
  // m21 (bid) auction 38's min is 330.01 (passes) and auction 34's is 195
  // (drops); under m22 (currentPrice) auction 38's min is 300 (drops,
  // not strictly greater) and 34's is 195 (drops).
  const Table ds2 = *PaperInstanceDS2();
  const PMapping pm = *MakeEbayPMapping();
  const auto q = SqlParser::ParseSimple(
      "SELECT MAX(price) FROM T2 GROUP BY auctionId HAVING MIN(price) > "
      "300");
  ASSERT_TRUE(q.ok());
  const auto rows = ByTable::AnswerGrouped(*q, pm, ds2,
                                           AggregateSemantics::kDistribution);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].group, Value::Int64(38));
  // Only m21 contributes: mass 0.3 at MAX(bid) = 439.95.
  EXPECT_NEAR((*rows)[0].answer.distribution.TotalMass(), 0.3, 1e-12);
}

TEST(HavingEngineTest, ByTupleHavingIsUnimplemented) {
  const Table ds2 = *PaperInstanceDS2();
  const PMapping pm = *MakeEbayPMapping();
  const Engine engine;
  const auto r = engine.AnswerGroupedSql(
      "SELECT MAX(price) FROM T2 GROUP BY auctionId HAVING COUNT(*) > 1",
      pm, ds2, MappingSemantics::kByTuple, AggregateSemantics::kRange);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST(HavingValidationTest, AstLevelChecks) {
  AggregateQuery q = *SqlParser::ParseSimple("SELECT SUM(v) FROM t GROUP BY g");
  HavingClause h;
  h.func = AggregateFunction::kSum;
  h.attribute = "";  // SUM(*) is invalid
  h.literal = Value::Int64(1);
  q.having = h;
  EXPECT_FALSE(q.Validate().ok());
  q.having->attribute = "v";
  EXPECT_TRUE(q.Validate().ok());
  q.having->literal = Value::Null();
  EXPECT_FALSE(q.Validate().ok());
}

}  // namespace
}  // namespace aqua
