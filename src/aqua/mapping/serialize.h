#ifndef AQUA_MAPPING_SERIALIZE_H_
#define AQUA_MAPPING_SERIALIZE_H_

#include <string>
#include <string_view>

#include "aqua/common/result.h"
#include "aqua/fault/retry.h"
#include "aqua/mapping/p_mapping.h"

namespace aqua {

/// Human-editable text format for (schema) p-mappings, so matcher output
/// can be stored in files and reviewed. Grammar (one statement per line,
/// `#` comments, blank lines ignored):
///
///   pmapping S1 => T1
///   candidate 0.6: ID -> propertyID, postedDate -> date
///   candidate 0.4: ID -> propertyID, reducedDate -> date
///   pmapping S2 => T2
///   ...
///
/// A `candidate` line belongs to the most recent `pmapping` header.
/// Probabilities of each block must sum to 1 (validated by
/// `PMapping::Make`).
class PMappingText {
 public:
  /// Serialises one p-mapping (one header + one candidate line each).
  static std::string Format(const PMapping& pmapping);

  /// Serialises a schema p-mapping (blocks concatenated).
  static std::string FormatSchema(const SchemaPMapping& mapping);

  /// Parses text containing exactly one `pmapping` block.
  static Result<PMapping> Parse(std::string_view text);

  /// Parses text containing one or more blocks.
  static Result<SchemaPMapping> ParseSchema(std::string_view text);

  /// Reads and parses the file at `path` (one or more blocks). Transient
  /// (`kUnavailable`) read failures — failpoint
  /// `mapping/serialize/read-file` — are retried under `retry`.
  static Result<SchemaPMapping> ReadSchemaFile(
      const std::string& path,
      const fault::RetryPolicy& retry = fault::RetryPolicy());

  /// Writes `FormatSchema(mapping)` to `path`, retrying transient failures
  /// under `retry` (failpoint `mapping/serialize/write-file`).
  static Status WriteSchemaFile(
      const SchemaPMapping& mapping, const std::string& path,
      const fault::RetryPolicy& retry = fault::RetryPolicy());
};

}  // namespace aqua

#endif  // AQUA_MAPPING_SERIALIZE_H_
