#include "aqua/mapping/top_k.h"

#include <algorithm>
#include <numeric>

namespace aqua {

Result<PrunedPMapping> TopKMappings(const PMapping& pmapping, size_t k) {
  if (k == 0) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (k >= pmapping.size()) {
    return PrunedPMapping{pmapping, 0.0};
  }
  // Stable order of candidate indices by descending probability.
  std::vector<size_t> order(pmapping.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return pmapping.probability(a) > pmapping.probability(b);
  });
  order.resize(k);
  // Preserve the original candidate order among survivors so the pruned
  // p-mapping reads like the input.
  std::sort(order.begin(), order.end());

  double kept_mass = 0.0;
  for (size_t i : order) kept_mass += pmapping.probability(i);
  if (kept_mass <= 0.0) {
    return Status::InvalidArgument(
        "top-" + std::to_string(k) + " candidates carry zero probability");
  }
  std::vector<PMapping::Alternative> kept;
  kept.reserve(k);
  for (size_t i : order) {
    kept.push_back(PMapping::Alternative{pmapping.mapping(i),
                                         pmapping.probability(i) / kept_mass});
  }
  AQUA_ASSIGN_OR_RETURN(PMapping pruned, PMapping::Make(std::move(kept)));
  return PrunedPMapping{std::move(pruned), 1.0 - kept_mass};
}

double ExpectedValueErrorBound(const PrunedPMapping& pruned,
                               const Interval& answer_range) {
  return pruned.dropped_mass * answer_range.width();
}

}  // namespace aqua
