#ifndef AQUA_MAPPING_TOP_K_H_
#define AQUA_MAPPING_TOP_K_H_

#include <cstddef>

#include "aqua/common/interval.h"
#include "aqua/common/result.h"
#include "aqua/mapping/p_mapping.h"

namespace aqua {

/// Result of truncating a p-mapping to its most probable candidates.
struct PrunedPMapping {
  /// The surviving candidates with probabilities renormalised to sum to 1.
  PMapping pmapping;

  /// Total original probability of the dropped candidates. An answer
  /// computed against `pmapping` differs from the full answer by at most
  /// this mass times the answer spread (see `ExpectedValueErrorBound`).
  double dropped_mass = 0.0;
};

/// Keeps the `k` most probable candidate mappings (ties broken by original
/// order) and renormalises — the standard interface to top-K schema
/// matchers the paper cites ([12], [28]): a matcher produces many low-
/// probability candidates, and answering against all of them multiplies
/// every query's cost by l.
///
/// `k` must be >= 1; `k >= size()` returns the input unchanged with zero
/// dropped mass.
Result<PrunedPMapping> TopKMappings(const PMapping& pmapping, size_t k);

/// Bound on how far a *by-table expected value* computed under the pruned
/// p-mapping can lie from the one under the full p-mapping, given an
/// enclosing interval `answer_range` for the per-mapping answers (e.g. the
/// by-table range under the full p-mapping):
///
///   |E_full - E_pruned| <= dropped_mass * width(answer_range)
///
/// Proof sketch: E_full = (1 - d) * E_kept + d * E_dropped, and both
/// E_kept (= E_pruned) and E_dropped lie inside `answer_range`.
double ExpectedValueErrorBound(const PrunedPMapping& pruned,
                               const Interval& answer_range);

}  // namespace aqua

#endif  // AQUA_MAPPING_TOP_K_H_
