#ifndef AQUA_MAPPING_RELATION_MAPPING_H_
#define AQUA_MAPPING_RELATION_MAPPING_H_

#include <string>
#include <vector>

#include "aqua/common/result.h"
#include "aqua/mapping/correspondence.h"

namespace aqua {

/// A one-to-one relation mapping m between a source relation S and a target
/// relation T (Definition 1): a set of attribute correspondences in which
/// every source attribute and every target attribute occurs at most once.
///
/// Attributes absent from the correspondence set are simply unmapped (the
/// paper's `comments` attribute); querying them under this mapping fails.
class RelationMapping {
 public:
  RelationMapping() = default;

  /// Validates the one-to-one property (case-insensitive on names).
  static Result<RelationMapping> Make(
      std::string source_relation, std::string target_relation,
      std::vector<Correspondence> correspondences);

  const std::string& source_relation() const { return source_relation_; }
  const std::string& target_relation() const { return target_relation_; }
  const std::vector<Correspondence>& correspondences() const {
    return correspondences_;
  }

  /// The source attribute that target attribute `target` maps to, or
  /// kNotFound when the target attribute has no correspondence under this
  /// mapping.
  Result<std::string> SourceFor(std::string_view target) const;

  /// The target attribute that source attribute `source` maps to.
  Result<std::string> TargetFor(std::string_view source) const;

  /// True iff `target` has a correspondence.
  bool MapsTarget(std::string_view target) const {
    return SourceFor(target).ok();
  }

  /// "{s1->t1, s2->t2, ...}" in canonical (sorted) order.
  std::string ToString() const;

  /// Mappings are equal iff they relate the same relations via the same
  /// correspondence *set* (order-independent; names case-sensitive here,
  /// since canonicalisation lowercases consistently at Make()).
  friend bool operator==(const RelationMapping& a, const RelationMapping& b) {
    return a.source_relation_ == b.source_relation_ &&
           a.target_relation_ == b.target_relation_ &&
           a.correspondences_ == b.correspondences_;
  }

 private:
  std::string source_relation_;
  std::string target_relation_;
  std::vector<Correspondence> correspondences_;  // sorted for canonical form
};

}  // namespace aqua

#endif  // AQUA_MAPPING_RELATION_MAPPING_H_
