#include "aqua/mapping/p_mapping.h"

#include <cmath>

#include "aqua/common/string_util.h"

namespace aqua {

Result<PMapping> PMapping::Make(std::vector<Alternative> alternatives,
                                double eps) {
  if (alternatives.empty()) {
    return Status::InvalidArgument(
        "a p-mapping needs at least one candidate mapping");
  }
  const std::string& src = alternatives.front().mapping.source_relation();
  const std::string& tgt = alternatives.front().mapping.target_relation();
  double total = 0.0;
  for (size_t i = 0; i < alternatives.size(); ++i) {
    const Alternative& alt = alternatives[i];
    if (!EqualsIgnoreCase(alt.mapping.source_relation(), src) ||
        !EqualsIgnoreCase(alt.mapping.target_relation(), tgt)) {
      return Status::InvalidArgument(
          "all candidate mappings must relate the same pair of relations");
    }
    if (alt.probability < 0.0 || alt.probability > 1.0) {
      return Status::InvalidArgument(
          "probability " + FormatDouble(alt.probability) +
          " of candidate " + std::to_string(i) + " is outside [0, 1]");
    }
    total += alt.probability;
    for (size_t j = 0; j < i; ++j) {
      if (alternatives[j].mapping == alt.mapping) {
        return Status::InvalidArgument("candidate mappings " +
                                       std::to_string(j) + " and " +
                                       std::to_string(i) + " are identical");
      }
    }
  }
  if (std::fabs(total - 1.0) > eps) {
    return Status::InvalidArgument("mapping probabilities sum to " +
                                   FormatDouble(total) + ", expected 1");
  }
  PMapping pm;
  pm.alternatives_ = std::move(alternatives);
  return pm;
}

std::vector<double> PMapping::probabilities() const {
  std::vector<double> out;
  out.reserve(alternatives_.size());
  for (const Alternative& alt : alternatives_) {
    out.push_back(alt.probability);
  }
  return out;
}

void PMapping::CheckInvariants() const {
  AQUA_CHECK(!alternatives_.empty()) << "p-mapping with no candidates";
  double total = 0.0;
  for (size_t i = 0; i < alternatives_.size(); ++i) {
    AQUA_CHECK_PROB(alternatives_[i].probability)
        << "(candidate " << i << " of p-mapping " << source_relation()
        << " => " << target_relation() << ")";
    total += alternatives_[i].probability;
  }
  AQUA_CHECK(std::fabs(total - 1.0) <= 1e-6)
      << "mapping probabilities sum to " << total << ", expected 1 (p-mapping "
      << source_relation() << " => " << target_relation() << ")";
}

bool PMapping::IsCertainTarget(std::string_view target) const {
  Result<std::string> first = alternatives_.front().mapping.SourceFor(target);
  for (size_t i = 1; i < alternatives_.size(); ++i) {
    Result<std::string> cur = alternatives_[i].mapping.SourceFor(target);
    if (cur.ok() != first.ok()) return false;
    if (cur.ok() && !EqualsIgnoreCase(*cur, *first)) return false;
  }
  return true;
}

std::string PMapping::ToString() const {
  std::string out = "pM(" + source_relation() + " => " + target_relation() +
                    "):\n";
  for (const Alternative& alt : alternatives_) {
    out += "  " + alt.mapping.ToString() + "  Pr=" +
           FormatDouble(alt.probability) + "\n";
  }
  return out;
}

Result<SchemaPMapping> SchemaPMapping::Make(std::vector<PMapping> mappings) {
  for (size_t i = 0; i < mappings.size(); ++i) {
    if (mappings[i].size() == 0) {
      return Status::InvalidArgument("empty p-mapping at index " +
                                     std::to_string(i));
    }
    for (size_t j = 0; j < i; ++j) {
      if (EqualsIgnoreCase(mappings[i].source_relation(),
                           mappings[j].source_relation())) {
        return Status::InvalidArgument("source relation '" +
                                       mappings[i].source_relation() +
                                       "' appears in two p-mappings");
      }
      if (EqualsIgnoreCase(mappings[i].target_relation(),
                           mappings[j].target_relation())) {
        return Status::InvalidArgument("target relation '" +
                                       mappings[i].target_relation() +
                                       "' appears in two p-mappings");
      }
    }
  }
  SchemaPMapping spm;
  spm.mappings_ = std::move(mappings);
  return spm;
}

Result<const PMapping*> SchemaPMapping::ForTargetRelation(
    std::string_view relation) const {
  for (const PMapping& pm : mappings_) {
    if (EqualsIgnoreCase(pm.target_relation(), relation)) return &pm;
  }
  return Status::NotFound("no p-mapping targets relation '" +
                          std::string(relation) + "'");
}

Result<const PMapping*> SchemaPMapping::ForSourceRelation(
    std::string_view relation) const {
  for (const PMapping& pm : mappings_) {
    if (EqualsIgnoreCase(pm.source_relation(), relation)) return &pm;
  }
  return Status::NotFound("no p-mapping sources relation '" +
                          std::string(relation) + "'");
}

}  // namespace aqua
