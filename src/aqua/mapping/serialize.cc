#include "aqua/mapping/serialize.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "aqua/common/failpoint.h"
#include "aqua/common/string_util.h"

namespace aqua {
namespace {

std::string FormatCandidate(const RelationMapping& m, double prob) {
  std::string out = "candidate " + FormatDouble(prob) + ":";
  bool first = true;
  for (const Correspondence& c : m.correspondences()) {
    out += first ? " " : ", ";
    out += c.source + " -> " + c.target;
    first = false;
  }
  out += "\n";
  return out;
}

struct Block {
  std::string source;
  std::string target;
  std::vector<PMapping::Alternative> alternatives;
};

Result<double> ParseProbability(std::string_view text) {
  try {
    size_t used = 0;
    const double v = std::stod(std::string(text), &used);
    if (used != text.size()) {
      return Status::InvalidArgument("bad probability '" + std::string(text) +
                                     "'");
    }
    return v;
  } catch (...) {
    return Status::InvalidArgument("bad probability '" + std::string(text) +
                                   "'");
  }
}

Result<std::vector<Block>> ParseBlocks(std::string_view text) {
  AQUA_FAILPOINT("mapping/serialize/parse");
  std::vector<Block> blocks;
  size_t line_no = 0;
  for (std::string_view raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw);
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = Trim(line.substr(0, hash));
    if (line.empty()) continue;

    auto err = [&](const std::string& message) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": " + message);
    };

    if (StartsWith(std::string(ToLower(line)), "pmapping")) {
      std::string_view rest = Trim(line.substr(8));
      const size_t arrow = rest.find("=>");
      if (arrow == std::string_view::npos) {
        return err("expected 'pmapping <source> => <target>'");
      }
      Block block;
      block.source = std::string(Trim(rest.substr(0, arrow)));
      block.target = std::string(Trim(rest.substr(arrow + 2)));
      if (block.source.empty() || block.target.empty()) {
        return err("empty relation name in pmapping header");
      }
      blocks.push_back(std::move(block));
      continue;
    }

    if (StartsWith(std::string(ToLower(line)), "candidate")) {
      if (blocks.empty()) {
        return err("'candidate' before any 'pmapping' header");
      }
      std::string_view rest = Trim(line.substr(9));
      const size_t colon = rest.find(':');
      if (colon == std::string_view::npos) {
        return err("expected 'candidate <prob>: s -> t, ...'");
      }
      AQUA_ASSIGN_OR_RETURN(double prob,
                            ParseProbability(Trim(rest.substr(0, colon))));
      std::vector<Correspondence> corr;
      const std::string_view list = Trim(rest.substr(colon + 1));
      if (!list.empty()) {
        for (std::string_view item : Split(list, ',')) {
          const size_t arrow = item.find("->");
          if (arrow == std::string_view::npos) {
            return err("expected 'source -> target' in correspondence list");
          }
          Correspondence c;
          c.source = std::string(Trim(item.substr(0, arrow)));
          c.target = std::string(Trim(item.substr(arrow + 2)));
          if (c.source.empty() || c.target.empty()) {
            return err("empty attribute name in correspondence");
          }
          corr.push_back(std::move(c));
        }
      }
      Block& block = blocks.back();
      auto mapping =
          RelationMapping::Make(block.source, block.target, std::move(corr));
      if (!mapping.ok()) return err(mapping.status().message());
      block.alternatives.push_back(
          PMapping::Alternative{std::move(mapping).value(), prob});
      continue;
    }

    return err("unrecognised statement '" + std::string(line) + "'");
  }
  if (blocks.empty()) {
    return Status::InvalidArgument("no pmapping block found");
  }
  return blocks;
}

Result<PMapping> BlockToPMapping(Block block) {
  if (block.alternatives.empty()) {
    return Status::InvalidArgument("pmapping " + block.source + " => " +
                                   block.target + " has no candidates");
  }
  return PMapping::Make(std::move(block.alternatives));
}

}  // namespace

std::string PMappingText::Format(const PMapping& pmapping) {
  std::string out = "pmapping " + pmapping.source_relation() + " => " +
                    pmapping.target_relation() + "\n";
  for (const PMapping::Alternative& alt : pmapping.alternatives()) {
    out += FormatCandidate(alt.mapping, alt.probability);
  }
  return out;
}

std::string PMappingText::FormatSchema(const SchemaPMapping& mapping) {
  std::string out;
  for (size_t i = 0; i < mapping.size(); ++i) {
    out += Format(mapping.mapping(i));
  }
  return out;
}

Result<PMapping> PMappingText::Parse(std::string_view text) {
  AQUA_ASSIGN_OR_RETURN(std::vector<Block> blocks, ParseBlocks(text));
  if (blocks.size() != 1) {
    return Status::InvalidArgument("expected exactly one pmapping block, got " +
                                   std::to_string(blocks.size()));
  }
  return BlockToPMapping(std::move(blocks[0]));
}

Result<SchemaPMapping> PMappingText::ParseSchema(std::string_view text) {
  AQUA_ASSIGN_OR_RETURN(std::vector<Block> blocks, ParseBlocks(text));
  std::vector<PMapping> mappings;
  mappings.reserve(blocks.size());
  for (Block& block : blocks) {
    AQUA_ASSIGN_OR_RETURN(PMapping pm, BlockToPMapping(std::move(block)));
    mappings.push_back(std::move(pm));
  }
  return SchemaPMapping::Make(std::move(mappings));
}

Result<SchemaPMapping> PMappingText::ReadSchemaFile(
    const std::string& path, const fault::RetryPolicy& retry) {
  Result<std::string> text = fault::WithRetry(
      retry, "pmapping-read", [&]() -> Result<std::string> {
        // Partial poll first: Evaluate() behind AQUA_FAILPOINT consumes
        // the spec's trigger, so a `once*partial` polled after it would
        // never fire. InjectPartial checks the action kind before
        // consuming, leaving error/delay specs untouched.
        const bool torn = fault::InjectPartial("mapping/serialize/read-file");
        AQUA_FAILPOINT("mapping/serialize/read-file");
        std::ifstream in(path, std::ios::binary);
        if (!in) return Status::NotFound("cannot open '" + path + "'");
        std::ostringstream buf;
        buf << in.rdbuf();
        if (torn) {
          // Same torn-read model as Csv::ReadFile: the short read is
          // detected and retried, never parsed as if complete.
          return Status::Unavailable("short read of '" + path +
                                     "' (injected partial result)");
        }
        return buf.str();
      });
  AQUA_RETURN_NOT_OK(text.status());
  return ParseSchema(*text);
}

Status PMappingText::WriteSchemaFile(const SchemaPMapping& mapping,
                                     const std::string& path,
                                     const fault::RetryPolicy& retry) {
  const std::string text = FormatSchema(mapping);
  return fault::WithRetry(retry, "pmapping-write", [&]() -> Status {
    AQUA_FAILPOINT("mapping/serialize/write-file");
    std::ofstream out(path, std::ios::binary);
    if (!out) return Status::InvalidArgument("cannot open '" + path +
                                             "' for writing");
    out << text;
    if (!out) return Status::Internal("write to '" + path + "' failed");
    return Status::OK();
  });
}

}  // namespace aqua
