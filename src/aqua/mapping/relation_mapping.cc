#include "aqua/mapping/relation_mapping.h"

#include <algorithm>

#include "aqua/common/string_util.h"

namespace aqua {

Result<RelationMapping> RelationMapping::Make(
    std::string source_relation, std::string target_relation,
    std::vector<Correspondence> correspondences) {
  if (source_relation.empty() || target_relation.empty()) {
    return Status::InvalidArgument("relation names must be non-empty");
  }
  for (const Correspondence& c : correspondences) {
    if (c.source.empty() || c.target.empty()) {
      return Status::InvalidArgument(
          "correspondence with empty attribute name");
    }
  }
  // One-to-one: no source and no target attribute appears twice.
  for (size_t i = 0; i < correspondences.size(); ++i) {
    for (size_t j = i + 1; j < correspondences.size(); ++j) {
      if (EqualsIgnoreCase(correspondences[i].source,
                           correspondences[j].source)) {
        return Status::InvalidArgument("source attribute '" +
                                       correspondences[i].source +
                                       "' mapped more than once");
      }
      if (EqualsIgnoreCase(correspondences[i].target,
                           correspondences[j].target)) {
        return Status::InvalidArgument("target attribute '" +
                                       correspondences[i].target +
                                       "' mapped more than once");
      }
    }
  }
  std::sort(correspondences.begin(), correspondences.end());
  RelationMapping m;
  m.source_relation_ = std::move(source_relation);
  m.target_relation_ = std::move(target_relation);
  m.correspondences_ = std::move(correspondences);
  return m;
}

Result<std::string> RelationMapping::SourceFor(
    std::string_view target) const {
  for (const Correspondence& c : correspondences_) {
    if (EqualsIgnoreCase(c.target, target)) return c.source;
  }
  return Status::NotFound("target attribute '" + std::string(target) +
                          "' has no correspondence under this mapping");
}

Result<std::string> RelationMapping::TargetFor(
    std::string_view source) const {
  for (const Correspondence& c : correspondences_) {
    if (EqualsIgnoreCase(c.source, source)) return c.target;
  }
  return Status::NotFound("source attribute '" + std::string(source) +
                          "' has no correspondence under this mapping");
}

std::string RelationMapping::ToString() const {
  std::string out = source_relation_ + "=>" + target_relation_ + "{";
  for (size_t i = 0; i < correspondences_.size(); ++i) {
    if (i > 0) out += ", ";
    out += correspondences_[i].source + "->" + correspondences_[i].target;
  }
  out += "}";
  return out;
}

}  // namespace aqua
