#ifndef AQUA_MAPPING_CORRESPONDENCE_H_
#define AQUA_MAPPING_CORRESPONDENCE_H_

#include <string>

namespace aqua {

/// An attribute correspondence c = (s, t): source attribute `s` maps to
/// target attribute `t` (Definition 1 in the paper).
struct Correspondence {
  std::string source;
  std::string target;

  friend bool operator==(const Correspondence&,
                         const Correspondence&) = default;
  friend auto operator<=>(const Correspondence&,
                          const Correspondence&) = default;
};

}  // namespace aqua

#endif  // AQUA_MAPPING_CORRESPONDENCE_H_
