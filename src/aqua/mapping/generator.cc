#include "aqua/mapping/generator.h"

#include <algorithm>

namespace aqua {

Result<PMapping> GenerateRandomPMapping(const MappingGeneratorOptions& options,
                                        Rng& rng) {
  if (options.num_mappings == 0) {
    return Status::InvalidArgument("num_mappings must be positive");
  }
  if (options.candidate_sources.size() < options.num_mappings) {
    return Status::InvalidArgument(
        "need at least " + std::to_string(options.num_mappings) +
        " candidate source attributes, got " +
        std::to_string(options.candidate_sources.size()));
  }
  if (options.target_attribute.empty()) {
    return Status::InvalidArgument("target_attribute must be non-empty");
  }

  // Partial Fisher–Yates: pick num_mappings distinct candidates.
  std::vector<std::string> pool = options.candidate_sources;
  for (size_t i = 0; i < options.num_mappings; ++i) {
    const size_t j = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(i),
                       static_cast<int64_t>(pool.size()) - 1));
    std::swap(pool[i], pool[j]);
  }

  std::vector<double> probs;
  if (options.uniform_probabilities) {
    probs.assign(options.num_mappings,
                 1.0 / static_cast<double>(options.num_mappings));
  } else {
    probs = rng.RandomProbabilities(options.num_mappings);
  }

  std::vector<PMapping::Alternative> alternatives;
  alternatives.reserve(options.num_mappings);
  for (size_t i = 0; i < options.num_mappings; ++i) {
    std::vector<Correspondence> corr = options.certain;
    corr.push_back(Correspondence{pool[i], options.target_attribute});
    AQUA_ASSIGN_OR_RETURN(
        RelationMapping m,
        RelationMapping::Make(options.source_relation,
                              options.target_relation, std::move(corr)));
    alternatives.push_back(PMapping::Alternative{std::move(m), probs[i]});
  }
  return PMapping::Make(std::move(alternatives));
}

}  // namespace aqua
