#ifndef AQUA_MAPPING_P_MAPPING_H_
#define AQUA_MAPPING_P_MAPPING_H_

#include <string>
#include <vector>

#include "aqua/common/check.h"
#include "aqua/common/result.h"
#include "aqua/mapping/relation_mapping.h"

namespace aqua {

/// A probabilistic mapping pM = (S, T, {(m_1, Pr(m_1)), ..., (m_l, Pr(m_l))})
/// between one source and one target relation (Definition 2):
/// the m_i are pairwise distinct one-to-one relation mappings between the
/// same pair of relations, probabilities lie in [0, 1] and sum to 1.
class PMapping {
 public:
  /// One candidate mapping with its probability of being the correct one.
  struct Alternative {
    RelationMapping mapping;
    double probability;
  };

  PMapping() = default;

  /// Validates Definition 2; `eps` is the tolerance on the sum-to-one
  /// check (probabilities typically come from matcher scores that were
  /// normalised in floating point).
  static Result<PMapping> Make(std::vector<Alternative> alternatives,
                               double eps = 1e-9);

  /// Number of candidate mappings l.
  size_t size() const { return alternatives_.size(); }

  const RelationMapping& mapping(size_t i) const {
    AQUA_DCHECK(i < alternatives_.size()) << "candidate index " << i;
    return alternatives_[i].mapping;
  }
  double probability(size_t i) const {
    AQUA_DCHECK(i < alternatives_.size()) << "candidate index " << i;
    return alternatives_[i].probability;
  }
  const std::vector<Alternative>& alternatives() const {
    return alternatives_;
  }

  /// The probabilities as a dense vector, index-aligned with `mapping(i)`.
  std::vector<double> probabilities() const;

  const std::string& source_relation() const {
    return alternatives_.front().mapping.source_relation();
  }
  const std::string& target_relation() const {
    return alternatives_.front().mapping.target_relation();
  }

  /// True iff target attribute `target` resolves to the same source
  /// attribute under every alternative — i.e. the attribute is *certain*
  /// despite the mapping uncertainty. The by-tuple grouped algorithms
  /// require the GROUP BY attribute to be certain.
  bool IsCertainTarget(std::string_view target) const;

  /// Multi-line rendering with probabilities.
  std::string ToString() const;

  /// Re-checks Definition 2 on an already-constructed p-mapping (every
  /// probability in [0, 1], masses summing to 1) and aborts via AQUA_CHECK
  /// on violation. `Make` is the only sanctioned constructor, so a failure
  /// here means the object was corrupted *after* validation — the
  /// algorithms call this behind `ParanoidChecksEnabled()` before trusting
  /// the probabilities in their DP recurrences.
  void CheckInvariants() const;

  /// Bypasses `Make`'s validation; exists solely so tests (and fuzz
  /// harnesses) can manufacture a corrupt p-mapping and verify the
  /// paranoid checks catch it. Never call outside tests.
  static PMapping MakeUnsafeForTest(std::vector<Alternative> alternatives) {
    PMapping pm;
    pm.alternatives_ = std::move(alternatives);
    return pm;
  }

 private:
  std::vector<Alternative> alternatives_;
};

/// A schema p-mapping: a set of p-mappings in which every source and every
/// target relation appears at most once (Definition 2, second part). This
/// is the object a mediator holds for a whole source.
class SchemaPMapping {
 public:
  SchemaPMapping() = default;

  static Result<SchemaPMapping> Make(std::vector<PMapping> mappings);

  size_t size() const { return mappings_.size(); }
  const PMapping& mapping(size_t i) const { return mappings_[i]; }

  /// The p-mapping whose target relation is `relation`, or kNotFound.
  Result<const PMapping*> ForTargetRelation(std::string_view relation) const;

  /// The p-mapping whose source relation is `relation`, or kNotFound.
  Result<const PMapping*> ForSourceRelation(std::string_view relation) const;

 private:
  std::vector<PMapping> mappings_;
};

}  // namespace aqua

#endif  // AQUA_MAPPING_P_MAPPING_H_
