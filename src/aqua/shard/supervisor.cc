#include "aqua/shard/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "aqua/common/check.h"
#include "aqua/common/failpoint.h"
#include "aqua/common/status.h"
#include "aqua/exec/parallel.h"
#include "aqua/obs/metrics.h"

namespace aqua::shard {
namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

obs::Counter RunsCounter(const char* outcome) {
  return obs::MetricsRegistry::Default().GetCounter(
      "aqua_shard_runs_total", {{"outcome", outcome}});
}

obs::Counter& HedgesCounter() {
  static obs::Counter* counter = new obs::Counter(
      obs::MetricsRegistry::Default().GetCounter("aqua_shard_hedges_total"));
  return *counter;
}

obs::Counter& HedgeShedCounter() {
  static obs::Counter* counter =
      new obs::Counter(obs::MetricsRegistry::Default().GetCounter(
          "aqua_shard_hedge_shed_total"));
  return *counter;
}

obs::Counter& SpawnFallbackCounter() {
  static obs::Counter* counter =
      new obs::Counter(obs::MetricsRegistry::Default().GetCounter(
          "aqua_shard_spawn_fallback_total"));
  return *counter;
}

obs::Counter& WastedStepsCounter() {
  static obs::Counter* counter =
      new obs::Counter(obs::MetricsRegistry::Default().GetCounter(
          "aqua_shard_hedge_wasted_steps_total"));
  return *counter;
}

/// A shard failure eligible for local degradation to sampling. A
/// cancellation is the caller's own deadline/abort propagating down; an
/// invalid-argument or unimplemented failure would reproduce identically
/// under the sampler, so degrading only hides the bug.
bool DegradableShardFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kCancelled:
    case StatusCode::kInvalidArgument:
    case StatusCode::kUnimplemented:
      return false;
    default:
      return true;
  }
}

/// Per-shard commit cell. `tokens` holds one cancellation token per
/// attempt so the committing attempt can cancel every rival.
struct Slot {
  bool committed = false;
  Status status;
  merge::ShardPartial partial;
  /// The committing attempt's context; the only one absorbed into the
  /// parent (the absorb-once invariant).
  ExecContext winner_ctx;
  bool degraded = false;
  bool hedged = false;
  /// A hedge for this shard was refused by the pool; stop trying.
  bool hedge_blocked = false;
  int attempts = 0;
  Clock::time_point started;
  std::vector<CancellationToken> tokens;
};

/// Everything a late-scheduled attempt may still touch after the
/// coordinator moved on lives here behind a shared_ptr, mirroring the
/// parallel runtime's Region. The caller-frame pointers (`job`,
/// `shard_rows`, ...) are dereferenced only while the attempt's shard is
/// uncommitted, which can only be true while the coordinator is still
/// blocked in Run (an uncommitted shard keeps it waiting); a straggler
/// that wakes after its shard was hedged to completion takes the
/// superseded exit having touched nothing but this heap region.
struct Region {
  explicit Region(size_t n) : slots(n) {}

  std::mutex mu;
  std::condition_variable cv;
  std::vector<Slot> slots;
  size_t committed_count = 0;
  /// Attempts currently inside the job (between claim and commit). The
  /// coordinator's final join waits for this to reach zero; an attempt
  /// still asleep in an injected delay has not claimed and never will
  /// once its shard is committed.
  int running = 0;
  uint64_t wasted_steps = 0;
  uint64_t hedges = 0;
  uint64_t hedges_shed = 0;
  uint64_t spawn_fallbacks = 0;
  /// Commit wall-clock latencies in commit order (ascending), the basis
  /// of the hedge quantile threshold.
  std::vector<double> commit_latency_us;
  Clock::time_point start;

  // Caller-frame state, valid while the coordinator blocks in Run.
  const ShardJob* job = nullptr;
  const ShardJob* fallback = nullptr;
  const std::vector<std::vector<uint32_t>>* shard_rows = nullptr;
  const std::vector<BudgetShare>* shares = nullptr;
  const ExecContext* parent = nullptr;
};

/// One attempt (primary or hedge) at one shard. Safe to run at any time,
/// including long after its shard was committed by a rival attempt.
void RunAttempt(const std::shared_ptr<Region>& region, size_t s,
                int attempt) {
  // Poll the partial injection before the error/delay evaluation:
  // Evaluate() consumes the spec's trigger (a `once*partial` would
  // otherwise be spent returning OK and the poll below would see a dead
  // trigger). InjectPartial checks the action kind before consuming, so
  // non-partial specs pass through untouched.
  const bool torn_injected = fault::InjectPartial("shard/run");
  // Evaluate the failpoint before touching anything else: a delay spec
  // sleeps right here, and by wake-up the shard may have been committed
  // by a hedge — in which case the superseded exit below touches only
  // the heap region, never the caller's stack.
  const Status injected = AQUA_FAILPOINT_STATUS("shard/run");

  CancellationToken token;
  {
    std::lock_guard<std::mutex> lock(region->mu);
    Slot& slot = region->slots[s];
    if (slot.committed) {
      RunsCounter("superseded").Increment();
      return;
    }
    ++region->running;
    token = slot.tokens[attempt];
  }

  const std::vector<uint32_t>& rows = (*region->shard_rows)[s];
  ExecContext ctx =
      region->parent == nullptr
          ? ExecContext(ExecLimits{}, token)
          : region->parent->Child((*region->shares)[s], token);

  Status status = injected;
  merge::ShardPartial partial;
  bool degraded = false;
  if (status.ok()) {
    // Torn-partial injection: run the job over a prefix of the shard, as
    // a shard dying mid-scan would. The coverage check below must turn
    // this into a detected failure, never a silently short answer.
    const std::vector<uint32_t>* run_rows = &rows;
    std::vector<uint32_t> prefix;
    if (torn_injected && rows.size() > 1) {
      prefix.assign(rows.begin(),
                    rows.begin() + static_cast<long>(rows.size() / 2));
      run_rows = &prefix;
    }
    Result<merge::ShardPartial> result = (*region->job)(s, *run_rows, &ctx);
    if (!result.ok()) {
      status = result.status();
    } else {
      partial = std::move(result).value();
      if (partial.rows_covered != rows.size()) {
        status = Status::Internal(
            "torn shard partial: shard " + std::to_string(s) + " covered " +
            std::to_string(partial.rows_covered) + " of " +
            std::to_string(rows.size()) + " rows");
      }
    }
  }

  // Shard-local degradation: the shard's slice of the answer goes
  // approximate while every other shard stays exact. The fallback runs
  // under a fresh child of the same budget share — like the global
  // degrade ladder, a failing-then-degrading shard may account up to
  // twice its slice, bounded and deliberate.
  if (!status.ok() && region->fallback != nullptr &&
      DegradableShardFailure(status) && !token.cancellation_requested()) {
    ExecContext fctx =
        region->parent == nullptr
            ? ExecContext(ExecLimits{}, token)
            : region->parent->Child((*region->shares)[s], token);
    Result<merge::ShardPartial> result = (*region->fallback)(s, rows, &fctx);
    if (result.ok()) {
      partial = std::move(result).value();
      ctx.Absorb(fctx);
      degraded = true;
      status = Status::OK();
    }
    // Fallback failure keeps the (more informative) primary status.
  }

  std::lock_guard<std::mutex> lock(region->mu);
  --region->running;
  Slot& slot = region->slots[s];
  if (slot.committed) {
    // Lost the race to a rival attempt: the work is waste, and crucially
    // this context is NOT absorbed — the absorb-once invariant.
    region->wasted_steps += ctx.steps();
    RunsCounter("lost").Increment();
    region->cv.notify_all();
    return;
  }
  slot.committed = true;
  slot.status = std::move(status);
  slot.partial = std::move(partial);
  slot.winner_ctx = ctx;
  slot.degraded = degraded;
  ++region->committed_count;
  region->commit_latency_us.push_back(MicrosSince(region->start));
  obs::MetricsRegistry::Default()
      .GetHistogram("aqua_shard_latency_us")
      .Observe(MicrosSince(slot.started));
  // First result wins: every rival attempt at this shard is cancelled.
  for (size_t a = 0; a < slot.tokens.size(); ++a) {
    if (a != static_cast<size_t>(attempt)) slot.tokens[a].RequestCancel();
  }
  RunsCounter(slot.status.ok() ? (degraded ? "degraded" : "ok") : "error")
      .Increment();
  region->cv.notify_all();
}

/// Lowest-index non-cancelled committed failure; cancellation only wins
/// when nothing failed for a deeper reason (same contract as the parallel
/// runtime's PickStatus).
Status PickStatus(const std::vector<Slot>& slots) {
  const Status* cancelled = nullptr;
  for (const Slot& slot : slots) {
    if (!slot.committed || slot.status.ok()) continue;
    if (slot.status.code() != StatusCode::kCancelled) return slot.status;
    if (cancelled == nullptr) cancelled = &slot.status;
  }
  return cancelled == nullptr ? Status::OK() : *cancelled;
}

}  // namespace

std::vector<std::vector<uint32_t>> Supervisor::PlanShards(size_t num_rows,
                                                          int shards) {
  const size_t n = std::max<size_t>(
      1, std::min<size_t>(static_cast<size_t>(std::max(shards, 1)),
                          num_rows == 0 ? 1 : num_rows));
  const size_t base = num_rows / n;
  const size_t remainder = num_rows % n;
  std::vector<std::vector<uint32_t>> plan(n);
  uint32_t next = 0;
  for (size_t s = 0; s < n; ++s) {
    const size_t size = base + (s < remainder ? 1 : 0);
    plan[s].reserve(size);
    for (size_t i = 0; i < size; ++i) plan[s].push_back(next++);
  }
  return plan;
}

Result<std::vector<ShardOutcome>> Supervisor::Run(
    const std::vector<std::vector<uint32_t>>& shard_rows, ExecContext* parent,
    const ShardJob& job, const ShardJob* fallback,
    SupervisorReport* report) const {
  const size_t num_shards = shard_rows.size();
  if (num_shards == 0) return std::vector<ShardOutcome>{};
  AQUA_RETURN_NOT_OK(ExecCheckNow(parent));

  auto region = std::make_shared<Region>(num_shards);
  region->start = Clock::now();
  region->job = &job;
  region->fallback = fallback;
  region->shard_rows = &shard_rows;
  region->parent = parent;

  std::vector<uint64_t> weights;
  weights.reserve(num_shards);
  for (const std::vector<uint32_t>& rows : shard_rows) {
    weights.push_back(rows.size());
  }
  std::vector<BudgetShare> shares;
  if (parent != nullptr) shares = parent->SplitRemaining(weights);
  region->shares = &shares;

  const CancellationToken parent_token =
      parent == nullptr ? CancellationToken() : parent->cancel_token();

  obs::Gauge inflight =
      obs::MetricsRegistry::Default().GetGauge("aqua_shard_inflight");
  inflight.Increment(static_cast<int64_t>(num_shards));

  const int resolved =
      exec::ExecPolicy{options_.threads, options_.pool}.ResolvedThreads();
  if (resolved <= 1 || num_shards == 1) {
    // Serial path: identical shard plan and budget shares, executed in
    // shard order on the calling thread with early exit on the first
    // failed commit. No hedging — there is nobody to hedge onto.
    for (size_t s = 0; s < num_shards; ++s) {
      {
        std::lock_guard<std::mutex> lock(region->mu);
        region->slots[s].tokens.push_back(
            CancellationToken::MakeLinked(parent_token));
        region->slots[s].attempts = 1;
        region->slots[s].started = Clock::now();
      }
      RunAttempt(region, s, 0);
      if (!region->slots[s].status.ok()) break;
    }
  } else {
    exec::ThreadPool& pool =
        options_.pool == nullptr ? exec::ThreadPool::Shared() : *options_.pool;
    for (size_t s = 0; s < num_shards; ++s) {
      {
        std::lock_guard<std::mutex> lock(region->mu);
        region->slots[s].tokens.push_back(
            CancellationToken::MakeLinked(parent_token));
        region->slots[s].attempts = 1;
        region->slots[s].started = Clock::now();
      }
      const Status injected = AQUA_FAILPOINT_STATUS("shard/spawn");
      bool enqueued = false;
      if (injected.ok()) {
        enqueued = pool.Submit([region, s] { RunAttempt(region, s, 0); });
      }
      if (!enqueued) {
        // The pool cannot take the primary (spawn failure, possibly
        // injected, or queue cap): run it inline. The shard still runs
        // under its own child context, so results and accounting are
        // byte-identical to the pooled path.
        SpawnFallbackCounter().Increment();
        {
          std::lock_guard<std::mutex> lock(region->mu);
          ++region->spawn_fallbacks;
        }
        RunAttempt(region, s, 0);
      }
    }

    const size_t needed = std::min(
        num_shards,
        std::max<size_t>(1, static_cast<size_t>(std::ceil(
                                options_.hedge.quantile *
                                static_cast<double>(num_shards)))));
    std::unique_lock<std::mutex> lock(region->mu);
    Clock::time_point last_progress = Clock::now();
    size_t last_committed = region->committed_count;
    while (region->committed_count < num_shards) {
      region->cv.wait_for(lock, std::chrono::milliseconds(5));
      if (region->committed_count != last_committed) {
        last_committed = region->committed_count;
        last_progress = Clock::now();
      }

      if (region->committed_count < num_shards) {
        // With `needed` commits in hand the threshold scales the observed
        // quantile latency; before any commit lands there is nothing to
        // scale, so the min-wait floor alone decides — without this a
        // fault that stalls every early attempt (a one-worker pool whose
        // head-of-line task is stuck) would disable hedging entirely.
        const double threshold_us =
            region->committed_count >= needed
                ? std::max(
                      static_cast<double>(options_.hedge.min_wait_ms) * 1000.0,
                      options_.hedge.latency_factor *
                          region->commit_latency_us[needed - 1])
                : static_cast<double>(options_.hedge.min_wait_ms) * 1000.0;
        for (size_t s = 0; s < num_shards; ++s) {
          Slot& slot = region->slots[s];
          if (slot.committed || slot.hedge_blocked) continue;
          if (slot.attempts - 1 >= options_.hedge.max_hedges) continue;
          // Each extra attempt raises the bar: attempt k hedges only
          // after k thresholds of elapsed time.
          if (MicrosSince(slot.started) <=
              static_cast<double>(slot.attempts) * threshold_us) {
            continue;
          }
          const int attempt = slot.attempts;
          slot.tokens.push_back(CancellationToken::MakeLinked(parent_token));
          ++slot.attempts;
          // When no attempt is actually executing (`running` counts
          // claimed attempts, not queued ones), every queued task is
          // stuck — asleep in an injected delay or behind one on a
          // one-worker pool — and enqueueing the hedge behind them helps
          // nobody. The coordinator is idle anyway: run the hedge on this
          // thread. Otherwise dispatch to the pool as usual.
          const bool run_inline = region->running == 0;
          // Failpoint and dispatch run with the region unlocked: a delay
          // spec at shard/hedge must stall only the coordinator, never
          // an attempt trying to commit.
          lock.unlock();
          const Status hedge_injected = AQUA_FAILPOINT_STATUS("shard/hedge");
          bool hedge_enqueued = false;
          if (hedge_injected.ok()) {
            if (run_inline) {
              RunAttempt(region, s, attempt);
              hedge_enqueued = true;
            } else {
              hedge_enqueued = pool.Submit([region, s, attempt] {
                RunAttempt(region, s, attempt);
              });
            }
          }
          lock.lock();
          if (hedge_enqueued) {
            slot.hedged = true;
            ++region->hedges;
            HedgesCounter().Increment();
          } else {
            // The hedge was shed (queue cap, spawn failure, or injected
            // refusal). The primary attempt is still in flight, so the
            // query is unaffected — this is load shedding, not an error.
            slot.hedge_blocked = true;
            ++region->hedges_shed;
            HedgeShedCounter().Increment();
          }
        }
      }

      // Liveness fallback: every queued attempt may be stuck behind other
      // work on a shared pool (or the pool's workers may all be busy
      // serving the queries that queued us). If nothing is running and
      // nothing has committed for stall_ms, drain the remaining shards on
      // this thread; late-scheduled duplicates take the superseded exit.
      if (region->running == 0 && region->committed_count < num_shards &&
          MicrosSince(last_progress) >
              static_cast<double>(options_.stall_ms) * 1000.0) {
        std::vector<size_t> remaining;
        for (size_t s = 0; s < num_shards; ++s) {
          if (!region->slots[s].committed) remaining.push_back(s);
        }
        lock.unlock();
        for (size_t s : remaining) RunAttempt(region, s, 0);
        lock.lock();
        last_progress = Clock::now();
      }
    }
    // Join every attempt that entered the job; losers were cancelled at
    // commit time and drain fast. Attempts still asleep in an injected
    // delay never claimed (`running` excludes them) and will exit through
    // the superseded path on their own.
    region->cv.wait(lock, [&] { return region->running == 0; });
  }

  inflight.Increment(-static_cast<int64_t>(num_shards));

  // Absorb exactly one context per committed shard — the winner's. The
  // parent's counter must move by exactly the sum of winners' steps: any
  // deviation means an attempt double-charged or leaked, i.e. budget
  // split-brain, and that is corruption worth dying over.
  const uint64_t steps_before = parent == nullptr ? 0 : parent->steps();
  uint64_t winner_steps = 0;
  for (const Slot& slot : region->slots) {
    if (!slot.committed) continue;
    if (parent != nullptr) {
      parent->Absorb(slot.winner_ctx);
      winner_steps += slot.winner_ctx.steps();
    }
  }
  if (parent != nullptr) {
    AQUA_CHECK(parent->steps() == steps_before + winner_steps)
        << "shard budget split-brain: parent moved "
        << (parent->steps() - steps_before) << " steps, winners total "
        << winner_steps;
  }
  WastedStepsCounter().Increment(region->wasted_steps);

  if (report != nullptr) {
    report->shards = num_shards;
    report->hedges_shed = region->hedges_shed;
    report->spawn_fallbacks = region->spawn_fallbacks;
    for (const Slot& slot : region->slots) {
      if (slot.committed && slot.degraded) ++report->degraded;
      if (slot.hedged) ++report->hedged;
    }
  }

  AQUA_RETURN_NOT_OK(PickStatus(region->slots));

  std::vector<ShardOutcome> outcomes;
  outcomes.reserve(num_shards);
  for (Slot& slot : region->slots) {
    AQUA_CHECK(slot.committed) << "shard supervisor returned OK with an "
                                  "uncommitted shard";
    ShardOutcome outcome;
    outcome.partial = std::move(slot.partial);
    outcome.degraded = slot.degraded;
    outcome.hedged = slot.hedged;
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace aqua::shard
