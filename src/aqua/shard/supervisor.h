#ifndef AQUA_SHARD_SUPERVISOR_H_
#define AQUA_SHARD_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "aqua/common/exec_context.h"
#include "aqua/common/result.h"
#include "aqua/core/merge.h"
#include "aqua/exec/thread_pool.h"

namespace aqua::shard {

/// When and how aggressively the supervisor re-issues straggler shards.
///
/// The policy is quantile-based (the "hedged requests" pattern): once
/// `quantile` of the shards have committed, any shard still running after
/// `latency_factor` times the observed commit latency at that quantile
/// (but at least `min_wait_ms`) gets a duplicate attempt submitted to the
/// pool. First result wins; the loser is cancelled and its work counted
/// as waste, never double-charged.
struct HedgePolicy {
  /// Fraction of shards that must commit before hedging starts.
  double quantile = 0.5;
  /// A shard is a straggler once its elapsed time exceeds this multiple
  /// of the quantile commit latency.
  double latency_factor = 2.0;
  /// Floor on the straggler threshold, so microsecond-scale shards do not
  /// hedge on scheduling noise.
  int64_t min_wait_ms = 20;
  /// Maximum duplicate attempts per shard (on top of the primary).
  int max_hedges = 2;
};

struct SupervisorOptions {
  /// Number of fault domains (>= 1). The caller partitions rows with
  /// `PlanShards` and must pass one row set per shard.
  int shards = 1;
  /// Worker threads to aim for; <= 1 selects the serial in-process path
  /// (identical results, no hedging). 0 means hardware concurrency.
  int threads = 1;
  /// Pool to run attempts on; null = ThreadPool::Shared().
  exec::ThreadPool* pool = nullptr;
  HedgePolicy hedge;
  /// Liveness fallback: if no attempt is running and nothing has
  /// committed for this long, the coordinator runs the remaining shards
  /// inline (covers pools whose workers are all busy elsewhere).
  int64_t stall_ms = 100;
};

/// The work one shard performs: produce a partial answer for `rows`
/// charging against `ctx`. Must be deterministic in (shard, rows) — a
/// hedged duplicate must produce byte-identical results.
using ShardJob = std::function<Result<merge::ShardPartial>(
    size_t shard, const std::vector<uint32_t>& rows, ExecContext* ctx)>;

/// One shard's committed outcome.
struct ShardOutcome {
  merge::ShardPartial partial;
  /// The fallback (sampling) path produced this partial.
  bool degraded = false;
  /// A duplicate attempt was issued for this shard (whether or not it won).
  bool hedged = false;
};

/// Aggregate facts about one supervised run, surfaced into QueryStats.
struct SupervisorReport {
  uint64_t shards = 0;
  uint64_t degraded = 0;
  uint64_t hedged = 0;
  uint64_t hedges_shed = 0;
  uint64_t spawn_fallbacks = 0;
};

/// Runs `job` once per shard across in-process fault domains and collects
/// the partials, enforcing the robustness contract:
///
///   - every shard runs under a child ExecContext carved from `parent`
///     with `SplitRemaining` (row-count weights), sharing the absolute
///     deadline;
///   - stragglers are hedged per `options.hedge`; first result wins and
///     the loser is cancelled. A hedge the pool refuses (queue cap or
///     spawn failure) is shed — counted, never an error;
///   - a shard whose primary attempt fails with a degradable status runs
///     `fallback` (if non-null) in its place and commits flagged
///     `degraded`; non-degradable failures (cancellation, invalid
///     arguments) fail the whole run;
///   - exactly one attempt per shard is absorbed into `parent`
///     (AQUA_CHECK-enforced), so hedging can never double-charge the
///     budget: the losing attempt's steps go to the
///     `aqua_shard_hedge_wasted_steps_total` counter instead.
///
/// Failpoints: `shard/spawn` (before each primary submit), `shard/run`
/// (inside each attempt; honors error/delay/partial), `shard/hedge`
/// (before each hedge submit).
class Supervisor {
 public:
  explicit Supervisor(const SupervisorOptions& options)
      : options_(options) {}

  /// Contiguous partition of `num_rows` row indices into
  /// `min(shards, num_rows)` non-empty shards, remainder spread over the
  /// lowest-index shards. A pure function of (num_rows, shards) so budget
  /// shares and merge order are reproducible.
  static std::vector<std::vector<uint32_t>> PlanShards(size_t num_rows,
                                                       int shards);

  /// Runs `job` over every shard in `shard_rows`. On success the returned
  /// vector has one outcome per shard, in shard order. `fallback` may be
  /// null (no local degradation; degradable failures then fail the run).
  /// `report` may be null.
  Result<std::vector<ShardOutcome>> Run(
      const std::vector<std::vector<uint32_t>>& shard_rows,
      ExecContext* parent, const ShardJob& job, const ShardJob* fallback,
      SupervisorReport* report) const;

 private:
  SupervisorOptions options_;
};

}  // namespace aqua::shard

#endif  // AQUA_SHARD_SUPERVISOR_H_
