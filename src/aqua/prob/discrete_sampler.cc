#include "aqua/prob/discrete_sampler.h"

namespace aqua {

Result<DiscreteSampler> DiscreteSampler::Make(
    const std::vector<double>& probs) {
  if (probs.empty()) {
    return Status::InvalidArgument("sampler needs at least one category");
  }
  double total = 0.0;
  for (double p : probs) {
    if (p < 0.0) return Status::InvalidArgument("negative probability");
    total += p;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("probabilities sum to zero");
  }

  const size_t k = probs.size();
  DiscreteSampler s;
  s.prob_.assign(k, 0.0);
  s.alias_.assign(k, 0);

  // Scaled probabilities; mean is exactly 1.
  std::vector<double> scaled(k);
  for (size_t i = 0; i < k; ++i) scaled[i] = probs[i] * k / total;

  std::vector<size_t> small, large;
  small.reserve(k);
  large.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const size_t s_idx = small.back();
    small.pop_back();
    const size_t l_idx = large.back();
    s.prob_[s_idx] = scaled[s_idx];
    s.alias_[s_idx] = l_idx;
    scaled[l_idx] = (scaled[l_idx] + scaled[s_idx]) - 1.0;
    if (scaled[l_idx] < 1.0) {
      large.pop_back();
      small.push_back(l_idx);
    }
  }
  // Leftovers are numerically 1.
  for (size_t i : large) s.prob_[i] = 1.0;
  for (size_t i : small) s.prob_[i] = 1.0;
  return s;
}

size_t DiscreteSampler::Sample(Rng& rng) const {
  const size_t bucket = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(prob_.size()) - 1));
  return rng.NextDouble() < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace aqua
