#ifndef AQUA_PROB_DISTRIBUTION_H_
#define AQUA_PROB_DISTRIBUTION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "aqua/common/interval.h"
#include "aqua/common/result.h"

namespace aqua {

/// A finite probability distribution over real-valued outcomes; the answer
/// shape of the paper's *distribution semantics*.
///
/// Outcomes are kept sorted and unique. Mass added to an existing outcome
/// merges (Equation 1 in the paper: Pr(X = r) sums over all mappings or
/// sequences whose answer equals r). The structure is sparse: the
/// by-tuple COUNT distribution has at most n+1 outcomes, while e.g. a naive
/// SUM enumeration may have up to l^n — which is exactly why the paper
/// deems that semantics impractical.
class Distribution {
 public:
  /// One (outcome, probability) atom.
  struct Entry {
    double outcome;
    double prob;
    friend bool operator==(const Entry&, const Entry&) = default;
  };

  Distribution() = default;

  /// Builds a distribution placing all mass on `outcome`.
  static Distribution PointMass(double outcome);

  /// Builds from unsorted (outcome, prob) pairs, merging duplicates.
  /// Fails if any probability is negative.
  static Result<Distribution> FromEntries(std::vector<Entry> entries);

  /// Adds `prob` mass at `outcome` (merging with an existing atom whose
  /// outcome compares exactly equal). Negative mass is a programming error
  /// and is ignored after an assert in debug builds.
  void AddMass(double outcome, double prob);

  /// Number of distinct outcomes.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Sorted, unique (outcome, prob) atoms.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Sum of all probabilities (1 for a proper distribution).
  double TotalMass() const;

  /// True iff |TotalMass() - 1| <= eps.
  bool IsNormalized(double eps = 1e-9) const;

  /// Removes atoms with probability <= threshold and rescales the rest to
  /// total mass 1. Useful after float drift in long dynamic programs.
  void Prune(double threshold = 0.0);

  /// Probability of exactly `outcome` (0 if absent).
  double Pr(double outcome) const;

  /// E[X]. Fails on an empty distribution.
  Result<double> Expectation() const;

  /// Var[X]. Fails on an empty distribution.
  Result<double> Variance() const;

  /// The support hull [min outcome, max outcome] — the range-semantics
  /// answer derivable from a distribution (paper §III-B). Fails when empty.
  Result<Interval> ToRange() const;

  /// Smallest outcome x with cumulative probability >= q, for q in [0, 1].
  /// Fails when empty or q outside [0, 1].
  Result<double> Quantile(double q) const;

  /// Total-variation distance between two distributions whose outcomes are
  /// matched exactly: 0.5 * sum |p_i - q_i| over the union of supports.
  static double TotalVariationDistance(const Distribution& a,
                                       const Distribution& b);

  /// Kolmogorov–Smirnov distance: sup_x |F_a(x) - F_b(x)| over the union
  /// of supports. Unlike total variation it is robust to outcome jitter
  /// between two computations of the same continuous-valued answer, so it
  /// is the right metric for sampler-vs-exact comparisons.
  static double KolmogorovSmirnovDistance(const Distribution& a,
                                          const Distribution& b);

  /// Like TotalVariationDistance but treating outcomes within
  /// `outcome_tol` of each other as identical (both supports are first
  /// coalesced onto a shared grid). Needed when comparing a distribution
  /// computed by dynamic programming against one from enumeration, where
  /// float rounding perturbs outcomes.
  static double TotalVariationDistanceApprox(const Distribution& a,
                                             const Distribution& b,
                                             double outcome_tol);

  /// One bar of `ToHistogram`.
  struct Bin {
    double low;    // inclusive
    double high;   // exclusive (last bin: inclusive)
    double mass;
  };

  /// Buckets the distribution into `num_bins` equal-width bins spanning
  /// the support hull — for rendering distributions whose support is too
  /// large to display atom-by-atom (sampled or quantised SUMs). Fails on
  /// an empty distribution or zero bins; a single-point support returns
  /// one bin carrying all mass.
  Result<std::vector<Bin>> ToHistogram(size_t num_bins) const;

  /// "{outcome: prob, ...}" with 6 significant digits.
  std::string ToString() const;

  friend bool operator==(const Distribution& a, const Distribution& b) {
    return a.entries_ == b.entries_;
  }

 private:
  std::vector<Entry> entries_;  // sorted by outcome, unique
};

}  // namespace aqua

#endif  // AQUA_PROB_DISTRIBUTION_H_
