#ifndef AQUA_PROB_DISCRETE_SAMPLER_H_
#define AQUA_PROB_DISCRETE_SAMPLER_H_

#include <cstddef>
#include <vector>

#include "aqua/common/random.h"
#include "aqua/common/result.h"

namespace aqua {

/// O(1)-per-draw sampler over a fixed discrete distribution (Walker's alias
/// method).
///
/// The Monte-Carlo by-tuple sampler draws one mapping index per tuple per
/// sample — millions of draws per estimate — so per-draw cost matters. The
/// alias table is built once in O(k) from the mapping probabilities.
class DiscreteSampler {
 public:
  /// Builds the alias table. Fails if `probs` is empty, contains a negative
  /// entry, or sums to (near) zero; probabilities are normalised internally.
  static Result<DiscreteSampler> Make(const std::vector<double>& probs);

  /// Draws an index in [0, size()) with the configured probabilities.
  size_t Sample(Rng& rng) const;

  /// Number of categories.
  size_t size() const { return prob_.size(); }

 private:
  DiscreteSampler() = default;

  std::vector<double> prob_;   // acceptance threshold per bucket
  std::vector<size_t> alias_;  // fallback category per bucket
};

}  // namespace aqua

#endif  // AQUA_PROB_DISCRETE_SAMPLER_H_
