#include "aqua/prob/distribution.h"

#include <algorithm>
#include <cmath>

#include "aqua/common/check.h"
#include "aqua/common/string_util.h"

namespace aqua {

Distribution Distribution::PointMass(double outcome) {
  Distribution d;
  d.AddMass(outcome, 1.0);
  return d;
}

Result<Distribution> Distribution::FromEntries(std::vector<Entry> entries) {
  for (const Entry& e : entries) {
    if (e.prob < 0) {
      return Status::InvalidArgument("negative probability for outcome " +
                                     FormatDouble(e.outcome));
    }
  }
  // Bulk path: sort once and merge equal outcomes, rather than a sorted
  // insert per entry (the naive enumerator can produce millions).
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.outcome < b.outcome; });
  Distribution d;
  d.entries_.reserve(entries.size());
  for (const Entry& e : entries) {
    if (!d.entries_.empty() && d.entries_.back().outcome == e.outcome) {
      d.entries_.back().prob += e.prob;
    } else {
      d.entries_.push_back(e);
    }
  }
  return d;
}

void Distribution::AddMass(double outcome, double prob) {
  AQUA_DCHECK(prob >= 0.0) << "negative mass " << prob << " at outcome "
                           << outcome;
  if (prob < 0.0) return;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), outcome,
      [](const Entry& e, double v) { return e.outcome < v; });
  if (it != entries_.end() && it->outcome == outcome) {
    it->prob += prob;
  } else {
    entries_.insert(it, Entry{outcome, prob});
  }
}

double Distribution::TotalMass() const {
  double total = 0.0;
  for (const Entry& e : entries_) total += e.prob;
  return total;
}

bool Distribution::IsNormalized(double eps) const {
  return std::fabs(TotalMass() - 1.0) <= eps;
}

void Distribution::Prune(double threshold) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) {
                                  return e.prob <= threshold;
                                }),
                 entries_.end());
  const double total = TotalMass();
  if (total > 0.0) {
    for (Entry& e : entries_) e.prob /= total;
  }
}

double Distribution::Pr(double outcome) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), outcome,
      [](const Entry& e, double v) { return e.outcome < v; });
  if (it != entries_.end() && it->outcome == outcome) return it->prob;
  return 0.0;
}

Result<double> Distribution::Expectation() const {
  if (entries_.empty()) {
    return Status::InvalidArgument("expectation of empty distribution");
  }
  double e = 0.0;
  for (const Entry& entry : entries_) e += entry.outcome * entry.prob;
  return e;
}

Result<double> Distribution::Variance() const {
  AQUA_ASSIGN_OR_RETURN(double mean, Expectation());
  double v = 0.0;
  for (const Entry& entry : entries_) {
    const double d = entry.outcome - mean;
    v += d * d * entry.prob;
  }
  return v;
}

Result<Interval> Distribution::ToRange() const {
  if (entries_.empty()) {
    return Status::InvalidArgument("range of empty distribution");
  }
  return Interval{entries_.front().outcome, entries_.back().outcome};
}

Result<double> Distribution::Quantile(double q) const {
  if (entries_.empty()) {
    return Status::InvalidArgument("quantile of empty distribution");
  }
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("quantile level outside [0, 1]");
  }
  double cum = 0.0;
  for (const Entry& e : entries_) {
    cum += e.prob;
    if (cum >= q - 1e-12) return e.outcome;
  }
  return entries_.back().outcome;
}

double Distribution::TotalVariationDistance(const Distribution& a,
                                            const Distribution& b) {
  double dist = 0.0;
  size_t i = 0, j = 0;
  while (i < a.entries_.size() || j < b.entries_.size()) {
    if (j >= b.entries_.size() ||
        (i < a.entries_.size() &&
         a.entries_[i].outcome < b.entries_[j].outcome)) {
      dist += a.entries_[i++].prob;
    } else if (i >= a.entries_.size() ||
               b.entries_[j].outcome < a.entries_[i].outcome) {
      dist += b.entries_[j++].prob;
    } else {
      dist += std::fabs(a.entries_[i].prob - b.entries_[j].prob);
      ++i;
      ++j;
    }
  }
  return dist / 2.0;
}

double Distribution::KolmogorovSmirnovDistance(const Distribution& a,
                                               const Distribution& b) {
  double max_gap = 0.0;
  double cdf_a = 0.0;
  double cdf_b = 0.0;
  size_t i = 0, j = 0;
  while (i < a.entries_.size() || j < b.entries_.size()) {
    double x;
    if (j >= b.entries_.size() ||
        (i < a.entries_.size() &&
         a.entries_[i].outcome <= b.entries_[j].outcome)) {
      x = a.entries_[i].outcome;
    } else {
      x = b.entries_[j].outcome;
    }
    while (i < a.entries_.size() && a.entries_[i].outcome <= x) {
      cdf_a += a.entries_[i++].prob;
    }
    while (j < b.entries_.size() && b.entries_[j].outcome <= x) {
      cdf_b += b.entries_[j++].prob;
    }
    max_gap = std::max(max_gap, std::fabs(cdf_a - cdf_b));
  }
  return max_gap;
}

namespace {

// Coalesces atoms whose outcomes are within `tol` of the previous atom.
Distribution SnapToGrid(const Distribution& d, double tol) {
  Distribution out;
  double anchor = 0.0;
  bool has_anchor = false;
  double mass = 0.0;
  for (const auto& e : d.entries()) {
    if (has_anchor && e.outcome - anchor <= tol) {
      mass += e.prob;
    } else {
      if (has_anchor) out.AddMass(anchor, mass);
      anchor = e.outcome;
      mass = e.prob;
      has_anchor = true;
    }
  }
  if (has_anchor) out.AddMass(anchor, mass);
  return out;
}

}  // namespace

double Distribution::TotalVariationDistanceApprox(const Distribution& a,
                                                  const Distribution& b,
                                                  double outcome_tol) {
  // Merge both supports, then match each coalesced atom of one to the
  // nearest atom of the other within tolerance by re-snapping the union.
  Distribution sa = SnapToGrid(a, outcome_tol);
  Distribution sb = SnapToGrid(b, outcome_tol);
  // Align sb's outcomes to sa's grid where they are within tolerance.
  Distribution aligned;
  for (const auto& e : sb.entries()) {
    double outcome = e.outcome;
    // Find the nearest outcome in sa.
    const auto& ea = sa.entries();
    auto it = std::lower_bound(
        ea.begin(), ea.end(), outcome,
        [](const Entry& x, double v) { return x.outcome < v; });
    double best = outcome;
    double best_gap = outcome_tol;
    if (it != ea.end() && std::fabs(it->outcome - outcome) <= best_gap) {
      best = it->outcome;
      best_gap = std::fabs(it->outcome - outcome);
    }
    if (it != ea.begin()) {
      auto prev = std::prev(it);
      if (std::fabs(prev->outcome - outcome) <= best_gap) {
        best = prev->outcome;
      }
    }
    aligned.AddMass(best, e.prob);
  }
  return TotalVariationDistance(sa, aligned);
}

Result<std::vector<Distribution::Bin>> Distribution::ToHistogram(
    size_t num_bins) const {
  if (entries_.empty()) {
    return Status::InvalidArgument("histogram of empty distribution");
  }
  if (num_bins == 0) {
    return Status::InvalidArgument("histogram needs at least one bin");
  }
  const double lo = entries_.front().outcome;
  const double hi = entries_.back().outcome;
  if (lo == hi) {
    return std::vector<Bin>{Bin{lo, hi, TotalMass()}};
  }
  std::vector<Bin> bins(num_bins);
  const double width = (hi - lo) / static_cast<double>(num_bins);
  for (size_t i = 0; i < num_bins; ++i) {
    bins[i] = Bin{lo + width * static_cast<double>(i),
                  lo + width * static_cast<double>(i + 1), 0.0};
  }
  bins.back().high = hi;
  for (const Entry& e : entries_) {
    size_t idx = static_cast<size_t>((e.outcome - lo) / width);
    if (idx >= num_bins) idx = num_bins - 1;  // the hi endpoint
    bins[idx].mass += e.prob;
  }
  return bins;
}

std::string Distribution::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out += ", ";
    out += FormatDouble(entries_[i].outcome);
    out += ": ";
    out += FormatDouble(entries_[i].prob);
  }
  out += "}";
  return out;
}

}  // namespace aqua
