#ifndef AQUA_SERVER_JSON_H_
#define AQUA_SERVER_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "aqua/common/result.h"
#include "aqua/core/answer.h"

namespace aqua::server {

/// A parsed flat JSON object: string / number / bool / null values only,
/// one level deep. That is exactly the shape of an aquad query request, so
/// the service carries no general-purpose JSON dependency — nested arrays
/// and objects are rejected with kInvalidArgument, never crash the parser.
class FlatJson {
 public:
  struct Value {
    enum class Kind { kString, kNumber, kBool, kNull };
    Kind kind = Kind::kNull;
    std::string str;      // kString
    double num = 0;       // kNumber
    bool boolean = false;  // kBool
  };

  /// Parses `text` as a single flat JSON object. Fails (kInvalidArgument)
  /// on malformed syntax, nested containers, duplicate keys, or trailing
  /// garbage; never throws and never reads past `text`.
  static Result<FlatJson> Parse(std::string_view text);

  bool Has(std::string_view key) const;

  /// The string value of `key`, or `fallback` when the key is absent.
  /// A present key of the wrong type is an error, not a default — a typo'd
  /// request should fail loudly rather than silently run with defaults.
  Result<std::string> GetString(std::string_view key,
                                std::string_view fallback) const;

  /// The integral value of `key` (a JSON number with no fractional part),
  /// or `fallback` when absent.
  Result<int64_t> GetInt(std::string_view key, int64_t fallback) const;

  const std::map<std::string, Value, std::less<>>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, Value, std::less<>> entries_;
};

/// JSON number rendering that round-trips doubles and never emits the
/// non-JSON tokens inf/nan (those become null).
std::string JsonNumber(double v);

/// The deterministic part of an answer as a JSON object: semantics, the
/// active value member, the approximate flag and note. Stats (which carry
/// wall-clock time) are deliberately NOT embedded — the service emits them
/// as a sibling key so clients and the chaos harness can byte-compare
/// answers across runs.
std::string RenderAnswer(const AggregateAnswer& answer);

}  // namespace aqua::server

#endif  // AQUA_SERVER_JSON_H_
