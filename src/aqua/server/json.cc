#include "aqua/server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "aqua/obs/json.h"

namespace aqua::server {
namespace {

/// Cursor over the input; every helper consumes from the front and fails
/// with a position-stamped kInvalidArgument so a malformed request body
/// produces an actionable 400, never UB.
struct Cursor {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipWs() {
    while (!AtEnd() && (text[pos] == ' ' || text[pos] == '\t' ||
                        text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("malformed JSON at byte " +
                                   std::to_string(pos) + ": " + what);
  }
};

Result<std::string> ParseString(Cursor* c) {
  if (c->AtEnd() || c->Peek() != '"') return c->Fail("expected '\"'");
  ++c->pos;
  std::string out;
  while (true) {
    if (c->AtEnd()) return c->Fail("unterminated string");
    const char ch = c->text[c->pos++];
    if (ch == '"') return out;
    if (ch != '\\') {
      out += ch;
      continue;
    }
    if (c->AtEnd()) return c->Fail("dangling escape");
    const char esc = c->text[c->pos++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (c->pos + 4 > c->text.size()) return c->Fail("truncated \\u");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = c->text[c->pos++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return c->Fail("bad \\u digit");
        }
        // Requests are ASCII-shaped (SQL + flag names); BMP escapes are
        // encoded as UTF-8, surrogate pairs are not reassembled.
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default:
        return c->Fail(std::string("unknown escape '\\") + esc + "'");
    }
  }
}

Result<FlatJson::Value> ParseValue(Cursor* c) {
  c->SkipWs();
  if (c->AtEnd()) return c->Fail("expected a value");
  FlatJson::Value v;
  const char ch = c->Peek();
  if (ch == '"') {
    v.kind = FlatJson::Value::Kind::kString;
    AQUA_ASSIGN_OR_RETURN(v.str, ParseString(c));
    return v;
  }
  if (ch == '{' || ch == '[') {
    return c->Fail("nested objects/arrays are not supported in requests");
  }
  if (c->text.compare(c->pos, 4, "true") == 0) {
    v.kind = FlatJson::Value::Kind::kBool;
    v.boolean = true;
    c->pos += 4;
    return v;
  }
  if (c->text.compare(c->pos, 5, "false") == 0) {
    v.kind = FlatJson::Value::Kind::kBool;
    v.boolean = false;
    c->pos += 5;
    return v;
  }
  if (c->text.compare(c->pos, 4, "null") == 0) {
    v.kind = FlatJson::Value::Kind::kNull;
    c->pos += 4;
    return v;
  }
  // Number: delegate validation to strtod over the remaining text.
  const std::string rest(c->text.substr(c->pos, 64));
  char* end = nullptr;
  const double parsed = std::strtod(rest.c_str(), &end);
  if (end == rest.c_str()) return c->Fail("expected a value");
  if (!std::isfinite(parsed)) return c->Fail("non-finite number");
  v.kind = FlatJson::Value::Kind::kNumber;
  v.num = parsed;
  c->pos += static_cast<size_t>(end - rest.c_str());
  return v;
}

}  // namespace

Result<FlatJson> FlatJson::Parse(std::string_view text) {
  Cursor c{text};
  c.SkipWs();
  if (c.AtEnd() || c.Peek() != '{') return c.Fail("expected '{'");
  ++c.pos;
  FlatJson out;
  c.SkipWs();
  if (!c.AtEnd() && c.Peek() == '}') {
    ++c.pos;
  } else {
    while (true) {
      c.SkipWs();
      AQUA_ASSIGN_OR_RETURN(std::string key, ParseString(&c));
      c.SkipWs();
      if (c.AtEnd() || c.Peek() != ':') return c.Fail("expected ':'");
      ++c.pos;
      AQUA_ASSIGN_OR_RETURN(Value value, ParseValue(&c));
      if (!out.entries_.emplace(std::move(key), std::move(value)).second) {
        return c.Fail("duplicate key");
      }
      c.SkipWs();
      if (c.AtEnd()) return c.Fail("unterminated object");
      const char sep = c.text[c.pos++];
      if (sep == '}') break;
      if (sep != ',') return c.Fail("expected ',' or '}'");
    }
  }
  c.SkipWs();
  if (!c.AtEnd()) return c.Fail("trailing content after object");
  return out;
}

bool FlatJson::Has(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

Result<std::string> FlatJson::GetString(std::string_view key,
                                        std::string_view fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::string(fallback);
  if (it->second.kind != Value::Kind::kString) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a JSON string");
  }
  return it->second.str;
}

Result<int64_t> FlatJson::GetInt(std::string_view key, int64_t fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  if (it->second.kind != Value::Kind::kNumber) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a JSON number");
  }
  const double v = it->second.num;
  if (v != std::floor(v) || v < -9.2e18 || v > 9.2e18) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be an integer");
  }
  return static_cast<int64_t>(v);
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string RenderAnswer(const AggregateAnswer& answer) {
  std::string out = "{";
  out += obs::JsonString("semantics",
                         AggregateSemanticsToString(answer.semantics));
  switch (answer.semantics) {
    case AggregateSemantics::kRange:
      out += ",\"range\":{\"low\":" + JsonNumber(answer.range.low) +
             ",\"high\":" + JsonNumber(answer.range.high) + '}';
      break;
    case AggregateSemantics::kDistribution: {
      out += ",\"distribution\":[";
      bool first = true;
      for (const Distribution::Entry& e : answer.distribution.entries()) {
        if (!first) out += ',';
        first = false;
        out += '[' + JsonNumber(e.outcome) + ',' + JsonNumber(e.prob) + ']';
      }
      out += ']';
      break;
    }
    case AggregateSemantics::kExpectedValue:
      out += ",\"expected\":" + JsonNumber(answer.expected_value);
      break;
  }
  out += std::string(",\"approximate\":") +
         (answer.approximate ? "true" : "false");
  out += ',' + obs::JsonString("note", answer.note);
  out += '}';
  return out;
}

}  // namespace aqua::server
