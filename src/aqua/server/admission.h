#ifndef AQUA_SERVER_ADMISSION_H_
#define AQUA_SERVER_ADMISSION_H_

#include <mutex>
#include <string_view>

#include "aqua/obs/metrics.h"

namespace aqua::server {

/// Watermarks for the admission controller, counted in concurrently
/// admitted (in-flight) query requests.
struct AdmissionOptions {
  /// At or above this many in-flight requests new work is shed: answered
  /// by the cheap sampling path and flagged approximate.
  int soft_watermark = 48;

  /// At or above this many in-flight requests new work is rejected with a
  /// well-formed 429 — the server protects its latency floor rather than
  /// queueing unboundedly. Must be >= soft_watermark.
  int hard_watermark = 64;
};

/// The service's admission state machine. Every query request passes
/// through exactly one `Admit` call; admitted (including shed) requests
/// must pair it with `Release`. `StopAdmission` flips the controller into
/// drain mode: all new requests are rejected as kUnavailable while
/// in-flight ones run to completion, and `Quiesced` reports when the last
/// one has released — the graceful-drain condition.
///
/// Observability: `aqua_server_inflight` gauges the live count and
/// `aqua_server_requests_total{decision=...}` counts every decision.
class AdmissionController {
 public:
  enum class Decision {
    kAdmit,           // run the exact path
    kShed,            // run the degraded (sampling) path, flag approximate
    kRejectOverload,  // 429: at/above the hard watermark
    kRejectDraining,  // 503: drain in progress, no new admissions
  };

  explicit AdmissionController(AdmissionOptions options);

  /// Decides one request's fate and, for kAdmit/kShed, counts it
  /// in-flight. Thread-safe.
  Decision Admit();

  /// Pairs every kAdmit/kShed decision; never call for rejections.
  void Release();

  /// Enters drain mode (idempotent): every subsequent Admit returns
  /// kRejectDraining.
  void StopAdmission();

  bool draining() const;
  int inflight() const;

  /// True when draining and the last in-flight request has released.
  bool Quiesced() const;

 private:
  const AdmissionOptions options_;
  mutable std::mutex mu_;
  int inflight_ = 0;
  bool draining_ = false;
  obs::Gauge inflight_gauge_;
  obs::Counter admitted_;
  obs::Counter shed_;
  obs::Counter rejected_overload_;
  obs::Counter rejected_draining_;
};

std::string_view AdmissionDecisionToString(AdmissionController::Decision d);

}  // namespace aqua::server

#endif  // AQUA_SERVER_ADMISSION_H_
