#include "aqua/server/server.h"

#include <cerrno>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "aqua/common/failpoint.h"
#include "aqua/obs/metrics.h"
#include "aqua/server/http.h"

namespace aqua::server {
namespace {

using Clock = std::chrono::steady_clock;

struct ServerMetrics {
  obs::Counter connections_total;
  obs::Counter accept_dropped_total;
  obs::Counter read_failed_total;
  obs::Counter write_failed_total;
};

ServerMetrics& Metrics() {
  static ServerMetrics* m = [] {
    auto& registry = obs::MetricsRegistry::Default();
    auto* metrics = new ServerMetrics();
    metrics->connections_total =
        registry.GetCounter("aqua_server_connections_total");
    metrics->accept_dropped_total =
        registry.GetCounter("aqua_server_accept_dropped_total");
    metrics->read_failed_total =
        registry.GetCounter("aqua_server_read_failed_total");
    metrics->write_failed_total =
        registry.GetCounter("aqua_server_write_failed_total");
    return metrics;
  }();
  return *m;
}

void SetSocketTimeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

int64_t ElapsedMs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               since)
      .count();
}

}  // namespace

HttpServer::HttpServer(QueryService* service, HttpServerOptions options)
    : service_(service), options_(std::move(options)) {}

HttpServer::~HttpServer() {
  if (listen_fd_ >= 0) (void)Shutdown(/*drain_deadline_ms=*/1000);
}

Status HttpServer::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket() failed: ") +
                               std::strerror(errno));
  }
  const int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listen_fd_, options_.backlog) < 0) {
    const std::string err = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("cannot listen on " + options_.bind_address +
                               ':' + std::to_string(options_.port) + ": " +
                               err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  acceptor_ = std::make_unique<exec::ThreadPool>(1);
  if (!acceptor_->Submit([this] { AcceptLoop(); })) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("could not start the accept thread");
  }
  return Status::OK();
}

void HttpServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout, EINTR, or transient error
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // An injected error here drops the connection on the floor: the client
    // sees a reset, the server keeps serving everyone else.
    if (const Status s = AQUA_FAILPOINT_STATUS("server/accept"); !s.ok()) {
      Metrics().accept_dropped_total.Increment();
      close(fd);
      continue;
    }
    Metrics().connections_total.Increment();
    SetSocketTimeouts(fd, options_.io_timeout_ms);
    const auto accepted_at = Clock::now();
    active_.fetch_add(1, std::memory_order_acq_rel);
    const bool queued = exec::ThreadPool::Shared().Submit(
        [this, fd, accepted_at] { HandleConnection(fd, accepted_at); });
    if (!queued) {
      // Shared pool saturated (or its queue capped): serve inline on the
      // acceptor thread. Accepts stall while we do — exactly the
      // backpressure a full queue should exert.
      HandleConnection(fd, accepted_at);
    }
  }
}

void HttpServer::HandleConnection(int fd, Clock::time_point accepted_at) {
  Result<HttpRequest> request =
      ReadHttpRequest(fd, options_.max_request_bytes);
  std::string content_type = "application/json";
  ServiceResponse response;
  if (!request.ok()) {
    Metrics().read_failed_total.Increment();
    if (request.status().code() == StatusCode::kInvalidArgument ||
        request.status().code() == StatusCode::kResourceExhausted) {
      // The client spoke, badly: answer with a well-formed error.
      response = ErrorResponse(request.status());
    } else {
      // The client stalled or hung up; nobody is listening for a reply.
      close(fd);
      active_.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
  } else if (request->method == "POST" && request->target == "/query") {
    response = service_->HandleQuery(request->body, ElapsedMs(accepted_at),
                                     CancellationToken::MakeLinked(
                                         cancel_root_));
  } else if (request->method == "GET" && request->target == "/healthz") {
    response = ServiceResponse{200, "{\"ok\":true}"};
  } else if (request->method == "GET" && request->target == "/statusz") {
    response = service_->HandleStatusz();
  } else if (request->method == "GET" && request->target == "/metrics") {
    content_type = "text/plain; version=0.0.4";
    response = ServiceResponse{
        200, obs::MetricsRegistry::Default().RenderPrometheusText()};
  } else if (request->target == "/query" || request->target == "/healthz" ||
             request->target == "/statusz" || request->target == "/metrics") {
    response = ServiceResponse{
        405, "{\"ok\":false,\"error\":{\"code\":\"kInvalidArgument\","
             "\"message\":\"method not allowed\"},\"retryable\":false}"};
  } else {
    response = ErrorResponse(
        Status::NotFound("unknown route '" + request->target + "'"));
  }
  const Status written = WriteHttpResponse(
      fd, SerializeHttpResponse(response.http_status, content_type,
                                response.body));
  if (!written.ok()) Metrics().write_failed_total.Increment();
  close(fd);
  active_.fetch_sub(1, std::memory_order_acq_rel);
}

void HttpServer::RequestDrain() { service_->admission().StopAdmission(); }

Status HttpServer::Shutdown(int64_t drain_deadline_ms) {
  RequestDrain();
  stop_.store(true, std::memory_order_release);
  // Joining the acceptor's pool runs its (finished) loop task to
  // completion; after this no new connection can appear.
  acceptor_.reset();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(drain_deadline_ms);
  while (active_.load(std::memory_order_acquire) > 0 &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (active_.load(std::memory_order_acquire) == 0) return Status::OK();
  // Past the drain deadline: cancel outstanding query work. Requests
  // finish promptly with well-formed errors; give them one socket-write's
  // worth of grace.
  cancel_root_.RequestCancel();
  const auto grace = Clock::now() + std::chrono::milliseconds(1000);
  while (active_.load(std::memory_order_acquire) > 0 &&
         Clock::now() < grace) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return Status::DeadlineExceeded(
      "drain deadline of " + std::to_string(drain_deadline_ms) +
      "ms passed with " + std::to_string(active_.load()) +
      " connections still in flight (their work was cancelled)");
}

}  // namespace aqua::server
