#ifndef AQUA_SERVER_HTTP_H_
#define AQUA_SERVER_HTTP_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

#include "aqua/common/result.h"

namespace aqua::server {

/// One parsed HTTP/1.1 request. Header names are lower-cased at parse
/// time; values keep their bytes (leading/trailing whitespace trimmed).
struct HttpRequest {
  std::string method;  // e.g. "POST"
  std::string target;  // e.g. "/query"
  std::map<std::string, std::string> headers;
  std::string body;
};

/// Parses a complete HTTP/1.1 message (request line + headers + body).
/// kInvalidArgument on malformed syntax — the server turns that into a
/// well-formed 400, never a crash.
Result<HttpRequest> ParseHttpRequest(std::string_view raw);

/// Standard reason phrase for the status codes aquad emits.
std::string_view HttpStatusText(int status);

/// Serializes a response with Content-Length and Connection: close (the
/// service speaks one request per connection).
std::string SerializeHttpResponse(int status, std::string_view content_type,
                                  std::string_view body);

/// Maps a Status code to the HTTP status of its error response: 400
/// kInvalidArgument, 404 kNotFound, 429 kResourceExhausted, 501
/// kUnimplemented, 503 kUnavailable, 504 kDeadlineExceeded, 500 otherwise.
int HttpStatusForCode(StatusCode code);

/// Reads one full HTTP request off `fd` (headers, then Content-Length
/// bytes of body), bounded by `max_bytes` and the socket's SO_RCVTIMEO.
/// Failpoint `server/read-request` fires before the first read — an error
/// there models a client that stalled or hung up mid-request.
/// kDeadlineExceeded on read timeout, kUnavailable when the peer closes
/// early, kResourceExhausted when the request exceeds `max_bytes`.
Result<HttpRequest> ReadHttpRequest(int fd, size_t max_bytes);

/// Writes `response` to `fd` in full. Failpoint `server/write-response`
/// fires before the first byte — an error there models a connection
/// dropped mid-response (the client sees a truncated reply; the server's
/// state is untouched).
Status WriteHttpResponse(int fd, std::string_view response);

}  // namespace aqua::server

#endif  // AQUA_SERVER_HTTP_H_
