#include "aqua/server/signal.h"

#include <csignal>

namespace aqua::server {
namespace {

volatile std::sig_atomic_t g_drain = 0;

void OnDrainSignal(int /*signum*/) { g_drain = 1; }

}  // namespace

void InstallDrainHandlers() {
  struct sigaction action = {};
  action.sa_handler = &OnDrainSignal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: blocking accept/read calls return EINTR so the serving
  // loop notices the drain promptly (the loops treat EINTR as a retry and
  // re-check their stop conditions).
  action.sa_flags = 0;
  (void)sigaction(SIGTERM, &action, nullptr);
  (void)sigaction(SIGINT, &action, nullptr);
}

bool DrainRequested() { return g_drain != 0; }

void RequestDrain() { g_drain = 1; }

void ResetDrainFlag() { g_drain = 0; }

}  // namespace aqua::server
