#ifndef AQUA_SERVER_SERVER_H_
#define AQUA_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "aqua/common/exec_context.h"
#include "aqua/common/result.h"
#include "aqua/exec/thread_pool.h"
#include "aqua/server/service.h"

namespace aqua::server {

struct HttpServerOptions {
  /// Loopback by default: aquad is a backend service, not an edge proxy.
  std::string bind_address = "127.0.0.1";

  /// 0 picks an ephemeral port; `port()` reports the bound one.
  int port = 0;

  int backlog = 64;

  /// SO_RCVTIMEO/SO_SNDTIMEO on accepted sockets: a stalled client can
  /// hold a connection slot for at most this long.
  int io_timeout_ms = 5000;

  /// Upper bound on one request's total size (headers + body).
  size_t max_request_bytes = 1 << 20;
};

/// A minimal HTTP/1.1 front end over QueryService: one request per
/// connection, four routes (POST /query, GET /metrics, GET /statusz,
/// GET /healthz). The accept loop runs as a long-lived task on a private
/// single-thread pool; each accepted connection is handled on the shared
/// ThreadPool (falling back to the acceptor thread when the shared queue
/// is full — natural backpressure on accepts).
///
/// Lifecycle: Start → serve → RequestDrain (stop admitting queries; the
/// listener stays up so clients get well-formed 503s and /metrics stays
/// readable) → Shutdown(deadline) (close the listener, wait for in-flight
/// connections; past the deadline, cancel their work). Failpoint
/// `server/accept` fires per accepted connection; an error drops it.
class HttpServer {
 public:
  HttpServer(QueryService* service, HttpServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the accept loop. kUnavailable when the
  /// address can't be bound.
  Status Start();

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }

  /// Stops admitting new queries; already-admitted work keeps running.
  void RequestDrain();

  /// Completes a drain: closes the listener, then waits up to
  /// `drain_deadline_ms` for every in-flight connection to finish. If the
  /// deadline passes, cancels outstanding query work (requests complete
  /// with well-formed errors) and returns kDeadlineExceeded after a short
  /// grace period. Idempotent; also called by the destructor.
  Status Shutdown(int64_t drain_deadline_ms);

  /// Live connections being served right now.
  int active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandleConnection(int fd,
                        std::chrono::steady_clock::time_point accepted_at);

  QueryService* const service_;
  const HttpServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<int> active_{0};
  CancellationToken cancel_root_ = CancellationToken::Make();
  /// One dedicated thread for the accept loop (the raw-thread lint keeps
  /// std::thread inside aqua::exec; a single-thread pool is the sanctioned
  /// way to own a long-lived background thread).
  std::unique_ptr<exec::ThreadPool> acceptor_;
};

}  // namespace aqua::server

#endif  // AQUA_SERVER_SERVER_H_
