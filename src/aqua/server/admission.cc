#include "aqua/server/admission.h"

#include "aqua/common/check.h"

namespace aqua::server {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  AQUA_CHECK(options_.soft_watermark > 0)
      << "soft watermark must be positive, got " << options_.soft_watermark;
  AQUA_CHECK(options_.hard_watermark >= options_.soft_watermark)
      << "hard watermark " << options_.hard_watermark
      << " below soft watermark " << options_.soft_watermark;
  auto& registry = obs::MetricsRegistry::Default();
  inflight_gauge_ = registry.GetGauge("aqua_server_inflight");
  admitted_ = registry.GetCounter("aqua_server_requests_total",
                                  {{"decision", "admit"}});
  shed_ = registry.GetCounter("aqua_server_requests_total",
                              {{"decision", "shed"}});
  rejected_overload_ = registry.GetCounter("aqua_server_requests_total",
                                           {{"decision", "reject-overload"}});
  rejected_draining_ = registry.GetCounter("aqua_server_requests_total",
                                           {{"decision", "reject-draining"}});
}

AdmissionController::Decision AdmissionController::Admit() {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    rejected_draining_.Increment();
    return Decision::kRejectDraining;
  }
  if (inflight_ >= options_.hard_watermark) {
    rejected_overload_.Increment();
    return Decision::kRejectOverload;
  }
  ++inflight_;
  inflight_gauge_.Set(inflight_);
  if (inflight_ > options_.soft_watermark) {
    shed_.Increment();
    return Decision::kShed;
  }
  admitted_.Increment();
  return Decision::kAdmit;
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  AQUA_CHECK(inflight_ > 0) << "Release without a matching Admit";
  --inflight_;
  inflight_gauge_.Set(inflight_);
}

void AdmissionController::StopAdmission() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

bool AdmissionController::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

int AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

bool AdmissionController::Quiesced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_ && inflight_ == 0;
}

std::string_view AdmissionDecisionToString(AdmissionController::Decision d) {
  switch (d) {
    case AdmissionController::Decision::kAdmit: return "admit";
    case AdmissionController::Decision::kShed: return "shed";
    case AdmissionController::Decision::kRejectOverload:
      return "reject-overload";
    case AdmissionController::Decision::kRejectDraining:
      return "reject-draining";
  }
  return "unknown";
}

}  // namespace aqua::server
