#include "aqua/server/http.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "aqua/common/failpoint.h"

namespace aqua::server {
namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses the request line and headers (`head` excludes the blank line).
Result<HttpRequest> ParseHead(std::string_view head) {
  HttpRequest request;
  const size_t line_end = head.find("\r\n");
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.substr(sp2 + 1).compare(0, 5, "HTTP/") != 0) {
    return Status::InvalidArgument("malformed HTTP request line");
  }
  request.method = std::string(line.substr(0, sp1));
  request.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (request.method.empty() || request.target.empty() ||
      request.target[0] != '/') {
    return Status::InvalidArgument("malformed HTTP request line");
  }
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view header = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = header.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("malformed HTTP header line");
    }
    request.headers[ToLower(Trim(header.substr(0, colon)))] =
        std::string(Trim(header.substr(colon + 1)));
  }
  return request;
}

Result<size_t> ContentLength(const HttpRequest& request) {
  const auto it = request.headers.find("content-length");
  if (it == request.headers.end()) return size_t{0};
  if (it->second.empty()) {
    return Status::InvalidArgument("empty Content-Length");
  }
  size_t value = 0;
  for (const char c : it->second) {
    if (c < '0' || c > '9' || value > (size_t{1} << 40)) {
      return Status::InvalidArgument("bad Content-Length '" + it->second +
                                     "'");
    }
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  return value;
}

}  // namespace

Result<HttpRequest> ParseHttpRequest(std::string_view raw) {
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    return Status::InvalidArgument("truncated HTTP request (no header end)");
  }
  AQUA_ASSIGN_OR_RETURN(HttpRequest request,
                        ParseHead(raw.substr(0, header_end)));
  request.body = std::string(raw.substr(header_end + 4));
  AQUA_ASSIGN_OR_RETURN(const size_t content_length, ContentLength(request));
  if (request.body.size() != content_length) {
    return Status::InvalidArgument(
        "body size " + std::to_string(request.body.size()) +
        " does not match Content-Length " + std::to_string(content_length));
  }
  return request;
}

std::string_view HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string SerializeHttpResponse(int status, std::string_view content_type,
                                  std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + ' ' +
                    std::string(HttpStatusText(status)) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kResourceExhausted: return 429;
    case StatusCode::kUnimplemented: return 501;
    case StatusCode::kUnavailable: return 503;
    case StatusCode::kDeadlineExceeded: return 504;
    default: return 500;
  }
}

Result<HttpRequest> ReadHttpRequest(int fd, size_t max_bytes) {
  // An injected error here stands in for a client that stalled or reset
  // before its request arrived; the connection is simply closed.
  AQUA_FAILPOINT("server/read-request");
  std::string buffer;
  size_t need = std::string::npos;  // total message size once headers parse
  char chunk[4096];
  while (true) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("timed out reading the request");
      }
      return Status::Unavailable(std::string("recv failed: ") +
                                 std::strerror(errno));
    }
    if (n == 0) {
      return Status::Unavailable("client closed the connection mid-request");
    }
    buffer.append(chunk, static_cast<size_t>(n));
    if (buffer.size() > max_bytes) {
      return Status::ResourceExhausted("request exceeds the " +
                                       std::to_string(max_bytes) +
                                       "-byte server limit");
    }
    if (need == std::string::npos) {
      const size_t header_end = buffer.find("\r\n\r\n");
      if (header_end == std::string::npos) continue;
      AQUA_ASSIGN_OR_RETURN(
          const HttpRequest head,
          ParseHead(std::string_view(buffer).substr(0, header_end)));
      AQUA_ASSIGN_OR_RETURN(const size_t content_length, ContentLength(head));
      need = header_end + 4 + content_length;
      if (need > max_bytes) {
        return Status::ResourceExhausted("request exceeds the " +
                                         std::to_string(max_bytes) +
                                         "-byte server limit");
      }
    }
    if (need != std::string::npos && buffer.size() >= need) {
      return ParseHttpRequest(std::string_view(buffer).substr(0, need));
    }
  }
}

Status WriteHttpResponse(int fd, std::string_view response) {
  // An injected error here models the connection dropping mid-response:
  // the answer is lost in transit but server state is untouched.
  AQUA_FAILPOINT("server/write-response");
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n =
        send(fd, response.data() + sent, response.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("timed out writing the response");
      }
      return Status::Unavailable(std::string("send failed: ") +
                                 std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace aqua::server
