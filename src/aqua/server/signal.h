#ifndef AQUA_SERVER_SIGNAL_H_
#define AQUA_SERVER_SIGNAL_H_

namespace aqua::server {

/// Installs SIGTERM/SIGINT handlers that flip a process-wide drain flag —
/// the only async-signal-safe thing a handler can do here. The serving
/// loop polls `DrainRequested` and performs the actual drain (stop
/// admission, finish in-flight work, flush metrics) in normal context.
void InstallDrainHandlers();

/// True once SIGTERM or SIGINT has been received (or `RequestDrain` was
/// called programmatically).
bool DrainRequested();

/// Sets the drain flag without a signal — what the chaos harness uses to
/// exercise the drain path in-process, and tests use to avoid re-raising.
void RequestDrain();

/// Clears the flag so one process can run several serve/drain cycles
/// (tests, chaos edges).
void ResetDrainFlag();

}  // namespace aqua::server

#endif  // AQUA_SERVER_SIGNAL_H_
