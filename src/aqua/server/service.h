#ifndef AQUA_SERVER_SERVICE_H_
#define AQUA_SERVER_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "aqua/core/engine.h"
#include "aqua/mapping/p_mapping.h"
#include "aqua/server/admission.h"
#include "aqua/storage/table.h"

namespace aqua::server {

/// Server-side caps on request-supplied budgets. A request may ask for any
/// deadline/step/byte budget; what it *gets* is the requested value clamped
/// by these, and the effective values are echoed back in the response's
/// stats (`limit_*` fields) so every shed/degrade decision is auditable.
struct ServiceCaps {
  /// Deadline applied when the request carries no `deadline_ms`.
  int64_t default_deadline_ms = 2000;

  /// Upper bound on any requested deadline (0 = uncapped).
  int64_t max_deadline_ms = 30000;

  /// Upper bounds on requested step/byte budgets, and the defaults when
  /// the request names none (0 = unlimited).
  uint64_t max_steps = 0;
  uint64_t max_bytes = 0;
};

struct QueryServiceOptions {
  ServiceCaps caps;
  AdmissionOptions admission;

  /// Base engine configuration (threads, sampler, naive guard). Per
  /// request the service overrides `limits` with the clamped budget and
  /// forces `degrade = kSample` so budget blowups degrade instead of
  /// erroring.
  EngineOptions engine;
};

/// One service response: an HTTP status plus a JSON body. Success bodies
/// are `{"ok":true,"answer":{...},"stats":{...}}` (grouped: `"groups"`),
/// errors `{"ok":false,"error":{"code":...,"message":...},"retryable":...}`
/// — always well-formed JSON, whatever the failure.
struct ServiceResponse {
  int http_status = 200;
  std::string body;
};

/// Renders `status` as the service's uniform JSON error envelope.
ServiceResponse ErrorResponse(const Status& status);

/// The query-answering half of aquad: owns the source table and p-mapping
/// (loaded once at startup), the admission controller, and the server-side
/// caps. Stateless per request beyond the in-flight count, so any number
/// of connection handlers may call `HandleQuery` concurrently.
class QueryService {
 public:
  QueryService(Table source, PMapping pmapping, QueryServiceOptions options);

  /// Answers one POST /query body. `elapsed_ms` is the time already spent
  /// on this request before the query could run (socket read, queueing);
  /// it is subtracted from the clamped deadline, and a request whose
  /// effective deadline is already <= 0 is rejected *before* admission —
  /// it never occupies an execution slot. Failpoint `server/admission`
  /// fires at the admission decision; error(resource-exhausted) there
  /// forces the load-shed path deterministically.
  ServiceResponse HandleQuery(std::string_view body, int64_t elapsed_ms,
                              CancellationToken cancel = {});

  /// GET /statusz: admission state, watermarks, pool queue depth.
  ServiceResponse HandleStatusz() const;

  AdmissionController& admission() { return admission_; }
  const QueryServiceOptions& options() const { return options_; }

 private:
  /// Clamped per-request budget plus the request's semantics choices.
  struct RequestPlan {
    std::string sql;
    MappingSemantics mapping_semantics = MappingSemantics::kByTuple;
    AggregateSemantics aggregate_semantics = AggregateSemantics::kRange;
    ExecLimits limits;
  };

  Result<RequestPlan> PlanRequest(std::string_view body,
                                  int64_t elapsed_ms) const;

  const QueryServiceOptions options_;
  const Table source_;
  const PMapping pmapping_;
  AdmissionController admission_;
};

}  // namespace aqua::server

#endif  // AQUA_SERVER_SERVICE_H_
