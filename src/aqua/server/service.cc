#include "aqua/server/service.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "aqua/common/failpoint.h"
#include "aqua/exec/thread_pool.h"
#include "aqua/obs/json.h"
#include "aqua/query/parser.h"
#include "aqua/server/http.h"
#include "aqua/server/json.h"

namespace aqua::server {
namespace {

/// Pairs the Admit() that created it; runs on every exit path so a thrown
/// Status can never leak an in-flight slot.
class AdmissionSlot {
 public:
  explicit AdmissionSlot(AdmissionController* controller)
      : controller_(controller) {}
  ~AdmissionSlot() {
    if (controller_ != nullptr) controller_->Release();
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

 private:
  AdmissionController* controller_;
};

bool Retryable(StatusCode code) {
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kUnavailable;
}

std::string OkBody(const AggregateAnswer& answer, std::string_view decision) {
  std::string out = "{\"ok\":true,";
  out += obs::JsonString("decision", decision);
  out += ",\"answer\":" + RenderAnswer(answer);
  out += ",\"stats\":" + answer.stats.ToJson();
  out += '}';
  return out;
}

std::string OkGroupedBody(const std::vector<GroupedAnswer>& groups,
                          std::string_view decision) {
  std::string out = "{\"ok\":true,";
  out += obs::JsonString("decision", decision);
  out += ",\"groups\":[";
  for (size_t i = 0; i < groups.size(); ++i) {
    if (i > 0) out += ',';
    out += "{" + obs::JsonString("group", groups[i].group.ToString()) +
           ",\"answer\":" + RenderAnswer(groups[i].answer) +
           ",\"stats\":" + groups[i].answer.stats.ToJson() + '}';
  }
  out += "]}";
  return out;
}

}  // namespace

ServiceResponse ErrorResponse(const Status& status) {
  std::string body = "{\"ok\":false,\"error\":{";
  body += obs::JsonString("code", StatusCodeToString(status.code()));
  body += ',' + obs::JsonString("message", status.message());
  body += std::string("},\"retryable\":") +
          (Retryable(status.code()) ? "true" : "false");
  body += '}';
  return ServiceResponse{HttpStatusForCode(status.code()), std::move(body)};
}

QueryService::QueryService(Table source, PMapping pmapping,
                           QueryServiceOptions options)
    : options_(std::move(options)),
      source_(std::move(source)),
      pmapping_(std::move(pmapping)),
      admission_(options_.admission) {}

Result<QueryService::RequestPlan> QueryService::PlanRequest(
    std::string_view body, int64_t elapsed_ms) const {
  AQUA_ASSIGN_OR_RETURN(FlatJson json, FlatJson::Parse(body));
  RequestPlan plan;
  AQUA_ASSIGN_OR_RETURN(plan.sql, json.GetString("query", ""));
  if (plan.sql.empty()) {
    return Status::InvalidArgument("request is missing the 'query' field");
  }
  AQUA_ASSIGN_OR_RETURN(const std::string semantics,
                        json.GetString("semantics", "by-tuple"));
  if (semantics == "by-table") {
    plan.mapping_semantics = MappingSemantics::kByTable;
  } else if (semantics == "by-tuple") {
    plan.mapping_semantics = MappingSemantics::kByTuple;
  } else {
    return Status::InvalidArgument("unknown semantics '" + semantics +
                                   "' (expected by-table or by-tuple)");
  }
  AQUA_ASSIGN_OR_RETURN(const std::string answer,
                        json.GetString("answer", "range"));
  if (answer == "range") {
    plan.aggregate_semantics = AggregateSemantics::kRange;
  } else if (answer == "distribution") {
    plan.aggregate_semantics = AggregateSemantics::kDistribution;
  } else if (answer == "expected") {
    plan.aggregate_semantics = AggregateSemantics::kExpectedValue;
  } else {
    return Status::InvalidArgument(
        "unknown answer semantics '" + answer +
        "' (expected range, distribution or expected)");
  }
  // Budget clamping: the request asks, the server caps, the response's
  // stats echo what was actually enforced.
  const ServiceCaps& caps = options_.caps;
  AQUA_ASSIGN_OR_RETURN(int64_t deadline, json.GetInt("deadline_ms", 0));
  if (deadline < 0) {
    return Status::InvalidArgument("deadline_ms must be positive");
  }
  if (deadline == 0) deadline = caps.default_deadline_ms;
  if (caps.max_deadline_ms > 0) {
    deadline = std::min(deadline, caps.max_deadline_ms);
  }
  if (deadline > 0) {
    deadline -= elapsed_ms;
    if (deadline <= 0) {
      return Status::DeadlineExceeded(
          "request deadline expired before admission (spent " +
          std::to_string(elapsed_ms) + "ms reading/queueing)");
    }
  }
  AQUA_ASSIGN_OR_RETURN(int64_t steps, json.GetInt("max_steps", 0));
  AQUA_ASSIGN_OR_RETURN(int64_t bytes, json.GetInt("max_bytes", 0));
  if (steps < 0 || bytes < 0) {
    return Status::InvalidArgument("max_steps/max_bytes must be >= 0");
  }
  plan.limits.timeout_ms = deadline;
  plan.limits.max_steps = static_cast<uint64_t>(steps);
  plan.limits.max_bytes = static_cast<uint64_t>(bytes);
  if (caps.max_steps > 0) {
    plan.limits.max_steps = plan.limits.max_steps == 0
                                ? caps.max_steps
                                : std::min(plan.limits.max_steps,
                                           caps.max_steps);
  }
  if (caps.max_bytes > 0) {
    plan.limits.max_bytes = plan.limits.max_bytes == 0
                                ? caps.max_bytes
                                : std::min(plan.limits.max_bytes,
                                           caps.max_bytes);
  }
  return plan;
}

ServiceResponse QueryService::HandleQuery(std::string_view body,
                                          int64_t elapsed_ms,
                                          CancellationToken cancel) {
  // Everything before admission is pre-flight: a malformed body or an
  // already-expired deadline is turned away without ever occupying an
  // execution slot.
  Result<RequestPlan> plan = PlanRequest(body, elapsed_ms);
  if (!plan.ok()) return ErrorResponse(plan.status());
  Result<ParsedQuery> parsed = SqlParser::Parse(plan->sql);
  if (!parsed.ok()) return ErrorResponse(parsed.status());

  AdmissionController::Decision decision = admission_.Admit();
  if (decision == AdmissionController::Decision::kRejectDraining) {
    return ErrorResponse(Status::Unavailable(
        "server is draining; no new queries are admitted"));
  }
  if (decision == AdmissionController::Decision::kRejectOverload) {
    return ErrorResponse(Status::ResourceExhausted(
        "server is over its hard admission watermark; retry later"));
  }
  AdmissionSlot slot(&admission_);
  // error(resource-exhausted) here forces the load-shed path without
  // needing real overload; any other injected error is returned as a
  // well-formed error response.
  {
    const Status injected = AQUA_FAILPOINT_STATUS("server/admission");
    if (!injected.ok()) {
      if (injected.code() != StatusCode::kResourceExhausted) {
        return ErrorResponse(injected);
      }
      decision = AdmissionController::Decision::kShed;
    }
  }

  EngineOptions effective = options_.engine;
  effective.limits = plan->limits;
  effective.degrade = DegradePolicy::kSample;
  const Engine engine(effective);
  const std::string_view decision_name = AdmissionDecisionToString(decision);

  if (decision == AdmissionController::Decision::kShed) {
    // The cheap path only covers ungrouped by-tuple aggregates; everything
    // else is turned away with a retryable 429 rather than run at full
    // cost while the server is over its soft watermark.
    if (parsed->kind == ParsedQuery::Kind::kNested ||
        !parsed->simple.group_by.empty() ||
        plan->mapping_semantics != MappingSemantics::kByTuple) {
      return ErrorResponse(Status::ResourceExhausted(
          "server is over its soft admission watermark and this query has "
          "no cheap approximate path; retry later"));
    }
    Result<AggregateAnswer> sampled = engine.AnswerForcedSample(
        parsed->simple, pmapping_, source_, plan->aggregate_semantics,
        "load shed: in-flight requests above the soft watermark", cancel);
    if (!sampled.ok()) return ErrorResponse(sampled.status());
    return ServiceResponse{200, OkBody(*sampled, decision_name)};
  }

  switch (parsed->kind) {
    case ParsedQuery::Kind::kNested: {
      Result<AggregateAnswer> answer = engine.AnswerNested(
          parsed->nested, pmapping_, source_, plan->mapping_semantics,
          plan->aggregate_semantics, cancel);
      if (!answer.ok()) return ErrorResponse(answer.status());
      return ServiceResponse{200, OkBody(*answer, decision_name)};
    }
    case ParsedQuery::Kind::kSimple: {
      if (!parsed->simple.group_by.empty()) {
        Result<std::vector<GroupedAnswer>> groups = engine.AnswerGrouped(
            parsed->simple, pmapping_, source_, plan->mapping_semantics,
            plan->aggregate_semantics, cancel);
        if (!groups.ok()) return ErrorResponse(groups.status());
        return ServiceResponse{200, OkGroupedBody(*groups, decision_name)};
      }
      Result<AggregateAnswer> answer = engine.Answer(
          parsed->simple, pmapping_, source_, plan->mapping_semantics,
          plan->aggregate_semantics, cancel);
      if (!answer.ok()) return ErrorResponse(answer.status());
      return ServiceResponse{200, OkBody(*answer, decision_name)};
    }
  }
  return ErrorResponse(Status::Internal("corrupt parse kind"));
}

ServiceResponse QueryService::HandleStatusz() const {
  std::string body = "{";
  body += "\"inflight\":" + std::to_string(admission_.inflight());
  body += std::string(",\"draining\":") +
          (admission_.draining() ? "true" : "false");
  body += ",\"soft_watermark\":" +
          std::to_string(options_.admission.soft_watermark);
  body += ",\"hard_watermark\":" +
          std::to_string(options_.admission.hard_watermark);
  body += ",\"default_deadline_ms\":" +
          std::to_string(options_.caps.default_deadline_ms);
  body += ",\"max_deadline_ms\":" +
          std::to_string(options_.caps.max_deadline_ms);
  body += ",\"pool_queue_depth\":" +
          std::to_string(exec::ThreadPool::Shared().queue_depth());
  body += ",\"pool_queue_limit\":" +
          std::to_string(exec::ThreadPool::Shared().queue_limit());
  body += ",\"rows\":" + std::to_string(source_.num_rows());
  body += ",\"mappings\":" + std::to_string(pmapping_.size());
  body += '}';
  return ServiceResponse{200, std::move(body)};
}

}  // namespace aqua::server
