#include "aqua/expr/predicate.h"

namespace aqua {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

PredicatePtr Predicate::True() {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kTrue;
  return p;
}

PredicatePtr Predicate::Comparison(std::string attribute, CompareOp op,
                                   Value literal) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kComparison;
  p->attribute_ = std::move(attribute);
  p->op_ = op;
  p->literal_ = std::move(literal);
  return p;
}

PredicatePtr Predicate::And(PredicatePtr left, PredicatePtr right) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kAnd;
  p->left_ = std::move(left);
  p->right_ = std::move(right);
  return p;
}

PredicatePtr Predicate::Or(PredicatePtr left, PredicatePtr right) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kOr;
  p->left_ = std::move(left);
  p->right_ = std::move(right);
  return p;
}

PredicatePtr Predicate::Not(PredicatePtr operand) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kNot;
  p->left_ = std::move(operand);
  return p;
}

void Predicate::CollectAttributes(std::vector<std::string>* out) const {
  switch (kind_) {
    case Kind::kTrue:
      return;
    case Kind::kComparison:
      out->push_back(attribute_);
      return;
    case Kind::kAnd:
    case Kind::kOr:
      left_->CollectAttributes(out);
      right_->CollectAttributes(out);
      return;
    case Kind::kNot:
      left_->CollectAttributes(out);
      return;
  }
}

Result<PredicatePtr> Predicate::RenameAttributes(
    const PredicatePtr& pred,
    const std::function<Result<std::string>(const std::string&)>& rename) {
  switch (pred->kind_) {
    case Kind::kTrue:
      return pred;
    case Kind::kComparison: {
      AQUA_ASSIGN_OR_RETURN(std::string name, rename(pred->attribute_));
      return Comparison(std::move(name), pred->op_, pred->literal_);
    }
    case Kind::kAnd: {
      AQUA_ASSIGN_OR_RETURN(PredicatePtr l,
                            RenameAttributes(pred->left_, rename));
      AQUA_ASSIGN_OR_RETURN(PredicatePtr r,
                            RenameAttributes(pred->right_, rename));
      return And(std::move(l), std::move(r));
    }
    case Kind::kOr: {
      AQUA_ASSIGN_OR_RETURN(PredicatePtr l,
                            RenameAttributes(pred->left_, rename));
      AQUA_ASSIGN_OR_RETURN(PredicatePtr r,
                            RenameAttributes(pred->right_, rename));
      return Or(std::move(l), std::move(r));
    }
    case Kind::kNot: {
      AQUA_ASSIGN_OR_RETURN(PredicatePtr l,
                            RenameAttributes(pred->left_, rename));
      return Not(std::move(l));
    }
  }
  return Status::Internal("corrupt predicate kind");
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kComparison:
      return attribute_ + " " + std::string(CompareOpToString(op_)) + " " +
             literal_.ToString();
    case Kind::kAnd:
      return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
    case Kind::kNot:
      return "(NOT " + left_->ToString() + ")";
  }
  return "?";
}

namespace {

bool TypesComparable(ValueType column, ValueType literal) {
  if (IsNumeric(column) && IsNumeric(literal)) return true;
  return column == literal;
}

Tri TriAnd(Tri a, Tri b) {
  if (a == Tri::kFalse || b == Tri::kFalse) return Tri::kFalse;
  if (a == Tri::kTrue && b == Tri::kTrue) return Tri::kTrue;
  return Tri::kUnknown;
}

Tri TriOr(Tri a, Tri b) {
  if (a == Tri::kTrue || b == Tri::kTrue) return Tri::kTrue;
  if (a == Tri::kFalse && b == Tri::kFalse) return Tri::kFalse;
  return Tri::kUnknown;
}

Tri TriNot(Tri a) {
  if (a == Tri::kUnknown) return Tri::kUnknown;
  return a == Tri::kTrue ? Tri::kFalse : Tri::kTrue;
}

bool ApplyOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

}  // namespace

Result<int> BoundPredicate::Compile(const PredicatePtr& pred,
                                    const Schema& schema) {
  Node node;
  node.kind = pred->kind();
  switch (pred->kind()) {
    case Predicate::Kind::kTrue:
      break;
    case Predicate::Kind::kComparison: {
      AQUA_ASSIGN_OR_RETURN(size_t col, schema.IndexOf(pred->attribute()));
      const ValueType col_type = schema.attribute(col).type;
      if (pred->literal().is_null()) {
        return Status::InvalidArgument(
            "comparison with NULL literal on attribute '" +
            pred->attribute() + "' (always UNKNOWN)");
      }
      Value literal = pred->literal();
      // SQL writes date literals as quoted strings ('2008-1-20'); coerce
      // them when the column side is a date.
      if (col_type == ValueType::kDate &&
          literal.type() == ValueType::kString) {
        AQUA_ASSIGN_OR_RETURN(Date d, Date::Parse(literal.str()));
        literal = Value::FromDate(d);
      }
      if (!TypesComparable(col_type, literal.type())) {
        return Status::InvalidArgument(
            "literal " + literal.ToString() +
            " is not comparable with attribute '" + pred->attribute() +
            "' of type " + std::string(ValueTypeToString(col_type)));
      }
      node.column = col;
      node.op = pred->op();
      node.literal = std::move(literal);
      break;
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      AQUA_ASSIGN_OR_RETURN(node.left, Compile(pred->left(), schema));
      AQUA_ASSIGN_OR_RETURN(node.right, Compile(pred->right(), schema));
      break;
    }
    case Predicate::Kind::kNot: {
      AQUA_ASSIGN_OR_RETURN(node.left, Compile(pred->left(), schema));
      break;
    }
  }
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

Result<BoundPredicate> BoundPredicate::Bind(const PredicatePtr& pred,
                                            const Schema& schema) {
  if (pred == nullptr) {
    return Status::InvalidArgument("null predicate");
  }
  BoundPredicate bound;
  AQUA_ASSIGN_OR_RETURN(bound.root_, bound.Compile(pred, schema));
  return bound;
}

Tri BoundPredicate::Eval(const Table& table, size_t row) const {
  // Children precede parents in nodes_, so one forward pass suffices.
  // Predicates are tiny (a handful of nodes); a fixed local buffer avoids
  // allocation. Deep trees fall back to heap.
  constexpr size_t kInlineNodes = 16;
  Tri inline_buf[kInlineNodes];
  std::vector<Tri> heap_buf;
  Tri* vals = inline_buf;
  if (nodes_.size() > kInlineNodes) {
    heap_buf.resize(nodes_.size());
    vals = heap_buf.data();
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    switch (node.kind) {
      case Predicate::Kind::kTrue:
        vals[i] = Tri::kTrue;
        break;
      case Predicate::Kind::kComparison: {
        const Column& col = table.column(node.column);
        if (col.IsNull(row)) {
          vals[i] = Tri::kUnknown;
          break;
        }
        const Result<int> cmp =
            Value::Compare(col.GetValue(row), node.literal);
        // Bind() guarantees comparability, so a failure here is a bug; be
        // conservative and treat it as UNKNOWN.
        vals[i] = !cmp.ok()               ? Tri::kUnknown
                  : ApplyOp(node.op, *cmp) ? Tri::kTrue
                                           : Tri::kFalse;
        break;
      }
      case Predicate::Kind::kAnd:
        vals[i] = TriAnd(vals[node.left], vals[node.right]);
        break;
      case Predicate::Kind::kOr:
        vals[i] = TriOr(vals[node.left], vals[node.right]);
        break;
      case Predicate::Kind::kNot:
        vals[i] = TriNot(vals[node.left]);
        break;
    }
  }
  return vals[root_];
}

}  // namespace aqua
