#ifndef AQUA_EXPR_PREDICATE_H_
#define AQUA_EXPR_PREDICATE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aqua/common/result.h"
#include "aqua/common/value.h"
#include "aqua/storage/table.h"

namespace aqua {

class Predicate;
/// Predicates are immutable shared trees; sub-trees can be reused freely
/// across reformulated queries.
using PredicatePtr = std::shared_ptr<const Predicate>;

/// Comparison operator of an atomic predicate `attr OP literal`.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// SQL token for `op` ("=", "<>", "<", "<=", ">", ">=").
std::string_view CompareOpToString(CompareOp op);

/// A boolean selection condition over a single relation: atomic comparisons
/// of an attribute against a literal, combined with AND / OR / NOT.
///
/// This is exactly the condition language the paper's algorithms need (its
/// queries are `SELECT Agg(A) FROM T WHERE C [GROUP BY B]`). Evaluation
/// follows SQL three-valued logic; a row satisfies the predicate only when
/// it evaluates to TRUE (UNKNOWN, from NULLs, filters out).
class Predicate {
 public:
  enum class Kind { kTrue, kComparison, kAnd, kOr, kNot };

  /// The always-true condition (a missing WHERE clause).
  static PredicatePtr True();
  /// `attribute OP literal`.
  static PredicatePtr Comparison(std::string attribute, CompareOp op,
                                 Value literal);
  static PredicatePtr And(PredicatePtr left, PredicatePtr right);
  static PredicatePtr Or(PredicatePtr left, PredicatePtr right);
  static PredicatePtr Not(PredicatePtr operand);

  Kind kind() const { return kind_; }

  /// Valid only for kComparison nodes.
  const std::string& attribute() const { return attribute_; }
  CompareOp op() const { return op_; }
  const Value& literal() const { return literal_; }

  /// Valid only for kAnd/kOr (left, right) and kNot (left).
  const PredicatePtr& left() const { return left_; }
  const PredicatePtr& right() const { return right_; }

  /// Appends the names of all attributes referenced by this tree (with
  /// duplicates) to `out`.
  void CollectAttributes(std::vector<std::string>* out) const;

  /// Returns a tree with every attribute name `a` replaced by `rename(a)`.
  /// Fails (propagating the callback's status) when any attribute cannot be
  /// renamed — e.g. a target attribute with no correspondence under the
  /// chosen mapping.
  static Result<PredicatePtr> RenameAttributes(
      const PredicatePtr& pred,
      const std::function<Result<std::string>(const std::string&)>& rename);

  /// SQL-ish rendering, fully parenthesised.
  std::string ToString() const;

 private:
  Predicate() = default;

  Kind kind_ = Kind::kTrue;
  std::string attribute_;
  CompareOp op_ = CompareOp::kEq;
  Value literal_;
  PredicatePtr left_;
  PredicatePtr right_;
};

/// SQL three-valued truth value.
enum class Tri : uint8_t { kFalse = 0, kTrue = 1, kUnknown = 2 };

/// A predicate compiled against a concrete schema: attribute names are
/// resolved to column indices and literals are type-checked, so per-row
/// evaluation does no name lookups or type dispatch on strings.
class BoundPredicate {
 public:
  /// Resolves every attribute in `pred` against `schema` and checks that
  /// each literal is comparable with its column type.
  static Result<BoundPredicate> Bind(const PredicatePtr& pred,
                                     const Schema& schema);

  /// Three-valued evaluation of row `row` of `table` (whose schema must be
  /// the one the predicate was bound against).
  Tri Eval(const Table& table, size_t row) const;

  /// True iff the row evaluates to TRUE.
  bool Matches(const Table& table, size_t row) const {
    return Eval(table, row) == Tri::kTrue;
  }

 private:
  // Flattened expression nodes, evaluated by index (children precede
  // parents; the last node is the root).
  struct Node {
    Predicate::Kind kind;
    // kComparison:
    size_t column = 0;
    CompareOp op = CompareOp::kEq;
    Value literal;
    // kAnd/kOr/kNot:
    int left = -1;
    int right = -1;
  };

  Result<int> Compile(const PredicatePtr& pred, const Schema& schema);

  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace aqua

#endif  // AQUA_EXPR_PREDICATE_H_
