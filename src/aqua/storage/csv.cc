#include "aqua/storage/csv.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "aqua/common/failpoint.h"
#include "aqua/common/string_util.h"

namespace aqua {
namespace {

struct Field {
  std::string text;
  bool quoted = false;
};

// Splits one CSV record into fields, honouring double-quote quoting. The
// quoted flag is carried on the field itself (an earlier version smuggled
// it through a '\1' prefix on the text, which mis-read data that really
// starts with byte 0x01 — fuzzing territory). Returns false on an
// unterminated quoted field; note multi-line quoted fields are not
// supported (records are split on newlines first), so they surface as
// unterminated quotes too.
bool SplitRecord(std::string_view line, std::vector<Field>* fields) {
  fields->clear();
  Field cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.text += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.text += c;
      }
    } else if (c == '"' && cur.text.empty() && !cur.quoted) {
      in_quotes = true;
      cur.quoted = true;
    } else if (c == ',') {
      fields->push_back(std::move(cur));
      cur = Field{};
    } else {
      cur.text += c;
    }
  }
  if (in_quotes) return false;
  fields->push_back(std::move(cur));
  return true;
}

Result<Value> ParseTyped(const Field& f, ValueType type) {
  if (!f.quoted && f.text.empty()) return Value::Null();
  switch (type) {
    case ValueType::kInt64: {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(f.text.data(), f.text.data() + f.text.size(), v);
      if (ec != std::errc() || ptr != f.text.data() + f.text.size()) {
        return Status::InvalidArgument("bad int64 field '" + f.text + "'");
      }
      return Value::Int64(v);
    }
    case ValueType::kDouble: {
      try {
        size_t pos = 0;
        const double v = std::stod(f.text, &pos);
        if (pos != f.text.size()) {
          return Status::InvalidArgument("bad double field '" + f.text + "'");
        }
        return Value::Double(v);
      } catch (...) {
        return Status::InvalidArgument("bad double field '" + f.text + "'");
      }
    }
    case ValueType::kString:
      return Value::String(f.text);
    case ValueType::kDate: {
      AQUA_ASSIGN_OR_RETURN(Date d, Date::Parse(f.text));
      return Value::FromDate(d);
    }
    case ValueType::kNull:
      return Status::Internal("null-typed attribute");
  }
  return Status::Internal("corrupt type");
}

std::string EncodeField(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt64:
      return std::to_string(v.int64());
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.dbl());
      return buf;
    }
    case ValueType::kDate:
      return v.date().ToString();
    case ValueType::kString: {
      const std::string& s = v.str();
      if (s.empty() || s.find_first_of(",\"\n\r") != std::string::npos) {
        std::string out = "\"";
        for (char c : s) {
          if (c == '"') out += '"';
          out += c;
        }
        out += '"';
        return out;
      }
      return s;
    }
  }
  return "";
}

}  // namespace

Result<Table> Csv::Parse(std::string_view text, const Schema& schema) {
  AQUA_FAILPOINT("storage/csv/parse");
  // Tolerate a UTF-8 byte-order mark: editors on some platforms prepend
  // one, and without this the first header column would be misnamed
  // "\xEF\xBB\xBFname" and fail schema lookup.
  if (text.substr(0, 3) == "\xEF\xBB\xBF") text.remove_prefix(3);
  std::vector<std::string_view> lines;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      std::string_view line = text.substr(start, i - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      lines.push_back(line);
      start = i + 1;
    }
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) return Status::InvalidArgument("CSV has no header");

  std::vector<Field> raw;
  if (!SplitRecord(lines[0], &raw)) {
    return Status::InvalidArgument(
        "malformed CSV header: unterminated quoted field");
  }
  // Map header position -> schema column index.
  std::vector<size_t> target(raw.size());
  std::vector<bool> seen(schema.num_attributes(), false);
  for (size_t i = 0; i < raw.size(); ++i) {
    const Field& f = raw[i];
    AQUA_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(Trim(f.text)));
    if (seen[idx]) {
      return Status::InvalidArgument("duplicate CSV column '" + f.text + "'");
    }
    seen[idx] = true;
    target[i] = idx;
  }
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (!seen[i]) {
      return Status::InvalidArgument("CSV is missing attribute '" +
                                     schema.attribute(i).name + "'");
    }
  }

  std::vector<Column> columns;
  for (const Attribute& attr : schema.attributes()) {
    columns.emplace_back(attr.type);
  }
  for (size_t li = 1; li < lines.size(); ++li) {
    if (lines[li].empty()) continue;
    if (!SplitRecord(lines[li], &raw)) {
      return Status::InvalidArgument(
          "malformed CSV record on line " + std::to_string(li + 1) +
          ": unterminated quoted field");
    }
    if (raw.size() != target.size()) {
      return Status::InvalidArgument(
          "line " + std::to_string(li + 1) + " has " +
          std::to_string(raw.size()) + " fields, expected " +
          std::to_string(target.size()));
    }
    for (size_t i = 0; i < raw.size(); ++i) {
      const size_t col = target[i];
      Result<Value> v = ParseTyped(raw[i], schema.attribute(col).type);
      if (!v.ok()) {
        // Every cell error names its row and column; "bad double field"
        // alone is useless against a million-line file.
        return Status::InvalidArgument(
            "line " + std::to_string(li + 1) + ", column '" +
            schema.attribute(col).name + "': " + v.status().message());
      }
      AQUA_RETURN_NOT_OK(columns[col].Append(*v));
    }
  }
  return Table::Make(schema, std::move(columns));
}

Result<Table> Csv::ReadFile(const std::string& path, const Schema& schema,
                            const fault::RetryPolicy& retry) {
  Result<std::string> text = fault::WithRetry(
      retry, "csv-read", [&]() -> Result<std::string> {
        // Partial poll first: Evaluate() behind AQUA_FAILPOINT consumes
        // the spec's trigger, so a `once*partial` polled after it would
        // never fire. InjectPartial checks the action kind before
        // consuming, leaving error/delay specs untouched.
        const bool torn = fault::InjectPartial("storage/csv/read-file");
        AQUA_FAILPOINT("storage/csv/read-file");
        std::ifstream in(path, std::ios::binary);
        if (!in) return Status::NotFound("cannot open '" + path + "'");
        std::ostringstream buf;
        buf << in.rdbuf();
        if (torn) {
          // A partial-result fault models a torn read. The byte count
          // mismatch is *detected*, classified transient, and retried —
          // truncated data must never reach the parser as if complete.
          return Status::Unavailable("short read of '" + path +
                                     "' (injected partial result)");
        }
        return buf.str();
      });
  AQUA_RETURN_NOT_OK(text.status());
  return Parse(*text, schema);
}

std::string Csv::Format(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) out += ',';
    out += schema.attribute(i).name;
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ',';
      out += EncodeField(table.GetValue(r, c));
    }
    out += '\n';
  }
  return out;
}

Status Csv::WriteFile(const Table& table, const std::string& path,
                      const fault::RetryPolicy& retry) {
  const std::string text = Format(table);
  return fault::WithRetry(retry, "csv-write", [&]() -> Status {
    AQUA_FAILPOINT("storage/csv/write-file");
    std::ofstream out(path, std::ios::binary);
    if (!out) return Status::InvalidArgument("cannot open '" + path +
                                             "' for writing");
    out << text;
    if (!out) return Status::Internal("write to '" + path + "' failed");
    return Status::OK();
  });
}

}  // namespace aqua
