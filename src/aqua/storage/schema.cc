#include "aqua/storage/schema.h"

#include "aqua/common/string_util.h"

namespace aqua {

Result<Schema> Schema::Make(std::vector<Attribute> attributes) {
  for (size_t i = 0; i < attributes.size(); ++i) {
    const Attribute& attr = attributes[i];
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute " + std::to_string(i) +
                                     " has an empty name");
    }
    if (attr.type == ValueType::kNull) {
      return Status::InvalidArgument("attribute '" + attr.name +
                                     "' cannot be typed null");
    }
    for (size_t j = 0; j < i; ++j) {
      if (EqualsIgnoreCase(attributes[j].name, attr.name)) {
        return Status::InvalidArgument("duplicate attribute name '" +
                                       attr.name + "'");
      }
    }
  }
  Schema schema;
  schema.attributes_ = std::move(attributes);
  return schema;
}

Result<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (EqualsIgnoreCase(attributes_[i].name, name)) return i;
  }
  return Status::NotFound("no attribute named '" + std::string(name) + "'");
}

bool Schema::Contains(std::string_view name) const {
  return IndexOf(name).ok();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += " ";
    out += ValueTypeToString(attributes_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace aqua
