#include "aqua/storage/table.h"

#include <cassert>

namespace aqua {

Column::Column(ValueType type) : type_(type) {
  assert(type != ValueType::kNull);
}

void Column::GrowNulls(bool is_null) {
  if (is_null && nulls_.empty()) {
    nulls_.assign(size_, 0);  // backfill: everything so far was non-null
  }
  if (is_null || !nulls_.empty()) {
    nulls_.push_back(is_null ? 1 : 0);
  }
  has_nulls_ = has_nulls_ || is_null;
}

Status Column::Append(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return Status::OK();
  }
  if (value.type() != type_) {
    return Status::InvalidArgument(
        std::string("cannot append ") +
        std::string(ValueTypeToString(value.type())) + " to " +
        std::string(ValueTypeToString(type_)) + " column");
  }
  switch (type_) {
    case ValueType::kInt64:
      AppendInt64(value.int64());
      break;
    case ValueType::kDouble:
      AppendDouble(value.dbl());
      break;
    case ValueType::kString:
      AppendString(value.str());
      break;
    case ValueType::kDate:
      AppendDate(value.date());
      break;
    case ValueType::kNull:
      return Status::Internal("null-typed column");
  }
  return Status::OK();
}

void Column::AppendInt64(int64_t v) {
  assert(type_ == ValueType::kInt64);
  GrowNulls(false);
  ints_.push_back(v);
  ++size_;
}

void Column::AppendDouble(double v) {
  assert(type_ == ValueType::kDouble);
  GrowNulls(false);
  doubles_.push_back(v);
  ++size_;
}

void Column::AppendString(std::string v) {
  assert(type_ == ValueType::kString);
  GrowNulls(false);
  strings_.push_back(std::move(v));
  ++size_;
}

void Column::AppendDate(Date v) {
  assert(type_ == ValueType::kDate);
  GrowNulls(false);
  dates_.push_back(v.days_since_epoch());
  ++size_;
}

void Column::AppendNull() {
  GrowNulls(true);
  switch (type_) {
    case ValueType::kInt64:
      ints_.push_back(0);
      break;
    case ValueType::kDouble:
      doubles_.push_back(0.0);
      break;
    case ValueType::kString:
      strings_.emplace_back();
      break;
    case ValueType::kDate:
      dates_.push_back(0);
      break;
    case ValueType::kNull:
      break;
  }
  ++size_;
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case ValueType::kInt64:
      ints_.reserve(n);
      break;
    case ValueType::kDouble:
      doubles_.reserve(n);
      break;
    case ValueType::kString:
      strings_.reserve(n);
      break;
    case ValueType::kDate:
      dates_.reserve(n);
      break;
    case ValueType::kNull:
      break;
  }
}

Value Column::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case ValueType::kInt64:
      return Value::Int64(ints_[row]);
    case ValueType::kDouble:
      return Value::Double(doubles_[row]);
    case ValueType::kString:
      return Value::String(strings_[row]);
    case ValueType::kDate:
      return Value::FromDate(Date(dates_[row]));
    case ValueType::kNull:
      break;
  }
  return Value::Null();
}

double Column::NumericAt(size_t row) const {
  switch (type_) {
    case ValueType::kInt64:
      return static_cast<double>(ints_[row]);
    case ValueType::kDouble:
      return doubles_[row];
    case ValueType::kDate:
      return static_cast<double>(dates_[row]);
    default:
      assert(false && "NumericAt on non-numeric column");
      return 0.0;
  }
}

Result<Table> Table::Make(Schema schema, std::vector<Column> columns) {
  if (columns.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "column count " + std::to_string(columns.size()) +
        " does not match schema arity " +
        std::to_string(schema.num_attributes()));
  }
  size_t rows = columns.empty() ? 0 : columns[0].size();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].type() != schema.attribute(i).type) {
      return Status::InvalidArgument("column " + std::to_string(i) +
                                     " type mismatch for attribute '" +
                                     schema.attribute(i).name + "'");
    }
    if (columns[i].size() != rows) {
      return Status::InvalidArgument("ragged columns: column " +
                                     std::to_string(i) + " has " +
                                     std::to_string(columns[i].size()) +
                                     " rows, expected " +
                                     std::to_string(rows));
    }
  }
  Table t;
  t.schema_ = std::move(schema);
  t.columns_ = std::move(columns);
  t.num_rows_ = rows;
  return t;
}

Table Table::Empty(Schema schema) {
  Table t;
  for (const Attribute& attr : schema.attributes()) {
    t.columns_.emplace_back(attr.type);
  }
  t.schema_ = std::move(schema);
  t.num_rows_ = 0;
  return t;
}

Result<const Column*> Table::ColumnByName(std::string_view name) const {
  AQUA_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(name));
  return &columns_[idx];
}

std::string Table::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < schema_.num_attributes(); ++i) {
    if (i > 0) out += " | ";
    out += schema_.attribute(i).name;
  }
  out += "\n";
  const size_t shown = std::min(max_rows, num_rows_);
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += " | ";
      out += GetValue(r, c).ToString();
    }
    out += "\n";
  }
  if (shown < num_rows_) {
    out += "... (" + std::to_string(num_rows_ - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace aqua
