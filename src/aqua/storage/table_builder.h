#ifndef AQUA_STORAGE_TABLE_BUILDER_H_
#define AQUA_STORAGE_TABLE_BUILDER_H_

#include <vector>

#include "aqua/common/result.h"
#include "aqua/common/value.h"
#include "aqua/storage/table.h"

namespace aqua {

/// Row-oriented convenience builder for `Table`.
///
/// Generators that care about throughput should append to typed `Column`s
/// directly and call `Table::Make`; this builder is for examples, tests,
/// and small fixtures where a row-of-values API reads better.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema);

  /// Appends one row; `values` must match the schema arity and each value
  /// must be NULL or match the attribute type.
  Status AppendRow(const std::vector<Value>& values);

  /// Reserves room for `n` rows in every column.
  void Reserve(size_t n);

  size_t num_rows() const { return num_rows_; }

  /// Consumes the builder and returns the finished table.
  Result<Table> Finish() &&;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace aqua

#endif  // AQUA_STORAGE_TABLE_BUILDER_H_
