#include "aqua/storage/table_builder.h"

namespace aqua {

TableBuilder::TableBuilder(Schema schema) : schema_(std::move(schema)) {
  for (const Attribute& attr : schema_.attributes()) {
    columns_.emplace_back(attr.type);
  }
}

Status TableBuilder::AppendRow(const std::vector<Value>& values) {
  if (values.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) +
        " does not match schema arity " +
        std::to_string(schema_.num_attributes()));
  }
  // Validate the whole row first so a failed append leaves columns aligned.
  for (size_t i = 0; i < values.size(); ++i) {
    if (!values[i].is_null() &&
        values[i].type() != schema_.attribute(i).type) {
      return Status::InvalidArgument(
          "value " + values[i].ToString() + " does not fit attribute '" +
          schema_.attribute(i).name + "' of type " +
          std::string(ValueTypeToString(schema_.attribute(i).type)));
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    AQUA_RETURN_NOT_OK(columns_[i].Append(values[i]));
  }
  ++num_rows_;
  return Status::OK();
}

void TableBuilder::Reserve(size_t n) {
  for (Column& col : columns_) col.Reserve(n);
}

Result<Table> TableBuilder::Finish() && {
  return Table::Make(std::move(schema_), std::move(columns_));
}

}  // namespace aqua
