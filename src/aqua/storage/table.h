#ifndef AQUA_STORAGE_TABLE_H_
#define AQUA_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "aqua/common/result.h"
#include "aqua/common/value.h"
#include "aqua/storage/schema.h"

namespace aqua {

/// A single typed column with optional nulls.
///
/// Storage is a plain typed vector plus a byte-per-row null mask (only
/// allocated once the first null is appended), so the by-tuple algorithms —
/// which are pure column scans — run over contiguous memory.
class Column {
 public:
  /// Creates an empty column of the given type (must not be kNull).
  explicit Column(ValueType type = ValueType::kDouble);

  ValueType type() const { return type_; }
  size_t size() const { return size_; }

  /// Appends a value. NULL is always accepted; otherwise the value's type
  /// must match the column type exactly.
  Status Append(const Value& value);

  /// Typed fast-path appends; the value type must match the column type
  /// (checked with assert in debug builds only).
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendDate(Date v);
  void AppendNull();

  /// Pre-allocates capacity for `n` rows.
  void Reserve(size_t n);

  bool IsNull(size_t row) const {
    return !nulls_.empty() && nulls_[row] != 0;
  }
  bool has_nulls() const { return has_nulls_; }

  /// Generic accessor; materialises a `Value`.
  Value GetValue(size_t row) const;

  /// Typed accessors; the row must be non-null and the type must match.
  int64_t Int64At(size_t row) const { return ints_[row]; }
  double DoubleAt(size_t row) const { return doubles_[row]; }
  const std::string& StringAt(size_t row) const { return strings_[row]; }
  Date DateAt(size_t row) const { return Date(dates_[row]); }

  /// Numeric view of a non-null cell: int64 and date widen to double.
  /// Must only be called on int64/double/date columns.
  double NumericAt(size_t row) const;

  /// Direct access to the underlying typed vector for scan loops.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<int32_t>& date_days() const { return dates_; }
  const std::vector<std::string>& strings() const { return strings_; }

 private:
  void GrowNulls(bool is_null);

  ValueType type_;
  size_t size_ = 0;
  bool has_nulls_ = false;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<int32_t> dates_;  // days since epoch
  std::vector<uint8_t> nulls_;  // lazily sized; empty means "no nulls yet"
};

/// An immutable-by-convention relational table: a `Schema` plus one
/// `Column` per attribute, all the same length.
class Table {
 public:
  Table() = default;

  /// Validates that `columns` match the schema arity and types and share a
  /// common length.
  static Result<Table> Make(Schema schema, std::vector<Column> columns);

  /// Creates an empty table with one empty column per schema attribute.
  static Table Empty(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }

  /// The column backing attribute `name` (case-insensitive).
  Result<const Column*> ColumnByName(std::string_view name) const;

  /// Cell accessor; materialises a `Value`.
  Value GetValue(size_t row, size_t col) const {
    return columns_[col].GetValue(row);
  }

  /// Renders up to `max_rows` rows as an aligned ASCII table (debugging,
  /// examples).
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace aqua

#endif  // AQUA_STORAGE_TABLE_H_
