#ifndef AQUA_STORAGE_SCHEMA_H_
#define AQUA_STORAGE_SCHEMA_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "aqua/common/result.h"
#include "aqua/common/value.h"

namespace aqua {

/// A named, typed attribute (column) of a relation schema.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kNull;

  friend bool operator==(const Attribute&, const Attribute&) = default;
};

/// An ordered list of uniquely named attributes.
///
/// Attribute names are matched case-insensitively, following SQL identifier
/// rules — the paper freely mixes `auctionID` / `auction` spellings across
/// its examples.
class Schema {
 public:
  /// Empty schema; useful as a placeholder before assignment.
  Schema() = default;

  /// Validates that names are non-empty and unique (case-insensitively) and
  /// that no attribute is typed kNull.
  static Result<Schema> Make(std::vector<Attribute> attributes);

  size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute named `name` (case-insensitive), or kNotFound.
  Result<size_t> IndexOf(std::string_view name) const;

  /// True iff an attribute named `name` exists.
  bool Contains(std::string_view name) const;

  /// "(name type, ...)".
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.attributes_ == b.attributes_;
  }

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace aqua

#endif  // AQUA_STORAGE_SCHEMA_H_
