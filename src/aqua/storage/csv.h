#ifndef AQUA_STORAGE_CSV_H_
#define AQUA_STORAGE_CSV_H_

#include <iosfwd>
#include <string>

#include "aqua/common/result.h"
#include "aqua/fault/retry.h"
#include "aqua/storage/table.h"

namespace aqua {

/// Minimal CSV bridge for moving fixtures and generated workloads in and
/// out of the engine.
///
/// Dialect: comma separator, optional double-quote quoting with `""`
/// escapes, first line is a header of attribute names. Typed parsing is
/// driven by an explicit schema; the empty unquoted field is NULL.
class Csv {
 public:
  /// Parses CSV text against `schema`. The header must name exactly the
  /// schema's attributes (case-insensitive, any order); columns are
  /// reordered to schema order. A UTF-8 byte-order mark before the header
  /// and CRLF line endings (including on the header row) are tolerated.
  static Result<Table> Parse(std::string_view text, const Schema& schema);

  /// Reads and parses the file at `path`. Transient (`kUnavailable`) read
  /// failures — in practice, injected ones; see failpoint
  /// `storage/csv/read-file` — are retried under `retry`.
  static Result<Table> ReadFile(
      const std::string& path, const Schema& schema,
      const fault::RetryPolicy& retry = fault::RetryPolicy());

  /// Serialises `table` (header + rows). Strings are quoted only when they
  /// contain the separator, quotes, or newlines; NULL serialises as the
  /// empty field; dates as ISO "YYYY-MM-DD".
  static std::string Format(const Table& table);

  /// Writes `Format(table)` to `path`, retrying transient failures under
  /// `retry` (failpoint `storage/csv/write-file`).
  static Status WriteFile(
      const Table& table, const std::string& path,
      const fault::RetryPolicy& retry = fault::RetryPolicy());
};

}  // namespace aqua

#endif  // AQUA_STORAGE_CSV_H_
