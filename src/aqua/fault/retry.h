#ifndef AQUA_FAULT_RETRY_H_
#define AQUA_FAULT_RETRY_H_

#include <cstdint>
#include <string_view>
#include <utility>

#include "aqua/common/result.h"
#include "aqua/common/status.h"

namespace aqua::fault {

/// Whether `status` belongs to the transient class the retry layer is
/// allowed to retry. Exactly `kUnavailable`: every other code either means
/// the operation can never succeed as issued (invalid-argument, not-found,
/// unimplemented...) or that the caller's resource envelope is the thing
/// that failed (deadline, budget, cancellation) and retrying would only
/// spend more of it.
inline bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

/// Capped exponential backoff with deterministic jitter for transient
/// (`kUnavailable`) failures, in the style of cloud-client retry stacks.
///
/// Attempt k (1-based) sleeps `min(initial_backoff_ms * multiplier^(k-1),
/// max_backoff_ms)` scaled by a jitter factor in [0.5, 1.0) drawn from a
/// SplitMix64 stream seeded with `jitter_seed ^ hash(op) ^ k` — so two runs
/// with the same seed back off identically (chaos runs are reproducible)
/// while concurrent ops with different names decorrelate.
///
/// Each attempt and each exhaustion is visible in the default metrics
/// registry as `aqua_retry_attempts_total{op=...}` and
/// `aqua_retry_exhausted_total{op=...}`.
struct RetryPolicy {
  /// Total tries, including the first; 1 disables retrying.
  int max_attempts = 3;
  int64_t initial_backoff_ms = 1;
  int64_t max_backoff_ms = 100;
  double multiplier = 2.0;
  uint64_t jitter_seed = 0x9E3779B97F4A7C15ULL;

  /// A policy that never retries (and never sleeps); for callers that want
  /// one code path with retrying switched off.
  static RetryPolicy None() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }
};

namespace internal {

/// Non-template helpers so the metric lookups and the sleep are not
/// re-instantiated per callable. `attempt` is 1-based.
void RecordAttempt(std::string_view op);
void RecordExhausted(std::string_view op);
void BackoffSleep(const RetryPolicy& policy, std::string_view op,
                  int attempt);

inline const Status& GetStatus(const Status& s) { return s; }
// By value: Result<T>::status() materialises a temporary, so a reference
// return would dangle.
template <typename T>
Status GetStatus(const Result<T>& r) {
  return r.status();
}

}  // namespace internal

/// Runs `fn` (returning `Status` or `Result<T>`) up to
/// `policy.max_attempts` times, sleeping between attempts, until it
/// succeeds or fails with a non-transient code. Returns the last outcome;
/// a transient failure that survives every attempt is returned as-is (the
/// caller sees the real `kUnavailable`, plus one
/// `aqua_retry_exhausted_total` increment). `op` names the operation in
/// metrics and must be a stable literal like "csv-read".
template <typename Fn>
auto WithRetry(const RetryPolicy& policy, std::string_view op, Fn&& fn)
    -> decltype(fn()) {
  const int attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  for (int attempt = 1;; ++attempt) {
    internal::RecordAttempt(op);
    auto outcome = fn();
    const Status& status = internal::GetStatus(outcome);
    if (status.ok() || !IsTransient(status)) return outcome;
    if (attempt >= attempts) {
      internal::RecordExhausted(op);
      return outcome;
    }
    internal::BackoffSleep(policy, op, attempt);
  }
}

}  // namespace aqua::fault

#endif  // AQUA_FAULT_RETRY_H_
