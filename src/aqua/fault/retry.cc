#include "aqua/fault/retry.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "aqua/common/random.h"
#include "aqua/obs/metrics.h"

namespace aqua::fault::internal {
namespace {

uint64_t HashOp(std::string_view op) {
  // FNV-1a; only used to decorrelate jitter streams between ops.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : op) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

void RecordAttempt(std::string_view op) {
  obs::MetricsRegistry::Default()
      .GetCounter("aqua_retry_attempts_total", {{"op", std::string(op)}})
      .Increment();
}

void RecordExhausted(std::string_view op) {
  obs::MetricsRegistry::Default()
      .GetCounter("aqua_retry_exhausted_total", {{"op", std::string(op)}})
      .Increment();
}

void BackoffSleep(const RetryPolicy& policy, std::string_view op,
                  int attempt) {
  double backoff = static_cast<double>(policy.initial_backoff_ms);
  for (int i = 1; i < attempt; ++i) backoff *= policy.multiplier;
  backoff = std::min(backoff, static_cast<double>(policy.max_backoff_ms));
  // Jitter factor in [0.5, 1.0): halves the worst-case synchronization
  // between concurrent retriers without ever sleeping longer than the cap.
  const uint64_t draw = SplitMix64(policy.jitter_seed ^ HashOp(op) ^
                                   static_cast<uint64_t>(attempt));
  const double jitter =
      0.5 + 0.5 * (static_cast<double>(draw >> 11) * 0x1.0p-53);
  const auto sleep_ms = static_cast<int64_t>(backoff * jitter);
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
}

}  // namespace aqua::fault::internal
