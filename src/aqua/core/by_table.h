#ifndef AQUA_CORE_BY_TABLE_H_
#define AQUA_CORE_BY_TABLE_H_

#include <vector>

#include "aqua/core/answer.h"
#include "aqua/mapping/p_mapping.h"
#include "aqua/query/ast.h"
#include "aqua/storage/table.h"

namespace aqua {

/// The generic by-table algorithm (paper Figure 1, `ByTableAggregateQuery`):
/// reformulate the query once per candidate mapping, execute each
/// reformulation against the source, and combine the per-mapping scalars
/// according to the requested aggregate semantics.
///
/// All three aggregate semantics are PTIME here for every operator: the
/// loop does l reformulations and l scans.
class ByTable {
 public:
  /// Answers an ungrouped query. Fails with kInvalidArgument if the
  /// aggregate is undefined (empty qualifying set for SUM/AVG/MIN/MAX)
  /// under any candidate mapping — there is then no single scalar to
  /// combine.
  static Result<AggregateAnswer> Answer(const AggregateQuery& query,
                                        const PMapping& pmapping,
                                        const Table& source,
                                        AggregateSemantics semantics);

  /// Answers a grouped query. Groups are aligned across mappings by group
  /// value. A group absent under some mapping (possible when the GROUP BY
  /// attribute is itself uncertain, or when WHERE filters all its rows)
  /// contributes nothing for that mapping: ranges hull over the mappings
  /// where the group exists, distribution entries carry the joint mass
  /// Pr(mapping) and may total < 1, and expected values condition on the
  /// group existing.
  static Result<std::vector<GroupedAnswer>> AnswerGrouped(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source, AggregateSemantics semantics);

  /// Answers the nested form (paper query Q2): the full nested query is
  /// evaluated deterministically once per candidate mapping.
  static Result<AggregateAnswer> AnswerNested(const NestedAggregateQuery& query,
                                              const PMapping& pmapping,
                                              const Table& source,
                                              AggregateSemantics semantics);

  /// The paper's CombineResults: folds per-mapping results r_i with
  /// probabilities Pr(m_i) into a range, a distribution, or an expected
  /// value. Exposed for tests and for Theorem 4's by-tuple SUM shortcut.
  /// `probs` must be index-aligned with `results`; they need not sum to 1
  /// (see AnswerGrouped) — expected values divide by the total mass.
  static Result<AggregateAnswer> CombineResults(
      const std::vector<double>& results, const std::vector<double>& probs,
      AggregateSemantics semantics);
};

}  // namespace aqua

#endif  // AQUA_CORE_BY_TABLE_H_
