#include "aqua/core/by_table.h"

#include <map>
#include <optional>
#include <string>

#include "aqua/obs/trace.h"
#include "aqua/query/executor.h"
#include "aqua/reformulate/reformulator.h"

namespace aqua {

Result<AggregateAnswer> ByTable::CombineResults(
    const std::vector<double>& results, const std::vector<double>& probs,
    AggregateSemantics semantics) {
  if (results.empty()) {
    return Status::InvalidArgument("no per-mapping results to combine");
  }
  if (results.size() != probs.size()) {
    return Status::InvalidArgument("results/probabilities size mismatch");
  }
  switch (semantics) {
    case AggregateSemantics::kRange: {
      Interval range = Interval::Point(results[0]);
      for (double r : results) {
        range = Interval::Hull(range, Interval::Point(r));
      }
      return AggregateAnswer::MakeRange(range);
    }
    case AggregateSemantics::kDistribution: {
      Distribution d;
      for (size_t i = 0; i < results.size(); ++i) {
        d.AddMass(results[i], probs[i]);
      }
      return AggregateAnswer::MakeDistribution(std::move(d));
    }
    case AggregateSemantics::kExpectedValue: {
      double total_mass = 0.0;
      double acc = 0.0;
      for (size_t i = 0; i < results.size(); ++i) {
        acc += results[i] * probs[i];
        total_mass += probs[i];
      }
      if (total_mass <= 0.0) {
        return Status::InvalidArgument("zero total probability mass");
      }
      return AggregateAnswer::MakeExpected(acc / total_mass);
    }
  }
  return Status::Internal("corrupt semantics");
}

Result<AggregateAnswer> ByTable::Answer(const AggregateQuery& query,
                                        const PMapping& pmapping,
                                        const Table& source,
                                        AggregateSemantics semantics) {
  obs::TraceSpan span("ByTable::Answer");
  if (!query.group_by.empty()) {
    return Status::InvalidArgument(
        "grouped query passed to ByTable::Answer; use AnswerGrouped");
  }
  std::vector<double> results;
  std::vector<double> probs;
  results.reserve(pmapping.size());
  for (size_t i = 0; i < pmapping.size(); ++i) {
    AQUA_ASSIGN_OR_RETURN(
        AggregateQuery reformulated,
        Reformulator::Reformulate(query, pmapping.mapping(i)));
    AQUA_ASSIGN_OR_RETURN(std::optional<double> r,
                          Executor::ExecuteScalar(reformulated, source));
    if (!r.has_value()) {
      return Status::InvalidArgument(
          "aggregate is undefined (empty qualifying set) under candidate "
          "mapping " +
          std::to_string(i) + ": " + pmapping.mapping(i).ToString());
    }
    results.push_back(*r);
    probs.push_back(pmapping.probability(i));
  }
  return CombineResults(results, probs, semantics);
}

Result<std::vector<GroupedAnswer>> ByTable::AnswerGrouped(
    const AggregateQuery& query, const PMapping& pmapping,
    const Table& source, AggregateSemantics semantics) {
  obs::TraceSpan span("ByTable::AnswerGrouped");
  if (query.group_by.empty()) {
    return Status::InvalidArgument(
        "ungrouped query passed to ByTable::AnswerGrouped; use Answer");
  }
  // Aligned per-group accumulation across mappings, keyed by the rendered
  // group value (exact for int64/date/string groups).
  struct PerGroup {
    Value group;
    std::vector<double> results;
    std::vector<double> probs;
  };
  std::map<std::string, PerGroup> groups;
  std::vector<std::string> order;  // first-seen group order

  for (size_t i = 0; i < pmapping.size(); ++i) {
    AQUA_ASSIGN_OR_RETURN(
        AggregateQuery reformulated,
        Reformulator::Reformulate(query, pmapping.mapping(i)));
    AQUA_ASSIGN_OR_RETURN(std::vector<Executor::GroupResult> rows,
                          Executor::ExecuteGrouped(reformulated, source));
    for (const Executor::GroupResult& row : rows) {
      const std::string key = row.group.ToString();
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) {
        it->second.group = row.group;
        order.push_back(key);
      }
      it->second.results.push_back(row.value);
      it->second.probs.push_back(pmapping.probability(i));
    }
  }

  std::vector<GroupedAnswer> out;
  out.reserve(order.size());
  for (const std::string& key : order) {
    PerGroup& pg = groups[key];
    AQUA_ASSIGN_OR_RETURN(AggregateAnswer answer,
                          CombineResults(pg.results, pg.probs, semantics));
    out.push_back(GroupedAnswer{std::move(pg.group), std::move(answer)});
  }
  return out;
}

Result<AggregateAnswer> ByTable::AnswerNested(
    const NestedAggregateQuery& query, const PMapping& pmapping,
    const Table& source, AggregateSemantics semantics) {
  obs::TraceSpan span("ByTable::AnswerNested");
  std::vector<double> results;
  std::vector<double> probs;
  results.reserve(pmapping.size());
  for (size_t i = 0; i < pmapping.size(); ++i) {
    AQUA_ASSIGN_OR_RETURN(
        NestedAggregateQuery reformulated,
        Reformulator::ReformulateNested(query, pmapping.mapping(i)));
    AQUA_ASSIGN_OR_RETURN(std::optional<double> r,
                          Executor::ExecuteNested(reformulated, source));
    if (!r.has_value()) {
      return Status::InvalidArgument(
          "nested aggregate is undefined under candidate mapping " +
          std::to_string(i));
    }
    results.push_back(*r);
    probs.push_back(pmapping.probability(i));
  }
  return CombineResults(results, probs, semantics);
}

}  // namespace aqua
