#ifndef AQUA_CORE_ANSWER_H_
#define AQUA_CORE_ANSWER_H_

#include <string>

#include "aqua/common/interval.h"
#include "aqua/common/value.h"
#include "aqua/obs/query_stats.h"
#include "aqua/prob/distribution.h"

namespace aqua {

/// How mapping uncertainty is interpreted (Dong, Halevy & Yu; paper §III-A).
enum class MappingSemantics {
  /// One candidate mapping applies to the whole relation.
  kByTable,
  /// A candidate mapping is chosen independently for every tuple.
  kByTuple,
};

/// What shape of answer an aggregate query returns (paper §III-B).
enum class AggregateSemantics {
  /// The tight interval [min(V), max(V)] of possible answers.
  kRange,
  /// Every possible answer with its probability (Equation 1).
  kDistribution,
  /// The single number E[answer] (Equation 2).
  kExpectedValue,
};

std::string_view MappingSemanticsToString(MappingSemantics s);
std::string_view AggregateSemanticsToString(AggregateSemantics s);

/// The answer to an aggregate query under one of the six semantics. A
/// tagged union: exactly the member selected by `semantics` is meaningful.
struct AggregateAnswer {
  AggregateSemantics semantics = AggregateSemantics::kExpectedValue;
  Interval range;             // when semantics == kRange
  Distribution distribution;  // when semantics == kDistribution
  double expected_value = 0;  // when semantics == kExpectedValue

  /// True when the answer is an approximation rather than the exact value
  /// of the requested semantics — e.g. the engine degraded an exact
  /// computation that blew its resource budget to Monte-Carlo sampling.
  bool approximate = false;

  /// When `approximate`, why and how: the degradation reason and estimator
  /// diagnostics (sample count, standard error). Empty otherwise.
  std::string note;

  /// Execution statistics, populated by Engine::Answer* (algorithm cell,
  /// wall time, steps/bytes charged, degradation details). Left
  /// default-initialised by the algorithm classes when called directly.
  QueryStats stats;

  static AggregateAnswer MakeRange(Interval r);
  static AggregateAnswer MakeDistribution(Distribution d);
  static AggregateAnswer MakeExpected(double v);

  /// Human-readable rendering of the active member; approximate answers
  /// are annotated with the degradation note.
  std::string ToString() const;
};

/// One group's answer of a grouped aggregate query.
struct GroupedAnswer {
  Value group;
  AggregateAnswer answer;
};

}  // namespace aqua

#endif  // AQUA_CORE_ANSWER_H_
