#ifndef AQUA_CORE_SAMPLER_H_
#define AQUA_CORE_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "aqua/common/exec_context.h"
#include "aqua/common/interval.h"
#include "aqua/exec/parallel.h"
#include "aqua/mapping/p_mapping.h"
#include "aqua/prob/distribution.h"
#include "aqua/query/ast.h"
#include "aqua/storage/table.h"

namespace aqua {

/// Monte-Carlo configuration.
struct SamplerOptions {
  /// Number of i.i.d. mapping sequences to draw.
  size_t num_samples = 10000;

  /// RNG seed; fixed by default so estimates are reproducible.
  uint64_t seed = 0xA9A9A9A9ULL;

  /// When the execution budget (deadline / steps / bytes) runs out
  /// mid-sampling and at least this many samples were drawn (in total,
  /// across all chunks), return the partial estimate (flagged `truncated`)
  /// instead of the budget error — this is what makes sampling a
  /// graceful-degradation target. Below the floor the estimate is
  /// statistically worthless and the error propagates. Cancellation always
  /// propagates.
  size_t min_samples_on_budget = 100;
};

/// A sampled approximation of a by-tuple answer.
struct SampledAnswer {
  /// Empirical distribution over the *defined* outcomes, normalised by the
  /// total sample count (so its mass is the defined fraction).
  Distribution empirical;

  /// Mean over defined samples.
  double expected = 0.0;

  /// Standard error of `expected` (sample stddev / sqrt(#defined)).
  double std_error = 0.0;

  /// Hull of the observed outcomes — a lower bound (inner approximation)
  /// of the true by-tuple range.
  Interval observed_range;

  /// Samples actually drawn — less than the requested count when the
  /// execution budget truncated the run.
  size_t num_samples = 0;
  size_t undefined_samples = 0;

  /// True when the run stopped early on budget exhaustion (see
  /// `SamplerOptions::min_samples_on_budget`).
  bool truncated = false;
};

/// Sampling estimator for by-tuple distribution / expected-value semantics
/// of SUM, AVG, MIN, MAX (and COUNT, though exact PTIME algorithms exist
/// there) — the method the paper's future-work section proposes for the
/// semantics it leaves open.
///
/// Each sample draws one candidate mapping per tuple (independently, per
/// the by-tuple model) via an alias-method sampler and evaluates the
/// aggregate over a precomputed per-(tuple, mapping) grid, so per-sample
/// cost is O(n) regardless of predicate complexity.
///
/// The sample space is split into fixed chunks and chunk i draws from its
/// own RNG stream seeded `SplitMix64(options.seed ^ i)`; the chunking is a
/// pure function of `num_samples`, so the estimate is identical at every
/// thread count (and a fixed seed is reproducible, as before).
class ByTupleSampler {
 public:
  static Result<SampledAnswer> Sample(const AggregateQuery& query,
                                      const PMapping& pmapping,
                                      const Table& source,
                                      const SamplerOptions& options = {},
                                      const std::vector<uint32_t>* rows =
                                          nullptr,
                                      ExecContext* ctx = nullptr,
                                      const exec::ExecPolicy& policy = {});
};

}  // namespace aqua

#endif  // AQUA_CORE_SAMPLER_H_
