#include "aqua/core/sampler.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "aqua/common/random.h"
#include "aqua/core/by_tuple_common.h"
#include "aqua/obs/trace.h"
#include "aqua/prob/discrete_sampler.h"

namespace aqua {

Result<SampledAnswer> ByTupleSampler::Sample(const AggregateQuery& query,
                                             const PMapping& pmapping,
                                             const Table& source,
                                             const SamplerOptions& options,
                                             const std::vector<uint32_t>* rows,
                                             ExecContext* ctx) {
  obs::TraceSpan span("ByTupleSampler::Sample");
  if (options.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  if (query.distinct && query.func != AggregateFunction::kMin &&
      query.func != AggregateFunction::kMax) {
    return Status::Unimplemented(
        "sampling does not support DISTINCT except for MIN/MAX");
  }
  AQUA_ASSIGN_OR_RETURN(
      by_tuple_internal::TupleMappingGrid grid,
      by_tuple_internal::BuildTupleMappingGrid(query, pmapping, source, rows));
  AQUA_ASSIGN_OR_RETURN(DiscreteSampler mapping_sampler,
                        DiscreteSampler::Make(grid.prob));
  AQUA_RETURN_NOT_OK(ExecCheckNow(ctx));
  Rng rng(options.seed);

  SampledAnswer out;
  double sum_outcomes = 0.0;
  double sum_sq = 0.0;
  bool have_outcome = false;
  // Accumulate raw frequencies in a hash map (continuous aggregates make
  // most outcomes distinct, and per-sample sorted insertion would be
  // quadratic); normalise by the number of samples actually drawn at the
  // end, so a budget-truncated run still yields a proper distribution.
  std::unordered_map<double, size_t> freq;

  size_t drawn = 0;
  for (size_t s = 0; s < options.num_samples; ++s) {
    // One step per tuple visited; a sample is the unit of truncation.
    const Status budget = ExecCharge(ctx, grid.n + 1);
    if (!budget.ok()) {
      if (budget.code() != StatusCode::kCancelled &&
          drawn >= options.min_samples_on_budget) {
        out.truncated = true;
        break;
      }
      return budget;
    }
    ++drawn;
    int64_t count = 0;
    double sum = 0.0;
    double mn = 0.0, mx = 0.0;
    for (size_t i = 0; i < grid.n; ++i) {
      const size_t j = mapping_sampler.Sample(rng);
      if (!grid.Sat(i, j)) continue;
      const double v = grid.Val(i, j);
      ++count;
      sum += v;
      if (count == 1) {
        mn = mx = v;
      } else {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
    }
    double outcome = 0.0;
    bool defined = true;
    switch (query.func) {
      case AggregateFunction::kCount:
        outcome = static_cast<double>(count);
        break;
      case AggregateFunction::kSum:
        outcome = sum;
        break;
      case AggregateFunction::kAvg:
        defined = count > 0;
        if (defined) outcome = sum / static_cast<double>(count);
        break;
      case AggregateFunction::kMin:
        defined = count > 0;
        outcome = mn;
        break;
      case AggregateFunction::kMax:
        defined = count > 0;
        outcome = mx;
        break;
    }
    if (!defined) {
      ++out.undefined_samples;
      continue;
    }
    freq[outcome] += 1;
    sum_outcomes += outcome;
    sum_sq += outcome * outcome;
    if (!have_outcome) {
      out.observed_range = Interval::Point(outcome);
      have_outcome = true;
    } else {
      out.observed_range = Interval::Hull(out.observed_range,
                                          Interval::Point(outcome));
    }
  }

  out.num_samples = drawn;
  const size_t defined = drawn - out.undefined_samples;
  if (defined == 0) {
    return Status::InvalidArgument(
        "every sampled sequence left the aggregate undefined");
  }
  std::vector<Distribution::Entry> entries;
  entries.reserve(freq.size());
  for (const auto& [outcome, count] : freq) {
    entries.push_back(Distribution::Entry{
        outcome, static_cast<double>(count) / static_cast<double>(drawn)});
  }
  AQUA_ASSIGN_OR_RETURN(out.empirical,
                        Distribution::FromEntries(std::move(entries)));
  const double nd = static_cast<double>(defined);
  out.expected = sum_outcomes / nd;
  const double variance =
      std::max(0.0, sum_sq / nd - out.expected * out.expected);
  out.std_error = defined > 1 ? std::sqrt(variance / nd) : 0.0;
  return out;
}

}  // namespace aqua
