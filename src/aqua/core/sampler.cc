#include "aqua/core/sampler.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "aqua/common/check.h"
#include "aqua/common/failpoint.h"
#include "aqua/common/random.h"
#include "aqua/core/by_tuple_common.h"
#include "aqua/obs/trace.h"
#include "aqua/prob/discrete_sampler.h"

namespace aqua {
namespace {

/// Samples per RNG chunk. Fixed, so the set of per-chunk streams — and
/// therefore the estimate — depends only on (num_samples, seed), never on
/// the thread count.
constexpr size_t kSampleChunk = 1024;

/// Per-chunk accumulator. Merged left-to-right in chunk-index order, which
/// fixes the floating-point reduction order across thread counts.
struct SampleAccum {
  size_t drawn = 0;
  size_t undefined = 0;
  double sum_outcomes = 0.0;
  double sum_sq = 0.0;
  bool have_outcome = false;
  Interval observed_range;
  std::unordered_map<double, size_t> freq;
  /// Non-OK when this chunk's budget share ran out after `drawn` samples;
  /// the merge decides between truncation and propagating the error.
  Status stop;
};

}  // namespace

Result<SampledAnswer> ByTupleSampler::Sample(const AggregateQuery& query,
                                             const PMapping& pmapping,
                                             const Table& source,
                                             const SamplerOptions& options,
                                             const std::vector<uint32_t>* rows,
                                             ExecContext* ctx,
                                             const exec::ExecPolicy& policy) {
  obs::TraceSpan span("ByTupleSampler::Sample");
  AQUA_FAILPOINT("core/sampler/run");
  if (ParanoidChecksEnabled()) pmapping.CheckInvariants();
  if (options.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  if (query.distinct && query.func != AggregateFunction::kMin &&
      query.func != AggregateFunction::kMax) {
    return Status::Unimplemented(
        "sampling does not support DISTINCT except for MIN/MAX");
  }
  AQUA_ASSIGN_OR_RETURN(
      by_tuple_internal::TupleMappingGrid grid,
      by_tuple_internal::BuildTupleMappingGrid(query, pmapping, source, rows));
  AQUA_ASSIGN_OR_RETURN(DiscreteSampler mapping_sampler,
                        DiscreteSampler::Make(grid.prob));
  AQUA_RETURN_NOT_OK(ExecCheckNow(ctx));

  const size_t num_chunks =
      (options.num_samples + kSampleChunk - 1) / kSampleChunk;
  std::vector<SampleAccum> slots(num_chunks);
  AQUA_RETURN_NOT_OK(exec::ParallelFor(
      policy, options.num_samples, kSampleChunk, ctx,
      [&](const exec::Chunk& chunk, ExecContext* child) -> Status {
        SampleAccum& acc = slots[chunk.index];
        // Independent stream per chunk: reproducible for a fixed seed and
        // identical however many workers drain the chunks.
        Rng rng(SplitMix64(options.seed ^
                           static_cast<uint64_t>(chunk.index)));
        for (size_t s = chunk.begin; s < chunk.end; ++s) {
          // One step per tuple visited; a sample is the unit of truncation.
          const Status budget = ExecCharge(child, grid.n + 1);
          if (!budget.ok()) {
            if (budget.code() == StatusCode::kCancelled) return budget;
            acc.stop = budget;
            return Status::OK();  // partial chunk; the merge decides
          }
          ++acc.drawn;
          int64_t count = 0;
          double sum = 0.0;
          double mn = 0.0, mx = 0.0;
          for (size_t i = 0; i < grid.n; ++i) {
            const size_t j = mapping_sampler.Sample(rng);
            if (!grid.Sat(i, j)) continue;
            const double v = grid.Val(i, j);
            ++count;
            sum += v;
            if (count == 1) {
              mn = mx = v;
            } else {
              mn = std::min(mn, v);
              mx = std::max(mx, v);
            }
          }
          double outcome = 0.0;
          bool defined = true;
          switch (query.func) {
            case AggregateFunction::kCount:
              outcome = static_cast<double>(count);
              break;
            case AggregateFunction::kSum:
              outcome = sum;
              break;
            case AggregateFunction::kAvg:
              defined = count > 0;
              if (defined) outcome = sum / static_cast<double>(count);
              break;
            case AggregateFunction::kMin:
              defined = count > 0;
              outcome = mn;
              break;
            case AggregateFunction::kMax:
              defined = count > 0;
              outcome = mx;
              break;
          }
          if (!defined) {
            ++acc.undefined;
            continue;
          }
          acc.freq[outcome] += 1;
          acc.sum_outcomes += outcome;
          acc.sum_sq += outcome * outcome;
          if (!acc.have_outcome) {
            acc.observed_range = Interval::Point(outcome);
            acc.have_outcome = true;
          } else {
            acc.observed_range =
                Interval::Hull(acc.observed_range, Interval::Point(outcome));
          }
        }
        return Status::OK();
      }));

  // Merge in chunk-index order (fixed reduction order). Accumulate raw
  // frequencies in a hash map (continuous aggregates make most outcomes
  // distinct, and per-sample sorted insertion would be quadratic);
  // normalise by the number of samples actually drawn at the end, so a
  // budget-truncated run still yields a proper distribution.
  SampledAnswer out;
  double sum_outcomes = 0.0;
  double sum_sq = 0.0;
  bool have_outcome = false;
  std::unordered_map<double, size_t> freq;
  size_t drawn = 0;
  Status stop = Status::OK();
  for (SampleAccum& acc : slots) {
    drawn += acc.drawn;
    out.undefined_samples += acc.undefined;
    sum_outcomes += acc.sum_outcomes;
    sum_sq += acc.sum_sq;
    if (acc.have_outcome) {
      out.observed_range = have_outcome
                               ? Interval::Hull(out.observed_range,
                                                acc.observed_range)
                               : acc.observed_range;
      have_outcome = true;
    }
    for (const auto& [outcome, count] : acc.freq) freq[outcome] += count;
    if (stop.ok() && !acc.stop.ok()) stop = acc.stop;
  }
  if (!stop.ok()) {
    if (drawn < options.min_samples_on_budget) return stop;
    out.truncated = true;
  }

  out.num_samples = drawn;
  AQUA_DCHECK(drawn >= out.undefined_samples)
      << drawn << " samples drawn, " << out.undefined_samples << " undefined";
  const size_t defined = drawn - out.undefined_samples;
  if (defined == 0) {
    return Status::InvalidArgument(
        "every sampled sequence left the aggregate undefined");
  }
  // Estimator bookkeeping: every defined sample landed in exactly one
  // frequency bucket, so the bucket weights must sum to the defined count
  // — the normaliser of the empirical distribution — and the merged
  // observed range must still be an ordered interval.
  if (ParanoidChecksEnabled()) {
    size_t bucketed = 0;
    for (const auto& [outcome, count] : freq) bucketed += count;
    AQUA_CHECK(bucketed == defined)
        << "sampler frequency buckets hold " << bucketed << " samples, "
        << defined << " were defined";
    AQUA_CHECK_INTERVAL(out.observed_range.low, out.observed_range.high)
        << "(sampler observed range)";
  }
  std::vector<Distribution::Entry> entries;
  entries.reserve(freq.size());
  for (const auto& [outcome, count] : freq) {
    entries.push_back(Distribution::Entry{
        outcome, static_cast<double>(count) / static_cast<double>(drawn)});
  }
  AQUA_ASSIGN_OR_RETURN(out.empirical,
                        Distribution::FromEntries(std::move(entries)));
  const double nd = static_cast<double>(defined);
  out.expected = sum_outcomes / nd;
  const double variance =
      std::max(0.0, sum_sq / nd - out.expected * out.expected);
  out.std_error = defined > 1 ? std::sqrt(variance / nd) : 0.0;
  AQUA_DCHECK(out.std_error >= 0.0 && !std::isnan(out.std_error))
      << "std error " << out.std_error;
  return out;
}

}  // namespace aqua
