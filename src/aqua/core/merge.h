#ifndef AQUA_CORE_MERGE_H_
#define AQUA_CORE_MERGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "aqua/common/interval.h"
#include "aqua/common/result.h"
#include "aqua/core/clt.h"
#include "aqua/core/naive.h"
#include "aqua/prob/distribution.h"

namespace aqua::merge {

/// The unit of work a shard hands back to the coordinator: whichever of
/// the fields below the cell's semantics needs, plus enough metadata for
/// the coordinator to validate coverage and flag degradation.
///
/// The paper's by-tuple semantics decompose over disjoint tuple subsets:
/// COUNT distributions combine by convolution, range bounds and CLT
/// moments by addition, and MIN/MAX CDFs by pointwise product (tuples
/// choose mappings independently, so the extremum over the union is
/// distributed as the product of per-shard CDFs). Each merge operator
/// below is the exact combination law for one of those shapes and is
/// property-tested byte-identical to the serial algorithm at every shard
/// count.
struct ShardPartial {
  /// Range semantics: bounds of the aggregate restricted to this shard.
  Interval range;
  /// Distribution semantics: shard-local outcome distribution.
  Distribution dist;
  /// Probability that the shard-local aggregate is undefined (MIN/MAX
  /// over a shard where no tuple qualifies under some sequences).
  double undefined_mass = 0.0;
  /// Expected-value semantics: shard-local expectation (additive for
  /// COUNT/SUM by linearity).
  double expected = 0.0;
  /// How many of the rows assigned to this shard the partial covers. The
  /// coordinator checks the sum against the table size, turning a torn
  /// partial (a shard that died mid-scan but still reported) into a
  /// detected error instead of a silently wrong answer.
  uint64_t rows_covered = 0;
  /// True when this partial came from the degraded (sampling) path; the
  /// combined answer is then flagged approximate.
  bool approximate = false;
  /// Human-readable degradation detail, surfaced in the answer note.
  std::string note;
};

/// Sum of per-shard range bounds, in shard order. Exact for COUNT and SUM:
/// the extreme scenarios decompose per tuple, so the bound over the union
/// is the sum of per-shard bounds.
Interval MergeIntervalSum(const std::vector<ShardPartial>& parts);

/// Sum of per-shard expected values (linearity of expectation).
double MergeExpectedSum(const std::vector<ShardPartial>& parts);

/// Adds CLT moments: mean and variance are both additive across disjoint
/// tuple subsets because tuples choose mappings independently.
NormalApproximation MergeMoments(const std::vector<NormalApproximation>& parts);

/// Convolution of per-shard COUNT distributions, folded left in shard
/// order. Outcomes must be non-negative integers (COUNT supports); a
/// shard with an empty distribution is the convolution identity (its
/// count is deterministically absent, contributed by no rows). The dense
/// fold mirrors the serial DP's accumulation order so the result is
/// byte-identical to running `ByTuplePDCOUNT` over the union.
Result<Distribution> MergeCountDistributions(
    const std::vector<ShardPartial>& parts);

/// Pointwise CDF product for MIN/MAX. With `is_max` the per-shard CDF
/// G_s(x) = undefined_s + sum of p_s(o) over o <= x is swept over the
/// ascending union grid of outcomes; for MIN the survival function
/// T_s(x) = undefined_s + sum over o >= x is swept descending. The
/// product's successive differences are the atoms of the combined
/// extremum; the all-shards-undefined constant cancels in every atom and
/// survives only as the combined `undefined_mass` (the product of the
/// per-shard masses).
Result<NaiveAnswer> MergeExtremeDistributions(
    const std::vector<ShardPartial>& parts, bool is_max);

}  // namespace aqua::merge

#endif  // AQUA_CORE_MERGE_H_
