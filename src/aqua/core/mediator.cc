#include "aqua/core/mediator.h"

#include "aqua/common/string_util.h"
#include "aqua/query/parser.h"

namespace aqua {

Status Mediator::RegisterTable(std::string source_relation, Table table) {
  if (source_relation.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  const std::string key = ToLower(source_relation);
  if (tables_.count(key) != 0) {
    return Status::InvalidArgument("relation '" + source_relation +
                                   "' is already registered");
  }
  tables_.emplace(key, std::move(table));
  return Status::OK();
}

Status Mediator::SetSchemaPMapping(SchemaPMapping mapping) {
  for (size_t i = 0; i < mapping.size(); ++i) {
    const PMapping& pm = mapping.mapping(i);
    const auto table = TableFor(pm.source_relation());
    if (!table.ok()) {
      return Status::InvalidArgument(
          "p-mapping sources relation '" + pm.source_relation() +
          "', which has no registered table");
    }
    // Every source attribute named by any candidate must exist.
    for (const PMapping::Alternative& alt : pm.alternatives()) {
      for (const Correspondence& c : alt.mapping.correspondences()) {
        if (!(*table)->schema().Contains(c.source)) {
          return Status::InvalidArgument(
              "candidate mapping references source attribute '" + c.source +
              "' absent from relation '" + pm.source_relation() + "' " +
              (*table)->schema().ToString());
        }
      }
    }
  }
  schema_pmapping_ = std::move(mapping);
  has_mapping_ = true;
  return Status::OK();
}

Result<const Table*> Mediator::TableFor(
    std::string_view source_relation) const {
  const auto it = tables_.find(ToLower(source_relation));
  if (it == tables_.end()) {
    return Status::NotFound("no table registered for relation '" +
                            std::string(source_relation) + "'");
  }
  return &it->second;
}

Result<Mediator::Route> Mediator::RouteFor(
    std::string_view target_relation) const {
  if (!has_mapping_) {
    return Status::InvalidArgument(
        "no schema p-mapping installed; call SetSchemaPMapping first");
  }
  AQUA_ASSIGN_OR_RETURN(const PMapping* pm,
                        schema_pmapping_.ForTargetRelation(target_relation));
  AQUA_ASSIGN_OR_RETURN(const Table* table,
                        TableFor(pm->source_relation()));
  return Route{pm, table};
}

Result<AggregateAnswer> Mediator::Answer(
    const AggregateQuery& query, MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics) const {
  AQUA_ASSIGN_OR_RETURN(Route route, RouteFor(query.relation));
  return engine_.Answer(query, *route.pmapping, *route.table,
                        mapping_semantics, aggregate_semantics);
}

Result<AggregateAnswer> Mediator::AnswerNested(
    const NestedAggregateQuery& query, MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics) const {
  AQUA_ASSIGN_OR_RETURN(Route route, RouteFor(query.inner.relation));
  return engine_.AnswerNested(query, *route.pmapping, *route.table,
                              mapping_semantics, aggregate_semantics);
}

Result<AggregateAnswer> Mediator::AnswerSql(
    std::string_view sql, MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics) const {
  AQUA_ASSIGN_OR_RETURN(ParsedQuery parsed, SqlParser::Parse(sql));
  if (parsed.kind == ParsedQuery::Kind::kNested) {
    return AnswerNested(parsed.nested, mapping_semantics,
                        aggregate_semantics);
  }
  if (!parsed.simple.group_by.empty()) {
    return Status::InvalidArgument(
        "grouped SQL statement passed to AnswerSql; use AnswerGroupedSql");
  }
  return Answer(parsed.simple, mapping_semantics, aggregate_semantics);
}

Result<std::vector<GroupedAnswer>> Mediator::AnswerGroupedSql(
    std::string_view sql, MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics) const {
  AQUA_ASSIGN_OR_RETURN(AggregateQuery query, SqlParser::ParseSimple(sql));
  AQUA_ASSIGN_OR_RETURN(Route route, RouteFor(query.relation));
  return engine_.AnswerGrouped(query, *route.pmapping, *route.table,
                               mapping_semantics, aggregate_semantics);
}

}  // namespace aqua
