#ifndef AQUA_CORE_NESTED_H_
#define AQUA_CORE_NESTED_H_

#include "aqua/common/exec_context.h"
#include "aqua/common/interval.h"
#include "aqua/core/naive.h"
#include "aqua/exec/parallel.h"
#include "aqua/mapping/p_mapping.h"
#include "aqua/query/ast.h"
#include "aqua/storage/table.h"

namespace aqua {

/// By-tuple evaluation of the paper's nested form (its query Q2) — part of
/// the future work the paper sketches in §VII, implemented here.
class NestedByTuple {
 public:
  /// Exact by-tuple/range answer.
  ///
  /// Strategy: mapping choices for tuples of different groups are
  /// independent, and the outer aggregate (AVG/SUM/MIN/MAX/COUNT) is
  /// monotone in each per-group value, so the nested range is the outer
  /// aggregate applied to the per-group lower bounds and upper bounds
  /// respectively. Preconditions, checked and reported as kUnimplemented
  /// when violated:
  ///  * the inner GROUP BY attribute is *certain* under the p-mapping, so
  ///    the grouping itself is not probabilistic;
  ///  * every group contains at least one tuple satisfying the inner
  ///    condition under all mappings (otherwise a sequence can make the
  ///    group vanish, and the outer aggregate ranges over a varying set).
  /// `policy` runs the per-group inner ranges as one parallel task per
  /// group; the answer is identical at every thread count.
  static Result<Interval> Range(const NestedAggregateQuery& query,
                                const PMapping& pmapping, const Table& source,
                                ExecContext* ctx = nullptr,
                                const exec::ExecPolicy& policy = {});

  /// Exhaustive by-tuple distribution of the nested answer: enumerates
  /// mapping sequences and evaluates the full nested query per sequence.
  /// Exponential; guarded by `options.max_sequences`. Sequences where the
  /// outer aggregate is undefined (every group empty) contribute to
  /// `undefined_mass`.
  static Result<NaiveAnswer> NaiveDist(const NestedAggregateQuery& query,
                                       const PMapping& pmapping,
                                       const Table& source,
                                       const NaiveOptions& options = {},
                                       ExecContext* ctx = nullptr);
};

}  // namespace aqua

#endif  // AQUA_CORE_NESTED_H_
