#include "aqua/core/by_tuple_count.h"

#include "aqua/core/by_tuple_common.h"
#include "aqua/obs/trace.h"

namespace aqua {
namespace {

using by_tuple_internal::ForEachRow;
using by_tuple_internal::RowCount;
using by_tuple_internal::TupleSatisfies;

Result<std::vector<Reformulator::MappingBinding>> BindCountQuery(
    const AggregateQuery& query, const PMapping& pmapping,
    const Table& source) {
  if (query.func != AggregateFunction::kCount) {
    return Status::InvalidArgument("ByTupleCount requires a COUNT query");
  }
  if (query.distinct) {
    return Status::Unimplemented(
        "COUNT(DISTINCT) has no PTIME by-tuple algorithm");
  }
  return Reformulator::BindAll(query, pmapping, source);
}

}  // namespace

Result<Interval> ByTupleCount::Range(const AggregateQuery& query,
                                     const PMapping& pmapping,
                                     const Table& source,
                                     const std::vector<uint32_t>* rows,
                                     ExecContext* ctx) {
  obs::TraceSpan span("ByTupleCount::Range");
  AQUA_ASSIGN_OR_RETURN(std::vector<Reformulator::MappingBinding> bindings,
                        BindCountQuery(query, pmapping, source));
  // O(n*m) single pass: charge the whole scan up front (exact for the step
  // budget, one clock read for the deadline).
  AQUA_RETURN_NOT_OK(
      ExecCharge(ctx, RowCount(source.num_rows(), rows) * bindings.size()));
  AQUA_RETURN_NOT_OK(ExecCheckNow(ctx));
  // Paper Figure 2: low counts tuples satisfying under all mappings, up
  // counts tuples satisfying under at least one.
  int64_t low = 0;
  int64_t up = 0;
  ForEachRow(source.num_rows(), rows, [&](size_t r) {
    bool all = true;
    bool any = false;
    for (const auto& b : bindings) {
      if (TupleSatisfies(b, source, r)) {
        any = true;
      } else {
        all = false;
      }
    }
    if (all) ++low;
    if (any) ++up;
  });
  return Interval{static_cast<double>(low), static_cast<double>(up)};
}

Result<Distribution> ByTupleCount::Dist(const AggregateQuery& query,
                                        const PMapping& pmapping,
                                        const Table& source,
                                        const std::vector<uint32_t>* rows,
                                        ExecContext* ctx) {
  obs::TraceSpan span("ByTupleCount::Dist");
  AQUA_ASSIGN_OR_RETURN(std::vector<Reformulator::MappingBinding> bindings,
                        BindCountQuery(query, pmapping, source));
  // Paper Figure 3: pd[c] = Pr(count over processed tuples == c).
  // Processing tuple i folds in occProb_i, the total probability of the
  // mappings under which tuple i satisfies the condition:
  //   pd[c] <- pd[c] * (1 - occ) + pd[c-1] * occ.
  const size_t n = RowCount(source.num_rows(), rows);
  AQUA_RETURN_NOT_OK(ExecChargeBytes(ctx, (n + 1) * sizeof(double)));
  std::vector<double> pd(n + 1, 0.0);
  pd[0] = 1.0;
  size_t processed = 0;
  // The quadratic recurrence is the loop the paper's Figure 9 shows going
  // intractable; charge per DP row so a deadline stops it mid-flight.
  Status budget = Status::OK();
  ForEachRow(source.num_rows(), rows, [&](size_t r) {
    if (!budget.ok()) return;
    double occ = 0.0;
    for (const auto& b : bindings) {
      if (TupleSatisfies(b, source, r)) occ += b.probability;
    }
    const double not_occ = 1.0 - occ;
    ++processed;
    budget = ExecCharge(ctx, processed + bindings.size());
    if (!budget.ok()) return;
    // Descending in-place update so pd[c-1] is still the pre-tuple value.
    pd[processed] = pd[processed - 1] * occ;
    for (size_t c = processed - 1; c >= 1; --c) {
      pd[c] = pd[c] * not_occ + pd[c - 1] * occ;
    }
    pd[0] *= not_occ;
  });
  AQUA_RETURN_NOT_OK(budget);
  Distribution d;
  for (size_t c = 0; c <= n; ++c) {
    if (pd[c] > 0.0) d.AddMass(static_cast<double>(c), pd[c]);
  }
  return d;
}

Result<double> ByTupleCount::Expected(const AggregateQuery& query,
                                      const PMapping& pmapping,
                                      const Table& source,
                                      const std::vector<uint32_t>* rows,
                                      ExecContext* ctx) {
  obs::TraceSpan span("ByTupleCount::Expected");
  AQUA_ASSIGN_OR_RETURN(std::vector<Reformulator::MappingBinding> bindings,
                        BindCountQuery(query, pmapping, source));
  AQUA_RETURN_NOT_OK(
      ExecCharge(ctx, RowCount(source.num_rows(), rows) * bindings.size()));
  AQUA_RETURN_NOT_OK(ExecCheckNow(ctx));
  // Linearity of expectation: E[COUNT] = sum_i Pr(tuple i satisfies C).
  double expected = 0.0;
  ForEachRow(source.num_rows(), rows, [&](size_t r) {
    for (const auto& b : bindings) {
      if (TupleSatisfies(b, source, r)) expected += b.probability;
    }
  });
  return expected;
}

Result<double> ByTupleCount::ExpectedViaDistribution(
    const AggregateQuery& query, const PMapping& pmapping,
    const Table& source, const std::vector<uint32_t>* rows,
    ExecContext* ctx) {
  AQUA_ASSIGN_OR_RETURN(Distribution d,
                        Dist(query, pmapping, source, rows, ctx));
  return d.Expectation();
}

}  // namespace aqua
