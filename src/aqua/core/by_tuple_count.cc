#include "aqua/core/by_tuple_count.h"

#include <algorithm>
#include <cmath>

#include "aqua/common/check.h"
#include "aqua/core/by_tuple_common.h"
#include "aqua/obs/trace.h"

namespace aqua {
namespace {

using by_tuple_internal::ForEachRow;
using by_tuple_internal::RowCount;
using by_tuple_internal::TupleSatisfies;

/// Tuples folded per wavefront block of the COUNT distribution DP, and
/// cells per chunk within a block. Both are fixed constants — the
/// partition is a pure function of the problem size, never of the thread
/// count, which is what makes the answer bit-identical for any --threads.
constexpr size_t kDpBlockTuples = 256;
constexpr size_t kDpChunkCells = 4096;

/// Rows per chunk of the O(n*m) occurrence-probability scan.
constexpr size_t kOccChunkRows = 4096;

/// Paranoid invariant (Theorem 2): after every wavefront block the DP row
/// is a probability distribution — each cell in [0, 1] and the row mass 1.
/// The recurrence preserves mass *algebraically* for any occ (occ +
/// (1 - occ) = 1), so a drifting mass means FP corruption or a halo bug in
/// the parallel schedule, exactly the failure TSan cannot see. Tolerance
/// scales with the number of folds: each of the n updates contributes a
/// few ulps of rounding on a mass of ~1.
void ParanoidCheckDpRowMass(const std::vector<double>& row, size_t block,
                            size_t tuples_folded) {
  double mass = 0.0;
  for (const double p : row) {
    AQUA_CHECK_PROB(p) << "(DP cell after block at tuple " << block << ")";
    mass += p;
  }
  AQUA_CHECK(std::fabs(mass - 1.0) <=
             1e-9 + 1e-13 * static_cast<double>(tuples_folded))
      << "COUNT DP row mass drifted to " << mass << " after folding "
      << tuples_folded << " tuples (block at " << block << ")";
}

/// One chunk of one wavefront block: folds `tuples` tuples (occurrence
/// probabilities `occs[first_tuple ...]`) into cells [chunk.begin,
/// chunk.end) of the next DP array, reading the previous array `cur`.
///
/// The fold is the serial recurrence run on a local window with a halo of
/// `tuples` extra cells on the left: an in-place descending update leaves
/// the window's leftmost cell stale, so after k tuples the cells
/// [ext_lo, ext_lo + k) are garbage — but the garbage front advances one
/// cell per tuple, so after `tuples` tuples the cells [chunk.begin,
/// chunk.end) are exactly what the serial fold would have produced. Every
/// thread count runs this same function over the same chunks, so the bits
/// match.
Status CountDpChunk(const std::vector<double>& occs, size_t first_tuple,
                    size_t tuples, const exec::Chunk& chunk,
                    const std::vector<double>& cur, std::vector<double>* nxt,
                    ExecContext* child) {
  const size_t lo = chunk.begin;
  const size_t hi = chunk.end;
  const size_t ext_lo = lo > tuples ? lo - tuples : 0;
  const size_t len = hi - ext_lo;
  // One step per (tuple, window cell) — the same order of work the serial
  // DP charges, plus the halo.
  AQUA_RETURN_NOT_OK(ExecCharge(child, tuples * len));
  std::vector<double> buf(cur.begin() + static_cast<ptrdiff_t>(ext_lo),
                          cur.begin() + static_cast<ptrdiff_t>(hi));
  for (size_t k = 0; k < tuples; ++k) {
    const double occ = occs[first_tuple + k];
    const double not_occ = 1.0 - occ;
    // Descending in-place update so buf[j-1] is still the pre-tuple value.
    for (size_t j = len - 1; j >= 1; --j) {
      buf[j] = buf[j] * not_occ + buf[j - 1] * occ;
    }
    if (ext_lo == 0) buf[0] *= not_occ;
  }
  std::copy(buf.begin() + static_cast<ptrdiff_t>(lo - ext_lo), buf.end(),
            nxt->begin() + static_cast<ptrdiff_t>(lo));
  return Status::OK();
}

Result<std::vector<Reformulator::MappingBinding>> BindCountQuery(
    const AggregateQuery& query, const PMapping& pmapping,
    const Table& source) {
  if (query.func != AggregateFunction::kCount) {
    return Status::InvalidArgument("ByTupleCount requires a COUNT query");
  }
  if (query.distinct) {
    return Status::Unimplemented(
        "COUNT(DISTINCT) has no PTIME by-tuple algorithm");
  }
  return Reformulator::BindAll(query, pmapping, source);
}

}  // namespace

Result<Interval> ByTupleCount::Range(const AggregateQuery& query,
                                     const PMapping& pmapping,
                                     const Table& source,
                                     const std::vector<uint32_t>* rows,
                                     ExecContext* ctx) {
  obs::TraceSpan span("ByTupleCount::Range");
  AQUA_ASSIGN_OR_RETURN(std::vector<Reformulator::MappingBinding> bindings,
                        BindCountQuery(query, pmapping, source));
  // O(n*m) single pass: charge the whole scan up front (exact for the step
  // budget, one clock read for the deadline).
  AQUA_RETURN_NOT_OK(
      ExecCharge(ctx, RowCount(source.num_rows(), rows) * bindings.size()));
  AQUA_RETURN_NOT_OK(ExecCheckNow(ctx));
  // Paper Figure 2: low counts tuples satisfying under all mappings, up
  // counts tuples satisfying under at least one.
  int64_t low = 0;
  int64_t up = 0;
  ForEachRow(source.num_rows(), rows, [&](size_t r) {
    bool all = true;
    bool any = false;
    for (const auto& b : bindings) {
      if (TupleSatisfies(b, source, r)) {
        any = true;
      } else {
        all = false;
      }
    }
    if (all) ++low;
    if (any) ++up;
  });
  return Interval{static_cast<double>(low), static_cast<double>(up)};
}

Result<Distribution> ByTupleCount::Dist(const AggregateQuery& query,
                                        const PMapping& pmapping,
                                        const Table& source,
                                        const std::vector<uint32_t>* rows,
                                        ExecContext* ctx,
                                        const exec::ExecPolicy& policy) {
  obs::TraceSpan span("ByTupleCount::Dist");
  if (ParanoidChecksEnabled()) pmapping.CheckInvariants();
  AQUA_ASSIGN_OR_RETURN(std::vector<Reformulator::MappingBinding> bindings,
                        BindCountQuery(query, pmapping, source));
  // Paper Figure 3: pd[c] = Pr(count over processed tuples == c).
  // Processing tuple i folds in occProb_i, the total probability of the
  // mappings under which tuple i satisfies the condition:
  //   pd[c] <- pd[c] * (1 - occ) + pd[c-1] * occ.
  const size_t n = RowCount(source.num_rows(), rows);
  const size_t m = bindings.size();

  // Phase 1: per-tuple occurrence probabilities — an embarrassingly
  // parallel O(n*m) scan.
  AQUA_RETURN_NOT_OK(ExecChargeBytes(ctx, n * sizeof(double)));
  std::vector<double> occs(n, 0.0);
  AQUA_RETURN_NOT_OK(exec::ParallelFor(
      policy, n, kOccChunkRows, ctx,
      [&](const exec::Chunk& chunk, ExecContext* child) -> Status {
        AQUA_RETURN_NOT_OK(ExecCharge(child, chunk.size() * m));
        for (size_t i = chunk.begin; i < chunk.end; ++i) {
          const size_t r = rows == nullptr ? i : (*rows)[i];
          double occ = 0.0;
          for (const auto& b : bindings) {
            if (TupleSatisfies(b, source, r)) occ += b.probability;
          }
          occs[i] = occ;
        }
        return Status::OK();
      }));
  // occProb_i sums candidate probabilities, so a corrupt p-mapping (mass
  // over 1, negative entries) surfaces here as an out-of-range occurrence
  // probability before it can poison the DP.
  if (ParanoidChecksEnabled()) {
    for (size_t i = 0; i < n; ++i) {
      AQUA_CHECK_PROB(occs[i]) << "(occurrence probability of tuple " << i
                               << ")";
    }
  }

  // Phase 2: the quadratic recurrence — the loop the paper's Figure 9
  // shows going intractable — as a blocked wavefront: fold kDpBlockTuples
  // tuples per block, with the cells of each block partitioned into
  // independent chunks (each recomputing a halo; see CountDpChunk). Cells
  // above the number of processed tuples hold exact zeros and the
  // recurrence keeps them zero, so folding the full band every block is
  // the serial recurrence in a different (deterministic) schedule.
  AQUA_RETURN_NOT_OK(ExecChargeBytes(ctx, 2 * (n + 1) * sizeof(double)));
  std::vector<double> cur(n + 1, 0.0);
  std::vector<double> nxt(n + 1, 0.0);
  cur[0] = 1.0;
  for (size_t block = 0; block < n; block += kDpBlockTuples) {
    const size_t tuples = std::min(kDpBlockTuples, n - block);
    const size_t cells = block + tuples + 1;
    AQUA_RETURN_NOT_OK(exec::ParallelFor(
        policy, cells, kDpChunkCells, ctx,
        [&](const exec::Chunk& chunk, ExecContext* child) -> Status {
          return CountDpChunk(occs, block, tuples, chunk, cur, &nxt, child);
        }));
    std::swap(cur, nxt);
    // The check runs on the merged array after the join, so it covers the
    // serial and every parallel schedule identically.
    if (ParanoidChecksEnabled()) {
      ParanoidCheckDpRowMass(cur, block, block + tuples);
    }
  }
  Distribution d;
  for (size_t c = 0; c <= n; ++c) {
    if (cur[c] > 0.0) d.AddMass(static_cast<double>(c), cur[c]);
  }
  AQUA_DCHECK(d.IsNormalized(1e-6))
      << "COUNT distribution mass " << d.TotalMass();
  return d;
}

Result<double> ByTupleCount::Expected(const AggregateQuery& query,
                                      const PMapping& pmapping,
                                      const Table& source,
                                      const std::vector<uint32_t>* rows,
                                      ExecContext* ctx) {
  obs::TraceSpan span("ByTupleCount::Expected");
  AQUA_ASSIGN_OR_RETURN(std::vector<Reformulator::MappingBinding> bindings,
                        BindCountQuery(query, pmapping, source));
  AQUA_RETURN_NOT_OK(
      ExecCharge(ctx, RowCount(source.num_rows(), rows) * bindings.size()));
  AQUA_RETURN_NOT_OK(ExecCheckNow(ctx));
  // Linearity of expectation: E[COUNT] = sum_i Pr(tuple i satisfies C).
  double expected = 0.0;
  ForEachRow(source.num_rows(), rows, [&](size_t r) {
    for (const auto& b : bindings) {
      if (TupleSatisfies(b, source, r)) expected += b.probability;
    }
  });
  return expected;
}

Result<double> ByTupleCount::ExpectedViaDistribution(
    const AggregateQuery& query, const PMapping& pmapping,
    const Table& source, const std::vector<uint32_t>* rows, ExecContext* ctx,
    const exec::ExecPolicy& policy) {
  AQUA_ASSIGN_OR_RETURN(Distribution d,
                        Dist(query, pmapping, source, rows, ctx, policy));
  return d.Expectation();
}

}  // namespace aqua
