#include "aqua/core/nested.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "aqua/common/check.h"
#include "aqua/core/by_tuple_common.h"
#include "aqua/core/by_tuple_count.h"
#include "aqua/core/by_tuple_minmax.h"
#include "aqua/core/by_tuple_sum.h"
#include "aqua/obs/trace.h"
#include "aqua/query/executor.h"

namespace aqua {
namespace {

using by_tuple_internal::BuildTupleMappingGrid;
using by_tuple_internal::TupleMappingGrid;
using by_tuple_internal::TupleSatisfies;

/// Resolves the (certain) inner GROUP BY attribute and partitions rows by
/// group.
Result<std::vector<std::vector<uint32_t>>> PartitionByGroup(
    const NestedAggregateQuery& query, const PMapping& pmapping,
    const Table& source) {
  const std::string& group_attr = query.inner.group_by;
  if (!pmapping.IsCertainTarget(group_attr)) {
    return Status::Unimplemented(
        "by-tuple nested aggregation requires a certain GROUP BY attribute; "
        "'" +
        group_attr + "' maps differently across candidate mappings");
  }
  AQUA_ASSIGN_OR_RETURN(std::string source_attr,
                        pmapping.mapping(0).SourceFor(group_attr));
  AQUA_ASSIGN_OR_RETURN(size_t col, source.schema().IndexOf(source_attr));
  AQUA_ASSIGN_OR_RETURN(GroupIndex index, GroupIndex::Build(source, col));
  std::vector<std::vector<uint32_t>> groups(index.num_groups());
  for (size_t r = 0; r < source.num_rows(); ++r) {
    groups[index.row_groups()[r]].push_back(static_cast<uint32_t>(r));
  }
  return groups;
}

/// Inner by-tuple range dispatch over one group's rows. The inner query is
/// passed with its GROUP BY stripped, since grouping is realised by the
/// row subset.
Result<Interval> InnerRange(const AggregateQuery& grouped_inner,
                            const PMapping& pmapping, const Table& source,
                            const std::vector<uint32_t>* rows,
                            ExecContext* ctx) {
  AggregateQuery inner = grouped_inner;
  inner.group_by.clear();
  switch (inner.func) {
    case AggregateFunction::kCount:
      return ByTupleCount::Range(inner, pmapping, source, rows, ctx);
    case AggregateFunction::kSum:
      return ByTupleSum::RangeSum(inner, pmapping, source, rows, ctx);
    case AggregateFunction::kAvg:
      return ByTupleSum::RangeAvgExact(inner, pmapping, source, rows, ctx);
    case AggregateFunction::kMin:
      return ByTupleMinMax::RangeMin(inner, pmapping, source, rows, ctx);
    case AggregateFunction::kMax:
      return ByTupleMinMax::RangeMax(inner, pmapping, source, rows, ctx);
  }
  return Status::Internal("corrupt aggregate function");
}

}  // namespace

Result<Interval> NestedByTuple::Range(const NestedAggregateQuery& query,
                                      const PMapping& pmapping,
                                      const Table& source, ExecContext* ctx,
                                      const exec::ExecPolicy& policy) {
  obs::TraceSpan span("NestedByTuple::Range");
  AQUA_RETURN_NOT_OK(query.Validate());
  AQUA_ASSIGN_OR_RETURN(std::vector<std::vector<uint32_t>> groups,
                        PartitionByGroup(query, pmapping, source));

  AggregateQuery inner = query.inner;
  inner.group_by.clear();
  AQUA_ASSIGN_OR_RETURN(std::vector<Reformulator::MappingBinding> bindings,
                        Reformulator::BindAll(inner, pmapping, source));
  // One task per group; slot g stays empty when group g never qualifies
  // under any sequence. The parent's remaining budget is split across
  // groups proportionally to group size.
  std::vector<std::optional<Interval>> slots(groups.size());
  std::vector<uint64_t> weights(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    weights[g] = std::max<uint64_t>(1, groups[g].size());
  }
  AQUA_RETURN_NOT_OK(exec::ParallelFor(
      policy, groups.size(), /*chunk_size=*/1, ctx,
      [&](const exec::Chunk& chunk, ExecContext* child) -> Status {
        const size_t g = chunk.begin;
        const std::vector<uint32_t>& rows = groups[g];
        // Precondition: no group may vanish under any sequence. A group is
        // safe iff it has a tuple satisfying the inner condition under all
        // mappings.
        bool has_mandatory = false;
        bool has_any = false;
        for (uint32_t r : rows) {
          AQUA_RETURN_NOT_OK(ExecCharge(child, bindings.size()));
          bool all = true;
          bool any = false;
          for (const auto& b : bindings) {
            if (TupleSatisfies(b, source, r)) {
              any = true;
            } else {
              all = false;
            }
          }
          has_any = has_any || any;
          if (all) {
            has_mandatory = true;
            break;
          }
        }
        if (!has_any) return Status::OK();
        if (!has_mandatory) {
          return Status::Unimplemented(
              "by-tuple nested range: a group can vanish under some mapping "
              "sequence, which makes the outer aggregate non-monotone; no "
              "exact PTIME method is implemented for this case");
        }
        AQUA_ASSIGN_OR_RETURN(
            Interval inner_range,
            InnerRange(query.inner, pmapping, source, &rows, child));
        slots[g] = inner_range;
        return Status::OK();
      },
      &weights));
  std::vector<double> lows, highs;
  for (const std::optional<Interval>& slot : slots) {
    if (!slot.has_value()) continue;
    lows.push_back(slot->low);
    highs.push_back(slot->high);
  }
  if (lows.empty()) {
    return Status::InvalidArgument(
        "nested aggregate is undefined: no group qualifies");
  }
  const std::optional<double> low = Executor::Fold(query.outer, lows);
  const std::optional<double> high = Executor::Fold(query.outer, highs);
  if (!low.has_value() || !high.has_value()) {
    return Status::Internal("outer fold returned no value");
  }
  // The per-group inner ranges are ordered, and MIN/MAX/AVG-style outer
  // folds are monotone, so the folded endpoints must stay ordered too.
  AQUA_CHECK_INTERVAL(*low, *high) << "(nested outer fold)";
  return Interval{*low, *high};
}

Result<NaiveAnswer> NestedByTuple::NaiveDist(const NestedAggregateQuery& query,
                                             const PMapping& pmapping,
                                             const Table& source,
                                             const NaiveOptions& options,
                                             ExecContext* ctx) {
  obs::TraceSpan span("NestedByTuple::NaiveDist");
  AQUA_RETURN_NOT_OK(query.Validate());
  AQUA_ASSIGN_OR_RETURN(std::vector<std::vector<uint32_t>> group_rows,
                        PartitionByGroup(query, pmapping, source));
  AggregateQuery inner = query.inner;
  inner.group_by.clear();
  if (inner.distinct && inner.func != AggregateFunction::kMin &&
      inner.func != AggregateFunction::kMax) {
    return Status::Unimplemented(
        "naive nested enumeration does not support DISTINCT except for "
        "MIN/MAX");
  }
  AQUA_ASSIGN_OR_RETURN(TupleMappingGrid grid,
                        BuildTupleMappingGrid(inner, pmapping, source,
                                              /*rows=*/nullptr));
  const size_t n = grid.n;
  const size_t m = grid.m;
  double log_sequences =
      static_cast<double>(n) * std::log2(static_cast<double>(m));
  if (m == 1) log_sequences = 0.0;
  if (log_sequences >
      std::log2(static_cast<double>(options.max_sequences)) + 1e-9) {
    return Status::ResourceExhausted(
        "naive nested enumeration would visit " + std::to_string(m) + "^" +
        std::to_string(n) + " sequences, over the budget");
  }
  AQUA_RETURN_NOT_OK(ExecCheckNow(ctx));

  // Row -> group id for the per-sequence grouped fold.
  std::vector<int32_t> row_group(n, -1);
  for (size_t g = 0; g < group_rows.size(); ++g) {
    for (uint32_t r : group_rows[g]) row_group[r] = static_cast<int32_t>(g);
  }

  NaiveAnswer answer;
  std::vector<size_t> seq(n, 0);
  struct GroupAcc {
    int64_t count = 0;
    double sum = 0.0, mn = 0.0, mx = 0.0;
  };
  std::vector<GroupAcc> accs(group_rows.size());
  while (true) {
    AQUA_RETURN_NOT_OK(ExecCharge(ctx, 1));
    double prob = 1.0;
    for (auto& a : accs) a = GroupAcc{};
    for (size_t i = 0; i < n; ++i) {
      const size_t j = seq[i];
      prob *= grid.prob[j];
      if (!grid.Sat(i, j)) continue;
      GroupAcc& a = accs[row_group[i]];
      const double v = grid.Val(i, j);
      ++a.count;
      a.sum += v;
      if (a.count == 1) {
        a.mn = a.mx = v;
      } else {
        a.mn = std::min(a.mn, v);
        a.mx = std::max(a.mx, v);
      }
    }
    std::vector<double> group_values;
    for (const GroupAcc& a : accs) {
      if (a.count == 0) continue;  // group vanished in this sequence
      switch (inner.func) {
        case AggregateFunction::kCount:
          group_values.push_back(static_cast<double>(a.count));
          break;
        case AggregateFunction::kSum:
          group_values.push_back(a.sum);
          break;
        case AggregateFunction::kAvg:
          group_values.push_back(a.sum / static_cast<double>(a.count));
          break;
        case AggregateFunction::kMin:
          group_values.push_back(a.mn);
          break;
        case AggregateFunction::kMax:
          group_values.push_back(a.mx);
          break;
      }
    }
    const std::optional<double> outcome =
        Executor::Fold(query.outer, group_values);
    if (outcome.has_value()) {
      answer.distribution.AddMass(*outcome, prob);
    } else {
      answer.undefined_mass += prob;
    }
    size_t pos = 0;
    while (pos < n && ++seq[pos] == m) {
      seq[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return answer;
}

}  // namespace aqua
