#ifndef AQUA_CORE_BY_TUPLE_COMMON_H_
#define AQUA_CORE_BY_TUPLE_COMMON_H_

#include <cstdint>
#include <vector>

#include "aqua/reformulate/reformulator.h"

namespace aqua {
namespace by_tuple_internal {

/// True iff tuple `row` participates in the aggregate under binding `b`:
/// the (reformulated) WHERE condition holds and, when the aggregate names
/// an attribute, that attribute is non-NULL (SQL aggregates skip NULLs).
inline bool TupleSatisfies(const Reformulator::MappingBinding& b,
                           const Table& table, size_t row) {
  if (!b.predicate.Matches(table, row)) return false;
  return b.attribute == nullptr || !b.attribute->IsNull(row);
}

/// Invokes `fn(row)` for every row in `rows`, or for every row of the
/// table when `rows` is null. The grouped engine passes per-group row
/// subsets; ungrouped callers pass null.
template <typename Fn>
void ForEachRow(size_t num_rows, const std::vector<uint32_t>* rows, Fn&& fn) {
  if (rows == nullptr) {
    for (size_t r = 0; r < num_rows; ++r) fn(r);
  } else {
    for (uint32_t r : *rows) fn(r);
  }
}

/// Number of rows visited by `ForEachRow`.
inline size_t RowCount(size_t num_rows, const std::vector<uint32_t>* rows) {
  return rows == nullptr ? num_rows : rows->size();
}

/// Per-(tuple, mapping) evaluation cache shared by the naive enumerator
/// and the Monte-Carlo sampler: satisfaction flags, attribute values, and
/// mapping probabilities, laid out row-major so the inner loops are pure
/// array walks.
struct TupleMappingGrid {
  size_t n = 0;  // tuples
  size_t m = 0;  // mappings
  std::vector<uint8_t> satisfies;  // n*m
  std::vector<double> value;       // n*m; 0 when not satisfying
  std::vector<double> prob;        // m

  bool Sat(size_t i, size_t j) const { return satisfies[i * m + j] != 0; }
  double Val(size_t i, size_t j) const { return value[i * m + j]; }
};

/// Precomputes the grid for `query` over `source` (all rows when `rows` is
/// null). Costs one predicate evaluation per (tuple, mapping).
inline Result<TupleMappingGrid> BuildTupleMappingGrid(
    const AggregateQuery& query, const PMapping& pmapping,
    const Table& source, const std::vector<uint32_t>* rows) {
  AQUA_ASSIGN_OR_RETURN(std::vector<Reformulator::MappingBinding> bindings,
                        Reformulator::BindAll(query, pmapping, source));
  std::vector<uint32_t> all_rows;
  if (rows == nullptr) {
    all_rows.resize(source.num_rows());
    for (size_t r = 0; r < all_rows.size(); ++r) {
      all_rows[r] = static_cast<uint32_t>(r);
    }
    rows = &all_rows;
  }
  TupleMappingGrid grid;
  grid.n = rows->size();
  grid.m = bindings.size();
  grid.satisfies.assign(grid.n * grid.m, 0);
  grid.value.assign(grid.n * grid.m, 0.0);
  grid.prob.resize(grid.m);
  for (size_t j = 0; j < grid.m; ++j) grid.prob[j] = bindings[j].probability;
  for (size_t i = 0; i < grid.n; ++i) {
    const size_t r = (*rows)[i];
    for (size_t j = 0; j < grid.m; ++j) {
      if (TupleSatisfies(bindings[j], source, r)) {
        grid.satisfies[i * grid.m + j] = 1;
        if (bindings[j].attribute != nullptr) {
          grid.value[i * grid.m + j] = bindings[j].attribute->NumericAt(r);
        }
      }
    }
  }
  return grid;
}

}  // namespace by_tuple_internal
}  // namespace aqua

#endif  // AQUA_CORE_BY_TUPLE_COMMON_H_
