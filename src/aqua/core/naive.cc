#include "aqua/core/naive.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "aqua/core/by_tuple_common.h"
#include "aqua/obs/trace.h"

namespace aqua {
namespace {

using by_tuple_internal::BuildTupleMappingGrid;
using by_tuple_internal::TupleMappingGrid;

Result<TupleMappingGrid> BuildGrid(const AggregateQuery& query,
                                   const PMapping& pmapping,
                                   const Table& source,
                                   const std::vector<uint32_t>* rows) {
  if (query.distinct && query.func != AggregateFunction::kMin &&
      query.func != AggregateFunction::kMax) {
    return Status::Unimplemented(
        "naive enumeration does not support DISTINCT except for MIN/MAX");
  }
  return BuildTupleMappingGrid(query, pmapping, source, rows);
}

Status CheckBudget(const TupleMappingGrid& grid, const NaiveOptions& options) {
  // l^n versus the budget, without overflow.
  double log_sequences =
      static_cast<double>(grid.n) * std::log2(static_cast<double>(grid.m));
  if (grid.m == 1) log_sequences = 0.0;
  if (log_sequences >
      std::log2(static_cast<double>(options.max_sequences)) + 1e-9) {
    return Status::ResourceExhausted(
        "naive by-tuple enumeration would visit " + std::to_string(grid.m) +
        "^" + std::to_string(grid.n) + " sequences, over the budget of " +
        std::to_string(options.max_sequences));
  }
  return Status::OK();
}

}  // namespace

Result<NaiveAnswer> NaiveByTuple::Dist(const AggregateQuery& query,
                                       const PMapping& pmapping,
                                       const Table& source,
                                       const NaiveOptions& options,
                                       const std::vector<uint32_t>* rows,
                                       ExecContext* ctx) {
  obs::TraceSpan span("NaiveByTuple::Dist");
  AQUA_ASSIGN_OR_RETURN(TupleMappingGrid grid,
                        BuildGrid(query, pmapping, source, rows));
  AQUA_RETURN_NOT_OK(CheckBudget(grid, options));
  AQUA_RETURN_NOT_OK(ExecCheckNow(ctx));

  NaiveAnswer answer;
  // The support can hold up to l^n distinct outcomes; accumulate mass in a
  // hash map and sort once at the end rather than paying a sorted insert
  // per sequence. Map growth is charged against the memory budget as it
  // happens — the support itself can be exponential.
  constexpr uint64_t kMassEntryBytes = 48;  // approx. node + bucket cost
  size_t charged_entries = 0;
  std::unordered_map<double, double> mass;
  if (grid.n == 0) {
    // No tuples: COUNT and SUM are 0 with certainty; the rest undefined.
    if (query.func == AggregateFunction::kCount ||
        query.func == AggregateFunction::kSum) {
      answer.distribution = Distribution::PointMass(0.0);
    } else {
      answer.undefined_mass = 1.0;
    }
    return answer;
  }

  std::vector<size_t> seq(grid.n, 0);  // odometer over mapping indices
  while (true) {
    // One step per sequence: the deadline/cancellation poll is amortised
    // inside Charge, so the common path is two integer additions.
    AQUA_RETURN_NOT_OK(ExecCharge(ctx, 1));
    // Evaluate the aggregate and the sequence probability in one pass.
    double prob = 1.0;
    int64_t count = 0;
    double sum = 0.0;
    double mn = 0.0, mx = 0.0;
    for (size_t i = 0; i < grid.n; ++i) {
      const size_t j = seq[i];
      prob *= grid.prob[j];
      if (!grid.Sat(i, j)) continue;
      const double v = grid.Val(i, j);
      ++count;
      sum += v;
      if (count == 1) {
        mn = mx = v;
      } else {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
    }
    switch (query.func) {
      case AggregateFunction::kCount:
        mass[static_cast<double>(count)] += prob;
        break;
      case AggregateFunction::kSum:
        mass[sum] += prob;
        break;
      case AggregateFunction::kAvg:
        if (count == 0) {
          answer.undefined_mass += prob;
        } else {
          mass[sum / static_cast<double>(count)] += prob;
        }
        break;
      case AggregateFunction::kMin:
      case AggregateFunction::kMax:
        if (count == 0) {
          answer.undefined_mass += prob;
        } else {
          mass[query.func == AggregateFunction::kMin ? mn : mx] += prob;
        }
        break;
    }
    if (mass.size() > charged_entries) {
      AQUA_RETURN_NOT_OK(ExecChargeBytes(
          ctx, (mass.size() - charged_entries) * kMassEntryBytes));
      charged_entries = mass.size();
    }
    // Advance the odometer.
    size_t pos = 0;
    while (pos < grid.n && ++seq[pos] == grid.m) {
      seq[pos] = 0;
      ++pos;
    }
    if (pos == grid.n) break;
  }
  std::vector<Distribution::Entry> entries;
  entries.reserve(mass.size());
  for (const auto& [outcome, prob] : mass) {
    entries.push_back(Distribution::Entry{outcome, prob});
  }
  AQUA_ASSIGN_OR_RETURN(answer.distribution,
                        Distribution::FromEntries(std::move(entries)));
  return answer;
}

Result<double> NaiveByTuple::Expected(const AggregateQuery& query,
                                      const PMapping& pmapping,
                                      const Table& source,
                                      const NaiveOptions& options,
                                      const std::vector<uint32_t>* rows,
                                      ExecContext* ctx) {
  obs::TraceSpan span("NaiveByTuple::Expected");
  AQUA_ASSIGN_OR_RETURN(NaiveAnswer answer,
                        Dist(query, pmapping, source, options, rows, ctx));
  if (answer.undefined_mass > 1e-12) {
    return Status::InvalidArgument(
        "expected value is undefined: the aggregate has no value with "
        "probability " +
        std::to_string(answer.undefined_mass));
  }
  return answer.distribution.Expectation();
}

Result<Interval> NaiveByTuple::Range(const AggregateQuery& query,
                                     const PMapping& pmapping,
                                     const Table& source,
                                     const NaiveOptions& options,
                                     const std::vector<uint32_t>* rows,
                                     ExecContext* ctx) {
  obs::TraceSpan span("NaiveByTuple::Range");
  AQUA_ASSIGN_OR_RETURN(NaiveAnswer answer,
                        Dist(query, pmapping, source, options, rows, ctx));
  return answer.distribution.ToRange();
}

}  // namespace aqua
