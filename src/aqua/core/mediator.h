#ifndef AQUA_CORE_MEDIATOR_H_
#define AQUA_CORE_MEDIATOR_H_

#include <map>
#include <string>
#include <string_view>

#include "aqua/core/engine.h"
#include "aqua/mapping/p_mapping.h"
#include "aqua/storage/table.h"

namespace aqua {

/// The data-integration front end of the system (paper §II): a mediated
/// schema backed by a *schema p-mapping* — one probabilistic mapping per
/// source relation — and the source instances themselves. Queries name
/// mediated relations; the mediator routes each to its p-mapping and
/// source table and delegates to the `Engine`.
///
/// Tables are owned by the mediator (moved in at registration) so answer
/// calls cannot outlive their data.
class Mediator {
 public:
  explicit Mediator(EngineOptions options = {}) : engine_(options) {}

  /// Registers a source instance for `source_relation`. Fails if a table
  /// is already registered under that name (case-insensitive).
  Status RegisterTable(std::string source_relation, Table table);

  /// Installs the schema p-mapping. Every p-mapping's source relation must
  /// already have a registered table whose schema contains each source
  /// attribute used by any candidate mapping.
  Status SetSchemaPMapping(SchemaPMapping mapping);

  /// Number of registered source tables.
  size_t num_tables() const { return tables_.size(); }

  /// The registered instance of `source_relation`.
  Result<const Table*> TableFor(std::string_view source_relation) const;

  /// Answers an ungrouped (or nested) SQL statement whose FROM relation is
  /// a *mediated* relation covered by the schema p-mapping.
  Result<AggregateAnswer> AnswerSql(std::string_view sql,
                                    MappingSemantics mapping_semantics,
                                    AggregateSemantics aggregate_semantics)
      const;

  /// Grouped counterpart of `AnswerSql`.
  Result<std::vector<GroupedAnswer>> AnswerGroupedSql(
      std::string_view sql, MappingSemantics mapping_semantics,
      AggregateSemantics aggregate_semantics) const;

  /// Typed entry points for pre-built queries.
  Result<AggregateAnswer> Answer(const AggregateQuery& query,
                                 MappingSemantics mapping_semantics,
                                 AggregateSemantics aggregate_semantics) const;
  Result<AggregateAnswer> AnswerNested(
      const NestedAggregateQuery& query, MappingSemantics mapping_semantics,
      AggregateSemantics aggregate_semantics) const;

 private:
  struct Route {
    const PMapping* pmapping;
    const Table* table;
  };
  Result<Route> RouteFor(std::string_view target_relation) const;

  Engine engine_;
  std::map<std::string, Table> tables_;  // lowercase source relation -> data
  SchemaPMapping schema_pmapping_;
  bool has_mapping_ = false;
};

}  // namespace aqua

#endif  // AQUA_CORE_MEDIATOR_H_
