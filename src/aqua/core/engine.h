#ifndef AQUA_CORE_ENGINE_H_
#define AQUA_CORE_ENGINE_H_

#include <string_view>
#include <vector>

#include "aqua/common/exec_context.h"
#include "aqua/core/answer.h"
#include "aqua/core/naive.h"
#include "aqua/core/sampler.h"
#include "aqua/exec/parallel.h"
#include "aqua/mapping/p_mapping.h"
#include "aqua/query/ast.h"
#include "aqua/shard/supervisor.h"
#include "aqua/storage/table.h"

namespace aqua {

/// What the engine does when an exact by-tuple computation exhausts its
/// execution budget (deadline, step or byte limit).
enum class DegradePolicy {
  /// Propagate the budget error (kDeadlineExceeded / kResourceExhausted)
  /// to the caller.
  kOff,
  /// Re-answer the query with Monte-Carlo sampling under a fresh budget of
  /// the same size, and flag the answer `approximate` with the degradation
  /// reason. Worst-case total cost is therefore twice the configured
  /// budget. Cancellation is never degraded — a cancel is honoured.
  kSample,
};

/// Engine behaviour knobs.
struct EngineOptions {
  /// Guard rails for the exponential fallback.
  NaiveOptions naive;

  /// Resource budget (wall-clock deadline, step and byte limits) applied
  /// to each Answer* call. Default-constructed = ungoverned.
  ExecLimits limits;

  /// Degradation policy when `limits` expire mid-computation. Applies to
  /// ungrouped by-tuple queries; grouped and nested queries are enforced
  /// but never degraded (no sampler covers them), and by-table evaluation
  /// is cheap enough that it runs ungoverned.
  DegradePolicy degrade = DegradePolicy::kOff;

  /// Sampler configuration for the degraded pass.
  SamplerOptions degrade_sampler;

  /// Worker threads for the parallel by-tuple paths (the COUNT
  /// distribution wavefront, the Monte-Carlo sampler, and one task per
  /// group for grouped/nested answering). 0 = hardware concurrency;
  /// 1 = serial on the calling thread (the shared pool is never touched).
  /// The thread count never changes an answer: work is partitioned as a
  /// pure function of the problem size, so exact answers are bit-identical
  /// and sampled estimates use the same per-chunk RNG streams at every
  /// setting.
  int threads = 0;

  /// In-process fault domains for the ungrouped by-tuple pass. Values > 1
  /// partition the tuple set into up to `shards` contiguous shards, run
  /// each under its own child ExecContext via the shard supervisor
  /// (hedged re-execution of stragglers, shard-local degradation to
  /// sampling when `degrade` allows), and merge the partials with the
  /// exact combination laws in core/merge.h. Only decomposable cells
  /// shard (COUNT everything; SUM range/expected; MIN/MAX
  /// distribution/expected when `minmax_distribution_exact`); the rest
  /// run unsharded. 1 = off.
  int shards = 1;

  /// Straggler hedging policy for the shard supervisor (only consulted
  /// when `shards` > 1 and `threads` allows concurrency).
  shard::HedgePolicy hedge;

  /// When false, semantics combinations with no PTIME algorithm (by-tuple
  /// distribution/expected value for SUM/AVG/MIN/MAX, per the paper's
  /// Figure 6) fail with kUnimplemented instead of falling back to naive
  /// enumeration.
  bool allow_naive = true;

  /// Use the paper's AVG-range formula (§IV-B) instead of the tight one.
  /// They coincide whenever every satisfiable tuple satisfies under all
  /// mappings (all of the paper's workloads).
  bool avg_range_paper = false;

  /// Compute by-tuple expected COUNT by first building the full count
  /// distribution (O(mn + n^2)), as the paper does, instead of the direct
  /// O(nm) linearity-of-expectation path. Figure 9's ByTupleExpValCOUNT
  /// curve is reproduced with this on.
  bool count_expected_via_distribution = false;

  /// Use this repository's exact polynomial algorithm for the by-tuple
  /// distribution / expected value of MIN and MAX (CDF factorisation over
  /// independent tuples, O(nm log nm)) — cells the paper's Figure 6 marks
  /// open. When false those cells fall back to naive enumeration, matching
  /// the paper's prototype.
  bool minmax_distribution_exact = true;
};

/// Facade over all six aggregate-query semantics: picks the right
/// algorithm for each (operator, mapping semantics, aggregate semantics)
/// cell of the paper's Figure 6 and falls back to naive enumeration
/// (guarded) for the open cells.
class Engine {
 public:
  explicit Engine(EngineOptions options = {}) : options_(options) {}

  const EngineOptions& options() const { return options_; }

  /// Answers an ungrouped aggregate query over `source` (the instance of
  /// the p-mapping's source relation). Every Answer* overload takes an
  /// optional cancellation token; a default-constructed token can never
  /// fire. The call is governed by `options().limits` and, on budget
  /// exhaustion, subject to `options().degrade`.
  Result<AggregateAnswer> Answer(const AggregateQuery& query,
                                 const PMapping& pmapping, const Table& source,
                                 MappingSemantics mapping_semantics,
                                 AggregateSemantics aggregate_semantics,
                                 CancellationToken cancel = {}) const;

  /// Answers a grouped aggregate query. Under by-tuple semantics the
  /// GROUP BY attribute must be certain (map identically under every
  /// candidate); the per-tuple recurrences then run once per group, one
  /// (possibly concurrent) task per group. One budget covers the whole
  /// grouped query: the remaining budget is split across groups
  /// proportionally to group size (shares sum exactly to the total), each
  /// group charges its own child context, and the per-group QueryStats
  /// report exactly that group's charges — serial or concurrent. Grouped
  /// answers are never degraded to sampling.
  Result<std::vector<GroupedAnswer>> AnswerGrouped(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source, MappingSemantics mapping_semantics,
      AggregateSemantics aggregate_semantics,
      CancellationToken cancel = {}) const;

  /// Answers the nested form (paper Q2). By-table: all three semantics.
  /// By-tuple: range exactly (interval arithmetic over groups);
  /// distribution and expected value via guarded naive enumeration.
  /// Budget-enforced but never degraded to sampling.
  Result<AggregateAnswer> AnswerNested(
      const NestedAggregateQuery& query, const PMapping& pmapping,
      const Table& source, MappingSemantics mapping_semantics,
      AggregateSemantics aggregate_semantics,
      CancellationToken cancel = {}) const;

  /// SQL front door for ungrouped statements of either form. The FROM
  /// relation must be the p-mapping's target relation.
  Result<AggregateAnswer> AnswerSql(
      std::string_view sql, const PMapping& pmapping, const Table& source,
      MappingSemantics mapping_semantics,
      AggregateSemantics aggregate_semantics,
      CancellationToken cancel = {}) const;

  /// Answers an ungrouped by-tuple query directly on the Monte-Carlo
  /// sampler, skipping the exact pass entirely — the load-shedding path: a
  /// server over its soft watermark answers new requests here so shed
  /// traffic costs one sampling pass instead of a doomed exact attempt
  /// plus a retry. The answer is flagged approximate and its stats carry
  /// `reason` as the degrade reason, exactly like a budget-driven
  /// degradation would.
  Result<AggregateAnswer> AnswerForcedSample(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source, AggregateSemantics aggregate_semantics,
      const std::string& reason, CancellationToken cancel = {}) const;

  /// Names the algorithm `Answer` would run for this (operator, mapping
  /// semantics, aggregate semantics) cell and its asymptotic cost, e.g.
  /// "ByTuplePDCOUNT, O(m*n + n^2)". Reports the naive fallback (and its
  /// exponential cost) for the open cells when `allow_naive` is set, and
  /// the kUnimplemented outcome otherwise. Useful for tooling and for
  /// teaching the complexity matrix (paper Figure 6).
  Result<std::string> Explain(const AggregateQuery& query,
                              MappingSemantics mapping_semantics,
                              AggregateSemantics aggregate_semantics) const;

  /// SQL front door for grouped statements.
  Result<std::vector<GroupedAnswer>> AnswerGroupedSql(
      std::string_view sql, const PMapping& pmapping, const Table& source,
      MappingSemantics mapping_semantics,
      AggregateSemantics aggregate_semantics,
      CancellationToken cancel = {}) const;

 private:
  /// `policy` is the parallelism granted to the algorithm cells that
  /// support it. Engine::Answer grants `options_.threads`; AnswerGrouped
  /// passes the serial policy because the groups themselves are the
  /// parallel axis there.
  Result<AggregateAnswer> AnswerByTuple(const AggregateQuery& query,
                                        const PMapping& pmapping,
                                        const Table& source,
                                        AggregateSemantics semantics,
                                        const std::vector<uint32_t>* rows,
                                        ExecContext* ctx,
                                        const exec::ExecPolicy& policy) const;

  /// Sharded variant of the exact by-tuple pass: partitions the rows
  /// into `options_.shards` fault domains, runs the cell's algorithm
  /// shard-local under the shard supervisor, and merges the partials.
  /// Only called for cells the shardability matrix approves (see
  /// EngineOptions::shards).
  Result<AggregateAnswer> AnswerByTupleSharded(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source, AggregateSemantics semantics,
      ExecContext* ctx) const;

  /// Re-answers an ungrouped by-tuple query with the Monte-Carlo sampler
  /// after the exact pass failed with `exact_failure` (a budget error),
  /// under a fresh budget of the same size.
  Result<AggregateAnswer> DegradeToSampling(const AggregateQuery& query,
                                            const PMapping& pmapping,
                                            const Table& source,
                                            AggregateSemantics semantics,
                                            const Status& exact_failure,
                                            CancellationToken cancel) const;

  Result<std::string> ExplainCell(const AggregateQuery& query,
                                  MappingSemantics mapping_semantics,
                                  AggregateSemantics aggregate_semantics) const;

  /// Fills the request-shaped QueryStats fields (algorithm cell via
  /// ExplainCell, semantics strings, rows, mappings). Wall time and the
  /// charged counters are the caller's job.
  void FillCommonStats(QueryStats* stats, const AggregateQuery& query,
                       const PMapping& pmapping,
                       MappingSemantics mapping_semantics,
                       AggregateSemantics aggregate_semantics,
                       uint64_t rows) const;

  EngineOptions options_;
};

}  // namespace aqua

#endif  // AQUA_CORE_ENGINE_H_
