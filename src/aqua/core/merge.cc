#include "aqua/core/merge.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "aqua/common/status.h"

namespace aqua::merge {

Interval MergeIntervalSum(const std::vector<ShardPartial>& parts) {
  Interval total{0.0, 0.0};
  for (const ShardPartial& p : parts) {
    total.low += p.range.low;
    total.high += p.range.high;
  }
  return total;
}

double MergeExpectedSum(const std::vector<ShardPartial>& parts) {
  double total = 0.0;
  for (const ShardPartial& p : parts) total += p.expected;
  return total;
}

NormalApproximation MergeMoments(
    const std::vector<NormalApproximation>& parts) {
  NormalApproximation total;
  for (const NormalApproximation& p : parts) {
    total.mean += p.mean;
    total.variance += p.variance;
  }
  return total;
}

Result<Distribution> MergeCountDistributions(
    const std::vector<ShardPartial>& parts) {
  // Dense DP vector indexed by count, folded one shard at a time in shard
  // order. Starting from the point mass at zero makes an all-empty input
  // merge to COUNT = 0 with probability 1, matching the serial DP on an
  // empty row set.
  std::vector<double> acc{1.0};
  for (size_t s = 0; s < parts.size(); ++s) {
    const Distribution& dist = parts[s].dist;
    if (dist.empty()) continue;  // convolution identity
    long long max_count = 0;
    for (const Distribution::Entry& e : dist.entries()) {
      const long long c = std::llround(e.outcome);
      if (c < 0 || static_cast<double>(c) != e.outcome) {  // aqua-lint: allow(float-equality) integral-outcome validation
        return Status::InvalidArgument(
            "MergeCountDistributions: shard " + std::to_string(s) +
            " has non-integer or negative COUNT outcome " +
            std::to_string(e.outcome));
      }
      max_count = std::max(max_count, c);
    }
    std::vector<double> next(acc.size() + static_cast<size_t>(max_count),
                             0.0);
    for (size_t i = 0; i < acc.size(); ++i) {
      if (acc[i] == 0.0) continue;  // aqua-lint: allow(float-equality) exact-zero skip
      for (const Distribution::Entry& e : dist.entries()) {
        const size_t c = static_cast<size_t>(std::llround(e.outcome));
        next[i + c] += acc[i] * e.prob;
      }
    }
    acc = std::move(next);
  }
  // Emit in ascending count order, skipping zero cells, exactly as the
  // serial DP emits its final band.
  Distribution out;
  for (size_t c = 0; c < acc.size(); ++c) {
    if (acc[c] > 0.0) out.AddMass(static_cast<double>(c), acc[c]);
  }
  return out;
}

Result<NaiveAnswer> MergeExtremeDistributions(
    const std::vector<ShardPartial>& parts, bool is_max) {
  const size_t num_shards = parts.size();

  // Union grid of outcomes, swept ascending for MAX (CDF product) and
  // descending for MIN (survival-function product).
  std::vector<double> grid;
  for (const ShardPartial& p : parts) {
    for (const Distribution::Entry& e : p.dist.entries()) {
      grid.push_back(e.outcome);
    }
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  if (!is_max) std::reverse(grid.begin(), grid.end());

  // Per-shard running mass g[s] = Pr(shard extremum undefined or already
  // passed on the sweep), seeded with the shard's undefined mass. The
  // product over shards at grid point x is Pr(combined extremum undefined
  // or <= x) for MAX (>= x for MIN); successive differences are the atoms.
  std::vector<double> g(num_shards);
  std::vector<size_t> pos(num_shards, 0);
  double prev = 1.0;
  for (size_t s = 0; s < num_shards; ++s) {
    g[s] = parts[s].undefined_mass;
    prev *= parts[s].undefined_mass;
  }
  const double undefined = prev;

  Distribution out;
  for (const double x : grid) {
    for (size_t s = 0; s < num_shards; ++s) {
      const std::vector<Distribution::Entry>& entries =
          parts[s].dist.entries();
      if (is_max) {
        while (pos[s] < entries.size() && entries[pos[s]].outcome <= x) {
          g[s] += entries[pos[s]].prob;
          ++pos[s];
        }
      } else {
        // MIN sweeps the sorted entries from the top down.
        while (pos[s] < entries.size() &&
               entries[entries.size() - 1 - pos[s]].outcome >= x) {
          g[s] += entries[entries.size() - 1 - pos[s]].prob;
          ++pos[s];
        }
      }
    }
    double cdf = 1.0;
    for (size_t s = 0; s < num_shards; ++s) cdf *= g[s];
    const double atom = cdf - prev;
    if (atom > 0.0) out.AddMass(x, atom);
    prev = cdf;
  }

  // Atoms for MIN were emitted in descending outcome order; AddMass keeps
  // the entry list sorted, so `out` is already canonical.
  NaiveAnswer answer;
  answer.distribution = std::move(out);
  answer.undefined_mass = undefined;
  return answer;
}

}  // namespace aqua::merge
