#ifndef AQUA_CORE_NAIVE_H_
#define AQUA_CORE_NAIVE_H_

#include <cstdint>
#include <vector>

#include "aqua/common/exec_context.h"
#include "aqua/common/interval.h"
#include "aqua/mapping/p_mapping.h"
#include "aqua/prob/distribution.h"
#include "aqua/query/ast.h"
#include "aqua/storage/table.h"

namespace aqua {

/// Guard rails for exhaustive sequence enumeration.
struct NaiveOptions {
  /// Refuse to enumerate more than this many sequences (l^n). The default
  /// allows ~4M sequences — seconds of work — so accidentally handing a
  /// real table to the naive path fails fast instead of running for the
  /// "more than 10 days" the paper reports for 36 eBay tuples.
  uint64_t max_sequences = uint64_t{1} << 22;
};

/// Result of exhaustive enumeration. Sequences under which the aggregate
/// is undefined (an empty qualifying set for AVG/MIN/MAX) contribute no
/// outcome; their total probability is reported separately so callers can
/// decide whether to condition on definedness or fail.
struct NaiveAnswer {
  Distribution distribution;
  double undefined_mass = 0.0;
};

/// The generic exponential by-tuple algorithm (paper §IV-B): enumerate all
/// l^n mapping sequences, evaluate the aggregate per sequence, and
/// accumulate Pr(sequence) onto the resulting value. This is both the only
/// known exact algorithm for the semantics the paper leaves open
/// (by-tuple distribution/expected value of SUM, AVG, MIN, MAX) and the
/// oracle our property tests compare the PTIME algorithms against.
class NaiveByTuple {
 public:
  /// Full distribution over defined outcomes. O(l^n * n).
  /// DISTINCT is supported only for MIN/MAX (where it is a no-op).
  /// The enumeration charges one `ctx` step per sequence, so a deadline or
  /// cancellation interrupts it within `ExecContext::kCheckInterval`
  /// sequences.
  static Result<NaiveAnswer> Dist(const AggregateQuery& query,
                                  const PMapping& pmapping,
                                  const Table& source,
                                  const NaiveOptions& options = {},
                                  const std::vector<uint32_t>* rows = nullptr,
                                  ExecContext* ctx = nullptr);

  /// Expected value; fails if any sequence leaves the aggregate undefined
  /// (the expectation would be conditional).
  static Result<double> Expected(const AggregateQuery& query,
                                 const PMapping& pmapping,
                                 const Table& source,
                                 const NaiveOptions& options = {},
                                 const std::vector<uint32_t>* rows = nullptr,
                                 ExecContext* ctx = nullptr);

  /// Range over defined outcomes.
  static Result<Interval> Range(const AggregateQuery& query,
                                const PMapping& pmapping, const Table& source,
                                const NaiveOptions& options = {},
                                const std::vector<uint32_t>* rows = nullptr,
                                ExecContext* ctx = nullptr);
};

}  // namespace aqua

#endif  // AQUA_CORE_NAIVE_H_
