#include "aqua/core/by_tuple_minmax.h"

#include <algorithm>
#include <limits>

#include "aqua/core/by_tuple_common.h"
#include "aqua/obs/trace.h"

namespace aqua {
namespace {

using by_tuple_internal::ForEachRow;
using by_tuple_internal::TupleSatisfies;

struct Extremes {
  bool has_any = false;        // some tuple can satisfy
  bool has_mandatory = false;  // some tuple satisfies under all mappings
  // Over tuples with >= 1 satisfying mapping:
  double any_min_of_vmin = std::numeric_limits<double>::infinity();
  double any_max_of_vmax = -std::numeric_limits<double>::infinity();
  // Over mandatory tuples:
  double mand_max_of_vmin = -std::numeric_limits<double>::infinity();
  double mand_min_of_vmax = std::numeric_limits<double>::infinity();
};

Result<Extremes> Collect(const AggregateQuery& query,
                         const PMapping& pmapping, const Table& source,
                         const std::vector<uint32_t>* rows,
                         AggregateFunction expected, ExecContext* ctx) {
  if (query.func != expected) {
    return Status::InvalidArgument(
        std::string("expected a ") +
        std::string(AggregateFunctionToString(expected)) + " query, got " +
        std::string(AggregateFunctionToString(query.func)));
  }
  AQUA_ASSIGN_OR_RETURN(std::vector<Reformulator::MappingBinding> bindings,
                        Reformulator::BindAll(query, pmapping, source));
  AQUA_RETURN_NOT_OK(ExecCharge(
      ctx, by_tuple_internal::RowCount(source.num_rows(), rows) *
               bindings.size()));
  AQUA_RETURN_NOT_OK(ExecCheckNow(ctx));
  Extremes e;
  ForEachRow(source.num_rows(), rows, [&](size_t r) {
    bool any = false;
    bool all = true;
    double vmin = 0.0, vmax = 0.0;
    for (const auto& b : bindings) {
      if (!TupleSatisfies(b, source, r)) {
        all = false;
        continue;
      }
      const double v = b.attribute->NumericAt(r);
      if (!any) {
        vmin = vmax = v;
        any = true;
      } else {
        vmin = std::min(vmin, v);
        vmax = std::max(vmax, v);
      }
    }
    if (!any) return;
    e.has_any = true;
    e.any_min_of_vmin = std::min(e.any_min_of_vmin, vmin);
    e.any_max_of_vmax = std::max(e.any_max_of_vmax, vmax);
    if (all) {
      e.has_mandatory = true;
      e.mand_max_of_vmin = std::max(e.mand_max_of_vmin, vmin);
      e.mand_min_of_vmax = std::min(e.mand_min_of_vmax, vmax);
    }
  });
  if (!e.has_any) {
    return Status::InvalidArgument(
        std::string(AggregateFunctionToString(expected)) +
        " is undefined: no tuple satisfies the condition under any mapping");
  }
  return e;
}

}  // namespace

Result<Interval> ByTupleMinMax::RangeMax(const AggregateQuery& query,
                                         const PMapping& pmapping,
                                         const Table& source,
                                         const std::vector<uint32_t>* rows,
                                         ExecContext* ctx) {
  obs::TraceSpan span("ByTupleMinMax::RangeMax");
  AQUA_ASSIGN_OR_RETURN(
      Extremes e,
      Collect(query, pmapping, source, rows, AggregateFunction::kMax, ctx));
  // Upper: include the tuple/mapping pair with the globally largest value.
  const double up = e.any_max_of_vmax;
  // Lower: mandatory tuples force the max up to the largest of their
  // minima; with no mandatory tuple, the cheapest defined outcome keeps
  // only the tuple whose minimum satisfying value is smallest.
  const double low =
      e.has_mandatory ? e.mand_max_of_vmin : e.any_min_of_vmin;
  return Interval{low, up};
}

Result<Interval> ByTupleMinMax::RangeMin(const AggregateQuery& query,
                                         const PMapping& pmapping,
                                         const Table& source,
                                         const std::vector<uint32_t>* rows,
                                         ExecContext* ctx) {
  obs::TraceSpan span("ByTupleMinMax::RangeMin");
  AQUA_ASSIGN_OR_RETURN(
      Extremes e,
      Collect(query, pmapping, source, rows, AggregateFunction::kMin, ctx));
  const double low = e.any_min_of_vmin;
  const double up = e.has_mandatory ? e.mand_min_of_vmax : e.any_max_of_vmax;
  return Interval{low, up};
}

namespace {

/// Shared sweep for DistMax/DistMin. `toward_max` selects the direction:
/// MAX sweeps candidate values ascending accumulating P(MAX <= x); MIN
/// sweeps descending accumulating P(MIN >= x).
Result<NaiveAnswer> DistExtremum(const AggregateQuery& query,
                                 const PMapping& pmapping, const Table& source,
                                 const std::vector<uint32_t>* rows,
                                 AggregateFunction expected, bool toward_max,
                                 ExecContext* ctx) {
  if (query.func != expected) {
    return Status::InvalidArgument(
        std::string("expected a ") +
        std::string(AggregateFunctionToString(expected)) + " query, got " +
        std::string(AggregateFunctionToString(query.func)));
  }
  AQUA_ASSIGN_OR_RETURN(std::vector<Reformulator::MappingBinding> bindings,
                        Reformulator::BindAll(query, pmapping, source));

  // Events: one per satisfying (tuple, mapping) pair. Sorted by value in
  // sweep order, applying an event moves probability mass Pr(m_j) of its
  // tuple from "not yet covered" into q_i.
  struct Event {
    double value;
    uint32_t tuple;  // dense index over visited rows
    double prob;
  };
  std::vector<Event> events;
  std::vector<double> excluded;  // per-tuple Pr(contributes nothing)
  uint32_t dense = 0;
  by_tuple_internal::ForEachRow(source.num_rows(), rows, [&](size_t r) {
    double excl = 0.0;
    bool any = false;
    const uint32_t i = dense;
    for (const auto& b : bindings) {
      if (TupleSatisfies(b, source, r)) {
        events.push_back(Event{b.attribute->NumericAt(r), i, b.probability});
        any = true;
      } else {
        excl += b.probability;
      }
    }
    if (!any) return;  // never contributes: drop from the product entirely
    excluded.push_back(excl);
    ++dense;
  });

  NaiveAnswer answer;
  if (events.empty()) {
    answer.undefined_mass = 1.0;
    return answer;
  }
  // The sort and sweep are both O(E log E) / O(E) over the event list;
  // charge the events once (with their log factor) before sorting.
  AQUA_RETURN_NOT_OK(ExecChargeBytes(ctx, events.size() * sizeof(Event)));
  AQUA_RETURN_NOT_OK(ExecCharge(ctx, events.size()));
  AQUA_RETURN_NOT_OK(ExecCheckNow(ctx));
  std::sort(events.begin(), events.end(),
            [&](const Event& a, const Event& b) {
              return toward_max ? a.value < b.value : a.value > b.value;
            });

  // Running product of q_i over tuples, with explicit zero tracking so a
  // q_i leaving zero never divides by zero.
  std::vector<double> q = excluded;
  size_t zeros = 0;
  double product = 1.0;
  double undefined = 1.0;
  for (double e : q) {
    // Exact-zero factors are tracked separately so the running product
    // never collapses to 0.
    // aqua-lint: allow(float-equality)
    if (e == 0.0) {
      ++zeros;
    } else {
      product *= e;
    }
    undefined *= e;
  }
  answer.undefined_mass = undefined;

  // Sweep: after absorbing all events at value x, the running product is
  // P(extremum is defined and bounded by x) + undefined mass; the atom at
  // x is the increase over the previous cumulative value.
  double prev_cdf = undefined;  // P(all excluded) = "bounded by" vacuously
  std::vector<Distribution::Entry> entries;
  size_t pos = 0;
  while (pos < events.size()) {
    AQUA_RETURN_NOT_OK(ExecCharge(ctx, 1));
    const double x = events[pos].value;
    while (pos < events.size() && events[pos].value == x) {
      const Event& ev = events[pos];
      const double old_q = q[ev.tuple];
      const double new_q = old_q + ev.prob;
      // Mirrors the exact-zero tracking above; old_q is 0.0 only if it
      // was never touched.
      // aqua-lint: allow(float-equality)
      if (old_q == 0.0) {
        --zeros;
        product *= new_q;
      } else {
        product *= new_q / old_q;
      }
      q[ev.tuple] = new_q;
      ++pos;
    }
    const double cdf = zeros > 0 ? 0.0 : product;
    const double atom = cdf - prev_cdf;
    if (atom > 0.0) {
      entries.push_back(Distribution::Entry{x, atom});
    }
    prev_cdf = cdf;
  }
  AQUA_ASSIGN_OR_RETURN(answer.distribution,
                        Distribution::FromEntries(std::move(entries)));
  return answer;
}

}  // namespace

Result<NaiveAnswer> ByTupleMinMax::DistMax(const AggregateQuery& query,
                                           const PMapping& pmapping,
                                           const Table& source,
                                           const std::vector<uint32_t>* rows,
                                           ExecContext* ctx) {
  obs::TraceSpan span("ByTupleMinMax::DistMax");
  return DistExtremum(query, pmapping, source, rows, AggregateFunction::kMax,
                      /*toward_max=*/true, ctx);
}

Result<NaiveAnswer> ByTupleMinMax::DistMin(const AggregateQuery& query,
                                           const PMapping& pmapping,
                                           const Table& source,
                                           const std::vector<uint32_t>* rows,
                                           ExecContext* ctx) {
  obs::TraceSpan span("ByTupleMinMax::DistMin");
  return DistExtremum(query, pmapping, source, rows, AggregateFunction::kMin,
                      /*toward_max=*/false, ctx);
}

namespace {

Result<double> ExpectedFrom(Result<NaiveAnswer> answer) {
  AQUA_RETURN_NOT_OK(answer.status());
  if (answer->undefined_mass > 1e-12) {
    return Status::InvalidArgument(
        "expected value is undefined: the aggregate has no value with "
        "probability " +
        std::to_string(answer->undefined_mass));
  }
  return answer->distribution.Expectation();
}

}  // namespace

Result<double> ByTupleMinMax::ExpectedMax(const AggregateQuery& query,
                                          const PMapping& pmapping,
                                          const Table& source,
                                          const std::vector<uint32_t>* rows,
                                          ExecContext* ctx) {
  obs::TraceSpan span("ByTupleMinMax::ExpectedMax");
  return ExpectedFrom(DistMax(query, pmapping, source, rows, ctx));
}

Result<double> ByTupleMinMax::ExpectedMin(const AggregateQuery& query,
                                          const PMapping& pmapping,
                                          const Table& source,
                                          const std::vector<uint32_t>* rows,
                                          ExecContext* ctx) {
  obs::TraceSpan span("ByTupleMinMax::ExpectedMin");
  return ExpectedFrom(DistMin(query, pmapping, source, rows, ctx));
}

}  // namespace aqua
