#include "aqua/core/by_tuple_sum.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "aqua/core/by_table.h"
#include "aqua/core/by_tuple_common.h"
#include "aqua/obs/trace.h"

namespace aqua {
namespace {

using by_tuple_internal::ForEachRow;
using by_tuple_internal::TupleSatisfies;

/// Per-tuple summary across the candidate mappings.
struct TupleStats {
  bool any = false;   // satisfies under >= 1 mapping
  bool all = true;    // satisfies under every mapping
  double vmin = 0.0;  // min attribute value over satisfying mappings
  double vmax = 0.0;  // max attribute value over satisfying mappings
};

TupleStats Summarise(const std::vector<Reformulator::MappingBinding>& bindings,
                     const Table& table, size_t row) {
  TupleStats s;
  for (const auto& b : bindings) {
    if (!TupleSatisfies(b, table, row)) {
      s.all = false;
      continue;
    }
    const double v = b.attribute->NumericAt(row);
    if (!s.any) {
      s.vmin = s.vmax = v;
      s.any = true;
    } else {
      s.vmin = std::min(s.vmin, v);
      s.vmax = std::max(s.vmax, v);
    }
  }
  if (!s.any) s.all = false;
  return s;
}

Result<std::vector<Reformulator::MappingBinding>> BindChecked(
    const AggregateQuery& query, const PMapping& pmapping,
    const Table& source, AggregateFunction expected) {
  if (query.func != expected) {
    return Status::InvalidArgument(
        std::string("expected a ") +
        std::string(AggregateFunctionToString(expected)) + " query, got " +
        std::string(AggregateFunctionToString(query.func)));
  }
  if (query.distinct) {
    return Status::Unimplemented(
        std::string(AggregateFunctionToString(expected)) +
        "(DISTINCT) has no PTIME by-tuple algorithm");
  }
  return Reformulator::BindAll(query, pmapping, source);
}

}  // namespace

Result<Interval> ByTupleSum::RangeSum(const AggregateQuery& query,
                                      const PMapping& pmapping,
                                      const Table& source,
                                      const std::vector<uint32_t>* rows,
                                      ExecContext* ctx) {
  obs::TraceSpan span("ByTupleSum::RangeSum");
  AQUA_ASSIGN_OR_RETURN(
      std::vector<Reformulator::MappingBinding> bindings,
      BindChecked(query, pmapping, source, AggregateFunction::kSum));
  AQUA_RETURN_NOT_OK(ExecCharge(
      ctx, by_tuple_internal::RowCount(source.num_rows(), rows) *
               bindings.size()));
  AQUA_RETURN_NOT_OK(ExecCheckNow(ctx));
  double low = 0.0;
  double up = 0.0;
  ForEachRow(source.num_rows(), rows, [&](size_t r) {
    const TupleStats s = Summarise(bindings, source, r);
    if (!s.any) return;
    if (s.all) {
      low += s.vmin;
      up += s.vmax;
    } else {
      // The tuple can also be excluded by picking a non-satisfying
      // mapping, so each bound may take 0 instead of an extreme value.
      low += std::min(0.0, s.vmin);
      up += std::max(0.0, s.vmax);
    }
  });
  return Interval{low, up};
}

Result<double> ByTupleSum::ExpectedSum(const AggregateQuery& query,
                                       const PMapping& pmapping,
                                       const Table& source) {
  obs::TraceSpan span("ByTupleSum::ExpectedSum");
  if (query.func != AggregateFunction::kSum) {
    return Status::InvalidArgument("ExpectedSum requires a SUM query");
  }
  if (query.distinct) {
    return Status::Unimplemented(
        "SUM(DISTINCT) has no PTIME by-tuple algorithm");
  }
  // Theorem 4: the by-tuple expected value of SUM equals the by-table one,
  // because each tuple's mapping choice is independent and SUM is linear.
  AQUA_ASSIGN_OR_RETURN(
      AggregateAnswer answer,
      ByTable::Answer(query, pmapping, source,
                      AggregateSemantics::kExpectedValue));
  return answer.expected_value;
}

Result<Distribution> ByTupleSum::DistQuantized(
    const AggregateQuery& query, const PMapping& pmapping, const Table& source,
    const QuantizedDistOptions& options, const std::vector<uint32_t>* rows,
    ExecContext* ctx) {
  obs::TraceSpan span("ByTupleSum::DistQuantized");
  if (options.resolution <= 0.0) {
    return Status::InvalidArgument("resolution must be positive");
  }
  AQUA_ASSIGN_OR_RETURN(
      std::vector<Reformulator::MappingBinding> bindings,
      BindChecked(query, pmapping, source, AggregateFunction::kSum));

  // Per-tuple contribution atoms on the bucket grid: (bucket, probability)
  // with equal buckets merged. A non-satisfying mapping contributes
  // bucket 0.
  struct Atom {
    int64_t bucket;
    double prob;
  };
  std::vector<std::vector<Atom>> tuples;
  int64_t total_min = 0;
  int64_t total_max = 0;
  Status scan_status = Status::OK();
  by_tuple_internal::ForEachRow(source.num_rows(), rows, [&](size_t r) {
    if (!scan_status.ok()) return;
    std::vector<Atom> atoms;
    for (const auto& b : bindings) {
      int64_t bucket = 0;
      if (TupleSatisfies(b, source, r)) {
        const double scaled = b.attribute->NumericAt(r) / options.resolution;
        if (std::fabs(scaled) >=
            static_cast<double>(std::numeric_limits<int64_t>::max()) / 4) {
          scan_status = Status::OutOfRange(
              "attribute value overflows the quantisation grid; increase "
              "resolution");
          return;
        }
        bucket = std::llround(scaled);
      }
      bool merged = false;
      for (Atom& a : atoms) {
        if (a.bucket == bucket) {
          a.prob += b.probability;
          merged = true;
          break;
        }
      }
      if (!merged) atoms.push_back(Atom{bucket, b.probability});
    }
    // Tuples whose every candidate contributes bucket 0 never move the
    // sum; skip them entirely.
    if (atoms.size() == 1 && atoms[0].bucket == 0) return;
    int64_t mn = atoms[0].bucket;
    int64_t mx = atoms[0].bucket;
    for (const Atom& a : atoms) {
      mn = std::min(mn, a.bucket);
      mx = std::max(mx, a.bucket);
    }
    total_min += mn;
    total_max += mx;
    tuples.push_back(std::move(atoms));
  });
  AQUA_RETURN_NOT_OK(scan_status);

  const uint64_t width = static_cast<uint64_t>(total_max - total_min) + 1;
  if (width > options.max_buckets) {
    return Status::ResourceExhausted(
        "quantised sum range needs " + std::to_string(width) +
        " buckets, over the limit of " + std::to_string(options.max_buckets) +
        "; increase resolution or max_buckets");
  }
  AQUA_RETURN_NOT_OK(ExecChargeBytes(ctx, 2 * width * sizeof(double)));

  // DP over the reachable sum window. pd[s] = Pr(sum == total_min + s)
  // over the tuples processed so far; window grows with each tuple.
  std::vector<double> pd(width, 0.0);
  std::vector<double> next(width, 0.0);
  // Offsets are relative to the running minimum so pd[0] is always the
  // smallest reachable sum.
  int64_t base = 0;  // running sum of per-tuple minima, relative origin
  pd[0] = 1.0;
  uint64_t reach = 1;  // number of occupied slots
  for (const std::vector<Atom>& atoms : tuples) {
    // Pseudo-polynomial inner work: one step per occupied DP slot.
    AQUA_RETURN_NOT_OK(ExecCharge(ctx, reach));
    int64_t mn = atoms[0].bucket;
    int64_t mx = atoms[0].bucket;
    for (const Atom& a : atoms) {
      mn = std::min(mn, a.bucket);
      mx = std::max(mx, a.bucket);
    }
    const uint64_t new_reach = reach + static_cast<uint64_t>(mx - mn);
    std::fill(next.begin(), next.begin() + static_cast<ptrdiff_t>(new_reach),
              0.0);
    for (uint64_t s = 0; s < reach; ++s) {
      const double p = pd[s];
      // aqua-lint: allow(float-equality) — skipping exactly-zero DP cells is a sparsity fast path, not a tolerance comparison.
      if (p == 0.0) continue;
      for (const Atom& a : atoms) {
        next[s + static_cast<uint64_t>(a.bucket - mn)] += p * a.prob;
      }
    }
    pd.swap(next);
    reach = new_reach;
    base += mn;
  }

  std::vector<Distribution::Entry> entries;
  for (uint64_t s = 0; s < reach; ++s) {
    if (pd[s] > 0.0) {
      entries.push_back(Distribution::Entry{
          static_cast<double>(base + static_cast<int64_t>(s)) *
              options.resolution,
          pd[s]});
    }
  }
  if (entries.empty()) entries.push_back(Distribution::Entry{0.0, 1.0});
  return Distribution::FromEntries(std::move(entries));
}

Result<NaiveAnswer> ByTupleSum::DistAvgQuantized(
    const AggregateQuery& query, const PMapping& pmapping, const Table& source,
    const QuantizedDistOptions& options, const std::vector<uint32_t>* rows,
    ExecContext* ctx) {
  obs::TraceSpan span("ByTupleSum::DistAvgQuantized");
  if (options.resolution <= 0.0) {
    return Status::InvalidArgument("resolution must be positive");
  }
  AQUA_ASSIGN_OR_RETURN(
      std::vector<Reformulator::MappingBinding> bindings,
      BindChecked(query, pmapping, source, AggregateFunction::kAvg));

  struct Atom {
    int64_t bucket;
    double prob;
  };
  struct TupleAtoms {
    std::vector<Atom> atoms;  // satisfying contributions
    double excluded = 0.0;    // probability of contributing nothing
  };
  std::vector<TupleAtoms> tuples;
  int64_t sum_min = 0;  // over included choices only (exclusion adds 0)
  int64_t sum_max = 0;
  Status scan_status = Status::OK();
  by_tuple_internal::ForEachRow(source.num_rows(), rows, [&](size_t r) {
    if (!scan_status.ok()) return;
    TupleAtoms t;
    for (const auto& b : bindings) {
      if (!TupleSatisfies(b, source, r)) {
        t.excluded += b.probability;
        continue;
      }
      const double scaled = b.attribute->NumericAt(r) / options.resolution;
      if (std::fabs(scaled) >=
          static_cast<double>(std::numeric_limits<int64_t>::max()) / 4) {
        scan_status = Status::OutOfRange(
            "attribute value overflows the quantisation grid; increase "
            "resolution");
        return;
      }
      const int64_t bucket = std::llround(scaled);
      bool merged = false;
      for (Atom& a : t.atoms) {
        if (a.bucket == bucket) {
          a.prob += b.probability;
          merged = true;
          break;
        }
      }
      if (!merged) t.atoms.push_back(Atom{bucket, b.probability});
    }
    if (t.atoms.empty()) return;  // never qualifies: irrelevant to AVG
    int64_t mn = t.atoms[0].bucket;
    int64_t mx = t.atoms[0].bucket;
    for (const Atom& a : t.atoms) {
      mn = std::min(mn, a.bucket);
      mx = std::max(mx, a.bucket);
    }
    sum_min += std::min<int64_t>(0, mn);
    sum_max += std::max<int64_t>(0, mx);
    tuples.push_back(std::move(t));
  });
  AQUA_RETURN_NOT_OK(scan_status);

  NaiveAnswer answer;
  const size_t n = tuples.size();
  if (n == 0) {
    answer.undefined_mass = 1.0;
    return answer;
  }
  const uint64_t width = static_cast<uint64_t>(sum_max - sum_min) + 1;
  const uint64_t states = (static_cast<uint64_t>(n) + 1) * width;
  if (states > options.max_states) {
    return Status::ResourceExhausted(
        "joint (count, sum) DP needs " + std::to_string(states) +
        " states, over the limit of " + std::to_string(options.max_states) +
        "; increase resolution or max_states");
  }

  AQUA_RETURN_NOT_OK(ExecChargeBytes(ctx, 2 * states * sizeof(double)));
  // pd[c * width + s] = Pr(count == c, sum == sum_min + s). Double buffer
  // because a tuple both shifts (c, s) and keeps it (exclusion).
  std::vector<double> pd(states, 0.0);
  std::vector<double> next(states, 0.0);
  const size_t origin = static_cast<size_t>(-sum_min);  // s index of sum 0
  pd[origin] = 1.0;  // c = 0
  for (const TupleAtoms& t : tuples) {
    // One step per joint-DP state touched for this tuple.
    AQUA_RETURN_NOT_OK(ExecCharge(ctx, states));
    std::fill(next.begin(), next.end(), 0.0);
    for (size_t c = 0; c < n; ++c) {  // c = n only reachable at the end
      const double* row = &pd[c * width];
      double* keep = &next[c * width];
      double* bump = &next[(c + 1) * width];
      for (uint64_t s = 0; s < width; ++s) {
        const double p = row[s];
        // aqua-lint: allow(float-equality) — skipping exactly-zero DP cells is a sparsity fast path, not a tolerance comparison.
        if (p == 0.0) continue;
        keep[s] += p * t.excluded;
        for (const Atom& a : t.atoms) {
          bump[s + static_cast<uint64_t>(a.bucket)] += p * a.prob;
        }
      }
    }
    // Row c = n of pd can only exist after the last tuple; copy it too.
    const double* last = &pd[n * width];
    double* keep = &next[n * width];
    for (uint64_t s = 0; s < width; ++s) keep[s] += last[s] * t.excluded;
    pd.swap(next);
  }

  // Collapse (c, s) -> AVG = (sum_min + s) * resolution / c.
  std::unordered_map<double, double> mass;
  answer.undefined_mass = pd[origin];  // c = 0
  for (size_t c = 1; c <= n; ++c) {
    for (uint64_t s = 0; s < width; ++s) {
      const double p = pd[c * width + s];
      // aqua-lint: allow(float-equality) — skipping exactly-zero DP cells is a sparsity fast path, not a tolerance comparison.
      if (p == 0.0) continue;
      const double sum =
          (static_cast<double>(sum_min) + static_cast<double>(s)) *
          options.resolution;
      mass[sum / static_cast<double>(c)] += p;
    }
  }
  std::vector<Distribution::Entry> entries;
  entries.reserve(mass.size());
  for (const auto& [outcome, prob] : mass) {
    entries.push_back(Distribution::Entry{outcome, prob});
  }
  AQUA_ASSIGN_OR_RETURN(answer.distribution,
                        Distribution::FromEntries(std::move(entries)));
  return answer;
}

Result<double> ByTupleSum::ExpectedSumLinear(const AggregateQuery& query,
                                             const PMapping& pmapping,
                                             const Table& source,
                                             const std::vector<uint32_t>* rows,
                                             ExecContext* ctx) {
  obs::TraceSpan span("ByTupleSum::ExpectedSumLinear");
  AQUA_ASSIGN_OR_RETURN(
      std::vector<Reformulator::MappingBinding> bindings,
      BindChecked(query, pmapping, source, AggregateFunction::kSum));
  AQUA_RETURN_NOT_OK(ExecCharge(
      ctx, by_tuple_internal::RowCount(source.num_rows(), rows) *
               bindings.size()));
  AQUA_RETURN_NOT_OK(ExecCheckNow(ctx));
  double expected = 0.0;
  ForEachRow(source.num_rows(), rows, [&](size_t r) {
    for (const auto& b : bindings) {
      if (TupleSatisfies(b, source, r)) {
        expected += b.probability * b.attribute->NumericAt(r);
      }
    }
  });
  return expected;
}

Result<Interval> ByTupleSum::RangeAvgPaper(const AggregateQuery& query,
                                           const PMapping& pmapping,
                                           const Table& source,
                                           const std::vector<uint32_t>* rows,
                                           ExecContext* ctx) {
  obs::TraceSpan span("ByTupleSum::RangeAvgPaper");
  AQUA_ASSIGN_OR_RETURN(
      std::vector<Reformulator::MappingBinding> bindings,
      BindChecked(query, pmapping, source, AggregateFunction::kAvg));
  AQUA_RETURN_NOT_OK(ExecCharge(
      ctx, by_tuple_internal::RowCount(source.num_rows(), rows) *
               bindings.size()));
  AQUA_RETURN_NOT_OK(ExecCheckNow(ctx));
  double low_sum = 0.0, up_sum = 0.0;
  int64_t low_cnt = 0, up_cnt = 0;
  ForEachRow(source.num_rows(), rows, [&](size_t r) {
    const TupleStats s = Summarise(bindings, source, r);
    if (!s.any) return;
    low_sum += s.vmin;
    ++low_cnt;
    up_sum += s.vmax;
    ++up_cnt;
  });
  if (low_cnt == 0) {
    return Status::InvalidArgument(
        "AVG is undefined: no tuple satisfies the condition under any "
        "mapping");
  }
  return Interval{low_sum / static_cast<double>(low_cnt),
                  up_sum / static_cast<double>(up_cnt)};
}

Result<Interval> ByTupleSum::RangeAvgExact(const AggregateQuery& query,
                                           const PMapping& pmapping,
                                           const Table& source,
                                           const std::vector<uint32_t>* rows,
                                           ExecContext* ctx) {
  obs::TraceSpan span("ByTupleSum::RangeAvgExact");
  AQUA_ASSIGN_OR_RETURN(
      std::vector<Reformulator::MappingBinding> bindings,
      BindChecked(query, pmapping, source, AggregateFunction::kAvg));
  AQUA_RETURN_NOT_OK(ExecCharge(
      ctx, by_tuple_internal::RowCount(source.num_rows(), rows) *
               bindings.size()));
  AQUA_RETURN_NOT_OK(ExecCheckNow(ctx));
  double mand_min_sum = 0.0, mand_max_sum = 0.0;
  int64_t mand_cnt = 0;
  std::vector<double> opt_min, opt_max;  // optional tuples' extreme values
  ForEachRow(source.num_rows(), rows, [&](size_t r) {
    const TupleStats s = Summarise(bindings, source, r);
    if (!s.any) return;
    if (s.all) {
      mand_min_sum += s.vmin;
      mand_max_sum += s.vmax;
      ++mand_cnt;
    } else {
      opt_min.push_back(s.vmin);
      opt_max.push_back(s.vmax);
    }
  });
  if (mand_cnt == 0 && opt_min.empty()) {
    return Status::InvalidArgument(
        "AVG is undefined: no tuple satisfies the condition under any "
        "mapping");
  }

  // Minimising the mean: optional tuples, each offering its smallest
  // satisfying value, are added in ascending order while they pull the
  // running mean down (the sorted greedy is optimal: an optional value
  // helps iff it is below the mean of the optimum it joins).
  auto optimise = [](double base_sum, int64_t base_cnt,
                     std::vector<double>& options, bool minimise) {
    std::sort(options.begin(), options.end());
    if (!minimise) std::reverse(options.begin(), options.end());
    double sum = base_sum;
    int64_t cnt = base_cnt;
    size_t i = 0;
    if (cnt == 0) {
      // At least one tuple must be included for AVG to be defined.
      sum = options[0];
      cnt = 1;
      i = 1;
    }
    for (; i < options.size(); ++i) {
      const double mean = sum / static_cast<double>(cnt);
      const bool improves = minimise ? options[i] < mean : options[i] > mean;
      if (!improves) break;
      sum += options[i];
      ++cnt;
    }
    return sum / static_cast<double>(cnt);
  };

  const double low =
      optimise(mand_min_sum, mand_cnt, opt_min, /*minimise=*/true);
  const double up =
      optimise(mand_max_sum, mand_cnt, opt_max, /*minimise=*/false);
  return Interval{low, up};
}

}  // namespace aqua
