#include "aqua/core/engine.h"

#include "aqua/common/string_util.h"
#include "aqua/core/by_table.h"
#include "aqua/core/by_tuple_count.h"
#include "aqua/core/by_tuple_minmax.h"
#include "aqua/core/by_tuple_sum.h"
#include "aqua/core/nested.h"
#include "aqua/query/executor.h"
#include "aqua/query/parser.h"
#include "aqua/reformulate/reformulator.h"

namespace aqua {
namespace {

Status OpenCell(const AggregateQuery& query, AggregateSemantics semantics) {
  return Status::Unimplemented(
      std::string("no PTIME algorithm is known for ") +
      std::string(AggregateFunctionToString(query.func)) + " under by-tuple/" +
      std::string(AggregateSemanticsToString(semantics)) +
      " semantics (paper Figure 6); enable EngineOptions::allow_naive for "
      "exponential enumeration");
}

/// Budget failures that are eligible for graceful degradation. A cancel is
/// a caller decision and is always honoured; kResourceExhausted from the
/// up-front naive guard and kDeadlineExceeded from mid-flight polling both
/// mean "the exact path is too expensive", which is exactly what sampling
/// is for.
bool DegradableFailure(const Status& s) {
  return s.code() == StatusCode::kResourceExhausted ||
         s.code() == StatusCode::kDeadlineExceeded;
}

Result<AggregateAnswer> FromNaiveDist(NaiveAnswer naive) {
  if (naive.undefined_mass > 1e-12) {
    return Status::InvalidArgument(
        "the aggregate is undefined with probability " +
        std::to_string(naive.undefined_mass) +
        "; no total distribution exists");
  }
  return AggregateAnswer::MakeDistribution(std::move(naive.distribution));
}

}  // namespace

Result<AggregateAnswer> Engine::AnswerByTuple(
    const AggregateQuery& query, const PMapping& pmapping,
    const Table& source, AggregateSemantics semantics,
    const std::vector<uint32_t>* rows, ExecContext* ctx) const {
  switch (query.func) {
    case AggregateFunction::kCount:
      switch (semantics) {
        case AggregateSemantics::kRange: {
          AQUA_ASSIGN_OR_RETURN(
              Interval r,
              ByTupleCount::Range(query, pmapping, source, rows, ctx));
          return AggregateAnswer::MakeRange(r);
        }
        case AggregateSemantics::kDistribution: {
          AQUA_ASSIGN_OR_RETURN(
              Distribution d,
              ByTupleCount::Dist(query, pmapping, source, rows, ctx));
          return AggregateAnswer::MakeDistribution(std::move(d));
        }
        case AggregateSemantics::kExpectedValue: {
          AQUA_ASSIGN_OR_RETURN(
              double e, options_.count_expected_via_distribution
                            ? ByTupleCount::ExpectedViaDistribution(
                                  query, pmapping, source, rows, ctx)
                            : ByTupleCount::Expected(query, pmapping, source,
                                                     rows, ctx));
          return AggregateAnswer::MakeExpected(e);
        }
      }
      break;
    case AggregateFunction::kSum:
      switch (semantics) {
        case AggregateSemantics::kRange: {
          AQUA_ASSIGN_OR_RETURN(
              Interval r,
              ByTupleSum::RangeSum(query, pmapping, source, rows, ctx));
          return AggregateAnswer::MakeRange(r);
        }
        case AggregateSemantics::kExpectedValue: {
          // Theorem 4: equal to the by-table expected value. The linear
          // form supports row subsets; for whole tables both paths agree.
          AQUA_ASSIGN_OR_RETURN(
              double e,
              ByTupleSum::ExpectedSumLinear(query, pmapping, source, rows,
                                            ctx));
          return AggregateAnswer::MakeExpected(e);
        }
        case AggregateSemantics::kDistribution: {
          if (!options_.allow_naive) return OpenCell(query, semantics);
          AQUA_ASSIGN_OR_RETURN(
              NaiveAnswer naive,
              NaiveByTuple::Dist(query, pmapping, source, options_.naive,
                                 rows, ctx));
          return FromNaiveDist(std::move(naive));
        }
      }
      break;
    case AggregateFunction::kAvg:
      switch (semantics) {
        case AggregateSemantics::kRange: {
          AQUA_ASSIGN_OR_RETURN(
              Interval r,
              options_.avg_range_paper
                  ? ByTupleSum::RangeAvgPaper(query, pmapping, source, rows,
                                              ctx)
                  : ByTupleSum::RangeAvgExact(query, pmapping, source, rows,
                                              ctx));
          return AggregateAnswer::MakeRange(r);
        }
        case AggregateSemantics::kDistribution: {
          if (!options_.allow_naive) return OpenCell(query, semantics);
          AQUA_ASSIGN_OR_RETURN(
              NaiveAnswer naive,
              NaiveByTuple::Dist(query, pmapping, source, options_.naive,
                                 rows, ctx));
          return FromNaiveDist(std::move(naive));
        }
        case AggregateSemantics::kExpectedValue: {
          if (!options_.allow_naive) return OpenCell(query, semantics);
          AQUA_ASSIGN_OR_RETURN(
              double e, NaiveByTuple::Expected(query, pmapping, source,
                                               options_.naive, rows, ctx));
          return AggregateAnswer::MakeExpected(e);
        }
      }
      break;
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      switch (semantics) {
        case AggregateSemantics::kRange: {
          AQUA_ASSIGN_OR_RETURN(
              Interval r,
              query.func == AggregateFunction::kMin
                  ? ByTupleMinMax::RangeMin(query, pmapping, source, rows,
                                            ctx)
                  : ByTupleMinMax::RangeMax(query, pmapping, source, rows,
                                            ctx));
          return AggregateAnswer::MakeRange(r);
        }
        case AggregateSemantics::kDistribution: {
          if (options_.minmax_distribution_exact) {
            AQUA_ASSIGN_OR_RETURN(
                NaiveAnswer exact,
                query.func == AggregateFunction::kMin
                    ? ByTupleMinMax::DistMin(query, pmapping, source, rows,
                                             ctx)
                    : ByTupleMinMax::DistMax(query, pmapping, source, rows,
                                             ctx));
            return FromNaiveDist(std::move(exact));
          }
          if (!options_.allow_naive) return OpenCell(query, semantics);
          AQUA_ASSIGN_OR_RETURN(
              NaiveAnswer naive,
              NaiveByTuple::Dist(query, pmapping, source, options_.naive,
                                 rows, ctx));
          return FromNaiveDist(std::move(naive));
        }
        case AggregateSemantics::kExpectedValue: {
          if (options_.minmax_distribution_exact) {
            AQUA_ASSIGN_OR_RETURN(
                double e,
                query.func == AggregateFunction::kMin
                    ? ByTupleMinMax::ExpectedMin(query, pmapping, source,
                                                 rows, ctx)
                    : ByTupleMinMax::ExpectedMax(query, pmapping, source,
                                                 rows, ctx));
            return AggregateAnswer::MakeExpected(e);
          }
          if (!options_.allow_naive) return OpenCell(query, semantics);
          AQUA_ASSIGN_OR_RETURN(
              double e, NaiveByTuple::Expected(query, pmapping, source,
                                               options_.naive, rows, ctx));
          return AggregateAnswer::MakeExpected(e);
        }
      }
      break;
  }
  return Status::Internal("corrupt dispatch");
}

Result<AggregateAnswer> Engine::DegradeToSampling(
    const AggregateQuery& query, const PMapping& pmapping,
    const Table& source, AggregateSemantics semantics,
    const Status& exact_failure, CancellationToken cancel) const {
  // The exact pass already spent its budget; the degraded pass runs under
  // a fresh context with the same limits, so the worst-case total cost of
  // an Answer call is twice the configured budget. The sampler itself
  // truncates gracefully once it has a usable estimate (see
  // SamplerOptions::min_samples_on_budget).
  ExecContext ctx(options_.limits, cancel);
  AQUA_ASSIGN_OR_RETURN(
      SampledAnswer sampled,
      ByTupleSampler::Sample(query, pmapping, source, options_.degrade_sampler,
                             /*rows=*/nullptr, &ctx));
  std::string note = "degraded to sampling (" + exact_failure.message() +
                     "); " + std::to_string(sampled.num_samples) + " samples";
  if (sampled.truncated) note += " (budget-truncated)";
  AggregateAnswer answer;
  switch (semantics) {
    case AggregateSemantics::kRange:
      answer = AggregateAnswer::MakeRange(sampled.observed_range);
      note += "; observed range is an inner approximation";
      break;
    case AggregateSemantics::kDistribution:
      if (sampled.undefined_samples > 0) {
        return Status::InvalidArgument(
            "degraded sampling: the aggregate was undefined in " +
            std::to_string(sampled.undefined_samples) +
            " samples; no total distribution exists");
      }
      answer = AggregateAnswer::MakeDistribution(std::move(sampled.empirical));
      break;
    case AggregateSemantics::kExpectedValue:
      if (sampled.undefined_samples > 0) {
        return Status::InvalidArgument(
            "degraded sampling: the aggregate was undefined in " +
            std::to_string(sampled.undefined_samples) + " samples");
      }
      answer = AggregateAnswer::MakeExpected(sampled.expected);
      note += "; std error " + FormatDouble(sampled.std_error);
      break;
  }
  answer.approximate = true;
  answer.note = std::move(note);
  return answer;
}

Result<AggregateAnswer> Engine::Answer(
    const AggregateQuery& query, const PMapping& pmapping, const Table& source,
    MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics, CancellationToken cancel) const {
  AQUA_RETURN_NOT_OK(query.Validate());
  if (!query.group_by.empty()) {
    return Status::InvalidArgument(
        "grouped query passed to Engine::Answer; use AnswerGrouped");
  }
  if (mapping_semantics == MappingSemantics::kByTable) {
    return ByTable::Answer(query, pmapping, source, aggregate_semantics);
  }
  ExecContext ctx(options_.limits, cancel);
  Result<AggregateAnswer> exact = AnswerByTuple(
      query, pmapping, source, aggregate_semantics, /*rows=*/nullptr, &ctx);
  if (exact.ok() || options_.degrade == DegradePolicy::kOff ||
      !DegradableFailure(exact.status())) {
    return exact;
  }
  return DegradeToSampling(query, pmapping, source, aggregate_semantics,
                           exact.status(), cancel);
}

Result<std::vector<GroupedAnswer>> Engine::AnswerGrouped(
    const AggregateQuery& query, const PMapping& pmapping, const Table& source,
    MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics, CancellationToken cancel) const {
  AQUA_RETURN_NOT_OK(query.Validate());
  if (query.group_by.empty()) {
    return Status::InvalidArgument(
        "ungrouped query passed to Engine::AnswerGrouped; use Answer");
  }
  if (mapping_semantics == MappingSemantics::kByTable) {
    return ByTable::AnswerGrouped(query, pmapping, source,
                                  aggregate_semantics);
  }
  if (query.having.has_value()) {
    return Status::Unimplemented(
        "HAVING under by-tuple semantics would make group membership "
        "probabilistic; use by-table semantics");
  }
  if (!pmapping.IsCertainTarget(query.group_by)) {
    return Status::Unimplemented(
        "by-tuple grouped aggregation requires a certain GROUP BY "
        "attribute; '" +
        query.group_by + "' maps differently across candidate mappings");
  }
  AQUA_ASSIGN_OR_RETURN(std::string source_attr,
                        pmapping.mapping(0).SourceFor(query.group_by));
  AQUA_ASSIGN_OR_RETURN(size_t col, source.schema().IndexOf(source_attr));
  AQUA_ASSIGN_OR_RETURN(GroupIndex index, GroupIndex::Build(source, col));
  std::vector<std::vector<uint32_t>> group_rows(index.num_groups());
  for (size_t r = 0; r < source.num_rows(); ++r) {
    group_rows[index.row_groups()[r]].push_back(static_cast<uint32_t>(r));
  }
  AggregateQuery ungrouped = query;
  ungrouped.group_by.clear();
  // Surface binding errors (unmapped attributes, incomparable literals)
  // once, up front: the per-group loop below treats kInvalidArgument as
  // "this group's aggregate is undefined" and would silently drop every
  // group otherwise.
  {
    const auto bindings = Reformulator::BindAll(ungrouped, pmapping, source);
    if (!bindings.ok()) return bindings.status();
  }
  std::vector<GroupedAnswer> out;
  out.reserve(index.num_groups());
  // One budget shared across all groups: a deadline bounds the whole
  // grouped query, not each group separately.
  ExecContext ctx(options_.limits, cancel);
  for (size_t g = 0; g < index.num_groups(); ++g) {
    Result<AggregateAnswer> answer =
        AnswerByTuple(ungrouped, pmapping, source, aggregate_semantics,
                      &group_rows[g], &ctx);
    if (!answer.ok()) {
      // Groups where the aggregate is undefined under every sequence (no
      // tuple ever satisfies) are omitted, like SQL omits empty groups.
      if (answer.status().code() == StatusCode::kInvalidArgument) continue;
      return answer.status();
    }
    out.push_back(GroupedAnswer{index.group_values()[g],
                                std::move(answer).value()});
  }
  return out;
}

Result<AggregateAnswer> Engine::AnswerNested(
    const NestedAggregateQuery& query, const PMapping& pmapping,
    const Table& source, MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics, CancellationToken cancel) const {
  AQUA_RETURN_NOT_OK(query.Validate());
  if (mapping_semantics == MappingSemantics::kByTable) {
    return ByTable::AnswerNested(query, pmapping, source,
                                 aggregate_semantics);
  }
  ExecContext ctx(options_.limits, cancel);
  switch (aggregate_semantics) {
    case AggregateSemantics::kRange: {
      AQUA_ASSIGN_OR_RETURN(
          Interval r, NestedByTuple::Range(query, pmapping, source, &ctx));
      return AggregateAnswer::MakeRange(r);
    }
    case AggregateSemantics::kDistribution: {
      if (!options_.allow_naive) {
        return Status::Unimplemented(
            "by-tuple nested distribution requires naive enumeration; "
            "enable EngineOptions::allow_naive");
      }
      AQUA_ASSIGN_OR_RETURN(
          NaiveAnswer naive,
          NestedByTuple::NaiveDist(query, pmapping, source, options_.naive,
                                   &ctx));
      return FromNaiveDist(std::move(naive));
    }
    case AggregateSemantics::kExpectedValue: {
      if (!options_.allow_naive) {
        return Status::Unimplemented(
            "by-tuple nested expected value requires naive enumeration; "
            "enable EngineOptions::allow_naive");
      }
      AQUA_ASSIGN_OR_RETURN(
          NaiveAnswer naive,
          NestedByTuple::NaiveDist(query, pmapping, source, options_.naive,
                                   &ctx));
      if (naive.undefined_mass > 1e-12) {
        return Status::InvalidArgument(
            "nested expected value is undefined with probability " +
            std::to_string(naive.undefined_mass));
      }
      AQUA_ASSIGN_OR_RETURN(double e, naive.distribution.Expectation());
      return AggregateAnswer::MakeExpected(e);
    }
  }
  return Status::Internal("corrupt semantics");
}

Result<std::string> Engine::Explain(
    const AggregateQuery& query, MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics) const {
  AQUA_ASSIGN_OR_RETURN(
      std::string text,
      ExplainCell(query, mapping_semantics, aggregate_semantics));
  if (mapping_semantics == MappingSemantics::kByTuple &&
      options_.degrade == DegradePolicy::kSample) {
    text +=
        "; degrade=sample: on deadline/budget exhaustion the engine "
        "re-answers via Monte-Carlo sampling and flags the answer "
        "approximate";
  }
  return text;
}

Result<std::string> Engine::ExplainCell(
    const AggregateQuery& query, MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics) const {
  AQUA_RETURN_NOT_OK(query.Validate());
  if (mapping_semantics == MappingSemantics::kByTable) {
    return std::string("ByTableAggregateQuery (reformulate per candidate, "
                       "execute, CombineResults), O(l) scans = O(l*n)");
  }
  const std::string naive =
      options_.allow_naive
          ? std::string("NaiveByTuple (enumerate mapping sequences), "
                        "O(l^n * n)")
          : std::string("unimplemented (no PTIME algorithm; "
                        "EngineOptions::allow_naive disabled)");
  switch (query.func) {
    case AggregateFunction::kCount:
      switch (aggregate_semantics) {
        case AggregateSemantics::kRange:
          return std::string("ByTupleRangeCOUNT, O(n*m)");
        case AggregateSemantics::kDistribution:
          return std::string("ByTuplePDCOUNT, O(m*n + n^2)");
        case AggregateSemantics::kExpectedValue:
          return options_.count_expected_via_distribution
                     ? std::string(
                           "ByTupleExpValCOUNT via distribution, "
                           "O(m*n + n^2)")
                     : std::string(
                           "ByTupleExpValCOUNT direct (linearity of "
                           "expectation), O(n*m)");
      }
      break;
    case AggregateFunction::kSum:
      switch (aggregate_semantics) {
        case AggregateSemantics::kRange:
          return std::string("ByTupleRangeSUM, O(n*m)");
        case AggregateSemantics::kDistribution:
          return naive;
        case AggregateSemantics::kExpectedValue:
          return std::string(
              "ByTupleExpValSUM = by-table expected value (Theorem 4), "
              "O(n*m)");
      }
      break;
    case AggregateFunction::kAvg:
      if (aggregate_semantics == AggregateSemantics::kRange) {
        return options_.avg_range_paper
                   ? std::string("ByTupleRangeAVG (paper formula), O(n*m)")
                   : std::string(
                         "ByTupleRangeAVG (tight variant), O(n*m + n log n)");
      }
      return naive;
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      if (aggregate_semantics == AggregateSemantics::kRange) {
        return std::string(query.func == AggregateFunction::kMin
                               ? "ByTupleRangeMIN, O(n*m)"
                               : "ByTupleRangeMAX, O(n*m)");
      }
      if (options_.minmax_distribution_exact) {
        return std::string(
            "exact extremum distribution via CDF factorisation "
            "(extension beyond the paper), O(n*m log(n*m))");
      }
      return naive;
  }
  return Status::Internal("corrupt dispatch");
}

Result<AggregateAnswer> Engine::AnswerSql(
    std::string_view sql, const PMapping& pmapping, const Table& source,
    MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics, CancellationToken cancel) const {
  AQUA_ASSIGN_OR_RETURN(ParsedQuery parsed, SqlParser::Parse(sql));
  if (parsed.kind == ParsedQuery::Kind::kNested) {
    return AnswerNested(parsed.nested, pmapping, source, mapping_semantics,
                        aggregate_semantics, cancel);
  }
  if (!parsed.simple.group_by.empty()) {
    return Status::InvalidArgument(
        "grouped SQL statement passed to AnswerSql; use AnswerGroupedSql");
  }
  return Answer(parsed.simple, pmapping, source, mapping_semantics,
                aggregate_semantics, cancel);
}

Result<std::vector<GroupedAnswer>> Engine::AnswerGroupedSql(
    std::string_view sql, const PMapping& pmapping, const Table& source,
    MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics, CancellationToken cancel) const {
  AQUA_ASSIGN_OR_RETURN(AggregateQuery query, SqlParser::ParseSimple(sql));
  return AnswerGrouped(query, pmapping, source, mapping_semantics,
                       aggregate_semantics, cancel);
}

}  // namespace aqua
