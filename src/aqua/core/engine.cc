#include "aqua/core/engine.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "aqua/common/check.h"
#include "aqua/common/failpoint.h"
#include "aqua/common/string_util.h"
#include "aqua/core/by_table.h"
#include "aqua/obs/metrics.h"
#include "aqua/obs/trace.h"
#include "aqua/core/by_tuple_count.h"
#include "aqua/core/by_tuple_minmax.h"
#include "aqua/core/by_tuple_sum.h"
#include "aqua/core/merge.h"
#include "aqua/core/nested.h"
#include "aqua/query/executor.h"
#include "aqua/query/parser.h"
#include "aqua/reformulate/reformulator.h"

namespace aqua {
namespace {

Status OpenCell(const AggregateQuery& query, AggregateSemantics semantics) {
  return Status::Unimplemented(
      std::string("no PTIME algorithm is known for ") +
      std::string(AggregateFunctionToString(query.func)) + " under by-tuple/" +
      std::string(AggregateSemanticsToString(semantics)) +
      " semantics (paper Figure 6); enable EngineOptions::allow_naive for "
      "exponential enumeration");
}

/// Budget failures that are eligible for graceful degradation. A cancel is
/// a caller decision and is always honoured; kResourceExhausted from the
/// up-front naive guard and kDeadlineExceeded from mid-flight polling both
/// mean "the exact path is too expensive", which is exactly what sampling
/// is for.
bool DegradableFailure(const Status& s) {
  return s.code() == StatusCode::kResourceExhausted ||
         s.code() == StatusCode::kDeadlineExceeded;
}

using Clock = std::chrono::steady_clock;

int64_t ElapsedUs(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start)
      .count();
}

/// Low-cardinality Figure 6 cell label for metrics, derived from the
/// request rather than the (wordier) Explain text: "by-tuple/SUM/range".
std::string CellLabel(AggregateFunction func, MappingSemantics ms,
                      AggregateSemantics as) {
  return std::string(MappingSemanticsToString(ms)) + '/' +
         std::string(AggregateFunctionToString(func)) + '/' +
         std::string(AggregateSemanticsToString(as));
}

/// One bundle of per-query metrics: queries_total{cell,outcome}, the
/// charged-work counters, and the end-to-end latency histogram.
void RecordQueryMetrics(const std::string& cell, std::string_view outcome,
                        int64_t wall_us, uint64_t steps, uint64_t bytes) {
  auto& registry = obs::MetricsRegistry::Default();
  registry
      .GetCounter("aqua_queries_total",
                  {{"cell", cell}, {"outcome", std::string(outcome)}})
      .Increment();
  if (steps > 0) {
    registry.GetCounter("aqua_steps_charged_total").Increment(steps);
  }
  if (bytes > 0) {
    registry.GetCounter("aqua_bytes_charged_total").Increment(bytes);
  }
  registry.GetHistogram("aqua_answer_latency_us")
      .Observe(static_cast<double>(wall_us));
}

/// Explain-style cell name for the nested form (which Engine::Explain does
/// not cover; QueryStats reuses this naming for nested answers).
std::string NestedCellName(MappingSemantics ms, AggregateSemantics as,
                           bool allow_naive) {
  if (ms == MappingSemantics::kByTable) {
    return "ByTableNested (evaluate the nested query per candidate), O(l*n)";
  }
  if (as == AggregateSemantics::kRange) {
    return "NestedByTupleRange (interval arithmetic over groups), O(n*m)";
  }
  return allow_naive
             ? "NestedByTuple (enumerate mapping sequences), O(l^n * n)"
             : "unimplemented (no PTIME algorithm; "
               "EngineOptions::allow_naive disabled)";
}

Result<AggregateAnswer> FromNaiveDist(NaiveAnswer naive) {
  if (naive.undefined_mass > 1e-12) {
    return Status::InvalidArgument(
        "the aggregate is undefined with probability " +
        std::to_string(naive.undefined_mass) +
        "; no total distribution exists");
  }
  return AggregateAnswer::MakeDistribution(std::move(naive.distribution));
}

/// The shardability matrix: cells whose by-tuple algorithm decomposes
/// over disjoint tuple subsets with an exact merge law (core/merge.h).
/// COUNT decomposes under all three semantics (convolution / bound sum /
/// linearity); SUM range and expected value are sums; MIN/MAX
/// distribution and expected value factorise over per-shard CDFs when
/// the exact extremum algorithm is on. Everything else (AVG, SUM
/// distribution, MIN/MAX range with its mandatory/optional bound logic)
/// runs unsharded.
bool ShardableCell(const AggregateQuery& query, AggregateSemantics semantics,
                   const EngineOptions& options) {
  switch (query.func) {
    case AggregateFunction::kCount:
      return true;
    case AggregateFunction::kSum:
      return semantics == AggregateSemantics::kRange ||
             semantics == AggregateSemantics::kExpectedValue;
    case AggregateFunction::kAvg:
      return false;
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      return semantics != AggregateSemantics::kRange &&
             options.minmax_distribution_exact;
  }
  return false;
}

size_t EffectiveShards(const EngineOptions& options,
                       const AggregateQuery& query,
                       AggregateSemantics semantics, size_t num_rows) {
  if (options.shards <= 1 || num_rows < 2) return 1;
  if (!ShardableCell(query, semantics, options)) return 1;
  return std::min(static_cast<size_t>(options.shards), num_rows);
}

}  // namespace

Result<AggregateAnswer> Engine::AnswerByTuple(
    const AggregateQuery& query, const PMapping& pmapping,
    const Table& source, AggregateSemantics semantics,
    const std::vector<uint32_t>* rows, ExecContext* ctx,
    const exec::ExecPolicy& policy) const {
  switch (query.func) {
    case AggregateFunction::kCount:
      switch (semantics) {
        case AggregateSemantics::kRange: {
          AQUA_ASSIGN_OR_RETURN(
              Interval r,
              ByTupleCount::Range(query, pmapping, source, rows, ctx));
          return AggregateAnswer::MakeRange(r);
        }
        case AggregateSemantics::kDistribution: {
          AQUA_ASSIGN_OR_RETURN(
              Distribution d,
              ByTupleCount::Dist(query, pmapping, source, rows, ctx, policy));
          return AggregateAnswer::MakeDistribution(std::move(d));
        }
        case AggregateSemantics::kExpectedValue: {
          AQUA_ASSIGN_OR_RETURN(
              double e, options_.count_expected_via_distribution
                            ? ByTupleCount::ExpectedViaDistribution(
                                  query, pmapping, source, rows, ctx, policy)
                            : ByTupleCount::Expected(query, pmapping, source,
                                                     rows, ctx));
          return AggregateAnswer::MakeExpected(e);
        }
      }
      break;
    case AggregateFunction::kSum:
      switch (semantics) {
        case AggregateSemantics::kRange: {
          AQUA_ASSIGN_OR_RETURN(
              Interval r,
              ByTupleSum::RangeSum(query, pmapping, source, rows, ctx));
          return AggregateAnswer::MakeRange(r);
        }
        case AggregateSemantics::kExpectedValue: {
          // Theorem 4: equal to the by-table expected value. The linear
          // form supports row subsets; for whole tables both paths agree.
          AQUA_ASSIGN_OR_RETURN(
              double e,
              ByTupleSum::ExpectedSumLinear(query, pmapping, source, rows,
                                            ctx));
          return AggregateAnswer::MakeExpected(e);
        }
        case AggregateSemantics::kDistribution: {
          if (!options_.allow_naive) return OpenCell(query, semantics);
          AQUA_ASSIGN_OR_RETURN(
              NaiveAnswer naive,
              NaiveByTuple::Dist(query, pmapping, source, options_.naive,
                                 rows, ctx));
          return FromNaiveDist(std::move(naive));
        }
      }
      break;
    case AggregateFunction::kAvg:
      switch (semantics) {
        case AggregateSemantics::kRange: {
          AQUA_ASSIGN_OR_RETURN(
              Interval r,
              options_.avg_range_paper
                  ? ByTupleSum::RangeAvgPaper(query, pmapping, source, rows,
                                              ctx)
                  : ByTupleSum::RangeAvgExact(query, pmapping, source, rows,
                                              ctx));
          return AggregateAnswer::MakeRange(r);
        }
        case AggregateSemantics::kDistribution: {
          if (!options_.allow_naive) return OpenCell(query, semantics);
          AQUA_ASSIGN_OR_RETURN(
              NaiveAnswer naive,
              NaiveByTuple::Dist(query, pmapping, source, options_.naive,
                                 rows, ctx));
          return FromNaiveDist(std::move(naive));
        }
        case AggregateSemantics::kExpectedValue: {
          if (!options_.allow_naive) return OpenCell(query, semantics);
          AQUA_ASSIGN_OR_RETURN(
              double e, NaiveByTuple::Expected(query, pmapping, source,
                                               options_.naive, rows, ctx));
          return AggregateAnswer::MakeExpected(e);
        }
      }
      break;
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      switch (semantics) {
        case AggregateSemantics::kRange: {
          AQUA_ASSIGN_OR_RETURN(
              Interval r,
              query.func == AggregateFunction::kMin
                  ? ByTupleMinMax::RangeMin(query, pmapping, source, rows,
                                            ctx)
                  : ByTupleMinMax::RangeMax(query, pmapping, source, rows,
                                            ctx));
          return AggregateAnswer::MakeRange(r);
        }
        case AggregateSemantics::kDistribution: {
          if (options_.minmax_distribution_exact) {
            AQUA_ASSIGN_OR_RETURN(
                NaiveAnswer exact,
                query.func == AggregateFunction::kMin
                    ? ByTupleMinMax::DistMin(query, pmapping, source, rows,
                                             ctx)
                    : ByTupleMinMax::DistMax(query, pmapping, source, rows,
                                             ctx));
            return FromNaiveDist(std::move(exact));
          }
          if (!options_.allow_naive) return OpenCell(query, semantics);
          AQUA_ASSIGN_OR_RETURN(
              NaiveAnswer naive,
              NaiveByTuple::Dist(query, pmapping, source, options_.naive,
                                 rows, ctx));
          return FromNaiveDist(std::move(naive));
        }
        case AggregateSemantics::kExpectedValue: {
          if (options_.minmax_distribution_exact) {
            AQUA_ASSIGN_OR_RETURN(
                double e,
                query.func == AggregateFunction::kMin
                    ? ByTupleMinMax::ExpectedMin(query, pmapping, source,
                                                 rows, ctx)
                    : ByTupleMinMax::ExpectedMax(query, pmapping, source,
                                                 rows, ctx));
            return AggregateAnswer::MakeExpected(e);
          }
          if (!options_.allow_naive) return OpenCell(query, semantics);
          AQUA_ASSIGN_OR_RETURN(
              double e, NaiveByTuple::Expected(query, pmapping, source,
                                               options_.naive, rows, ctx));
          return AggregateAnswer::MakeExpected(e);
        }
      }
      break;
  }
  return Status::Internal("corrupt dispatch");
}

Result<AggregateAnswer> Engine::AnswerByTupleSharded(
    const AggregateQuery& query, const PMapping& pmapping,
    const Table& source, AggregateSemantics semantics,
    ExecContext* ctx) const {
  obs::TraceSpan span("Engine::AnswerByTupleSharded");
  const size_t effective =
      std::min(static_cast<size_t>(options_.shards), source.num_rows());
  const std::vector<std::vector<uint32_t>> shard_rows =
      shard::Supervisor::PlanShards(source.num_rows(),
                                    static_cast<int>(effective));
  const bool is_max = query.func == AggregateFunction::kMax;

  // The exact shard job: the cell's own PTIME algorithm over the shard's
  // rows. Inner algorithms run serial — the shards themselves are the
  // parallel axis.
  const shard::ShardJob job =
      [&](size_t s, const std::vector<uint32_t>& rows,
          ExecContext* child) -> Result<merge::ShardPartial> {
    (void)s;
    merge::ShardPartial p;
    p.rows_covered = rows.size();
    switch (query.func) {
      case AggregateFunction::kCount:
        switch (semantics) {
          case AggregateSemantics::kRange: {
            AQUA_ASSIGN_OR_RETURN(p.range, ByTupleCount::Range(
                                               query, pmapping, source, &rows,
                                               child));
            break;
          }
          case AggregateSemantics::kDistribution: {
            AQUA_ASSIGN_OR_RETURN(
                p.dist, ByTupleCount::Dist(query, pmapping, source, &rows,
                                           child, exec::ExecPolicy{}));
            break;
          }
          case AggregateSemantics::kExpectedValue: {
            AQUA_ASSIGN_OR_RETURN(
                p.expected,
                options_.count_expected_via_distribution
                    ? ByTupleCount::ExpectedViaDistribution(
                          query, pmapping, source, &rows, child,
                          exec::ExecPolicy{})
                    : ByTupleCount::Expected(query, pmapping, source, &rows,
                                             child));
            break;
          }
        }
        return p;
      case AggregateFunction::kSum:
        switch (semantics) {
          case AggregateSemantics::kRange: {
            AQUA_ASSIGN_OR_RETURN(p.range, ByTupleSum::RangeSum(
                                               query, pmapping, source, &rows,
                                               child));
            break;
          }
          case AggregateSemantics::kExpectedValue: {
            AQUA_ASSIGN_OR_RETURN(p.expected, ByTupleSum::ExpectedSumLinear(
                                                  query, pmapping, source,
                                                  &rows, child));
            break;
          }
          case AggregateSemantics::kDistribution:
            return Status::Internal("unshardable SUM cell in shard job");
        }
        return p;
      case AggregateFunction::kMin:
      case AggregateFunction::kMax: {
        // Both distribution and expected-value semantics need the
        // shard-local extremum distribution; the coordinator takes the
        // expectation after the CDF-product merge.
        AQUA_ASSIGN_OR_RETURN(
            NaiveAnswer na,
            is_max ? ByTupleMinMax::DistMax(query, pmapping, source, &rows,
                                            child)
                   : ByTupleMinMax::DistMin(query, pmapping, source, &rows,
                                            child));
        p.dist = std::move(na.distribution);
        p.undefined_mass = na.undefined_mass;
        return p;
      }
      case AggregateFunction::kAvg:
        break;
    }
    return Status::Internal("unshardable cell in shard job");
  };

  // The degraded shard job: Monte-Carlo sampling over just this shard's
  // rows, with a per-shard seed so degraded shards draw independent
  // streams. Only wired up when the engine's degrade ladder allows
  // sampling at all.
  const shard::ShardJob fallback_job =
      [&](size_t s, const std::vector<uint32_t>& rows,
          ExecContext* child) -> Result<merge::ShardPartial> {
    SamplerOptions sampler = options_.degrade_sampler;
    sampler.seed ^= 0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(s) + 1);
    AQUA_ASSIGN_OR_RETURN(
        SampledAnswer sampled,
        ByTupleSampler::Sample(query, pmapping, source, sampler, &rows, child,
                               exec::ExecPolicy{}));
    merge::ShardPartial p;
    p.rows_covered = rows.size();
    p.approximate = true;
    p.note = "shard " + std::to_string(s) + " sampled (" +
             std::to_string(sampled.num_samples) + " samples)";
    switch (semantics) {
      case AggregateSemantics::kRange:
        p.range = sampled.observed_range;
        return p;
      case AggregateSemantics::kExpectedValue:
        if (query.func == AggregateFunction::kMin ||
            query.func == AggregateFunction::kMax) {
          // The coordinator takes the expectation after the CDF merge.
          p.dist = std::move(sampled.empirical);
          p.undefined_mass =
              sampled.num_samples == 0
                  ? 1.0
                  : static_cast<double>(sampled.undefined_samples) /
                        static_cast<double>(sampled.num_samples);
          return p;
        }
        p.expected = sampled.expected;
        return p;
      case AggregateSemantics::kDistribution:
        p.dist = std::move(sampled.empirical);
        p.undefined_mass =
            sampled.num_samples == 0
                ? 1.0
                : static_cast<double>(sampled.undefined_samples) /
                      static_cast<double>(sampled.num_samples);
        return p;
    }
    return Status::Internal("corrupt semantics in shard fallback");
  };

  shard::SupervisorOptions sup;
  sup.shards = static_cast<int>(shard_rows.size());
  sup.threads = options_.threads;
  sup.hedge = options_.hedge;
  const shard::Supervisor supervisor(sup);
  shard::SupervisorReport report;
  const shard::ShardJob* fallback =
      options_.degrade == DegradePolicy::kSample ? &fallback_job : nullptr;
  AQUA_ASSIGN_OR_RETURN(
      std::vector<shard::ShardOutcome> outcomes,
      supervisor.Run(shard_rows, ctx, job, fallback, &report));

  // An error here proves a merge-stage failure surfaces as a clean
  // Status, never a half-merged answer.
  AQUA_FAILPOINT("shard/merge");
  const auto merge_start = Clock::now();

  // Coverage backstop: every row planned into a shard came back in
  // exactly one committed partial. A violation means a torn partial got
  // past the supervisor — corruption, not an input error.
  uint64_t covered = 0;
  for (const shard::ShardOutcome& o : outcomes) {
    covered += o.partial.rows_covered;
  }
  AQUA_CHECK(covered == source.num_rows())
      << "shard merge coverage hole: partials cover " << covered << " of "
      << source.num_rows() << " rows";

  std::vector<merge::ShardPartial> parts;
  parts.reserve(outcomes.size());
  std::string degrade_notes;
  for (shard::ShardOutcome& o : outcomes) {
    if (o.degraded && !o.partial.note.empty()) {
      if (!degrade_notes.empty()) degrade_notes += "; ";
      degrade_notes += o.partial.note;
    }
    parts.push_back(std::move(o.partial));
  }

  AggregateAnswer answer;
  switch (query.func) {
    case AggregateFunction::kCount:
    case AggregateFunction::kSum:
      switch (semantics) {
        case AggregateSemantics::kRange:
          answer = AggregateAnswer::MakeRange(merge::MergeIntervalSum(parts));
          break;
        case AggregateSemantics::kExpectedValue:
          answer =
              AggregateAnswer::MakeExpected(merge::MergeExpectedSum(parts));
          break;
        case AggregateSemantics::kDistribution: {
          AQUA_ASSIGN_OR_RETURN(Distribution d,
                                merge::MergeCountDistributions(parts));
          answer = AggregateAnswer::MakeDistribution(std::move(d));
          break;
        }
      }
      break;
    case AggregateFunction::kMin:
    case AggregateFunction::kMax: {
      AQUA_ASSIGN_OR_RETURN(NaiveAnswer na,
                            merge::MergeExtremeDistributions(parts, is_max));
      if (semantics == AggregateSemantics::kDistribution) {
        AQUA_ASSIGN_OR_RETURN(answer, FromNaiveDist(std::move(na)));
      } else {
        // Mirrors ByTupleMinMax's ExpectedFrom, message included.
        if (na.undefined_mass > 1e-12) {
          return Status::InvalidArgument(
              "expected value is undefined: the aggregate has no value "
              "with probability " +
              std::to_string(na.undefined_mass));
        }
        AQUA_ASSIGN_OR_RETURN(double e, na.distribution.Expectation());
        answer = AggregateAnswer::MakeExpected(e);
      }
      break;
    }
    case AggregateFunction::kAvg:
      return Status::Internal("unshardable cell reached shard merge");
  }
  obs::MetricsRegistry::Default()
      .GetHistogram("aqua_shard_merge_latency_us")
      .Observe(static_cast<double>(ElapsedUs(merge_start)));

  answer.stats.shards = report.shards;
  answer.stats.degraded_shards = report.degraded;
  answer.stats.hedged_shards = report.hedged;
  if (report.degraded > 0) {
    const std::string note =
        std::to_string(report.degraded) + " of " +
        std::to_string(report.shards) + " shards degraded to sampling";
    answer.approximate = true;
    answer.note = degrade_notes.empty() ? note : note + " (" +
                                                     degrade_notes + ")";
    answer.stats.degraded = true;
    answer.stats.degrade_reason = "shard-local degradation: " + note;
    answer.stats.sampler_seed = options_.degrade_sampler.seed;
  }
  return answer;
}

void Engine::FillCommonStats(QueryStats* stats, const AggregateQuery& query,
                             const PMapping& pmapping,
                             MappingSemantics mapping_semantics,
                             AggregateSemantics aggregate_semantics,
                             uint64_t rows) const {
  Result<std::string> cell =
      ExplainCell(query, mapping_semantics, aggregate_semantics);
  stats->algorithm = cell.ok() ? *std::move(cell) : "unknown";
  stats->mapping_semantics = MappingSemanticsToString(mapping_semantics);
  stats->aggregate_semantics = AggregateSemanticsToString(aggregate_semantics);
  stats->rows = rows;
  stats->mappings = pmapping.size();
  stats->limit_timeout_ms = options_.limits.timeout_ms;
  stats->limit_steps = options_.limits.max_steps;
  stats->limit_bytes = options_.limits.max_bytes;
}

Result<AggregateAnswer> Engine::DegradeToSampling(
    const AggregateQuery& query, const PMapping& pmapping,
    const Table& source, AggregateSemantics semantics,
    const Status& exact_failure, CancellationToken cancel) const {
  obs::TraceSpan span("Engine::DegradeToSampling");
  // An error here proves the ladder's last rung: when even the degraded
  // pass fails, the caller gets a clean Status, never a crash.
  AQUA_FAILPOINT("core/engine/degrade");
  obs::MetricsRegistry::Default()
      .GetCounter(
          "aqua_degrade_total",
          {{"reason", std::string(StatusCodeToString(exact_failure.code()))}})
      .Increment();
  // The exact pass already spent its budget; the degraded pass runs under
  // a fresh context with the same limits, so the worst-case total cost of
  // an Answer call is twice the configured budget. The sampler itself
  // truncates gracefully once it has a usable estimate (see
  // SamplerOptions::min_samples_on_budget).
  ExecContext ctx(options_.limits, cancel);
  AQUA_ASSIGN_OR_RETURN(
      SampledAnswer sampled,
      ByTupleSampler::Sample(query, pmapping, source, options_.degrade_sampler,
                             /*rows=*/nullptr, &ctx,
                             exec::ExecPolicy{options_.threads}));
  std::string note = "degraded to sampling (" + exact_failure.message() +
                     "); " + std::to_string(sampled.num_samples) + " samples";
  if (sampled.truncated) note += " (budget-truncated)";
  AggregateAnswer answer;
  switch (semantics) {
    case AggregateSemantics::kRange:
      answer = AggregateAnswer::MakeRange(sampled.observed_range);
      note += "; observed range is an inner approximation";
      break;
    case AggregateSemantics::kDistribution:
      if (sampled.undefined_samples > 0) {
        return Status::InvalidArgument(
            "degraded sampling: the aggregate was undefined in " +
            std::to_string(sampled.undefined_samples) +
            " samples; no total distribution exists");
      }
      answer = AggregateAnswer::MakeDistribution(std::move(sampled.empirical));
      break;
    case AggregateSemantics::kExpectedValue:
      if (sampled.undefined_samples > 0) {
        return Status::InvalidArgument(
            "degraded sampling: the aggregate was undefined in " +
            std::to_string(sampled.undefined_samples) + " samples");
      }
      answer = AggregateAnswer::MakeExpected(sampled.expected);
      note += "; std error " + FormatDouble(sampled.std_error);
      break;
  }
  answer.approximate = true;
  answer.note = std::move(note);
  // Sampling-pass stats; the caller adds the exact pass's charges and the
  // request-shaped fields on top.
  answer.stats.degraded = true;
  answer.stats.degrade_reason = exact_failure.ToString();
  answer.stats.samples = sampled.num_samples;
  answer.stats.sampler_seed = options_.degrade_sampler.seed;
  answer.stats.steps = ctx.steps();
  answer.stats.bytes = ctx.bytes();
  return answer;
}

Result<AggregateAnswer> Engine::Answer(
    const AggregateQuery& query, const PMapping& pmapping, const Table& source,
    MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics, CancellationToken cancel) const {
  obs::TraceSpan span("Engine::Answer");
  const auto start = Clock::now();
  AQUA_RETURN_NOT_OK(query.Validate());
  if (!query.group_by.empty()) {
    return Status::InvalidArgument(
        "grouped query passed to Engine::Answer; use AnswerGrouped");
  }
  const std::string cell =
      CellLabel(query.func, mapping_semantics, aggregate_semantics);
  if (mapping_semantics == MappingSemantics::kByTable) {
    Result<AggregateAnswer> answer =
        ByTable::Answer(query, pmapping, source, aggregate_semantics);
    const int64_t wall = ElapsedUs(start);
    if (answer.ok()) {
      FillCommonStats(&answer.value().stats, query, pmapping,
                      mapping_semantics, aggregate_semantics,
                      source.num_rows());
      answer.value().stats.wall_time_us = wall;
    }
    RecordQueryMetrics(cell, answer.ok() ? "ok" : "error", wall, 0, 0);
    return answer;
  }
  ExecContext ctx(options_.limits, cancel);
  Result<AggregateAnswer> exact = [&]() -> Result<AggregateAnswer> {
    // error(resource-exhausted) here deterministically drives the
    // exact-to-sampler degradation edge without needing a tight budget.
    AQUA_FAILPOINT("core/engine/exact");
    if (EffectiveShards(options_, query, aggregate_semantics,
                        source.num_rows()) > 1) {
      return AnswerByTupleSharded(query, pmapping, source,
                                  aggregate_semantics, &ctx);
    }
    return AnswerByTuple(query, pmapping, source, aggregate_semantics,
                         /*rows=*/nullptr, &ctx,
                         exec::ExecPolicy{options_.threads});
  }();
  if (exact.ok()) {
    const int64_t wall = ElapsedUs(start);
    QueryStats& stats = exact.value().stats;
    FillCommonStats(&stats, query, pmapping, mapping_semantics,
                    aggregate_semantics, source.num_rows());
    stats.wall_time_us = wall;
    stats.steps = ctx.steps();
    stats.bytes = ctx.bytes();
    // Shard-local degradation produces a flagged-approximate answer on
    // the "exact" pass; the outcome label follows the stats.
    RecordQueryMetrics(cell, stats.degraded ? "degraded" : "ok", wall,
                       stats.steps, stats.bytes);
    return exact;
  }
  if (options_.degrade == DegradePolicy::kOff ||
      !DegradableFailure(exact.status())) {
    RecordQueryMetrics(cell, "error", ElapsedUs(start), ctx.steps(),
                       ctx.bytes());
    return exact;
  }
  Result<AggregateAnswer> degraded = DegradeToSampling(
      query, pmapping, source, aggregate_semantics, exact.status(), cancel);
  const int64_t wall = ElapsedUs(start);
  if (!degraded.ok()) {
    RecordQueryMetrics(cell, "error", wall, ctx.steps(), ctx.bytes());
    return degraded;
  }
  QueryStats& stats = degraded.value().stats;
  // DegradeToSampling recorded the sampling pass; add the exact pass's
  // charges so the stats cover both, then the request-shaped fields.
  stats.steps += ctx.steps();
  stats.bytes += ctx.bytes();
  FillCommonStats(&stats, query, pmapping, mapping_semantics,
                  aggregate_semantics, source.num_rows());
  stats.wall_time_us = wall;
  RecordQueryMetrics(cell, "degraded", wall, stats.steps, stats.bytes);
  return degraded;
}

Result<AggregateAnswer> Engine::AnswerForcedSample(
    const AggregateQuery& query, const PMapping& pmapping, const Table& source,
    AggregateSemantics aggregate_semantics, const std::string& reason,
    CancellationToken cancel) const {
  obs::TraceSpan span("Engine::AnswerForcedSample");
  const auto start = Clock::now();
  AQUA_RETURN_NOT_OK(query.Validate());
  if (!query.group_by.empty()) {
    return Status::InvalidArgument(
        "grouped query passed to Engine::AnswerForcedSample; shed grouped "
        "requests with a retryable error instead");
  }
  const std::string cell =
      CellLabel(query.func, MappingSemantics::kByTuple, aggregate_semantics);
  // Reuse the degrade ladder wholesale: a shed request is a degradation
  // whose "budget failure" was decided before any work ran.
  Result<AggregateAnswer> sampled =
      DegradeToSampling(query, pmapping, source, aggregate_semantics,
                        Status::ResourceExhausted(reason), cancel);
  const int64_t wall = ElapsedUs(start);
  if (!sampled.ok()) {
    RecordQueryMetrics(cell, "error", wall, 0, 0);
    return sampled;
  }
  QueryStats& stats = sampled.value().stats;
  FillCommonStats(&stats, query, pmapping, MappingSemantics::kByTuple,
                  aggregate_semantics, source.num_rows());
  stats.wall_time_us = wall;
  RecordQueryMetrics(cell, "shed", wall, stats.steps, stats.bytes);
  return sampled;
}

Result<std::vector<GroupedAnswer>> Engine::AnswerGrouped(
    const AggregateQuery& query, const PMapping& pmapping, const Table& source,
    MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics, CancellationToken cancel) const {
  obs::TraceSpan span("Engine::AnswerGrouped");
  const auto start = Clock::now();
  AQUA_RETURN_NOT_OK(query.Validate());
  if (query.group_by.empty()) {
    return Status::InvalidArgument(
        "ungrouped query passed to Engine::AnswerGrouped; use Answer");
  }
  const std::string cell =
      CellLabel(query.func, mapping_semantics, aggregate_semantics);
  if (mapping_semantics == MappingSemantics::kByTable) {
    Result<std::vector<GroupedAnswer>> grouped =
        ByTable::AnswerGrouped(query, pmapping, source, aggregate_semantics);
    const int64_t wall = ElapsedUs(start);
    if (grouped.ok()) {
      for (GroupedAnswer& g : grouped.value()) {
        FillCommonStats(&g.answer.stats, query, pmapping, mapping_semantics,
                        aggregate_semantics, source.num_rows());
        g.answer.stats.wall_time_us = wall;
      }
    }
    RecordQueryMetrics(cell, grouped.ok() ? "ok" : "error", wall, 0, 0);
    return grouped;
  }
  if (query.having.has_value()) {
    return Status::Unimplemented(
        "HAVING under by-tuple semantics would make group membership "
        "probabilistic; use by-table semantics");
  }
  if (!pmapping.IsCertainTarget(query.group_by)) {
    return Status::Unimplemented(
        "by-tuple grouped aggregation requires a certain GROUP BY "
        "attribute; '" +
        query.group_by + "' maps differently across candidate mappings");
  }
  AQUA_ASSIGN_OR_RETURN(std::string source_attr,
                        pmapping.mapping(0).SourceFor(query.group_by));
  AQUA_ASSIGN_OR_RETURN(size_t col, source.schema().IndexOf(source_attr));
  AQUA_ASSIGN_OR_RETURN(GroupIndex index, GroupIndex::Build(source, col));
  std::vector<std::vector<uint32_t>> group_rows(index.num_groups());
  for (size_t r = 0; r < source.num_rows(); ++r) {
    group_rows[index.row_groups()[r]].push_back(static_cast<uint32_t>(r));
  }
  AggregateQuery ungrouped = query;
  ungrouped.group_by.clear();
  // Surface binding errors (unmapped attributes, incomparable literals)
  // once, up front: the per-group loop below treats kInvalidArgument as
  // "this group's aggregate is undefined" and would silently drop every
  // group otherwise.
  {
    const auto bindings = Reformulator::BindAll(ungrouped, pmapping, source);
    if (!bindings.ok()) return bindings.status();
  }
  // Compute the per-group stats template once: every group runs the same
  // algorithm cell against the same p-mapping.
  QueryStats stats_template;
  FillCommonStats(&stats_template, ungrouped, pmapping, mapping_semantics,
                  aggregate_semantics, 0);
  // One budget covers the whole grouped query: ParallelFor splits the
  // remaining budget across groups proportionally to group size (the
  // shares sum exactly to the total), each group charges its own child
  // context, and at the join the children are absorbed back — so the
  // per-group stats are race-free and sum exactly to ctx's totals, serial
  // or concurrent. Groups are the parallel axis; the per-group algorithms
  // run under the serial policy.
  ExecContext ctx(options_.limits, cancel);
  std::vector<std::optional<GroupedAnswer>> slots(index.num_groups());
  std::vector<uint64_t> weights(index.num_groups());
  for (size_t g = 0; g < index.num_groups(); ++g) {
    weights[g] = std::max<uint64_t>(1, group_rows[g].size());
  }
  const Status status = exec::ParallelFor(
      exec::ExecPolicy{options_.threads}, index.num_groups(),
      /*chunk_size=*/1, &ctx,
      [&](const exec::Chunk& chunk, ExecContext* child) -> Status {
        const size_t g = chunk.begin;
        const auto group_start = Clock::now();
        Result<AggregateAnswer> answer =
            AnswerByTuple(ungrouped, pmapping, source, aggregate_semantics,
                          &group_rows[g], child, exec::ExecPolicy{});
        if (!answer.ok()) {
          // Groups where the aggregate is undefined under every sequence
          // (no tuple ever satisfies) are omitted, like SQL omits empty
          // groups.
          if (answer.status().code() == StatusCode::kInvalidArgument) {
            return Status::OK();
          }
          return answer.status();
        }
        AggregateAnswer group_answer = std::move(answer).value();
        QueryStats& stats = group_answer.stats;
        stats = stats_template;
        stats.rows = group_rows[g].size();
        stats.wall_time_us = ElapsedUs(group_start);
        stats.steps = child->steps();
        stats.bytes = child->bytes();
        slots[g] = GroupedAnswer{index.group_values()[g],
                                 std::move(group_answer)};
        return Status::OK();
      },
      &weights);
  if (!status.ok()) {
    RecordQueryMetrics(cell, "error", ElapsedUs(start), ctx.steps(),
                       ctx.bytes());
    return status;
  }
  std::vector<GroupedAnswer> out;
  out.reserve(index.num_groups());
  // The grouped budget partitions exactly: every step a group charged was
  // carved out of this query's budget and absorbed back at the join, so
  // the per-group stats can never account for more work than the query's
  // own counters (groups omitted as undefined charge but record nothing,
  // hence <=, with equality when no group was omitted).
  uint64_t group_steps = 0;
  for (std::optional<GroupedAnswer>& slot : slots) {
    if (!slot.has_value()) continue;
    group_steps += slot->answer.stats.steps;
    out.push_back(*std::move(slot));
  }
  AQUA_DCHECK(group_steps <= ctx.steps())
      << "per-group stats account for " << group_steps
      << " steps, query charged only " << ctx.steps();
  RecordQueryMetrics(cell, "ok", ElapsedUs(start), ctx.steps(), ctx.bytes());
  return out;
}

Result<AggregateAnswer> Engine::AnswerNested(
    const NestedAggregateQuery& query, const PMapping& pmapping,
    const Table& source, MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics, CancellationToken cancel) const {
  obs::TraceSpan span("Engine::AnswerNested");
  const auto start = Clock::now();
  AQUA_RETURN_NOT_OK(query.Validate());
  const std::string cell =
      "nested/" + CellLabel(query.outer, mapping_semantics,
                            aggregate_semantics);
  // Shared epilogue: stamp the stats (nested cells are not covered by
  // Engine::Explain, so the cell name comes from NestedCellName) and
  // record the per-query metrics.
  const auto finish = [&](Result<AggregateAnswer> answer,
                          const ExecContext* ctx) {
    const int64_t wall = ElapsedUs(start);
    if (answer.ok()) {
      QueryStats& stats = answer.value().stats;
      stats.algorithm = NestedCellName(mapping_semantics, aggregate_semantics,
                                       options_.allow_naive);
      stats.mapping_semantics = MappingSemanticsToString(mapping_semantics);
      stats.aggregate_semantics =
          AggregateSemanticsToString(aggregate_semantics);
      stats.wall_time_us = wall;
      stats.rows = source.num_rows();
      stats.mappings = pmapping.size();
      stats.limit_timeout_ms = options_.limits.timeout_ms;
      stats.limit_steps = options_.limits.max_steps;
      stats.limit_bytes = options_.limits.max_bytes;
      if (ctx != nullptr) {
        stats.steps = ctx->steps();
        stats.bytes = ctx->bytes();
      }
    }
    RecordQueryMetrics(cell, answer.ok() ? "ok" : "error", wall,
                       ctx == nullptr ? 0 : ctx->steps(),
                       ctx == nullptr ? 0 : ctx->bytes());
    return answer;
  };
  if (mapping_semantics == MappingSemantics::kByTable) {
    return finish(
        ByTable::AnswerNested(query, pmapping, source, aggregate_semantics),
        nullptr);
  }
  ExecContext ctx(options_.limits, cancel);
  auto answer = [&]() -> Result<AggregateAnswer> {
    switch (aggregate_semantics) {
    case AggregateSemantics::kRange: {
      AQUA_ASSIGN_OR_RETURN(
          Interval r,
          NestedByTuple::Range(query, pmapping, source, &ctx,
                               exec::ExecPolicy{options_.threads}));
      return AggregateAnswer::MakeRange(r);
    }
    case AggregateSemantics::kDistribution: {
      if (!options_.allow_naive) {
        return Status::Unimplemented(
            "by-tuple nested distribution requires naive enumeration; "
            "enable EngineOptions::allow_naive");
      }
      AQUA_ASSIGN_OR_RETURN(
          NaiveAnswer naive,
          NestedByTuple::NaiveDist(query, pmapping, source, options_.naive,
                                   &ctx));
      return FromNaiveDist(std::move(naive));
    }
    case AggregateSemantics::kExpectedValue: {
      if (!options_.allow_naive) {
        return Status::Unimplemented(
            "by-tuple nested expected value requires naive enumeration; "
            "enable EngineOptions::allow_naive");
      }
      AQUA_ASSIGN_OR_RETURN(
          NaiveAnswer naive,
          NestedByTuple::NaiveDist(query, pmapping, source, options_.naive,
                                   &ctx));
      if (naive.undefined_mass > 1e-12) {
        return Status::InvalidArgument(
            "nested expected value is undefined with probability " +
            std::to_string(naive.undefined_mass));
      }
      AQUA_ASSIGN_OR_RETURN(double e, naive.distribution.Expectation());
      return AggregateAnswer::MakeExpected(e);
    }
    }
    return Status::Internal("corrupt semantics");
  }();
  return finish(std::move(answer), &ctx);
}

Result<std::string> Engine::Explain(
    const AggregateQuery& query, MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics) const {
  AQUA_ASSIGN_OR_RETURN(
      std::string text,
      ExplainCell(query, mapping_semantics, aggregate_semantics));
  if (mapping_semantics == MappingSemantics::kByTuple &&
      options_.degrade == DegradePolicy::kSample) {
    text +=
        "; degrade=sample: on deadline/budget exhaustion the engine "
        "re-answers via Monte-Carlo sampling and flags the answer "
        "approximate";
  }
  return text;
}

Result<std::string> Engine::ExplainCell(
    const AggregateQuery& query, MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics) const {
  AQUA_RETURN_NOT_OK(query.Validate());
  if (mapping_semantics == MappingSemantics::kByTable) {
    return std::string("ByTableAggregateQuery (reformulate per candidate, "
                       "execute, CombineResults), O(l) scans = O(l*n)");
  }
  const std::string naive =
      options_.allow_naive
          ? std::string("NaiveByTuple (enumerate mapping sequences), "
                        "O(l^n * n)")
          : std::string("unimplemented (no PTIME algorithm; "
                        "EngineOptions::allow_naive disabled)");
  switch (query.func) {
    case AggregateFunction::kCount:
      switch (aggregate_semantics) {
        case AggregateSemantics::kRange:
          return std::string("ByTupleRangeCOUNT, O(n*m)");
        case AggregateSemantics::kDistribution:
          return std::string("ByTuplePDCOUNT, O(m*n + n^2)");
        case AggregateSemantics::kExpectedValue:
          return options_.count_expected_via_distribution
                     ? std::string(
                           "ByTupleExpValCOUNT via distribution, "
                           "O(m*n + n^2)")
                     : std::string(
                           "ByTupleExpValCOUNT direct (linearity of "
                           "expectation), O(n*m)");
      }
      break;
    case AggregateFunction::kSum:
      switch (aggregate_semantics) {
        case AggregateSemantics::kRange:
          return std::string("ByTupleRangeSUM, O(n*m)");
        case AggregateSemantics::kDistribution:
          return naive;
        case AggregateSemantics::kExpectedValue:
          return std::string(
              "ByTupleExpValSUM = by-table expected value (Theorem 4), "
              "O(n*m)");
      }
      break;
    case AggregateFunction::kAvg:
      if (aggregate_semantics == AggregateSemantics::kRange) {
        return options_.avg_range_paper
                   ? std::string("ByTupleRangeAVG (paper formula), O(n*m)")
                   : std::string(
                         "ByTupleRangeAVG (tight variant), O(n*m + n log n)");
      }
      return naive;
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      if (aggregate_semantics == AggregateSemantics::kRange) {
        return std::string(query.func == AggregateFunction::kMin
                               ? "ByTupleRangeMIN, O(n*m)"
                               : "ByTupleRangeMAX, O(n*m)");
      }
      if (options_.minmax_distribution_exact) {
        return std::string(
            "exact extremum distribution via CDF factorisation "
            "(extension beyond the paper), O(n*m log(n*m))");
      }
      return naive;
  }
  return Status::Internal("corrupt dispatch");
}

Result<AggregateAnswer> Engine::AnswerSql(
    std::string_view sql, const PMapping& pmapping, const Table& source,
    MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics, CancellationToken cancel) const {
  AQUA_ASSIGN_OR_RETURN(ParsedQuery parsed, SqlParser::Parse(sql));
  if (parsed.kind == ParsedQuery::Kind::kNested) {
    return AnswerNested(parsed.nested, pmapping, source, mapping_semantics,
                        aggregate_semantics, cancel);
  }
  if (!parsed.simple.group_by.empty()) {
    return Status::InvalidArgument(
        "grouped SQL statement passed to AnswerSql; use AnswerGroupedSql");
  }
  return Answer(parsed.simple, pmapping, source, mapping_semantics,
                aggregate_semantics, cancel);
}

Result<std::vector<GroupedAnswer>> Engine::AnswerGroupedSql(
    std::string_view sql, const PMapping& pmapping, const Table& source,
    MappingSemantics mapping_semantics,
    AggregateSemantics aggregate_semantics, CancellationToken cancel) const {
  AQUA_ASSIGN_OR_RETURN(AggregateQuery query, SqlParser::ParseSimple(sql));
  return AnswerGrouped(query, pmapping, source, mapping_semantics,
                       aggregate_semantics, cancel);
}

}  // namespace aqua
