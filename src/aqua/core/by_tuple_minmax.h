#ifndef AQUA_CORE_BY_TUPLE_MINMAX_H_
#define AQUA_CORE_BY_TUPLE_MINMAX_H_

#include <cstdint>
#include <vector>

#include "aqua/common/interval.h"
#include "aqua/core/naive.h"
#include "aqua/mapping/p_mapping.h"
#include "aqua/query/ast.h"
#include "aqua/storage/table.h"

namespace aqua {

/// PTIME by-tuple/range algorithms for MAX and MIN (paper Figure 5 and its
/// dual). O(n*m) each. DISTINCT is accepted (it does not change MIN/MAX).
///
/// The paper's formulation `[max_i v_i^min, max_i v_i^max]` assumes every
/// tuple satisfies the condition under every mapping (true in its
/// examples, which have no WHERE clause). With selective conditions a
/// tuple may be *optional* — some sequence excludes it — which these
/// implementations handle exactly:
///  * the upper bound of MAX ranges over every tuple that can satisfy;
///  * the lower bound of MAX ranges only over tuples that satisfy under
///    all mappings (mandatory tuples), since optional ones can be dropped;
///  * when no tuple is mandatory, the minimum achievable MAX keeps a
///    single tuple, so the bound is min_i v_i^min over satisfiable tuples.
/// MIN is symmetric.
class ByTupleMinMax {
 public:
  static Result<Interval> RangeMax(const AggregateQuery& query,
                                   const PMapping& pmapping,
                                   const Table& source,
                                   const std::vector<uint32_t>* rows = nullptr,
                                   ExecContext* ctx = nullptr);

  static Result<Interval> RangeMin(const AggregateQuery& query,
                                   const PMapping& pmapping,
                                   const Table& source,
                                   const std::vector<uint32_t>* rows = nullptr,
                                   ExecContext* ctx = nullptr);

  /// Exact by-tuple *distribution* of MAX in polynomial time — an
  /// extension of this repository that resolves cells the paper's
  /// Figure 6 leaves open ("?"). By tuple independence the CDF
  /// factorises:
  ///
  ///   P(MAX <= x) = prod_i q_i(x),
  ///   q_i(x) = Pr(tuple i is excluded) +
  ///            sum_j Pr(m_j) [tuple i satisfies under m_j and v_ij <= x],
  ///
  /// so sweeping the O(n*m) candidate values in ascending order with an
  /// incrementally maintained product gives the full distribution in
  /// O(n*m log(n*m)). Sequences where no tuple qualifies leave MAX
  /// undefined; that mass (prod_i Pr(excluded_i)) is reported separately,
  /// like the naive enumerator does.
  static Result<NaiveAnswer> DistMax(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source, const std::vector<uint32_t>* rows = nullptr,
      ExecContext* ctx = nullptr);

  /// The MIN dual: P(MIN >= x) factorises the same way (descending sweep).
  static Result<NaiveAnswer> DistMin(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source, const std::vector<uint32_t>* rows = nullptr,
      ExecContext* ctx = nullptr);

  /// Expected MIN/MAX derived from the exact distribution; fails when the
  /// aggregate is undefined with positive probability.
  static Result<double> ExpectedMax(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source, const std::vector<uint32_t>* rows = nullptr,
      ExecContext* ctx = nullptr);
  static Result<double> ExpectedMin(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source, const std::vector<uint32_t>* rows = nullptr,
      ExecContext* ctx = nullptr);
};

}  // namespace aqua

#endif  // AQUA_CORE_BY_TUPLE_MINMAX_H_
