#include "aqua/core/answer.h"

#include "aqua/common/check.h"
#include "aqua/common/string_util.h"

namespace aqua {

std::string_view MappingSemanticsToString(MappingSemantics s) {
  switch (s) {
    case MappingSemantics::kByTable:
      return "by-table";
    case MappingSemantics::kByTuple:
      return "by-tuple";
  }
  return "?";
}

std::string_view AggregateSemanticsToString(AggregateSemantics s) {
  switch (s) {
    case AggregateSemantics::kRange:
      return "range";
    case AggregateSemantics::kDistribution:
      return "distribution";
    case AggregateSemantics::kExpectedValue:
      return "expected-value";
  }
  return "?";
}

AggregateAnswer AggregateAnswer::MakeRange(Interval r) {
  // Every range answer the engine serves funnels through here, so this one
  // cheap check enforces the ordering invariant for all Figure 6 cells.
  AQUA_CHECK_INTERVAL(r.low, r.high) << "(range answer)";
  AggregateAnswer a;
  a.semantics = AggregateSemantics::kRange;
  a.range = r;
  return a;
}

AggregateAnswer AggregateAnswer::MakeDistribution(Distribution d) {
  AggregateAnswer a;
  a.semantics = AggregateSemantics::kDistribution;
  a.distribution = std::move(d);
  return a;
}

AggregateAnswer AggregateAnswer::MakeExpected(double v) {
  AggregateAnswer a;
  a.semantics = AggregateSemantics::kExpectedValue;
  a.expected_value = v;
  return a;
}

std::string AggregateAnswer::ToString() const {
  std::string body = "?";
  switch (semantics) {
    case AggregateSemantics::kRange:
      body = range.ToString();
      break;
    case AggregateSemantics::kDistribution:
      body = distribution.ToString();
      break;
    case AggregateSemantics::kExpectedValue:
      body = FormatDouble(expected_value);
      break;
  }
  if (approximate) {
    body += " (approximate";
    if (!note.empty()) {
      body += ": ";
      body += note;
    }
    body += ")";
  }
  return body;
}

}  // namespace aqua
