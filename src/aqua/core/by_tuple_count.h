#ifndef AQUA_CORE_BY_TUPLE_COUNT_H_
#define AQUA_CORE_BY_TUPLE_COUNT_H_

#include <cstdint>
#include <vector>

#include "aqua/common/exec_context.h"
#include "aqua/common/interval.h"
#include "aqua/exec/parallel.h"
#include "aqua/mapping/p_mapping.h"
#include "aqua/prob/distribution.h"
#include "aqua/query/ast.h"
#include "aqua/storage/table.h"

namespace aqua {

/// The paper's PTIME COUNT algorithms under the by-tuple semantics.
///
/// Every entry point takes an optional `rows` subset (used by the grouped
/// engine to run the recurrence per group); null means all rows. The query
/// must be `COUNT(*)` or `COUNT(A)` without DISTINCT (COUNT DISTINCT under
/// by-tuple has no known PTIME algorithm and is rejected).
class ByTupleCount {
 public:
  /// `ByTupleRangeCOUNT` (paper Figure 2): one pass over the tuples;
  /// a tuple satisfying the condition under every mapping raises both
  /// bounds, one satisfying under at least one mapping raises only the
  /// upper bound. O(n*m).
  static Result<Interval> Range(const AggregateQuery& query,
                                const PMapping& pmapping, const Table& source,
                                const std::vector<uint32_t>* rows = nullptr,
                                ExecContext* ctx = nullptr);

  /// `ByTuplePDCOUNT` (paper Figure 3): dynamic program over the count
  /// distribution — after tuple i the count is c or c+1, so the i+1
  /// possible values are updated in place per tuple. O(m*n + n^2); the
  /// quadratic term is what Figure 9 of the paper shows becoming
  /// intractable around 50k tuples. The quadratic loop charges `ctx` one
  /// step per DP cell, so deadlines interrupt it mid-recurrence.
  ///
  /// `policy` controls parallel execution of the recurrence (a blocked
  /// wavefront over the DP band; see DESIGN.md "Parallel execution"). The
  /// partition into blocks and chunks is a pure function of the problem
  /// size, and every cell is computed by the same expression in the same
  /// order, so the returned distribution is bit-identical at every thread
  /// count.
  static Result<Distribution> Dist(const AggregateQuery& query,
                                   const PMapping& pmapping,
                                   const Table& source,
                                   const std::vector<uint32_t>* rows = nullptr,
                                   ExecContext* ctx = nullptr,
                                   const exec::ExecPolicy& policy = {});

  /// Expected COUNT. The paper derives it from the distribution; by
  /// linearity of expectation it is simply the sum over tuples of the
  /// probability mass of the mappings under which the tuple satisfies the
  /// condition, which is O(n*m). This direct path is the default; the
  /// derived path is kept for the Figure 9 reproduction (the paper's
  /// `ByTupleExpValCOUNT` curve tracks the quadratic distribution cost).
  static Result<double> Expected(const AggregateQuery& query,
                                 const PMapping& pmapping,
                                 const Table& source,
                                 const std::vector<uint32_t>* rows = nullptr,
                                 ExecContext* ctx = nullptr);

  /// Expected COUNT computed by building the full distribution first —
  /// the paper's formulation. O(m*n + n^2).
  static Result<double> ExpectedViaDistribution(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source, const std::vector<uint32_t>* rows = nullptr,
      ExecContext* ctx = nullptr, const exec::ExecPolicy& policy = {});
};

}  // namespace aqua

#endif  // AQUA_CORE_BY_TUPLE_COUNT_H_
