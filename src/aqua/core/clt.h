#ifndef AQUA_CORE_CLT_H_
#define AQUA_CORE_CLT_H_

#include <cstdint>
#include <vector>

#include "aqua/common/exec_context.h"
#include "aqua/common/interval.h"
#include "aqua/common/result.h"
#include "aqua/mapping/p_mapping.h"
#include "aqua/query/ast.h"
#include "aqua/storage/table.h"

namespace aqua {

/// A normal distribution N(mean, variance) used as an analytic
/// approximation of a by-tuple answer distribution.
struct NormalApproximation {
  double mean = 0.0;
  double variance = 0.0;

  double stddev() const;

  /// P(X <= x) under the approximation. A zero-variance approximation is
  /// a step function at `mean`.
  double Cdf(double x) const;

  /// Smallest x with Cdf(x) >= p, for p in (0, 1) (Acklam's rational
  /// approximation of the normal quantile; |error| < 1.2e-9 over the full
  /// range).
  Result<double> Quantile(double p) const;

  /// Central interval covering probability `coverage` (e.g. 0.95).
  Result<Interval> CredibleInterval(double coverage) const;
};

/// Central-limit approximations of the by-tuple distribution semantics for
/// SUM and COUNT.
///
/// Under the by-tuple model the mapping choices of distinct tuples are
/// independent, so SUM (and COUNT) is a sum of n independent bounded
/// random variables: its *exact* mean and variance are computable in
/// O(n*m) from per-tuple moments, and for large n the distribution itself
/// is asymptotically normal. This closes — approximately but analytically
/// — the by-tuple/distribution cells the paper leaves open for SUM, where
/// the exact support can be exponential in n, and complements the
/// Monte-Carlo sampler (`ByTupleSampler`): the sampler converges to the
/// true distribution at any n, the CLT is instantaneous but asymptotic.
class ByTupleCLT {
 public:
  /// Approximates the by-tuple distribution of `SELECT SUM(A) FROM T
  /// WHERE C`. The mean and variance are exact; normality is the
  /// approximation. DISTINCT is rejected.
  static Result<NormalApproximation> ApproxSum(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source, const std::vector<uint32_t>* rows = nullptr,
      ExecContext* ctx = nullptr);

  /// Second-order delta-method estimate of the by-tuple *expected AVG* —
  /// the remaining expected-value cell with no exact polynomial algorithm
  /// (the paper notes the Theorem 4 shortcut "does not extend to AVG
  /// because it is a non-monotonic aggregate"). With S = SUM and
  /// C = COUNT over independent per-tuple contributions,
  ///
  ///   E[S/C] ~= E[S]/E[C] - Cov(S,C)/E[C]^2 + E[S]*Var(C)/E[C]^3,
  ///
  /// where all five moments are exact and O(n*m) by independence. The
  /// estimate is asymptotically exact as n grows; it is meaningless when
  /// P(C = 0) is non-negligible, so the call fails when the expected
  /// count is below `min_expected_count`.
  static Result<double> ApproxAvgExpectation(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source, const std::vector<uint32_t>* rows = nullptr,
      double min_expected_count = 5.0, ExecContext* ctx = nullptr);

  /// Approximates the by-tuple COUNT distribution (a Poisson-binomial:
  /// mean = sum of per-tuple satisfaction probabilities, variance =
  /// sum of occ*(1-occ)). Exact algorithms exist for COUNT
  /// (`ByTupleCount::Dist`, O(mn+n^2)); this is the O(nm) large-n
  /// alternative benchmarked in Figure 9's ablation discussion.
  static Result<NormalApproximation> ApproxCount(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source, const std::vector<uint32_t>* rows = nullptr,
      ExecContext* ctx = nullptr);
};

}  // namespace aqua

#endif  // AQUA_CORE_CLT_H_
