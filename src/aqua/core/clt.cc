#include "aqua/core/clt.h"

#include <cmath>

#include "aqua/common/check.h"
#include "aqua/core/by_tuple_common.h"
#include "aqua/obs/trace.h"

namespace aqua {
namespace {

using by_tuple_internal::ForEachRow;
using by_tuple_internal::TupleSatisfies;

// Acklam's rational approximation of the standard normal quantile.
double StandardNormalQuantile(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00, 2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

double NormalApproximation::stddev() const { return std::sqrt(variance); }

double NormalApproximation::Cdf(double x) const {
  if (variance <= 0.0) return x >= mean ? 1.0 : 0.0;
  return 0.5 * std::erfc(-(x - mean) / (stddev() * std::sqrt(2.0)));
}

Result<double> NormalApproximation::Quantile(double p) const {
  if (p <= 0.0 || p >= 1.0) {
    return Status::InvalidArgument(
        "quantile level must lie strictly inside (0, 1)");
  }
  if (variance <= 0.0) return mean;
  return mean + stddev() * StandardNormalQuantile(p);
}

Result<Interval> NormalApproximation::CredibleInterval(double coverage) const {
  if (coverage <= 0.0 || coverage >= 1.0) {
    return Status::InvalidArgument("coverage must lie inside (0, 1)");
  }
  const double tail = (1.0 - coverage) / 2.0;
  AQUA_ASSIGN_OR_RETURN(double low, Quantile(tail));
  AQUA_ASSIGN_OR_RETURN(double high, Quantile(1.0 - tail));
  AQUA_CHECK_INTERVAL(low, high)
      << "(credible interval at coverage " << coverage << ")";
  return Interval{low, high};
}

Result<NormalApproximation> ByTupleCLT::ApproxSum(
    const AggregateQuery& query, const PMapping& pmapping, const Table& source,
    const std::vector<uint32_t>* rows, ExecContext* ctx) {
  obs::TraceSpan span("ByTupleCLT::ApproxSum");
  if (query.func != AggregateFunction::kSum) {
    return Status::InvalidArgument("ApproxSum requires a SUM query");
  }
  if (query.distinct) {
    return Status::Unimplemented(
        "SUM(DISTINCT) contributions are not tuple-independent");
  }
  AQUA_ASSIGN_OR_RETURN(std::vector<Reformulator::MappingBinding> bindings,
                        Reformulator::BindAll(query, pmapping, source));
  AQUA_RETURN_NOT_OK(ExecCharge(
      ctx, by_tuple_internal::RowCount(source.num_rows(), rows) *
               bindings.size()));
  AQUA_RETURN_NOT_OK(ExecCheckNow(ctx));
  NormalApproximation approx;
  ForEachRow(source.num_rows(), rows, [&](size_t r) {
    // Tuple i contributes v_ij with probability Pr(m_j) when it satisfies
    // under m_j, and 0 otherwise.
    double ex = 0.0;   // E[X_i]
    double ex2 = 0.0;  // E[X_i^2]
    for (const auto& b : bindings) {
      if (!TupleSatisfies(b, source, r)) continue;
      const double v = b.attribute->NumericAt(r);
      ex += b.probability * v;
      ex2 += b.probability * v * v;
    }
    approx.mean += ex;
    approx.variance += ex2 - ex * ex;
  });
  if (approx.variance < 0.0) approx.variance = 0.0;  // float guard
  return approx;
}

Result<double> ByTupleCLT::ApproxAvgExpectation(
    const AggregateQuery& query, const PMapping& pmapping, const Table& source,
    const std::vector<uint32_t>* rows, double min_expected_count,
    ExecContext* ctx) {
  obs::TraceSpan span("ByTupleCLT::ApproxAvgExpectation");
  if (query.func != AggregateFunction::kAvg) {
    return Status::InvalidArgument("ApproxAvgExpectation requires AVG");
  }
  if (query.distinct) {
    return Status::Unimplemented(
        "AVG(DISTINCT) contributions are not tuple-independent");
  }
  AQUA_ASSIGN_OR_RETURN(std::vector<Reformulator::MappingBinding> bindings,
                        Reformulator::BindAll(query, pmapping, source));
  AQUA_RETURN_NOT_OK(ExecCharge(
      ctx, by_tuple_internal::RowCount(source.num_rows(), rows) *
               bindings.size()));
  AQUA_RETURN_NOT_OK(ExecCheckNow(ctx));
  // Per tuple: s_i = contributed value (0 when excluded), c_i = inclusion
  // indicator. s_i*c_i == s_i, so Cov(s_i, c_i) = E[s_i] - E[s_i]E[c_i].
  double es = 0.0;   // E[S]
  double ec = 0.0;   // E[C]
  double var_c = 0.0;
  double cov_sc = 0.0;
  ForEachRow(source.num_rows(), rows, [&](size_t r) {
    double e_si = 0.0;
    double occ = 0.0;
    for (const auto& b : bindings) {
      if (!TupleSatisfies(b, source, r)) continue;
      e_si += b.probability * b.attribute->NumericAt(r);
      occ += b.probability;
    }
    es += e_si;
    ec += occ;
    var_c += occ * (1.0 - occ);
    cov_sc += e_si - e_si * occ;
  });
  if (ec < min_expected_count) {
    return Status::InvalidArgument(
        "expected count " + std::to_string(ec) +
        " is too small for the delta-method expansion (threshold " +
        std::to_string(min_expected_count) + ")");
  }
  return es / ec - cov_sc / (ec * ec) + es * var_c / (ec * ec * ec);
}

Result<NormalApproximation> ByTupleCLT::ApproxCount(
    const AggregateQuery& query, const PMapping& pmapping, const Table& source,
    const std::vector<uint32_t>* rows, ExecContext* ctx) {
  obs::TraceSpan span("ByTupleCLT::ApproxCount");
  if (query.func != AggregateFunction::kCount) {
    return Status::InvalidArgument("ApproxCount requires a COUNT query");
  }
  if (query.distinct) {
    return Status::Unimplemented("COUNT(DISTINCT) is not tuple-independent");
  }
  AQUA_ASSIGN_OR_RETURN(std::vector<Reformulator::MappingBinding> bindings,
                        Reformulator::BindAll(query, pmapping, source));
  AQUA_RETURN_NOT_OK(ExecCharge(
      ctx, by_tuple_internal::RowCount(source.num_rows(), rows) *
               bindings.size()));
  AQUA_RETURN_NOT_OK(ExecCheckNow(ctx));
  NormalApproximation approx;
  ForEachRow(source.num_rows(), rows, [&](size_t r) {
    double occ = 0.0;
    for (const auto& b : bindings) {
      if (TupleSatisfies(b, source, r)) occ += b.probability;
    }
    approx.mean += occ;
    approx.variance += occ * (1.0 - occ);
  });
  if (approx.variance < 0.0) approx.variance = 0.0;
  return approx;
}

}  // namespace aqua
