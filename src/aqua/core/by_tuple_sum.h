#ifndef AQUA_CORE_BY_TUPLE_SUM_H_
#define AQUA_CORE_BY_TUPLE_SUM_H_

#include <cstdint>
#include <vector>

#include "aqua/common/interval.h"
#include "aqua/core/naive.h"
#include "aqua/mapping/p_mapping.h"
#include "aqua/prob/distribution.h"
#include "aqua/query/ast.h"
#include "aqua/storage/table.h"

namespace aqua {

/// Options for the quantised by-tuple SUM distribution (see
/// `ByTupleSum::DistQuantized`).
struct QuantizedDistOptions {
  /// Grid step. Contributions are snapped to multiples of `resolution`;
  /// each outcome of the returned distribution is within
  /// n * resolution / 2 of a true outcome. With integer-valued data and
  /// resolution = 1 the result is *exact*.
  double resolution = 1.0;

  /// Refuse when the DP grid (sum range / resolution) exceeds this, which
  /// bounds memory and the O(n * m * buckets) work.
  size_t max_buckets = size_t{1} << 20;

  /// For the joint (count, sum) DP of `DistAvgQuantized`: refuse when
  /// (n+1) * buckets exceeds this.
  size_t max_states = size_t{1} << 24;
};

/// PTIME by-tuple algorithms for SUM and AVG.
class ByTupleSum {
 public:
  /// `ByTupleRangeSUM` (paper Figure 4): accumulate per tuple the minimum
  /// and maximum contribution over the candidate mappings. O(n*m).
  ///
  /// A tuple that satisfies the condition only under some mappings may
  /// also be *excluded* by a sequence, so its contribution range is
  /// widened through 0 — the paper's trace (its Table VI) has every tuple
  /// satisfying under both mappings, where this refinement is inactive.
  static Result<Interval> RangeSum(const AggregateQuery& query,
                                   const PMapping& pmapping,
                                   const Table& source,
                                   const std::vector<uint32_t>* rows = nullptr,
                                   ExecContext* ctx = nullptr);

  /// SUM under by-tuple/expected-value semantics. By the paper's Theorem 4
  /// this equals the by-table expected value, so it is answered by the
  /// generic by-table algorithm in O(l) scans rather than by sequence
  /// enumeration.
  static Result<double> ExpectedSum(const AggregateQuery& query,
                                    const PMapping& pmapping,
                                    const Table& source);

  /// Expected SUM computed directly from linearity of expectation:
  /// E[SUM] = sum_i sum_j Pr(m_j) * v_ij * [tuple i satisfies under m_j].
  /// Mathematically equal to `ExpectedSum` (and to the by-table expected
  /// value, per Theorem 4); this form supports row subsets, so the grouped
  /// engine uses it. O(n*m).
  static Result<double> ExpectedSumLinear(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source, const std::vector<uint32_t>* rows = nullptr,
      ExecContext* ctx = nullptr);

  /// AVG under by-tuple/range semantics, as specified in the paper
  /// (§IV-B, "AVG Under the Range Semantics"): SUM-range bounds divided by
  /// per-bound participation counters. Exact when every tuple that can
  /// satisfy the condition does so under *all* mappings (true in all of
  /// the paper's examples); when tuples are optional it may return a
  /// slightly wider or narrower interval than the tight one.
  static Result<Interval> RangeAvgPaper(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source, const std::vector<uint32_t>* rows = nullptr,
      ExecContext* ctx = nullptr);

  /// By-tuple SUM distribution by dynamic programming over a quantised
  /// value grid — this repository's answer to the cell the paper leaves
  /// open ("computing SUM under by-tuple/distribution does not scale...
  /// the number of newly generated values may be exponential"). The
  /// exponential blow-up is in *distinct outcomes*; snapping contributions
  /// to a grid makes the outcome domain an interval of buckets and the
  /// distribution computable in O(n * m + n * buckets) — pseudo-polynomial,
  /// exact for integer data at resolution 1, and an approximation with a
  /// per-outcome error bound of n*resolution/2 otherwise. Probabilities
  /// are exact for the quantised instance.
  static Result<Distribution> DistQuantized(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source, const QuantizedDistOptions& options = {},
      const std::vector<uint32_t>* rows = nullptr,
      ExecContext* ctx = nullptr);

  /// By-tuple AVG distribution by dynamic programming over the *joint*
  /// (count, quantised sum) state space — extending `DistQuantized` to the
  /// AVG cells (open in the paper for both distribution and expected
  /// value). Exact for integer data at resolution 1; probabilities exact
  /// for the quantised instance. O(n^2 * buckets) time and
  /// O(n * buckets) space, guarded by `options.max_states`. Sequences
  /// with an empty qualifying set leave AVG undefined; that mass is
  /// reported via `NaiveAnswer::undefined_mass`.
  static Result<NaiveAnswer> DistAvgQuantized(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source, const QuantizedDistOptions& options = {},
      const std::vector<uint32_t>* rows = nullptr,
      ExecContext* ctx = nullptr);

  /// Tight AVG range (this repository's extension): for each bound, the
  /// optimum over (a) which optional tuples to include and (b) which
  /// satisfying value each included tuple takes. Tuples satisfying under
  /// all mappings are mandatory; optional tuples are added greedily in
  /// value order while they improve the running mean. O(n*m + n log n).
  static Result<Interval> RangeAvgExact(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source, const std::vector<uint32_t>* rows = nullptr,
      ExecContext* ctx = nullptr);
};

}  // namespace aqua

#endif  // AQUA_CORE_BY_TUPLE_SUM_H_
