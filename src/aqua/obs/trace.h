#ifndef AQUA_OBS_TRACE_H_
#define AQUA_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "aqua/common/status.h"

namespace aqua::obs {

/// One completed span, in Chrome trace-event terms a "X" (complete) event.
/// Timestamps are microseconds since the sink was created; the viewer
/// nests events whose [ts, ts+dur) intervals contain each other, which is
/// exactly what stacked RAII spans produce.
struct TraceEvent {
  const char* name;  // static string supplied by the TraceSpan site
  int64_t ts_us;
  int64_t dur_us;
  uint64_t tid;
};

/// Thread-safe collector of trace events with Chrome trace-event JSON
/// output (loadable in about:tracing and Perfetto).
class TraceSink {
 public:
  TraceSink() : origin_(std::chrono::steady_clock::now()) {}

  void AddComplete(const char* name,
                   std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end);

  /// `{"traceEvents":[...],"displayTimeUnit":"ms"}`.
  std::string ToJson() const;

  Status WriteFile(const std::string& path) const;

  std::vector<TraceEvent> events() const;
  size_t size() const;

 private:
  const std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Installs `sink` as the process-wide span target (null uninstalls).
/// Spans opened while no sink is installed are no-ops: their constructor
/// is one relaxed atomic load, so instrumentation is free when tracing is
/// off. Install around a query/CLI run, not concurrently with another
/// install.
void InstallTraceSink(TraceSink* sink);
void UninstallTraceSink();
TraceSink* ActiveTraceSink();

/// RAII phase span: opens at construction, emits one complete event into
/// the active sink at destruction. Place at phase boundaries (one per
/// parse / plan / algorithm pass), never inside per-row loops.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : sink_(ActiveTraceSink()), name_(name) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ~TraceSpan() {
    if (sink_ != nullptr) {
      sink_->AddComplete(name_, start_, std::chrono::steady_clock::now());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceSink* const sink_;
  const char* const name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace aqua::obs

#endif  // AQUA_OBS_TRACE_H_
