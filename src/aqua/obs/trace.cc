#include "aqua/obs/trace.h"

#include <fstream>
#include <functional>
#include <thread>

#include "aqua/obs/json.h"

namespace aqua::obs {
namespace {

std::atomic<TraceSink*> g_active_sink{nullptr};

uint64_t CurrentTid() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffff;
}

}  // namespace

void InstallTraceSink(TraceSink* sink) {
  g_active_sink.store(sink, std::memory_order_release);
}

void UninstallTraceSink() {
  g_active_sink.store(nullptr, std::memory_order_release);
}

TraceSink* ActiveTraceSink() {
  return g_active_sink.load(std::memory_order_acquire);
}

void TraceSink::AddComplete(const char* name,
                            std::chrono::steady_clock::time_point start,
                            std::chrono::steady_clock::time_point end) {
  const auto us = [this](std::chrono::steady_clock::time_point t) {
    return std::chrono::duration_cast<std::chrono::microseconds>(t - origin_)
        .count();
  };
  TraceEvent event{name, us(start), us(end) - us(start), CurrentTid()};
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(event);
}

std::string TraceSink::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i > 0) out += ',';
    out += "{" + JsonString("name", e.name) +
           ",\"cat\":\"aqua\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(e.tid) + ",\"ts\":" + std::to_string(e.ts_us) +
           ",\"dur\":" + std::to_string(e.dur_us) + '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status TraceSink::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open trace file '" + path + "'");
  out << ToJson();
  out.close();
  if (!out) return Status::Internal("failed writing trace file '" + path + "'");
  return Status::OK();
}

std::vector<TraceEvent> TraceSink::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

}  // namespace aqua::obs
