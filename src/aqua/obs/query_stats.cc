#include "aqua/obs/query_stats.h"

#include "aqua/obs/json.h"

namespace aqua {
namespace {

std::string FormatWall(int64_t us) {
  char buf[32];
  if (us >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.3gs", static_cast<double>(us) / 1e6);
  } else if (us >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.3gms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us));
  }
  return buf;
}

}  // namespace

std::string QueryStats::ToString() const {
  std::string out = "algorithm=\"" + algorithm + "\" semantics=" +
                    mapping_semantics + '/' + aggregate_semantics +
                    " wall=" + FormatWall(wall_time_us) +
                    " steps=" + std::to_string(steps) +
                    " bytes=" + std::to_string(bytes) +
                    " rows=" + std::to_string(rows) +
                    " mappings=" + std::to_string(mappings);
  if (limit_timeout_ms > 0 || limit_steps > 0 || limit_bytes > 0) {
    out += " limits=" + std::to_string(limit_timeout_ms) + "ms/" +
           std::to_string(limit_steps) + "steps/" +
           std::to_string(limit_bytes) + "bytes";
  }
  if (shards > 0) {
    out += " shards=" + std::to_string(shards) +
           " degraded_shards=" + std::to_string(degraded_shards) +
           " hedged_shards=" + std::to_string(hedged_shards);
  }
  if (samples > 0) {
    out += " samples=" + std::to_string(samples) +
           " sampler_seed=" + std::to_string(sampler_seed);
  }
  if (degraded) out += " degraded (" + degrade_reason + ")";
  return out;
}

std::string QueryStats::ToJson() const {
  std::string out = "{";
  out += obs::JsonString("algorithm", algorithm);
  out += ',' + obs::JsonString("mapping_semantics", mapping_semantics);
  out += ',' + obs::JsonString("aggregate_semantics", aggregate_semantics);
  out += ",\"wall_time_us\":" + std::to_string(wall_time_us);
  out += ",\"steps\":" + std::to_string(steps);
  out += ",\"bytes\":" + std::to_string(bytes);
  out += ",\"rows\":" + std::to_string(rows);
  out += ",\"mappings\":" + std::to_string(mappings);
  out += ",\"limit_timeout_ms\":" + std::to_string(limit_timeout_ms);
  out += ",\"limit_steps\":" + std::to_string(limit_steps);
  out += ",\"limit_bytes\":" + std::to_string(limit_bytes);
  out += ",\"samples\":" + std::to_string(samples);
  out += ",\"sampler_seed\":" + std::to_string(sampler_seed);
  out += std::string(",\"degraded\":") + (degraded ? "true" : "false");
  out += ',' + obs::JsonString("degrade_reason", degrade_reason);
  out += ",\"shards\":" + std::to_string(shards);
  out += ",\"degraded_shards\":" + std::to_string(degraded_shards);
  out += ",\"hedged_shards\":" + std::to_string(hedged_shards);
  out += '}';
  return out;
}

}  // namespace aqua
