#ifndef AQUA_OBS_QUERY_STATS_H_
#define AQUA_OBS_QUERY_STATS_H_

#include <cstdint>
#include <string>

namespace aqua {

/// Per-query execution statistics, populated by the engine on every
/// successful Answer* call and attached to the answer. Collection is
/// effectively free: the counters are read off the ExecContext the query
/// already charges, plus one wall-clock read at each end of the call.
struct QueryStats {
  /// The algorithm the engine chose for this (operator, mapping semantics,
  /// aggregate semantics) cell, in Engine::Explain's naming — e.g.
  /// "ByTuplePDCOUNT, O(m*n + n^2)".
  std::string algorithm;

  /// MappingSemanticsToString / AggregateSemanticsToString of the request.
  std::string mapping_semantics;
  std::string aggregate_semantics;

  /// End-to-end wall time of the engine call (both passes when degraded).
  int64_t wall_time_us = 0;

  /// Steps and bytes charged to the ExecContext — the same counters the
  /// resource governor enforces budgets on. Zero for the ungoverned
  /// by-table paths, which never charge.
  uint64_t steps = 0;
  uint64_t bytes = 0;

  /// The effective (clamped) budget the call ran under — the limits the
  /// engine actually enforced, after any server-side clamping of
  /// request-supplied values. Zero = that dimension was unbounded. These
  /// make every shed/degrade decision auditable from the response alone.
  int64_t limit_timeout_ms = 0;
  uint64_t limit_steps = 0;
  uint64_t limit_bytes = 0;

  /// Source rows in scope (the group's rows for a grouped answer) and the
  /// number of candidate mappings l.
  uint64_t rows = 0;
  uint64_t mappings = 0;

  /// Monte-Carlo samples actually drawn; non-zero only when the answer
  /// came from the sampler (degraded pass).
  uint64_t samples = 0;

  /// The sampler's RNG seed when the answer is sampled (zero otherwise).
  /// Together with `samples` and `degrade_reason` this makes any
  /// approximate answer — including chaos-triggered ones — reproducible
  /// from its log line alone.
  uint64_t sampler_seed = 0;

  /// True when the exact pass blew its budget and the engine re-answered
  /// by sampling; `degrade_reason` then carries the exact pass's failure
  /// (e.g. "kDeadlineExceeded: ..."). Shard-local degradation (some
  /// shards sampled, the rest exact) also sets this, with
  /// `degraded_shards` saying how many.
  bool degraded = false;
  std::string degrade_reason;

  /// Fault-domain sharding facts: how many shards the by-tuple pass ran
  /// across (zero = unsharded), how many of them degraded locally to
  /// sampling, and how many had a hedged duplicate attempt issued.
  uint64_t shards = 0;
  uint64_t degraded_shards = 0;
  uint64_t hedged_shards = 0;

  /// One-line human rendering, e.g.
  /// `algorithm="ByTuplePDCOUNT, O(m*n + n^2)" wall=1.2ms steps=532 ...`.
  std::string ToString() const;

  /// Schema-stable JSON object; every field above appears, always in the
  /// same order.
  std::string ToJson() const;
};

}  // namespace aqua

#endif  // AQUA_OBS_QUERY_STATS_H_
