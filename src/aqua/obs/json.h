#ifndef AQUA_OBS_JSON_H_
#define AQUA_OBS_JSON_H_

#include <cstdio>
#include <string>
#include <string_view>

namespace aqua::obs {

/// Escapes `s` for use inside a JSON string literal (quotes, backslashes
/// and control characters; everything else passes through byte-for-byte).
inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// `"key":"escaped-value"` — the building block of the hand-rolled JSON
/// emitters in this subsystem (no third-party JSON dependency).
inline std::string JsonString(std::string_view key, std::string_view value) {
  return '"' + JsonEscape(key) + "\":\"" + JsonEscape(value) + '"';
}

}  // namespace aqua::obs

#endif  // AQUA_OBS_JSON_H_
