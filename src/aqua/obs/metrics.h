#ifndef AQUA_OBS_METRICS_H_
#define AQUA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aqua::obs {

/// Label pairs attached to one metric cell, e.g.
/// {{"cell", "by-tuple/SUM/range"}, {"outcome", "ok"}}. Order-insensitive:
/// the registry sorts them by key before building the cell identity.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Cheap handle to a monotonically increasing counter cell owned by a
/// MetricsRegistry. Copyable; a default-constructed handle is a no-op sink
/// (increments vanish), so call sites never need a null check.
class Counter {
 public:
  Counter() = default;

  void Increment(uint64_t delta = 1) const {
    if (cell_ != nullptr) cell_->fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t value() const {
    return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<uint64_t>* cell) : cell_(cell) {}
  std::atomic<uint64_t>* cell_ = nullptr;
};

/// Cheap handle to a gauge cell: a value that can go up and down (queue
/// depths, in-flight request counts). Signed so transient over-decrements
/// in racy instrumentation render as negative rather than wrapping.
/// Default-constructed = no-op, like Counter.
class Gauge {
 public:
  Gauge() = default;

  void Set(int64_t value) const {
    if (cell_ != nullptr) cell_->store(value, std::memory_order_relaxed);
  }
  void Increment(int64_t delta = 1) const {
    if (cell_ != nullptr) cell_->fetch_add(delta, std::memory_order_relaxed);
  }
  void Decrement(int64_t delta = 1) const {
    if (cell_ != nullptr) cell_->fetch_sub(delta, std::memory_order_relaxed);
  }

  int64_t value() const {
    return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<int64_t>* cell) : cell_(cell) {}
  std::atomic<int64_t>* cell_ = nullptr;
};

/// Cheap handle to a fixed-bucket histogram cell (cumulative Prometheus
/// convention: bucket i counts observations <= bound i, with an implicit
/// +Inf bucket at the end). Like Counter, default-constructed = no-op.
class Histogram {
 public:
  struct Cell;

  Histogram() = default;

  void Observe(double value) const;

  uint64_t count() const;
  double sum() const;
  /// Non-cumulative per-bucket counts (bounds.size() + 1 entries, the last
  /// being the overflow bucket).
  std::vector<uint64_t> bucket_counts() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(Cell* cell) : cell_(cell) {}
  Cell* cell_ = nullptr;
};

/// Thread-safe registry of named counters and histograms with
/// Prometheus-style text and JSON exposition.
///
/// Cells are created on first use and live as long as the registry, so the
/// handles returned by GetCounter/GetHistogram stay valid forever and can
/// be cached by callers. `Reset` zeroes values without invalidating
/// handles (used by tests and between CLI runs).
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  /// The process-wide registry the engine instruments into.
  static MetricsRegistry& Default();

  /// Returns the counter cell for (name, labels), creating it on first use.
  Counter GetCounter(std::string_view name, LabelSet labels = {});

  /// Returns the gauge cell for (name, labels), creating it on first use.
  Gauge GetGauge(std::string_view name, LabelSet labels = {});

  /// Returns the histogram cell for (name, labels), creating it on first
  /// use with `bounds` (ascending upper bounds; empty = the default
  /// latency buckets). Bounds are fixed at creation; later calls ignore
  /// the argument.
  Histogram GetHistogram(std::string_view name, LabelSet labels = {},
                         std::vector<double> bounds = {});

  /// Prometheus text exposition format (one `# TYPE` line per family,
  /// `_bucket`/`_sum`/`_count` series for histograms).
  std::string RenderPrometheusText() const;

  /// The same content as a JSON object:
  /// {"counters":[{name,labels,value}...],
  ///  "histograms":[{name,labels,buckets:[{le,count}...],sum,count}...]}.
  std::string RenderJson() const;

  /// Zeroes every cell; handles stay valid.
  void Reset();

  /// Exponential microsecond buckets covering 100us .. 100s.
  static const std::vector<double>& DefaultLatencyBoundsUs();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace aqua::obs

#endif  // AQUA_OBS_METRICS_H_
