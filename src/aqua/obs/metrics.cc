#include "aqua/obs/metrics.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "aqua/obs/json.h"

namespace aqua::obs {
namespace {

/// Canonical cell identity: the metric name plus its labels sorted by key.
struct CellKey {
  std::string name;
  LabelSet labels;

  bool operator<(const CellKey& other) const {
    if (name != other.name) return name < other.name;
    return labels < other.labels;
  }
};

CellKey MakeKey(std::string_view name, LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return CellKey{std::string(name), std::move(labels)};
}

std::string PrometheusLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first + "=\"" + JsonEscape(labels[i].second) + '"';
  }
  out += '}';
  return out;
}

std::string JsonLabels(const LabelSet& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += JsonString(labels[i].first, labels[i].second);
  }
  out += '}';
  return out;
}

std::string FormatBound(double bound) {
  // Trim trailing zeros so bucket labels read `le="100"` not `le="100.000000"`.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", bound);
  return buf;
}

}  // namespace

/// One histogram cell. Counts and the sum are atomics so Observe never
/// blocks other observers — the thread pool observes a latency per task,
/// so concurrent writers are the normal case, not the exception. The
/// double sum is accumulated with a compare-exchange loop (no
/// fetch_add(double) before C++20 on all our toolchains).
struct Histogram::Cell {
  explicit Cell(std::vector<double> b)
      : bounds(std::move(b)), counts(bounds.size() + 1) {}

  const std::vector<double> bounds;
  std::vector<std::atomic<uint64_t>> counts;  // per-bucket, last = +Inf
  std::atomic<double> sum_value{0.0};

  void AddToSum(double value) {
    double current = sum_value.load(std::memory_order_relaxed);
    while (!sum_value.compare_exchange_weak(current, current + value,
                                            std::memory_order_relaxed)) {
    }
  }
};

void Histogram::Observe(double value) const {
  if (cell_ == nullptr) return;
  size_t bucket = cell_->bounds.size();
  for (size_t i = 0; i < cell_->bounds.size(); ++i) {
    if (value <= cell_->bounds[i]) {
      bucket = i;
      break;
    }
  }
  cell_->counts[bucket].fetch_add(1, std::memory_order_relaxed);
  cell_->AddToSum(value);
}

uint64_t Histogram::count() const {
  if (cell_ == nullptr) return 0;
  uint64_t total = 0;
  for (const auto& c : cell_->counts) total += c.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const {
  if (cell_ == nullptr) return 0.0;
  return cell_->sum_value.load(std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out;
  if (cell_ == nullptr) return out;
  out.reserve(cell_->counts.size());
  for (const auto& c : cell_->counts) {
    out.push_back(c.load(std::memory_order_relaxed));
  }
  return out;
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::map<CellKey, std::unique_ptr<std::atomic<uint64_t>>> counters;
  std::map<CellKey, std::unique_ptr<std::atomic<int64_t>>> gauges;
  std::map<CellKey, std::unique_ptr<Histogram::Cell>> histograms;
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

Counter MetricsRegistry::GetCounter(std::string_view name, LabelSet labels) {
  CellKey key = MakeKey(name, std::move(labels));
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& cell = impl_->counters[std::move(key)];
  if (cell == nullptr) cell = std::make_unique<std::atomic<uint64_t>>(0);
  return Counter(cell.get());
}

Gauge MetricsRegistry::GetGauge(std::string_view name, LabelSet labels) {
  CellKey key = MakeKey(name, std::move(labels));
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& cell = impl_->gauges[std::move(key)];
  if (cell == nullptr) cell = std::make_unique<std::atomic<int64_t>>(0);
  return Gauge(cell.get());
}

Histogram MetricsRegistry::GetHistogram(std::string_view name, LabelSet labels,
                                        std::vector<double> bounds) {
  CellKey key = MakeKey(name, std::move(labels));
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& cell = impl_->histograms[std::move(key)];
  if (cell == nullptr) {
    if (bounds.empty()) bounds = DefaultLatencyBoundsUs();
    std::sort(bounds.begin(), bounds.end());
    cell = std::make_unique<Histogram::Cell>(std::move(bounds));
  }
  return Histogram(cell.get());
}

std::string MetricsRegistry::RenderPrometheusText() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out;
  std::string last_family;
  for (const auto& [key, cell] : impl_->counters) {
    if (key.name != last_family) {
      out += "# TYPE " + key.name + " counter\n";
      last_family = key.name;
    }
    out += key.name + PrometheusLabels(key.labels) + ' ' +
           std::to_string(cell->load(std::memory_order_relaxed)) + '\n';
  }
  last_family.clear();
  for (const auto& [key, cell] : impl_->gauges) {
    if (key.name != last_family) {
      out += "# TYPE " + key.name + " gauge\n";
      last_family = key.name;
    }
    out += key.name + PrometheusLabels(key.labels) + ' ' +
           std::to_string(cell->load(std::memory_order_relaxed)) + '\n';
  }
  last_family.clear();
  for (const auto& [key, cell] : impl_->histograms) {
    if (key.name != last_family) {
      out += "# TYPE " + key.name + " histogram\n";
      last_family = key.name;
    }
    uint64_t cumulative = 0;
    const double sum = cell->sum_value.load(std::memory_order_relaxed);
    for (size_t i = 0; i < cell->counts.size(); ++i) {
      cumulative += cell->counts[i].load(std::memory_order_relaxed);
      LabelSet bucket_labels = key.labels;
      bucket_labels.emplace_back(
          "le", i < cell->bounds.size() ? FormatBound(cell->bounds[i]) : "+Inf");
      out += key.name + "_bucket" + PrometheusLabels(bucket_labels) + ' ' +
             std::to_string(cumulative) + '\n';
    }
    out += key.name + "_sum" + PrometheusLabels(key.labels) + ' ' +
           FormatBound(sum) + '\n';
    out += key.name + "_count" + PrometheusLabels(key.labels) + ' ' +
           std::to_string(cumulative) + '\n';
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& [key, cell] : impl_->counters) {
    if (!first) out += ',';
    first = false;
    out += "{" + JsonString("name", key.name) +
           ",\"labels\":" + JsonLabels(key.labels) + ",\"value\":" +
           std::to_string(cell->load(std::memory_order_relaxed)) + '}';
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& [key, cell] : impl_->gauges) {
    if (!first) out += ',';
    first = false;
    out += "{" + JsonString("name", key.name) +
           ",\"labels\":" + JsonLabels(key.labels) + ",\"value\":" +
           std::to_string(cell->load(std::memory_order_relaxed)) + '}';
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& [key, cell] : impl_->histograms) {
    if (!first) out += ',';
    first = false;
    out += "{" + JsonString("name", key.name) +
           ",\"labels\":" + JsonLabels(key.labels) + ",\"buckets\":[";
    uint64_t total = 0;
    for (size_t i = 0; i < cell->counts.size(); ++i) {
      if (i > 0) out += ',';
      const uint64_t c = cell->counts[i].load(std::memory_order_relaxed);
      total += c;
      out += "{\"le\":\"";
      out += i < cell->bounds.size() ? FormatBound(cell->bounds[i]) : "+Inf";
      out += "\",\"count\":" + std::to_string(c) + '}';
    }
    const double sum = cell->sum_value.load(std::memory_order_relaxed);
    out += "],\"sum\":" + FormatBound(sum) +
           ",\"count\":" + std::to_string(total) + '}';
  }
  out += "]}";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [key, cell] : impl_->counters) {
    cell->store(0, std::memory_order_relaxed);
  }
  for (auto& [key, cell] : impl_->gauges) {
    cell->store(0, std::memory_order_relaxed);
  }
  for (auto& [key, cell] : impl_->histograms) {
    for (auto& c : cell->counts) c.store(0, std::memory_order_relaxed);
    cell->sum_value.store(0.0, std::memory_order_relaxed);
  }
}

const std::vector<double>& MetricsRegistry::DefaultLatencyBoundsUs() {
  static const std::vector<double>* bounds = new std::vector<double>{
      100,     250,     500,      1000,     2500,     5000,     10000,
      25000,   50000,   100000,   250000,   500000,   1000000,  2500000,
      5000000, 10000000, 25000000, 50000000, 100000000};
  return *bounds;
}

}  // namespace aqua::obs
