#ifndef AQUA_WORKLOAD_EMPLOYEES_H_
#define AQUA_WORKLOAD_EMPLOYEES_H_

#include <cstdint>

#include "aqua/common/random.h"
#include "aqua/common/result.h"
#include "aqua/mapping/p_mapping.h"
#include "aqua/storage/table.h"

namespace aqua {

/// Generator for the paper's introductory scenario: company A acquires
/// company B and must query B's employee database before the schema
/// mapping is confirmed. B's table has three pay columns (base, base +
/// bonus, total compensation) and two date columns (hire date, current
/// role start); the matcher cannot decide which pay column is the mediated
/// `salary` nor which date is `startDate`.
struct EmployeesOptions {
  size_t num_employees = 10000;
  double base_pay_lo = 60e3;
  double base_pay_hi = 180e3;
  double max_bonus_frac = 0.25;
  double max_equity_frac = 0.40;
  /// Hire dates are uniform over [hired_from, hired_to] (days since
  /// epoch); defaults span 1995..2008.
  int32_t hired_from = 9131;
  int32_t hired_to = 13879;
  /// Role changes happen up to this many days after hiring.
  int32_t max_role_lag_days = 1500;
  uint64_t seed = 1914;
};

/// Generates company B's table:
/// (emp_id int64, dept string, base_pay double, pay_with_bonus double,
///  total_comp double, hired date, role_start date).
Result<Table> GenerateEmployeesTable(const EmployeesOptions& options,
                                     Rng& rng);

/// The default matcher output for the scenario: `salary` maps to
/// pay_with_bonus (0.55) / base_pay (0.30) / total_comp (0.10), and a
/// low-confidence candidate (0.05) that also mistakes the date column.
/// Source relation "employees_b", target relation "employees".
Result<PMapping> MakeEmployeesPMapping();

}  // namespace aqua

#endif  // AQUA_WORKLOAD_EMPLOYEES_H_
