#ifndef AQUA_WORKLOAD_EBAY_H_
#define AQUA_WORKLOAD_EBAY_H_

#include <cstdint>

#include "aqua/common/random.h"
#include "aqua/common/result.h"
#include "aqua/mapping/p_mapping.h"
#include "aqua/query/ast.h"
#include "aqua/storage/table.h"

namespace aqua {

/// Simulator for the paper's eBay workload (substitute for its 2008 RSS
/// trace of 1,129 three-day laptop auctions with 155,688 bids, which is
/// not available).
///
/// The simulation follows eBay's second-price proxy rule: bidders place
/// increasing maximum bids over the auction's life; after each bid the
/// visible `currentPrice` is the second-highest bid plus an increment,
/// capped by the highest bid (for the first bid it equals the bid, as in
/// the paper's Table II). The generated schema is the paper's S2:
/// (transactionID, auction, time, bid, currentPrice).
struct EbayOptions {
  size_t num_auctions = 1129;
  /// Bids per auction, uniform in [min_bids, max_bids]. The paper's trace
  /// averages ~138 bids/auction; its small-instance runs use 8–9 tuples
  /// per auction, which is this default.
  size_t min_bids = 6;
  size_t max_bids = 12;
  double start_price_lo = 50.0;
  double start_price_hi = 600.0;
  /// Auction duration in days (times are fractional days from opening).
  double duration_days = 3.0;
  /// Mean relative outbid step.
  double outbid_frac = 0.08;
  uint64_t seed = 2008;
};

/// Generates the bid table. Transaction ids follow the paper's pattern
/// (auction id * 100 + bid ordinal).
Result<Table> GenerateEbayTable(const EbayOptions& options, Rng& rng);

/// The paper's S2 -> T2 p-mapping: transactionID->transaction,
/// auction->auctionId, time->timeUpdate are certain; `price` maps to `bid`
/// with probability `bid_probability` (paper: 0.3) and to `currentPrice`
/// with the complement (0.7).
Result<PMapping> MakeEbayPMapping(double bid_probability = 0.3);

/// The exact 8-tuple instance DS2 of the paper's Table II (auctions 34 and
/// 38), used by the golden tests and the quickstart example.
Result<Table> PaperInstanceDS2();

/// The paper's query Q2: average closing price across auctions
/// (outer AVG over an inner MAX(DISTINCT price) ... GROUP BY auctionId).
NestedAggregateQuery PaperQueryQ2();

/// The paper's query Q2': SELECT SUM(price) FROM T2 WHERE auctionId = 34.
AggregateQuery PaperQueryQ2Prime();

}  // namespace aqua

#endif  // AQUA_WORKLOAD_EBAY_H_
