#include "aqua/workload/real_estate.h"

#include "aqua/storage/table_builder.h"

namespace aqua {
namespace {

Result<Schema> S1Schema() {
  return Schema::Make({Attribute{"ID", ValueType::kInt64},
                       Attribute{"price", ValueType::kDouble},
                       Attribute{"agentPhone", ValueType::kString},
                       Attribute{"postedDate", ValueType::kDate},
                       Attribute{"reducedDate", ValueType::kDate}});
}

}  // namespace

Result<Table> GenerateRealEstateTable(const RealEstateOptions& options,
                                      Rng& rng) {
  AQUA_ASSIGN_OR_RETURN(Schema schema, S1Schema());
  AQUA_ASSIGN_OR_RETURN(Date today,
                        Date::FromYmd(options.today_year, options.today_month,
                                      options.today_day));
  std::vector<Column> cols;
  for (const Attribute& a : schema.attributes()) cols.emplace_back(a.type);
  for (Column& c : cols) c.Reserve(options.num_properties);

  for (size_t i = 0; i < options.num_properties; ++i) {
    const Date posted = today.AddDays(-static_cast<int32_t>(
        rng.UniformInt(1, options.posting_window_days)));
    const Date reduced = posted.AddDays(static_cast<int32_t>(
        rng.UniformInt(1, options.max_reduction_lag_days)));
    cols[0].AppendInt64(static_cast<int64_t>(i) + 1);
    cols[1].AppendDouble(rng.Uniform(options.price_lo, options.price_hi));
    cols[2].AppendString(std::to_string(200 + rng.UniformInt(0, 799)));
    cols[3].AppendDate(posted);
    cols[4].AppendDate(reduced);
  }
  return Table::Make(std::move(schema), std::move(cols));
}

Result<PMapping> MakeRealEstatePMapping(double posted_probability) {
  if (posted_probability <= 0.0 || posted_probability >= 1.0) {
    return Status::InvalidArgument(
        "posted_probability must lie strictly between 0 and 1");
  }
  const std::vector<Correspondence> certain = {
      {"ID", "propertyID"},
      {"price", "listPrice"},
      {"agentPhone", "phone"},
  };
  std::vector<Correspondence> m11 = certain;
  m11.push_back({"postedDate", "date"});
  std::vector<Correspondence> m12 = certain;
  m12.push_back({"reducedDate", "date"});
  AQUA_ASSIGN_OR_RETURN(RelationMapping rm11,
                        RelationMapping::Make("S1", "T1", std::move(m11)));
  AQUA_ASSIGN_OR_RETURN(RelationMapping rm12,
                        RelationMapping::Make("S1", "T1", std::move(m12)));
  return PMapping::Make({{std::move(rm11), posted_probability},
                         {std::move(rm12), 1.0 - posted_probability}});
}

Result<Table> PaperInstanceDS1() {
  AQUA_ASSIGN_OR_RETURN(Schema schema, S1Schema());
  TableBuilder builder(std::move(schema));
  struct Row {
    int64_t id;
    double price;
    const char* phone;
    const char* posted;
    const char* reduced;
  };
  static constexpr Row kRows[] = {
      {1, 100e3, "215", "1/5/2008", "1/30/2008"},
      {2, 150e3, "342", "1/30/2008", "2/15/2008"},
      {3, 200e3, "215", "1/1/2008", "1/10/2008"},
      {4, 100e3, "337", "1/2/2008", "2/1/2008"},
  };
  for (const Row& r : kRows) {
    AQUA_ASSIGN_OR_RETURN(Date posted, Date::Parse(r.posted));
    AQUA_ASSIGN_OR_RETURN(Date reduced, Date::Parse(r.reduced));
    AQUA_RETURN_NOT_OK(builder.AppendRow(
        {Value::Int64(r.id), Value::Double(r.price), Value::String(r.phone),
         Value::FromDate(posted), Value::FromDate(reduced)}));
  }
  return std::move(builder).Finish();
}

AggregateQuery PaperQueryQ1() {
  AggregateQuery q;
  q.func = AggregateFunction::kCount;
  q.relation = "T1";
  q.where = Predicate::Comparison("date", CompareOp::kLt,
                                  Value::String("2008-1-20"));
  return q;
}

}  // namespace aqua
