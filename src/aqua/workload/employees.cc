#include "aqua/workload/employees.h"

namespace aqua {

Result<Table> GenerateEmployeesTable(const EmployeesOptions& options,
                                     Rng& rng) {
  if (options.hired_from > options.hired_to) {
    return Status::InvalidArgument("hired_from must not exceed hired_to");
  }
  if (options.base_pay_lo <= 0 || options.base_pay_hi < options.base_pay_lo) {
    return Status::InvalidArgument("need 0 < base_pay_lo <= base_pay_hi");
  }
  AQUA_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({{"emp_id", ValueType::kInt64},
                    {"dept", ValueType::kString},
                    {"base_pay", ValueType::kDouble},
                    {"pay_with_bonus", ValueType::kDouble},
                    {"total_comp", ValueType::kDouble},
                    {"hired", ValueType::kDate},
                    {"role_start", ValueType::kDate}}));
  std::vector<Column> cols;
  for (const Attribute& a : schema.attributes()) cols.emplace_back(a.type);
  for (Column& c : cols) c.Reserve(options.num_employees);

  static constexpr const char* kDepts[] = {"eng", "sales", "ops", "legal"};
  for (size_t i = 0; i < options.num_employees; ++i) {
    const double base = rng.Uniform(options.base_pay_lo, options.base_pay_hi);
    const double bonus = base * rng.Uniform(0.0, options.max_bonus_frac);
    const double equity = base * rng.Uniform(0.0, options.max_equity_frac);
    const Date hired(static_cast<int32_t>(
        rng.UniformInt(options.hired_from, options.hired_to)));
    cols[0].AppendInt64(static_cast<int64_t>(i) + 1);
    cols[1].AppendString(kDepts[rng.UniformInt(0, 3)]);
    cols[2].AppendDouble(base);
    cols[3].AppendDouble(base + bonus);
    cols[4].AppendDouble(base + bonus + equity);
    cols[5].AppendDate(hired);
    cols[6].AppendDate(
        hired.AddDays(static_cast<int32_t>(
            rng.UniformInt(0, options.max_role_lag_days))));
  }
  return Table::Make(std::move(schema), std::move(cols));
}

Result<PMapping> MakeEmployeesPMapping() {
  const std::vector<Correspondence> certain = {
      {"emp_id", "id"},
      {"dept", "department"},
  };
  auto candidate = [&](const char* pay, const char* date)
      -> Result<RelationMapping> {
    std::vector<Correspondence> corr = certain;
    corr.push_back({pay, "salary"});
    corr.push_back({date, "startDate"});
    return RelationMapping::Make("employees_b", "employees", std::move(corr));
  };
  AQUA_ASSIGN_OR_RETURN(RelationMapping m1,
                        candidate("pay_with_bonus", "hired"));
  AQUA_ASSIGN_OR_RETURN(RelationMapping m2, candidate("base_pay", "hired"));
  AQUA_ASSIGN_OR_RETURN(RelationMapping m3, candidate("total_comp", "hired"));
  AQUA_ASSIGN_OR_RETURN(RelationMapping m4,
                        candidate("pay_with_bonus", "role_start"));
  return PMapping::Make({{std::move(m1), 0.55},
                         {std::move(m2), 0.30},
                         {std::move(m3), 0.10},
                         {std::move(m4), 0.05}});
}

}  // namespace aqua
