#ifndef AQUA_WORKLOAD_SYNTHETIC_H_
#define AQUA_WORKLOAD_SYNTHETIC_H_

#include <cstdint>

#include "aqua/common/random.h"
#include "aqua/common/result.h"
#include "aqua/mapping/p_mapping.h"
#include "aqua/query/ast.h"
#include "aqua/storage/table.h"

namespace aqua {

/// Parameters of the paper's synthetic workload (§V): "tables consist of
/// attributes of type real, plus one column of type int used as id (not
/// included in the number of attributes reported)"; mappings map one
/// uncertain target attribute to randomly chosen source attributes with a
/// random probability distribution.
struct SyntheticOptions {
  size_t num_tuples = 1000;
  size_t num_attributes = 20;  // real-typed attributes a0..a{k-1}
  size_t num_mappings = 2;     // candidate mappings l
  double value_lo = 0.0;
  double value_hi = 1000.0;
  uint64_t seed = 7;
};

/// A generated source table, the p-mapping onto the mediated schema
/// T(id, value), and a canonical selective query against T.
struct SyntheticWorkload {
  Table table;        // S(id int64, a0..a{k-1} double)
  PMapping pmapping;  // value -> one of l random source attributes
  /// `SELECT <func>(value) FROM T WHERE value < threshold` with the
  /// threshold at ~3/4 of the value range, so conditions are selective but
  /// not degenerate. COUNT queries use COUNT(*) with the same condition.
  AggregateQuery MakeQuery(AggregateFunction func) const;
  double threshold = 0.0;
};

/// Generates the source table only.
Result<Table> GenerateSyntheticTable(const SyntheticOptions& options,
                                     Rng& rng);

/// Generates table + p-mapping + query scaffold.
Result<SyntheticWorkload> GenerateSyntheticWorkload(
    const SyntheticOptions& options, Rng& rng);

}  // namespace aqua

#endif  // AQUA_WORKLOAD_SYNTHETIC_H_
