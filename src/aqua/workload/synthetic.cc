#include "aqua/workload/synthetic.h"

#include "aqua/mapping/generator.h"

namespace aqua {

AggregateQuery SyntheticWorkload::MakeQuery(AggregateFunction func) const {
  AggregateQuery q;
  q.func = func;
  q.relation = pmapping.target_relation();
  if (func != AggregateFunction::kCount) q.attribute = "value";
  q.where = Predicate::Comparison("value", CompareOp::kLt,
                                  Value::Double(threshold));
  return q;
}

Result<Table> GenerateSyntheticTable(const SyntheticOptions& options,
                                     Rng& rng) {
  if (options.num_attributes == 0) {
    return Status::InvalidArgument("need at least one attribute");
  }
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"id", ValueType::kInt64});
  for (size_t a = 0; a < options.num_attributes; ++a) {
    attrs.push_back(Attribute{"a" + std::to_string(a), ValueType::kDouble});
  }
  AQUA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));

  std::vector<Column> columns;
  columns.emplace_back(ValueType::kInt64);
  columns[0].Reserve(options.num_tuples);
  for (size_t a = 0; a < options.num_attributes; ++a) {
    columns.emplace_back(ValueType::kDouble);
    columns.back().Reserve(options.num_tuples);
  }
  for (size_t r = 0; r < options.num_tuples; ++r) {
    columns[0].AppendInt64(static_cast<int64_t>(r));
    for (size_t a = 0; a < options.num_attributes; ++a) {
      columns[a + 1].AppendDouble(
          rng.Uniform(options.value_lo, options.value_hi));
    }
  }
  return Table::Make(std::move(schema), std::move(columns));
}

Result<SyntheticWorkload> GenerateSyntheticWorkload(
    const SyntheticOptions& options, Rng& rng) {
  if (options.num_mappings > options.num_attributes) {
    return Status::InvalidArgument(
        "num_mappings (" + std::to_string(options.num_mappings) +
        ") cannot exceed num_attributes (" +
        std::to_string(options.num_attributes) + ")");
  }
  AQUA_ASSIGN_OR_RETURN(Table table, GenerateSyntheticTable(options, rng));

  MappingGeneratorOptions gen;
  gen.source_relation = "S";
  gen.target_relation = "T";
  gen.target_attribute = "value";
  gen.num_mappings = options.num_mappings;
  for (size_t a = 0; a < options.num_attributes; ++a) {
    gen.candidate_sources.push_back("a" + std::to_string(a));
  }
  gen.certain.push_back(Correspondence{"id", "id"});
  AQUA_ASSIGN_OR_RETURN(PMapping pmapping, GenerateRandomPMapping(gen, rng));

  SyntheticWorkload w{std::move(table), std::move(pmapping)};
  w.threshold = options.value_lo + 0.75 * (options.value_hi - options.value_lo);
  return w;
}

}  // namespace aqua
