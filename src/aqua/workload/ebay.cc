#include "aqua/workload/ebay.h"

#include <algorithm>
#include <cmath>

#include "aqua/storage/table_builder.h"

namespace aqua {
namespace {

Result<Schema> S2Schema() {
  return Schema::Make({Attribute{"transactionID", ValueType::kInt64},
                       Attribute{"auction", ValueType::kInt64},
                       Attribute{"time", ValueType::kDouble},
                       Attribute{"bid", ValueType::kDouble},
                       Attribute{"currentPrice", ValueType::kDouble}});
}

}  // namespace

Result<Table> GenerateEbayTable(const EbayOptions& options, Rng& rng) {
  if (options.min_bids < 1 || options.max_bids < options.min_bids) {
    return Status::InvalidArgument("need 1 <= min_bids <= max_bids");
  }
  AQUA_ASSIGN_OR_RETURN(Schema schema, S2Schema());
  std::vector<Column> cols;
  for (const Attribute& a : schema.attributes()) cols.emplace_back(a.type);
  const size_t approx_rows =
      options.num_auctions * (options.min_bids + options.max_bids) / 2;
  for (Column& c : cols) c.Reserve(approx_rows);

  for (size_t a = 0; a < options.num_auctions; ++a) {
    const int64_t auction_id = static_cast<int64_t>(a) + 1;
    const size_t num_bids = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(options.min_bids),
                       static_cast<int64_t>(options.max_bids)));
    // Bid arrival times: sorted uniforms over the auction's life.
    std::vector<double> times(num_bids);
    for (double& t : times) t = rng.Uniform(0.0, options.duration_days);
    std::sort(times.begin(), times.end());

    double high1 = 0.0;  // highest proxy bid so far
    double high2 = 0.0;  // second highest
    for (size_t b = 0; b < num_bids; ++b) {
      double bid;
      if (b == 0) {
        bid = rng.Uniform(options.start_price_lo, options.start_price_hi);
        high1 = bid;
        high2 = bid;
      } else {
        // An outbid must beat the visible price; bidders overshoot by a
        // random fraction of their cap. Occasionally (as in Table II's
        // last row) a losing bid under the standing high arrives.
        const double step = 1.0 + options.outbid_frac * rng.NextDouble();
        if (rng.NextDouble() < 0.15) {
          bid = high2 + (high1 - high2) * rng.NextDouble();  // losing bid
        } else {
          bid = high1 * step;
        }
        if (bid > high1) {
          high2 = high1;
          high1 = bid;
        } else if (bid > high2) {
          high2 = bid;
        }
      }
      // Second-price rule: visible price is the runner-up bid plus an
      // increment, never above the winning proxy bid.
      const double increment = std::max(0.5, 0.025 * high2);
      const double current = b == 0 ? bid : std::min(high1, high2 + increment);
      cols[0].AppendInt64(auction_id * 100 + static_cast<int64_t>(b) + 1);
      cols[1].AppendInt64(auction_id);
      cols[2].AppendDouble(times[b]);
      cols[3].AppendDouble(std::round(bid * 100.0) / 100.0);
      cols[4].AppendDouble(std::round(current * 100.0) / 100.0);
    }
  }
  return Table::Make(std::move(schema), std::move(cols));
}

Result<PMapping> MakeEbayPMapping(double bid_probability) {
  if (bid_probability <= 0.0 || bid_probability >= 1.0) {
    return Status::InvalidArgument(
        "bid_probability must lie strictly between 0 and 1");
  }
  const std::vector<Correspondence> certain = {
      {"transactionID", "transaction"},
      {"auction", "auctionId"},
      {"time", "timeUpdate"},
  };
  std::vector<Correspondence> m21 = certain;
  m21.push_back({"bid", "price"});
  std::vector<Correspondence> m22 = certain;
  m22.push_back({"currentPrice", "price"});
  AQUA_ASSIGN_OR_RETURN(RelationMapping rm21,
                        RelationMapping::Make("S2", "T2", std::move(m21)));
  AQUA_ASSIGN_OR_RETURN(RelationMapping rm22,
                        RelationMapping::Make("S2", "T2", std::move(m22)));
  return PMapping::Make({{std::move(rm21), bid_probability},
                         {std::move(rm22), 1.0 - bid_probability}});
}

Result<Table> PaperInstanceDS2() {
  AQUA_ASSIGN_OR_RETURN(Schema schema, S2Schema());
  TableBuilder builder(std::move(schema));
  struct Row {
    int64_t txn, auction;
    double time, bid, current;
  };
  static constexpr Row kRows[] = {
      {3401, 34, 0.43, 195.00, 195.00}, {3402, 34, 2.75, 200.00, 197.50},
      {3403, 34, 2.80, 331.94, 202.50}, {3404, 34, 2.85, 349.99, 336.94},
      {3801, 38, 1.16, 330.01, 300.00}, {3802, 38, 2.67, 429.95, 335.01},
      {3803, 38, 2.68, 439.95, 336.30}, {3804, 38, 2.82, 340.50, 438.05},
  };
  for (const Row& r : kRows) {
    AQUA_RETURN_NOT_OK(builder.AppendRow(
        {Value::Int64(r.txn), Value::Int64(r.auction), Value::Double(r.time),
         Value::Double(r.bid), Value::Double(r.current)}));
  }
  return std::move(builder).Finish();
}

NestedAggregateQuery PaperQueryQ2() {
  NestedAggregateQuery q;
  q.outer = AggregateFunction::kAvg;
  q.inner.func = AggregateFunction::kMax;
  q.inner.attribute = "price";
  q.inner.distinct = true;
  q.inner.relation = "T2";
  q.inner.where = Predicate::True();
  q.inner.group_by = "auctionId";
  return q;
}

AggregateQuery PaperQueryQ2Prime() {
  AggregateQuery q;
  q.func = AggregateFunction::kSum;
  q.attribute = "price";
  q.relation = "T2";
  q.where =
      Predicate::Comparison("auctionId", CompareOp::kEq, Value::Int64(34));
  return q;
}

}  // namespace aqua
