#ifndef AQUA_WORKLOAD_REAL_ESTATE_H_
#define AQUA_WORKLOAD_REAL_ESTATE_H_

#include <cstdint>

#include "aqua/common/random.h"
#include "aqua/common/result.h"
#include "aqua/mapping/p_mapping.h"
#include "aqua/query/ast.h"
#include "aqua/storage/table.h"

namespace aqua {

/// Generator for the paper's running real-estate example (its source
/// schema S1): properties with a list price, an agent phone, a posting
/// date, and a later price-reduction date.
struct RealEstateOptions {
  size_t num_properties = 1000;
  double price_lo = 80e3;
  double price_hi = 900e3;
  /// Posting dates are uniform over this many days ending at `today`.
  int posting_window_days = 120;
  /// Reductions happen up to this many days after posting.
  int max_reduction_lag_days = 45;
  /// Calendar anchor; the paper's query date.
  int today_year = 2008;
  int today_month = 2;
  int today_day = 20;
  uint64_t seed = 41;
};

/// Generates an S1 instance:
/// (ID int64, price double, agentPhone string, postedDate date,
///  reducedDate date).
Result<Table> GenerateRealEstateTable(const RealEstateOptions& options,
                                      Rng& rng);

/// The paper's S1 -> T1 p-mapping: ID->propertyID, price->listPrice,
/// agentPhone->phone are certain; `date` maps to postedDate (m11, default
/// probability 0.6) or reducedDate (m12, 0.4); `comments` is unmapped.
Result<PMapping> MakeRealEstatePMapping(double posted_probability = 0.6);

/// The exact 4-tuple instance DS1 of the paper's Table I.
Result<Table> PaperInstanceDS1();

/// The paper's query Q1:
/// SELECT COUNT(*) FROM T1 WHERE date < '2008-1-20'.
AggregateQuery PaperQueryQ1();

}  // namespace aqua

#endif  // AQUA_WORKLOAD_REAL_ESTATE_H_
