#include "aqua/exec/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "aqua/common/failpoint.h"
#include "aqua/obs/metrics.h"

namespace aqua::exec {
namespace {

obs::Counter& StolenChunksCounter() {
  static obs::Counter* counter = new obs::Counter(
      obs::MetricsRegistry::Default().GetCounter(
          "aqua_pool_chunks_stolen_total"));
  return *counter;
}

obs::Counter& SerialFallbackCounter() {
  static obs::Counter* counter = new obs::Counter(
      obs::MetricsRegistry::Default().GetCounter(
          "aqua_exec_serial_fallback_total"));
  return *counter;
}

/// The failpoint evaluated before each chunk body. Injecting an error here
/// exercises the sibling-cancellation path exactly as a real body failure
/// would.
Status ChunkFailpoint() {
  return AQUA_FAILPOINT_STATUS("exec/parallel/chunk");
}

/// Everything a late-scheduled helper may still touch after the caller
/// has moved on lives here, behind a shared_ptr: a helper that wakes up
/// once all chunks are done reads `next`, sees nothing left, and exits
/// without dereferencing any caller stack.
struct Region {
  explicit Region(size_t n) : num_chunks(n), statuses(n) {}

  const size_t num_chunks;
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  CancellationToken group;

  std::mutex mu;
  std::condition_variable cv;
  size_t completed = 0;

  std::vector<ExecContext> children;
  std::vector<Status> statuses;
};

/// Claims chunks off the shared counter until none remain. After a
/// failure, remaining chunks are claimed-and-abandoned (marked cancelled)
/// instead of run, so the region drains promptly. Returns only when this
/// worker can take no more chunks.
///
/// `chunks` and `body` live on the caller's stack; they are dereferenced
/// only after successfully claiming a chunk, which can only happen while
/// the caller is still blocked in ParallelFor (an unclaimed chunk means an
/// incomplete region). A helper scheduled after the region finished takes
/// the `i >= num_chunks` exit having touched nothing but the heap Region.
void Drain(const std::shared_ptr<Region>& region,
           const std::vector<Chunk>* chunks, const ChunkBody* body,
           bool is_helper) {
  for (;;) {
    const size_t i = region->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= region->num_chunks) return;
    Status status;
    if (region->failed.load(std::memory_order_relaxed)) {
      status = Status::Cancelled("parallel region aborted by sibling failure");
    } else {
      if (is_helper) StolenChunksCounter().Increment();
      status = ChunkFailpoint();
      if (status.ok()) status = (*body)((*chunks)[i], &region->children[i]);
      if (!status.ok()) {
        region->failed.store(true, std::memory_order_relaxed);
        region->group.RequestCancel();
      }
    }
    std::lock_guard<std::mutex> lock(region->mu);
    region->statuses[i] = std::move(status);
    if (++region->completed == region->num_chunks) region->cv.notify_all();
  }
}

/// Lowest-index non-cancelled failure; a cancelled status only wins when
/// no chunk failed for a deeper reason (i.e. the caller's own token
/// fired). Deterministic for deterministic bodies.
Status PickStatus(const std::vector<Status>& statuses) {
  const Status* cancelled = nullptr;
  for (const Status& s : statuses) {
    if (s.ok()) continue;
    if (s.code() != StatusCode::kCancelled) return s;
    if (cancelled == nullptr) cancelled = &s;
  }
  return cancelled == nullptr ? Status::OK() : *cancelled;
}

}  // namespace

std::vector<Chunk> MakeChunks(size_t n, size_t chunk_size) {
  if (chunk_size == 0) chunk_size = 1;
  std::vector<Chunk> chunks;
  chunks.reserve((n + chunk_size - 1) / chunk_size);
  for (size_t begin = 0; begin < n; begin += chunk_size) {
    chunks.push_back(
        Chunk{begin, std::min(begin + chunk_size, n), chunks.size()});
  }
  return chunks;
}

Status ParallelFor(const ExecPolicy& policy, size_t n, size_t chunk_size,
                   ExecContext* parent, const ChunkBody& body,
                   const std::vector<uint64_t>* weights) {
  if (n == 0) return Status::OK();
  AQUA_RETURN_NOT_OK(ExecCheckNow(parent));
  const std::vector<Chunk> chunks = MakeChunks(n, chunk_size);

  // Budget shares are proportional to chunk weight and sum exactly to the
  // parent's remaining budget. The partition depends only on the problem
  // shape, never on the thread count, so a query's budget verdict (and its
  // answer) is identical for every --threads value.
  std::vector<uint64_t> chunk_weights;
  if (weights == nullptr) {
    chunk_weights.reserve(chunks.size());
    for (const Chunk& c : chunks) chunk_weights.push_back(c.size());
  } else if (weights->size() != chunks.size()) {
    return Status::Internal("ParallelFor: weights/chunks size mismatch");
  }
  const std::vector<uint64_t>& w =
      weights == nullptr ? chunk_weights : *weights;

  auto region = std::make_shared<Region>(chunks.size());
  region->group = CancellationToken::MakeLinked(
      parent == nullptr ? CancellationToken() : parent->cancel_token());
  region->children.reserve(chunks.size());
  if (parent == nullptr) {
    for (size_t i = 0; i < chunks.size(); ++i) {
      region->children.emplace_back(ExecLimits{}, region->group);
    }
  } else {
    const std::vector<BudgetShare> shares = parent->SplitRemaining(w);
    for (size_t i = 0; i < chunks.size(); ++i) {
      region->children.push_back(parent->Child(shares[i], region->group));
    }
  }

  const size_t workers = std::min<size_t>(
      static_cast<size_t>(policy.ResolvedThreads()), chunks.size());
  if (workers <= 1) {
    // Serial path: identical chunking and budget shares, executed in chunk
    // order on the calling thread with early exit on the first failure.
    for (const Chunk& chunk : chunks) {
      Status status = ChunkFailpoint();
      if (status.ok()) status = body(chunk, &region->children[chunk.index]);
      region->statuses[chunk.index] = std::move(status);
      if (!region->statuses[chunk.index].ok()) break;
    }
  } else {
    ThreadPool& pool =
        policy.pool == nullptr ? ThreadPool::Shared() : *policy.pool;
    for (size_t h = 0; h + 1 < workers; ++h) {
      const bool enqueued =
          pool.Submit([region, chunks_ptr = &chunks, body_ptr = &body] {
            Drain(region, chunks_ptr, body_ptr, /*is_helper=*/true);
          });
      if (!enqueued) {
        // The pool cannot run helpers (spawn failure, possibly injected).
        // Chunks are claimed off a shared counter, so the caller's own
        // Drain below simply takes them all: the region degrades to
        // serial execution with byte-identical results.
        SerialFallbackCounter().Increment();
        break;
      }
    }
    Drain(region, &chunks, &body, /*is_helper=*/false);
    std::unique_lock<std::mutex> lock(region->mu);
    region->cv.wait(lock,
                    [&] { return region->completed == chunks.size(); });
  }

  if (parent != nullptr) {
    for (const ExecContext& child : region->children) parent->Absorb(child);
  }
  return PickStatus(region->statuses);
}

}  // namespace aqua::exec
