#ifndef AQUA_EXEC_THREAD_POOL_H_
#define AQUA_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aqua::exec {

/// A lazily-started, work-sharing thread pool.
///
/// Tasks go into one shared FIFO queue and any idle worker picks up the
/// next one — the classic work-sharing model, which fits this codebase's
/// usage (a handful of coarse chunk-drainer tasks per parallel region)
/// better than per-thread deques with stealing would. Worker threads are
/// not spawned until the first `Submit`, so programs that never leave the
/// serial path (`--threads=1`) pay nothing for the pool's existence.
///
/// Observability: every Submit increments `aqua_pool_tasks_total` and
/// records the queue depth seen at enqueue time into
/// `aqua_pool_queue_depth`; the live depth is mirrored into the
/// `aqua_exec_queue_depth` gauge; every executed task runs under an
/// `exec::Task` trace span and reports its run time into
/// `aqua_pool_task_latency_us`. Worker spawns count into
/// `aqua_pool_threads_started_total`; Submits refused by a full queue
/// into `aqua_pool_queue_rejected_total`.
class ThreadPool {
 public:
  /// A pool that will run at most `num_threads` workers (>= 1).
  explicit ThreadPool(unsigned num_threads);

  /// Drains nothing: pending tasks are still executed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, sized to the hardware, created (not started)
  /// on first use and intentionally leaked so exit-time destruction order
  /// never races live workers.
  static ThreadPool& Shared();

  /// max(1, std::thread::hardware_concurrency()).
  static unsigned HardwareThreads();

  /// Enqueues `task`; the first call spawns the worker threads. Returns
  /// false when the task could not be enqueued because no worker thread
  /// could be spawned (or failpoint `exec/pool/spawn` injected that
  /// condition), or because the queue is at its configured limit — the
  /// task is NOT queued and will never run, so the caller must run it
  /// inline or fail. ParallelFor treats false as "drain the region on the
  /// calling thread": the parallel-to-serial fallback edge. Servers treat
  /// it as load shed: overload converts to caller-side backpressure
  /// instead of unbounded queue growth.
  bool Submit(std::function<void()> task);

  /// Caps the task queue at `limit` pending tasks (0 = unbounded, the
  /// default). Submit returns false while the queue is at the cap; tasks
  /// already queued are unaffected. Thread-safe.
  void set_queue_limit(size_t limit);
  size_t queue_limit() const;

  /// Pending (queued, not yet running) tasks right now.
  size_t queue_depth() const;

  unsigned num_threads() const { return num_threads_; }

 private:
  void StartLocked();
  void WorkerLoop();

  const unsigned num_threads_;
  mutable std::mutex mu_;
  size_t queue_limit_ = 0;  // 0 = unbounded
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopping_ = false;
};

}  // namespace aqua::exec

#endif  // AQUA_EXEC_THREAD_POOL_H_
